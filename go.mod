module bwcluster

go 1.23
