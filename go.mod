module bwcluster

go 1.22
