// Command bwc-query loads a bandwidth matrix, builds the clustering
// system, and answers bandwidth-constrained cluster queries from the
// command line.
//
// Usage:
//
//	bwc-query -data hp.csv -k 10 -b 50
//	bwc-query -data hp.csv -k 10 -b 50 -mode decentral -start 3
//	bwc-query -data hp.csv -label 7       # print a host's distance label
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"bwcluster"
	"bwcluster/internal/buildinfo"
	"bwcluster/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwc-query:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwc-query", flag.ContinueOnError)
	data := fs.String("data", "", "bandwidth matrix file (.csv or .gob); required")
	k := fs.Int("k", 0, "cluster size constraint (>= 2)")
	b := fs.Float64("b", 0, "minimum pairwise bandwidth constraint (Mbps)")
	mode := fs.String("mode", "central", "query mode: central or decentral")
	start := fs.Int("start", -1, "start host for decentralized queries (-1: random)")
	nCut := fs.Int("ncut", 10, "overlay propagation cutoff n_cut")
	seed := fs.Int64("seed", 1, "construction seed")
	classesFlag := fs.String("classes", "", "comma-separated bandwidth classes in Mbps (default: percentile-derived)")
	label := fs.Int("label", -1, "print this host's distance label and exit")
	maxSize := fs.Float64("maxsize", 0, "print the maximum cluster size for this bandwidth constraint and exit")
	dot := fs.String("dot", "", "write the overlay structure as Graphviz DOT and exit: anchor or pred")
	crt := fs.Int("crt", -1, "print this host's cluster routing table and exit")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("bwc-query", buildinfo.String())
		return nil
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	m, err := dataset.LoadFile(*data)
	if err != nil {
		return err
	}
	raw := make([][]float64, m.N())
	for i := range raw {
		raw[i] = make([]float64, m.N())
		for j := range raw[i] {
			if i != j {
				raw[i][j] = m.At(i, j)
			}
		}
	}
	opts := []bwcluster.Option{bwcluster.WithNCut(*nCut), bwcluster.WithSeed(*seed)}
	if *classesFlag != "" {
		classes, err := parseClasses(*classesFlag)
		if err != nil {
			return err
		}
		opts = append(opts, bwcluster.WithBandwidthClasses(classes))
	}
	sys, err := bwcluster.New(raw, opts...)
	if err != nil {
		return err
	}
	if *dot == "" {
		fmt.Printf("system: %d hosts, classes %v Mbps\n", sys.Len(), roundAll(sys.Classes()))
	}

	switch {
	case *dot == "anchor":
		return sys.WriteAnchorDOT(os.Stdout)
	case *dot == "pred":
		return sys.WritePredictionDOT(os.Stdout)
	case *dot != "":
		return fmt.Errorf("unknown -dot value %q (want anchor or pred)", *dot)
	case *crt >= 0:
		self, entries, err := sys.RoutingTable(*crt)
		if err != nil {
			return err
		}
		fmt.Printf("cluster routing table of host %d (classes %v Mbps):\n", *crt, roundAll(sys.Classes()))
		fmt.Printf("  %-10s %v\n", "self", self)
		for _, e := range entries {
			fmt.Printf("  via %-6d %v\n", e.Neighbor, e.MaxSizes)
		}
		return nil
	case *label >= 0:
		s, err := sys.DistanceLabel(*label)
		if err != nil {
			return err
		}
		fmt.Printf("label(%d): %s\n", *label, s)
		return nil
	case *maxSize > 0:
		size, err := sys.MaxClusterSize(*maxSize)
		if err != nil {
			return err
		}
		fmt.Printf("max cluster size at b=%.1f Mbps: %d hosts\n", *maxSize, size)
		return nil
	}

	if *k < 2 || *b <= 0 {
		return fmt.Errorf("need -k >= 2 and -b > 0 (or -label / -maxsize)")
	}
	switch *mode {
	case "central":
		members, err := sys.FindCluster(*k, *b)
		if err != nil {
			return err
		}
		if members == nil {
			fmt.Println("no cluster found")
			return nil
		}
		printCluster(sys, members, *b)
	case "decentral":
		s := *start
		if s < 0 {
			s = rand.New(rand.NewSource(*seed)).Intn(sys.Len())
		}
		res, err := sys.Query(s, *k, *b)
		if err != nil {
			return err
		}
		if !res.Found() {
			fmt.Printf("no cluster found (query from host %d, %d hops)\n", s, res.Hops)
			return nil
		}
		fmt.Printf("query from host %d answered by host %d after %d hops (class %.1f Mbps)\n",
			s, res.AnsweredBy, res.Hops, res.Class)
		printCluster(sys, res.Members, res.Class)
	default:
		return fmt.Errorf("unknown mode %q (want central or decentral)", *mode)
	}
	return nil
}

func printCluster(sys *bwcluster.System, members []int, b float64) {
	fmt.Printf("cluster (%d hosts): %v\n", len(members), members)
	worstPred, worstReal := -1.0, -1.0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			p, err := sys.PredictBandwidth(members[i], members[j])
			if err == nil && (worstPred < 0 || p < worstPred) {
				worstPred = p
			}
			r, err := sys.MeasuredBandwidth(members[i], members[j])
			if err == nil && (worstReal < 0 || r < worstReal) {
				worstReal = r
			}
		}
	}
	fmt.Printf("worst pair: predicted %.1f Mbps, measured %.1f Mbps (constraint %.1f)\n",
		worstPred, worstReal, b)
}

func parseClasses(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad class %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10+0.5)) / 10
	}
	return out
}
