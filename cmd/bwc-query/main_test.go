package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"bwcluster/internal/dataset"
)

func writeMatrix(t *testing.T, n int) string {
	t.Helper()
	bw, err := dataset.Generate(dataset.HPConfig().WithN(n), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := dataset.SaveFile(path, bw); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCentralQuery(t *testing.T) {
	path := writeMatrix(t, 30)
	if err := run([]string{"-data", path, "-k", "4", "-b", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDecentralQuery(t *testing.T) {
	path := writeMatrix(t, 30)
	if err := run([]string{"-data", path, "-k", "4", "-b", "20", "-mode", "decentral", "-start", "5"}); err != nil {
		t.Fatal(err)
	}
	// Random start.
	if err := run([]string{"-data", path, "-k", "4", "-b", "20", "-mode", "decentral"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLabelAndMaxSize(t *testing.T) {
	path := writeMatrix(t, 20)
	if err := run([]string{"-data", path, "-label", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-maxsize", "25"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitClasses(t *testing.T) {
	path := writeMatrix(t, 20)
	if err := run([]string{"-data", path, "-classes", "10, 20,40", "-k", "3", "-b", "20", "-mode", "decentral"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCRT(t *testing.T) {
	path := writeMatrix(t, 15)
	if err := run([]string{"-data", path, "-crt", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-crt", "99"}); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestRunDOT(t *testing.T) {
	path := writeMatrix(t, 12)
	if err := run([]string{"-data", path, "-dot", "anchor"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-dot", "pred"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-dot", "nope"}); err == nil {
		t.Error("unknown dot mode should fail")
	}
}

func TestRunValidation(t *testing.T) {
	path := writeMatrix(t, 10)
	if err := run([]string{"-k", "3", "-b", "20"}); err == nil {
		t.Error("missing -data should fail")
	}
	if err := run([]string{"-data", path}); err == nil {
		t.Error("missing k/b should fail")
	}
	if err := run([]string{"-data", path, "-k", "3", "-b", "20", "-mode", "nope"}); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run([]string{"-data", path, "-classes", "x", "-k", "3", "-b", "20"}); err == nil {
		t.Error("bad classes should fail")
	}
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing.csv"), "-k", "3", "-b", "20"}); err == nil {
		t.Error("missing file should fail")
	}
}
