// Command bwc-gen generates synthetic PlanetLab-like bandwidth matrices
// (the access-link bottleneck model standing in for the paper's HP- and
// UMD-PlanetLab datasets) and writes them as CSV or gob.
//
// Usage:
//
//	bwc-gen -preset hp -out hp.csv
//	bwc-gen -preset umd -n 100 -noise 0.3 -seed 7 -out subset.gob
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bwcluster/internal/buildinfo"
	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwc-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwc-gen", flag.ContinueOnError)
	kind := fs.String("kind", "bw", "matrix kind: bw (Mbps) or latency (ms)")
	preset := fs.String("preset", "hp", "bandwidth preset: hp (190 nodes) or umd (317 nodes)")
	n := fs.Int("n", 0, "override the number of hosts")
	noise := fs.Float64("noise", -1, "override the treeness noise sigma (0 = exact tree metric)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (.csv or .gob); required")
	stats := fs.Bool("stats", false, "print percentile and treeness statistics")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("bwc-gen", buildinfo.String())
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	rng := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "bw":
		var cfg dataset.Config
		switch *preset {
		case "hp":
			cfg = dataset.HPConfig()
		case "umd":
			cfg = dataset.UMDConfig()
		default:
			return fmt.Errorf("unknown preset %q (want hp or umd)", *preset)
		}
		if *n > 0 {
			cfg = cfg.WithN(*n)
		}
		if *noise >= 0 {
			cfg = cfg.WithNoise(*noise)
		}
		bw, err := dataset.Generate(cfg, rng)
		if err != nil {
			return err
		}
		if err := dataset.SaveFile(*out, bw); err != nil {
			return err
		}
		fmt.Printf("wrote %d-host bandwidth matrix to %s\n", bw.N(), *out)
		if *stats {
			return printStats(bw, rng)
		}
		return nil
	case "latency":
		cfg := dataset.DefaultLatencyConfig()
		if *n > 0 {
			cfg.N = *n
		}
		if *noise >= 0 {
			cfg.NoiseSigma = *noise
		}
		lat, err := dataset.GenerateLatency(cfg, rng)
		if err != nil {
			return err
		}
		if err := dataset.SaveFile(*out, lat); err != nil {
			return err
		}
		fmt.Printf("wrote %d-host latency matrix to %s\n", lat.N(), *out)
		if *stats {
			return printLatencyStats(lat, rng)
		}
		return nil
	default:
		return fmt.Errorf("unknown kind %q (want bw or latency)", *kind)
	}
}

func printLatencyStats(lat *metric.Matrix, rng *rand.Rand) error {
	eps, err := metric.AvgEpsilon(lat, 20000, rng)
	if err != nil {
		return err
	}
	fmt.Printf("treeness epsilon_avg = %.4f (epsilon* = %.4f)\n", eps, metric.EpsilonStar(eps))
	vals := lat.Values()
	for _, p := range []float64{10, 50, 90} {
		v, err := stats.Percentile(vals, p)
		if err != nil {
			return err
		}
		fmt.Printf("P%02.0f latency = %.1f ms\n", p, v)
	}
	return nil
}

func printStats(bw *metric.Matrix, rng *rand.Rand) error {
	d, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
	if err != nil {
		return err
	}
	eps, err := metric.AvgEpsilon(d, 20000, rng)
	if err != nil {
		return err
	}
	fmt.Printf("treeness epsilon_avg = %.4f (epsilon* = %.4f)\n", eps, metric.EpsilonStar(eps))
	epsPcts, err := metric.EpsilonDistribution(d, 20000, []float64{50, 90, 99}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("epsilon P50/P90/P99 = %.4f / %.4f / %.4f\n", epsPcts[0], epsPcts[1], epsPcts[2])
	vals := bw.Values()
	for _, p := range []float64{10, 20, 50, 80, 90} {
		v, err := stats.Percentile(vals, p)
		if err != nil {
			return err
		}
		fmt.Printf("P%02.0f bandwidth = %.1f Mbps\n", p, v)
	}
	return nil
}
