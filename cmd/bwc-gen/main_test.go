package main

import (
	"path/filepath"
	"testing"

	"bwcluster/internal/dataset"
)

func TestRunGeneratesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.csv")
	err := run([]string{"-preset", "hp", "-n", "20", "-seed", "3", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 20 {
		t.Errorf("N = %d, want 20", m.N())
	}
}

func TestRunGeneratesGobWithStats(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.gob")
	err := run([]string{"-preset", "umd", "-n", "15", "-noise", "0", "-out", out, "-stats"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 15 {
		t.Errorf("N = %d, want 15", m.N())
	}
}

func TestRunGeneratesLatency(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lat.csv")
	err := run([]string{"-kind", "latency", "-n", "25", "-seed", "2", "-out", out, "-stats"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 25 {
		t.Errorf("N = %d, want 25", m.N())
	}
	if err := run([]string{"-kind", "nope", "-out", out}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-preset", "hp"}); err == nil {
		t.Error("missing -out should fail")
	}
	if err := run([]string{"-preset", "nope", "-out", filepath.Join(t.TempDir(), "x.csv")}); err == nil {
		t.Error("unknown preset should fail")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-preset", "hp", "-n", "5", "-out", filepath.Join(t.TempDir(), "x.txt")}); err == nil {
		t.Error("unknown extension should fail")
	}
}
