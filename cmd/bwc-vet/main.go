// Command bwc-vet is the repository's invariant checker: a stdlib-only
// static analyzer that walks the module's packages and reports
// violations of the codified determinism, concurrency, telemetry and API
// hygiene rules (DESIGN.md §8d).
//
// Usage:
//
//	bwc-vet ./...                 # analyze every package, human output
//	bwc-vet -json ./...           # machine-readable findings for CI
//	bwc-vet -checks determinism,concurrency ./internal/cluster
//	bwc-vet -checks list          # print every check and exit
//
// Exit-code contract: 0 when no findings survive suppression, 1 iff at
// least one finding is reported (in both human and -json modes), and 2
// on usage or load errors — so `bwc-vet -json ./... || fail` composes in
// CI without parsing output.
//
// With -json, stdout carries a JSON array of findings — always an
// array, [] when clean — where each element is:
//
//	{
//	  "check":   "lockorder",                   // name of the check that fired
//	  "file":    "internal/runtime/runtime.go", // module-relative path
//	  "line":    412,                           // 1-based
//	  "column":  2,                             // 1-based, in bytes
//	  "message": "lock-acquisition cycle among ..."
//	}
//
// Fields are never omitted; new fields may be added, so consumers
// should ignore unknown keys.
//
// Suppress an individual finding with a reasoned directive on the same
// line or the line above:
//
//	//bwcvet:allow determinism wall-clock deadline; never feeds algorithm state
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bwcluster/internal/analysis"
	"bwcluster/internal/buildinfo"
)

// Exit codes form the command's contract with CI: strictly 1 iff
// findings, so wrappers can distinguish "violations" from "broken
// invocation" without parsing output.
const (
	exitClean    = 0 // no findings survived suppression
	exitFindings = 1 // at least one finding reported
	exitError    = 2 // usage or load error; nothing was analyzed
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bwc-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (for CI annotation)")
	checksFlag := fs.String("checks", "", "comma-separated checks to run, or \"list\" to print them (default: all of "+strings.Join(analysis.CheckNames(), ",")+")")
	version := fs.Bool("version", false, "print version and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bwc-vet [flags] ./... | dir ...\n\nChecks:\n")
		for _, c := range analysis.Checks {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if *version {
		fmt.Fprintln(stdout, "bwc-vet", buildinfo.String())
		return exitClean
	}
	if *checksFlag == "list" {
		for _, c := range analysis.Checks {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return exitClean
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return exitError
	}

	cfg := analysis.DefaultConfig()
	if *checksFlag != "" {
		for name := range cfg.Enabled {
			cfg.Enabled[name] = false
		}
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if _, ok := cfg.Enabled[name]; !ok {
				fmt.Fprintf(stderr, "bwc-vet: unknown check %q (known: %s, or \"list\")\n", name, strings.Join(analysis.CheckNames(), ", "))
				return exitError
			}
			cfg.Enabled[name] = true
		}
	}

	findings, err := vet(patterns, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "bwc-vet:", err)
		return exitError
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			// Encoding to stdout failed after a successful analysis; the
			// findings still decide the exit code so CI gates stay sound.
			fmt.Fprintln(stderr, "bwc-vet:", err)
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "bwc-vet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return exitFindings
	}
	return exitClean
}

// vet loads the packages matched by patterns and runs the enabled checks.
func vet(patterns []string, cfg *analysis.Config) ([]analysis.Finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings := analysis.Analyze(pkgs, cfg)
	// Report module-relative paths: stable across machines, clickable in
	// CI annotations.
	for i := range findings {
		if rel, err := filepath.Rel(loader.ModuleRoot(), findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
			findings[i].Pos.Filename = rel
		}
	}
	return findings, nil
}
