package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bwcluster/internal/analysis"
)

// fixture returns the repo-relative path of one analyzer fixture
// package; the CLI tests run from cmd/bwc-vet, two levels down.
func fixture(name string) string {
	return "../../internal/analysis/testdata/src/" + name
}

func TestVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "bwc-vet ") {
		t.Errorf("version output = %q", out.String())
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	usage := errOut.String()
	if !strings.Contains(usage, "usage: bwc-vet") {
		t.Errorf("usage output missing header: %q", usage)
	}
	for _, name := range analysis.CheckNames() {
		if !strings.Contains(usage, name) {
			t.Errorf("usage output does not describe check %q", name)
		}
	}
}

// TestChecksListMode verifies `-checks list` prints every registered
// check with its one-line doc and exits clean without analyzing
// anything (no package patterns required).
func TestChecksListMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks", "list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errOut.String())
	}
	for _, c := range analysis.Checks {
		if !strings.Contains(out.String(), c.Name) || !strings.Contains(out.String(), c.Doc) {
			t.Errorf("list output missing check %q with its doc:\n%s", c.Name, out.String())
		}
	}
	if errOut.Len() != 0 {
		t.Errorf("list mode wrote to stderr: %q", errOut.String())
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks", "nosuch", fixture("determinism")}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown check") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

// TestFixturesFailWithDiagnostics is the CLI half of the acceptance
// gate: pointing bwc-vet at each fixture package exits non-zero with a
// diagnostic from that fixture's check.
func TestFixturesFailWithDiagnostics(t *testing.T) {
	cases := []struct {
		fixture string
		check   string
		msg     string
	}{
		{"determinism", "determinism", "global rand"},
		{"concurrency", "concurrency", "leaks the lock"},
		{"telemetryhygiene", "telemetry", "composite literals"},
		{"apihygiene", "apihygiene", "no doc comment"},
		{"directive", "determinism", "wall clock"},
		{"lockorder", "lockorder", "lock-acquisition cycle"},
		{"goroleak", "goroleak", "never provably exits"},
		{"protostate", "protostate", "not exhaustive"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{fixture(tc.fixture)}, &out, &errOut)
			if code != 1 {
				t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
			}
			if !strings.Contains(out.String(), tc.msg) {
				t.Errorf("stdout missing %q:\n%s", tc.msg, out.String())
			}
			if !strings.Contains(out.String(), "["+tc.check+"]") {
				t.Errorf("stdout missing check tag [%s]:\n%s", tc.check, out.String())
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", fixture("apihygiene")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	for _, f := range findings {
		if f.Check == "" || f.File == "" || f.Line <= 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if strings.HasPrefix(f.File, "/") {
			t.Errorf("finding path %q is absolute; want module-relative", f.File)
		}
	}
}

func TestChecksFlagScopes(t *testing.T) {
	// The apihygiene fixture contains only apihygiene violations, so
	// running just the determinism check over it must come back clean.
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks", "determinism", fixture("apihygiene")}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-checks", "determinism", fixture("apihygiene")}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("empty finding set should encode as [], got %q", got)
	}
}
