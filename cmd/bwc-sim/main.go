// Command bwc-sim regenerates the paper's evaluation figures. Each -fig
// value reruns one experiment and prints the data series the
// corresponding figure plots.
//
//	bwc-sim -fig 3 -dataset hp          # Fig. 3: clustering accuracy + error CDFs
//	bwc-sim -fig 4 -dataset umd         # Fig. 4: tradeoff of decentralization
//	bwc-sim -fig 5 -dataset hp          # Fig. 5: effect of treeness
//	bwc-sim -fig 6                      # Fig. 6: query routing scalability
//
// Full paper-scale runs take minutes; -scale trades precision for time
// (e.g. -scale 0.1 for a quick look).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bwcluster/internal/buildinfo"
	"bwcluster/internal/sim"
	"bwcluster/internal/stats"
	"bwcluster/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwc-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwc-sim", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate: 3, 4, 5 or 6")
	ablation := fs.String("ablation", "", "ablation to run instead of a figure: ncut, trees, drift, construction or sword")
	series := fs.String("series", "", "extra experiment series to run instead of a figure: faults, trace, churn or bandwidth")
	ds := fs.String("dataset", "hp", "dataset: hp or umd (figures 3-5)")
	scale := fs.Float64("scale", 1, "work scale factor (rounds/queries multiplied by this)")
	seed := fs.Int64("seed", 0, "override the experiment seed (0: per-figure default)")
	parallel := fs.Int("parallel", 0, "workers fanning independent data series out (0: one per CPU, 1: sequential; never changes results)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON instead of a table")
	metricsOut := fs.String("metrics", "", "dump telemetry metrics after the run to this file (\"-\": stderr)")
	flightOut := fs.String("flight-dump", "", "dump the flight-recorder ring after the run to this file (\"-\": stderr)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("bwc-sim", buildinfo.String())
		return nil
	}
	var d sim.Dataset
	switch *ds {
	case "hp":
		d = sim.HP
	case "umd":
		d = sim.UMD
	default:
		return fmt.Errorf("unknown dataset %q (want hp or umd)", *ds)
	}
	start := time.Now()
	var err error
	switch {
	case *ablation == "ncut":
		err = runAblationNCut(d, *scale, *seed, *parallel, *jsonOut)
	case *ablation == "trees":
		err = runAblationTrees(d, *scale, *seed, *parallel, *jsonOut)
	case *ablation == "drift":
		err = runAblationDrift(d, *scale, *seed, *parallel, *jsonOut)
	case *ablation == "construction":
		err = runAblationConstruction(*scale, *seed, *parallel, *jsonOut)
	case *ablation == "sword":
		err = runAblationSword(d, *scale, *seed, *parallel, *jsonOut)
	case *ablation != "":
		return fmt.Errorf("unknown ablation %q (want ncut, trees, drift, construction or sword)", *ablation)
	case *series == "faults":
		err = runSeriesFaults(d, *scale, *seed, *parallel, *jsonOut)
	case *series == "trace":
		err = runSeriesTrace(d, *scale, *seed, *parallel, *jsonOut)
	case *series == "churn":
		err = runSeriesChurn(d, *scale, *seed, *parallel, *jsonOut)
	case *series == "bandwidth":
		err = runSeriesBandwidth(d, *scale, *seed, *parallel, *jsonOut)
	case *series != "":
		return fmt.Errorf("unknown series %q (want faults, trace, churn or bandwidth)", *series)
	case *fig == 3:
		err = runFig3(d, *scale, *seed, *parallel, *jsonOut)
	case *fig == 4:
		err = runFig4(d, *scale, *seed, *parallel, *jsonOut)
	case *fig == 5:
		err = runFig5(d, *scale, *seed, *parallel, *jsonOut)
	case *fig == 6:
		err = runFig6(*scale, *seed, *parallel, *jsonOut)
	default:
		return fmt.Errorf("-fig must be 3, 4, 5 or 6 (or use -ablation / -series)")
	}
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("\n# completed in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *metricsOut != "" {
		if err := dumpMetrics(*metricsOut); err != nil {
			return err
		}
	}
	if *flightOut != "" {
		return dumpFlight(*flightOut)
	}
	return nil
}

// dumpFlight writes the process flight recorder's retained events in
// the post-mortem line format — the same black box bwc-serve exposes on
// /v1/flight. Runs that attach the recorder (-series trace) leave the
// overlay's recent sends, hops, staleness episodes and anomalies here.
func dumpFlight(path string) error {
	if path == "-" {
		_, err := telemetry.FlightDefault().WriteTo(os.Stderr)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flight dump: %w", err)
	}
	if _, err := telemetry.FlightDefault().WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("flight dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flight dump: %w", err)
	}
	return nil
}

// dumpMetrics writes the accumulated telemetry registry in Prometheus
// text format, so batch runs leave the same observability trail the
// server exposes on /metrics.
func dumpMetrics(path string) error {
	if path == "-" {
		return telemetry.Default().WritePrometheus(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics dump: %w", err)
	}
	if err := telemetry.Default().WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metrics dump: %w", err)
	}
	return nil
}

func runFig3(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultAccuracyConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunAccuracy(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# Fig. 3 (%s): WPR vs b, k=%d\n", d, res.K)
	fmt.Printf("%-8s %-14s %-16s %-14s\n", "b(Mbps)", d+"-TREE-CENTRAL", d+"-TREE-DECENTRAL", d+"-EUCL-CENTRAL")
	for _, p := range res.Points {
		fmt.Printf("%-8.1f %-14.4f %-16.4f %-14.4f\n",
			p.B, p.WPR[sim.TreeCentral], p.WPR[sim.TreeDecentral], p.WPR[sim.EuclCentral])
	}
	fmt.Printf("\n# Fig. 3 (%s): CDF of relative bandwidth prediction error\n", d)
	fmt.Printf("%-12s %-10s %-10s\n", "rel.error", d+"-TREE", d+"-EUCL")
	for _, x := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0} {
		fmt.Printf("%-12.2f %-10.4f %-10.4f\n", x,
			cdfAt(res.ErrCDF[sim.TreeCentral], x), cdfAt(res.ErrCDF[sim.EuclCentral], x))
	}
	return nil
}

// emitJSON marshals an experiment result for downstream tooling.
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encode json: %w", err)
	}
	return nil
}

// cdfAt evaluates a stepwise CDF at x.
func cdfAt(points []stats.CDFPoint, x float64) float64 {
	f := 0.0
	for _, p := range points {
		if p.X > x {
			break
		}
		f = p.F
	}
	return f
}

func runFig4(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultTradeoffConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunTradeoff(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# Fig. 4 (%s): RR vs k, n_cut=%d\n", d, res.NCut)
	fmt.Printf("%-6s %-14s %-16s\n", "k", d+"-TREE-CENTRAL", d+"-TREE-DECENTRAL")
	for _, p := range res.Points {
		fmt.Printf("%-6d %-14.4f %-16.4f\n", p.K, p.RR[sim.TreeCentral], p.RR[sim.TreeDecentral])
	}
	return nil
}

func runFig5(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultTreenessConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunTreeness(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# Fig. 5 (%s): WPR vs f_b per treeness level, k=%d, alpha=%.1f\n", d, res.K, res.Alpha)
	for _, s := range res.Series {
		fmt.Printf("\n# dataset eps_avg=%.3f (noise sigma %.2f)\n", s.EpsAvg, s.Noise)
		fmt.Printf("%-8s %-8s %-8s %-8s %-10s %-8s\n", "b", "f_b", "f_a", "WPR", "WPR^f_a*", "eq1")
		for _, p := range s.Points {
			fmt.Printf("%-8.1f %-8.4f %-8.4f %-8.4f %-10.4f %-8.4f\n",
				p.B, p.FB, p.FA, p.WPR, p.WPRNorm, p.Model)
		}
	}
	return nil
}

func runAblationNCut(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultTradeoffConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunNCutAblation(cfg, []int{5, 10, 20})
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# n_cut ablation (%s): decentralized RR vs k per cutoff\n", d)
	fmt.Printf("%-6s", "k")
	for _, c := range res.Curves {
		fmt.Printf(" ncut=%-9d", c.NCut)
	}
	fmt.Println(" central")
	for i := range res.Curves[0].Points {
		fmt.Printf("%-6d", res.Curves[0].Points[i].K)
		for _, c := range res.Curves {
			fmt.Printf(" %-14.4f", c.Points[i].RR[sim.TreeDecentral])
		}
		fmt.Printf(" %-8.4f\n", res.Curves[len(res.Curves)-1].Points[i].RR[sim.TreeCentral])
	}
	return nil
}

func runAblationTrees(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultAccuracyConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunTreesAblation(cfg, []int{1, 3, 5})
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# forest-size ablation (%s): TREE-CENTRAL WPR vs b per forest size\n", d)
	fmt.Printf("%-8s", "b(Mbps)")
	for _, c := range res.Curves {
		fmt.Printf(" trees=%-8d", c.Trees)
	}
	fmt.Println()
	for i := range res.Curves[0].Points {
		fmt.Printf("%-8.1f", res.Curves[0].Points[i].B)
		for _, c := range res.Curves {
			fmt.Printf(" %-14.4f", c.Points[i].WPR[sim.TreeCentral])
		}
		fmt.Println()
	}
	return nil
}

func runAblationDrift(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultDynamicsConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunDynamics(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# dynamics (%s): bandwidth drifts sigma=%.2f per epoch; stale vs refreshed framework, k=%d\n",
		d, res.DriftSigma, res.K)
	fmt.Printf("%-7s %-10s %-13s %-9s %-12s\n", "epoch", "WPR.stale", "WPR.refreshed", "RR.stale", "RR.refreshed")
	for _, p := range res.Points {
		fmt.Printf("%-7d %-10.4f %-13.4f %-9.4f %-12.4f\n",
			p.Epoch, p.WPRStale, p.WPRRefreshed, p.RRStale, p.RRRefreshed)
	}
	return nil
}

func runAblationConstruction(scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultConstructionConfig().Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunConstructionCost(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# construction cost (%s subsets): measurements per joining host\n", res.Base)
	fmt.Printf("%-6s %-14s %-14s %-8s\n", "n", "full-scan", "anchor-search", "ratio")
	for _, p := range res.Points {
		fmt.Printf("%-6d %-14.1f %-14.1f %-8.2f\n",
			p.N, p.FullPerJoin, p.AnchorPerJoin, p.AnchorPerJoin/p.FullPerJoin)
	}
	return nil
}

func runAblationSword(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultSwordConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunSwordComparison(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# SWORD-like exhaustive baseline vs tree-metric clustering (%s, n=%d)\n", d, res.N)
	fmt.Printf("# SWORD needs %d n-to-n measurements up front; framework construction used %.0f (%.1f%%)\n",
		res.SwordMeasurements, res.TreeMeasurements,
		100*res.TreeMeasurements/float64(res.SwordMeasurements))
	fmt.Printf("# SWORD answers are always correct (WPR 0) but its search is budget-bounded (%d expansions)\n",
		res.Budget)
	fmt.Printf("%-6s %-9s %-11s %-11s %-8s %-8s\n",
		"k", "swordRR", "swordSteps", "exhausted", "treeRR", "treeWPR")
	for _, p := range res.Points {
		fmt.Printf("%-6d %-9.3f %-11.1f %-11.3f %-8.3f %-8.3f\n",
			p.K, p.SwordRR, p.SwordSteps, p.SwordExhausted, p.TreeRR, p.TreeWPR)
	}
	return nil
}

func runSeriesFaults(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultFaultsConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunFaults(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# fault series (%s, n=%d, k=%d): async runtime over seeded fault injection\n", d, res.N, res.K)
	fmt.Printf("# partition cells cut a third of the peers off for the given number of transport sends, then heal\n")
	fmt.Printf("%-8s %-11s %-10s %-10s %-10s %-9s\n",
		"loss", "partition", "msgs", "settle.ms", "converged", "qsuccess")
	for _, p := range res.Points {
		fmt.Printf("%-8.2f %-11d %-10d %-10.1f %-10v %-9.3f\n",
			p.Loss, p.PartitionSends, p.MsgsToSettle, p.SettleMs, p.Converged, p.QuerySuccess)
	}
	return nil
}

func runSeriesTrace(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultTraceSeriesConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	// Attach the process recorder so -flight-dump captures the series'
	// black box (hops, staleness episodes, anomalies).
	cfg.Flight = telemetry.FlightDefault()
	res, err := sim.RunTraceSeries(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# trace series (%s, n=%d, k=%d): traced queries over seeded gossip loss\n", d, res.N, res.K)
	fmt.Printf("# complete: span tree carried every expected hop event; gap: >=1 dropped report surfaced as a gap span\n")
	fmt.Printf("%-8s %-9s %-7s %-9s %-9s %-6s %-10s %-9s %-10s\n",
		"loss", "agree", "hops", "complete", "gapTrees", "evts", "maxAge", "converged", "queries")
	for _, p := range res.Points {
		fmt.Printf("%-8.2f %-9.3f %-7.2f %-9d %-9d %-6.2f %-10d %-9v %-10d\n",
			p.Loss, p.Agreement, p.AvgHops, p.CompleteTraces, p.GapTraces,
			p.AvgHopEvents, p.MaxGossipAgeTicks, p.Converged, p.Queries)
	}
	return nil
}

func runSeriesChurn(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultChurnConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunChurn(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# churn series (%s, n=%d, k=%d): Poisson join/leave with incremental tree + overlay repair\n",
		d, res.N, res.K)
	fmt.Printf("# msgs/meas columns are per-epoch means; rebuild columns are the from-scratch baselines\n")
	fmt.Printf("%-7s %-6s %-7s %-8s %-11s %-12s %-10s %-12s %-7s %-8s %-7s %-6s\n",
		"rate", "joins", "leaves", "rounds", "repair.msg", "rebuild.msg", "meas.incr", "meas.rebld", "RR", "WPR", "stale", "fixed")
	for _, p := range res.Points {
		fmt.Printf("%-7.2f %-6d %-7d %-8.1f %-11.1f %-12.1f %-10.1f %-12.1f %-7.3f %-8.4f %-7d %-6v\n",
			p.Rate, p.Joins, p.Leaves, p.RepairRounds, p.RepairMsgs, p.RebuildMsgs,
			p.MeasIncremental, p.MeasRebuild, p.RR, p.WPR, p.StaleRejects, p.FixedPoint)
	}
	return nil
}

func runSeriesBandwidth(d sim.Dataset, scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultBandwidthConfig(d).Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunBandwidth(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# bandwidth series (%s, n=%d, k=%d): per-link delivered bytes per window, joined against predicted link bandwidth\n",
		d, res.N, res.K)
	fmt.Printf("# windows close at phase boundaries: gossip fan-in to the fixed point, then the fig-3 query workload\n")
	fmt.Printf("# ledger total: %d bytes / %d messages; delivered-counter delta: %d (reconciled=%v); violations: %d\n",
		res.LedgerBytes, res.LedgerMessages, res.DeliveredDelta,
		uint64(res.LedgerMessages) == res.DeliveredDelta, res.Violations)
	fmt.Printf("%-9s %-5s %-7s %-10s %-7s %-12s %-10s %-7s %-10s\n",
		"phase", "win", "link", "bytes", "msgs", "bytes/s", "pred.mbps", "util", "violation")
	for _, p := range res.Phases {
		w := p.Window
		for _, lw := range w.Links {
			fmt.Printf("%-9s %-5d %-7s %-10d %-7d %-12.1f %-10.2f %-7.4f %-10v\n",
				p.Name, w.Seq, fmt.Sprintf("%d-%d", lw.A, lw.B),
				lw.Bytes, lw.Messages, lw.BytesPerSec, lw.PredictedMbps, lw.Utilization, lw.Violation)
		}
		if w.OtherBytes > 0 {
			fmt.Printf("%-9s %-5d %-7s %-10d %-7d %-12s %-10s %-7s %-10s\n",
				p.Name, w.Seq, "other", w.OtherBytes, w.OtherMessages, "-", "-", "-", "-")
		}
	}
	return nil
}

func runFig6(scale float64, seed int64, parallel int, jsonOut bool) error {
	cfg := sim.DefaultScalabilityConfig().Scaled(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallelism = parallel
	res, err := sim.RunScalability(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("# Fig. 6 (%s subsets): query routing hops vs system size\n", res.Base)
	fmt.Printf("%-6s %-10s %-9s %-6s %-14s %-10s\n",
		"n", "avg.hops", "max.hops", "RR", "msgs/host/rnd", "cvg.rounds")
	for _, p := range res.Points {
		fmt.Printf("%-6d %-10.3f %-9d %-6.3f %-14.2f %-10.1f\n",
			p.N, p.AvgHops, p.MaxHops, p.RR, p.MsgsPerHostRound, p.ConvergeRounds)
	}
	return nil
}
