package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -fig should fail")
	}
	if err := run([]string{"-fig", "9"}); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := run([]string{"-fig", "3", "-dataset", "nope"}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunAblationsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	if err := run([]string{"-ablation", "ncut", "-scale", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ablation", "trees", "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ablation", "drift", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ablation", "construction", "-scale", "0.2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ablation", "nope"}); err == nil {
		t.Error("unknown ablation should fail")
	}
}

func TestRunSeriesFaultsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	if err := run([]string{"-series", "faults", "-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-series", "nope"}); err == nil {
		t.Error("unknown series should fail")
	}
}

func TestRunFig3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	if err := run([]string{"-fig", "3", "-dataset", "hp", "-scale", "0.02", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	if err := run([]string{"-fig", "4", "-dataset", "hp", "-scale", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	if err := run([]string{"-fig", "5", "-dataset", "hp", "-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	if err := run([]string{"-fig", "6", "-scale", "0.01"}); err != nil {
		t.Fatal(err)
	}
}
