package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bwcluster"
	"bwcluster/internal/dataset"
)

func testSystem(t *testing.T) *bwcluster.System {
	t.Helper()
	bw, err := dataset.Generate(dataset.HPConfig().WithN(30), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := dataset.SaveFile(path, bw); err != nil {
		t.Fatal(err)
	}
	sys, err := buildSystem(path, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newHandler(testSystem(t), nil, discardLogger()))
	t.Cleanup(srv.Close)
	return srv
}

// testAsyncServer serves from a live async runtime, settled so that
// decentralized answers are deterministic.
func testAsyncServer(t *testing.T) *httptest.Server {
	t.Helper()
	sys := testSystem(t)
	art, err := sys.AsyncRuntime(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(art.Close)
	if err := art.Settle(150*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(sys, art, discardLogger()))
	t.Cleanup(srv.Close)
	return srv
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return body
}

// TestReadyEndpoint: /v1/ready answers 503 while the forest is still
// building (the listener binds before the build) and flips to 200 —
// with the backend's host count and epoch — once SetBackend installs
// the built system. Query endpoints shed with 503 in the window, not
// 404 or a hang.
func TestReadyEndpoint(t *testing.T) {
	api := newAPI(discardLogger())
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	body := getJSON(t, srv.URL+"/v1/ready", http.StatusServiceUnavailable)
	if body["ready"] != false {
		t.Fatalf("unready body = %v", body)
	}
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=15", http.StatusServiceUnavailable)
	getJSON(t, srv.URL+"/v1/health", http.StatusServiceUnavailable)

	sys := testSystem(t)
	api.SetBackend(sys, nil)
	body = getJSON(t, srv.URL+"/v1/ready", http.StatusOK)
	if body["ready"] != true {
		t.Fatalf("ready body = %v", body)
	}
	if int(body["hosts"].(float64)) != sys.Len() {
		t.Errorf("ready hosts = %v, want %d", body["hosts"], sys.Len())
	}
	if uint64(body["epoch"].(float64)) != sys.Epoch() {
		t.Errorf("ready epoch = %v, want %d", body["epoch"], sys.Epoch())
	}
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=15", http.StatusOK)
}

func TestInfoEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/info", http.StatusOK)
	if body["hosts"].(float64) != 30 {
		t.Errorf("hosts = %v", body["hosts"])
	}
	if body["constant"].(float64) != 100 {
		t.Errorf("constant = %v", body["constant"])
	}
}

func TestClusterEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/cluster?k=4&b=15", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("central cluster not found: %v", body)
	}
	if len(body["members"].([]any)) != 4 {
		t.Errorf("members = %v", body["members"])
	}

	body = getJSON(t, srv.URL+"/v1/cluster?k=4&b=15&mode=decentral&start=5", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("decentral cluster not found: %v", body)
	}
	if body["classMbps"].(float64) < 15 {
		t.Errorf("class %v below request", body["classMbps"])
	}

	getJSON(t, srv.URL+"/v1/cluster?b=15", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=4", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=x&b=15", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=15&mode=nope", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=15&mode=decentral&start=999", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=1&b=15", http.StatusBadRequest)
}

func TestNodeEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/node?set=0,1,2&b=10", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("node not found: %v", body)
	}
	node := int(body["node"].(float64))
	if node == 0 || node == 1 || node == 2 {
		t.Errorf("node %d is in the input set", node)
	}
	getJSON(t, srv.URL+"/v1/node?b=10", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/node?set=0,x&b=10", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/node?set=0,99&b=10", http.StatusBadRequest)
}

func TestPredictEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/predict?u=2&v=7", http.StatusOK)
	if body["predictedMbps"].(float64) <= 0 || body["measuredMbps"].(float64) <= 0 {
		t.Errorf("non-positive bandwidths: %v", body)
	}
	getJSON(t, srv.URL+"/v1/predict?u=2", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/predict?u=2&v=99", http.StatusBadRequest)
}

func TestTightestEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/tightest?k=5", http.StatusOK)
	if body["found"] != true || len(body["members"].([]any)) != 5 {
		t.Fatalf("tightest = %v", body)
	}
	getJSON(t, srv.URL+"/v1/tightest?k=1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/tightest", http.StatusBadRequest)
}

func TestLabelEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/label?h=3", http.StatusOK)
	if body["label"].(string) == "" {
		t.Error("empty label")
	}
	getJSON(t, srv.URL+"/v1/label?h=99", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/label", http.StatusBadRequest)
}

// TestHealthEndpoint: the sync server is ready the moment it answers;
// the settled async server reports the full health summary with 200.
func TestHealthEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/health", http.StatusOK)
	if body["mode"] != "sync" || body["converged"] != true {
		t.Fatalf("sync health = %v", body)
	}

	asrv := testAsyncServer(t)
	body = getJSON(t, asrv.URL+"/v1/health", http.StatusOK)
	if body["mode"] != "async" || body["converged"] != true {
		t.Fatalf("async health = %v", body)
	}
	if body["hosts"].(float64) != 30 {
		t.Errorf("hosts = %v", body["hosts"])
	}
	if body["pendingReplies"].(float64) != 0 {
		t.Errorf("pendingReplies = %v", body["pendingReplies"])
	}
}

// TestMembershipEndpoint: the sync server reports the static host set;
// the async server serves the liveness tracker's snapshot — everyone
// alive after settle, epoch equal to the join count, one join event per
// host in the log.
func TestMembershipEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/membership", http.StatusOK)
	if body["mode"] != "sync" || body["alive"].(float64) != 30 {
		t.Fatalf("sync membership = %v", body)
	}

	asrv := testAsyncServer(t)
	body = getJSON(t, asrv.URL+"/v1/membership", http.StatusOK)
	if body["mode"] != "async" {
		t.Fatalf("async membership mode = %v", body["mode"])
	}
	if body["alive"].(float64) != 30 || body["epoch"].(float64) != 30 {
		t.Fatalf("async membership = %v", body)
	}
	if body["suspect"].(float64) != 0 || body["dead"].(float64) != 0 {
		t.Fatalf("settled runtime has unhealthy hosts: %v", body)
	}
	hosts := body["hosts"].([]any)
	if len(hosts) != 30 {
		t.Fatalf("host states = %d, want 30", len(hosts))
	}
	events := body["events"].([]any)
	if len(events) != 30 {
		t.Fatalf("events = %d, want 30 joins", len(events))
	}
	first := events[0].(map[string]any)
	if first["kind"] != "join" {
		t.Errorf("first event kind = %v, want join", first["kind"])
	}
}

// TestFlightEndpoint: flight snapshots exist only in async mode; after
// a decentralized query the ring holds its hop events.
func TestFlightEndpoint(t *testing.T) {
	srv := testServer(t)
	getJSON(t, srv.URL+"/v1/flight", http.StatusNotFound)

	asrv := testAsyncServer(t)
	getJSON(t, asrv.URL+"/v1/cluster?k=4&b=15&mode=decentral&start=5", http.StatusOK)
	body := getJSON(t, asrv.URL+"/v1/flight", http.StatusOK)
	if body["cap"].(float64) <= 0 {
		t.Fatalf("flight cap = %v", body["cap"])
	}
	if body["seq"].(float64) == 0 {
		t.Error("flight ring empty after a decentralized query")
	}
	resp, err := http.Get(asrv.URL + "/v1/flight?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if len(text) == 0 {
		t.Error("text flight dump is empty")
	}
}

// TestBandwidthEndpoint: the bandwidth ledger exists only in async mode;
// a settled runtime has gossiped, so the ledger's cumulative accounting
// is non-empty and split by message kind.
func TestBandwidthEndpoint(t *testing.T) {
	srv := testServer(t)
	getJSON(t, srv.URL+"/v1/bandwidth", http.StatusNotFound)

	asrv := testAsyncServer(t)
	getJSON(t, asrv.URL+"/v1/cluster?k=4&b=15&mode=decentral&start=5", http.StatusOK)
	body := getJSON(t, asrv.URL+"/v1/bandwidth", http.StatusOK)
	if body["topK"].(float64) <= 0 {
		t.Fatalf("topK = %v", body["topK"])
	}
	if body["utilizationThreshold"].(float64) <= 0 {
		t.Fatalf("threshold = %v", body["utilizationThreshold"])
	}
	if body["totalBytes"].(float64) <= 0 || body["totalMessages"].(float64) <= 0 {
		t.Fatalf("settled runtime accounted no traffic: %v", body)
	}
	kinds, _ := body["kinds"].([]any)
	if len(kinds) == 0 {
		t.Fatal("no per-kind split")
	}
	k0 := kinds[0].(map[string]any)
	if k0["kind"].(string) == "" || k0["bytes"].(float64) <= 0 {
		t.Fatalf("kind total = %v", k0)
	}
}

// TestAsyncTraceEndpoint: a traced query routed over the live runtime
// returns one reassembled span tree whose hop spans carry host ids.
func TestAsyncTraceEndpoint(t *testing.T) {
	asrv := testAsyncServer(t)
	body := getJSON(t, asrv.URL+"/v1/trace?k=4&b=15&start=5", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("trace query found nothing: %v", body)
	}
	span, ok := body["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no span tree: %v", body["trace"])
	}
	children, _ := span["children"].([]any)
	if len(children) == 0 {
		t.Fatal("span tree has no hop spans")
	}
	hop := children[0].(map[string]any)
	attrs, _ := hop["attrs"].(map[string]any)
	if attrs == nil || attrs["host"] == nil {
		t.Fatalf("hop span carries no host attr: %v", hop)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -data should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing.csv")}); err == nil {
		t.Error("missing file should fail")
	}
}

// TestConcurrentRequests hammers the (now mutex-free) handler from many
// goroutines mixing every endpoint; under -race this validates that
// serving leans safely on the System concurrency guarantee.
func TestConcurrentRequests(t *testing.T) {
	srv := testServer(t)
	paths := []string{
		"/v1/info",
		"/v1/cluster?k=4&b=30",
		"/v1/cluster?k=4&b=30&mode=decentral",
		"/v1/predict?u=0&v=5",
		"/v1/tightest?k=3",
		"/v1/label?h=2",
		"/v1/node?set=0,1&b=5",
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				getJSON(t, srv.URL+paths[(g+i)%len(paths)], http.StatusOK)
			}
		}(g)
	}
	wg.Wait()
}
