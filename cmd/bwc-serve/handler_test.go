package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"bwcluster"
	"bwcluster/internal/dataset"
)

func testSystem(t *testing.T) *bwcluster.System {
	t.Helper()
	bw, err := dataset.Generate(dataset.HPConfig().WithN(30), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := dataset.SaveFile(path, bw); err != nil {
		t.Fatal(err)
	}
	sys, err := buildSystem(path, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newHandler(testSystem(t), discardLogger()))
	t.Cleanup(srv.Close)
	return srv
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return body
}

func TestInfoEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/info", http.StatusOK)
	if body["hosts"].(float64) != 30 {
		t.Errorf("hosts = %v", body["hosts"])
	}
	if body["constant"].(float64) != 100 {
		t.Errorf("constant = %v", body["constant"])
	}
}

func TestClusterEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/cluster?k=4&b=15", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("central cluster not found: %v", body)
	}
	if len(body["members"].([]any)) != 4 {
		t.Errorf("members = %v", body["members"])
	}

	body = getJSON(t, srv.URL+"/v1/cluster?k=4&b=15&mode=decentral&start=5", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("decentral cluster not found: %v", body)
	}
	if body["classMbps"].(float64) < 15 {
		t.Errorf("class %v below request", body["classMbps"])
	}

	getJSON(t, srv.URL+"/v1/cluster?b=15", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=4", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=x&b=15", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=15&mode=nope", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=15&mode=decentral&start=999", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/cluster?k=1&b=15", http.StatusBadRequest)
}

func TestNodeEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/node?set=0,1,2&b=10", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("node not found: %v", body)
	}
	node := int(body["node"].(float64))
	if node == 0 || node == 1 || node == 2 {
		t.Errorf("node %d is in the input set", node)
	}
	getJSON(t, srv.URL+"/v1/node?b=10", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/node?set=0,x&b=10", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/node?set=0,99&b=10", http.StatusBadRequest)
}

func TestPredictEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/predict?u=2&v=7", http.StatusOK)
	if body["predictedMbps"].(float64) <= 0 || body["measuredMbps"].(float64) <= 0 {
		t.Errorf("non-positive bandwidths: %v", body)
	}
	getJSON(t, srv.URL+"/v1/predict?u=2", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/predict?u=2&v=99", http.StatusBadRequest)
}

func TestTightestEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/tightest?k=5", http.StatusOK)
	if body["found"] != true || len(body["members"].([]any)) != 5 {
		t.Fatalf("tightest = %v", body)
	}
	getJSON(t, srv.URL+"/v1/tightest?k=1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/tightest", http.StatusBadRequest)
}

func TestLabelEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/label?h=3", http.StatusOK)
	if body["label"].(string) == "" {
		t.Error("empty label")
	}
	getJSON(t, srv.URL+"/v1/label?h=99", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/label", http.StatusBadRequest)
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -data should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing.csv")}); err == nil {
		t.Error("missing file should fail")
	}
}

// TestConcurrentRequests hammers the (now mutex-free) handler from many
// goroutines mixing every endpoint; under -race this validates that
// serving leans safely on the System concurrency guarantee.
func TestConcurrentRequests(t *testing.T) {
	srv := testServer(t)
	paths := []string{
		"/v1/info",
		"/v1/cluster?k=4&b=30",
		"/v1/cluster?k=4&b=30&mode=decentral",
		"/v1/predict?u=0&v=5",
		"/v1/tightest?k=3",
		"/v1/label?h=2",
		"/v1/node?set=0,1&b=5",
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				getJSON(t, srv.URL+paths[(g+i)%len(paths)], http.StatusOK)
			}
		}(g)
	}
	wg.Wait()
}
