package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint drives query traffic through every instrumented
// layer and asserts /metrics exposes the advertised families in valid
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	// Touch each layer: centralized scan, decentralized routing, HTTP.
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=20", http.StatusOK)
	getJSON(t, srv.URL+"/v1/cluster?k=4&b=20&mode=decentral&start=2", http.StatusOK)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// One family per instrumented layer, at least; the acceptance bar is
	// >= 12 distinct series spanning predtree, cluster, overlay and HTTP.
	for _, family := range []string{
		"bwc_predtree_build_seconds",
		"bwc_predtree_trees_built_total",
		"bwc_cluster_scan_rows_total",
		"bwc_cluster_index_cache_hits_total",
		"bwc_overlay_queries_total",
		"bwc_overlay_query_hops",
		"bwc_overlay_gossip_messages_total",
		"bwc_system_build_seconds",
		"bwc_system_query_seconds",
		"bwc_http_requests_total",
		"bwc_http_request_seconds",
		"bwc_http_in_flight_requests",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	// Count distinct series (non-comment sample lines, family name part).
	series := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		series[name] = true
		// Minimal format validity: every sample line has exactly one value
		// after the name/labels.
		fields := strings.Fields(line[strings.LastIndexByte(line, '}')+1:])
		if len(fields) == 0 {
			t.Errorf("malformed sample line %q", line)
		}
	}
	if len(series) < 12 {
		t.Errorf("only %d distinct series exposed, want >= 12:\n%v", len(series), series)
	}
}

// TestMetricsScrapeUnderTraffic scrapes /metrics concurrently with query
// traffic; under -race this validates the exposition snapshot path
// against lock-free writers.
func TestMetricsScrapeUnderTraffic(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if g%2 == 0 {
					if code, _ := get(t, srv.URL+"/metrics"); code != http.StatusOK {
						t.Errorf("/metrics status %d", code)
					}
				} else {
					getJSON(t, srv.URL+"/v1/cluster?k=3&b=25&mode=decentral", http.StatusOK)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTraceEndpoint(t *testing.T) {
	srv := testServer(t)
	body := getJSON(t, srv.URL+"/v1/trace?k=4&b=15&start=5", http.StatusOK)
	if body["found"] != true {
		t.Fatalf("trace query found no cluster: %v", body)
	}
	tr, ok := body["trace"].(map[string]any)
	if !ok {
		t.Fatalf("trace is not an object: %v", body["trace"])
	}
	if tr["name"] != "query" {
		t.Errorf("root span name = %v", tr["name"])
	}
	if tr["durationNs"].(float64) <= 0 {
		t.Errorf("root span durationNs = %v", tr["durationNs"])
	}
	attrs, _ := tr["attrs"].(map[string]any)
	if attrs["start"].(float64) != 5 || attrs["k"].(float64) != 4 {
		t.Errorf("root attrs = %v", attrs)
	}
	hops, _ := tr["children"].([]any)
	if len(hops) == 0 {
		t.Fatal("trace has no hop spans")
	}
	nHops := int(body["hops"].(float64))
	if len(hops) != nHops+1 {
		t.Errorf("%d hop spans for %d hops (want hops+1 visited peers)", len(hops), nHops)
	}
	first := hops[0].(map[string]any)
	if first["name"] != "hop" {
		t.Errorf("child span name = %v", first["name"])
	}
	hattrs, _ := first["attrs"].(map[string]any)
	if hattrs["host"].(float64) != 5 {
		t.Errorf("first hop host = %v, want the start host 5", hattrs["host"])
	}
	if _, ok := hattrs["radius"]; !ok {
		t.Errorf("hop span missing radius attr: %v", hattrs)
	}
	last := hops[len(hops)-1].(map[string]any)
	lattrs, _ := last["attrs"].(map[string]any)
	if lattrs["answered"] != true {
		t.Errorf("last hop not marked answered: %v", lattrs)
	}

	getJSON(t, srv.URL+"/v1/trace?b=15", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/trace?k=4", http.StatusBadRequest)
	getJSON(t, srv.URL+"/v1/trace?k=4&b=15&start=999", http.StatusBadRequest)
}

func TestAccessLogFields(t *testing.T) {
	bw := testSystem(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv := httptest.NewServer(newHandler(bw, nil, logger))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	reqID := resp.Header.Get("X-Request-Id")
	resp.Body.Close()
	if reqID == "" {
		t.Error("response missing X-Request-Id header")
	}

	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %v\n%s", err, buf.String())
	}
	if entry["msg"] != "request" {
		t.Errorf("msg = %v", entry["msg"])
	}
	if entry["id"] != reqID {
		t.Errorf("logged id %v != header id %q", entry["id"], reqID)
	}
	if entry["method"] != "GET" || entry["path"] != "/v1/info" {
		t.Errorf("method/path = %v/%v", entry["method"], entry["path"])
	}
	if entry["status"].(float64) != 200 {
		t.Errorf("status = %v", entry["status"])
	}
	if entry["bytes"].(float64) <= 0 {
		t.Errorf("bytes = %v", entry["bytes"])
	}
	if _, ok := entry["durMs"]; !ok {
		t.Error("log missing durMs")
	}
	if entry["remote"] == "" {
		t.Error("log missing remote")
	}
}

func TestPprofIndex(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
}

// TestServeGracefulShutdown cancels serve's context (as a signal would)
// while a slow request is in flight and asserts the request completes
// during the drain.
func TestServeGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.Write([]byte("done"))
	})
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: mux}
	ln, err := listen(srv)
	if err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&logMu, &logBuf}, nil))

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(ctx, srv, ln, logger, 5*time.Second) }()

	bodyCh := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			bodyCh <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		bodyCh <- string(body)
	}()
	<-started
	cancel() // the "signal"
	time.Sleep(50 * time.Millisecond)
	close(release)

	if body := <-bodyCh; body != "done" {
		t.Errorf("in-flight request body = %q, want done", body)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve returned %v", err)
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, "draining in-flight requests") {
		t.Errorf("no drain log:\n%s", logs)
	}
	if !strings.Contains(logs, "drained; server stopped") {
		t.Errorf("no drained log:\n%s", logs)
	}
}

func TestServeDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	})
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: mux}
	ln, err := listen(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(ctx, srv, ln, discardLogger(), 30*time.Millisecond) }()

	// The stuck request is expected to die with the hard close; ignore it.
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()
	select {
	case err := <-serveErr:
		if err == nil || !strings.Contains(err.Error(), "drain") {
			t.Errorf("want drain timeout error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain timeout")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
