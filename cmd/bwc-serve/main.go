// Command bwc-serve exposes a built clustering system over HTTP: load a
// bandwidth matrix, build the prediction framework and overlay once, and
// answer cluster/node/prediction queries as JSON.
//
//	bwc-serve -data hp.csv -addr :8080
//
// Endpoints:
//
//	GET /v1/info                         system summary
//	GET /v1/cluster?k=10&b=50            centralized cluster query
//	GET /v1/cluster?k=10&b=50&mode=decentral&start=3
//	GET /v1/node?set=1,2,3&b=50          single-node search
//	GET /v1/predict?u=3&v=29             bandwidth prediction
//	GET /v1/tightest?k=8                 minimum-diameter cluster
//	GET /v1/label?h=7                    a host's distance label
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"bwcluster"
	"bwcluster/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("bwc-serve: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwc-serve", flag.ContinueOnError)
	data := fs.String("data", "", "bandwidth matrix file (.csv or .gob); required")
	addr := fs.String("addr", ":8080", "listen address")
	nCut := fs.Int("ncut", 10, "overlay propagation cutoff n_cut")
	seed := fs.Int64("seed", 1, "construction seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	sys, err := buildSystem(*data, *nCut, *seed)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(sys),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("bwc-serve: %d hosts ready on %s", sys.Len(), *addr)
	return srv.ListenAndServe()
}

// buildSystem loads the matrix and constructs the clustering system.
func buildSystem(path string, nCut int, seed int64) (*bwcluster.System, error) {
	m, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	raw := make([][]float64, m.N())
	for i := range raw {
		raw[i] = make([]float64, m.N())
		for j := range raw[i] {
			if i != j {
				raw[i][j] = m.At(i, j)
			}
		}
	}
	return bwcluster.New(raw, bwcluster.WithNCut(nCut), bwcluster.WithSeed(seed))
}
