// Command bwc-serve exposes a built clustering system over HTTP: load a
// bandwidth matrix, build the prediction framework and overlay once, and
// answer cluster/node/prediction queries as JSON.
//
//	bwc-serve -data hp.csv -addr :8080
//
// Endpoints:
//
//	GET /v1/info                         system summary
//	GET /v1/cluster?k=10&b=50            centralized cluster query
//	GET /v1/cluster?k=10&b=50&mode=decentral&start=3
//	GET /v1/node?set=1,2,3&b=50          single-node search
//	GET /v1/predict?u=3&v=29             bandwidth prediction
//	GET /v1/tightest?k=8                 minimum-diameter cluster
//	GET /v1/label?h=7                    a host's distance label
//	GET /v1/trace?k=10&b=50&start=3      traced decentralized query (span tree JSON)
//	GET /v1/health                       readiness + overlay health monitor (503 until converged)
//	GET /v1/membership                   liveness tracker snapshot (static host set without -async)
//	GET /v1/flight                       flight-recorder snapshot (-async only; ?format=text)
//	GET /metrics                         Prometheus text-format metrics
//	GET /debug/pprof/                    stdlib profiler index
//
// With -async, decentralized queries (mode=decentral, /v1/trace) travel
// a live message-passing overlay runtime instead of the synchronous
// engine: gossip runs continuously, /v1/health answers readiness from
// the convergence monitor, and /v1/flight exposes the runtime's bounded
// black-box event ring for post-mortems.
//
// Every request gets an X-Request-Id and one structured (slog) access
// log line on stderr. SIGINT/SIGTERM drain in-flight requests before
// exiting (see -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bwcluster"
	"bwcluster/internal/buildinfo"
	"bwcluster/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwc-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwc-serve", flag.ContinueOnError)
	data := fs.String("data", "", "bandwidth matrix file (.csv or .gob); required")
	addr := fs.String("addr", ":8080", "listen address")
	nCut := fs.Int("ncut", 10, "overlay propagation cutoff n_cut")
	seed := fs.Int64("seed", 1, "construction seed")
	async := fs.Bool("async", false, "serve decentralized queries from a live message-passing runtime (enables /v1/flight; /v1/health reports 503 until gossip converges)")
	tick := fs.Duration("tick", 0, "async runtime gossip period (0: 1ms; requires -async)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("bwc-serve", buildinfo.String())
		return nil
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	if *tick != 0 && !*async {
		return fmt.Errorf("-tick requires -async")
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	buildStart := time.Now()
	// The listener binds before the forest builds: readiness probes get
	// a truthful 503 from /v1/ready during the build instead of a
	// connection refusal, and flip to 200 the moment SetBackend installs
	// the built system.
	api := newAPI(logger)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := listen(srv)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(ctx, srv, ln, logger, *drain) }()
	sys, err := buildSystem(*data, *nCut, *seed)
	if err != nil {
		_ = srv.Close()
		<-serveErr
		return err
	}
	// The async runtime starts gossiping as soon as the system is built;
	// /v1/ready flips immediately but /v1/health answers 503 until the
	// convergence monitor flips — readiness stays truthful instead of
	// blocking startup on Settle.
	var art *bwcluster.AsyncRuntime
	if *async {
		art, err = sys.AsyncRuntime(*tick)
		if err != nil {
			_ = srv.Close()
			<-serveErr
			return err
		}
		defer art.Close()
	}
	api.SetBackend(sys, art)
	logger.Info("ready",
		"hosts", sys.Len(),
		"addr", *addr,
		"async", *async,
		"buildMs", time.Since(buildStart).Milliseconds(),
		"version", buildinfo.String(),
	)
	return <-serveErr
}

// listen opens srv's TCP listener; split out so tests can bind :0 and
// learn the chosen port.
func listen(srv *http.Server) (net.Listener, error) {
	addr := srv.Addr
	if addr == "" {
		addr = ":http"
	}
	return net.Listen("tcp", addr)
}

// serveListener runs srv on ln until it fails or ctx is cancelled (a
// shutdown signal), then drains in-flight requests via
// http.Server.Shutdown, bounded by drainTimeout. A drain that overruns
// the timeout falls back to a hard close so the process still exits.
func serveListener(ctx context.Context, srv *http.Server, ln net.Listener, logger *slog.Logger, drainTimeout time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	logger.Info("shutdown signal; draining in-flight requests", "timeout", drainTimeout.String())
	drainStart := time.Now()
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Error("drain incomplete; closing", "err", err.Error())
		_ = srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("drained; server stopped", "drainMs", time.Since(drainStart).Milliseconds())
	return nil
}

// buildSystem loads the matrix and constructs the clustering system.
func buildSystem(path string, nCut int, seed int64) (*bwcluster.System, error) {
	m, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	raw := make([][]float64, m.N())
	for i := range raw {
		raw[i] = make([]float64, m.N())
		for j := range raw[i] {
			if i != j {
				raw[i][j] = m.At(i, j)
			}
		}
	}
	return bwcluster.New(raw, bwcluster.WithNCut(nCut), bwcluster.WithSeed(seed))
}
