package main

import (
	"log/slog"
	"net/http"

	"bwcluster"
	"bwcluster/internal/serveapi"
	"bwcluster/internal/telemetry"
)

// newAPI builds the shared serving API handler with this process's
// metrics registry mounted at /metrics. The handler starts unready
// (every query endpoint answers 503, /v1/ready reports false) until
// SetBackend installs the built system.
func newAPI(logger *slog.Logger) *serveapi.Handler {
	return serveapi.New(serveapi.Config{
		Logger:  logger,
		Metrics: telemetry.Default().Handler(),
	})
}

// newHandler builds the API handler with the backend already installed:
// the form the tests exercise, and what run uses once the build stage
// completes.
func newHandler(sys *bwcluster.System, async *bwcluster.AsyncRuntime, logger *slog.Logger) http.Handler {
	h := newAPI(logger)
	h.SetBackend(sys, async)
	return h
}
