package main

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"bwcluster"
	"bwcluster/internal/telemetry"
)

// handler serves the JSON API. A built System is safe for concurrent
// use (queries are read-only; the centralized query cache is internally
// lock-guarded), so requests are served without any serializing mutex —
// the server scales with GOMAXPROCS instead of handling one query at a
// time. async is non-nil when the server was started with -async; it
// then routes decentralized queries through the live message-passing
// runtime and exposes its health monitor and flight recorder.
type handler struct {
	sys   *bwcluster.System
	async *bwcluster.AsyncRuntime
}

// queryTimeout bounds how long an async-routed query may wait for its
// routed answer before the request fails (and the runtime flight
// recorder logs a query_timeout anomaly).
const queryTimeout = 10 * time.Second

func newHandler(sys *bwcluster.System, async *bwcluster.AsyncRuntime, logger *slog.Logger) http.Handler {
	h := &handler{sys: sys, async: async}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", h.info)
	mux.HandleFunc("GET /v1/cluster", h.cluster)
	mux.HandleFunc("GET /v1/node", h.node)
	mux.HandleFunc("GET /v1/predict", h.predict)
	mux.HandleFunc("GET /v1/tightest", h.tightest)
	mux.HandleFunc("GET /v1/label", h.label)
	mux.HandleFunc("GET /v1/trace", h.trace)
	mux.HandleFunc("GET /v1/health", h.health)
	mux.HandleFunc("GET /v1/membership", h.membership)
	mux.HandleFunc("GET /v1/flight", h.flight)
	// Observability plane: metrics exposition and the stdlib profiler.
	mux.Handle("GET /metrics", telemetry.Default().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return withObservability(logger, mux)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is out can only be logged by the
	// server; the encoder writing to a ResponseWriter cannot fail for the
	// value types used here.
	_ = json.NewEncoder(w).Encode(body)
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, errors.New("missing required parameter " + name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, errors.New("parameter " + name + " must be an integer")
	}
	return v, nil
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, errors.New("missing required parameter " + name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, errors.New("parameter " + name + " must be a number")
	}
	return v, nil
}

func (h *handler) info(w http.ResponseWriter, r *http.Request) {
	st := h.sys.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"hosts":          h.sys.Len(),
		"classes":        h.sys.Classes(),
		"constant":       h.sys.Constant(),
		"trees":          st.Trees,
		"measurements":   st.Measurements,
		"gossipRounds":   st.GossipRounds,
		"gossipMessages": st.GossipMessages,
	})
}

type clusterBody struct {
	Members    []int   `json:"members"`
	Found      bool    `json:"found"`
	Hops       int     `json:"hops,omitempty"`
	AnsweredBy int     `json:"answeredBy,omitempty"`
	ClassMbps  float64 `json:"classMbps,omitempty"`
}

func (h *handler) cluster(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k")
	if err != nil {
		badRequest(w, err)
		return
	}
	b, err := floatParam(r, "b")
	if err != nil {
		badRequest(w, err)
		return
	}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "central":
		members, err := h.sys.FindCluster(k, b)
		if err != nil {
			badRequest(w, err)
			return
		}
		writeJSON(w, http.StatusOK, clusterBody{Members: members, Found: members != nil})
	case "decentral":
		start := 0
		if r.URL.Query().Get("start") != "" {
			if start, err = intParam(r, "start"); err != nil {
				badRequest(w, err)
				return
			}
		}
		var res bwcluster.QueryResult
		if h.async != nil {
			res, err = h.async.Query(start, k, b, queryTimeout)
		} else {
			res, err = h.sys.Query(start, k, b)
		}
		if err != nil {
			badRequest(w, err)
			return
		}
		writeJSON(w, http.StatusOK, clusterBody{
			Members: res.Members, Found: res.Found(),
			Hops: res.Hops, AnsweredBy: res.AnsweredBy, ClassMbps: res.Class,
		})
	default:
		badRequest(w, errors.New("mode must be central or decentral"))
	}
}

func (h *handler) node(w http.ResponseWriter, r *http.Request) {
	b, err := floatParam(r, "b")
	if err != nil {
		badRequest(w, err)
		return
	}
	rawSet := r.URL.Query().Get("set")
	if rawSet == "" {
		badRequest(w, errors.New("missing required parameter set"))
		return
	}
	var set []int
	for _, part := range strings.Split(rawSet, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			badRequest(w, errors.New("set must be comma-separated host ids"))
			return
		}
		set = append(set, v)
	}
	res, err := h.sys.FindNodeForSet(set, b)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":           res.Node,
		"found":          res.Found(),
		"worstBandwidth": res.WorstBandwidth,
	})
}

func (h *handler) predict(w http.ResponseWriter, r *http.Request) {
	u, err := intParam(r, "u")
	if err != nil {
		badRequest(w, err)
		return
	}
	v, err := intParam(r, "v")
	if err != nil {
		badRequest(w, err)
		return
	}
	pred, err := h.sys.PredictBandwidth(u, v)
	if err != nil {
		badRequest(w, err)
		return
	}
	measured, err := h.sys.MeasuredBandwidth(u, v)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"predictedMbps": pred,
		"measuredMbps":  measured,
	})
}

func (h *handler) tightest(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k")
	if err != nil {
		badRequest(w, err)
		return
	}
	members, worst, err := h.sys.TightestCluster(k)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"members":        members,
		"found":          members != nil,
		"worstBandwidth": worst,
	})
}

// trace runs a decentralized query with tracing enabled and returns the
// span tree alongside the result: one child span per overlay hop with
// the peer id, the routing signal (CRT promise) and the candidate
// radius. With -async the query instead travels the live message-passing
// runtime and the tree is reassembled from hop span events reported by
// every participating peer — including peers in other processes —
// with dropped reports surfacing as explicit "gap" spans.
// GET /v1/trace?k=10&b=50&start=3 (start defaults to 0).
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k")
	if err != nil {
		badRequest(w, err)
		return
	}
	b, err := floatParam(r, "b")
	if err != nil {
		badRequest(w, err)
		return
	}
	start := 0
	if r.URL.Query().Get("start") != "" {
		if start, err = intParam(r, "start"); err != nil {
			badRequest(w, err)
			return
		}
	}
	var res bwcluster.QueryResult
	var span *telemetry.Span
	if h.async != nil {
		res, span, err = h.async.QueryTraced(start, k, b, queryTimeout)
	} else {
		res, span, err = h.sys.QueryTraced(start, k, b)
	}
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"members":    res.Members,
		"found":      res.Found(),
		"hops":       res.Hops,
		"answeredBy": res.AnsweredBy,
		"classMbps":  res.Class,
		"trace":      span,
	})
}

// health answers readiness truthfully. Without -async a built System is
// immediately ready (construction converged the overlay synchronously
// before the listener opened). With -async the live runtime's
// convergence monitor decides: until gossip has been quiet for the
// convergence window the body reports converged=false and the status is
// 503, so load balancers and readiness probes keep traffic away from a
// server whose routing tables are still moving. The body always carries
// the full health summary (gossip-age watermark, pending replies, trace
// backlog, logical clock).
func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	if h.async == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"mode":      "sync",
			"hosts":     h.sys.Len(),
			"converged": true,
		})
		return
	}
	hs := h.async.Health()
	status := http.StatusOK
	if !hs.Converged {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"mode":              "async",
		"hosts":             hs.Hosts,
		"converged":         hs.Converged,
		"maxGossipAgeTicks": hs.MaxGossipAgeTicks,
		"pendingReplies":    hs.PendingReplies,
		"traceBacklog":      hs.TraceBacklog,
		"ticks":             hs.Ticks,
	})
}

// membership reports who is in the cluster and how alive they are.
// Without -async membership is static — the built System's host set,
// trivially all alive. With -async the body is the liveness tracker's
// snapshot: per-host status (a host whose gossip has gone quiet past
// the suspicion window reports suspect, past the death threshold dead),
// the membership epoch, and the recent join/leave/fail/suspect/recover
// event log.
func (h *handler) membership(w http.ResponseWriter, r *http.Request) {
	if h.async == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"mode":  "sync",
			"epoch": h.sys.Len(),
			"alive": h.sys.Len(),
		})
		return
	}
	snap := h.async.Membership()
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":    "async",
		"epoch":   snap.Epoch,
		"alive":   snap.Alive,
		"suspect": snap.Suspect,
		"dead":    snap.Dead,
		"left":    snap.Left,
		"hosts":   snap.Hosts,
		"events":  snap.Events,
	})
}

// flight snapshots the async runtime's flight recorder — the bounded
// black-box ring of structured overlay events. JSON by default;
// ?format=text renders the post-mortem dump format. Without -async
// there is no runtime to record, so the endpoint reports 404.
func (h *handler) flight(w http.ResponseWriter, r *http.Request) {
	if h.async == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "flight recorder requires -async"})
		return
	}
	rec := h.async.Flight()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = rec.WriteTo(w)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cap":    rec.Cap(),
		"seq":    rec.Seq(),
		"events": rec.Snapshot(),
	})
}

func (h *handler) label(w http.ResponseWriter, r *http.Request) {
	host, err := intParam(r, "h")
	if err != nil {
		badRequest(w, err)
		return
	}
	label, err := h.sys.DistanceLabel(host)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"host": host, "label": label})
}
