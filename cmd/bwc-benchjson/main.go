// Command bwc-benchjson converts `go test -bench` text output (read
// from stdin) into a machine-readable JSON report, so CI can archive
// benchmark results and diff them across commits.
//
//	go test -bench=. -benchmem ./... | bwc-benchjson > BENCH_raw.json
//
// With -matrix, the input is expected to come from a multi-iteration,
// multi-GOMAXPROCS run (`go test -bench ... -count 10 -cpu 1,2,4,8`):
// repeated samples of the same benchmark are aggregated into per-
// (benchmark, GOMAXPROCS) cells with mean/stddev/min, and paired
// sequential/parallel sub-benchmarks additionally produce a
// speedup-vs-GOMAXPROCS curve:
//
//	go test -run '^$' -bench ... -benchmem -count 10 -cpu 1,2,4,8 ./... |
//	    bwc-benchjson -matrix > BENCH_results.json
//
// With -gate FILE, no input is read; instead the matrix report in FILE
// is checked against the repo's performance invariants (DESIGN.md §8g):
// parallel variants must not be slower than their sequential siblings
// beyond noise (mean + 2·stddev of the difference, with a 5% relative
// floor, confirmed by the min-of-samples — see slowerBeyondNoise) at the
// host's hardware concurrency, the tracing-off query path must not
// be slower than tracing-on beyond the same noise bound, and
// incremental forest repair (remove + re-add of one host) must stay at
// least 10x cheaper than rebuilding the forest from scratch — the
// economics that justify churn-native membership (DESIGN.md §8h) —
// and the fleet router's cached query path must be at least 5x cheaper
// than the uncached proxy path (the economics that justify the serving
// tier's epoch-keyed cache; internal/fleet), and the ledger-on query
// path must stay within 3% of ledger-off (the bandwidth ledger's
// hot-path budget; internal/bwledger).
// An optional -baseline FILE diffs cell means against a committed
// report and WARNS (never fails) on >20% regressions, so drift is
// visible in CI logs without making the gate flaky across runner
// generations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bwcluster/internal/buildinfo"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// MatrixCell aggregates the repeated samples (-count) of one benchmark
// at one GOMAXPROCS level (-cpu).
type MatrixCell struct {
	Name          string  `json:"name"` // without the -N procs suffix
	Pkg           string  `json:"pkg,omitempty"`
	Procs         int     `json:"procs"`
	Samples       int     `json:"samples"`
	MeanNsPerOp   float64 `json:"meanNsPerOp"`
	StddevNsPerOp float64 `json:"stddevNsPerOp"`
	MinNsPerOp    float64 `json:"minNsPerOp"`
	BytesPerOp    int64   `json:"bytesPerOp,omitempty"`  // mean across samples
	AllocsPerOp   int64   `json:"allocsPerOp,omitempty"` // mean across samples
}

// SpeedupPoint is one point of the sequential-vs-parallel speedup curve:
// a benchmark with paired .../sequential and .../parallel sub-benchmarks
// compared at one GOMAXPROCS level.
type SpeedupPoint struct {
	Name               string  `json:"name"` // parent benchmark name
	Pkg                string  `json:"pkg,omitempty"`
	Procs              int     `json:"procs"`
	SequentialNsPerOp  float64 `json:"sequentialNsPerOp"`
	ParallelNsPerOp    float64 `json:"parallelNsPerOp"`
	Speedup            float64 `json:"speedup"` // sequential / parallel
	SequentialStddevNs float64 `json:"sequentialStddevNs"`
	ParallelStddevNs   float64 `json:"parallelStddevNs"`
	SequentialMinNs    float64 `json:"sequentialMinNs"`
	ParallelMinNs      float64 `json:"parallelMinNs"`
}

// Report is the full JSON document written to stdout. Raw parsed lines
// land in Benchmarks; -matrix mode fills Matrix and Speedups instead
// (the raw lines would repeat count × procs times).
type Report struct {
	GoVersion  string         `json:"goVersion"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	CPUs       int            `json:"cpus"`
	CPU        string         `json:"cpu,omitempty"`
	Build      string         `json:"build"`
	Benchmarks []Benchmark    `json:"benchmarks"`
	Matrix     []MatrixCell   `json:"matrix,omitempty"`
	Speedups   []SpeedupPoint `json:"speedups,omitempty"`
}

func main() {
	matrix := flag.Bool("matrix", false, "aggregate a -count/-cpu matrix run into mean/stddev cells and speedup curves")
	gate := flag.String("gate", "", "check the matrix report in `file` against the performance gate instead of reading stdin")
	baseline := flag.String("baseline", "", "committed matrix report to diff against in -gate mode (regressions warn, never fail)")
	flag.Parse()
	switch {
	case *gate != "":
		if err := runGate(*gate, *baseline, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bwc-benchjson: gate FAILED:", err)
			os.Exit(1)
		}
	case *matrix:
		if err := runMatrix(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bwc-benchjson:", err)
			os.Exit(1)
		}
	default:
		if err := run(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bwc-benchjson:", err)
			os.Exit(1)
		}
	}
}

// parse reads `go test -bench` output into a Report with raw Benchmarks.
func parse(in io.Reader) (Report, error) {
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Build:      buildinfo.String(),
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("read: %w", err)
	}
	return rep, nil
}

func writeJSON(out io.Writer, rep Report) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func run(in io.Reader, out io.Writer) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	return writeJSON(out, rep)
}

func runMatrix(in io.Reader, out io.Writer) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	rep.Matrix = aggregate(rep.Benchmarks)
	rep.Speedups = speedups(rep.Matrix)
	rep.Benchmarks = []Benchmark{} // cells supersede the repeated raw lines
	return writeJSON(out, rep)
}

// splitProcs strips the trailing -N GOMAXPROCS suffix `go test` appends
// to benchmark names (absent at GOMAXPROCS=1).
func splitProcs(name string) (base string, procs int) {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			return name[:i], n
		}
	}
	return name, 1
}

// aggregate folds repeated benchmark lines into per-(name, procs) cells,
// preserving first-appearance order.
func aggregate(benches []Benchmark) []MatrixCell {
	type key struct {
		pkg, name string
		procs     int
	}
	type acc struct {
		ns             []float64
		bytes, allocs  int64
		hasBytes       bool
		hasAllocsTotal bool
	}
	order := []key{}
	cells := map[key]*acc{}
	for _, b := range benches {
		base, procs := splitProcs(b.Name)
		k := key{pkg: b.Pkg, name: base, procs: procs}
		a, ok := cells[k]
		if !ok {
			a = &acc{}
			cells[k] = a
			order = append(order, k)
		}
		a.ns = append(a.ns, b.NsPerOp)
		a.bytes += b.BytesPerOp
		a.allocs += b.AllocsPerOp
		a.hasBytes = a.hasBytes || b.BytesPerOp > 0
		a.hasAllocsTotal = a.hasAllocsTotal || b.AllocsPerOp > 0
	}
	out := make([]MatrixCell, 0, len(order))
	for _, k := range order {
		a := cells[k]
		mean, sd, min := stats(a.ns)
		c := MatrixCell{
			Name:          k.name,
			Pkg:           k.pkg,
			Procs:         k.procs,
			Samples:       len(a.ns),
			MeanNsPerOp:   mean,
			StddevNsPerOp: sd,
			MinNsPerOp:    min,
		}
		if a.hasBytes {
			c.BytesPerOp = a.bytes / int64(len(a.ns))
		}
		if a.hasAllocsTotal {
			c.AllocsPerOp = a.allocs / int64(len(a.ns))
		}
		out = append(out, c)
	}
	return out
}

// stats returns the mean, sample standard deviation and minimum of xs.
func stats(xs []float64) (mean, stddev, min float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	min = xs[0]
	for _, x := range xs {
		mean += x
		if x < min {
			min = x
		}
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0, min
	}
	for _, x := range xs {
		stddev += (x - mean) * (x - mean)
	}
	stddev = math.Sqrt(stddev / float64(len(xs)-1))
	return mean, stddev, min
}

// speedups pairs .../sequential and .../parallel cells of the same parent
// benchmark at the same GOMAXPROCS level into a speedup curve.
func speedups(cells []MatrixCell) []SpeedupPoint {
	type key struct {
		pkg, parent string
		procs       int
	}
	seq := map[key]MatrixCell{}
	for _, c := range cells {
		if parent, ok := strings.CutSuffix(c.Name, "/sequential"); ok {
			seq[key{pkg: c.Pkg, parent: parent, procs: c.Procs}] = c
		}
	}
	var out []SpeedupPoint
	for _, c := range cells {
		parent, ok := strings.CutSuffix(c.Name, "/parallel")
		if !ok {
			continue
		}
		k := key{pkg: c.Pkg, parent: parent, procs: c.Procs}
		s, ok := seq[k]
		if !ok || c.MeanNsPerOp <= 0 {
			continue
		}
		out = append(out, SpeedupPoint{
			Name:               parent,
			Pkg:                c.Pkg,
			Procs:              c.Procs,
			SequentialNsPerOp:  s.MeanNsPerOp,
			ParallelNsPerOp:    c.MeanNsPerOp,
			Speedup:            s.MeanNsPerOp / c.MeanNsPerOp,
			SequentialStddevNs: s.StddevNsPerOp,
			ParallelStddevNs:   c.StddevNsPerOp,
			SequentialMinNs:    s.MinNsPerOp,
			ParallelMinNs:      c.MinNsPerOp,
		})
	}
	return out
}

// noiseBound returns the slack allowed before "a slower than b" counts as
// a real regression: two standard deviations of the difference of the
// means (the stddevs are independent, so they add in quadrature), with a
// 5% relative floor so single-digit-nanosecond cells and near-identical
// times cannot flake the gate.
func noiseBound(refMean, sdA, sdB float64) float64 {
	noise := 2 * math.Sqrt(sdA*sdA+sdB*sdB)
	if floor := 0.05 * refMean; noise < floor {
		noise = floor
	}
	return noise
}

// slowerBeyondNoise reports whether candidate is slower than reference
// beyond noise. The primary test is on means (candidate mean above the
// reference mean + 2·stddev bound); it must be CONFIRMED by the
// min-of-samples exceeding the reference min by >10%, because on a
// shared/1-CPU host background load inflates means and stddevs of
// microsecond-scale cells in whichever sub-benchmark it happens to land
// on, while the min of 10 samples is robust to such spikes — a real
// slowdown (code doing more work) shifts the min too.
func slowerBeyondNoise(candMean, candSd, candMin, refMean, refSd, refMin float64) bool {
	if candMean <= refMean+noiseBound(refMean, refSd, candSd) {
		return false
	}
	return candMin > refMin*1.10
}

// gateProcs picks the GOMAXPROCS level at which the parallel-vs-
// sequential invariant is enforced: the largest matrix level that does
// not exceed the measuring host's hardware concurrency. On a 4-vCPU CI
// runner that is the 4-proc column; on a 1-CPU dev container it is the
// 1-proc column, where the parallel entry points degrade to the
// sequential path and the invariant trivially holds — oversubscribed
// columns (procs > hardware CPUs) measure scheduler thrash, not the
// algorithm, and are reported but not gated.
func gateProcs(levels []int, hostCPUs int) int {
	best := 0
	for _, l := range levels {
		if l <= hostCPUs && l > best {
			best = l
		}
	}
	if best == 0 { // every level oversubscribes; gate the smallest
		for _, l := range levels {
			if best == 0 || l < best {
				best = l
			}
		}
	}
	return best
}

func loadReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// runGate enforces the performance invariants on a -matrix report.
func runGate(resultsPath, baselinePath string, out io.Writer) error {
	rep, err := loadReport(resultsPath)
	if err != nil {
		return err
	}
	if len(rep.Matrix) == 0 {
		return fmt.Errorf("%s has no matrix cells (generate it with bwc-benchjson -matrix)", resultsPath)
	}
	var failures []string

	// Invariant 1: parallel must not be slower than sequential beyond
	// noise at the host's hardware concurrency.
	levels := map[int]bool{}
	for _, s := range rep.Speedups {
		levels[s.Procs] = true
	}
	var lvls []int
	for l := range levels {
		lvls = append(lvls, l)
	}
	gp := gateProcs(lvls, rep.CPUs)
	fmt.Fprintf(out, "gate: host has %d CPUs; enforcing parallel-vs-sequential at GOMAXPROCS=%d\n", rep.CPUs, gp)
	for _, s := range rep.Speedups {
		status := "ok"
		if s.Procs == gp {
			if slowerBeyondNoise(s.ParallelNsPerOp, s.ParallelStddevNs, s.ParallelMinNs,
				s.SequentialNsPerOp, s.SequentialStddevNs, s.SequentialMinNs) {
				failures = append(failures, fmt.Sprintf(
					"%s [%s] at %d procs: parallel %.0fns/op (min %.0f) slower than sequential %.0fns/op (min %.0f) beyond noise",
					s.Name, s.Pkg, s.Procs, s.ParallelNsPerOp, s.ParallelMinNs, s.SequentialNsPerOp, s.SequentialMinNs))
				status = "FAIL"
			} else {
				status = "gated ok"
			}
		}
		fmt.Fprintf(out, "  %-50s procs=%d speedup=%.2fx (seq %.3gms, par %.3gms) %s\n",
			s.Name, s.Procs, s.Speedup, s.SequentialNsPerOp/1e6, s.ParallelNsPerOp/1e6, status)
	}

	// Invariant 2: the tracing-off query path must not be slower than
	// tracing-on beyond noise, at any procs level (a nil span check must
	// never cost more than live tracing; see internal/runtime bench docs).
	cellAt := func(suffix string, procs int) *MatrixCell {
		for i := range rep.Matrix {
			if strings.HasSuffix(rep.Matrix[i].Name, suffix) && rep.Matrix[i].Procs == procs {
				return &rep.Matrix[i]
			}
		}
		return nil
	}
	tracingSeen := false
	for _, c := range rep.Matrix {
		if !strings.HasSuffix(c.Name, "QueryTracingOff") {
			continue
		}
		on := cellAt("QueryTracingOn", c.Procs)
		if on == nil {
			continue
		}
		tracingSeen = true
		if slowerBeyondNoise(c.MeanNsPerOp, c.StddevNsPerOp, c.MinNsPerOp,
			on.MeanNsPerOp, on.StddevNsPerOp, on.MinNsPerOp) {
			failures = append(failures, fmt.Sprintf(
				"%s at %d procs: tracing-off %.0fns/op slower than tracing-on %.0fns/op beyond noise",
				c.Name, c.Procs, c.MeanNsPerOp, on.MeanNsPerOp))
		} else {
			fmt.Fprintf(out, "  %-50s procs=%d off %.3gms <= on %.3gms (+noise) ok\n",
				c.Name, c.Procs, c.MeanNsPerOp/1e6, on.MeanNsPerOp/1e6)
		}
	}
	if !tracingSeen {
		fmt.Fprintln(out, "  (no QueryTracingOff/On pair in matrix; tracing invariant skipped)")
	}

	// Invariant 3: incremental forest repair must beat a from-scratch
	// rebuild by at least 10x, at every procs level where both cells
	// exist. The real margin is over two orders of magnitude (see
	// internal/predtree BenchmarkIncrementalRemoveAdd), so a 10x floor
	// is far outside noise — if it trips, Remove has regressed to
	// rebuild-scale work and churn-native membership lost its point.
	const repairFloor = 10.0
	repairSeen := false
	for _, c := range rep.Matrix {
		if !strings.HasSuffix(c.Name, "IncrementalRemoveAdd/incremental") {
			continue
		}
		reb := cellAt("IncrementalRemoveAdd/rebuild", c.Procs)
		if reb == nil || c.MeanNsPerOp <= 0 {
			continue
		}
		repairSeen = true
		ratio := reb.MeanNsPerOp / c.MeanNsPerOp
		if ratio < repairFloor {
			failures = append(failures, fmt.Sprintf(
				"%s at %d procs: incremental repair %.0fns/op is only %.1fx cheaper than rebuild %.0fns/op (floor %.0fx)",
				c.Name, c.Procs, c.MeanNsPerOp, ratio, reb.MeanNsPerOp, repairFloor))
		} else {
			fmt.Fprintf(out, "  %-50s procs=%d repair %.3gms vs rebuild %.3gms (%.0fx >= %.0fx) ok\n",
				c.Name, c.Procs, c.MeanNsPerOp/1e6, reb.MeanNsPerOp/1e6, ratio, repairFloor)
		}
	}
	if !repairSeen {
		fmt.Fprintln(out, "  (no IncrementalRemoveAdd incremental/rebuild pair in matrix; repair invariant skipped)")
	}

	// Invariant 4: the fleet router's query cache must pay for itself —
	// a cached /v1/cluster answer at least 5x cheaper than an uncached
	// (proxied) one, at the gate procs level (see internal/fleet
	// BenchmarkFleetQueryCache). If the floor trips, cache lookups cost
	// proxy-scale work and the zipf head of real traffic gains nothing
	// from the serving tier's cache.
	const cacheFloor = 5.0
	cacheSeen := false
	for _, c := range rep.Matrix {
		if !strings.HasSuffix(c.Name, "FleetQueryCache/cached") || c.Procs != gp {
			continue
		}
		unc := cellAt("FleetQueryCache/uncached", c.Procs)
		if unc == nil || c.MeanNsPerOp <= 0 {
			continue
		}
		cacheSeen = true
		ratio := unc.MeanNsPerOp / c.MeanNsPerOp
		if ratio < cacheFloor {
			failures = append(failures, fmt.Sprintf(
				"%s at %d procs: cached query %.0fns/op is only %.1fx cheaper than uncached %.0fns/op (floor %.0fx)",
				c.Name, c.Procs, c.MeanNsPerOp, ratio, unc.MeanNsPerOp, cacheFloor))
		} else {
			fmt.Fprintf(out, "  %-50s procs=%d cached %.3gms vs uncached %.3gms (%.1fx >= %.0fx) ok\n",
				c.Name, c.Procs, c.MeanNsPerOp/1e6, unc.MeanNsPerOp/1e6, ratio, cacheFloor)
		}
	}
	if !cacheSeen {
		fmt.Fprintln(out, "  (no FleetQueryCache cached/uncached pair in matrix; cache invariant skipped)")
	}

	// Invariant 5: the bandwidth ledger must stay effectively free on the
	// query hot path — the ledger-on query within 3% of ledger-off at the
	// gate procs level (see internal/runtime BenchmarkQueryLedgerOff/On).
	// The accounting cost per delivered frame is one RLock and two atomic
	// adds; if the 3% budget trips, per-link accounting has grown into
	// per-query work and the "observability is free" claim (DESIGN.md
	// §8k) no longer holds. Like the other tight bound the mean-based
	// test must be confirmed by the min-of-samples, so background load on
	// a shared runner cannot flake the gate.
	const ledgerBudget = 1.03
	ledgerSeen := false
	for _, c := range rep.Matrix {
		if !strings.HasSuffix(c.Name, "QueryLedgerOn") || c.Procs != gp {
			continue
		}
		off := cellAt("QueryLedgerOff", c.Procs)
		if off == nil || off.MeanNsPerOp <= 0 {
			continue
		}
		ledgerSeen = true
		ratio := c.MeanNsPerOp / off.MeanNsPerOp
		if ratio > ledgerBudget && c.MinNsPerOp > off.MinNsPerOp*ledgerBudget {
			failures = append(failures, fmt.Sprintf(
				"%s at %d procs: ledger-on query %.0fns/op is %.1f%% over ledger-off %.0fns/op (budget %.0f%%)",
				c.Name, c.Procs, c.MeanNsPerOp, (ratio-1)*100, off.MeanNsPerOp, (ledgerBudget-1)*100))
		} else {
			fmt.Fprintf(out, "  %-50s procs=%d on %.3gms vs off %.3gms (%+.1f%% <= %.0f%%) ok\n",
				c.Name, c.Procs, c.MeanNsPerOp/1e6, off.MeanNsPerOp/1e6, (ratio-1)*100, (ledgerBudget-1)*100)
		}
	}
	if !ledgerSeen {
		fmt.Fprintln(out, "  (no QueryLedgerOff/On pair in matrix; ledger invariant skipped)")
	}

	// Baseline diff: warn-only, so hardware drift between runner
	// generations cannot fail the gate, but regressions stay visible.
	if baselinePath != "" {
		base, err := loadReport(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		type key struct {
			pkg, name string
			procs     int
		}
		baseCells := map[key]MatrixCell{}
		for _, c := range base.Matrix {
			baseCells[key{c.Pkg, c.Name, c.Procs}] = c
		}
		warned := 0
		for _, c := range rep.Matrix {
			b, ok := baseCells[key{c.Pkg, c.Name, c.Procs}]
			if !ok || b.MeanNsPerOp <= 0 {
				continue
			}
			if ratio := c.MeanNsPerOp / b.MeanNsPerOp; ratio > 1.20 {
				warned++
				fmt.Fprintf(os.Stderr, "bwc-benchjson: WARNING: %s [%s] procs=%d regressed %.0f%% vs baseline (%.3gms -> %.3gms)\n",
					c.Name, c.Pkg, c.Procs, (ratio-1)*100, b.MeanNsPerOp/1e6, c.MeanNsPerOp/1e6)
			}
		}
		fmt.Fprintf(out, "gate: baseline diff vs %s: %d cell(s) regressed >20%% (warn-only)\n", baselinePath, warned)
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d invariant violation(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(out, "gate: PASS")
	return nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   1234   987654 ns/op   120 B/op   3 allocs/op
//
// The B/op and allocs/op columns are optional (-benchmem). Lines that
// do not match (e.g. "BenchmarkFoo" printed alone before its result)
// are skipped.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}
