// Command bwc-benchjson converts `go test -bench` text output (read
// from stdin) into a machine-readable JSON report, so CI can archive
// benchmark results and diff them across commits.
//
//	go test -bench=. -benchmem ./... | bwc-benchjson > BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bwcluster/internal/buildinfo"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// Report is the full JSON document written to stdout.
type Report struct {
	GoVersion  string      `json:"goVersion"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	CPU        string      `json:"cpu,omitempty"`
	Build      string      `json:"build"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwc-benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Build:      buildinfo.String(),
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %w", err)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   1234   987654 ns/op   120 B/op   3 allocs/op
//
// The B/op and allocs/op columns are optional (-benchmem). Lines that
// do not match (e.g. "BenchmarkFoo" printed alone before its result)
// are skipped.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}
