package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// matrixBenchOutput is what `go test -bench -count 2 -cpu 1,4` emits:
// every benchmark repeats per count, and per -cpu level with a -N name
// suffix (absent at GOMAXPROCS=1).
const matrixBenchOutput = `goos: linux
goarch: amd64
pkg: bwcluster/internal/cluster
cpu: Imaginary CPU @ 3.00GHz
BenchmarkFindClusterParallel/sequential         	     100	   1000000 ns/op	 100 B/op	 10 allocs/op
BenchmarkFindClusterParallel/parallel           	     100	   1050000 ns/op	 120 B/op	 12 allocs/op
BenchmarkFindClusterParallel/sequential         	     100	   1020000 ns/op	 100 B/op	 10 allocs/op
BenchmarkFindClusterParallel/parallel           	     100	   1070000 ns/op	 120 B/op	 12 allocs/op
BenchmarkFindClusterParallel/sequential-4       	     100	   1010000 ns/op	 100 B/op	 10 allocs/op
BenchmarkFindClusterParallel/parallel-4         	     100	    400000 ns/op	 150 B/op	 15 allocs/op
BenchmarkFindClusterParallel/sequential-4       	     100	   1030000 ns/op	 100 B/op	 10 allocs/op
BenchmarkFindClusterParallel/parallel-4         	     100	    420000 ns/op	 150 B/op	 15 allocs/op
PASS
pkg: bwcluster/internal/runtime
BenchmarkQueryTracingOff-4                      	    1000	    500000 ns/op
BenchmarkQueryTracingOn-4                       	    1000	    600000 ns/op
BenchmarkQueryTracingOff-4                      	    1000	    510000 ns/op
BenchmarkQueryTracingOn-4                       	    1000	    590000 ns/op
PASS
pkg: bwcluster/internal/predtree
BenchmarkIncrementalRemoveAdd/incremental-4     	   10000	     22000 ns/op
BenchmarkIncrementalRemoveAdd/rebuild-4         	     100	   5400000 ns/op
BenchmarkIncrementalRemoveAdd/incremental-4     	   10000	     23000 ns/op
BenchmarkIncrementalRemoveAdd/rebuild-4         	     100	   5500000 ns/op
PASS
pkg: bwcluster/internal/fleet
BenchmarkFleetQueryCache/uncached-4             	   10000	     80000 ns/op
BenchmarkFleetQueryCache/cached-4               	  100000	     10000 ns/op
BenchmarkFleetQueryCache/uncached-4             	   10000	     82000 ns/op
BenchmarkFleetQueryCache/cached-4               	  100000	     10500 ns/op
PASS
`

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		base  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkFoo/sequential-4", "BenchmarkFoo/sequential", 4},
		{"BenchmarkFoo/sub-case", "BenchmarkFoo/sub-case", 1},
	} {
		base, procs := splitProcs(tc.in)
		if base != tc.base || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, base, procs, tc.base, tc.procs)
		}
	}
}

func TestRunMatrixAggregates(t *testing.T) {
	var out bytes.Buffer
	if err := runMatrix(strings.NewReader(matrixBenchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("matrix mode should drop raw lines, kept %d", len(rep.Benchmarks))
	}
	// 4 cluster cells (seq/par x procs 1/4) + 2 tracing + 2 repair
	// + 2 serving-cache cells.
	if len(rep.Matrix) != 10 {
		t.Fatalf("got %d matrix cells, want 10: %+v", len(rep.Matrix), rep.Matrix)
	}
	c := rep.Matrix[0]
	if c.Name != "BenchmarkFindClusterParallel/sequential" || c.Procs != 1 || c.Samples != 2 {
		t.Errorf("cell 0 = %+v", c)
	}
	if math.Abs(c.MeanNsPerOp-1010000) > 1 {
		t.Errorf("mean = %v, want 1010000", c.MeanNsPerOp)
	}
	// stddev of {1000000, 1020000} = 20000/sqrt(2) * sqrt(2) = 14142.1...
	if math.Abs(c.StddevNsPerOp-14142.135) > 1 {
		t.Errorf("stddev = %v, want ~14142", c.StddevNsPerOp)
	}
	if c.MinNsPerOp != 1000000 || c.AllocsPerOp != 10 || c.BytesPerOp != 100 {
		t.Errorf("cell 0 aux stats = %+v", c)
	}

	// Speedup curve: 2 points (procs 1 and 4) for the paired benchmark.
	if len(rep.Speedups) != 2 {
		t.Fatalf("got %d speedup points, want 2: %+v", len(rep.Speedups), rep.Speedups)
	}
	for _, s := range rep.Speedups {
		if s.Name != "BenchmarkFindClusterParallel" {
			t.Errorf("speedup name = %q", s.Name)
		}
		switch s.Procs {
		case 1:
			if s.Speedup > 1 {
				t.Errorf("procs=1 speedup = %v, want < 1 (overhead)", s.Speedup)
			}
		case 4:
			if s.Speedup < 2 {
				t.Errorf("procs=4 speedup = %v, want > 2", s.Speedup)
			}
		default:
			t.Errorf("unexpected procs level %d", s.Procs)
		}
	}
}

// writeReport marshals a report to a temp file for gate tests.
func writeReport(t *testing.T, rep Report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func matrixReport(t *testing.T) Report {
	var out bytes.Buffer
	if err := runMatrix(strings.NewReader(matrixBenchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGatePassesOnHealthyMatrix(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 4 // pretend a 4-CPU runner measured this
	var out bytes.Buffer
	if err := runGate(writeReport(t, rep), "", &out); err != nil {
		t.Fatalf("gate failed on healthy matrix: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "GOMAXPROCS=4") {
		t.Errorf("gate should enforce at 4 procs on a 4-CPU host:\n%s", out.String())
	}
}

func TestGateFailsWhenParallelSlowBeyondNoise(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 4
	for i := range rep.Speedups {
		if rep.Speedups[i].Procs == 4 {
			// Parallel 2x slower than sequential, far beyond noise, and
			// the min shifted with it (a real slowdown, not a load spike).
			rep.Speedups[i].ParallelNsPerOp = 2 * rep.Speedups[i].SequentialNsPerOp
			rep.Speedups[i].ParallelMinNs = 2 * rep.Speedups[i].SequentialMinNs
		}
	}
	var out bytes.Buffer
	err := runGate(writeReport(t, rep), "", &out)
	if err == nil || !strings.Contains(err.Error(), "slower than sequential") {
		t.Fatalf("gate should fail on parallel regression, got err=%v", err)
	}
}

func TestGateFailsWhenTracingOffSlowerThanOn(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 4
	for i := range rep.Matrix {
		if strings.HasSuffix(rep.Matrix[i].Name, "QueryTracingOff") {
			rep.Matrix[i].MeanNsPerOp = 2e6 // way above tracing-on's ~595µs
			rep.Matrix[i].MinNsPerOp = 2e6
		}
	}
	var out bytes.Buffer
	err := runGate(writeReport(t, rep), "", &out)
	if err == nil || !strings.Contains(err.Error(), "tracing") {
		t.Fatalf("gate should fail when tracing-off is slower, got err=%v", err)
	}
}

// TestGateFailsWhenRepairUnder10x: inflating the incremental repair cell
// to within 10x of the rebuild cell must trip invariant 3.
func TestGateFailsWhenRepairUnder10x(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 4
	for i := range rep.Matrix {
		if strings.HasSuffix(rep.Matrix[i].Name, "IncrementalRemoveAdd/incremental") {
			rep.Matrix[i].MeanNsPerOp = 1e6 // rebuild is ~5.45e6: only 5.45x
			rep.Matrix[i].MinNsPerOp = 1e6
		}
	}
	var out bytes.Buffer
	err := runGate(writeReport(t, rep), "", &out)
	if err == nil || !strings.Contains(err.Error(), "cheaper than rebuild") {
		t.Fatalf("gate should fail when repair margin drops below 10x, got err=%v", err)
	}
}

// TestGateFailsWhenCacheUnder5x: inflating the cached serving cell to
// within 5x of the uncached one must trip invariant 4 — a cache that
// saves less than that is pure overhead on the zipf head.
func TestGateFailsWhenCacheUnder5x(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 4
	for i := range rep.Matrix {
		if strings.HasSuffix(rep.Matrix[i].Name, "FleetQueryCache/cached") {
			rep.Matrix[i].MeanNsPerOp = 30000 // uncached is ~81000: only 2.7x
			rep.Matrix[i].MinNsPerOp = 30000
		}
	}
	var out bytes.Buffer
	err := runGate(writeReport(t, rep), "", &out)
	if err == nil || !strings.Contains(err.Error(), "cheaper than uncached") {
		t.Fatalf("gate should fail when the cache margin drops below 5x, got err=%v", err)
	}
}

func TestGateToleratesLoadSpikeOnMean(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 4
	for i := range rep.Speedups {
		if rep.Speedups[i].Procs == 4 {
			// Background load landed on the parallel sub-benchmark: the
			// mean blew past the noise bound but the min is untouched.
			// The gate must not flake on this.
			rep.Speedups[i].ParallelNsPerOp = 3 * rep.Speedups[i].SequentialNsPerOp
		}
	}
	var out bytes.Buffer
	if err := runGate(writeReport(t, rep), "", &out); err != nil {
		t.Fatalf("gate must be robust to mean-only spikes: %v\n%s", err, out.String())
	}
}

func TestGateOnOneCPUHostGatesAtProcsOne(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 1
	// Wreck the 4-proc column: oversubscribed columns are reported, not
	// gated, so this must still pass on a 1-CPU host.
	for i := range rep.Speedups {
		if rep.Speedups[i].Procs == 4 {
			rep.Speedups[i].ParallelNsPerOp = 10 * rep.Speedups[i].SequentialNsPerOp
		}
	}
	var out bytes.Buffer
	if err := runGate(writeReport(t, rep), "", &out); err != nil {
		t.Fatalf("1-CPU gate should only enforce procs=1: %v\n%s", err, out.String())
	}
}

func TestGateBaselineRegressionWarnsNotFails(t *testing.T) {
	rep := matrixReport(t)
	rep.CPUs = 4
	base := matrixReport(t)
	for i := range base.Matrix {
		base.Matrix[i].MeanNsPerOp /= 2 // current run looks 2x slower than baseline
	}
	var out bytes.Buffer
	if err := runGate(writeReport(t, rep), writeReport(t, base), &out); err != nil {
		t.Fatalf("baseline regressions must warn, not fail: %v", err)
	}
	if !strings.Contains(out.String(), "regressed >20%") {
		t.Errorf("gate output should summarize baseline warnings:\n%s", out.String())
	}
}

func TestNoiseBoundFloor(t *testing.T) {
	// Tiny stddevs: the 5% relative floor dominates.
	if got := noiseBound(1000, 1, 1); math.Abs(got-50) > 1e-9 {
		t.Errorf("floored noise = %v, want 50", got)
	}
	// Large stddevs add in quadrature.
	if got := noiseBound(1000, 300, 400); math.Abs(got-1000) > 1e-9 {
		t.Errorf("noise = %v, want 2*sqrt(300^2+400^2) = 1000", got)
	}
}
