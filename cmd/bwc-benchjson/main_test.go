package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: bwcluster
cpu: Imaginary CPU @ 3.00GHz
BenchmarkSystemBuild-8   	      10	 104857600 ns/op	 5242880 B/op	   40960 allocs/op
BenchmarkFindCluster-8   	    5000	    240000 ns/op
PASS
ok  	bwcluster	2.345s
pkg: bwcluster/internal/predtree
BenchmarkTreeBuild-8     	     200	   6000000 ns/op	  819200 B/op	    8192 allocs/op
PASS
ok  	bwcluster/internal/predtree	1.111s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleBenchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" || rep.CPUs <= 0 {
		t.Errorf("missing host info: %+v", rep)
	}
	if rep.CPU != "Imaginary CPU @ 3.00GHz" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSystemBuild-8" || b.Pkg != "bwcluster" ||
		b.Iterations != 10 || b.NsPerOp != 104857600 ||
		b.BytesPerOp != 5242880 || b.AllocsPerOp != 40960 {
		t.Errorf("benchmark 0 = %+v", b)
	}
	if b := rep.Benchmarks[1]; b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("benchmark without -benchmem columns should omit them: %+v", b)
	}
	if b := rep.Benchmarks[2]; b.Pkg != "bwcluster/internal/predtree" {
		t.Errorf("pkg tracking across packages broke: %+v", b)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks == nil || len(rep.Benchmarks) != 0 {
		t.Errorf("want empty (non-null) benchmarks array, got %#v", rep.Benchmarks)
	}
}

func TestParseBenchLineRejectsPartialLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",
		"BenchmarkFoo-8",
		"BenchmarkFoo-8   x   100 ns/op",
		"BenchmarkFoo-8   100   y ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted", line)
		}
	}
}
