package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bwcluster/internal/dataset"
	"bwcluster/internal/fleet"
)

// soakCounters aggregates workload outcomes across workers.
type soakCounters struct {
	done      atomic.Int64 // requests completed (any outcome)
	ok        atomic.Int64 // 2xx
	shed      atomic.Int64 // 429 from admission control
	client4xx atomic.Int64 // other 4xx
	fiveXX    atomic.Int64 // 5xx — the failover budget
	netErr    atomic.Int64 // transport-level failures
	hits      atomic.Int64 // X-Fleet-Cache: hit
	fallbacks atomic.Int64 // X-Fleet-Fallback set (decentral answered centrally)
}

// soakSummary is the JSON shape merged into BENCH_results.json.
type soakSummary struct {
	Queries   int64   `json:"queries"`
	Shards    int     `json:"shards"`
	Hosts     int     `json:"hosts"`
	Workers   int     `json:"workers"`
	ZipfS     float64 `json:"zipfS"`
	Seconds   float64 `json:"seconds"`
	QPS       float64 `json:"qps"`
	P50Micros int64   `json:"p50us"`
	P90Micros int64   `json:"p90us"`
	P99Micros int64   `json:"p99us"`
	MaxMicros int64   `json:"maxUs"`
	OK        int64   `json:"ok"`
	Shed      int64   `json:"shed"`
	Client4xx int64   `json:"client4xx"`
	FiveXX    int64   `json:"fiveXX"`
	NetErr    int64   `json:"netErr"`
	CacheHits int64   `json:"cacheHits"`
	Fallbacks int64   `json:"fallbacks"`
	Killed    bool    `json:"replicaKilled"`
}

// soakQuery is one entry of the workload universe the zipf generator
// draws from: zipf's head makes a few of these hot (exercising the
// cache), its tail keeps misses flowing (exercising the proxy path).
type soakQuery struct {
	k     int
	b     float64
	mode  string
	start int
}

func runSoak(args []string) error {
	fs := flag.NewFlagSet("bwc-fleet -mode soak", flag.ContinueOnError)
	shards := fs.Int("shards", 3, "shard process count")
	hosts := fs.Int("hosts", 64, "synthetic dataset size")
	queries := fs.Int64("queries", 1_000_000, "total queries to drive")
	workers := fs.Int("workers", 32, "concurrent workload workers")
	zipfS := fs.Float64("zipf", 1.2, "zipf skew s (>1; larger = hotter head)")
	seed := fs.Int64("seed", 1, "dataset/workload seed")
	nCut := fs.Int("ncut", 10, "overlay propagation cutoff n_cut")
	tick := fs.Duration("tick", 0, "shard async runtime gossip period (0: default)")
	killAt := fs.Float64("kill-at", 0.5, "kill one replica after this fraction of the workload (0: never)")
	series := fs.String("series", "", "write a time-series of throughput/latency/shed/hit samples to this file")
	merge := fs.String("merge", "", "merge the soak summary into this benchmark-report JSON file under the \"soak\" key")
	rate := fs.Float64("rate", 0, "per-tenant admission rate (0: unlimited sized to the workload)")
	startupTimeout := fs.Duration("startup-timeout", 3*time.Minute, "deadline for every shard to report ready")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1")
	}

	// Synthesize the dataset the builder shard will load.
	m, err := dataset.Generate(dataset.HPConfig().WithN(*hosts), rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "bwc-fleet-soak")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dataPath := filepath.Join(dir, "soak.gob")
	if err := dataset.SaveFile(dataPath, m); err != nil {
		return err
	}

	// Spawn the shard processes: shard 0 builds, the rest replicate.
	self, err := os.Executable()
	if err != nil {
		return err
	}
	type child struct {
		cmd      *exec.Cmd
		stdin    io.WriteCloser
		httpAddr string
		peerAddr string
	}
	children := make([]*child, *shards)
	defer func() {
		for _, c := range children {
			if c != nil && c.cmd.Process != nil {
				_ = c.cmd.Process.Kill()
			}
		}
		for _, c := range children {
			if c != nil {
				_ = c.cmd.Wait()
			}
		}
	}()
	for i := range children {
		cargs := []string{"-mode", "shard",
			"-index", fmt.Sprint(i), "-shards", fmt.Sprint(*shards),
			"-addr", "127.0.0.1:0", "-peer", "127.0.0.1:0",
			"-ncut", fmt.Sprint(*nCut), "-seed", fmt.Sprint(*seed), "-quiet"}
		if *tick > 0 {
			cargs = append(cargs, "-tick", tick.String())
		}
		if i == 0 {
			cargs = append(cargs, "-data", dataPath)
		}
		cmd := exec.Command(self, cargs...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		c := &child{cmd: cmd, stdin: stdin}
		children[i] = c
		// The first stdout line is "READY <httpAddr> <peerAddr>".
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			return fmt.Errorf("shard %d: reading READY line: %w", i, err)
		}
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "READY" {
			return fmt.Errorf("shard %d: unexpected startup line %q", i, strings.TrimSpace(line))
		}
		c.httpAddr, c.peerAddr = f[1], f[2]
		// Drain the rest of the child's stdout (it prints nothing else);
		// exits on EOF when the child dies.
		go func() { _, _ = io.Copy(io.Discard, stdout) }()
	}

	// Broadcast the peer routes; the builder starts building on receipt.
	peers := make([]string, *shards)
	shardURLs := make([]string, *shards)
	for i, c := range children {
		peers[i] = c.peerAddr
		shardURLs[i] = "http://" + c.httpAddr
	}
	routesLine := "ROUTES " + strings.Join(peers, ",") + "\n"
	for i, c := range children {
		if _, err := io.WriteString(c.stdin, routesLine); err != nil {
			return fmt.Errorf("shard %d: sending routes: %w", i, err)
		}
	}

	// Wait until the whole fleet (builder built, replicas restored) is up.
	httpc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4 * *workers,
			MaxIdleConnsPerHost: 2 * *workers,
		},
	}
	deadline := time.Now().Add(*startupTimeout)
	for i, url := range shardURLs {
		for {
			resp, err := httpc.Get(url + "/v1/ready")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if ok {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("shard %d (%s) not ready after %v", i, url, *startupTimeout)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	fmt.Printf("fleet up: %d shards ready (%s)\n", *shards, strings.Join(shardURLs, " "))

	// The router runs in this process, on a real listener.
	admission := fleet.AdmissionConfig{Rate: *rate}
	if *rate <= 0 {
		// Unlimited-ish: the soak measures serving, not shedding; shed
		// behaviour has its own unit tests and the -rate flag.
		admission = fleet.AdmissionConfig{Rate: 1e9, Queue: 1 << 20}
	}
	rt := fleet.NewRouter(fleet.RouterConfig{
		Shards:        shardURLs,
		Logger:        newLogger(true),
		Admission:     admission,
		ProbeInterval: 100 * time.Millisecond,
		Client:        httpc,
	})
	rt.Start()
	defer rt.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	routerSrv := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	routerErr := make(chan error, 1)
	go func() { routerErr <- routerSrv.Serve(ln) }()
	defer routerSrv.Close()
	routerURL := "http://" + ln.Addr().String()

	// Hold the workload until the router's probe loop has seen every
	// shard: before that its observed epoch is unset and decentral
	// queries would transiently fall back to central rewrites.
	for {
		var ready struct {
			ShardsReady int `json:"shardsReady"`
		}
		resp, err := httpc.Get(routerURL + "/v1/ready")
		if err == nil {
			decErr := json.NewDecoder(resp.Body).Decode(&ready)
			resp.Body.Close()
			if decErr == nil && ready.ShardsReady == *shards {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router never saw all %d shards ready after %v", *shards, *startupTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Workload universe: every (start, k, b) combination, deterministically
	// shuffled so zipf's hot head is a representative mix, ~30% of it
	// decentralized.
	rng := rand.New(rand.NewSource(*seed + 1))
	var universe []soakQuery
	for start := 0; start < *hosts; start++ {
		for _, k := range []int{3, 4, 5, 6} {
			for _, b := range []float64{12, 18, 25} {
				mode := "central"
				if rng.Intn(10) < 3 {
					mode = "decentral"
				}
				universe = append(universe, soakQuery{k: k, b: b, mode: mode, start: start})
			}
		}
	}
	rng.Shuffle(len(universe), func(i, j int) { universe[i], universe[j] = universe[j], universe[i] })

	var ctr soakCounters
	issued := atomic.Int64{}
	killThreshold := int64(0)
	if *killAt > 0 && *shards > 1 {
		killThreshold = int64(*killAt * float64(*queries))
	}
	var killOnce sync.Once
	killed := atomic.Bool{}
	latencies := make([][]uint32, *workers)

	// Time-series sampler: one line per second with cumulative counters.
	var seriesFile *os.File
	seriesDone := make(chan struct{})
	if *series != "" {
		if err := os.MkdirAll(filepath.Dir(*series), 0o755); err != nil {
			return err
		}
		seriesFile, err = os.Create(*series)
		if err != nil {
			return err
		}
		defer seriesFile.Close()
		fmt.Fprintf(seriesFile, "# bwc-fleet soak: shards=%d hosts=%d queries=%d workers=%d zipf=%.2f seed=%d\n",
			*shards, *hosts, *queries, *workers, *zipfS, *seed)
		fmt.Fprintln(seriesFile, "# sec done ok hits shed fiveXX netErr fallbacks killed")
	}
	soakStart := time.Now()
	go func() {
		defer close(seriesDone)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			<-tick.C
			d := ctr.done.Load()
			if seriesFile != nil {
				fmt.Fprintf(seriesFile, "%.0f %d %d %d %d %d %d %d %v\n",
					time.Since(soakStart).Seconds(), d, ctr.ok.Load(), ctr.hits.Load(),
					ctr.shed.Load(), ctr.fiveXX.Load(), ctr.netErr.Load(),
					ctr.fallbacks.Load(), killed.Load())
			}
			if d >= *queries {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		lat := make([]uint32, 0, int(*queries/int64(*workers))+1)
		latencies[w] = lat
		go func(w int) {
			defer wg.Done()
			wr := rand.New(rand.NewSource(*seed + 100 + int64(w)))
			zipf := rand.NewZipf(wr, *zipfS, 1, uint64(len(universe)-1))
			for {
				n := issued.Add(1)
				if n > *queries {
					return
				}
				if killThreshold > 0 && n == killThreshold {
					killOnce.Do(func() {
						victim := children[*shards-1]
						fmt.Printf("killing replica shard %d (%s) at query %d\n", *shards-1, victim.httpAddr, n)
						_ = victim.cmd.Process.Kill()
						killed.Store(true)
					})
				}
				q := universe[zipf.Uint64()]
				url := fmt.Sprintf("%s/v1/cluster?k=%d&b=%g", routerURL, q.k, q.b)
				if q.mode == "decentral" {
					url += fmt.Sprintf("&mode=decentral&start=%d", q.start)
				}
				t0 := time.Now()
				resp, err := httpc.Get(url)
				el := time.Since(t0).Microseconds()
				if el > int64(^uint32(0)) {
					el = int64(^uint32(0))
				}
				latencies[w] = append(latencies[w], uint32(el))
				ctr.done.Add(1)
				if err != nil {
					ctr.netErr.Add(1)
					continue
				}
				if resp.Header.Get("X-Fleet-Cache") == "hit" {
					ctr.hits.Add(1)
				}
				if resp.Header.Get("X-Fleet-Fallback") != "" {
					ctr.fallbacks.Add(1)
				}
				switch {
				case resp.StatusCode < 300:
					ctr.ok.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					ctr.shed.Add(1)
				case resp.StatusCode >= 500:
					ctr.fiveXX.Add(1)
				default:
					// 4xx fails the run; name the first few so the
					// failure is diagnosable from the log alone.
					if n := ctr.client4xx.Add(1); n <= 3 {
						body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
						fmt.Printf("unexpected %d from %s: %s\n", resp.StatusCode, url, body)
					}
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(soakStart)
	<-seriesDone

	// Merge and rank the latency samples.
	var all []uint32
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return int64(all[i])
	}
	sum := soakSummary{
		Queries: ctr.done.Load(), Shards: *shards, Hosts: *hosts,
		Workers: *workers, ZipfS: *zipfS,
		Seconds: elapsed.Seconds(), QPS: float64(ctr.done.Load()) / elapsed.Seconds(),
		P50Micros: pct(0.50), P90Micros: pct(0.90), P99Micros: pct(0.99),
		MaxMicros: pct(1.0),
		OK:        ctr.ok.Load(), Shed: ctr.shed.Load(), Client4xx: ctr.client4xx.Load(),
		FiveXX: ctr.fiveXX.Load(), NetErr: ctr.netErr.Load(),
		CacheHits: ctr.hits.Load(), Fallbacks: ctr.fallbacks.Load(),
		Killed: killed.Load(),
	}
	out, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Printf("soak summary:\n%s\n", out)

	if *merge != "" {
		if err := mergeSoak(*merge, sum); err != nil {
			return err
		}
		fmt.Printf("merged soak summary into %s\n", *merge)
	}

	// The soak's own gate: the fleet must have served the workload, and
	// a killed replica must not have produced a 5xx burst beyond the
	// in-flight drain (the router fails over within a request, so the
	// budget is a small fraction, not a window of downtime).
	budget := sum.Queries / 1000
	if budget < 5 {
		budget = 5
	}
	if sum.OK == 0 {
		return fmt.Errorf("soak served no queries")
	}
	if sum.FiveXX+sum.NetErr > budget {
		return fmt.Errorf("soak failed: %d 5xx + %d transport errors exceed the drain budget of %d",
			sum.FiveXX, sum.NetErr, budget)
	}
	if sum.Client4xx > 0 {
		return fmt.Errorf("soak failed: %d unexpected 4xx responses (malformed workload or misrouted decentral query)", sum.Client4xx)
	}
	// The federated bandwidth rollup must cover every surviving shard
	// process and report the killed replica as an explicit gap, with
	// consistent epochs and real accounted traffic across the fleet.
	if err := checkFleetBandwidth(httpc, routerURL, *shards, killed.Load()); err != nil {
		return fmt.Errorf("soak failed: %w", err)
	}
	fmt.Printf("soak PASS: %d queries in %.1fs (%.0f qps), p50=%dus p99=%dus, %d cache hits, %d shed, %d 5xx\n",
		sum.Queries, sum.Seconds, sum.QPS, sum.P50Micros, sum.P99Micros, sum.CacheHits, sum.Shed, sum.FiveXX)
	return nil
}

// checkFleetBandwidth fetches the router's /v1/fleet/bandwidth rollup
// and verifies the merged view: every live shard contributes a ledger
// snapshot, a killed replica appears as a gap rather than a silent
// shrink, epochs agree across the covered shards, and the cross-shard
// aggregate accounts the overlay traffic the workload generated.
func checkFleetBandwidth(httpc *http.Client, routerURL string, shards int, killed bool) error {
	resp, err := httpc.Get(routerURL + "/v1/fleet/bandwidth")
	if err != nil {
		return fmt.Errorf("fleet bandwidth rollup: %w", err)
	}
	defer resp.Body.Close()
	var body struct {
		Shards          []json.RawMessage `json:"shards"`
		ShardsCovered   int               `json:"shardsCovered"`
		Gaps            []int             `json:"gaps"`
		EpochConsistent bool              `json:"epochConsistent"`
		Aggregate       struct {
			TotalBytes    int64 `json:"totalBytes"`
			TotalMessages int64 `json:"totalMessages"`
		} `json:"aggregate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("fleet bandwidth rollup: decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet bandwidth rollup: status %d", resp.StatusCode)
	}
	if len(body.Shards) != shards {
		return fmt.Errorf("fleet bandwidth rollup lists %d shards, want %d", len(body.Shards), shards)
	}
	wantCovered := shards
	if killed {
		wantCovered = shards - 1
	}
	if body.ShardsCovered < wantCovered {
		return fmt.Errorf("fleet bandwidth rollup covered %d shards, want >= %d (gaps %v)",
			body.ShardsCovered, wantCovered, body.Gaps)
	}
	if killed && len(body.Gaps) == 0 {
		return fmt.Errorf("killed replica missing from the rollup's gap list")
	}
	if !body.EpochConsistent {
		return fmt.Errorf("fleet bandwidth rollup saw inconsistent epochs across shards")
	}
	if body.Aggregate.TotalBytes <= 0 || body.Aggregate.TotalMessages <= 0 {
		return fmt.Errorf("fleet bandwidth rollup accounted no traffic (bytes=%d msgs=%d)",
			body.Aggregate.TotalBytes, body.Aggregate.TotalMessages)
	}
	fmt.Printf("fleet bandwidth rollup: %d/%d shards covered, %d bytes / %d messages accounted, gaps %v\n",
		body.ShardsCovered, shards, body.Aggregate.TotalBytes, body.Aggregate.TotalMessages, body.Gaps)
	return nil
}

// mergeSoak writes the summary into the benchmark report JSON under the
// top-level "soak" key, preserving every other field. A missing or
// empty file gets a fresh object, so the smoke soak works in a clean
// checkout.
func mergeSoak(path string, sum soakSummary) error {
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	doc["soak"] = sum
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
