// Command bwc-fleet runs the sharded serving tier (internal/fleet): a
// stateless HTTP router in front of N shard processes that together
// host one overlay network. Shard 0 builds the system from a bandwidth
// matrix and streams wireVersion-2 snapshots to the replicas over the
// fleet's TCP transport; every shard then answers the full query API
// while its async runtime hosts only its rendezvous slice of the
// overlay peers.
//
// Modes:
//
//	bwc-fleet -mode soak                     spawn router + shards, drive a zipf workload (default)
//	bwc-fleet -mode shard -index 0 ...       one shard process
//	bwc-fleet -mode router -targets ...      the router alone
//
// Two-process quickstart (one shard + the router):
//
//	bwc-fleet -mode shard -index 0 -shards 1 -data hp.gob -addr 127.0.0.1:8081 &
//	bwc-fleet -mode router -addr :8080 -targets http://127.0.0.1:8081
//	curl 'localhost:8080/v1/cluster?k=6&b=40'
//
// Multi-shard wiring (done automatically by -mode soak): every shard
// prints "READY <httpAddr> <peerAddr>" on stdout once its listeners are
// bound, then — when -routes is not given — blocks reading one
// "ROUTES <peer0,peer1,...>" line on stdin carrying every shard's peer
// transport address in index order. The builder installs and streams
// once the routes land; replicas become ready when their first snapshot
// stream completes.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bwcluster"
	"bwcluster/internal/buildinfo"
	"bwcluster/internal/dataset"
	"bwcluster/internal/fleet"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwc-fleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// -version answers before mode dispatch, matching the other binaries
	// (bwc-serve, bwc-sim, bwc-vet all take a plain -version flag).
	if len(args) >= 1 && (args[0] == "-version" || args[0] == "--version") {
		fmt.Println("bwc-fleet", buildinfo.String())
		return nil
	}
	mode := "soak"
	if len(args) >= 2 && args[0] == "-mode" {
		mode, args = args[1], args[2:]
	}
	switch mode {
	case "shard":
		return runShard(args)
	case "router":
		return runRouter(args)
	case "soak":
		return runSoak(args)
	case "version":
		fmt.Println("bwc-fleet", buildinfo.String())
		return nil
	default:
		return fmt.Errorf("unknown -mode %q (shard, router, soak, version)", mode)
	}
}

// newLogger returns a JSON logger on stderr, or a discard logger with
// -quiet (the soak harness runs millions of requests; per-request
// access logs would dwarf the results).
func newLogger(quiet bool) *slog.Logger {
	if quiet {
		return slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, nil))
}

// signalContext cancels on SIGINT/SIGTERM.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func runShard(args []string) error {
	fs := flag.NewFlagSet("bwc-fleet -mode shard", flag.ContinueOnError)
	index := fs.Int("index", 0, "this shard's id in [0, shards)")
	shards := fs.Int("shards", 1, "fleet size")
	addr := fs.String("addr", "127.0.0.1:0", "HTTP listen address")
	peer := fs.String("peer", "127.0.0.1:0", "overlay/replication TCP listen address")
	routes := fs.String("routes", "", "comma-separated peer addresses of every shard in index order (empty with shards>1: read a ROUTES line from stdin)")
	data := fs.String("data", "", "bandwidth matrix file; given only to the builder shard")
	nCut := fs.Int("ncut", 10, "overlay propagation cutoff n_cut")
	seed := fs.Int64("seed", 1, "construction seed")
	tick := fs.Duration("tick", 0, "async runtime gossip period (0: default)")
	quiet := fs.Bool("quiet", false, "discard logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *index < 0 || *index >= *shards {
		return fmt.Errorf("-index %d outside [0, %d)", *index, *shards)
	}
	logger := newLogger(*quiet)

	tr, err := transport.NewTCP(transport.TCPConfig{Listen: *peer, JitterSeed: int64(*index + 1)})
	if err != nil {
		return err
	}
	defer tr.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	sh := fleet.NewShard(fleet.ShardConfig{
		Index: *index, Shards: *shards, Transport: tr, Tick: *tick,
		Logger: logger, Metrics: telemetry.Default().Handler(),
	})
	defer sh.Close()
	builder := *data != ""
	if !builder {
		// Register the replicator endpoint BEFORE announcing readiness to
		// the parent: once READY lines are out, the parent releases the
		// builder, whose first snapshot chunk must find this endpoint.
		if err := sh.StartReplica(); err != nil {
			return err
		}
	}

	// Announce the bound addresses, then learn everyone else's.
	fmt.Printf("READY %s %s\n", ln.Addr(), tr.Addr())
	peerAddrs := splitList(*routes)
	if len(peerAddrs) == 0 && *shards > 1 {
		line, err := bufio.NewReader(os.Stdin).ReadString('\n')
		if err != nil {
			return fmt.Errorf("reading ROUTES line: %w", err)
		}
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "ROUTES ")
		if !ok {
			return fmt.Errorf("expected a ROUTES line, got %q", strings.TrimSpace(line))
		}
		peerAddrs = splitList(rest)
	}
	if *shards > 1 && len(peerAddrs) != *shards {
		return fmt.Errorf("got %d route(s) for %d shards", len(peerAddrs), *shards)
	}
	for i, a := range peerAddrs {
		if i != *index {
			tr.AddRoute(fleet.ReplicaEndpoint(i), a)
		}
	}
	addHostRoutes := func(sys *bwcluster.System) {
		parts := fleet.Assign(sys.Hosts(), *shards, sys.Epoch())
		for s, part := range parts {
			if s == *index {
				continue
			}
			for _, h := range part {
				tr.AddRoute(h, peerAddrs[s])
			}
		}
	}

	srv := &http.Server{Handler: sh.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if builder {
		m, err := dataset.LoadFile(*data)
		if err != nil {
			return err
		}
		raw := make([][]float64, m.N())
		for i := range raw {
			raw[i] = make([]float64, m.N())
			for j := range raw[i] {
				if i != j {
					raw[i][j] = m.At(i, j)
				}
			}
		}
		sys, err := bwcluster.New(raw, bwcluster.WithNCut(*nCut), bwcluster.WithSeed(*seed))
		if err != nil {
			return err
		}
		if len(peerAddrs) > 0 {
			addHostRoutes(sys)
		}
		if err := sh.Install(sys); err != nil {
			return err
		}
		for r := 0; r < *shards; r++ {
			if r == *index {
				continue
			}
			if err := sh.StreamTo(1, r); err != nil {
				logger.Error("snapshot stream failed", "replica", r, "err", err.Error())
			}
		}
	} else if len(peerAddrs) > 0 {
		// The replica's overlay routes depend on the assignment, known
		// only once the snapshot lands; StartReplica's install path needs
		// them in place, so hook the route fill to the restored system.
		// (Install retries nothing itself: gossip to a not-yet-routed peer
		// just errors and is retried next tick, so the late AddRoute
		// heals.)
		go func() {
			for {
				if sys := sh.System(); sys != nil {
					addHostRoutes(sys)
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		}()
	}

	ctx, stop := signalContext()
	defer stop()
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		return nil
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func runRouter(args []string) error {
	fs := flag.NewFlagSet("bwc-fleet -mode router", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	targets := fs.String("targets", "", "comma-separated shard base URLs in shard-index order; required")
	rate := fs.Float64("rate", 1000, "per-tenant admission rate (queries/s)")
	burst := fs.Float64("burst", 0, "per-tenant burst (0: 2x rate)")
	queue := fs.Int("queue", 100, "per-tenant admission queue depth beyond the burst")
	cacheSize := fs.Int("cache", 4096, "query cache entries")
	quiet := fs.Bool("quiet", false, "discard logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardURLs := splitList(*targets)
	if len(shardURLs) == 0 {
		return fmt.Errorf("-targets is required")
	}
	logger := newLogger(*quiet)
	rt := fleet.NewRouter(fleet.RouterConfig{
		Shards:    shardURLs,
		Logger:    logger,
		Metrics:   telemetry.Default().Handler(),
		Admission: fleet.AdmissionConfig{Rate: *rate, Burst: *burst, Queue: *queue},
		CacheSize: *cacheSize,
	})
	rt.Start()
	defer rt.Stop()
	srv := &http.Server{Addr: *addr, Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signalContext()
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	logger.Info("router serving", "addr", *addr, "shards", len(shardURLs))
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		return nil
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
