// Package bwcluster finds bandwidth-constrained clusters of hosts: given
// pairwise bandwidth measurements, it answers queries of the form "find k
// hosts whose pairwise bandwidth is at least b Mbps", in polynomial time,
// with either a centralized scan or decentralized query routing.
//
// It is an implementation of Song, Keleher and Sussman, "Searching for
// Bandwidth-Constrained Clusters" (ICDCS 2011). The key ideas:
//
//   - Internet bandwidth, transformed by d = C/BW, is approximately a
//     tree metric (it nearly satisfies the four-point condition), and
//     k-clique-style clustering — NP-complete in general — is solvable in
//     O(n^3) in tree metric spaces (the paper's Algorithm 1).
//   - A Sequoia-style prediction tree embeds O(n log n) measurements into
//     an edge-weighted tree that predicts all pairwise bandwidths, so
//     clustering needs no further measurements.
//   - Each host, gossiping only with its anchor-tree neighbors, maintains
//     a cluster routing table that routes any query toward a region
//     holding a big-enough cluster (Algorithms 2-4).
//
// Quick start:
//
//	sys, err := bwcluster.New(bandwidthMatrix)        // n x n Mbps
//	...
//	members, err := sys.FindCluster(8, 50)            // 8 hosts, >= 50 Mbps
//	res, err := sys.Query(0, 8, 50)                   // decentralized, from host 0
package bwcluster

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"bwcluster/internal/cluster"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/stats"
)

// DefaultC is the default rational-transform constant (d = C/BW).
const DefaultC = 100.0

// options collects the functional options.
type options struct {
	c           float64
	nCut        int
	trees       int
	classes     []float64 // bandwidth classes (Mbps)
	centralized bool
	seed        int64
	seedSet     bool
	parallelism int // 0: one worker per CPU
}

// Option customizes System construction.
type Option func(*options) error

// WithConstant sets the rational-transform constant C (default 100). All
// constants yield the same clusters; C only scales internal distances.
func WithConstant(c float64) Option {
	return func(o *options) error {
		if c <= 0 {
			return fmt.Errorf("bwcluster: constant must be positive, got %v", c)
		}
		o.c = c
		return nil
	}
}

// WithNCut bounds how many host records peers gossip per neighbor (the
// paper's n_cut, default 10). Larger values make decentralized queries
// more likely to succeed for large k, at higher message cost.
func WithNCut(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("bwcluster: n_cut must be >= 1, got %d", n)
		}
		o.nCut = n
		return nil
	}
}

// WithBandwidthClasses fixes the bandwidth classes (Mbps) decentralized
// queries snap to. Without this option, eight classes are derived from
// the 10th..80th percentiles of the input bandwidth distribution.
func WithBandwidthClasses(mbps []float64) Option {
	return func(o *options) error {
		if len(mbps) == 0 {
			return fmt.Errorf("bwcluster: at least one bandwidth class is required")
		}
		for _, b := range mbps {
			if b <= 0 {
				return fmt.Errorf("bwcluster: bandwidth class %v must be positive", b)
			}
		}
		o.classes = append([]float64(nil), mbps...)
		return nil
	}
}

// WithTrees sets the prediction-forest size (default 3). Each host is
// embedded into that many independently built prediction trees and
// bandwidth is predicted from the median tree distance; more trees cost
// proportionally more construction measurements but cancel placement
// noise.
func WithTrees(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("bwcluster: tree count must be >= 1, got %d", n)
		}
		o.trees = n
		return nil
	}
}

// WithCentralizedConstruction builds the prediction tree with a full scan
// per joining host instead of the decentralized anchor-tree search. It
// measures more but removes one heuristic from the pipeline.
func WithCentralizedConstruction() Option {
	return func(o *options) error {
		o.centralized = true
		return nil
	}
}

// WithSeed fixes the random seed governing host join order (and thereby
// the exact prediction tree built). Without it, seed 1 is used, making
// construction deterministic by default.
func WithSeed(seed int64) Option {
	return func(o *options) error {
		o.seed = seed
		o.seedSet = true
		return nil
	}
}

// WithParallelism bounds the worker pool the system uses for forest
// construction, index precomputation and centralized query scans. The
// default (without this option) is one worker per CPU; n = 1 forces fully
// sequential execution. Parallelism never changes results: construction
// splits the seeded random stream before fanning out, and query scans
// preserve the sequential scan order's answer (see DESIGN.md,
// "Parallel execution model").
func WithParallelism(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("bwcluster: parallelism must be >= 1, got %d", n)
		}
		o.parallelism = n
		return nil
	}
}

// System is a built clustering system over a fixed host population.
// Hosts are identified by their index in the input matrix.
//
// A System is safe for concurrent use once New (or Load) returns: every
// query method — Query, FindCluster, PredictBandwidth, MeasuredBandwidth,
// MaxClusterSize, TightestCluster, FindNodeForSet, QueryNode, Neighbors,
// RoutingTable, DistanceLabel, Stats — only reads the built state; the
// one piece of mutable state, the centralized query cache, is guarded by
// a read-write mutex inside the cluster index. This guarantee is
// exercised by TestSystemConcurrentUse under the race detector.
type System struct {
	c       float64
	nCut    int
	workers int // worker-pool bound for parallel paths (>= 1)
	bw      *metric.Matrix
	forest  *predtree.Forest
	pred    *metric.Matrix
	treeIdx *cluster.Index
	net     *overlay.Network
	ovCfg   overlay.Config // overlay parameters, kept for AsyncRuntime
	classes []float64      // bandwidth classes, ascending
}

// QueryResult is the outcome of a decentralized query.
type QueryResult struct {
	// Members holds the selected host indices; nil when no cluster was
	// found.
	Members []int
	// Hops is how many overlay hops the query traveled.
	Hops int
	// AnsweredBy is the host that produced the final answer.
	AnsweredBy int
	// Class is the bandwidth class (Mbps) the query was snapped to; it is
	// always >= the requested constraint.
	Class float64
}

// Found reports whether the query returned a cluster.
func (r QueryResult) Found() bool { return len(r.Members) > 0 }

// New builds a System from an n-by-n bandwidth matrix in Mbps. The matrix
// may be asymmetric (forward/reverse measurements are averaged, as in the
// paper); diagonal entries are ignored; every off-diagonal entry must be
// positive. Construction simulates hosts joining the decentralized
// prediction framework one by one and then runs the gossip protocol to
// convergence.
func New(bandwidth [][]float64, opts ...Option) (*System, error) {
	o := options{c: DefaultC, nCut: overlay.DefaultNCut, trees: 3, seed: 1}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	buildStart := time.Now()
	bw, err := metric.Symmetrize(bandwidth)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	if bw.N() < 2 {
		return nil, fmt.Errorf("bwcluster: need at least 2 hosts, got %d", bw.N())
	}
	dist, err := metric.DistanceFromBandwidth(bw, o.c)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	if o.classes == nil {
		o.classes = defaultClasses(bw)
	}
	sort.Float64s(o.classes)

	mode := predtree.SearchAnchor
	if o.centralized {
		mode = predtree.SearchFull
	}
	workers := cluster.Workers(o.parallelism, 0)
	rng := rand.New(rand.NewSource(o.seed))
	forest, err := predtree.BuildForestParallel(dist, o.c, mode, o.trees, rng, workers)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: build prediction forest: %w", err)
	}
	dm, hosts := forest.DistMatrix()
	pred := metric.NewMatrix(bw.N())
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			pred.Set(hosts[i], hosts[j], dm.Dist(i, j))
		}
	}
	treeIdx, err := cluster.NewIndexParallelAt(pred, workers, forest.Epoch())
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	distClasses, err := overlay.ClassesFromBandwidths(o.classes, o.c)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	ovCfg := overlay.Config{NCut: o.nCut, Classes: distClasses}
	net, err := overlay.NewNetwork(forest, ovCfg)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	if _, err := net.Converge(0); err != nil {
		return nil, fmt.Errorf("bwcluster: converge overlay: %w", err)
	}
	mBuildSeconds.Set(time.Since(buildStart).Seconds())
	return &System{
		c: o.c, nCut: o.nCut, workers: workers, bw: bw, forest: forest,
		pred: pred, treeIdx: treeIdx, net: net, ovCfg: ovCfg, classes: o.classes,
	}, nil
}

// defaultClasses derives eight bandwidth classes from the measurement
// distribution's 10th..80th percentiles.
func defaultClasses(bw *metric.Matrix) []float64 {
	vals := bw.Values()
	classes := make([]float64, 0, 8)
	for p := 10.0; p <= 80; p += 10 {
		v, err := stats.Percentile(vals, p)
		if err != nil || v <= 0 {
			continue
		}
		if len(classes) == 0 || v > classes[len(classes)-1] {
			classes = append(classes, v)
		}
	}
	if len(classes) == 0 {
		classes = []float64{1}
	}
	return classes
}

// Len reports the number of hosts.
func (s *System) Len() int { return s.bw.N() }

// Parallelism reports the system's worker-pool bound.
func (s *System) Parallelism() int { return s.workers }

// Epoch reports the system's membership epoch: the count of host
// add/remove operations applied to the prediction forest since it was
// built. Two systems at the same epoch built from the same inputs hold
// identical forests, which is what lets the serving tier key replica
// freshness and query-cache validity on this single number.
func (s *System) Epoch() uint64 { return s.forest.Epoch() }

// Hosts returns the ids of the hosts currently in the overlay, in join
// order — the live membership after any churn, as opposed to Len,
// which reports the measurement matrix's full width. The fleet's
// rendezvous assignment partitions exactly this set across shards.
func (s *System) Hosts() []int { return s.net.Hosts() }

// Constant returns the rational-transform constant in use.
func (s *System) Constant() float64 { return s.c }

// Classes returns the bandwidth classes (Mbps, ascending) decentralized
// queries snap to.
func (s *System) Classes() []float64 {
	out := make([]float64, len(s.classes))
	copy(out, s.classes)
	return out
}

// PredictBandwidth returns the framework's bandwidth estimate (Mbps) for
// a host pair, without any measurement.
func (s *System) PredictBandwidth(u, v int) (float64, error) {
	if err := s.checkHost(u); err != nil {
		return 0, err
	}
	if err := s.checkHost(v); err != nil {
		return 0, err
	}
	if u == v {
		return 0, fmt.Errorf("bwcluster: bandwidth of a host with itself is undefined")
	}
	d := s.pred.Dist(u, v)
	if d <= 0 {
		return s.c / 1e-9, nil
	}
	return s.c / d, nil
}

// MeasuredBandwidth returns the (symmetrized) input measurement.
func (s *System) MeasuredBandwidth(u, v int) (float64, error) {
	if err := s.checkHost(u); err != nil {
		return 0, err
	}
	if err := s.checkHost(v); err != nil {
		return 0, err
	}
	return s.bw.At(u, v), nil
}

func (s *System) checkHost(h int) error {
	if h < 0 || h >= s.bw.N() {
		return fmt.Errorf("bwcluster: host %d out of range [0,%d)", h, s.bw.N())
	}
	return nil
}

// FindCluster runs the centralized Algorithm 1 over the predicted
// bandwidths: it returns k hosts predicted to share at least minBandwidth
// Mbps pairwise, or nil if the system concludes none exist. The candidate
// scan is sharded across the system's worker pool (see WithParallelism)
// and repeated (k, minBandwidth) queries are answered from a memoized
// cache; both are invisible in the results, which always match the
// sequential scan's answer. Safe for concurrent use.
func (s *System) FindCluster(k int, minBandwidth float64) ([]int, error) {
	t0 := time.Now()
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, s.c)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	members, err := s.treeIdx.FindParallel(k, l, s.workers)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	mFindClusterSeconds.Observe(time.Since(t0).Seconds())
	return members, nil
}

// Query runs the decentralized protocol (Algorithm 4): the query enters
// the overlay at start and is routed toward a region whose cluster
// routing tables promise a big-enough cluster. minBandwidth snaps UP to
// the nearest configured bandwidth class, so returned clusters always
// meet the requested constraint (on predicted bandwidth). Queries only
// read the converged overlay state (local cluster searches materialize
// private scratch matrices), so Query is safe for concurrent use.
func (s *System) Query(start, k int, minBandwidth float64) (QueryResult, error) {
	if err := s.checkHost(start); err != nil {
		return QueryResult{}, err
	}
	t0 := time.Now()
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, s.c)
	if err != nil {
		return QueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	res, err := s.net.Query(start, k, l)
	if err != nil {
		return QueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	mQuerySeconds.Observe(time.Since(t0).Seconds())
	out := QueryResult{Members: res.Cluster, Hops: res.Hops, AnsweredBy: res.Answered}
	if res.Class > 0 {
		out.Class = s.c / res.Class
	}
	return out, nil
}

// Neighbors returns a host's overlay (anchor-tree) neighbors.
func (s *System) Neighbors(h int) ([]int, error) {
	if err := s.checkHost(h); err != nil {
		return nil, err
	}
	return s.net.Neighbors(h), nil
}

// DistanceLabel renders a host's distance label — the compact coordinate
// that lets any two hosts estimate their bandwidth locally — in the
// paper's arrow notation.
func (s *System) DistanceLabel(h int) (string, error) {
	if err := s.checkHost(h); err != nil {
		return "", err
	}
	label, err := s.forest.Primary().Label(h)
	if err != nil {
		return "", fmt.Errorf("bwcluster: %w", err)
	}
	return label.String(), nil
}

// TightestCluster returns the k hosts with the best possible worst-pair
// predicted bandwidth (the minimum-diameter k-cluster under the rational
// transform, exact in tree metric spaces), together with that worst-pair
// bandwidth. Members is nil when the system has fewer than k hosts.
func (s *System) TightestCluster(k int) (members []int, worstBandwidth float64, err error) {
	sel, _, err := cluster.MinDiameter(s.pred, k)
	if err != nil {
		return nil, 0, fmt.Errorf("bwcluster: %w", err)
	}
	if sel == nil {
		return nil, 0, nil
	}
	// Report the diameter actually achieved by the returned set (the
	// median-of-trees prediction is only approximately a tree metric, so
	// the determining pair's distance can be a hair optimistic).
	diam := metric.Diameter(s.pred, sel)
	if diam <= 0 {
		return sel, s.c / 1e-9, nil
	}
	return sel, s.c / diam, nil
}

// NodeQueryResult is the outcome of a single-node search.
type NodeQueryResult struct {
	// Node is the selected host, -1 when none qualified.
	Node int
	// WorstBandwidth is the node's minimum predicted bandwidth (Mbps) to
	// the input set — the quantity the search maximizes.
	WorstBandwidth float64
	// Hops and AnsweredBy describe the decentralized route (both 0 for
	// the centralized search).
	Hops       int
	AnsweredBy int
}

// Found reports whether a node was returned.
func (r NodeQueryResult) Found() bool { return r.Node >= 0 }

// FindNodeForSet implements the paper's single-node search extension
// centrally: among hosts outside the set, return the one whose worst
// predicted bandwidth to every set member is highest, requiring it to be
// at least minBandwidth. Node is -1 when no host qualifies.
func (s *System) FindNodeForSet(set []int, minBandwidth float64) (NodeQueryResult, error) {
	for _, m := range set {
		if err := s.checkHost(m); err != nil {
			return NodeQueryResult{}, err
		}
	}
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, s.c)
	if err != nil {
		return NodeQueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	node, radius, err := cluster.FindNodeForSet(s.pred, set, l)
	if err != nil {
		return NodeQueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	if node < 0 {
		return NodeQueryResult{Node: -1}, nil
	}
	return NodeQueryResult{Node: node, WorstBandwidth: s.c / radius}, nil
}

// QueryNode runs the single-node search decentrally: the query enters at
// start and hill-climbs over the overlay toward the host best connected
// to the whole set.
func (s *System) QueryNode(start int, set []int, minBandwidth float64) (NodeQueryResult, error) {
	if err := s.checkHost(start); err != nil {
		return NodeQueryResult{}, err
	}
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, s.c)
	if err != nil {
		return NodeQueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	res, err := s.net.QueryNode(start, set, l)
	if err != nil {
		return NodeQueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	out := NodeQueryResult{Node: res.Node, Hops: res.Hops, AnsweredBy: res.Answered}
	if res.Found() && res.Radius > 0 {
		out.WorstBandwidth = s.c / res.Radius
	}
	return out, nil
}

// Stats summarizes what it cost to build and run this system.
type SystemStats struct {
	// Hosts is the population size.
	Hosts int
	// Trees is the prediction-forest size.
	Trees int
	// Measurements is how many measurement lookups framework construction
	// performed; DistinctPairs is how many distinct host pairs that
	// touched (out of n(n-1)/2 possible) — the real network cost when
	// hosts cache results.
	Measurements  int
	DistinctPairs int
	// GossipRounds and GossipMessages describe the background protocol
	// run so far.
	GossipRounds   int
	GossipMessages int
	// OverlayMaxDepth, OverlayAvgDepth and OverlayMaxDegree describe the
	// anchor-tree overlay's shape, which bounds query routing length and
	// per-peer gossip cost.
	OverlayMaxDepth  int
	OverlayAvgDepth  float64
	OverlayMaxDegree int
}

// Stats reports construction and protocol costs.
func (s *System) Stats() SystemStats {
	shape := s.forest.Primary().AnchorStats()
	return SystemStats{
		Hosts:            s.bw.N(),
		Trees:            s.forest.Size(),
		Measurements:     s.forest.Measurements(),
		DistinctPairs:    s.forest.DistinctMeasurements(),
		GossipRounds:     s.net.Rounds(),
		GossipMessages:   s.net.Stats().Messages(),
		OverlayMaxDepth:  shape.MaxDepth,
		OverlayAvgDepth:  shape.AvgDepth,
		OverlayMaxDegree: shape.MaxDegree,
	}
}

// CRTEntry is one neighbor direction of a host's cluster routing table:
// for each bandwidth class (aligned with Classes()), the maximum cluster
// size known to exist in that direction.
type CRTEntry struct {
	Neighbor int
	MaxSizes []int
}

// RoutingTable exposes host h's cluster routing table: its own per-class
// maximum cluster sizes (the local clustering space) and one entry per
// overlay neighbor. This is the state Algorithm 4 routes on.
func (s *System) RoutingTable(h int) (self []int, entries []CRTEntry, err error) {
	if err := s.checkHost(h); err != nil {
		return nil, nil, err
	}
	// The overlay indexes CRTs by ascending DISTANCE class, which is
	// descending bandwidth; reverse so the slices align with Classes().
	self = reverseInts(s.net.SelfCRT(h))
	for _, nb := range s.net.Neighbors(h) {
		entries = append(entries, CRTEntry{Neighbor: nb, MaxSizes: reverseInts(s.net.CRT(h, nb))})
	}
	return self, entries, nil
}

func reverseInts(xs []int) []int {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
	return xs
}

// WritePredictionDOT renders the primary prediction tree in Graphviz DOT
// format (hosts as boxes, inner nodes as circles, edge weights labelled).
func (s *System) WritePredictionDOT(w io.Writer) error {
	return s.forest.Primary().WritePredictionDOT(w)
}

// WriteAnchorDOT renders the overlay (anchor tree) in Graphviz DOT
// format.
func (s *System) WriteAnchorDOT(w io.Writer) error {
	return s.forest.Primary().WriteAnchorDOT(w)
}

// MaxClusterSize reports the largest cluster size any query with the
// given bandwidth constraint could return (on predicted bandwidths).
func (s *System) MaxClusterSize(minBandwidth float64) (int, error) {
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, s.c)
	if err != nil {
		return 0, fmt.Errorf("bwcluster: %w", err)
	}
	return s.treeIdx.MaxSize(l), nil
}
