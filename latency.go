package bwcluster

import (
	"fmt"
	"math/rand"
	"sort"

	"bwcluster/internal/cluster"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/stats"
)

// LatencySystem finds latency-constrained clusters: k hosts with pairwise
// latency at most a bound. The paper's future work points out that
// latency also embeds well into tree metric spaces, so the same
// machinery applies with the identity transform (distances are
// milliseconds directly, no rational transform).
type LatencySystem struct {
	lat     *metric.Matrix // measured latency (ms)
	pred    *metric.Matrix // predicted latency
	forest  *predtree.Forest
	treeIdx *cluster.Index
	net     *overlay.Network
	classes []float64 // latency classes (ms), ascending
}

// WithLatencyClasses fixes the latency classes (ms) decentralized
// queries snap to; without it, classes derive from the input latency
// distribution's 20th..90th percentiles.
func WithLatencyClasses(ms []float64) Option {
	// Latency classes reuse the option slot for classes; NewLatency
	// interprets them as milliseconds.
	return WithBandwidthClasses(ms)
}

// NewLatency builds a latency clustering system from an n-by-n latency
// matrix in milliseconds (asymmetric input is averaged, diagonal
// ignored, off-diagonal entries must be positive).
func NewLatency(latency [][]float64, opts ...Option) (*LatencySystem, error) {
	o := options{c: DefaultC, nCut: overlay.DefaultNCut, trees: 3, seed: 1}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	lat, err := metric.Symmetrize(latency)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	if lat.N() < 2 {
		return nil, fmt.Errorf("bwcluster: need at least 2 hosts, got %d", lat.N())
	}
	for i := 0; i < lat.N(); i++ {
		for j := i + 1; j < lat.N(); j++ {
			if lat.At(i, j) <= 0 {
				return nil, fmt.Errorf("bwcluster: latency(%d,%d)=%v is not positive", i, j, lat.At(i, j))
			}
		}
	}
	if o.classes == nil {
		o.classes = defaultLatencyClasses(lat)
	}
	sort.Float64s(o.classes)

	mode := predtree.SearchAnchor
	if o.centralized {
		mode = predtree.SearchFull
	}
	rng := rand.New(rand.NewSource(o.seed))
	forest, err := predtree.BuildForest(lat, o.c, mode, o.trees, rng)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: build prediction forest: %w", err)
	}
	dm, hosts := forest.DistMatrix()
	pred := metric.NewMatrix(lat.N())
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			pred.Set(hosts[i], hosts[j], dm.Dist(i, j))
		}
	}
	treeIdx, err := cluster.NewIndex(pred)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	// Latency classes are already distances: no transform.
	net, err := overlay.NewNetwork(forest, overlay.Config{NCut: o.nCut, Classes: o.classes})
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	if _, err := net.Converge(0); err != nil {
		return nil, fmt.Errorf("bwcluster: converge overlay: %w", err)
	}
	return &LatencySystem{
		lat: lat, pred: pred, forest: forest,
		treeIdx: treeIdx, net: net, classes: o.classes,
	}, nil
}

func defaultLatencyClasses(lat *metric.Matrix) []float64 {
	vals := lat.Values()
	classes := make([]float64, 0, 8)
	for p := 20.0; p <= 90; p += 10 {
		v, err := stats.Percentile(vals, p)
		if err != nil || v <= 0 {
			continue
		}
		if len(classes) == 0 || v > classes[len(classes)-1] {
			classes = append(classes, v)
		}
	}
	if len(classes) == 0 {
		classes = []float64{1}
	}
	return classes
}

// Len reports the number of hosts.
func (s *LatencySystem) Len() int { return s.lat.N() }

// Classes returns the latency classes (ms, ascending).
func (s *LatencySystem) Classes() []float64 {
	out := make([]float64, len(s.classes))
	copy(out, s.classes)
	return out
}

func (s *LatencySystem) checkHost(h int) error {
	if h < 0 || h >= s.lat.N() {
		return fmt.Errorf("bwcluster: host %d out of range [0,%d)", h, s.lat.N())
	}
	return nil
}

// PredictLatency returns the framework's latency estimate (ms).
func (s *LatencySystem) PredictLatency(u, v int) (float64, error) {
	if err := s.checkHost(u); err != nil {
		return 0, err
	}
	if err := s.checkHost(v); err != nil {
		return 0, err
	}
	if u == v {
		return 0, nil
	}
	return s.pred.Dist(u, v), nil
}

// MeasuredLatency returns the (symmetrized) input measurement.
func (s *LatencySystem) MeasuredLatency(u, v int) (float64, error) {
	if err := s.checkHost(u); err != nil {
		return 0, err
	}
	if err := s.checkHost(v); err != nil {
		return 0, err
	}
	return s.lat.At(u, v), nil
}

// FindCluster returns k hosts predicted to be within maxLatency ms of
// each other, or nil if none exist.
func (s *LatencySystem) FindCluster(k int, maxLatency float64) ([]int, error) {
	if maxLatency < 0 {
		return nil, fmt.Errorf("bwcluster: maxLatency must be >= 0, got %v", maxLatency)
	}
	members, err := s.treeIdx.Find(k, maxLatency)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: %w", err)
	}
	return members, nil
}

// Query runs the decentralized protocol with a latency constraint;
// maxLatency snaps DOWN to the nearest configured class, so returned
// clusters always meet the requested bound (on predicted latency).
func (s *LatencySystem) Query(start, k int, maxLatency float64) (QueryResult, error) {
	if err := s.checkHost(start); err != nil {
		return QueryResult{}, err
	}
	res, err := s.net.Query(start, k, maxLatency)
	if err != nil {
		return QueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	return QueryResult{
		Members: res.Cluster, Hops: res.Hops,
		AnsweredBy: res.Answered, Class: res.Class,
	}, nil
}
