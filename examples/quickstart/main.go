// Quickstart: build a clustering system from a bandwidth matrix and ask
// it for bandwidth-constrained clusters, both centrally and through the
// decentralized protocol.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bwcluster"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthesize measurements for 50 hosts with the access-link bottleneck
	// model: every host has an access capacity, and the bandwidth between
	// two hosts is the slower of the two access links, times a little
	// measurement noise. (Real deployments would plug in pathChirp-style
	// measurements here.)
	const n = 50
	rng := rand.New(rand.NewSource(7))
	access := make([]float64, n)
	for i := range access {
		access[i] = 20 + 180*rng.Float64() // 20..200 Mbps
	}
	bw := make([][]float64, n)
	for i := range bw {
		bw[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := math.Min(access[i], access[j]) * (0.9 + 0.2*rng.Float64())
			bw[i][j], bw[j][i] = v, v
		}
	}

	// Build the system: prediction forest, anchor-tree overlay, cluster
	// routing tables.
	sys, err := bwcluster.New(bw, bwcluster.WithSeed(1))
	if err != nil {
		return err
	}
	fmt.Printf("built system over %d hosts; bandwidth classes: %.0f Mbps\n",
		sys.Len(), sys.Classes())

	// How big could a 60 Mbps cluster get?
	size, err := sys.MaxClusterSize(60)
	if err != nil {
		return err
	}
	fmt.Printf("largest possible cluster at >= 60 Mbps: %d hosts\n", size)

	// Centralized query: 6 hosts with >= 60 Mbps pairwise.
	members, err := sys.FindCluster(6, 60)
	if err != nil {
		return err
	}
	fmt.Printf("centralized: cluster %v\n", members)
	printWorstPair(sys, members)

	// Decentralized query: submitted to an arbitrary host, routed by the
	// cluster routing tables.
	res, err := sys.Query(17, 6, 60)
	if err != nil {
		return err
	}
	if !res.Found() {
		return fmt.Errorf("decentralized query found no cluster")
	}
	fmt.Printf("decentralized: query from host 17 answered by host %d after %d hops (class %.0f Mbps)\n",
		res.AnsweredBy, res.Hops, res.Class)
	fmt.Printf("decentralized: cluster %v\n", res.Members)
	printWorstPair(sys, res.Members)

	// Every host carries a compact distance label (its "coordinate").
	label, err := sys.DistanceLabel(res.Members[0])
	if err != nil {
		return err
	}
	fmt.Printf("distance label of host %d: %s\n", res.Members[0], label)
	return nil
}

func printWorstPair(sys *bwcluster.System, members []int) {
	worst := math.Inf(1)
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if v, err := sys.MeasuredBandwidth(members[i], members[j]); err == nil && v < worst {
				worst = v
			}
		}
	}
	fmt.Printf("  worst measured pair inside the cluster: %.1f Mbps\n", worst)
}
