// Live network: runs the protocol on the asynchronous goroutine-per-peer
// runtime. Hosts join the prediction framework one by one while gossip
// (Algorithms 2 and 3) runs in the background, and queries are submitted
// to random peers both before and after the network settles — showing
// dynamic membership and eventually-consistent routing state.
//
// This example uses the in-repo runtime package directly; the public
// facade (package bwcluster) covers the static case.
//
//	go run ./examples/livenet              # single process (this file)
//	go run ./examples/livenet -tcp-smoke   # two processes over TCP (tcp.go)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/runtime"
)

func main() {
	listen := flag.String("tcp-listen", "", "run as one half of the two-process TCP demo, listening here")
	peer := flag.String("tcp-peer", "", "listen address of the other half's process")
	role := flag.String("tcp-role", "a", "which half of the split this process hosts: a or b")
	smoke := flag.Bool("tcp-smoke", false, "run the two-process TCP demo end to end (spawns the second process)")
	flag.Parse()
	var err error
	switch {
	case *smoke:
		err = runTCPSmoke()
	case *listen != "":
		err = runTCPRole(*role, *listen, *peer)
	default:
		err = run()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		totalHosts   = 60
		initialHosts = 20
		k            = 5
	)
	rng := rand.New(rand.NewSource(5))
	bw, err := dataset.Generate(dataset.HPConfig().WithN(totalHosts), rng)
	if err != nil {
		return err
	}
	dist, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
	if err != nil {
		return err
	}
	bValues := []float64{20, 35, 50, 70}
	classes, err := overlay.ClassesFromBandwidths(bValues, metric.DefaultC)
	if err != nil {
		return err
	}

	// Bootstrap the prediction tree with the first batch of hosts.
	order := rng.Perm(totalHosts)
	tree, err := predtree.New(metric.DefaultC, predtree.SearchAnchor)
	if err != nil {
		return err
	}
	for _, h := range order[:initialHosts] {
		if err := tree.Add(h, dist); err != nil {
			return err
		}
	}
	rt, err := runtime.New(tree, overlay.Config{NCut: 8, Classes: classes}, time.Millisecond)
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Stop()

	fmt.Printf("started %d peers; gossip running\n", initialHosts)

	// Query while the network is still converging: the protocol answers
	// with whatever routing state exists (it may miss).
	early, err := rt.Query(order[0], k, classL(50), 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("early query (k=%d, b=50):  found=%v after %d hops\n", k, early.Found(), early.Hops)

	// Stream in the remaining hosts while everything keeps running.
	for i, h := range order[initialHosts:] {
		if err := rt.AddHost(h, dist); err != nil {
			return err
		}
		if (i+1)%10 == 0 {
			fmt.Printf("joined %d more hosts (now %d)\n", 10, initialHosts+i+1)
		}
	}
	if err := rt.Settle(50*time.Millisecond, 30*time.Second); err != nil {
		return err
	}
	fmt.Printf("network settled with %d peers\n", len(rt.Hosts()))

	// Now the routing tables are consistent: query from several peers.
	for _, b := range bValues {
		start := order[rng.Intn(totalHosts)]
		res, err := rt.Query(start, k, classL(b), 5*time.Second)
		if err != nil {
			return err
		}
		status := "not found"
		if res.Found() {
			status = fmt.Sprintf("cluster %v", res.Cluster)
		}
		fmt.Printf("query (k=%d, b=%.0f) from host %2d: %s (%d hops, answered by %d)\n",
			k, b, start, status, res.Hops, res.Answered)
	}
	return nil
}

// classL converts a bandwidth constraint to the equivalent diameter.
func classL(b float64) float64 { return metric.DefaultC / b }
