// Two-process mode: the same protocol network split across two OS
// processes talking over real TCP sockets. Both processes build the
// identical prediction framework from the shared seed (the substrate
// must describe the whole network on every process), then each hosts
// half of the peers; gossip and query forwarding cross the process
// boundary through transport.TCPTransport.
//
//	go run ./examples/livenet -tcp-smoke          # spawns the second process itself
//
// or by hand, in two shells:
//
//	go run ./examples/livenet -tcp-listen 127.0.0.1:7701 -tcp-peer 127.0.0.1:7702 -tcp-role a
//	go run ./examples/livenet -tcp-listen 127.0.0.1:7702 -tcp-peer 127.0.0.1:7701 -tcp-role b
package main

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"time"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/runtime"
	"bwcluster/internal/transport"
)

const (
	splitHosts = 24
	splitK     = 4
	splitSeed  = 7
)

// splitSide is one process's half of the split network: its runtime, its
// transport, and which peer ids live on each side.
type splitSide struct {
	rt     *runtime.Runtime
	tr     *transport.TCPTransport
	local  []int
	remote []int
}

// startSplit builds the shared substrate, takes the role's half of the
// hosts, and starts a runtime over a TCP transport listening on listen
// with every remote peer routed to peerAddr. Role "a" hosts the
// even-indexed peers, "b" the odd-indexed ones.
func startSplit(role, listen, peerAddr string) (*splitSide, error) {
	if role != "a" && role != "b" {
		return nil, fmt.Errorf("tcp-role must be a or b, got %q", role)
	}
	// Both processes must derive the same framework: same seed, same
	// join order, full host set.
	rng := rand.New(rand.NewSource(splitSeed))
	bw, err := dataset.Generate(dataset.HPConfig().WithN(splitHosts), rng)
	if err != nil {
		return nil, err
	}
	dist, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
	if err != nil {
		return nil, err
	}
	classes, err := overlay.ClassesFromBandwidths([]float64{20, 35, 50, 70}, metric.DefaultC)
	if err != nil {
		return nil, err
	}
	tree, err := predtree.New(metric.DefaultC, predtree.SearchAnchor)
	if err != nil {
		return nil, err
	}
	for _, h := range rng.Perm(splitHosts) {
		if err := tree.Add(h, dist); err != nil {
			return nil, err
		}
	}
	_, hosts := tree.DistMatrix()
	var local, remote []int
	for i, h := range hosts {
		if (i%2 == 0) == (role == "a") {
			local = append(local, h)
		} else {
			remote = append(remote, h)
		}
	}

	tr, err := transport.NewTCP(transport.TCPConfig{Listen: listen})
	if err != nil {
		return nil, err
	}
	for _, h := range remote {
		tr.AddRoute(h, peerAddr)
	}
	rt, err := runtime.NewWithTransport(tree, overlay.Config{NCut: 8, Classes: classes}, time.Millisecond, tr, local)
	if err != nil {
		tr.Close()
		return nil, err
	}
	rt.Start()
	return &splitSide{rt: rt, tr: tr, local: local, remote: remote}, nil
}

// stop shuts the runtime down and closes the transport (the runtime does
// not own a transport it was handed).
func (s *splitSide) stop() {
	s.rt.Stop()
	s.tr.Close()
}

// settle waits until this side's state stops changing across a full
// quiet window twice in a row — remote gossip bumps the local version,
// so stability means both halves (and the sockets between them) have
// gone quiet.
func (s *splitSide) settle() error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		v := s.rt.Version()
		if err := s.rt.Settle(300*time.Millisecond, time.Until(deadline)); err != nil {
			return err
		}
		if s.rt.Version() == v {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("split network did not settle")
		}
	}
}

// runTCPRole is one process of the two-process demo: start a half, wait
// for the network (both halves) to settle, then query across the split.
func runTCPRole(role, listen, peerAddr string) error {
	if peerAddr == "" {
		return fmt.Errorf("-tcp-peer is required with -tcp-listen")
	}
	s, err := startSplit(role, listen, peerAddr)
	if err != nil {
		return err
	}
	defer s.stop()
	fmt.Printf("[%s] hosting %d of %d peers on %s, peer process at %s\n",
		role, len(s.local), splitHosts, s.tr.Addr(), peerAddr)
	if err := s.settle(); err != nil {
		return err
	}
	fmt.Printf("[%s] network settled (%d reconnect attempts while the peer came up)\n",
		role, s.tr.Reconnects())

	// Query from a local peer; the search routes through peers hosted by
	// the other process and the answer is routed back here.
	for _, b := range []float64{35, 50} {
		res, err := s.rt.Query(s.local[0], splitK, classL(b), 10*time.Second)
		if err != nil {
			return err
		}
		status := "not found"
		if res.Found() {
			status = fmt.Sprintf("cluster %v", res.Cluster)
		}
		fmt.Printf("[%s] query (k=%d, b=%.0f) from host %2d: %s (%d hops, answered by %d)\n",
			role, splitK, b, s.local[0], status, res.Hops, res.Answered)
	}
	return nil
}

// runTCPSmoke runs the two-process demo end to end: it reserves two
// loopback ports, re-executes this binary as role b, and runs role a in
// this process.
func runTCPSmoke() error {
	addrA, err := freeAddr()
	if err != nil {
		return err
	}
	addrB, err := freeAddr()
	if err != nil {
		return err
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	child := exec.Command(self, "-tcp-listen", addrB, "-tcp-peer", addrA, "-tcp-role", "b")
	child.Stdout = os.Stdout
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		return err
	}
	errA := runTCPRole("a", addrA, addrB)
	if err := child.Wait(); err != nil {
		return fmt.Errorf("role b process: %w", err)
	}
	return errA
}

// freeAddr reserves an ephemeral loopback port and releases it for the
// process that will actually listen there. The tiny window between
// release and reuse is covered by the transport's reconnect backoff.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}
