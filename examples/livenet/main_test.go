package main

import "testing"

// The live-network example spins up real goroutine peers; it must run to
// completion (joins, settling, queries) without error.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
