package main

import (
	"testing"
	"time"
)

// The live-network example spins up real goroutine peers; it must run to
// completion (joins, settling, queries) without error.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// The two-process demo's halves, run in one process over real loopback
// sockets: both must settle and answer a query that crosses the split.
func TestSplitPair(t *testing.T) {
	addrA, err := freeAddr()
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := freeAddr()
	if err != nil {
		t.Fatal(err)
	}
	a, err := startSplit("a", addrA, addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer a.stop()
	b, err := startSplit("b", addrB, addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer b.stop()
	if err := a.settle(); err != nil {
		t.Fatal(err)
	}
	if err := b.settle(); err != nil {
		t.Fatal(err)
	}
	res, err := a.rt.Query(a.local[0], splitK, classL(50), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Error("settled split query found nothing")
	}
}
