// Content delivery: carve a subscriber population into high-bandwidth
// clusters, push the content once to a representative of each cluster,
// and let it fan out inside the cluster — the paper's second motivating
// application. Compared against naive unicast from the origin, the
// cluster plan cuts total origin egress and distribution time.
//
//	go run ./examples/cdn
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bwcluster"
)

const (
	numSubscribers = 120
	contentMB      = 2048
	clusterSize    = 8  // subscribers per delivery cluster
	clusterMbps    = 30 // required intra-cluster bandwidth
	originMbps     = 200
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(21))
	bw := subscriberMatrix(rng)

	// Plan: repeatedly build the system over the remaining subscribers and
	// extract one cluster at a time until no more qualify.
	remaining := make([]int, numSubscribers)
	for i := range remaining {
		remaining[i] = i
	}
	var clusters [][]int
	for len(remaining) >= clusterSize {
		sub := submatrix(bw, remaining)
		sys, err := bwcluster.New(sub, bwcluster.WithSeed(int64(len(clusters))+1))
		if err != nil {
			return err
		}
		members, err := sys.FindCluster(clusterSize, clusterMbps)
		if err != nil {
			return err
		}
		if members == nil {
			break
		}
		cluster := make([]int, len(members))
		for i, m := range members {
			cluster[i] = remaining[m]
		}
		clusters = append(clusters, cluster)
		remaining = remove(remaining, cluster)
	}
	fmt.Printf("delivery plan: %d clusters of %d subscribers, %d served directly\n",
		len(clusters), clusterSize, len(remaining))

	// Distribution time, cluster plan: origin sends to one representative
	// per cluster (sequentially over its uplink), then each cluster fans
	// out internally in parallel.
	seconds := 0.0
	originSends := len(clusters) + len(remaining)
	originSeconds := float64(originSends) * contentMB * 8 / originMbps
	worstFanout := 0.0
	for _, c := range clusters {
		rep := representative(bw, c)
		for _, m := range c {
			if m == rep {
				continue
			}
			t := contentMB * 8 / bw[rep][m]
			if t > worstFanout {
				worstFanout = t
			}
		}
	}
	seconds = originSeconds + worstFanout
	fmt.Printf("cluster plan: origin sends %d copies (%.0f s) + parallel fan-out (%.0f s) = %.0f s\n",
		originSends, originSeconds, worstFanout, seconds)

	naive := float64(numSubscribers) * contentMB * 8 / originMbps
	fmt.Printf("naive unicast: origin sends %d copies = %.0f s\n", numSubscribers, naive)
	fmt.Printf("speedup: %.1fx, origin egress reduced %.1fx\n",
		naive/seconds, float64(numSubscribers)/float64(originSends))
	return nil
}

// representative picks the cluster member with the highest total measured
// bandwidth to the rest — the natural fan-out seed.
func representative(bw [][]float64, members []int) int {
	best, bestSum := members[0], -1.0
	for _, m := range members {
		sum := 0.0
		for _, o := range members {
			if o != m {
				sum += bw[m][o]
			}
		}
		if sum > bestSum {
			best, bestSum = m, sum
		}
	}
	return best
}

func submatrix(bw [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, a := range idx {
		out[i] = make([]float64, len(idx))
		for j, b := range idx {
			if i != j {
				out[i][j] = bw[a][b]
			}
		}
	}
	return out
}

func remove(from, drop []int) []int {
	dropSet := make(map[int]bool, len(drop))
	for _, d := range drop {
		dropSet[d] = true
	}
	out := from[:0]
	for _, v := range from {
		if !dropSet[v] {
			out = append(out, v)
		}
	}
	return out
}

// subscriberMatrix models subscribers spread over a few metro regions
// with fast intra-metro paths and slower long-haul links.
func subscriberMatrix(rng *rand.Rand) [][]float64 {
	metro := make([]int, numSubscribers)
	access := make([]float64, numSubscribers)
	for i := range metro {
		metro[i] = rng.Intn(5)
		access[i] = 20 + 120*rng.Float64()
	}
	bw := make([][]float64, numSubscribers)
	for i := range bw {
		bw[i] = make([]float64, numSubscribers)
	}
	for i := 0; i < numSubscribers; i++ {
		for j := i + 1; j < numSubscribers; j++ {
			v := math.Min(access[i], access[j])
			if metro[i] != metro[j] {
				v = math.Min(v, 8+22*rng.Float64()) // long-haul bottleneck
			}
			v *= 0.9 + 0.2*rng.Float64()
			bw[i][j], bw[j][i] = v, v
		}
	}
	return bw
}
