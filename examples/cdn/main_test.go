package main

import "testing"

// The example must run end to end without error (its output is the
// demonstration; determinism comes from the fixed seeds).
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
