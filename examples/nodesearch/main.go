// Node search: the paper's future-work extension, implemented here. A
// running job set wants one more worker — the host whose *worst*
// bandwidth to every current member is best — and a replica placement
// wants the overall tightest group. Both come straight from the public
// API.
//
//	go run ./examples/nodesearch
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bwcluster"
)

const numHosts = 100

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(31))
	bw := clusteredMatrix(rng)
	sys, err := bwcluster.New(bw,
		bwcluster.WithSeed(2),
		bwcluster.WithBandwidthClasses([]float64{10, 25, 50, 100}))
	if err != nil {
		return err
	}

	// Step 1: the overall tightest 6-host group (minimum-diameter
	// k-cluster — exact in tree metric spaces).
	members, worst, err := sys.TightestCluster(6)
	if err != nil {
		return err
	}
	fmt.Printf("tightest 6-host group: %v (worst predicted pair %.0f Mbps)\n", members, worst)

	// Step 2: the job grows — find the best 7th member, centrally...
	res, err := sys.FindNodeForSet(members, 25)
	if err != nil {
		return err
	}
	if !res.Found() {
		return fmt.Errorf("no extra worker sustains 25 Mbps to the whole set")
	}
	fmt.Printf("best extra worker (central): host %d, worst link %.0f Mbps\n",
		res.Node, res.WorstBandwidth)

	// ...and decentrally, submitted at an arbitrary host: the query
	// hill-climbs the overlay toward the set's region.
	dres, err := sys.QueryNode(numHosts-1, members, 25)
	if err != nil {
		return err
	}
	if dres.Found() {
		fmt.Printf("best extra worker (decentral, from host %d): host %d after %d hops, worst link %.0f Mbps\n",
			numHosts-1, dres.Node, dres.Hops, dres.WorstBandwidth)
	} else {
		fmt.Printf("decentralized search found no candidate (answered by %d after %d hops)\n",
			dres.AnsweredBy, dres.Hops)
	}

	// Sanity: report the measured (ground-truth) worst link of the pick.
	worstReal := math.Inf(1)
	for _, m := range members {
		if v, err := sys.MeasuredBandwidth(res.Node, m); err == nil && v < worstReal {
			worstReal = v
		}
	}
	fmt.Printf("measured worst link of the central pick: %.0f Mbps\n", worstReal)
	return nil
}

// clusteredMatrix models pods of well-connected hosts joined by a slower
// backbone.
func clusteredMatrix(rng *rand.Rand) [][]float64 {
	pod := make([]int, numHosts)
	access := make([]float64, numHosts)
	for i := range pod {
		pod[i] = rng.Intn(6)
		access[i] = 30 + 170*rng.Float64()
	}
	bw := make([][]float64, numHosts)
	for i := range bw {
		bw[i] = make([]float64, numHosts)
	}
	for i := 0; i < numHosts; i++ {
		for j := i + 1; j < numHosts; j++ {
			v := math.Min(access[i], access[j])
			if pod[i] != pod[j] {
				v = math.Min(v, 12+28*rng.Float64())
			}
			v *= 0.9 + 0.2*rng.Float64()
			bw[i][j], bw[j][i] = v, v
		}
	}
	return bw
}
