// Latency-constrained clustering: the paper's future-work extension.
// Latency embeds into tree metric spaces just like bandwidth (without
// even needing the rational transform), so the same machinery answers
// "find k hosts within X ms of each other" — here used to place a
// gaming/conferencing session.
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bwcluster"
)

const (
	numHosts    = 120
	sessionSize = 8
	maxLatency  = 30 // ms
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(41))
	lat := wideAreaLatency(rng)
	sys, err := bwcluster.NewLatency(lat,
		bwcluster.WithSeed(4),
		bwcluster.WithLatencyClasses([]float64{15, maxLatency, 60, 120}))
	if err != nil {
		return err
	}
	fmt.Printf("built latency system over %d hosts; classes %v ms\n",
		sys.Len(), sys.Classes())

	// Centralized placement.
	members, err := sys.FindCluster(sessionSize, maxLatency)
	if err != nil {
		return err
	}
	if members == nil {
		return fmt.Errorf("no %d-host session fits under %d ms", sessionSize, maxLatency)
	}
	fmt.Printf("session placement: hosts %v\n", members)
	fmt.Printf("  worst predicted pair: %.1f ms, worst measured pair: %.1f ms\n",
		worstPredicted(sys, members), worstMeasured(sys, members))

	// The same request through the decentralized protocol, from a random
	// host.
	res, err := sys.Query(rng.Intn(numHosts), sessionSize, maxLatency)
	if err != nil {
		return err
	}
	if res.Found() {
		fmt.Printf("decentralized: answered by host %d after %d hops (class %.0f ms)\n",
			res.AnsweredBy, res.Hops, res.Class)
	} else {
		fmt.Println("decentralized: no session found")
	}

	// Contrast with a random placement.
	random := rng.Perm(numHosts)[:sessionSize]
	fmt.Printf("random placement worst measured pair: %.1f ms\n", worstMeasured(sys, random))
	return nil
}

func worstPredicted(sys *bwcluster.LatencySystem, members []int) float64 {
	worst := 0.0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if v, err := sys.PredictLatency(members[i], members[j]); err == nil && v > worst {
				worst = v
			}
		}
	}
	return worst
}

func worstMeasured(sys *bwcluster.LatencySystem, members []int) float64 {
	worst := 0.0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if v, err := sys.MeasuredLatency(members[i], members[j]); err == nil && v > worst {
				worst = v
			}
		}
	}
	return worst
}

// wideAreaLatency models hosts in a few metros: short local paths, long
// cross-continent ones, per-host access delays.
func wideAreaLatency(rng *rand.Rand) [][]float64 {
	metroPos := [][2]float64{{0, 0}, {20, 5}, {70, 10}, {75, 60}, {10, 80}}
	metro := make([]int, numHosts)
	access := make([]float64, numHosts)
	for i := range metro {
		metro[i] = rng.Intn(len(metroPos))
		access[i] = 1 + 9*rng.Float64()
	}
	lat := make([][]float64, numHosts)
	for i := range lat {
		lat[i] = make([]float64, numHosts)
	}
	for i := 0; i < numHosts; i++ {
		for j := i + 1; j < numHosts; j++ {
			a, b := metroPos[metro[i]], metroPos[metro[j]]
			core := math.Hypot(a[0]-b[0], a[1]-b[1]) // ~1 ms per unit
			v := (access[i] + access[j] + core) * (0.95 + 0.1*rng.Float64())
			lat[i][j], lat[j][i] = v, v
		}
	}
	return lat
}
