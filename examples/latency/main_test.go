package main

import "testing"

// The example must run end to end without error.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
