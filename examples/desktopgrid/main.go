// Desktop-grid scheduling: the paper's motivating application. A
// CyberShake-like data-intensive job set exchanges large intermediate
// files between every pair of workers, so its makespan is dominated by
// the slowest link among the chosen hosts. Scheduling the job set on a
// bandwidth-constrained cluster (found by this library) beats random
// host selection by a wide margin.
//
//	go run ./examples/desktopgrid
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bwcluster"
)

const (
	numHosts   = 150
	numWorkers = 12   // hosts the job set needs
	dataMB     = 4096 // MB exchanged between every worker pair
	minMbps    = 40   // bandwidth constraint for the cluster query
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	bw := syntheticGrid(rng)

	sys, err := bwcluster.New(bw,
		bwcluster.WithSeed(3),
		bwcluster.WithBandwidthClasses([]float64{10, 20, minMbps, 80, 160}))
	if err != nil {
		return err
	}

	// Scheduler A: ask the decentralized protocol for a high-bandwidth
	// cluster, starting from a random submission host.
	res, err := sys.Query(rng.Intn(numHosts), numWorkers, minMbps)
	if err != nil {
		return err
	}
	if !res.Found() {
		return fmt.Errorf("no %d-host cluster with >= %d Mbps available", numWorkers, minMbps)
	}
	fmt.Printf("cluster scheduler: hosts %v (query: %d hops, class %.0f Mbps)\n",
		res.Members, res.Hops, res.Class)

	// Scheduler B: pick workers uniformly at random (what a
	// bandwidth-oblivious desktop grid does).
	random := rng.Perm(numHosts)[:numWorkers]
	fmt.Printf("random scheduler:  hosts %v\n", random)

	mkCluster := makespan(sys, res.Members)
	mkRandom := makespan(sys, random)
	fmt.Printf("\nall-to-all exchange of %d MB per worker pair:\n", dataMB)
	fmt.Printf("  cluster scheduler makespan: %8.1f s (slowest link %.1f Mbps)\n",
		mkCluster, slowest(sys, res.Members))
	fmt.Printf("  random  scheduler makespan: %8.1f s (slowest link %.1f Mbps)\n",
		mkRandom, slowest(sys, random))
	fmt.Printf("  speedup: %.1fx\n", mkRandom/mkCluster)
	return nil
}

// makespan models the job set's communication phase: all worker pairs
// exchange dataMB concurrently, so the phase ends when the slowest pair
// finishes.
func makespan(sys *bwcluster.System, workers []int) float64 {
	worstSeconds := 0.0
	for i := 0; i < len(workers); i++ {
		for j := i + 1; j < len(workers); j++ {
			mbps, err := sys.MeasuredBandwidth(workers[i], workers[j])
			if err != nil || mbps <= 0 {
				continue
			}
			seconds := dataMB * 8 / mbps
			if seconds > worstSeconds {
				worstSeconds = seconds
			}
		}
	}
	return worstSeconds
}

func slowest(sys *bwcluster.System, workers []int) float64 {
	worst := math.Inf(1)
	for i := 0; i < len(workers); i++ {
		for j := i + 1; j < len(workers); j++ {
			if v, err := sys.MeasuredBandwidth(workers[i], workers[j]); err == nil && v < worst {
				worst = v
			}
		}
	}
	return worst
}

// syntheticGrid models a desktop grid: most participants sit behind
// ordinary broadband, some campuses contribute well-connected pools.
func syntheticGrid(rng *rand.Rand) [][]float64 {
	access := make([]float64, numHosts)
	campus := make([]int, numHosts)
	for i := range access {
		switch {
		case rng.Float64() < 0.25: // campus machine
			access[i] = 100 + 400*rng.Float64()
			campus[i] = 1 + rng.Intn(3)
		default: // home broadband
			access[i] = 5 + 45*rng.Float64()
		}
	}
	bw := make([][]float64, numHosts)
	for i := range bw {
		bw[i] = make([]float64, numHosts)
	}
	for i := 0; i < numHosts; i++ {
		for j := i + 1; j < numHosts; j++ {
			v := math.Min(access[i], access[j])
			if campus[i] != 0 && campus[i] == campus[j] {
				// Same campus LAN: not bottlenecked by the uplink.
				v = 400 + 400*rng.Float64()
			}
			v *= 0.9 + 0.2*rng.Float64()
			bw[i][j], bw[j][i] = v, v
		}
	}
	return bw
}
