package bwcluster

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden snapshot file")

// TestGoldenSystemSnapshot pins the full wireVersion-2 System snapshot
// bit for bit. The golden was generated before the flat-arena refactor of
// internal/predtree; the arena build must keep producing the identical
// snapshot, because snapshots are diffed and content-addressed by the
// figure pipeline (DESIGN.md §8d) and replicated between serving shards.
func TestGoldenSystemSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "golden_system_v2.gob")
	raw := sampleBandwidth(t, 30, 11)
	sys, err := New(raw, WithSeed(3), WithNCut(8))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update-golden): %v", path, err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("system snapshot diverged from golden (%d vs %d bytes)", len(blob), len(want))
	}
	// The golden must load and re-save to the identical bytes.
	restored, err := LoadBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("save after load changed the snapshot bytes")
	}
}
