package bwcluster

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bwcluster/internal/cluster"
	"bwcluster/internal/metric"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden snapshot file")

// TestGoldenSystemSnapshot pins the full wireVersion-2 System snapshot
// bit for bit, because snapshots are diffed and content-addressed by the
// figure pipeline (DESIGN.md §8d) and replicated between serving shards.
// The golden was last regenerated when systemWire gained the Epoch
// field; any deliberate format change regenerates it with -update-golden
// and must keep wireVersion-2 decode compatibility (new fields only,
// with zero values meaning what old snapshots meant).
func TestGoldenSystemSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "golden_system_v2.gob")
	raw := sampleBandwidth(t, 30, 11)
	sys, err := New(raw, WithSeed(3), WithNCut(8))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update-golden): %v", path, err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("system snapshot diverged from golden (%d vs %d bytes)", len(blob), len(want))
	}
	// The golden must load and re-save to the identical bytes.
	restored, err := LoadBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("save after load changed the snapshot bytes")
	}
}

// TestGoldenChurnedSystemSnapshot pins the post-churn snapshot bit for
// bit: the same membership history (build, evict ~25% of the hosts,
// re-admit half of them through the incremental insertion path) must
// keep producing the identical wire bytes — Remove's arena free-list and
// the encoder's hole compaction may not leak churn history onto the
// wire. The reloaded system must answer FindCluster identically to an
// index derived directly from the churned forest.
func TestGoldenChurnedSystemSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "golden_system_churned_v2.gob")
	raw := sampleBandwidth(t, 30, 11)
	sys, err := New(raw, WithSeed(3), WithNCut(8))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := metric.DistanceFromBandwidth(sys.bw, sys.c)
	if err != nil {
		t.Fatal(err)
	}
	// Churn the forest underneath the system. The derived query state
	// (pred, treeIdx, net) goes stale, but Save reads only the
	// measurements, the knobs and the forest — Load recomputes the rest.
	removed := []int{2, 5, 9, 13, 17, 21, 25, 29}
	for _, h := range removed {
		if err := sys.forest.Remove(h); err != nil {
			t.Fatalf("remove %d: %v", h, err)
		}
	}
	for _, h := range []int{5, 13, 21, 29} {
		if err := sys.forest.Add(h, dist); err != nil {
			t.Fatalf("re-add %d: %v", h, err)
		}
	}
	blob, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update-golden): %v", path, err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("churned snapshot diverged from golden (%d vs %d bytes)", len(blob), len(want))
	}
	restored, err := LoadBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("save after load changed the churned snapshot bytes")
	}

	// FindCluster equality: answers from the reloaded system must match
	// an index derived directly from the churned in-memory forest.
	dm, hosts := sys.forest.DistMatrix()
	pred := metric.NewMatrix(sys.bw.N())
	for i := 0; i < sys.bw.N(); i++ {
		for j := i + 1; j < sys.bw.N(); j++ {
			pred.Set(i, j, math.Inf(1)) // departed hosts are unreachable
		}
	}
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			pred.Set(hosts[i], hosts[j], dm.Dist(i, j))
		}
	}
	ix, err := cluster.NewIndexAt(pred, sys.forest.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		k int
		b float64
	}{{3, 20}, {4, 10}, {6, 5}, {12, 80}} {
		l, err := metric.DistanceForBandwidthConstraint(tc.b, sys.c)
		if err != nil {
			t.Fatal(err)
		}
		wantMembers, err := ix.FindAt(sys.forest.Epoch(), tc.k, l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.FindCluster(tc.k, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantMembers) {
			t.Errorf("FindCluster(%d, %g) = %v after reload, want %v", tc.k, tc.b, got, wantMembers)
		}
	}
	// No answer may name a departed host.
	got, err := restored.FindCluster(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		switch m {
		case 2, 9, 17, 25: // evicted and never re-admitted
			t.Errorf("FindCluster returned departed host %d", m)
		}
	}
}
