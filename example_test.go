package bwcluster_test

import (
	"fmt"
	"log"

	"bwcluster"
)

// fourHosts is a tiny deterministic bandwidth matrix: hosts 0-2 share a
// fast network segment; host 3 sits behind a slow uplink.
func fourHosts() [][]float64 {
	return [][]float64{
		{0, 90, 85, 12},
		{90, 0, 95, 11},
		{85, 95, 0, 10},
		{12, 11, 10, 0},
	}
}

// Build a system and run a centralized bandwidth-constrained query.
func ExampleSystem_FindCluster() {
	sys, err := bwcluster.New(fourHosts(), bwcluster.WithBandwidthClasses([]float64{10, 50}))
	if err != nil {
		log.Fatal(err)
	}
	members, err := sys.FindCluster(3, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(members)
	// Output: [0 1 2]
}

// Submit the same query through the decentralized protocol.
func ExampleSystem_Query() {
	sys, err := bwcluster.New(fourHosts(), bwcluster.WithBandwidthClasses([]float64{10, 50}))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query(3, 3, 50) // submitted at the slow host
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Found(), res.Members)
	// Output: true [0 1 2]
}

// Find the host best connected to an existing working set.
func ExampleSystem_FindNodeForSet() {
	sys, err := bwcluster.New(fourHosts(), bwcluster.WithBandwidthClasses([]float64{10, 50}))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.FindNodeForSet([]int{0, 1}, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Node)
	// Output: 2
}

// Ask for the best-possible cluster of a given size.
func ExampleSystem_TightestCluster() {
	sys, err := bwcluster.New(fourHosts(), bwcluster.WithBandwidthClasses([]float64{10, 50}))
	if err != nil {
		log.Fatal(err)
	}
	members, _, err := sys.TightestCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(members)
	// Output: [1 2]
}

// Latency-constrained clustering uses the same machinery with millisecond
// bounds.
func ExampleNewLatency() {
	latency := [][]float64{
		{0, 5, 6, 80},
		{5, 0, 4, 82},
		{6, 4, 0, 85},
		{80, 82, 85, 0},
	}
	sys, err := bwcluster.NewLatency(latency, bwcluster.WithLatencyClasses([]float64{10, 100}))
	if err != nil {
		log.Fatal(err)
	}
	members, err := sys.FindCluster(3, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(members)
	// Output: [0 1 2]
}
