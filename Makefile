# Reproduction targets for the paper's evaluation. `make figures` writes
# every data series into results/; expect a few minutes at full scale.

GO ?= go

.PHONY: all build test race bench figures ablations clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

figures: build
	mkdir -p results
	$(GO) run ./cmd/bwc-sim -fig 3 -dataset hp  > results/fig3_hp.txt
	$(GO) run ./cmd/bwc-sim -fig 3 -dataset umd > results/fig3_umd.txt
	$(GO) run ./cmd/bwc-sim -fig 4 -dataset hp  -scale 0.5 > results/fig4_hp.txt
	$(GO) run ./cmd/bwc-sim -fig 4 -dataset umd -scale 0.3 > results/fig4_umd.txt
	$(GO) run ./cmd/bwc-sim -fig 5 -dataset hp  > results/fig5_hp.txt
	$(GO) run ./cmd/bwc-sim -fig 5 -dataset umd > results/fig5_umd.txt
	$(GO) run ./cmd/bwc-sim -fig 6 -scale 0.4   > results/fig6.txt

ablations: build
	mkdir -p results
	$(GO) run ./cmd/bwc-sim -ablation ncut -scale 0.3      > results/ablation_ncut.txt
	$(GO) run ./cmd/bwc-sim -ablation trees -scale 0.3     > results/ablation_trees.txt
	$(GO) run ./cmd/bwc-sim -ablation drift                > results/ablation_drift.txt
	$(GO) run ./cmd/bwc-sim -ablation construction         > results/ablation_construction.txt

clean:
	rm -rf results
