# Reproduction targets for the paper's evaluation. `make figures` writes
# every data series into results/; expect a few minutes at full scale.
# `make ci` runs the same gate as .github/workflows/ci.yml.

GO ?= go
# Worker count for the simulation fan-out (bwc-sim -parallel).
# 0 = one worker per CPU; 1 = sequential. Never changes results.
PARALLEL ?= 0

.PHONY: all build fmt lint test race bench bench-smoke bench-json ci fault-matrix faults trace figures ablations clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Repo-specific invariants (determinism, lock discipline, telemetry and
# API hygiene) enforced by the stdlib-only analyzer; see DESIGN.md §8d.
# Formatting rides along so `make lint` is the complete style gate.
lint: fmt
	$(GO) run ./cmd/bwc-vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable benchmark report (one iteration per bench so it is
# cheap enough for CI; use BENCHTIME=1s locally for stable numbers).
BENCHTIME ?= 1x
bench-json:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -benchmem ./... | $(GO) run ./cmd/bwc-benchjson > BENCH_results.json

# Fault-matrix gate: convergence under seeded drop/partition schedules
# and the TCP loopback split, under the race detector. `make race`
# already covers these; CI runs them as their own job so a transport
# regression is named in the job list, and this target mirrors that job.
fault-matrix:
	$(GO) test -race -count=1 -run 'TestFault|TestPartition|TestTCP|TestChan' ./internal/transport/ ./internal/runtime/

# The full CI gate, in the workflow's order: lint (gofmt + bwc-vet)
# first, then build+vet, tests, the race detector, the fault matrix, and
# one iteration of every bench.
ci: lint build test race fault-matrix bench-smoke

results:
	mkdir -p results

figures: build | results
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -fig 3 -dataset hp  > results/fig3_hp.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -fig 3 -dataset umd > results/fig3_umd.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -fig 4 -dataset hp  -scale 0.5 > results/fig4_hp.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -fig 4 -dataset umd -scale 0.3 > results/fig4_umd.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -fig 5 -dataset hp  > results/fig5_hp.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -fig 5 -dataset umd > results/fig5_umd.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -fig 6 -scale 0.4   > results/fig6.txt

# Fault-tolerance series: convergence time and settled query agreement
# vs gossip loss rate and partition length (EXPERIMENTS.md).
faults: build | results
	$(GO) run ./cmd/bwc-sim -series faults > results/fault_series.txt

# Traced-query series: hop counts, trace completeness/gap rate and
# gossip-age watermarks vs injected loss, with the flight-recorder ring
# dumped alongside (EXPERIMENTS.md).
trace: build | results
	$(GO) run ./cmd/bwc-sim -series trace -flight-dump results/trace_flight.txt > results/trace_series.txt

ablations: build | results
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -ablation ncut -scale 0.3      > results/ablation_ncut.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -ablation trees -scale 0.3     > results/ablation_trees.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -ablation drift                > results/ablation_drift.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -ablation construction         > results/ablation_construction.txt
	$(GO) run ./cmd/bwc-sim -parallel $(PARALLEL) -ablation sword                > results/ablation_sword.txt

clean:
	rm -rf results
