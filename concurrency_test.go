package bwcluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestSystemConcurrentUse exercises the documented concurrency guarantee:
// N goroutines mix decentralized queries, centralized queries, bandwidth
// predictions and stats reads against one shared System. Run under the
// race detector (the CI race job does) this validates that query paths
// perform no unsynchronized writes; in any mode it validates that answers
// under contention match the single-threaded answers.
func TestSystemConcurrentUse(t *testing.T) {
	bw := sampleBandwidth(t, 48, 7)
	sys, err := New(bw, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	// Single-threaded reference answers.
	type cq struct {
		k int
		b float64
	}
	centralQs := []cq{{3, 20}, {5, 35}, {8, 50}, {4, 55}}
	wantCentral := make(map[cq][]int)
	for _, q := range centralQs {
		members, err := sys.FindCluster(q.k, q.b)
		if err != nil {
			t.Fatal(err)
		}
		wantCentral[q] = members
	}
	wantStats := sys.Stats()
	refPred := make([]float64, sys.Len())
	for v := 1; v < sys.Len(); v++ {
		p, err := sys.PredictBandwidth(0, v)
		if err != nil {
			t.Fatal(err)
		}
		refPred[v] = p
	}
	wantQuery := make(map[cq]QueryResult)
	for _, q := range centralQs {
		res, err := sys.Query(q.k%sys.Len(), q.k, q.b)
		if err != nil {
			t.Fatal(err)
		}
		wantQuery[q] = res
	}

	const goroutines = 24
	const iters = 40
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				q := centralQs[(g+i)%len(centralQs)]
				switch (g + i) % 4 {
				case 0: // centralized query
					members, err := sys.FindCluster(q.k, q.b)
					if err != nil {
						fail(err)
						return
					}
					if !reflect.DeepEqual(members, wantCentral[q]) {
						fail(fmt.Errorf("FindCluster(%d,%v) = %v under contention, want %v",
							q.k, q.b, members, wantCentral[q]))
						return
					}
				case 1: // decentralized query
					res, err := sys.Query(q.k%sys.Len(), q.k, q.b)
					if err != nil {
						fail(err)
						return
					}
					if !reflect.DeepEqual(res, wantQuery[q]) {
						fail(fmt.Errorf("Query(%d,%v) = %+v under contention, want %+v",
							q.k, q.b, res, wantQuery[q]))
						return
					}
				case 2: // prediction reads
					v := 1 + rng.Intn(sys.Len()-1)
					p, err := sys.PredictBandwidth(0, v)
					if err != nil {
						fail(err)
						return
					}
					if p != refPred[v] {
						fail(fmt.Errorf("PredictBandwidth(0,%d) = %v under contention, want %v",
							v, p, refPred[v]))
						return
					}
				case 3: // stats + overlay reads
					if st := sys.Stats(); st != wantStats {
						fail(fmt.Errorf("Stats() = %+v under contention, want %+v", st, wantStats))
						return
					}
					if _, _, err := sys.RoutingTable(rng.Intn(sys.Len())); err != nil {
						fail(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestWithParallelismOption checks the option's validation and that every
// parallelism level builds an identical system (same predictions, same
// query answers) for a fixed seed.
func TestWithParallelismOption(t *testing.T) {
	if _, err := New(sampleBandwidth(t, 8, 1), WithParallelism(0)); err == nil {
		t.Error("parallelism 0 should fail")
	}
	if _, err := New(sampleBandwidth(t, 8, 1), WithParallelism(-2)); err == nil {
		t.Error("negative parallelism should fail")
	}

	bw := sampleBandwidth(t, 32, 9)
	base, err := New(bw, WithSeed(5), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	baseCluster, err := base.FindCluster(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		sys, err := New(bw, WithSeed(5), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Parallelism(); got != par {
			t.Fatalf("Parallelism() = %d, want %d", got, par)
		}
		for u := 0; u < 6; u++ {
			for v := u + 1; v < 6; v++ {
				a, err := base.PredictBandwidth(u, v)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sys.PredictBandwidth(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("parallelism %d: prediction (%d,%d) %v, sequential %v", par, u, v, b, a)
				}
			}
		}
		members, err := sys.FindCluster(4, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(members, baseCluster) {
			t.Fatalf("parallelism %d: FindCluster %v, sequential %v", par, members, baseCluster)
		}
	}
}
