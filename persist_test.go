package bwcluster

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	raw := sampleBandwidth(t, 30, 11)
	orig, err := New(raw, WithSeed(3), WithNCut(8))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() || restored.Constant() != orig.Constant() {
		t.Fatalf("shape mismatch: %d/%v vs %d/%v",
			restored.Len(), restored.Constant(), orig.Len(), orig.Constant())
	}
	// Predictions identical.
	for u := 0; u < orig.Len(); u++ {
		for v := u + 1; v < orig.Len(); v++ {
			a, err := orig.PredictBandwidth(u, v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.PredictBandwidth(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("prediction mismatch at (%d,%d): %v vs %v", u, v, a, b)
			}
			ma, _ := orig.MeasuredBandwidth(u, v)
			mb, _ := restored.MeasuredBandwidth(u, v)
			if ma != mb {
				t.Fatalf("measurement mismatch at (%d,%d)", u, v)
			}
		}
	}
	// Queries identical (both engines are deterministic).
	classes := orig.Classes()
	for start := 0; start < orig.Len(); start += 7 {
		a, err := orig.Query(start, 4, classes[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Query(start, 4, classes[0])
		if err != nil {
			t.Fatal(err)
		}
		if a.Found() != b.Found() || a.Hops != b.Hops || len(a.Members) != len(b.Members) {
			t.Fatalf("query mismatch from %d: %+v vs %+v", start, a, b)
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				t.Fatalf("members mismatch from %d: %v vs %v", start, a.Members, b.Members)
			}
		}
	}
	// Labels survive.
	la, err := orig.DistanceLabel(5)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := restored.DistanceLabel(5)
	if err != nil {
		t.Fatal(err)
	}
	if la != lb {
		t.Fatalf("label mismatch: %q vs %q", la, lb)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadBytes([]byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := LoadBytes(nil); err == nil {
		t.Error("empty input should fail")
	}
	// A truncated snapshot must fail cleanly.
	sys, err := New(sampleBandwidth(t, 10, 12))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBytes(blob[:len(blob)/2]); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

func TestSaveToFailingWriter(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 8, 13))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(failWriter{}); err == nil {
		t.Error("failing writer should error")
	}
	// Sanity: saving to a buffer works.
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty snapshot")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }
