package bwcluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	raw := sampleBandwidth(t, 30, 11)
	orig, err := New(raw, WithSeed(3), WithNCut(8))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() || restored.Constant() != orig.Constant() {
		t.Fatalf("shape mismatch: %d/%v vs %d/%v",
			restored.Len(), restored.Constant(), orig.Len(), orig.Constant())
	}
	// The membership epoch survives the round trip: the serving tier
	// keys shard assignment and cache invalidation by it, so a replica
	// restored from a snapshot must agree with the builder.
	if restored.Epoch() != orig.Epoch() || orig.Epoch() == 0 {
		t.Fatalf("epoch mismatch: restored %d, orig %d", restored.Epoch(), orig.Epoch())
	}
	// Predictions identical.
	for u := 0; u < orig.Len(); u++ {
		for v := u + 1; v < orig.Len(); v++ {
			a, err := orig.PredictBandwidth(u, v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.PredictBandwidth(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("prediction mismatch at (%d,%d): %v vs %v", u, v, a, b)
			}
			ma, _ := orig.MeasuredBandwidth(u, v)
			mb, _ := restored.MeasuredBandwidth(u, v)
			if ma != mb {
				t.Fatalf("measurement mismatch at (%d,%d)", u, v)
			}
		}
	}
	// Queries identical (both engines are deterministic).
	classes := orig.Classes()
	for start := 0; start < orig.Len(); start += 7 {
		a, err := orig.Query(start, 4, classes[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Query(start, 4, classes[0])
		if err != nil {
			t.Fatal(err)
		}
		if a.Found() != b.Found() || a.Hops != b.Hops || len(a.Members) != len(b.Members) {
			t.Fatalf("query mismatch from %d: %+v vs %+v", start, a, b)
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				t.Fatalf("members mismatch from %d: %v vs %v", start, a.Members, b.Members)
			}
		}
	}
	// Labels survive.
	la, err := orig.DistanceLabel(5)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := restored.DistanceLabel(5)
	if err != nil {
		t.Fatal(err)
	}
	if la != lb {
		t.Fatalf("label mismatch: %q vs %q", la, lb)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadBytes([]byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := LoadBytes(nil); err == nil {
		t.Error("empty input should fail")
	}
	// A truncated snapshot must fail cleanly.
	sys, err := New(sampleBandwidth(t, 10, 12))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBytes(blob[:len(blob)/2]); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

// TestLoadWireVersionTyped: a snapshot from another wire version fails
// with ErrWireVersion under errors.Is — the contract the fleet replica
// catch-up path relies on to tell version skew from corruption — while
// corruption keeps failing with a plain (non-ErrWireVersion) error.
func TestLoadWireVersionTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(systemWire{Version: wireVersion + 1}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadBytes(buf.Bytes())
	if err == nil {
		t.Fatal("version-skewed snapshot should fail")
	}
	if !errors.Is(err, ErrWireVersion) {
		t.Errorf("version skew error %v is not errors.Is(ErrWireVersion)", err)
	}
	if _, err := LoadBytes([]byte("garbage")); errors.Is(err, ErrWireVersion) {
		t.Errorf("corruption error %v must not report as a wire-version mismatch", err)
	}
}

func TestSaveToFailingWriter(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 8, 13))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(failWriter{}); err == nil {
		t.Error("failing writer should error")
	}
	// Sanity: saving to a buffer works.
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty snapshot")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }
