package bwcluster

// The benchmark harness regenerates every figure of the paper's
// evaluation (Figures 3-6; the paper has no numbered tables) at a reduced
// scale per iteration, plus micro-benchmarks for the hot algorithmic
// paths and ablation benchmarks for the design choices called out in
// DESIGN.md. Full paper-scale series come from `go run ./cmd/bwc-sim
// -fig N`.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bwcluster/internal/cluster"
	"bwcluster/internal/dataset"
	"bwcluster/internal/kdiam"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/sim"
	"bwcluster/internal/vivaldi"
)

// --- Figure benchmarks -------------------------------------------------

// BenchmarkFig3Accuracy regenerates the clustering-accuracy experiment
// (WPR vs b for TREE-CENTRAL / TREE-DECENTRAL / EUCL-CENTRAL plus the
// prediction-error CDFs) on the HP-like dataset.
func BenchmarkFig3Accuracy(b *testing.B) {
	cfg := sim.DefaultAccuracyConfig(sim.HP).Scaled(0.05)
	for i := 0; i < b.N; i++ {
		res, err := sim.RunAccuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.WPR[sim.TreeCentral], "WPR-tree@bmax")
		b.ReportMetric(last.WPR[sim.EuclCentral], "WPR-eucl@bmax")
	}
}

// BenchmarkFig4Tradeoff regenerates the decentralization-tradeoff
// experiment (RR vs k, centralized vs decentralized).
func BenchmarkFig4Tradeoff(b *testing.B) {
	cfg := sim.DefaultTradeoffConfig(sim.HP).Scaled(0.03)
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTradeoff(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.RR[sim.TreeCentral]-last.RR[sim.TreeDecentral], "RRgap@kmax")
	}
}

// BenchmarkFig5Treeness regenerates the effect-of-treeness experiment
// (WPR vs f_b for datasets of decreasing treeness, raw and normalized).
func BenchmarkFig5Treeness(b *testing.B) {
	cfg := sim.DefaultTreenessConfig(sim.HP).Scaled(0.2)
	cfg.Noises = []float64{0.05, 0.3, 0.6}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTreeness(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[len(res.Series)-1].EpsAvg, "eps-worst")
	}
}

// BenchmarkFig6Scalability regenerates the routing-hops-vs-system-size
// experiment.
func BenchmarkFig6Scalability(b *testing.B) {
	cfg := sim.DefaultScalabilityConfig().Scaled(0.05)
	cfg.NValues = []int{50, 150, 250}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunScalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].AvgHops, "hops@nmax")
	}
}

// --- Micro-benchmarks ---------------------------------------------------

func benchBandwidth(b *testing.B, n int) *metric.Matrix {
	b.Helper()
	bw, err := dataset.Generate(dataset.HPConfig().WithN(n), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return bw
}

func benchDistance(b *testing.B, n int) *metric.Matrix {
	b.Helper()
	d, err := metric.DistanceFromBandwidth(benchBandwidth(b, n), metric.DefaultC)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkAlgorithm1 measures one FindCluster call (the paper's O(n^3)
// centralized algorithm) on a 190-node space.
func BenchmarkAlgorithm1(b *testing.B) {
	d := benchDistance(b, 190)
	l := metric.DefaultC / 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.FindCluster(d, 10, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterIndexBuild measures the O(n^3) index precomputation.
func BenchmarkClusterIndexBuild(b *testing.B) {
	d := benchDistance(b, 190)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.NewIndex(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterIndexQuery measures an indexed (k, l) query.
func BenchmarkClusterIndexQuery(b *testing.B) {
	d := benchDistance(b, 190)
	ix, err := cluster.NewIndex(d)
	if err != nil {
		b.Fatal(err)
	}
	l := metric.DefaultC / 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Find(10, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredTreeBuild measures framework construction per search mode.
func BenchmarkPredTreeBuild(b *testing.B) {
	d := benchDistance(b, 190)
	for _, tc := range []struct {
		name string
		mode predtree.SearchMode
	}{
		{name: "full", mode: predtree.SearchFull},
		{name: "anchor", mode: predtree.SearchAnchor},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := predtree.Build(d, metric.DefaultC, tc.mode, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(t.Measurements()), "measurements")
			}
		})
	}
}

// BenchmarkLabelDist measures label-based distance computation, the
// operation every peer performs constantly.
func BenchmarkLabelDist(b *testing.B) {
	d := benchDistance(b, 190)
	t, err := predtree.Build(d, metric.DefaultC, predtree.SearchAnchor, nil)
	if err != nil {
		b.Fatal(err)
	}
	la, err := t.Label(10)
	if err != nil {
		b.Fatal(err)
	}
	lb, err := t.Label(150)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predtree.LabelDist(la, lb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVivaldiEmbed measures the Euclidean baseline's embedding.
func BenchmarkVivaldiEmbed(b *testing.B) {
	d := benchDistance(b, 190)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vivaldi.Embed(d, vivaldi.DefaultConfig(), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKDiameter measures the Euclidean comparison clustering.
func BenchmarkKDiameter(b *testing.B) {
	d := benchDistance(b, 190)
	rng := rand.New(rand.NewSource(3))
	emb, err := vivaldi.Embed(d, vivaldi.DefaultConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]kdiam.Point, emb.N())
	for i := range pts {
		c := emb.Coord(i)
		pts[i] = kdiam.Point{X: c.X, Y: c.Y}
	}
	ix := kdiam.NewIndex(pts)
	l := metric.DefaultC / 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Find(10, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlayConverge measures bringing the gossip protocol to its
// fixed point on a fresh 190-peer network.
func BenchmarkOverlayConverge(b *testing.B) {
	d := benchDistance(b, 190)
	classes, err := overlay.ClassesFromBandwidths([]float64{15, 25, 35, 45, 55, 65, 75}, metric.DefaultC)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tree, err := predtree.Build(d, metric.DefaultC, predtree.SearchAnchor, rng.Perm(d.N()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := overlay.NewNetwork(tree, overlay.Config{NCut: overlay.DefaultNCut, Classes: classes})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Converge(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecentralQuery measures one routed query on a converged
// network.
func BenchmarkDecentralQuery(b *testing.B) {
	d := benchDistance(b, 190)
	classes, err := overlay.ClassesFromBandwidths([]float64{15, 25, 35, 45, 55, 65, 75}, metric.DefaultC)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tree, err := predtree.Build(d, metric.DefaultC, predtree.SearchAnchor, rng.Perm(d.N()))
	if err != nil {
		b.Fatal(err)
	}
	nw, err := overlay.NewNetwork(tree, overlay.Config{NCut: overlay.DefaultNCut, Classes: classes})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		b.Fatal(err)
	}
	hosts := nw.Hosts()
	l := metric.DefaultC / 35
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Query(hosts[i%len(hosts)], 10, l); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks -----------------------------------------------

// BenchmarkAblationNCut sweeps the n_cut cutoff: larger values raise the
// decentralized return rate for hard queries (reported as the RR metric)
// at higher convergence cost (the timed portion).
func BenchmarkAblationNCut(b *testing.B) {
	d := benchDistance(b, 120)
	classes, err := overlay.ClassesFromBandwidths([]float64{15, 30, 45, 60}, metric.DefaultC)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := predtree.Build(d, metric.DefaultC, predtree.SearchAnchor,
		rand.New(rand.NewSource(6)).Perm(d.N()))
	if err != nil {
		b.Fatal(err)
	}
	for _, nCut := range []int{2, 5, 10, 20, 40} {
		b.Run(benchName("ncut", nCut), func(b *testing.B) {
			rr := 0.0
			for i := 0; i < b.N; i++ {
				nw, err := overlay.NewNetwork(tree, overlay.Config{NCut: nCut, Classes: classes})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nw.Converge(0); err != nil {
					b.Fatal(err)
				}
				found := 0
				hosts := nw.Hosts()
				const hardK = 30
				for _, start := range hosts[:20] {
					res, err := nw.Query(start, hardK, metric.DefaultC/15)
					if err != nil {
						b.Fatal(err)
					}
					if res.Found() {
						found++
					}
				}
				rr = float64(found) / 20
			}
			b.ReportMetric(rr, "RR@k30")
		})
	}
}

// BenchmarkAblationClassCount sweeps the number of bandwidth classes: the
// CRT grows linearly with it, trading routing-table size for query
// granularity.
func BenchmarkAblationClassCount(b *testing.B) {
	d := benchDistance(b, 120)
	tree, err := predtree.Build(d, metric.DefaultC, predtree.SearchAnchor,
		rand.New(rand.NewSource(7)).Perm(d.N()))
	if err != nil {
		b.Fatal(err)
	}
	for _, count := range []int{2, 4, 8, 16} {
		bws := make([]float64, count)
		for i := range bws {
			bws[i] = 15 + float64(i)*60/float64(count)
		}
		classes, err := overlay.ClassesFromBandwidths(bws, metric.DefaultC)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("classes", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nw, err := overlay.NewNetwork(tree, overlay.Config{NCut: overlay.DefaultNCut, Classes: classes})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nw.Converge(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationForestSize sweeps the prediction-forest size: more
// trees cost proportionally more to build but cut the bandwidth
// prediction error (reported as the median relative error metric).
func BenchmarkAblationForestSize(b *testing.B) {
	bw := benchBandwidth(b, 120)
	d, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
	if err != nil {
		b.Fatal(err)
	}
	for _, trees := range []int{1, 3, 5} {
		b.Run(benchName("trees", trees), func(b *testing.B) {
			med := 0.0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(8))
				forest, err := predtree.BuildForest(d, metric.DefaultC, predtree.SearchAnchor, trees, rng)
				if err != nil {
					b.Fatal(err)
				}
				errsList := sim.RelativeErrors(bw, forest.PredictBandwidth)
				med = medianOf(errsList)
			}
			b.ReportMetric(med, "median-relerr")
		})
	}
}

// BenchmarkAblationVivaldiHeight compares the plain 2-d Euclidean
// baseline against Vivaldi's height-vector variant on the HP-like data:
// heights absorb part of the access-link structure, but the embedding
// stays behind the tree metric (reported as median relative error).
func BenchmarkAblationVivaldiHeight(b *testing.B) {
	bw := benchBandwidth(b, 120)
	d, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
	if err != nil {
		b.Fatal(err)
	}
	for _, height := range []bool{false, true} {
		name := "plain"
		if height {
			name = "height"
		}
		b.Run(name, func(b *testing.B) {
			med := 0.0
			for i := 0; i < b.N; i++ {
				cfg := vivaldi.DefaultConfig()
				cfg.Height = height
				emb, err := vivaldi.Embed(d, cfg, rand.New(rand.NewSource(9)))
				if err != nil {
					b.Fatal(err)
				}
				errsList := sim.RelativeErrors(bw, func(u, v int) float64 {
					dd := emb.Dist(u, v)
					if dd <= 0 {
						return bw.At(u, v)
					}
					return metric.DefaultC / dd
				})
				med = medianOf(errsList)
			}
			b.ReportMetric(med, "median-relerr")
		})
	}
}

// BenchmarkAblationMaxClusterSize compares the direct O(n^3) max-size
// scan against the paper's binary-search-over-FindCluster strategy.
func BenchmarkAblationMaxClusterSize(b *testing.B) {
	d := benchDistance(b, 120)
	l := metric.DefaultC / 30
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.MaxClusterSize(d, l)
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.MaxClusterSizeBinary(d, l); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s-%02d", prefix, v)
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
