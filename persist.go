package bwcluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"bwcluster/internal/cluster"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
)

// systemWire is the persisted form of a System: the measurements, the
// knobs, and the built prediction forest. Derived state (predicted
// distance matrix, cluster index, overlay routing tables) is recomputed
// deterministically on load — it is cheaper to rebuild than the forest,
// whose construction consumed the measurements.
type systemWire struct {
	Version int
	C       float64
	NCut    int
	Classes []float64
	BW      *metric.Matrix
	Forest  *predtree.Forest
	// Workers is the system's worker-pool bound. Snapshots from releases
	// without the field decode as 0, which Load treats as the default
	// (one worker per CPU).
	Workers int
	// Epoch is the forest's membership epoch at snapshot time. The tree
	// wire format does not carry the counter, so it rides here and Load
	// re-seats it — a replica restored from a builder's snapshot must
	// agree with the builder on the epoch, because the serving tier keys
	// its shard assignment and query cache by it. Snapshots from releases
	// without the field decode as 0, the epoch a decoded forest would
	// have started at anyway.
	Epoch uint64
}

// wireVersion guards against loading snapshots from incompatible
// releases. Version 2 changed the prediction-tree wire format to
// key-sorted entry slices so identical systems snapshot to identical
// bytes (the determinism invariant, DESIGN.md §8d).
const wireVersion = 2

// ErrWireVersion reports a snapshot whose wire version does not match
// this build's. Load wraps it with both versions, so errors.Is lets
// callers — the fleet replica catch-up path in particular — distinguish
// version skew (retry against an upgraded builder, or refuse to serve)
// from a corrupt or truncated snapshot (which decodes to a plain gob
// error and must never be retried as-is).
var ErrWireVersion = errors.New("bwcluster: snapshot wire version mismatch")

// Save writes the system to w in a compact binary format. Load restores
// it without re-running any bandwidth measurements.
func (s *System) Save(w io.Writer) error {
	snap := systemWire{
		Version: wireVersion,
		C:       s.c,
		NCut:    s.nCut,
		Classes: s.classes,
		BW:      s.bw,
		Forest:  s.forest,
		Workers: s.workers,
		Epoch:   s.forest.Epoch(),
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("bwcluster: save system: %w", err)
	}
	return nil
}

// SaveBytes is a convenience wrapper around Save.
func (s *System) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load restores a System previously written by Save, rebuilding the
// derived query structures (prediction matrix, cluster index, overlay
// routing tables) from the persisted forest.
func Load(r io.Reader) (*System, error) {
	var snap systemWire
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("bwcluster: load system: %w", err)
	}
	if snap.Version != wireVersion {
		return nil, fmt.Errorf("bwcluster: load system: %w: snapshot version %d, want %d",
			ErrWireVersion, snap.Version, wireVersion)
	}
	if snap.BW == nil || snap.Forest == nil {
		return nil, fmt.Errorf("bwcluster: load system: incomplete snapshot")
	}
	if snap.C <= 0 || snap.NCut < 1 || len(snap.Classes) == 0 {
		return nil, fmt.Errorf("bwcluster: load system: invalid parameters")
	}
	workers := cluster.Workers(snap.Workers, 0)
	snap.Forest.SetEpoch(snap.Epoch)
	dm, hosts := snap.Forest.DistMatrix()
	pred := metric.NewMatrix(snap.BW.N())
	// A churned snapshot's forest may hold fewer hosts than the
	// measurement matrix. Departed hosts are unreachable, not at the
	// zero distance an unset matrix entry would report — otherwise every
	// cluster query would claim them.
	present := make([]bool, snap.BW.N())
	for _, h := range hosts {
		present[h] = true
	}
	for i := 0; i < snap.BW.N(); i++ {
		for j := i + 1; j < snap.BW.N(); j++ {
			if !present[i] || !present[j] {
				pred.Set(i, j, math.Inf(1))
			}
		}
	}
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			pred.Set(hosts[i], hosts[j], dm.Dist(i, j))
		}
	}
	treeIdx, err := cluster.NewIndexParallelAt(pred, workers, snap.Forest.Epoch())
	if err != nil {
		return nil, fmt.Errorf("bwcluster: load system: %w", err)
	}
	distClasses, err := overlay.ClassesFromBandwidths(snap.Classes, snap.C)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: load system: %w", err)
	}
	ovCfg := overlay.Config{NCut: snap.NCut, Classes: distClasses}
	net, err := overlay.NewNetwork(snap.Forest, ovCfg)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: load system: %w", err)
	}
	if _, err := net.Converge(0); err != nil {
		return nil, fmt.Errorf("bwcluster: load system: %w", err)
	}
	return &System{
		c: snap.C, nCut: snap.NCut, workers: workers, bw: snap.BW,
		forest: snap.Forest, pred: pred, treeIdx: treeIdx, net: net,
		ovCfg: ovCfg, classes: snap.Classes,
	}, nil
}

// LoadBytes is a convenience wrapper around Load.
func LoadBytes(b []byte) (*System, error) {
	return Load(bytes.NewReader(b))
}
