package bwcluster

import (
	"fmt"
	"time"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/membership"
	"bwcluster/internal/metric"
	"bwcluster/internal/runtime"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// DefaultAsyncTick is the gossip period an AsyncRuntime uses when the
// caller passes a non-positive tick.
const DefaultAsyncTick = time.Millisecond

// AsyncRuntime is a live asynchronous deployment of the decentralized
// protocol over a built System: one goroutine per host, gossip every
// tick, queries routed peer-to-peer as messages (Algorithms 2-4 run
// event-driven instead of in synchronous rounds). It carries its own
// observability plane — a flight recorder of structured overlay events
// and a health monitor (gossip-age watermarks, convergence, pending
// -reply gauges) — which bwc-serve exposes on /v1/flight and /v1/health
// when started with -async.
type AsyncRuntime struct {
	sys    *System
	rt     *runtime.Runtime
	flight *telemetry.FlightRecorder
	ledger *bwledger.Ledger
}

// AsyncRuntime starts the asynchronous runtime over the system's
// prediction framework. Gossip begins immediately; the runtime reaches
// the same fixed point the synchronous overlay converged to, so settled
// queries agree with Query. Use Settle to wait for convergence (or poll
// Health().Converged for non-blocking readiness) and Close to stop the
// goroutines. A non-positive tick uses DefaultAsyncTick.
func (s *System) AsyncRuntime(tick time.Duration) (*AsyncRuntime, error) {
	return s.asyncRuntime(tick, func(tick time.Duration) (*runtime.Runtime, error) {
		return runtime.New(s.forest, s.ovCfg, tick)
	})
}

// AsyncRuntimeWithTransport starts the asynchronous runtime over a
// caller-supplied transport, hosting only the given subset of the
// system's hosts in this process. This is how a fleet shard joins a
// multi-process overlay: every shard holds the same built System (so
// epochs agree), each hosts a disjoint slice of its peers over a shared
// TCPTransport, and gossip and query forwarding cross process
// boundaries as wire frames. Semantics otherwise match AsyncRuntime;
// queries must start at a locally hosted peer.
func (s *System) AsyncRuntimeWithTransport(tick time.Duration, tr transport.Transport, local []int) (*AsyncRuntime, error) {
	return s.asyncRuntime(tick, func(tick time.Duration) (*runtime.Runtime, error) {
		return runtime.NewWithTransport(s.forest, s.ovCfg, tick, tr, local)
	})
}

func (s *System) asyncRuntime(tick time.Duration, build func(time.Duration) (*runtime.Runtime, error)) (*AsyncRuntime, error) {
	if tick <= 0 {
		tick = DefaultAsyncTick
	}
	rt, err := build(tick)
	if err != nil {
		return nil, fmt.Errorf("bwcluster: async runtime: %w", err)
	}
	// Liveness tracking is always on (it is a read-only observer of the
	// gossip-age watermarks the health monitor already keeps), but a
	// serving runtime never auto-evicts: a dead declaration is reported
	// on /v1/membership, and the operator decides.
	if _, err := rt.AttachMembership(membership.Config{}, false); err != nil {
		return nil, fmt.Errorf("bwcluster: async runtime: %w", err)
	}
	flight := telemetry.NewFlightRecorder(0)
	rt.SetFlight(flight)
	// The bandwidth ledger accounts every delivery on the runtime's
	// transport and joins each closed window against the prediction
	// forest; an over-utilized link fires a bandwidth_violation anomaly
	// into the same flight recorder the rest of the overlay records to.
	ledger := bwledger.New(bwledger.Config{})
	ledger.SetFlight(flight)
	ledger.SetPredictor(func(a, b int) (float64, bool) {
		mbps, err := s.PredictBandwidth(a, b)
		if err != nil {
			return 0, false // client-submitted traffic (host -1) has no link prediction
		}
		return mbps, true
	})
	rt.SetLedger(ledger)
	rt.Start()
	return &AsyncRuntime{sys: s, rt: rt, flight: flight, ledger: ledger}, nil
}

// Settle blocks until gossip has been quiet for the given window (the
// runtime is at its fixed point) or the timeout elapses.
func (a *AsyncRuntime) Settle(quiet, timeout time.Duration) error {
	return a.rt.Settle(quiet, timeout)
}

// Health returns the runtime's point-in-time health summary: readiness
// (convergence-monitor verdict), gossip-age watermarks, pending-reply
// and trace-backlog populations, and the logical clock.
func (a *AsyncRuntime) Health() runtime.Health { return a.rt.Health() }

// Converged reports the convergence monitor's current verdict.
func (a *AsyncRuntime) Converged() bool { return a.rt.Converged() }

// Membership returns a point-in-time snapshot of the liveness tracker:
// per-host status (alive, suspect after a quiet window, dead past the
// death threshold, left), the membership epoch, and the recent
// join/leave/fail/suspect/recover event log. Served on /v1/membership.
func (a *AsyncRuntime) Membership() membership.Snapshot {
	return a.rt.Membership().Snapshot()
}

// Flight returns the runtime's flight recorder — the bounded black-box
// ring of structured overlay events (hops, drops, staleness episodes,
// anomalies) behind /v1/flight.
func (a *AsyncRuntime) Flight() *telemetry.FlightRecorder { return a.flight }

// Bandwidth returns the bandwidth ledger's snapshot — per-link byte
// accounting joined against the prediction forest, behind /v1/bandwidth.
func (a *AsyncRuntime) Bandwidth() bwledger.Snapshot { return a.ledger.Snapshot() }

// Query routes a decentralized cluster query through the live runtime,
// waiting up to timeout for the routed answer. Semantics match
// System.Query once the runtime has settled.
func (a *AsyncRuntime) Query(start, k int, minBandwidth float64, timeout time.Duration) (QueryResult, error) {
	res, _, err := a.query(start, k, minBandwidth, timeout, nil)
	return res, err
}

// QueryTraced is Query with distributed tracing: the query carries a
// trace context across every overlay hop, each hop reports a span event
// back to the origin, and the reassembled causal tree (hop spans with
// host, peer, queue wait; dropped reports as explicit gap spans) is
// attached to the returned span, which is finished and marshals to JSON.
func (a *AsyncRuntime) QueryTraced(start, k int, minBandwidth float64, timeout time.Duration) (QueryResult, *telemetry.Span, error) {
	span := telemetry.StartSpan("query")
	span.SetAttr("start", start)
	span.SetAttr("minBandwidthMbps", minBandwidth)
	span.SetAttr("async", true)
	defer span.Finish()
	res, _, err := a.query(start, k, minBandwidth, timeout, span)
	if err != nil {
		return res, span, err
	}
	span.SetAttr("found", res.Found())
	span.SetAttr("hops", res.Hops)
	span.SetAttr("answeredBy", res.AnsweredBy)
	return res, span, nil
}

// query converts bandwidth to distance, runs the runtime query and
// converts the answer back to the facade's types.
func (a *AsyncRuntime) query(start, k int, minBandwidth float64, timeout time.Duration, span *telemetry.Span) (QueryResult, *telemetry.Span, error) {
	if err := a.sys.checkHost(start); err != nil {
		return QueryResult{}, span, err
	}
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, a.sys.c)
	if err != nil {
		return QueryResult{}, span, fmt.Errorf("bwcluster: %w", err)
	}
	t0 := time.Now()
	res, err := a.rt.QueryTraced(start, k, l, timeout, span)
	mQuerySeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		return QueryResult{}, span, fmt.Errorf("bwcluster: %w", err)
	}
	out := QueryResult{Members: res.Cluster, Hops: res.Hops, AnsweredBy: res.Answered}
	if res.Class > 0 {
		out.Class = a.sys.c / res.Class
	}
	return out, span, nil
}

// QueryNode routes the decentralized single-node search through the
// live runtime, mirroring System.QueryNode.
func (a *AsyncRuntime) QueryNode(start int, set []int, minBandwidth float64, timeout time.Duration) (NodeQueryResult, error) {
	if err := a.sys.checkHost(start); err != nil {
		return NodeQueryResult{}, err
	}
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, a.sys.c)
	if err != nil {
		return NodeQueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	res, err := a.rt.QueryNode(start, set, l, timeout)
	if err != nil {
		return NodeQueryResult{}, fmt.Errorf("bwcluster: %w", err)
	}
	out := NodeQueryResult{Node: res.Node, Hops: res.Hops, AnsweredBy: res.Answered}
	if res.Found() && res.Radius > 0 {
		out.WorstBandwidth = a.sys.c / res.Radius
	}
	return out, nil
}

// Close stops the runtime's peer and monitor goroutines. The underlying
// System stays usable; the AsyncRuntime must not be queried after Close.
func (a *AsyncRuntime) Close() { a.rt.Stop() }
