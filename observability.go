package bwcluster

import (
	"fmt"
	"time"

	"bwcluster/internal/metric"
	"bwcluster/internal/telemetry"
)

// Facade-level telemetry: end-to-end latencies of the two query paths
// and the cost of the most recent construction. Histograms observe wall
// time only — instrumentation reads no random state and feeds nothing
// back into the algorithms, so seed determinism is unaffected (the
// regression tests run with these series active).
var (
	mBuildSeconds = telemetry.NewGauge("bwc_system_build_seconds",
		"Wall time of the most recent System construction.")
	mFindClusterSeconds = telemetry.NewHistogram("bwc_system_findcluster_seconds",
		"End-to-end latency of centralized FindCluster queries.",
		telemetry.DurationBuckets())
	mQuerySeconds = telemetry.NewHistogram("bwc_system_query_seconds",
		"End-to-end latency of decentralized Query calls.",
		telemetry.DurationBuckets())
)

// QueryTraced runs the same decentralized query as Query while
// recording a trace: the returned span tree carries one child span per
// overlay hop (peer id, CRT promise, candidate radius, local
// clustering-space size) under a root span with the query parameters.
// The span is finished on return and marshals to JSON.
func (s *System) QueryTraced(start, k int, minBandwidth float64) (QueryResult, *telemetry.Span, error) {
	span := telemetry.StartSpan("query")
	span.SetAttr("start", start)
	span.SetAttr("minBandwidthMbps", minBandwidth)
	defer span.Finish()
	if err := s.checkHost(start); err != nil {
		return QueryResult{}, span, err
	}
	l, err := metric.DistanceForBandwidthConstraint(minBandwidth, s.c)
	if err != nil {
		return QueryResult{}, span, fmt.Errorf("bwcluster: %w", err)
	}
	t0 := time.Now()
	res, err := s.net.QueryTraced(start, k, l, span)
	mQuerySeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		return QueryResult{}, span, fmt.Errorf("bwcluster: %w", err)
	}
	out := QueryResult{Members: res.Cluster, Hops: res.Hops, AnsweredBy: res.Answered}
	if res.Class > 0 {
		out.Class = s.c / res.Class
	}
	span.SetAttr("found", out.Found())
	span.SetAttr("hops", out.Hops)
	span.SetAttr("answeredBy", out.AnsweredBy)
	return out, span, nil
}
