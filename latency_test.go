package bwcluster

import (
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/dataset"
)

// syntheticLatency builds an n-host latency matrix (ms) with a metro
// structure: short intra-region, long cross-region paths.
func syntheticLatency(t *testing.T, n int, seed int64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	region := make([]int, n)
	for i := range region {
		region[i] = rng.Intn(4)
	}
	lat := make([][]float64, n)
	for i := range lat {
		lat[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 2 + 10*rng.Float64()
			if region[i] != region[j] {
				v += 40 + 80*rng.Float64()
			}
			lat[i][j], lat[j][i] = v, v
		}
	}
	return lat
}

func TestNewLatencyValidation(t *testing.T) {
	if _, err := NewLatency(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := NewLatency([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Error("zero latency should fail")
	}
	good := [][]float64{{0, 5}, {5, 0}}
	if _, err := NewLatency(good, WithNCut(0)); err == nil {
		t.Error("bad option should fail")
	}
}

func TestLatencyBasicUsage(t *testing.T) {
	lat := syntheticLatency(t, 40, 1)
	sys, err := NewLatency(lat, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 40 {
		t.Fatalf("Len = %d", sys.Len())
	}
	classes := sys.Classes()
	if len(classes) == 0 {
		t.Fatal("no latency classes")
	}
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			t.Fatalf("classes not ascending: %v", classes)
		}
	}

	// Intra-region clusters exist at small latency bounds.
	bound := classes[len(classes)/2]
	members, err := sys.FindCluster(4, bound)
	if err != nil {
		t.Fatal(err)
	}
	if members == nil {
		t.Fatalf("no cluster at bound %v ms", bound)
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			p, err := sys.PredictLatency(members[i], members[j])
			if err != nil {
				t.Fatal(err)
			}
			if p > bound*(1+1e-9) {
				t.Fatalf("pair (%d,%d) predicted %v ms > bound %v", members[i], members[j], p, bound)
			}
		}
	}

	// Decentralized query: class snaps DOWN (never relaxing the bound).
	res, err := sys.Query(7, 4, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("decentralized latency query failed")
	}
	if res.Class > bound*(1+1e-9) {
		t.Fatalf("class %v exceeds requested bound %v", res.Class, bound)
	}
	for i := 0; i < len(res.Members); i++ {
		for j := i + 1; j < len(res.Members); j++ {
			p, _ := sys.PredictLatency(res.Members[i], res.Members[j])
			if p > res.Class*(1+1e-9) {
				t.Fatalf("pair predicted %v ms > class %v", p, res.Class)
			}
		}
	}
}

func TestLatencyPredictionQuality(t *testing.T) {
	lat := syntheticLatency(t, 30, 3)
	sys, err := NewLatency(lat, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	// The metro structure is nearly tree-like, so predictions should
	// track measurements within a modest relative error on most pairs.
	within := 0
	total := 0
	for u := 0; u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			p, err := sys.PredictLatency(u, v)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := sys.MeasuredLatency(u, v)
			total++
			if math.Abs(p-m)/m < 0.5 {
				within++
			}
		}
	}
	if frac := float64(within) / float64(total); frac < 0.7 {
		t.Errorf("only %.0f%% of pairs within 50%% relative error", frac*100)
	}
	if _, err := sys.PredictLatency(0, 99); err == nil {
		t.Error("out-of-range host should fail")
	}
	if p, err := sys.PredictLatency(3, 3); err != nil || p != 0 {
		t.Errorf("self latency = %v, %v", p, err)
	}
}

func TestLatencyQueryValidation(t *testing.T) {
	sys, err := NewLatency(syntheticLatency(t, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(99, 3, 50); err == nil {
		t.Error("unknown start should fail")
	}
	if _, err := sys.FindCluster(3, -1); err == nil {
		t.Error("negative bound should fail")
	}
	if _, err := sys.Query(0, 3, 0.0001); err == nil {
		t.Error("bound below all classes should fail")
	}
	if _, err := sys.MeasuredLatency(-1, 0); err == nil {
		t.Error("negative host should fail")
	}
}

// On the near-tree synthetic latency dataset, the system's predictions
// track measurements closely — the premise of the paper's latency
// extension.
func TestLatencySystemOnGeneratedDataset(t *testing.T) {
	cfg := dataset.DefaultLatencyConfig()
	cfg.N = 50
	lat, err := dataset.GenerateLatency(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][]float64, cfg.N)
	for i := range raw {
		raw[i] = make([]float64, cfg.N)
		for j := range raw[i] {
			if i != j {
				raw[i][j] = lat.At(i, j)
			}
		}
	}
	sys, err := NewLatency(raw, WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	within := 0
	total := 0
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			p, err := sys.PredictLatency(u, v)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := sys.MeasuredLatency(u, v)
			total++
			if math.Abs(p-m)/m < 0.3 {
				within++
			}
		}
	}
	if frac := float64(within) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of pairs within 30%% error on near-tree latency", frac*100)
	}
	// A latency-constrained cluster query succeeds at a moderate bound.
	classes := sys.Classes()
	members, err := sys.FindCluster(5, classes[len(classes)/2])
	if err != nil {
		t.Fatal(err)
	}
	if members == nil {
		t.Error("no cluster at the median latency class")
	}
}

func TestLatencyExplicitClasses(t *testing.T) {
	sys, err := NewLatency(syntheticLatency(t, 20, 6), WithLatencyClasses([]float64{10, 50, 150}))
	if err != nil {
		t.Fatal(err)
	}
	classes := sys.Classes()
	if len(classes) != 3 || classes[0] != 10 || classes[2] != 150 {
		t.Errorf("classes = %v", classes)
	}
	// A 60 ms query snaps down to the 50 ms class.
	res, err := sys.Query(0, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() && res.Class != 50 {
		t.Errorf("class = %v, want 50", res.Class)
	}
}
