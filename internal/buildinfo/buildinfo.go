// Package buildinfo renders the binary's build identity from the
// information the Go toolchain already embeds (runtime/debug), so every
// CLI can answer -version without a separate version file or ldflags
// plumbing.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns a one-line version description: module version (or
// "devel"), VCS revision and dirty flag when embedded, and the Go
// toolchain that built the binary.
func String() string {
	var b strings.Builder
	version, revision, modified := "devel", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
	}
	b.WriteString(version)
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		fmt.Fprintf(&b, " (%s", revision)
		if modified {
			b.WriteString("-dirty")
		}
		b.WriteString(")")
	}
	fmt.Fprintf(&b, " %s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return b.String()
}
