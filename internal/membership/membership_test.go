package membership

import (
	"testing"
)

func testTracker(t *testing.T, suspect, dead uint64, cap int) *Tracker {
	t.Helper()
	tk, err := New(Config{SuspectAfterTicks: suspect, DeadAfterTicks: dead, EventCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SuspectAfterTicks: 10, DeadAfterTicks: 10}); err == nil {
		t.Error("dead == suspect should fail")
	}
	if _, err := New(Config{SuspectAfterTicks: 10, DeadAfterTicks: 5}); err == nil {
		t.Error("dead < suspect should fail")
	}
	if _, err := New(Config{EventCap: -1}); err == nil {
		t.Error("negative event cap should fail")
	}
	tk, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tk.cfg.SuspectAfterTicks != DefaultSuspectAfterTicks || tk.cfg.DeadAfterTicks != DefaultDeadAfterTicks {
		t.Errorf("defaults not applied: %+v", tk.cfg)
	}
}

func TestChurnLifecycleTransitions(t *testing.T) {
	tk := testTracker(t, 10, 30, 64)

	// Join three hosts: three epochs, three events.
	for i, h := range []int{0, 1, 5} {
		if err := tk.NoteJoin(h, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tk.Epoch(); got != 3 {
		t.Fatalf("epoch after joins = %d, want 3", got)
	}
	if got := tk.AliveCount(); got != 3 {
		t.Fatalf("alive = %d, want 3", got)
	}
	// Idempotent: rejoining a present host changes nothing.
	if err := tk.NoteJoin(1, 4); err != nil {
		t.Fatal(err)
	}
	if got := tk.Epoch(); got != 3 {
		t.Fatalf("epoch after duplicate join = %d, want 3", got)
	}

	// Host 5 goes quiet: suspect at age >= 10 (no epoch move).
	dead := tk.Observe(20, []int{0, 1, 5}, []uint64{1, 2, 15}, nil)
	if len(dead) != 0 {
		t.Fatalf("suspect scan declared deaths: %v", dead)
	}
	if got := tk.Status(5); got != StatusSuspect {
		t.Fatalf("status(5) = %v, want suspect", got)
	}
	if got := tk.Epoch(); got != 3 {
		t.Fatalf("suspicion moved the epoch to %d", got)
	}
	if got := tk.AliveCount(); got != 3 {
		t.Fatalf("alive after suspicion = %d, want 3 (suspects are present)", got)
	}

	// Gossip comes back: recover.
	tk.Observe(25, []int{5}, []uint64{2}, nil)
	if got := tk.Status(5); got != StatusAlive {
		t.Fatalf("status(5) after recovery = %v, want alive", got)
	}

	// Quiet again, past the death threshold: suspect first, then dead.
	tk.Observe(40, []int{5}, []uint64{12}, nil)
	dead = tk.Observe(70, []int{5}, []uint64{42}, dead[:0])
	if len(dead) != 1 || dead[0] != 5 {
		t.Fatalf("dead = %v, want [5]", dead)
	}
	if got := tk.Status(5); got != StatusDead {
		t.Fatalf("status(5) = %v, want dead", got)
	}
	if got := tk.Epoch(); got != 4 {
		t.Fatalf("epoch after death = %d, want 4", got)
	}
	if got := tk.AliveCount(); got != 2 {
		t.Fatalf("alive after death = %d, want 2", got)
	}

	// Graceful leave moves the epoch; leaving twice fails.
	if err := tk.NoteLeave(1, 80); err != nil {
		t.Fatal(err)
	}
	if err := tk.NoteLeave(1, 81); err == nil {
		t.Error("double leave should fail")
	}
	if got := tk.Epoch(); got != 5 {
		t.Fatalf("epoch after leave = %d, want 5", got)
	}

	// A dead host can rejoin (fresh join, new epoch).
	if err := tk.NoteJoin(5, 90); err != nil {
		t.Fatal(err)
	}
	if got, want := tk.Status(5), StatusAlive; got != want {
		t.Fatalf("status(5) after rejoin = %v, want %v", got, want)
	}
	if got := tk.Epoch(); got != 6 {
		t.Fatalf("epoch after rejoin = %d, want 6", got)
	}

	// Event log: join x3, suspect, recover, suspect, fail, leave, join.
	events := tk.Events(nil)
	wantKinds := []EventKind{
		EventJoin, EventJoin, EventJoin, EventSuspect, EventRecover,
		EventSuspect, EventFail, EventLeave, EventJoin,
	}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(wantKinds), events)
	}
	for i, ev := range events {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %v, want %v (%+v)", i, ev.Kind, wantKinds[i], ev)
		}
	}
}

func TestChurnNoteFailBypassesSuspicion(t *testing.T) {
	tk := testTracker(t, 10, 30, 8)
	if err := tk.NoteFail(3, 0); err == nil {
		t.Error("failing an unknown host should error")
	}
	if err := tk.NoteJoin(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := tk.NoteFail(3, 1); err != nil {
		t.Fatal(err)
	}
	if got := tk.Status(3); got != StatusDead {
		t.Fatalf("status = %v, want dead", got)
	}
	if got := tk.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	// Dead hosts are ignored by Observe: no resurrection by fresh age.
	tk.Observe(5, []int{3}, []uint64{0}, nil)
	if got := tk.Status(3); got != StatusDead {
		t.Fatalf("observe resurrected a dead host: %v", got)
	}
}

func TestChurnEventRingOverwritesOldest(t *testing.T) {
	tk := testTracker(t, 10, 30, 4)
	for h := 0; h < 7; h++ {
		if err := tk.NoteJoin(h, uint64(h)); err != nil {
			t.Fatal(err)
		}
	}
	events := tk.Events(nil)
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	for i, ev := range events {
		if want := 3 + i; ev.Host != want {
			t.Fatalf("event %d host = %d, want %d (oldest overwritten first)", i, ev.Host, want)
		}
	}
	snap := tk.Snapshot()
	if snap.Alive != 7 || snap.Epoch != 7 || len(snap.Events) != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// The per-tick scan is a hot path: with caller-provided buffers of
// adequate capacity it must not allocate, transitions or not.
func TestChurnObserveDoesNotAllocate(t *testing.T) {
	tk := testTracker(t, 10, 30, 64)
	hosts := make([]int, 16)
	ages := make([]uint64, 16)
	for h := 0; h < 16; h++ {
		if err := tk.NoteJoin(h, 0); err != nil {
			t.Fatal(err)
		}
		hosts[h] = h
	}
	dead := make([]int, 0, 16)
	tick := uint64(1)
	allocs := testing.AllocsPerRun(100, func() {
		// Alternate quiet and fresh so suspect/recover transitions fire
		// inside the measured loop.
		for i := range ages {
			if tick%2 == 0 {
				ages[i] = 20
			} else {
				ages[i] = 0
			}
		}
		dead = tk.Observe(tick, hosts, ages, dead[:0])
		tick++
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %v times per scan; the hot path must be allocation-free", allocs)
	}
}

func TestChurnSnapshotCounts(t *testing.T) {
	tk := testTracker(t, 10, 30, 16)
	for h := 0; h < 4; h++ {
		if err := tk.NoteJoin(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	tk.Observe(15, []int{1}, []uint64{12}, nil) // 1 suspect
	if err := tk.NoteLeave(2, 16); err != nil {
		t.Fatal(err)
	}
	if err := tk.NoteFail(3, 17); err != nil {
		t.Fatal(err)
	}
	snap := tk.Snapshot()
	if snap.Alive != 1 || snap.Suspect != 1 || snap.Dead != 1 || snap.Left != 1 {
		t.Fatalf("snapshot counts = %+v", snap)
	}
	if len(snap.Hosts) != 4 {
		t.Fatalf("snapshot hosts = %v", snap.Hosts)
	}
}
