// Package membership turns gossip-age health signals into a churn-native
// liveness protocol: a Tracker classifies every known host as alive,
// suspect, dead, or departed from periodic age observations, emits a
// bounded log of join/suspect/recover/fail/leave events, and counts
// membership epochs — the generation tag the clustering index uses to
// reject stale answers (cluster.Index.FindAt).
//
// The tracker is clock-agnostic: every entry point takes the caller's
// logical time (the runtime's monitor tick), so tests drive transitions
// with synthetic ticks and never sleep, matching the repo's determinism
// policy. Observe — the per-tick scan — is a hot path under bwc-vet's
// arena-hygiene rules: it runs every monitor tick for every observed
// host, so it works entirely in caller-provided buffers and the
// preallocated event ring, and must not allocate.
package membership

import (
	"fmt"
	"sync"
)

// Status is a host's liveness classification.
type Status uint8

const (
	// StatusUnknown: never joined.
	StatusUnknown Status = iota
	// StatusAlive: joined and gossiping freshly.
	StatusAlive
	// StatusSuspect: gossip age crossed SuspectAfterTicks; the host may
	// be partitioned or dead, but the membership has not moved yet.
	StatusSuspect
	// StatusDead: gossip age crossed DeadAfterTicks while suspect; the
	// host is declared failed and the membership epoch moves.
	StatusDead
	// StatusLeft: departed gracefully (NoteLeave).
	StatusLeft
)

// String returns the lowercase wire name served by /v1/membership.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	case StatusLeft:
		return "left"
	default:
		return "unknown"
	}
}

// EventKind labels one membership transition.
type EventKind uint8

const (
	// EventJoin: a host entered the membership.
	EventJoin EventKind = iota
	// EventSuspect: a host's gossip went stale.
	EventSuspect
	// EventRecover: a suspect host's gossip came back (partition healed).
	EventRecover
	// EventFail: a suspect host was declared dead.
	EventFail
	// EventLeave: a host departed gracefully.
	EventLeave
)

// String returns the lowercase wire name.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventSuspect:
		return "suspect"
	case EventRecover:
		return "recover"
	case EventFail:
		return "fail"
	case EventLeave:
		return "leave"
	default:
		return "unknown"
	}
}

// MarshalJSON serves event kinds by wire name, matching HostState's
// string statuses on /v1/membership.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one membership transition, stamped with the logical tick it
// happened at and the membership epoch after it (suspect/recover do not
// move the epoch: the membership itself has not changed).
type Event struct {
	Kind  EventKind `json:"kind"`
	Host  int       `json:"host"`
	Tick  uint64    `json:"tick"`
	Epoch uint64    `json:"epoch"`
}

// Config parameterizes the liveness thresholds, in monitor ticks.
type Config struct {
	// SuspectAfterTicks is the gossip age at which an alive host turns
	// suspect (0: DefaultSuspectAfterTicks).
	SuspectAfterTicks uint64
	// DeadAfterTicks is the gossip age at which a suspect host is
	// declared dead (0: DefaultDeadAfterTicks). Must exceed
	// SuspectAfterTicks: death always passes through suspicion.
	DeadAfterTicks uint64
	// EventCap bounds the event ring (0: DefaultEventCap). The ring is
	// preallocated; older events are overwritten.
	EventCap int
}

// Defaults, in monitor ticks (the monitor ticks at the gossip rate, so
// these are multiples of the gossip period).
const (
	DefaultSuspectAfterTicks = 250
	DefaultDeadAfterTicks    = 1000
	DefaultEventCap          = 256
)

// Tracker is the liveness state machine. Safe for concurrent use; the
// per-tick Observe path allocates nothing (the event ring is
// preallocated, results go into caller buffers).
type Tracker struct {
	cfg Config

	mu     sync.Mutex
	status []Status // dense, host-indexed; guarded by mu
	alive  int      // hosts currently alive or suspect; guarded by mu
	epoch  uint64   // membership generation; guarded by mu
	events []Event  // preallocated ring; guarded by mu
	evHead int      // ring index of the oldest event; guarded by mu
	evLen  int      // ring population; guarded by mu
}

// New builds a tracker. Zero thresholds take the package defaults;
// explicit thresholds must satisfy 0 < SuspectAfterTicks <
// DeadAfterTicks.
func New(cfg Config) (*Tracker, error) {
	if cfg.SuspectAfterTicks == 0 {
		cfg.SuspectAfterTicks = DefaultSuspectAfterTicks
	}
	if cfg.DeadAfterTicks == 0 {
		cfg.DeadAfterTicks = DefaultDeadAfterTicks
	}
	if cfg.DeadAfterTicks <= cfg.SuspectAfterTicks {
		return nil, fmt.Errorf("membership: DeadAfterTicks %d must exceed SuspectAfterTicks %d",
			cfg.DeadAfterTicks, cfg.SuspectAfterTicks)
	}
	if cfg.EventCap == 0 {
		cfg.EventCap = DefaultEventCap
	}
	if cfg.EventCap < 1 {
		return nil, fmt.Errorf("membership: EventCap must be positive, got %d", cfg.EventCap)
	}
	return &Tracker{cfg: cfg, events: make([]Event, cfg.EventCap)}, nil
}

// recordLocked appends an event to the ring, overwriting the oldest when
// full. Caller holds mu. Never allocates: the ring is preallocated.
func (tk *Tracker) recordLocked(kind EventKind, h int, now uint64) {
	slot := (tk.evHead + tk.evLen) % len(tk.events)
	tk.events[slot] = Event{Kind: kind, Host: h, Tick: now, Epoch: tk.epoch}
	if tk.evLen < len(tk.events) {
		tk.evLen++
	} else {
		tk.evHead = (tk.evHead + 1) % len(tk.events)
	}
}

// ensureLocked grows the dense status table to cover host h. Growth
// happens on joins only — never on the Observe hot path.
func (tk *Tracker) ensureLocked(h int) {
	if h < len(tk.status) {
		return
	}
	grown := make([]Status, h+1)
	copy(grown, tk.status)
	tk.status = grown
}

// NoteJoin admits host h at logical time now, moving the epoch. Joining
// an already-present (alive or suspect) host is a no-op; rejoining after
// death or departure is a fresh join.
func (tk *Tracker) NoteJoin(h int, now uint64) error {
	if h < 0 {
		return fmt.Errorf("membership: negative host %d", h)
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	tk.ensureLocked(h)
	if s := tk.status[h]; s == StatusAlive || s == StatusSuspect {
		return nil
	}
	tk.status[h] = StatusAlive
	tk.alive++
	tk.epoch++
	tk.recordLocked(EventJoin, h, now)
	return nil
}

// NoteLeave departs host h gracefully at logical time now, moving the
// epoch. Only present (alive or suspect) hosts can leave.
func (tk *Tracker) NoteLeave(h int, now uint64) error {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if h < 0 || h >= len(tk.status) {
		return fmt.Errorf("membership: host %d is not a member", h)
	}
	if s := tk.status[h]; s != StatusAlive && s != StatusSuspect {
		return fmt.Errorf("membership: host %d is %s, cannot leave", h, s)
	}
	tk.status[h] = StatusLeft
	tk.alive--
	tk.epoch++
	tk.recordLocked(EventLeave, h, now)
	return nil
}

// NoteFail declares host h failed immediately (explicit crash injection,
// bypassing the suspicion ladder), moving the epoch. Only present hosts
// can fail.
func (tk *Tracker) NoteFail(h int, now uint64) error {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if h < 0 || h >= len(tk.status) {
		return fmt.Errorf("membership: host %d is not a member", h)
	}
	if s := tk.status[h]; s != StatusAlive && s != StatusSuspect {
		return fmt.Errorf("membership: host %d is %s, cannot fail", h, s)
	}
	tk.status[h] = StatusDead
	tk.alive--
	tk.epoch++
	tk.recordLocked(EventFail, h, now)
	return nil
}

// Observe feeds one scan of gossip-age observations at logical time now:
// hosts[i] was last heard from ages[i] ticks ago (the minimum over all
// observers). Transitions: alive hosts whose age crosses
// SuspectAfterTicks turn suspect; suspect hosts whose gossip freshens
// recover; suspect hosts whose age crosses DeadAfterTicks are declared
// dead, moving the epoch. Hosts the tracker does not know (never joined,
// already dead or departed) are ignored — their removal is someone
// else's transition.
//
// The freshly dead hosts are appended to dead (pass a reused buffer with
// adequate capacity to keep the call allocation-free) and returned so
// the caller can drive repair — evicting them from the runtime and the
// prediction trees.
//
//bwcvet:hotpath per-tick scan; allocation-free by contract
func (tk *Tracker) Observe(now uint64, hosts []int, ages []uint64, dead []int) []int {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	for i, h := range hosts {
		if h < 0 || h >= len(tk.status) {
			continue
		}
		age := ages[i]
		switch tk.status[h] {
		case StatusAlive:
			if age >= tk.cfg.SuspectAfterTicks {
				tk.status[h] = StatusSuspect
				tk.recordLocked(EventSuspect, h, now)
			}
		case StatusSuspect:
			if age < tk.cfg.SuspectAfterTicks {
				tk.status[h] = StatusAlive
				tk.recordLocked(EventRecover, h, now)
			} else if age >= tk.cfg.DeadAfterTicks {
				tk.status[h] = StatusDead
				tk.alive--
				tk.epoch++
				tk.recordLocked(EventFail, h, now)
				dead = append(dead, h)
			}
		}
	}
	return dead
}

// Status reports host h's classification.
func (tk *Tracker) Status(h int) Status {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if h < 0 || h >= len(tk.status) {
		return StatusUnknown
	}
	return tk.status[h]
}

// Epoch reports the membership generation: the count of joins, leaves,
// and fails so far. Suspicion and recovery do not move it.
func (tk *Tracker) Epoch() uint64 {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.epoch
}

// AliveCount reports how many hosts are present (alive or suspect).
func (tk *Tracker) AliveCount() int {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.alive
}

// Events appends the ring's events, oldest first, to buf and returns it.
func (tk *Tracker) Events(buf []Event) []Event {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	for i := 0; i < tk.evLen; i++ {
		buf = append(buf, tk.events[(tk.evHead+i)%len(tk.events)])
	}
	return buf
}

// HostState is one host's classification in a Snapshot.
type HostState struct {
	Host   int    `json:"host"`
	Status string `json:"status"`
}

// Snapshot is a point-in-time summary of the membership, served by
// bwc-serve's /v1/membership.
type Snapshot struct {
	Epoch   uint64      `json:"epoch"`
	Alive   int         `json:"alive"`
	Suspect int         `json:"suspect"`
	Dead    int         `json:"dead"`
	Left    int         `json:"left"`
	Hosts   []HostState `json:"hosts"`
	Events  []Event     `json:"events"`
}

// Snapshot summarizes the tracker for serving. It allocates; not a hot
// path.
func (tk *Tracker) Snapshot() Snapshot {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	snap := Snapshot{Epoch: tk.epoch}
	for h, s := range tk.status {
		switch s {
		case StatusAlive:
			snap.Alive++
		case StatusSuspect:
			snap.Suspect++
		case StatusDead:
			snap.Dead++
		case StatusLeft:
			snap.Left++
		case StatusUnknown:
			continue
		}
		snap.Hosts = append(snap.Hosts, HostState{Host: h, Status: s.String()})
	}
	snap.Events = make([]Event, 0, tk.evLen)
	for i := 0; i < tk.evLen; i++ {
		snap.Events = append(snap.Events, tk.events[(tk.evHead+i)%len(tk.events)])
	}
	return snap
}
