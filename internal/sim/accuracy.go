package sim

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/stats"
)

// AccuracyConfig parameterizes the Fig. 3 experiment (clustering accuracy
// and bandwidth-prediction error, tree metric vs 2-d Euclidean).
type AccuracyConfig struct {
	Dataset Dataset
	// K is the cluster size constraint (0: the dataset's paper value).
	K int
	// BValues are the bandwidth constraints to sweep (nil: seven points
	// across the dataset's paper band).
	BValues []float64
	// QueriesPerB is how many decentralized queries each round submits per
	// bandwidth value.
	QueriesPerB int
	// Rounds is how many frameworks (seeds) to average over.
	Rounds int
	// NCut is the overlay propagation cutoff.
	NCut int
	// Trees overrides the prediction-forest size (0: DefaultTrees).
	Trees int
	// C is the rational-transform constant.
	C float64
	// Seed makes the whole experiment reproducible.
	Seed int64
	// CDFPoints caps the resolution of the error CDFs.
	CDFPoints int
	// Parallelism bounds the per-round framework construction worker
	// pool (0: one worker per CPU, 1: sequential). It never changes
	// results.
	Parallelism int
}

// DefaultAccuracyConfig returns the paper-scale configuration: 1000
// queries per round split across the band, 10 rounds.
func DefaultAccuracyConfig(ds Dataset) AccuracyConfig {
	return AccuracyConfig{
		Dataset:     ds,
		QueriesPerB: 143, // ~1000 queries over 7 band points
		Rounds:      10,
		NCut:        overlay.DefaultNCut,
		C:           metric.DefaultC,
		Seed:        1,
		CDFPoints:   200,
	}
}

// Scaled returns a copy with rounds and query counts multiplied by f
// (floored at 1), for quick runs.
func (c AccuracyConfig) Scaled(f float64) AccuracyConfig {
	c.Rounds = scaleInt(c.Rounds, f)
	c.QueriesPerB = scaleInt(c.QueriesPerB, f)
	return c
}

func scaleInt(v int, f float64) int {
	s := int(float64(v) * f)
	if s < 1 {
		return 1
	}
	return s
}

// AccuracyPoint is one x-axis position of Fig. 3's WPR panels.
type AccuracyPoint struct {
	B   float64
	WPR map[Approach]float64
	RR  map[Approach]float64
}

// AccuracyResult is the full Fig. 3 reproduction for one dataset: the WPR
// curves (panels a/c) and the relative-error CDFs (panels b/d).
type AccuracyResult struct {
	Dataset Dataset
	K       int
	Points  []AccuracyPoint
	ErrCDF  map[Approach][]stats.CDFPoint
}

// RunAccuracy executes the Fig. 3 experiment.
func RunAccuracy(cfg AccuracyConfig) (*AccuracyResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	k, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	if cfg.K > 0 {
		k = cfg.K
	}
	if cfg.BValues == nil {
		cfg.BValues = linspace(bLo, bHi, 7)
	}
	if cfg.QueriesPerB < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("sim: accuracy needs QueriesPerB >= 1 and Rounds >= 1")
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.CDFPoints == 0 {
		cfg.CDFPoints = 200
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	bw, err := dataset.Generate(dsCfg, dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: accuracy dataset: %w", err)
	}
	classes, err := overlay.ClassesFromBandwidths(cfg.BValues, cfg.C)
	if err != nil {
		return nil, err
	}

	wprs := make(map[float64]map[Approach]*WPRAccumulator, len(cfg.BValues))
	rrs := make(map[float64]map[Approach]*RateAccumulator, len(cfg.BValues))
	for _, b := range cfg.BValues {
		wprs[b] = map[Approach]*WPRAccumulator{
			TreeCentral: {}, TreeDecentral: {}, EuclCentral: {},
		}
		rrs[b] = map[Approach]*RateAccumulator{
			TreeCentral: {}, TreeDecentral: {}, EuclCentral: {},
		}
	}
	var treeErrs, euclErrs []float64

	for round := 0; round < cfg.Rounds; round++ {
		rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(round)))
		fw, err := BuildFramework(bw, FrameworkConfig{
			C: cfg.C, NCut: cfg.NCut, Trees: cfg.Trees, Classes: classes, Euclid: true,
			Parallelism: cfg.Parallelism,
		}, rng)
		if err != nil {
			return nil, fmt.Errorf("sim: accuracy round %d: %w", round, err)
		}
		treeErrs = append(treeErrs, RelativeErrors(bw, fw.PredictedBandwidth)...)
		euclErrs = append(euclErrs, RelativeErrors(bw, func(u, v int) float64 {
			p, _ := fw.EuclideanBandwidth(u, v)
			return p
		})...)

		hosts := fw.Net.Hosts()
		for _, b := range cfg.BValues {
			l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
			if err != nil {
				return nil, err
			}
			// Centralized answers are deterministic per (framework, b):
			// evaluate once and weight once.
			central, err := fw.TreeIdx.Find(k, l)
			if err != nil {
				return nil, err
			}
			rrs[b][TreeCentral].Add(central != nil)
			if central != nil {
				wprs[b][TreeCentral].Add(bw, central, b)
			}
			eucl, err := fw.EuclIdx.Find(k, l)
			if err != nil {
				return nil, err
			}
			rrs[b][EuclCentral].Add(eucl != nil)
			if eucl != nil {
				wprs[b][EuclCentral].Add(bw, eucl, b)
			}
			// Decentralized answers depend on the start host.
			for q := 0; q < cfg.QueriesPerB; q++ {
				start := hosts[rng.Intn(len(hosts))]
				res, err := fw.Net.Query(start, k, l)
				if err != nil {
					return nil, fmt.Errorf("sim: accuracy query: %w", err)
				}
				rrs[b][TreeDecentral].Add(res.Found())
				if res.Found() {
					wprs[b][TreeDecentral].Add(bw, res.Cluster, b)
				}
			}
		}
	}

	res := &AccuracyResult{Dataset: cfg.Dataset, K: k, ErrCDF: make(map[Approach][]stats.CDFPoint, 2)}
	for _, b := range cfg.BValues {
		pt := AccuracyPoint{B: b, WPR: map[Approach]float64{}, RR: map[Approach]float64{}}
		for _, a := range []Approach{TreeCentral, TreeDecentral, EuclCentral} {
			pt.WPR[a] = wprs[b][a].Value()
			pt.RR[a] = rrs[b][a].Value()
		}
		res.Points = append(res.Points, pt)
	}
	treeCDF, err := stats.CDF(treeErrs)
	if err != nil {
		return nil, fmt.Errorf("sim: tree error cdf: %w", err)
	}
	euclCDF, err := stats.CDF(euclErrs)
	if err != nil {
		return nil, fmt.Errorf("sim: euclid error cdf: %w", err)
	}
	res.ErrCDF[TreeCentral] = DownsampleCDF(treeCDF, cfg.CDFPoints)
	res.ErrCDF[EuclCentral] = DownsampleCDF(euclCDF, cfg.CDFPoints)
	return res, nil
}
