package sim

import (
	"fmt"
	"math/rand"
	"time"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/runtime"
	"bwcluster/internal/transport"
)

// BandwidthConfig parameterizes the bandwidth-accounting experiment: the
// asynchronous runtime runs over a channel transport with a bandwidth
// ledger attached, and the ledger's windows are closed at phase
// boundaries — once after gossip fan-in converges, once after a fig-3
// style query workload — so the series reports delivered bytes per link
// per window joined against the prediction forest's link bandwidth.
type BandwidthConfig struct {
	Dataset Dataset
	// N restricts the experiment to a subset (0: 24 hosts).
	N int
	// Queries is the query-phase workload size.
	Queries int
	// TopK bounds the ledger's tracked links (0: the ledger default).
	TopK int
	// Threshold is the ledger's utilization violation threshold (0: the
	// ledger default of 1.0).
	Threshold float64
	// Tick is the runtime gossip period (0: 1ms).
	Tick time.Duration
	// SettleQuiet and SettleTimeout bound the convergence wait (0: 150ms
	// and 30s).
	SettleQuiet   time.Duration
	SettleTimeout time.Duration
	NCut          int
	BSteps        int
	C             float64
	Seed          int64
	// Parallelism bounds the framework-construction worker pool; it
	// never changes results.
	Parallelism int
}

// DefaultBandwidthConfig returns the workload recorded in
// results/bandwidth_series.txt.
func DefaultBandwidthConfig(ds Dataset) BandwidthConfig {
	return BandwidthConfig{
		Dataset: ds,
		N:       24,
		Queries: 60,
		Tick:    time.Millisecond,
		NCut:    overlay.DefaultNCut,
		BSteps:  7,
		C:       metric.DefaultC,
		Seed:    13,
	}
}

// Scaled returns a copy with the query workload multiplied by f.
func (c BandwidthConfig) Scaled(f float64) BandwidthConfig {
	c.Queries = scaleInt(c.Queries, f)
	return c
}

// BandwidthPhase is one phase's closed ledger window plus its label.
type BandwidthPhase struct {
	// Name identifies the phase: "gossip" (fan-in to the fixed point) or
	// "queries" (the fig-3 style workload).
	Name string
	// Window is the ledger window closed at the phase boundary.
	Window bwledger.Window
}

// BandwidthResult is the bandwidth-accounting measurement.
type BandwidthResult struct {
	Dataset Dataset
	N       int
	K       int
	// Phases holds one closed window per workload phase, in order.
	Phases []BandwidthPhase
	// LedgerBytes and LedgerMessages are the ledger's cumulative totals.
	LedgerBytes    int64
	LedgerMessages int64
	// DeliveredDelta is the transport delivered-frame counter's movement
	// across the run. The ledger records at exactly the delivery sites
	// that increment that counter, so LedgerMessages must equal it — the
	// reconciliation the harness test asserts.
	DeliveredDelta uint64
	// Violations counts over-threshold links across all phases.
	Violations int
}

// RunBandwidth builds one prediction framework, runs the asynchronous
// runtime over a ledger-attached channel transport, and closes one
// accounting window per phase: gossip fan-in (Start to settled) and a
// fig-3 style query workload. The ledger joins each window against the
// framework's predicted link bandwidth.
func RunBandwidth(cfg BandwidthConfig) (*BandwidthResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	k, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 24
	}
	if cfg.Queries < 1 || cfg.BSteps < 1 {
		return nil, fmt.Errorf("sim: bandwidth needs positive Queries and BSteps")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.SettleQuiet <= 0 {
		cfg.SettleQuiet = 150 * time.Millisecond
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 30 * time.Second
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	bw, err := dataset.Generate(dsCfg.WithN(cfg.N), dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: bandwidth dataset: %w", err)
	}
	classes, err := overlay.ClassesFromBandwidths(linspace(bLo, bHi, cfg.BSteps), cfg.C)
	if err != nil {
		return nil, err
	}
	fw, err := BuildFramework(bw, FrameworkConfig{
		C: cfg.C, NCut: cfg.NCut, Classes: classes, Parallelism: cfg.Parallelism,
	}, dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: bandwidth framework: %w", err)
	}
	hosts := make([]int, cfg.N)
	for i := range hosts {
		hosts[i] = i
	}

	// The ledger attaches to the transport directly (not via the
	// runtime's window driver) so windows land exactly on the phase
	// boundaries instead of the runtime's periodic tick schedule.
	ledger := bwledger.New(bwledger.Config{TopK: cfg.TopK, Threshold: cfg.Threshold})
	n := cfg.N
	ledger.SetPredictor(func(a, b int) (float64, bool) {
		if a < 0 || b < 0 || a >= n || b >= n {
			return 0, false
		}
		return fw.PredictedBandwidth(a, b), true
	})
	tr := transport.NewChan(0)
	tr.SetLedger(ledger)
	deliveredBefore := transport.DeliveredTotal()

	rt, err := runtime.NewWithTransport(fw.Forest, overlay.Config{NCut: cfg.NCut, Classes: classes}, cfg.Tick, tr, nil)
	if err != nil {
		tr.Close()
		return nil, err
	}
	rt.Start()
	defer func() {
		rt.Stop()
		tr.Close()
	}()

	out := &BandwidthResult{Dataset: cfg.Dataset, N: cfg.N, K: k}
	closePhase := func(name string, fromTick, toTick uint64) {
		// Window length on the runtime's logical clock: deterministic for
		// a fixed tick duration, never a wall-clock read.
		seconds := float64(toTick-fromTick) * cfg.Tick.Seconds()
		w := ledger.Roll(seconds)
		out.Phases = append(out.Phases, BandwidthPhase{Name: name, Window: w})
		out.Violations += len(w.Violations)
	}

	// Phase 1: gossip fan-in to the fixed point.
	if err := rt.Settle(cfg.SettleQuiet, cfg.SettleTimeout); err != nil {
		return nil, fmt.Errorf("sim: bandwidth settle: %w", err)
	}
	settleTick := rt.Ticks()
	closePhase("gossip", 0, settleTick)

	// Phase 2: the fig-3 style query workload (random starts, bandwidth
	// constraints swept across the dataset's band).
	queryRng := rand.New(rand.NewSource(cfg.Seed + 500))
	bValues := linspace(bLo, bHi, cfg.BSteps)
	for q := 0; q < cfg.Queries; q++ {
		b := bValues[queryRng.Intn(len(bValues))]
		l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
		if err != nil {
			return nil, err
		}
		start := hosts[queryRng.Intn(len(hosts))]
		if _, err := rt.Query(start, k, l, cfg.SettleTimeout); err != nil {
			return nil, fmt.Errorf("sim: bandwidth query %d: %w", q, err)
		}
	}
	closePhase("queries", settleTick, rt.Ticks())

	// Quiesce the overlay before reading the cumulative counters: gossip
	// keeps delivering until Stop, and the reconciliation below compares
	// point-in-time totals. Stop is idempotent, so the deferred cleanup
	// stays valid.
	rt.Stop()
	out.LedgerBytes = ledger.TotalBytes()
	out.LedgerMessages = ledger.TotalMessages()
	out.DeliveredDelta = transport.DeliveredTotal() - deliveredBefore
	return out, nil
}
