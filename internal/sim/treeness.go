package sim

import (
	"fmt"
	"math"
	"math/rand"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/stats"
)

// TreenessConfig parameterizes the Fig. 5 experiment: how the treeness of
// a dataset (epsilon_avg) affects clustering accuracy, and the
// normalization that makes the effect visible.
type TreenessConfig struct {
	// Base selects the generator family (the paper uses subsets of both
	// datasets; we generate same-size datasets with different noise).
	Base Dataset
	// N is the dataset size (paper: 100).
	N int
	// Noises are the treeness-noise levels producing the dataset family
	// (nil: six levels).
	Noises []float64
	// K is the size constraint (paper: 5).
	K int
	// BValues sweeps the bandwidth constraint (nil: 20 points in 5..300).
	// The paper submits 2000 random-b queries; with centralized clustering
	// the answer per (framework, b) is deterministic, so a b grid with one
	// evaluation per cell carries the same information.
	BValues []float64
	// Rounds is the number of frameworks per dataset (paper: 10).
	Rounds int
	// Alpha is the f_a* rescaling constant (paper: 3.2).
	Alpha float64
	// EpsSamples is the quartet sample count for epsilon_avg estimation.
	EpsSamples int
	C          float64
	Seed       int64
	// Parallelism bounds the worker pool fanning the per-noise series out
	// (0: one worker per CPU, 1: sequential). Each series derives all of
	// its randomness from Seed and its own index, so the fan-out never
	// changes results.
	Parallelism int
}

// DefaultTreenessConfig returns the paper-scale Fig. 5 configuration.
func DefaultTreenessConfig(base Dataset) TreenessConfig {
	return TreenessConfig{
		Base:       base,
		N:          100,
		Noises:     []float64{0.02, 0.08, 0.15, 0.25, 0.4, 0.6},
		K:          5,
		Rounds:     10,
		Alpha:      3.2,
		EpsSamples: 20000,
		C:          metric.DefaultC,
		Seed:       3,
	}
}

// Scaled returns a copy with the round count multiplied by f.
func (c TreenessConfig) Scaled(f float64) TreenessConfig {
	c.Rounds = scaleInt(c.Rounds, f)
	return c
}

// TreenessPoint is one (dataset, b) cell of Fig. 5.
type TreenessPoint struct {
	B       float64
	FB      float64 // CDF of pairwise bandwidth at b
	FA      float64 // fraction of pairs within [b-10, b+10]
	FAStar  float64
	WPR     float64
	WPRNorm float64 // WPR^(f_a*), the paper's normalization
	// Model is Equation 1's prediction WPR = f_b^(1/eps#), the value the
	// measured WPR should track.
	Model float64
}

// TreenessSeries is one dataset's curve, annotated with its treeness.
type TreenessSeries struct {
	Noise   float64
	EpsAvg  float64
	EpsStar float64
	Points  []TreenessPoint
}

// TreenessResult is the Fig. 5 reproduction.
type TreenessResult struct {
	Base   Dataset
	K      int
	Alpha  float64
	Series []TreenessSeries
}

// RunTreeness executes the Fig. 5 experiment with the centralized
// tree-metric approach (the error under study comes from the prediction
// framework, not from query routing).
func RunTreeness(cfg TreenessConfig) (*TreenessResult, error) {
	baseCfg, err := cfg.Base.Config()
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 100
	}
	if cfg.Noises == nil {
		cfg.Noises = DefaultTreenessConfig(cfg.Base).Noises
	}
	if cfg.K < 2 {
		cfg.K = 5
	}
	if cfg.BValues == nil {
		cfg.BValues = linspace(5, 300, 20)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("sim: treeness needs positive Rounds")
	}
	if cfg.Alpha <= 1 {
		cfg.Alpha = 3.2
	}
	if cfg.EpsSamples <= 0 {
		cfg.EpsSamples = 20000
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}

	out := &TreenessResult{Base: cfg.Base, K: cfg.K, Alpha: cfg.Alpha}
	out.Series = make([]TreenessSeries, len(cfg.Noises))
	err = forEachIndexed(len(cfg.Noises), cfg.Parallelism, func(di int) error {
		noise := cfg.Noises[di]
		// All noise levels share the data seed: the generator consumes its
		// stream identically regardless of amplitude, so the datasets are
		// paired (same topology, same noise directions) and differ only in
		// treeness — the variable under study.
		dataRng := rand.New(rand.NewSource(cfg.Seed))
		bw, err := dataset.Generate(baseCfg.WithN(cfg.N).WithNoise(noise), dataRng)
		if err != nil {
			return fmt.Errorf("sim: treeness dataset %d: %w", di, err)
		}
		realDist, err := metric.DistanceFromBandwidth(bw, cfg.C)
		if err != nil {
			return err
		}
		epsAvg, err := metric.AvgEpsilon(realDist, cfg.EpsSamples, dataRng)
		if err != nil {
			return err
		}
		series := TreenessSeries{Noise: noise, EpsAvg: epsAvg, EpsStar: metric.EpsilonStar(epsAvg)}

		vals := bw.Values()
		wprs := make([]*WPRAccumulator, len(cfg.BValues))
		for i := range wprs {
			wprs[i] = &WPRAccumulator{}
		}
		for round := 0; round < cfg.Rounds; round++ {
			rng := rand.New(rand.NewSource(cfg.Seed + 9000 + int64(di)*101 + int64(round)))
			fw, err := BuildFramework(bw, FrameworkConfig{C: cfg.C, Parallelism: 1}, rng)
			if err != nil {
				return fmt.Errorf("sim: treeness round %d: %w", round, err)
			}
			for bi, b := range cfg.BValues {
				l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
				if err != nil {
					return err
				}
				members, err := fw.TreeIdx.Find(cfg.K, l)
				if err != nil {
					return err
				}
				if members == nil {
					continue
				}
				wprs[bi].Add(bw, members, b)
			}
		}
		for bi, b := range cfg.BValues {
			fb, err := stats.CDFAt(vals, b)
			if err != nil {
				return err
			}
			fa, err := stats.FractionIn(vals, b-10, b+10)
			if err != nil {
				return err
			}
			faStar, err := metric.FAStar(fa, cfg.Alpha)
			if err != nil {
				return err
			}
			wpr := wprs[bi].Value()
			series.Points = append(series.Points, TreenessPoint{
				B:       b,
				FB:      fb,
				FA:      fa,
				FAStar:  faStar,
				WPR:     wpr,
				WPRNorm: math.Pow(wpr, faStar),
				Model:   metric.ModelWPR(fb, metric.EpsilonSharp(series.EpsStar, faStar)),
			})
		}
		out.Series[di] = series
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
