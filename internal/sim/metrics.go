package sim

import (
	"fmt"
	"math"

	"bwcluster/internal/metric"
	"bwcluster/internal/stats"
)

// WrongPairs counts how many pairs of the returned cluster violate the
// real bandwidth constraint b, along with the total pair count — the raw
// ingredients of the paper's WPR metric.
func WrongPairs(bw *metric.Matrix, members []int, b float64) (wrong, total int) {
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			total++
			if bw.At(members[i], members[j]) < b {
				wrong++
			}
		}
	}
	return wrong, total
}

// WPRAccumulator aggregates wrong-pair counts across many queries.
type WPRAccumulator struct {
	wrong, total int
}

// Add folds one returned cluster into the accumulator.
func (a *WPRAccumulator) Add(bw *metric.Matrix, members []int, b float64) {
	w, t := WrongPairs(bw, members, b)
	a.wrong += w
	a.total += t
}

// Value returns the wrong pair rate, 0 when no pairs were observed.
func (a *WPRAccumulator) Value() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.wrong) / float64(a.total)
}

// Pairs reports how many pairs were accumulated.
func (a *WPRAccumulator) Pairs() int { return a.total }

// RateAccumulator tracks a success ratio (used for RR, the return rate).
type RateAccumulator struct {
	hits, total int
}

// Add records one trial.
func (a *RateAccumulator) Add(hit bool) {
	a.total++
	if hit {
		a.hits++
	}
}

// Value returns the rate, 0 when nothing was recorded.
func (a *RateAccumulator) Value() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.hits) / float64(a.total)
}

// Count reports the number of trials.
func (a *RateAccumulator) Count() int { return a.total }

// RelativeErrors computes |BW - BWpred| / BW for every pair, where the
// predicted bandwidth comes from predictor. This feeds the Fig. 3 CDFs.
func RelativeErrors(bw *metric.Matrix, predictor func(u, v int) float64) []float64 {
	n := bw.N()
	out := make([]float64, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			real := bw.At(u, v)
			if real <= 0 {
				continue
			}
			pred := predictor(u, v)
			if math.IsInf(pred, 0) || math.IsNaN(pred) {
				pred = real // coincident embeddings predict perfectly
			}
			out = append(out, math.Abs(real-pred)/real)
		}
	}
	return out
}

// DownsampleCDF reduces a CDF to at most maxPoints points, keeping the
// first and last, so figure output stays readable.
func DownsampleCDF(points []stats.CDFPoint, maxPoints int) []stats.CDFPoint {
	if maxPoints < 2 || len(points) <= maxPoints {
		return points
	}
	out := make([]stats.CDFPoint, 0, maxPoints)
	step := float64(len(points)-1) / float64(maxPoints-1)
	for i := 0; i < maxPoints; i++ {
		out = append(out, points[int(float64(i)*step+0.5)])
	}
	out[len(out)-1] = points[len(points)-1]
	return out
}

// ErrCDF builds the empirical CDF of relative prediction errors.
func ErrCDF(bw *metric.Matrix, predictor func(u, v int) float64, maxPoints int) ([]stats.CDFPoint, error) {
	errsList := RelativeErrors(bw, predictor)
	points, err := stats.CDF(errsList)
	if err != nil {
		return nil, fmt.Errorf("sim: error cdf: %w", err)
	}
	return DownsampleCDF(points, maxPoints), nil
}
