package sim

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/stats"
	"bwcluster/internal/sword"
)

// SwordConfig parameterizes the comparison against the SWORD-like
// exhaustive baseline from the paper's related work.
type SwordConfig struct {
	Dataset Dataset
	// KValues sweeps the size constraint (nil: 8 steps across 2..40% of n).
	KValues []int
	// Budget bounds each SWORD search's node expansions.
	Budget int
	// QueriesPerK is how many queries per (round, k).
	QueriesPerK int
	// Rounds is the number of frameworks / search seeds.
	Rounds int
	BSteps int
	C      float64
	Seed   int64
	// Parallelism bounds the worker pool inside each framework build
	// (0: one worker per CPU, 1: sequential); it never changes results.
	Parallelism int
}

// DefaultSwordConfig compares on a 150-host HP-like subset.
func DefaultSwordConfig(ds Dataset) SwordConfig {
	return SwordConfig{
		Dataset:     ds,
		Budget:      2000,
		QueriesPerK: 10,
		Rounds:      5,
		BSteps:      7,
		C:           metric.DefaultC,
		Seed:        8,
	}
}

// Scaled returns a copy with rounds and query counts multiplied by f.
func (c SwordConfig) Scaled(f float64) SwordConfig {
	c.Rounds = scaleInt(c.Rounds, f)
	c.QueriesPerK = scaleInt(c.QueriesPerK, f)
	return c
}

// SwordPoint compares the two systems at one size constraint.
type SwordPoint struct {
	K int
	// SwordRR / SwordSteps / SwordExhausted describe the baseline:
	// verified answers (WPR identically 0) but budget-bounded search.
	SwordRR        float64
	SwordSteps     float64
	SwordExhausted float64
	// TreeRR / TreeWPR describe the paper's approach on the same queries.
	TreeRR  float64
	TreeWPR float64
}

// SwordResult is the comparison series plus the one-off costs.
type SwordResult struct {
	Dataset Dataset
	N       int
	Budget  int
	// SwordMeasurements is the full n-to-n measurement count SWORD needs
	// before it can search at all; TreeMeasurements is the count of
	// distinct pairs framework construction measured (averaged over
	// rounds; hosts cache measurement results).
	SwordMeasurements int
	TreeMeasurements  float64
	Points            []SwordPoint
}

// RunSwordComparison quantifies the related-work claim: the exhaustive
// baseline guarantees correct answers but needs n-to-n measurements and
// an exponential-worst-case search that a budget must cut off, while the
// tree-metric approach answers every query in polynomial time on cheap
// predictions at the cost of a small wrong-pair rate.
func RunSwordComparison(cfg SwordConfig) (*SwordResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	_, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	n := 150
	if cfg.KValues == nil {
		cfg.KValues = intRange(2, (2*n)/5, 8)
	}
	if cfg.Budget < 1 || cfg.QueriesPerK < 1 || cfg.Rounds < 1 || cfg.BSteps < 1 {
		return nil, fmt.Errorf("sim: sword comparison needs positive Budget, QueriesPerK, Rounds and BSteps")
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	bw, err := dataset.Generate(dsCfg.WithN(n), dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: sword dataset: %w", err)
	}
	bValues := linspace(bLo, bHi, cfg.BSteps)

	out := &SwordResult{Dataset: cfg.Dataset, N: n, Budget: cfg.Budget,
		SwordMeasurements: n * (n - 1) / 2}
	type acc struct {
		swordRR, treeRR RateAccumulator
		exhausted       RateAccumulator
		steps           []float64
		treeWPR         WPRAccumulator
	}
	accs := make(map[int]*acc, len(cfg.KValues))
	for _, k := range cfg.KValues {
		accs[k] = &acc{}
	}
	measurements := 0.0
	for round := 0; round < cfg.Rounds; round++ {
		rng := rand.New(rand.NewSource(cfg.Seed + 700 + int64(round)))
		fw, err := BuildFramework(bw, FrameworkConfig{C: cfg.C, Parallelism: cfg.Parallelism}, rng)
		if err != nil {
			return nil, fmt.Errorf("sim: sword round %d: %w", round, err)
		}
		measurements += float64(fw.Forest.DistinctMeasurements())
		for _, k := range cfg.KValues {
			a := accs[k]
			for q := 0; q < cfg.QueriesPerK; q++ {
				b := bValues[rng.Intn(len(bValues))]
				res, err := sword.FindCluster(bw, k, b, cfg.Budget, rng)
				if err != nil {
					return nil, err
				}
				a.swordRR.Add(res.Found())
				a.exhausted.Add(res.Exhausted)
				a.steps = append(a.steps, float64(res.Steps))

				l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
				if err != nil {
					return nil, err
				}
				members, err := fw.TreeIdx.Find(k, l)
				if err != nil {
					return nil, err
				}
				a.treeRR.Add(members != nil)
				if members != nil {
					a.treeWPR.Add(bw, members, b)
				}
			}
		}
	}
	out.TreeMeasurements = measurements / float64(cfg.Rounds)
	for _, k := range cfg.KValues {
		a := accs[k]
		meanSteps, err := stats.Mean(a.steps)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, SwordPoint{
			K:              k,
			SwordRR:        a.swordRR.Value(),
			SwordSteps:     meanSteps,
			SwordExhausted: a.exhausted.Value(),
			TreeRR:         a.treeRR.Value(),
			TreeWPR:        a.treeWPR.Value(),
		})
	}
	return out, nil
}
