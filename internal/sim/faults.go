package sim

import (
	"fmt"
	"math/rand"
	"time"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/runtime"
	"bwcluster/internal/transport"
)

// FaultsConfig parameterizes the fault-tolerance experiment: the
// asynchronous runtime is run over a deterministic fault-injecting
// transport at a grid of gossip loss rates and partition lengths, and
// each cell measures how long convergence to the synchronous fixed point
// takes and whether settled queries still agree with the synchronous
// engine.
type FaultsConfig struct {
	Dataset Dataset
	// N restricts the experiment to a subset (0: 24 hosts — the runtime
	// spawns a goroutine per host and gossips every tick, so the grid
	// stays small).
	N int
	// Losses are the gossip drop rates to sweep (nil: 0, 0.1, 0.3).
	Losses []float64
	// PartitionSends are the partition window lengths to sweep, measured
	// in transport sends; 0 means no partition (nil: 0 and 1500).
	PartitionSends []int
	// Queries is the per-cell settled query count.
	Queries int
	// Tick is the runtime gossip period (0: 1ms).
	Tick time.Duration
	// SettleQuiet and SettleTimeout bound the convergence wait (0: 150ms
	// and 30s).
	SettleQuiet   time.Duration
	SettleTimeout time.Duration
	NCut          int
	BSteps        int
	C             float64
	Seed          int64
	// Parallelism bounds the framework-construction worker pool (0: one
	// per CPU, 1: sequential); it never changes results. The grid cells
	// themselves run sequentially — each one times a live runtime, and
	// co-scheduling runtimes would distort those timings.
	Parallelism int
}

// DefaultFaultsConfig returns the fault grid recorded in
// results/fault_series.txt.
func DefaultFaultsConfig(ds Dataset) FaultsConfig {
	return FaultsConfig{
		Dataset:        ds,
		N:              24,
		Losses:         []float64{0, 0.1, 0.3},
		PartitionSends: []int{0, 1500},
		Queries:        30,
		Tick:           time.Millisecond,
		NCut:           overlay.DefaultNCut,
		BSteps:         7,
		C:              metric.DefaultC,
		Seed:           11,
	}
}

// Scaled returns a copy with the per-cell query count multiplied by f.
func (c FaultsConfig) Scaled(f float64) FaultsConfig {
	c.Queries = scaleInt(c.Queries, f)
	return c
}

// FaultsPoint is one cell of the loss x partition grid.
type FaultsPoint struct {
	// Loss is the injected gossip drop rate.
	Loss float64
	// PartitionSends is the partition window length in transport sends
	// (0: no partition this cell).
	PartitionSends int
	// MsgsToSettle counts transport sends observed when Settle returned.
	MsgsToSettle int
	// SettleMs is the wall time from Start to settled, in milliseconds.
	SettleMs float64
	// Converged reports whether the settled runtime state equals the
	// synchronous overlay fixed point exactly.
	Converged bool
	// QuerySuccess is the fraction of settled queries whose findability
	// agrees with the synchronous engine.
	QuerySuccess float64
}

// FaultsResult is the fault-tolerance measurement grid.
type FaultsResult struct {
	Dataset Dataset
	N       int
	K       int
	Points  []FaultsPoint
}

// RunFaults builds one prediction framework, converges the synchronous
// reference overlay, then for every (loss, partition) cell runs the
// asynchronous runtime over a seeded FaultTransport and measures time to
// the fixed point and settled query agreement. Faults are GossipOnly:
// the paper's claim is that the periodic, idempotent gossip tolerates an
// unreliable network, not that one-shot query forwards do.
func RunFaults(cfg FaultsConfig) (*FaultsResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	k, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 24
	}
	if len(cfg.Losses) == 0 {
		cfg.Losses = []float64{0, 0.1, 0.3}
	}
	if cfg.PartitionSends == nil {
		cfg.PartitionSends = []int{0, 1500}
	}
	if cfg.Queries < 1 || cfg.BSteps < 1 {
		return nil, fmt.Errorf("sim: faults needs positive Queries and BSteps")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.SettleQuiet <= 0 {
		cfg.SettleQuiet = 150 * time.Millisecond
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 30 * time.Second
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	topo, err := dataset.NewTopology(dsCfg.WithN(cfg.N), dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: faults topology: %w", err)
	}
	bw, err := topo.Matrix(dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: faults dataset: %w", err)
	}
	classes, err := overlay.ClassesFromBandwidths(linspace(bLo, bHi, cfg.BSteps), cfg.C)
	if err != nil {
		return nil, err
	}
	fw, err := BuildFramework(bw, FrameworkConfig{
		C: cfg.C, NCut: cfg.NCut, Classes: classes, Parallelism: cfg.Parallelism,
	}, dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: faults framework: %w", err)
	}
	nw := fw.Net
	hosts := nw.Hosts()
	ovCfg := overlay.Config{NCut: cfg.NCut, Classes: classes}

	out := &FaultsResult{Dataset: cfg.Dataset, N: cfg.N, K: k}
	cell := 0
	for _, loss := range cfg.Losses {
		for _, ps := range cfg.PartitionSends {
			cell++
			pt, err := runFaultCell(cfg, fw, nw, hosts, ovCfg, loss, ps, int64(cell), k, bLo, bHi)
			if err != nil {
				return nil, fmt.Errorf("sim: faults cell loss=%v partition=%d: %w", loss, ps, err)
			}
			out.Points = append(out.Points, pt)
		}
	}
	return out, nil
}

// runFaultCell measures one (loss, partition) grid cell.
//
// The settle stopwatch below reads the wall clock: it measures how long
// real convergence takes, which is the experiment's output, and never
// feeds back into algorithm state — hence the determinism suppressions.
func runFaultCell(cfg FaultsConfig, fw *Framework, nw *overlay.Network, hosts []int,
	ovCfg overlay.Config, loss float64, ps int, cell int64, k int, bLo, bHi float64) (FaultsPoint, error) {
	pt := FaultsPoint{Loss: loss, PartitionSends: ps}
	var parts []transport.Partition
	if ps > 0 {
		// Cut off roughly a third of the peers early in the send
		// sequence; the window closes after ps more sends and gossip
		// must re-converge across the healed cut.
		island := append([]int(nil), hosts[:len(hosts)/3]...)
		parts = []transport.Partition{{After: 100, Until: 100 + ps, Island: island}}
	}
	ft, err := transport.NewFault(transport.NewChan(0), transport.FaultConfig{
		Seed:       cfg.Seed + 1000*cell,
		Drop:       loss,
		GossipOnly: true,
		Partitions: parts,
	})
	if err != nil {
		return pt, err
	}
	rt, err := runtime.NewWithTransport(fw.Forest, ovCfg, cfg.Tick, ft, nil)
	if err != nil {
		ft.Close()
		return pt, err
	}
	rt.Start()
	defer func() {
		rt.Stop()
		ft.Close()
	}()
	start := time.Now() //bwcvet:allow determinism wall-clock stopwatch; settle time is the measured output, never algorithm input
	if err := rt.Settle(cfg.SettleQuiet, cfg.SettleTimeout); err != nil {
		return pt, err
	}
	pt.SettleMs = float64(time.Since(start)) / float64(time.Millisecond) //bwcvet:allow determinism wall-clock stopwatch; settle time is the measured output, never algorithm input
	pt.MsgsToSettle = ft.Sends()
	pt.Converged = runtimeAtFixedPoint(nw, rt)

	queryRng := rand.New(rand.NewSource(cfg.Seed + 500 + cell))
	bValues := linspace(bLo, bHi, cfg.BSteps)
	agree := 0
	for q := 0; q < cfg.Queries; q++ {
		b := bValues[queryRng.Intn(len(bValues))]
		l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
		if err != nil {
			return pt, err
		}
		start := hosts[queryRng.Intn(len(hosts))]
		want, err := nw.Query(start, k, l)
		if err != nil {
			return pt, err
		}
		got, err := rt.Query(start, k, l, cfg.SettleTimeout)
		if err != nil {
			return pt, err
		}
		if want.Found() == got.Found() {
			agree++
		}
	}
	pt.QuerySuccess = float64(agree) / float64(cfg.Queries)
	return pt, nil
}

// runtimeAtFixedPoint reports whether the settled runtime's full gossip
// state (selfCRT, aggregated node info and CRT per neighbor) equals the
// synchronous fixed point.
func runtimeAtFixedPoint(nw *overlay.Network, rt *runtime.Runtime) bool {
	for _, x := range rt.Hosts() {
		if !equalIntSlices(nw.SelfCRT(x), rt.SelfCRT(x)) {
			return false
		}
		for _, m := range nw.Neighbors(x) {
			if !equalIntSlices(nw.AggrNode(x, m), rt.AggrNode(x, m)) {
				return false
			}
			if !equalIntSlices(nw.CRT(x, m), rt.CRT(x, m)) {
				return false
			}
		}
	}
	return true
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
