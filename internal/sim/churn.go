package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bwcluster/internal/cluster"
	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
)

// ChurnConfig parameterizes the churn experiment: a prediction tree and
// its overlay live through epochs of Poisson-distributed joins and
// leaves at a sweep of turnover rates, repairing incrementally
// (predtree.Tree.Remove/Add + overlay.Resync) instead of rebuilding.
// Each rate cell measures repair cost (gossip rounds and messages per
// epoch, against a from-scratch rebuild baseline), query quality on the
// churned framework (WPR/RR against the ground-truth bandwidth), and
// that the incrementally repaired overlay still reaches exactly the
// from-scratch fixed point.
type ChurnConfig struct {
	Dataset Dataset
	// N is the live membership the experiment tries to hold (0: 32).
	// The host pool is twice that, so joiners are drawn from hosts with
	// real ground-truth bandwidth rows; departed hosts can rejoin.
	N int
	// Rates are the per-epoch turnover fractions to sweep: at rate r,
	// joins and leaves each arrive Poisson(r*N/2), so (joins+leaves)/N
	// averages r (nil: 0.1, 0.2, 0.3, 0.5 — the 10-50% band).
	Rates []float64
	// Epochs is the churn epoch count per rate cell.
	Epochs int
	// Queries is the per-epoch decentralized query count.
	Queries int
	NCut    int
	BSteps  int
	C       float64
	Seed    int64
	// Parallelism is accepted for interface symmetry with the other
	// experiments; the churn engine is sequential (each epoch mutates
	// the previous state).
	Parallelism int
}

// DefaultChurnConfig returns the churn sweep recorded in
// results/churn_series.txt.
func DefaultChurnConfig(ds Dataset) ChurnConfig {
	return ChurnConfig{
		Dataset: ds,
		N:       32,
		Rates:   []float64{0.1, 0.2, 0.3, 0.5},
		Epochs:  6,
		Queries: 40,
		NCut:    overlay.DefaultNCut,
		BSteps:  7,
		C:       metric.DefaultC,
		Seed:    13,
	}
}

// Scaled returns a copy with the per-epoch query count multiplied by f.
func (c ChurnConfig) Scaled(f float64) ChurnConfig {
	c.Queries = scaleInt(c.Queries, f)
	return c
}

// ChurnPoint is one turnover-rate cell of the churn sweep.
type ChurnPoint struct {
	// Rate is the configured per-epoch turnover fraction.
	Rate float64
	// Joins and Leaves count the membership events actually drawn over
	// the cell's epochs.
	Joins  int
	Leaves int
	// RepairRounds is the mean gossip rounds per epoch the incremental
	// repair needed to re-converge.
	RepairRounds float64
	// RepairMsgs is the mean overlay messages per epoch spent
	// re-converging after incremental repair.
	RepairMsgs float64
	// RebuildMsgs is the mean overlay messages a from-scratch rebuild
	// of the same post-churn overlay spends converging — the baseline
	// the incremental path is up against.
	RebuildMsgs float64
	// MeasIncremental is the mean new tree measurements per epoch the
	// incremental joins needed; MeasRebuild is what rebuilding the tree
	// from scratch over the same survivors would have measured.
	MeasIncremental float64
	MeasRebuild     float64
	// RR and WPR are the return rate and wrong-pair rate of
	// decentralized queries on the churned framework, against the
	// ground-truth bandwidth.
	RR  float64
	WPR float64
	// StaleRejects counts pre-epoch cluster indexes that refused a
	// post-epoch query via the membership-epoch guard; every epoch with
	// churn should contribute one.
	StaleRejects int
	// FixedPoint reports whether the final incrementally repaired
	// overlay state equals a from-scratch build's fixed point exactly.
	FixedPoint bool
}

// ChurnResult is the churn measurement sweep.
type ChurnResult struct {
	Dataset Dataset
	N       int
	K       int
	Points  []ChurnPoint
}

// poisson draws a Poisson(lambda) variate from rng (Knuth's product
// method; lambdas here are tiny).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// RunChurn sweeps turnover rates. Every cell starts from the same seed:
// a pool of 2N hosts with ground-truth bandwidth, a prediction tree
// built over a random N of them, and its converged overlay; then Epochs
// rounds of Poisson joins/leaves are applied with incremental repair and
// measured.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	k, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 32
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0.1, 0.2, 0.3, 0.5}
	}
	if cfg.Epochs < 1 || cfg.Queries < 1 || cfg.BSteps < 1 {
		return nil, fmt.Errorf("sim: churn needs positive Epochs, Queries and BSteps")
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}
	pool := 2 * cfg.N

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	topo, err := dataset.NewTopology(dsCfg.WithN(pool), dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: churn topology: %w", err)
	}
	bw, err := topo.Matrix(dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: churn dataset: %w", err)
	}
	realDist, err := metric.DistanceFromBandwidth(bw, cfg.C)
	if err != nil {
		return nil, fmt.Errorf("sim: churn transform: %w", err)
	}
	bValues := linspace(bLo, bHi, cfg.BSteps)
	classes, err := overlay.ClassesFromBandwidths(bValues, cfg.C)
	if err != nil {
		return nil, err
	}
	ovCfg := overlay.Config{NCut: cfg.NCut, Classes: classes}

	out := &ChurnResult{Dataset: cfg.Dataset, N: cfg.N, K: k}
	for cell, rate := range cfg.Rates {
		pt, err := runChurnCell(cfg, rate, int64(cell), bw, realDist, ovCfg, k, bValues)
		if err != nil {
			return nil, fmt.Errorf("sim: churn rate=%v: %w", rate, err)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// runChurnCell lives through cfg.Epochs churn epochs at one turnover
// rate and aggregates the cell's measurements.
func runChurnCell(cfg ChurnConfig, rate float64, cell int64, bw, realDist *metric.Matrix,
	ovCfg overlay.Config, k int, bValues []float64) (ChurnPoint, error) {
	pt := ChurnPoint{Rate: rate}
	rng := rand.New(rand.NewSource(cfg.Seed + 100 + 1000*cell))
	perm := rng.Perm(realDist.N())
	alive := append([]int(nil), perm[:cfg.N]...)
	standby := append([]int(nil), perm[cfg.N:]...)

	tree, err := predtree.Build(realDist, cfg.C, predtree.SearchAnchor,
		append([]int(nil), alive...))
	if err != nil {
		return pt, err
	}
	nw, err := overlay.NewNetwork(tree, ovCfg)
	if err != nil {
		return pt, err
	}
	if _, err := nw.Converge(0); err != nil {
		return pt, err
	}

	minAlive := k + 2
	var rr RateAccumulator
	var wpr WPRAccumulator
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Tag a cluster index with the pre-epoch membership epoch; churn
		// below must invalidate it.
		distM, _ := tree.DistMatrix()
		ix, err := cluster.NewIndexAt(distM, tree.Epoch())
		if err != nil {
			return pt, err
		}

		lambda := rate * float64(len(alive)) / 2
		leaves := poisson(rng, lambda)
		joins := poisson(rng, lambda)
		if max := len(alive) - minAlive; leaves > max {
			leaves = max
		}
		if len(standby) < joins {
			joins = len(standby)
		}
		measBefore := tree.Measurements()
		for i := 0; i < leaves; i++ {
			vi := rng.Intn(len(alive))
			victim := alive[vi]
			alive[vi] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
			standby = append(standby, victim)
			if err := tree.Remove(victim); err != nil {
				return pt, err
			}
		}
		for i := 0; i < joins; i++ {
			joiner := standby[0]
			standby = standby[1:]
			alive = append(alive, joiner)
			if err := tree.Add(joiner, realDist); err != nil {
				return pt, err
			}
		}
		pt.Leaves += leaves
		pt.Joins += joins
		pt.MeasIncremental += float64(tree.Measurements() - measBefore)

		// Incremental repair: resync the overlay to the repaired tree and
		// re-converge, counting what it cost.
		msgs0 := nw.Stats().Messages()
		nw.Resync()
		rounds, err := nw.Converge(0)
		if err != nil {
			return pt, err
		}
		pt.RepairRounds += float64(rounds)
		pt.RepairMsgs += float64(nw.Stats().Messages() - msgs0)

		// Rebuild baselines over the same survivors: the overlay from
		// scratch (messages) and the tree from scratch (measurements).
		fresh, err := overlay.NewNetwork(tree, ovCfg)
		if err != nil {
			return pt, err
		}
		if _, err := fresh.Converge(0); err != nil {
			return pt, err
		}
		pt.RebuildMsgs += float64(fresh.Stats().Messages())
		rebuilt, err := predtree.Build(realDist, cfg.C, predtree.SearchAnchor,
			append([]int(nil), alive...))
		if err != nil {
			return pt, err
		}
		pt.MeasRebuild += float64(rebuilt.Measurements())

		// The pre-epoch index must refuse to answer at the post-churn
		// membership epoch.
		if leaves+joins > 0 {
			b := bValues[rng.Intn(len(bValues))]
			l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
			if err != nil {
				return pt, err
			}
			if _, err := ix.FindAt(tree.Epoch(), k, l); errors.Is(err, cluster.ErrStaleIndex) {
				pt.StaleRejects++
			} else {
				return pt, fmt.Errorf("epoch %d: pre-churn index answered at post-churn epoch (err=%v)", epoch, err)
			}
		}

		// Query quality on the churned framework.
		for q := 0; q < cfg.Queries; q++ {
			b := bValues[rng.Intn(len(bValues))]
			l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
			if err != nil {
				return pt, err
			}
			start := alive[rng.Intn(len(alive))]
			res, err := nw.Query(start, k, l)
			if err != nil {
				return pt, err
			}
			rr.Add(res.Found())
			if res.Found() {
				wpr.Add(bw, res.Cluster, b)
			}
		}
	}
	ep := float64(cfg.Epochs)
	pt.RepairRounds /= ep
	pt.RepairMsgs /= ep
	pt.RebuildMsgs /= ep
	pt.MeasIncremental /= ep
	pt.MeasRebuild /= ep
	pt.RR = rr.Value()
	pt.WPR = wpr.Value()

	// The incrementally repaired overlay must sit at exactly the fixed
	// point a from-scratch build reaches.
	final, err := overlay.NewNetwork(tree, ovCfg)
	if err != nil {
		return pt, err
	}
	if _, err := final.Converge(0); err != nil {
		return pt, err
	}
	pt.FixedPoint = networksEqual(final, nw)
	return pt, nil
}

// networksEqual reports whether two synchronous overlays hold identical
// gossip state (selfCRT, per-neighbor aggregated node info and CRT).
func networksEqual(a, b *overlay.Network) bool {
	ah, bh := a.Hosts(), b.Hosts()
	if len(ah) != len(bh) {
		return false
	}
	for _, x := range ah {
		if !equalIntSlices(a.SelfCRT(x), b.SelfCRT(x)) {
			return false
		}
		if !equalIntSlices(a.Neighbors(x), b.Neighbors(x)) {
			return false
		}
		for _, m := range a.Neighbors(x) {
			if !equalIntSlices(a.AggrNode(x, m), b.AggrNode(x, m)) {
				return false
			}
			if !equalIntSlices(a.CRT(x, m), b.CRT(x, m)) {
				return false
			}
		}
	}
	return true
}
