package sim

import (
	"sync"
	"sync/atomic"

	"bwcluster/internal/cluster"
)

// forEachIndexed runs fn(i) for every i in [0, n) across a pool of
// workers (workers < 1: one per CPU) and returns the lowest-index error,
// if any. Each experiment runner that sweeps an independent series —
// treeness noise levels, ablation curves, scalability sizes — derives all
// randomness for slot i from the config seed alone, so fanning the slots
// out changes nothing but wall-clock time: results land at their own
// index, and the emitted series order is identical to the sequential
// sweep's.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	workers = cluster.Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
