package sim

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/stats"
)

// ScalabilityConfig parameterizes the Fig. 6 experiment: how the number of
// query routing hops grows with system size.
type ScalabilityConfig struct {
	// Base selects the generator family (paper: UMD subsets).
	Base Dataset
	// NValues is the sweep of system sizes (nil: 50..300 step 50).
	NValues []int
	// DatasetsPerN is how many random subsets per size (paper: 10).
	DatasetsPerN int
	// QueriesPerFramework is how many queries each framework receives.
	QueriesPerFramework int
	// Rounds is the number of frameworks per dataset (paper: 10).
	Rounds int
	// BSteps is how many bandwidth classes span the band.
	BSteps int
	NCut   int
	C      float64
	Seed   int64
	// Parallelism bounds the worker pool fanning the per-size data
	// series out (0: one worker per CPU, 1: sequential). Every size
	// derives its randomness from Seed and its own parameters, so the
	// fan-out never changes results.
	Parallelism int
}

// DefaultScalabilityConfig returns the paper-scale Fig. 6 configuration.
func DefaultScalabilityConfig() ScalabilityConfig {
	return ScalabilityConfig{
		Base:                UMD,
		NValues:             []int{50, 100, 150, 200, 250, 300},
		DatasetsPerN:        10,
		QueriesPerFramework: 100, // 1000 queries per dataset over 10 frameworks
		Rounds:              10,
		BSteps:              7,
		NCut:                overlay.DefaultNCut,
		C:                   metric.DefaultC,
		Seed:                4,
	}
}

// Scaled returns a copy with work multiplied by f.
func (c ScalabilityConfig) Scaled(f float64) ScalabilityConfig {
	c.DatasetsPerN = scaleInt(c.DatasetsPerN, f)
	c.QueriesPerFramework = scaleInt(c.QueriesPerFramework, f)
	c.Rounds = scaleInt(c.Rounds, f)
	return c
}

// ScalePoint is one x-axis position of Fig. 6, extended with the
// background messaging cost that makes the search "scalable" in the
// paper's sense: each peer's per-round traffic is bounded by its degree
// times n_cut, independent of n.
type ScalePoint struct {
	N       int
	AvgHops float64
	MaxHops int
	RR      float64
	// MsgsPerHostRound is the average number of protocol messages one
	// host sends per background round until convergence.
	MsgsPerHostRound float64
	// ConvergeRounds is the average number of rounds to the gossip fixed
	// point.
	ConvergeRounds float64
}

// ScalabilityResult is the Fig. 6 reproduction.
type ScalabilityResult struct {
	Base   Dataset
	Points []ScalePoint
}

// RunScalability executes the Fig. 6 experiment: for each system size,
// random subsets of the base dataset host decentralized frameworks, and
// random queries (k = 5%..30% of n, b across the band) are traced for
// routing hops.
func RunScalability(cfg ScalabilityConfig) (*ScalabilityResult, error) {
	baseCfg, err := cfg.Base.Config()
	if err != nil {
		return nil, err
	}
	_, bLo, bHi, err := cfg.Base.Band()
	if err != nil {
		return nil, err
	}
	if cfg.NValues == nil {
		cfg.NValues = DefaultScalabilityConfig().NValues
	}
	if cfg.DatasetsPerN < 1 || cfg.QueriesPerFramework < 1 || cfg.Rounds < 1 || cfg.BSteps < 1 {
		return nil, fmt.Errorf("sim: scalability needs positive DatasetsPerN, QueriesPerFramework, Rounds and BSteps")
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	base, err := dataset.Generate(baseCfg, dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: scalability base dataset: %w", err)
	}
	bValues := linspace(bLo, bHi, cfg.BSteps)
	classes, err := overlay.ClassesFromBandwidths(bValues, cfg.C)
	if err != nil {
		return nil, err
	}

	out := &ScalabilityResult{Base: cfg.Base}
	out.Points = make([]ScalePoint, len(cfg.NValues))
	err = forEachIndexed(len(cfg.NValues), cfg.Parallelism, func(ni int) error {
		n := cfg.NValues[ni]
		if n > base.N() {
			return fmt.Errorf("sim: subset size %d exceeds base %d", n, base.N())
		}
		var hopSamples []int
		rr := &RateAccumulator{}
		maxHops := 0
		msgsPerHostRound, convergeRounds := 0.0, 0.0
		frameworks := 0
		for ds := 0; ds < cfg.DatasetsPerN; ds++ {
			subRng := rand.New(rand.NewSource(cfg.Seed + 40000 + int64(n)*131 + int64(ds)))
			bw, err := dataset.RandomSubset(base, n, subRng)
			if err != nil {
				return err
			}
			for round := 0; round < cfg.Rounds; round++ {
				rng := rand.New(rand.NewSource(cfg.Seed + 80000 + int64(n)*257 + int64(ds)*17 + int64(round)))
				fw, err := BuildFramework(bw, FrameworkConfig{C: cfg.C, NCut: cfg.NCut, Classes: classes, Parallelism: 1}, rng)
				if err != nil {
					return fmt.Errorf("sim: scalability n=%d: %w", n, err)
				}
				hosts := fw.Net.Hosts()
				frameworks++
				if rounds := fw.Net.Rounds(); rounds > 0 {
					convergeRounds += float64(rounds)
					msgsPerHostRound += float64(fw.Net.Stats().Messages()) /
						float64(rounds) / float64(len(hosts))
				}
				for q := 0; q < cfg.QueriesPerFramework; q++ {
					kLo, kHi := n/20, (3*n)/10 // 5% .. 30%
					if kLo < 2 {
						kLo = 2
					}
					if kHi <= kLo {
						kHi = kLo + 1
					}
					k := kLo + rng.Intn(kHi-kLo)
					b := bValues[rng.Intn(len(bValues))]
					l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
					if err != nil {
						return err
					}
					start := hosts[rng.Intn(len(hosts))]
					res, err := fw.Net.Query(start, k, l)
					if err != nil {
						return fmt.Errorf("sim: scalability query: %w", err)
					}
					hopSamples = append(hopSamples, res.Hops)
					if res.Hops > maxHops {
						maxHops = res.Hops
					}
					rr.Add(res.Found())
				}
			}
		}
		avg, err := stats.MeanInt(hopSamples)
		if err != nil {
			return err
		}
		pt := ScalePoint{N: n, AvgHops: avg, MaxHops: maxHops, RR: rr.Value()}
		if frameworks > 0 {
			pt.MsgsPerHostRound = msgsPerHostRound / float64(frameworks)
			pt.ConvergeRounds = convergeRounds / float64(frameworks)
		}
		out.Points[ni] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
