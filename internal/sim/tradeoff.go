package sim

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
)

// TradeoffConfig parameterizes the Fig. 4 experiment (return rate vs
// cluster size constraint, centralized vs decentralized).
type TradeoffConfig struct {
	Dataset Dataset
	// KValues is the sweep of size constraints (nil: the paper's range —
	// 2..90 for HP, 2..150 for UMD, in 12 steps).
	KValues []int
	// BSteps is how many bandwidth classes span the dataset band.
	BSteps int
	// QueriesPerK is how many queries each round submits per k (with b
	// drawn randomly from the classes).
	QueriesPerK int
	// Rounds is the number of frameworks (the paper uses 100).
	Rounds int
	NCut   int
	C      float64
	Seed   int64
	// Parallelism bounds the per-round framework construction worker
	// pool (0: one worker per CPU, 1: sequential). It never changes
	// results.
	Parallelism int
}

// DefaultTradeoffConfig returns the paper-scale Fig. 4 configuration.
func DefaultTradeoffConfig(ds Dataset) TradeoffConfig {
	return TradeoffConfig{
		Dataset:     ds,
		BSteps:      7,
		QueriesPerK: 8, // ~100 queries per round over the k sweep
		Rounds:      100,
		NCut:        overlay.DefaultNCut,
		C:           metric.DefaultC,
		Seed:        2,
	}
}

// Scaled returns a copy with rounds and query counts multiplied by f.
func (c TradeoffConfig) Scaled(f float64) TradeoffConfig {
	c.Rounds = scaleInt(c.Rounds, f)
	c.QueriesPerK = scaleInt(c.QueriesPerK, f)
	return c
}

// TradeoffPoint is one x-axis position of Fig. 4.
type TradeoffPoint struct {
	K  int
	RR map[Approach]float64
}

// TradeoffResult is the Fig. 4 reproduction for one dataset.
type TradeoffResult struct {
	Dataset Dataset
	NCut    int
	Points  []TradeoffPoint
}

// RunTradeoff executes the Fig. 4 experiment: as k grows, the
// decentralized return rate falls below the centralized one because each
// peer only aggregates n_cut nodes per direction.
func RunTradeoff(cfg TradeoffConfig) (*TradeoffResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	_, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	if cfg.KValues == nil {
		kMax := 90
		if cfg.Dataset == UMD {
			kMax = 150
		}
		cfg.KValues = intRange(2, kMax, 12)
	}
	if cfg.BSteps < 1 || cfg.QueriesPerK < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("sim: tradeoff needs positive BSteps, QueriesPerK and Rounds")
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	bw, err := dataset.Generate(dsCfg, dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: tradeoff dataset: %w", err)
	}
	bValues := linspace(bLo, bHi, cfg.BSteps)
	classes, err := overlay.ClassesFromBandwidths(bValues, cfg.C)
	if err != nil {
		return nil, err
	}

	rrs := make(map[int]map[Approach]*RateAccumulator, len(cfg.KValues))
	for _, k := range cfg.KValues {
		rrs[k] = map[Approach]*RateAccumulator{TreeCentral: {}, TreeDecentral: {}}
	}
	for round := 0; round < cfg.Rounds; round++ {
		rng := rand.New(rand.NewSource(cfg.Seed + 5000 + int64(round)))
		fw, err := BuildFramework(bw, FrameworkConfig{
			C: cfg.C, NCut: cfg.NCut, Classes: classes, Parallelism: cfg.Parallelism,
		}, rng)
		if err != nil {
			return nil, fmt.Errorf("sim: tradeoff round %d: %w", round, err)
		}
		hosts := fw.Net.Hosts()
		for _, k := range cfg.KValues {
			for q := 0; q < cfg.QueriesPerK; q++ {
				b := bValues[rng.Intn(len(bValues))]
				l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
				if err != nil {
					return nil, err
				}
				central, err := fw.TreeIdx.Find(k, l)
				if err != nil {
					return nil, err
				}
				rrs[k][TreeCentral].Add(central != nil)
				start := hosts[rng.Intn(len(hosts))]
				res, err := fw.Net.Query(start, k, l)
				if err != nil {
					return nil, fmt.Errorf("sim: tradeoff query: %w", err)
				}
				rrs[k][TreeDecentral].Add(res.Found())
			}
		}
	}

	out := &TradeoffResult{Dataset: cfg.Dataset, NCut: cfg.NCut}
	for _, k := range cfg.KValues {
		out.Points = append(out.Points, TradeoffPoint{
			K: k,
			RR: map[Approach]float64{
				TreeCentral:   rrs[k][TreeCentral].Value(),
				TreeDecentral: rrs[k][TreeDecentral].Value(),
			},
		})
	}
	return out, nil
}

// intRange returns steps integers spanning [lo, hi] as evenly as possible.
func intRange(lo, hi, steps int) []int {
	if steps <= 1 || hi <= lo {
		return []int{lo}
	}
	out := make([]int, 0, steps)
	prev := lo - 1
	for i := 0; i < steps; i++ {
		v := lo + (hi-lo)*i/(steps-1)
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}
