package sim

import (
	"math/rand"
	"testing"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/stats"
)

func TestDatasetHelpers(t *testing.T) {
	for _, ds := range []Dataset{HP, UMD} {
		cfg, err := ds.Config()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.N == 0 {
			t.Errorf("%s: empty config", ds)
		}
		k, lo, hi, err := ds.Band()
		if err != nil {
			t.Fatal(err)
		}
		if k < 2 || lo <= 0 || hi <= lo {
			t.Errorf("%s: band k=%d lo=%v hi=%v", ds, k, lo, hi)
		}
	}
	if _, err := Dataset("bogus").Config(); err == nil {
		t.Error("bogus dataset should fail")
	}
	if _, _, _, err := Dataset("bogus").Band(); err == nil {
		t.Error("bogus dataset band should fail")
	}
}

func smallBW(t *testing.T, n int) *metric.Matrix {
	t.Helper()
	bw, err := dataset.Generate(dataset.HPConfig().WithN(n), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return bw
}

func TestBuildFramework(t *testing.T) {
	bw := smallBW(t, 30)
	classes, err := overlay.ClassesFromBandwidths([]float64{20, 40, 60}, 100)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := BuildFramework(bw, FrameworkConfig{C: 100, Classes: classes, Euclid: true},
		rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if fw.Forest.Len() != 30 || fw.PredDist.N() != 30 {
		t.Fatalf("sizes: forest=%d pred=%d", fw.Forest.Len(), fw.PredDist.N())
	}
	if fw.Net == nil || fw.Emb == nil || fw.EuclIdx == nil || fw.TreeIdx == nil {
		t.Fatal("framework components missing")
	}
	if bwp := fw.PredictedBandwidth(0, 1); bwp <= 0 {
		t.Errorf("predicted bandwidth %v", bwp)
	}
	if _, err := fw.EuclideanBandwidth(0, 1); err != nil {
		t.Error(err)
	}
	// Without Euclid the baseline accessor must fail.
	fw2, err := BuildFramework(bw, FrameworkConfig{C: 100}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if fw2.Net != nil || fw2.Emb != nil {
		t.Error("unrequested components were built")
	}
	if _, err := fw2.EuclideanBandwidth(0, 1); err == nil {
		t.Error("EuclideanBandwidth without embedding should fail")
	}
	if _, err := BuildFramework(bw, FrameworkConfig{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestWrongPairsAndAccumulators(t *testing.T) {
	bw := metric.NewMatrix(3)
	bw.Set(0, 1, 50)
	bw.Set(0, 2, 10)
	bw.Set(1, 2, 30)
	w, total := WrongPairs(bw, []int{0, 1, 2}, 20)
	if w != 1 || total != 3 {
		t.Errorf("WrongPairs = %d/%d, want 1/3", w, total)
	}
	var acc WPRAccumulator
	if acc.Value() != 0 {
		t.Error("empty accumulator should be 0")
	}
	acc.Add(bw, []int{0, 1, 2}, 20)
	acc.Add(bw, []int{0, 1}, 20)
	if acc.Pairs() != 4 || acc.Value() != 0.25 {
		t.Errorf("acc = %v over %d", acc.Value(), acc.Pairs())
	}
	var rate RateAccumulator
	if rate.Value() != 0 {
		t.Error("empty rate should be 0")
	}
	rate.Add(true)
	rate.Add(false)
	if rate.Count() != 2 || rate.Value() != 0.5 {
		t.Errorf("rate = %v over %d", rate.Value(), rate.Count())
	}
}

func TestRelativeErrorsPerfectPredictor(t *testing.T) {
	bw := smallBW(t, 10)
	errsList := RelativeErrors(bw, func(u, v int) float64 { return bw.At(u, v) })
	for _, e := range errsList {
		if e != 0 {
			t.Fatalf("perfect predictor error %v", e)
		}
	}
	if len(errsList) != 45 {
		t.Errorf("got %d errors, want 45", len(errsList))
	}
}

func TestDownsampleCDF(t *testing.T) {
	bw := smallBW(t, 20)
	cdf, err := ErrCDF(bw, func(u, v int) float64 { return bw.At(u, v) * 1.1 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdf) > 10 {
		t.Errorf("cdf has %d points, want <= 10", len(cdf))
	}
	if cdf[len(cdf)-1].F != 1 {
		t.Errorf("cdf must end at 1, got %v", cdf[len(cdf)-1].F)
	}
}

func TestLinspaceAndIntRange(t *testing.T) {
	ls := linspace(0, 10, 3)
	if len(ls) != 3 || ls[0] != 0 || ls[1] != 5 || ls[2] != 10 {
		t.Errorf("linspace = %v", ls)
	}
	if got := linspace(7, 9, 1); len(got) != 1 || got[0] != 7 {
		t.Errorf("linspace n=1 = %v", got)
	}
	ir := intRange(2, 10, 5)
	if ir[0] != 2 || ir[len(ir)-1] != 10 {
		t.Errorf("intRange = %v", ir)
	}
	if got := intRange(5, 5, 3); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate intRange = %v", got)
	}
	if got := scaleInt(10, 0.001); got != 1 {
		t.Errorf("scaleInt floor = %d", got)
	}
}

// Fig. 3 shape: WPR does not decrease with b overall; the tree approaches
// beat the Euclidean baseline at the top of the band; centralized and
// decentralized tree clustering are comparable; prediction error CDFs put
// TREE above EUCL (smaller errors).
func TestAccuracyShape(t *testing.T) {
	cfg := DefaultAccuracyConfig(HP).Scaled(0.15)
	cfg.Seed = 11
	res, err := RunAccuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	for _, a := range []Approach{TreeCentral, TreeDecentral, EuclCentral} {
		if last.WPR[a] < first.WPR[a] {
			t.Errorf("%s: WPR decreased across the band: %v -> %v", a, first.WPR[a], last.WPR[a])
		}
	}
	if last.WPR[EuclCentral] <= last.WPR[TreeCentral] {
		t.Errorf("EUCL (%v) should exceed TREE-CENTRAL (%v) at the hardest constraint",
			last.WPR[EuclCentral], last.WPR[TreeCentral])
	}
	// Tree error CDF dominates (higher F at the median error level).
	treeCDF, euclCDF := res.ErrCDF[TreeCentral], res.ErrCDF[EuclCentral]
	if len(treeCDF) == 0 || len(euclCDF) == 0 {
		t.Fatal("missing error CDFs")
	}
	fTree := cdfValueAt(treeCDF, 0.5)
	fEucl := cdfValueAt(euclCDF, 0.5)
	if fTree <= fEucl {
		t.Errorf("tree CDF at err=0.5 (%v) should exceed euclid's (%v)", fTree, fEucl)
	}
}

// cdfValueAt evaluates a stepwise CDF at x.
func cdfValueAt(points []stats.CDFPoint, x float64) float64 {
	f := 0.0
	for _, p := range points {
		if p.X > x {
			break
		}
		f = p.F
	}
	return f
}

func TestAccuracyValidation(t *testing.T) {
	cfg := DefaultAccuracyConfig(HP)
	cfg.Rounds = 0
	if _, err := RunAccuracy(cfg); err == nil {
		t.Error("rounds=0 should fail")
	}
	cfg = DefaultAccuracyConfig("bogus")
	if _, err := RunAccuracy(cfg); err == nil {
		t.Error("bogus dataset should fail")
	}
}

// Fig. 4 shape: RR decreases with k; decentralized never exceeds
// centralized; they coincide at small k; decentralized collapses for very
// large k.
func TestTradeoffShape(t *testing.T) {
	cfg := DefaultTradeoffConfig(HP).Scaled(0.12)
	cfg.Seed = 12
	res, err := RunTradeoff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if first.RR[TreeCentral] < 0.9 || first.RR[TreeDecentral] < 0.9 {
		t.Errorf("k=2 should almost always succeed: %v / %v",
			first.RR[TreeCentral], first.RR[TreeDecentral])
	}
	if last.RR[TreeCentral] > first.RR[TreeCentral] {
		t.Error("centralized RR should fall with k")
	}
	for _, p := range res.Points {
		if p.RR[TreeDecentral] > p.RR[TreeCentral]+0.05 {
			t.Errorf("k=%d: decentralized RR %v above centralized %v",
				p.K, p.RR[TreeDecentral], p.RR[TreeCentral])
		}
	}
	// At the hardest queries the decentralization penalty must be visible:
	// a clear RR gap below the centralized algorithm.
	if gap := last.RR[TreeCentral] - last.RR[TreeDecentral]; gap < 0.1 {
		t.Errorf("no decentralization gap at k=%d: central=%v decentral=%v",
			last.K, last.RR[TreeCentral], last.RR[TreeDecentral])
	}
}

func TestTradeoffValidation(t *testing.T) {
	cfg := DefaultTradeoffConfig(HP)
	cfg.QueriesPerK = 0
	if _, err := RunTradeoff(cfg); err == nil {
		t.Error("QueriesPerK=0 should fail")
	}
	if _, err := RunTradeoff(TradeoffConfig{Dataset: "bogus"}); err == nil {
		t.Error("bogus dataset should fail")
	}
}

// Fig. 5 shape: with paired datasets, WPR (averaged over the mid-density
// band) increases with epsilon_avg, and so does the normalized WPR.
func TestTreenessShape(t *testing.T) {
	cfg := DefaultTreenessConfig(HP).Scaled(0.5)
	cfg.Noises = []float64{0.02, 0.25, 0.6}
	cfg.Seed = 13
	res, err := RunTreeness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	mid := func(s TreenessSeries) (wpr float64) {
		cnt := 0
		for _, p := range s.Points {
			if p.FB > 0.2 && p.FB < 0.8 {
				wpr += p.WPR
				cnt++
			}
		}
		if cnt > 0 {
			wpr /= float64(cnt)
		}
		return wpr
	}
	prevEps, prevWPR := -1.0, -1.0
	for _, s := range res.Series {
		if s.EpsAvg <= prevEps {
			t.Fatalf("epsilon not increasing with noise: %v after %v", s.EpsAvg, prevEps)
		}
		w := mid(s)
		if w < prevWPR {
			t.Fatalf("WPR not monotone in treeness: %v after %v", w, prevWPR)
		}
		prevEps, prevWPR = s.EpsAvg, w
	}
	// The normalization must preserve the ordering too.
	lo, hi := res.Series[0], res.Series[len(res.Series)-1]
	midNorm := func(s TreenessSeries) (v float64) {
		cnt := 0
		for _, p := range s.Points {
			if p.FB > 0.2 && p.FB < 0.8 {
				v += p.WPRNorm
				cnt++
			}
		}
		if cnt > 0 {
			v /= float64(cnt)
		}
		return v
	}
	if midNorm(hi) <= midNorm(lo) {
		t.Errorf("normalized WPR ordering lost: %v <= %v", midNorm(hi), midNorm(lo))
	}
}

func TestTreenessValidation(t *testing.T) {
	cfg := DefaultTreenessConfig(HP)
	cfg.Rounds = 0
	if _, err := RunTreeness(cfg); err == nil {
		t.Error("rounds=0 should fail")
	}
	if _, err := RunTreeness(TreenessConfig{Base: "bogus"}); err == nil {
		t.Error("bogus dataset should fail")
	}
}

// Fig. 6 shape: average hops are small (single digits) and grow slowly
// with n; return rates stay high for these moderate queries.
func TestScalabilityShape(t *testing.T) {
	cfg := DefaultScalabilityConfig().Scaled(0.1)
	cfg.NValues = []int{50, 150, 250}
	cfg.Seed = 14
	res, err := RunScalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.AvgHops < 0 || p.AvgHops > 8 {
			t.Errorf("n=%d: avg hops %v outside the small-hop regime", p.N, p.AvgHops)
		}
		if p.RR < 0.5 {
			t.Errorf("n=%d: RR %v unexpectedly low", p.N, p.RR)
		}
	}
	if res.Points[0].AvgHops > res.Points[len(res.Points)-1].AvgHops+0.5 {
		t.Errorf("hops should not shrink substantially with n: %v -> %v",
			res.Points[0].AvgHops, res.Points[len(res.Points)-1].AvgHops)
	}
}

func TestScalabilityValidation(t *testing.T) {
	cfg := DefaultScalabilityConfig()
	cfg.DatasetsPerN = 0
	if _, err := RunScalability(cfg); err == nil {
		t.Error("DatasetsPerN=0 should fail")
	}
	cfg = DefaultScalabilityConfig()
	cfg.NValues = []int{100000}
	cfg.DatasetsPerN = 1
	if _, err := RunScalability(cfg); err == nil {
		t.Error("oversized subset should fail")
	}
	if _, err := RunScalability(ScalabilityConfig{Base: "bogus", DatasetsPerN: 1, QueriesPerFramework: 1, Rounds: 1, BSteps: 1}); err == nil {
		t.Error("bogus dataset should fail")
	}
}

// n_cut ablation: a larger cutoff can only help the decentralized return
// rate (checked on aggregate over the sweep).
func TestNCutAblationOrdering(t *testing.T) {
	base := DefaultTradeoffConfig(HP).Scaled(0.06)
	base.Seed = 21
	res, err := RunNCutAblation(base, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	sum := func(c NCutCurve) float64 {
		total := 0.0
		for _, p := range c.Points {
			total += p.RR[TreeDecentral]
		}
		return total
	}
	if sum(res.Curves[1]) < sum(res.Curves[0]) {
		t.Errorf("n_cut=16 aggregate RR %v below n_cut=4's %v",
			sum(res.Curves[1]), sum(res.Curves[0]))
	}
	if _, err := RunNCutAblation(base, []int{0}); err == nil {
		t.Error("n_cut=0 should fail")
	}
}

func TestTreesAblationRuns(t *testing.T) {
	base := DefaultAccuracyConfig(HP).Scaled(0.05)
	base.Seed = 22
	res, err := RunTreesAblation(base, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 || len(res.Curves[0].Points) == 0 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if _, err := RunTreesAblation(base, []int{0}); err == nil {
		t.Error("trees=0 should fail")
	}
}

// Dynamics: once conditions drift, the framework that keeps rebuilding
// from fresh measurements out-predicts the stale one (aggregate WPR over
// the post-drift epochs).
func TestDynamicsRefreshBeatsStale(t *testing.T) {
	cfg := DefaultDynamicsConfig(HP)
	cfg.Seed = 23
	res, err := RunDynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != cfg.Epochs {
		t.Fatalf("points = %d", len(res.Points))
	}
	first := res.Points[0]
	if first.WPRStale != first.WPRRefreshed {
		t.Errorf("epoch 0 must be identical: %v vs %v", first.WPRStale, first.WPRRefreshed)
	}
	staleSum, freshSum := 0.0, 0.0
	for _, p := range res.Points[1:] {
		staleSum += p.WPRStale
		freshSum += p.WPRRefreshed
	}
	if staleSum <= freshSum {
		t.Errorf("stale aggregate WPR %v not above refreshed %v", staleSum, freshSum)
	}
}

func TestDynamicsValidation(t *testing.T) {
	cfg := DefaultDynamicsConfig(HP)
	cfg.Epochs = 0
	if _, err := RunDynamics(cfg); err == nil {
		t.Error("epochs=0 should fail")
	}
	cfg = DefaultDynamicsConfig(HP)
	cfg.DriftSigma = -1
	if _, err := RunDynamics(cfg); err == nil {
		t.Error("negative drift should fail")
	}
	if _, err := RunDynamics(DynamicsConfig{Dataset: "bogus", Epochs: 1, QueriesPerEpoch: 1, BSteps: 1}); err == nil {
		t.Error("bogus dataset should fail")
	}
}

// Construction cost: the decentralized anchor search must measure
// strictly less per join than the full scan, at every size, with the
// advantage not shrinking as the system grows.
func TestConstructionCostShape(t *testing.T) {
	cfg := DefaultConstructionConfig().Scaled(0.4)
	cfg.NValues = []int{60, 240}
	cfg.Seed = 24
	res, err := RunConstructionCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.AnchorPerJoin >= p.FullPerJoin {
			t.Errorf("n=%d: anchor %v >= full %v", p.N, p.AnchorPerJoin, p.FullPerJoin)
		}
	}
	small, large := res.Points[0], res.Points[1]
	if large.AnchorPerJoin/large.FullPerJoin > small.AnchorPerJoin/small.FullPerJoin*1.3 {
		t.Errorf("anchor advantage shrinks with n: ratios %v -> %v",
			small.AnchorPerJoin/small.FullPerJoin, large.AnchorPerJoin/large.FullPerJoin)
	}
	cfg.Rounds = 0
	if _, err := RunConstructionCost(cfg); err == nil {
		t.Error("rounds=0 should fail")
	}
	cfg = DefaultConstructionConfig()
	cfg.NValues = []int{10000}
	if _, err := RunConstructionCost(cfg); err == nil {
		t.Error("oversized subset should fail")
	}
}

// SWORD comparison: the exhaustive baseline's cost must grow with k and
// its budget-bounded RR must fall below the tree approach's for large k.
func TestSwordComparisonShape(t *testing.T) {
	cfg := DefaultSwordConfig(HP).Scaled(0.5)
	cfg.Seed = 25
	res, err := RunSwordComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if first.SwordRR < 0.99 || first.SwordSteps > 50 {
		t.Errorf("easy queries should be cheap for SWORD: %+v", first)
	}
	if last.SwordSteps <= first.SwordSteps*5 {
		t.Errorf("SWORD cost did not grow: %v -> %v", first.SwordSteps, last.SwordSteps)
	}
	if last.SwordExhausted == 0 {
		t.Error("hard queries never exhausted the budget")
	}
	// The baseline never reports wrong pairs by construction; the tree
	// approach trades a small WPR for answering more queries at large k.
	if last.TreeRR < last.SwordRR {
		t.Errorf("tree RR %v below SWORD's %v at k=%d", last.TreeRR, last.SwordRR, last.K)
	}
	if res.TreeMeasurements >= float64(res.SwordMeasurements) {
		t.Errorf("framework measured %v distinct pairs, SWORD needs %d",
			res.TreeMeasurements, res.SwordMeasurements)
	}
	cfg.Budget = 0
	if _, err := RunSwordComparison(cfg); err == nil {
		t.Error("budget=0 should fail")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	cfg := DefaultTreenessConfig(HP).Scaled(0.1)
	cfg.Noises = []float64{0.1}
	a, err := RunTreeness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTreeness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series[0].Points {
		if a.Series[0].Points[i] != b.Series[0].Points[i] {
			t.Fatalf("treeness not deterministic at point %d", i)
		}
	}
}
