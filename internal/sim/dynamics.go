package sim

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
)

// DynamicsConfig parameterizes the dynamic-clustering experiment. The
// paper's fifth requirement says cluster membership must adapt as network
// conditions change; the underlying framework restructures itself, so the
// interesting measurement is how much accuracy a *stale* framework loses
// as bandwidth drifts, compared to one rebuilt from fresh measurements.
type DynamicsConfig struct {
	Dataset Dataset
	// N restricts the experiment to a subset (0: 120 hosts).
	N int
	// K is the query size constraint (0: the dataset's paper value).
	K int
	// Epochs is how many drift steps to simulate.
	Epochs int
	// DriftSigma is the per-epoch lognormal drift of every pair.
	DriftSigma float64
	// QueriesPerEpoch is the decentralized query count per epoch (split
	// across the frameworks).
	QueriesPerEpoch int
	// Frameworks is how many frameworks each side averages over (framework
	// construction is itself randomized, so a single build is noisy).
	Frameworks int
	NCut       int
	BSteps     int
	C          float64
	Seed       int64
	// Parallelism bounds the worker pool inside each framework build
	// (0: one worker per CPU, 1: sequential); it never changes results.
	// Epochs themselves stay sequential — each drifts the previous state.
	Parallelism int
}

// DefaultDynamicsConfig returns a moderate drift scenario.
func DefaultDynamicsConfig(ds Dataset) DynamicsConfig {
	return DynamicsConfig{
		Dataset:         ds,
		N:               120,
		Epochs:          8,
		DriftSigma:      0.2,
		QueriesPerEpoch: 60,
		Frameworks:      3,
		NCut:            overlay.DefaultNCut,
		BSteps:          7,
		C:               metric.DefaultC,
		Seed:            6,
	}
}

// Scaled returns a copy with the per-epoch query count multiplied by f.
func (c DynamicsConfig) Scaled(f float64) DynamicsConfig {
	c.QueriesPerEpoch = scaleInt(c.QueriesPerEpoch, f)
	return c
}

// DynamicsPoint compares the stale and the refreshed framework at one
// drift epoch.
type DynamicsPoint struct {
	Epoch int
	// WPRStale/WPRRefreshed are wrong-pair rates against the CURRENT
	// (drifted) bandwidth.
	WPRStale     float64
	WPRRefreshed float64
	RRStale      float64
	RRRefreshed  float64
}

// DynamicsResult is the dynamic-clustering measurement series.
type DynamicsResult struct {
	Dataset    Dataset
	DriftSigma float64
	K          int
	Points     []DynamicsPoint
}

// RunDynamics drifts the bandwidth matrix epoch by epoch. The stale
// framework is built once from the epoch-0 measurements and never
// updated; the refreshed framework is rebuilt from the current
// measurements each epoch (what the self-restructuring prediction
// framework achieves continuously).
func RunDynamics(cfg DynamicsConfig) (*DynamicsResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	k, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	if cfg.K > 0 {
		k = cfg.K
	}
	if cfg.N <= 0 {
		cfg.N = 120
	}
	if cfg.Epochs < 1 || cfg.QueriesPerEpoch < 1 || cfg.BSteps < 1 {
		return nil, fmt.Errorf("sim: dynamics needs positive Epochs, QueriesPerEpoch and BSteps")
	}
	if cfg.Frameworks < 1 {
		cfg.Frameworks = 3
	}
	if cfg.DriftSigma < 0 {
		return nil, fmt.Errorf("sim: drift sigma must be >= 0")
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	topo, err := dataset.NewTopology(dsCfg.WithN(cfg.N), dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: dynamics topology: %w", err)
	}
	bw, err := topo.Matrix(dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: dynamics dataset: %w", err)
	}
	bValues := linspace(bLo, bHi, cfg.BSteps)
	classes, err := overlay.ClassesFromBandwidths(bValues, cfg.C)
	if err != nil {
		return nil, err
	}
	fwCfg := FrameworkConfig{C: cfg.C, NCut: cfg.NCut, Classes: classes, Parallelism: cfg.Parallelism}

	// The stale frameworks share the epoch-0 refresh seeds, so both sides
	// start identical and the curves separate only through drift.
	stale := make([]*Framework, cfg.Frameworks)
	for f := range stale {
		rng := rand.New(rand.NewSource(cfg.Seed + 200 + int64(f)*1000))
		if stale[f], err = BuildFramework(bw, fwCfg, rng); err != nil {
			return nil, fmt.Errorf("sim: dynamics stale framework %d: %w", f, err)
		}
	}

	out := &DynamicsResult{Dataset: cfg.Dataset, DriftSigma: cfg.DriftSigma, K: k}
	current := bw
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if epoch > 0 {
			// Link capacities drift; the topology (and treeness) stays.
			if err := topo.Evolve(cfg.DriftSigma, dataRng); err != nil {
				return nil, err
			}
			current, err = topo.Matrix(dataRng)
			if err != nil {
				return nil, err
			}
		}
		fresh := make([]*Framework, cfg.Frameworks)
		for f := range fresh {
			rng := rand.New(rand.NewSource(cfg.Seed + 200 + int64(f)*1000 + int64(epoch)))
			if fresh[f], err = BuildFramework(current, fwCfg, rng); err != nil {
				return nil, fmt.Errorf("sim: dynamics refresh epoch %d: %w", epoch, err)
			}
		}
		pt := DynamicsPoint{Epoch: epoch}
		queryRng := rand.New(rand.NewSource(cfg.Seed + 300 + int64(epoch)))
		var wprStale, wprFresh WPRAccumulator
		var rrStale, rrFresh RateAccumulator
		for q := 0; q < cfg.QueriesPerEpoch; q++ {
			b := bValues[queryRng.Intn(len(bValues))]
			l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
			if err != nil {
				return nil, err
			}
			start := queryRng.Intn(cfg.N)
			fw := q % cfg.Frameworks
			sres, err := stale[fw].Net.Query(start, k, l)
			if err != nil {
				return nil, err
			}
			rrStale.Add(sres.Found())
			if sres.Found() {
				wprStale.Add(current, sres.Cluster, b)
			}
			fres, err := fresh[fw].Net.Query(start, k, l)
			if err != nil {
				return nil, err
			}
			rrFresh.Add(fres.Found())
			if fres.Found() {
				wprFresh.Add(current, fres.Cluster, b)
			}
		}
		pt.WPRStale = wprStale.Value()
		pt.WPRRefreshed = wprFresh.Value()
		pt.RRStale = rrStale.Value()
		pt.RRRefreshed = rrFresh.Value()
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
