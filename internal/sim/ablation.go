package sim

import "fmt"

// NCutCurve is one Fig. 4-style RR curve measured at a specific n_cut.
type NCutCurve struct {
	NCut   int
	Points []TradeoffPoint
}

// NCutAblationResult sweeps the gossip cutoff: the paper fixes n_cut=10
// and argues the decentralization tradeoff follows from it; this ablation
// shows how the RR gap moves as the cutoff changes.
type NCutAblationResult struct {
	Dataset Dataset
	Curves  []NCutCurve
}

// RunNCutAblation reruns the Fig. 4 experiment for each n_cut value on
// the same dataset and seeds. The curves are independent (each rerun
// derives its randomness from base.Seed alone), so base.Parallelism fans
// them out across workers without changing any curve.
func RunNCutAblation(base TradeoffConfig, nCuts []int) (*NCutAblationResult, error) {
	if len(nCuts) == 0 {
		nCuts = []int{5, 10, 20}
	}
	for _, nCut := range nCuts {
		if nCut < 1 {
			return nil, fmt.Errorf("sim: n_cut must be >= 1, got %d", nCut)
		}
	}
	out := &NCutAblationResult{Dataset: base.Dataset}
	out.Curves = make([]NCutCurve, len(nCuts))
	err := forEachIndexed(len(nCuts), base.Parallelism, func(i int) error {
		cfg := base
		cfg.NCut = nCuts[i]
		cfg.Parallelism = 1 // the curve fan-out is the parallel axis
		res, err := RunTradeoff(cfg)
		if err != nil {
			return fmt.Errorf("sim: ncut ablation (n_cut=%d): %w", nCuts[i], err)
		}
		out.Curves[i] = NCutCurve{NCut: nCuts[i], Points: res.Points}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TreesCurve is one Fig. 3-style WPR sweep measured at a specific
// prediction-forest size.
type TreesCurve struct {
	Trees  int
	Points []AccuracyPoint
}

// TreesAblationResult sweeps the prediction-forest size, quantifying how
// much of the tree approach's accuracy comes from the multi-tree median.
type TreesAblationResult struct {
	Dataset Dataset
	Curves  []TreesCurve
}

// RunTreesAblation reruns the Fig. 3 WPR sweep for each forest size. As
// in RunNCutAblation, base.Parallelism fans the independent curves out.
func RunTreesAblation(base AccuracyConfig, sizes []int) (*TreesAblationResult, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 3, 5}
	}
	for _, trees := range sizes {
		if trees < 1 {
			return nil, fmt.Errorf("sim: forest size must be >= 1, got %d", trees)
		}
	}
	out := &TreesAblationResult{Dataset: base.Dataset}
	out.Curves = make([]TreesCurve, len(sizes))
	err := forEachIndexed(len(sizes), base.Parallelism, func(i int) error {
		cfg := base
		cfg.Trees = sizes[i]
		cfg.Parallelism = 1 // the curve fan-out is the parallel axis
		res, err := RunAccuracy(cfg)
		if err != nil {
			return fmt.Errorf("sim: trees ablation (trees=%d): %w", sizes[i], err)
		}
		out.Curves[i] = TreesCurve{Trees: sizes[i], Points: res.Points}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
