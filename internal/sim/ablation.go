package sim

import "fmt"

// NCutCurve is one Fig. 4-style RR curve measured at a specific n_cut.
type NCutCurve struct {
	NCut   int
	Points []TradeoffPoint
}

// NCutAblationResult sweeps the gossip cutoff: the paper fixes n_cut=10
// and argues the decentralization tradeoff follows from it; this ablation
// shows how the RR gap moves as the cutoff changes.
type NCutAblationResult struct {
	Dataset Dataset
	Curves  []NCutCurve
}

// RunNCutAblation reruns the Fig. 4 experiment for each n_cut value on
// the same dataset and seeds.
func RunNCutAblation(base TradeoffConfig, nCuts []int) (*NCutAblationResult, error) {
	if len(nCuts) == 0 {
		nCuts = []int{5, 10, 20}
	}
	out := &NCutAblationResult{Dataset: base.Dataset}
	for _, nCut := range nCuts {
		if nCut < 1 {
			return nil, fmt.Errorf("sim: n_cut must be >= 1, got %d", nCut)
		}
		cfg := base
		cfg.NCut = nCut
		res, err := RunTradeoff(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: ncut ablation (n_cut=%d): %w", nCut, err)
		}
		out.Curves = append(out.Curves, NCutCurve{NCut: nCut, Points: res.Points})
	}
	return out, nil
}

// TreesCurve is one Fig. 3-style WPR sweep measured at a specific
// prediction-forest size.
type TreesCurve struct {
	Trees  int
	Points []AccuracyPoint
}

// TreesAblationResult sweeps the prediction-forest size, quantifying how
// much of the tree approach's accuracy comes from the multi-tree median.
type TreesAblationResult struct {
	Dataset Dataset
	Curves  []TreesCurve
}

// RunTreesAblation reruns the Fig. 3 WPR sweep for each forest size.
func RunTreesAblation(base AccuracyConfig, sizes []int) (*TreesAblationResult, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 3, 5}
	}
	out := &TreesAblationResult{Dataset: base.Dataset}
	for _, trees := range sizes {
		if trees < 1 {
			return nil, fmt.Errorf("sim: forest size must be >= 1, got %d", trees)
		}
		cfg := base
		cfg.Trees = trees
		res, err := RunAccuracy(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: trees ablation (trees=%d): %w", trees, err)
		}
		out.Curves = append(out.Curves, TreesCurve{Trees: trees, Points: res.Points})
	}
	return out, nil
}
