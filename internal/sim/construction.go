package sim

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/predtree"
)

// ConstructionConfig parameterizes the framework-construction cost
// experiment: how many bandwidth measurements a joining host performs
// under the centralized (full scan) and decentralized (anchor-tree
// search) end-node strategies.
type ConstructionConfig struct {
	Base    Dataset
	NValues []int
	Rounds  int
	C       float64
	Seed    int64
	// Parallelism bounds the worker pool fanning the per-size series out
	// (0: one worker per CPU, 1: sequential); it never changes results.
	Parallelism int
}

// DefaultConstructionConfig sweeps 50..300 hosts over 5 rounds.
func DefaultConstructionConfig() ConstructionConfig {
	return ConstructionConfig{
		Base:    UMD,
		NValues: []int{50, 100, 150, 200, 250, 300},
		Rounds:  5,
		C:       metric.DefaultC,
		Seed:    7,
	}
}

// Scaled returns a copy with the round count multiplied by f.
func (c ConstructionConfig) Scaled(f float64) ConstructionConfig {
	c.Rounds = scaleInt(c.Rounds, f)
	return c
}

// ConstructionPoint reports the average measurements per joining host at
// one system size.
type ConstructionPoint struct {
	N             int
	FullPerJoin   float64
	AnchorPerJoin float64
}

// ConstructionResult is the construction-cost series.
type ConstructionResult struct {
	Base   Dataset
	Points []ConstructionPoint
}

// RunConstructionCost builds prediction trees in both search modes over
// subsets of the base dataset and reports the per-join measurement cost.
func RunConstructionCost(cfg ConstructionConfig) (*ConstructionResult, error) {
	baseCfg, err := cfg.Base.Config()
	if err != nil {
		return nil, err
	}
	if cfg.NValues == nil {
		cfg.NValues = DefaultConstructionConfig().NValues
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("sim: construction needs positive Rounds")
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	dataRng := rand.New(rand.NewSource(cfg.Seed))
	base, err := dataset.Generate(baseCfg, dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: construction dataset: %w", err)
	}
	out := &ConstructionResult{Base: cfg.Base}
	out.Points = make([]ConstructionPoint, len(cfg.NValues))
	err = forEachIndexed(len(cfg.NValues), cfg.Parallelism, func(ni int) error {
		n := cfg.NValues[ni]
		if n > base.N() {
			return fmt.Errorf("sim: subset size %d exceeds base %d", n, base.N())
		}
		fullTotal, anchorTotal := 0, 0
		for round := 0; round < cfg.Rounds; round++ {
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(n)*31 + int64(round)))
			bw, err := dataset.RandomSubset(base, n, rng)
			if err != nil {
				return err
			}
			d, err := metric.DistanceFromBandwidth(bw, cfg.C)
			if err != nil {
				return err
			}
			order := rng.Perm(n)
			full, err := predtree.Build(d, cfg.C, predtree.SearchFull, order)
			if err != nil {
				return err
			}
			anchor, err := predtree.Build(d, cfg.C, predtree.SearchAnchor, order)
			if err != nil {
				return err
			}
			fullTotal += full.Measurements()
			anchorTotal += anchor.Measurements()
		}
		joins := float64(cfg.Rounds * n)
		out.Points[ni] = ConstructionPoint{
			N:             n,
			FullPerJoin:   float64(fullTotal) / joins,
			AnchorPerJoin: float64(anchorTotal) / joins,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
