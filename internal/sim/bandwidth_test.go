package sim

import "testing"

// TestRunBandwidthReconciles runs the bandwidth experiment small and
// checks the acceptance invariant: the ledger's cumulative message
// count equals the transport delivered-frame counter's movement across
// the run (same sites, message for message), phase windows are closed
// in order with real traffic, and every tracked link joins against a
// positive predicted bandwidth.
func TestRunBandwidthReconciles(t *testing.T) {
	cfg := DefaultBandwidthConfig(HP)
	cfg.N = 16
	cfg.Queries = 10
	res, err := RunBandwidth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 || res.Phases[0].Name != "gossip" || res.Phases[1].Name != "queries" {
		t.Fatalf("phases = %+v, want [gossip queries]", res.Phases)
	}
	if res.LedgerMessages == 0 || res.LedgerBytes == 0 {
		t.Fatal("ledger accounted no traffic")
	}
	if uint64(res.LedgerMessages) != res.DeliveredDelta {
		t.Fatalf("ledger messages %d != delivered-counter delta %d — transport accounting diverged",
			res.LedgerMessages, res.DeliveredDelta)
	}
	gossip := res.Phases[0].Window
	if gossip.Seq != 0 || gossip.TotalBytes == 0 || len(gossip.Links) == 0 {
		t.Fatalf("gossip window = seq %d, %d bytes, %d links", gossip.Seq, gossip.TotalBytes, len(gossip.Links))
	}
	queries := res.Phases[1].Window
	if queries.Seq != 1 {
		t.Fatalf("query window seq = %d, want 1", queries.Seq)
	}
	for _, lw := range gossip.Links {
		if lw.PredictedMbps <= 0 {
			t.Fatalf("link %d-%d missing prediction join: %+v", lw.A, lw.B, lw)
		}
		if lw.BytesPerSec <= 0 {
			t.Fatalf("link %d-%d has no rate: %+v", lw.A, lw.B, lw)
		}
	}
	// Window totals plus the still-open tail must cover the cumulative
	// ledger account exactly (tracked + other is exact per window).
	var windowed int64
	for _, p := range res.Phases {
		windowed += p.Window.TotalBytes
	}
	if windowed > res.LedgerBytes {
		t.Fatalf("windows account %d bytes > cumulative %d", windowed, res.LedgerBytes)
	}
}
