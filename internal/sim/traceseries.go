package sim

import (
	"fmt"
	"math/rand"
	"time"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/runtime"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// TraceSeriesConfig parameterizes the traced-faults experiment: the
// asynchronous runtime is run over seeded gossip loss, every query is
// traced, and each loss level measures how complete the reassembled
// span trees stay — the observability plane's own fidelity under the
// faults it exists to explain.
type TraceSeriesConfig struct {
	Dataset Dataset
	// N restricts the experiment to a subset (0: 24 hosts).
	N int
	// Losses are the gossip drop rates to sweep (nil: 0, 0.1, 0.3).
	Losses []float64
	// Queries is the per-level traced query count.
	Queries int
	// Tick is the runtime gossip period (0: 1ms).
	Tick time.Duration
	// SettleQuiet and SettleTimeout bound the convergence wait (0: 150ms
	// and 30s).
	SettleQuiet   time.Duration
	SettleTimeout time.Duration
	NCut          int
	BSteps        int
	C             float64
	Seed          int64
	// Parallelism bounds the framework-construction worker pool; the
	// loss levels themselves run sequentially (each times a live
	// runtime).
	Parallelism int
	// Flight, when non-nil, is attached to every runtime so the series
	// leaves a black-box record (bwc-sim wires the process recorder
	// here for -flight-dump).
	Flight *telemetry.FlightRecorder
}

// DefaultTraceSeriesConfig returns the grid recorded in
// results/trace_series.txt.
func DefaultTraceSeriesConfig(ds Dataset) TraceSeriesConfig {
	return TraceSeriesConfig{
		Dataset: ds,
		N:       24,
		Losses:  []float64{0, 0.1, 0.3},
		Queries: 30,
		Tick:    time.Millisecond,
		NCut:    overlay.DefaultNCut,
		BSteps:  7,
		C:       metric.DefaultC,
		Seed:    11,
	}
}

// Scaled returns a copy with the per-level query count multiplied by f.
func (c TraceSeriesConfig) Scaled(f float64) TraceSeriesConfig {
	c.Queries = scaleInt(c.Queries, f)
	return c
}

// TraceSeriesPoint is one loss level of the traced series.
type TraceSeriesPoint struct {
	// Loss is the injected gossip drop rate.
	Loss float64
	// Queries is how many traced queries ran at this level.
	Queries int
	// Agreement is the fraction of queries whose findability agreed
	// with the synchronous engine.
	Agreement float64
	// AvgHops is the mean overlay hop count per query.
	AvgHops float64
	// CompleteTraces counts queries whose span tree carried every
	// expected hop event (res.Hops+2) and no gap span.
	CompleteTraces int
	// GapTraces counts queries whose tree contained at least one
	// explicit gap span (a dropped trace report, surfaced instead of
	// silently corrupting the tree).
	GapTraces int
	// AvgHopEvents is the mean number of hop events assembled per trace.
	AvgHopEvents float64
	// MaxGossipAgeTicks is the health monitor's gossip-age watermark
	// after the query batch.
	MaxGossipAgeTicks uint64
	// Converged reports whether the settled runtime matched the
	// synchronous fixed point exactly.
	Converged bool
}

// TraceSeriesResult is the traced-faults measurement series.
type TraceSeriesResult struct {
	Dataset Dataset
	N       int
	K       int
	Points  []TraceSeriesPoint
}

// RunTraceSeries builds one prediction framework, converges the
// synchronous reference, then for each loss level runs the asynchronous
// runtime over a seeded GossipOnly FaultTransport, settles it, and runs
// traced queries, measuring answer agreement and trace completeness.
func RunTraceSeries(cfg TraceSeriesConfig) (*TraceSeriesResult, error) {
	dsCfg, err := cfg.Dataset.Config()
	if err != nil {
		return nil, err
	}
	k, bLo, bHi, err := cfg.Dataset.Band()
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 24
	}
	if len(cfg.Losses) == 0 {
		cfg.Losses = []float64{0, 0.1, 0.3}
	}
	if cfg.Queries < 1 || cfg.BSteps < 1 {
		return nil, fmt.Errorf("sim: trace series needs positive Queries and BSteps")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.SettleQuiet <= 0 {
		cfg.SettleQuiet = 150 * time.Millisecond
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 30 * time.Second
	}
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}

	dataRng := rand.New(rand.NewSource(cfg.Seed))
	topo, err := dataset.NewTopology(dsCfg.WithN(cfg.N), dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: trace series topology: %w", err)
	}
	bw, err := topo.Matrix(dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: trace series dataset: %w", err)
	}
	classes, err := overlay.ClassesFromBandwidths(linspace(bLo, bHi, cfg.BSteps), cfg.C)
	if err != nil {
		return nil, err
	}
	fw, err := BuildFramework(bw, FrameworkConfig{
		C: cfg.C, NCut: cfg.NCut, Classes: classes, Parallelism: cfg.Parallelism,
	}, dataRng)
	if err != nil {
		return nil, fmt.Errorf("sim: trace series framework: %w", err)
	}
	nw := fw.Net
	hosts := nw.Hosts()
	ovCfg := overlay.Config{NCut: cfg.NCut, Classes: classes}

	out := &TraceSeriesResult{Dataset: cfg.Dataset, N: cfg.N, K: k}
	for i, loss := range cfg.Losses {
		pt, err := runTraceLevel(cfg, fw, nw, hosts, ovCfg, loss, int64(i+1), k, bLo, bHi)
		if err != nil {
			return nil, fmt.Errorf("sim: trace series loss=%v: %w", loss, err)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// runTraceLevel measures one loss level: settled traced queries, their
// span-tree completeness, and the health watermark after the batch.
func runTraceLevel(cfg TraceSeriesConfig, fw *Framework, nw *overlay.Network, hosts []int,
	ovCfg overlay.Config, loss float64, level int64, k int, bLo, bHi float64) (TraceSeriesPoint, error) {
	pt := TraceSeriesPoint{Loss: loss, Queries: cfg.Queries}
	ft, err := transport.NewFault(transport.NewChan(0), transport.FaultConfig{
		Seed:       cfg.Seed + 1000*level,
		Drop:       loss,
		GossipOnly: true,
	})
	if err != nil {
		return pt, err
	}
	rt, err := runtime.NewWithTransport(fw.Forest, ovCfg, cfg.Tick, ft, nil)
	if err != nil {
		ft.Close()
		return pt, err
	}
	rt.SetFlight(cfg.Flight)
	rt.Start()
	defer func() {
		rt.Stop()
		ft.Close()
	}()
	if err := rt.Settle(cfg.SettleQuiet, cfg.SettleTimeout); err != nil {
		return pt, err
	}
	pt.Converged = runtimeAtFixedPoint(nw, rt)

	queryRng := rand.New(rand.NewSource(cfg.Seed + 500 + level))
	bValues := linspace(bLo, bHi, cfg.BSteps)
	agree, hops, events := 0, 0, 0
	for q := 0; q < cfg.Queries; q++ {
		b := bValues[queryRng.Intn(len(bValues))]
		l, err := metric.DistanceForBandwidthConstraint(b, cfg.C)
		if err != nil {
			return pt, err
		}
		start := hosts[queryRng.Intn(len(hosts))]
		want, err := nw.Query(start, k, l)
		if err != nil {
			return pt, err
		}
		span := telemetry.StartSpan("query")
		got, err := rt.QueryTraced(start, k, l, cfg.SettleTimeout, span)
		span.Finish()
		if err != nil {
			return pt, err
		}
		if want.Found() == got.Found() {
			agree++
		}
		hops += got.Hops
		ev, _ := span.Attr("hopEvents").(int)
		events += ev
		gaps := countGapSpans(span)
		if gaps > 0 {
			pt.GapTraces++
		} else if ev == got.Hops+2 {
			pt.CompleteTraces++
		}
	}
	pt.Agreement = float64(agree) / float64(cfg.Queries)
	pt.AvgHops = float64(hops) / float64(cfg.Queries)
	pt.AvgHopEvents = float64(events) / float64(cfg.Queries)
	pt.MaxGossipAgeTicks = rt.Health().MaxGossipAgeTicks
	return pt, nil
}

// countGapSpans walks a span tree counting explicit "gap" spans (the
// marker AttachEvents plants where a hop report never arrived).
func countGapSpans(s *telemetry.Span) int {
	if s == nil {
		return 0
	}
	n := 0
	if s.Name() == "gap" {
		n++
	}
	for _, c := range s.Children() {
		n += countGapSpans(c)
	}
	return n
}
