// Package sim is the experiment harness that regenerates the paper's
// evaluation (Figures 3-6). It wires the substrates together — synthetic
// datasets, the prediction-tree framework, the decentralized overlay, and
// the Vivaldi/k-diameter Euclidean baseline — into per-figure runners with
// deterministic seeding, and computes the paper's metrics (WPR, RR,
// relative prediction error, routing hops).
package sim

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/cluster"
	"bwcluster/internal/dataset"
	"bwcluster/internal/kdiam"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/vivaldi"
)

// Approach identifies one of the compared systems, named as in the paper
// (the dataset prefix is implied by context).
type Approach string

const (
	// TreeCentral is Algorithm 1 run centrally on the prediction-tree
	// bandwidth estimates (HP/UMD-TREE-CENTRAL).
	TreeCentral Approach = "TREE-CENTRAL"
	// TreeDecentral is the full decentralized protocol
	// (HP/UMD-TREE-DECENTRAL).
	TreeDecentral Approach = "TREE-DECENTRAL"
	// EuclCentral is the comparison model: Vivaldi 2-d embedding plus the
	// k-diameter algorithm (HP/UMD-EUCL-CENTRAL).
	EuclCentral Approach = "EUCL-CENTRAL"
)

// Dataset selects one of the two evaluation datasets.
type Dataset string

const (
	// HP is the 190-node HP-PlanetLab-like dataset.
	HP Dataset = "HP"
	// UMD is the 317-node UMD-PlanetLab-like dataset.
	UMD Dataset = "UMD"
)

// Config returns the generator configuration for the dataset.
func (d Dataset) Config() (dataset.Config, error) {
	switch d {
	case HP:
		return dataset.HPConfig(), nil
	case UMD:
		return dataset.UMDConfig(), nil
	default:
		return dataset.Config{}, fmt.Errorf("sim: unknown dataset %q", d)
	}
}

// Band returns the paper's query bandwidth band and size constraint for
// the dataset (HP: k=10, b in 15-75; UMD: k=16, b in 30-110).
func (d Dataset) Band() (k int, bLo, bHi float64, err error) {
	switch d {
	case HP:
		return 10, 15, 75, nil
	case UMD:
		return 16, 30, 110, nil
	default:
		return 0, 0, 0, fmt.Errorf("sim: unknown dataset %q", d)
	}
}

// DefaultTrees is the default prediction-forest size. Three trees with
// median prediction cancel most single-tree placement noise (Sequoia's
// multi-tree heuristic) at triple the construction cost.
const DefaultTrees = 3

// FrameworkConfig controls which prediction frameworks a Framework builds.
type FrameworkConfig struct {
	// C is the rational-transform constant.
	C float64
	// Search selects the prediction-tree end-node search mode.
	Search predtree.SearchMode
	// Trees is the prediction-forest size (0: DefaultTrees).
	Trees int
	// NCut and Classes configure the decentralized overlay; the overlay is
	// only built when Classes is non-empty.
	NCut    int
	Classes []float64
	// Euclid builds the Vivaldi embedding and its k-diameter index.
	Euclid bool
	// Vivaldi overrides the embedding parameters (zero value: defaults).
	Vivaldi vivaldi.Config
	// Parallelism bounds the worker pool for forest construction and
	// index precomputation (0: one worker per CPU, 1: sequential).
	// Parallelism never changes results.
	Parallelism int
}

// Framework bundles everything one simulation round (one seed) needs: the
// ground-truth bandwidth, the tree-metric prediction framework, and
// optionally the decentralized overlay and the Euclidean baseline.
type Framework struct {
	C        float64
	BW       *metric.Matrix // ground truth bandwidth (Mbps)
	RealDist *metric.Matrix // rational transform of BW
	Forest   *predtree.Forest
	PredDist *metric.Matrix // predicted (median) distances, host-indexed
	TreeIdx  *cluster.Index // Algorithm 1 index over PredDist
	Net      *overlay.Network
	Emb      *vivaldi.Embedding
	EuclIdx  *kdiam.Index
}

// BuildFramework constructs the frameworks for one round: hosts join the
// prediction tree in a random order drawn from rng (this is what differs
// between the paper's "10 different frameworks with different random
// seeds").
func BuildFramework(bw *metric.Matrix, cfg FrameworkConfig, rng *rand.Rand) (*Framework, error) {
	if cfg.C <= 0 {
		cfg.C = metric.DefaultC
	}
	if cfg.Search == 0 {
		cfg.Search = predtree.SearchAnchor
	}
	if cfg.NCut == 0 {
		cfg.NCut = overlay.DefaultNCut
	}
	if cfg.Trees == 0 {
		cfg.Trees = DefaultTrees
	}
	if rng == nil {
		return nil, fmt.Errorf("sim: nil rng")
	}
	realDist, err := metric.DistanceFromBandwidth(bw, cfg.C)
	if err != nil {
		return nil, fmt.Errorf("sim: transform bandwidth: %w", err)
	}
	forest, err := predtree.BuildForestParallel(realDist, cfg.C, cfg.Search, cfg.Trees, rng, cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("sim: build prediction forest: %w", err)
	}
	f := &Framework{C: cfg.C, BW: bw, RealDist: realDist, Forest: forest}

	// Host-indexed predicted distances.
	dm, hosts := forest.DistMatrix()
	pred := metric.NewMatrix(bw.N())
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			pred.Set(hosts[i], hosts[j], dm.Dist(i, j))
		}
	}
	f.PredDist = pred
	if f.TreeIdx, err = cluster.NewIndexParallelAt(pred, cfg.Parallelism, forest.Epoch()); err != nil {
		return nil, fmt.Errorf("sim: tree cluster index: %w", err)
	}

	if len(cfg.Classes) > 0 {
		net, err := overlay.NewNetwork(forest, overlay.Config{NCut: cfg.NCut, Classes: cfg.Classes})
		if err != nil {
			return nil, fmt.Errorf("sim: overlay: %w", err)
		}
		if _, err := net.Converge(0); err != nil {
			return nil, fmt.Errorf("sim: overlay converge: %w", err)
		}
		f.Net = net
	}

	if cfg.Euclid {
		vcfg := cfg.Vivaldi
		if vcfg == (vivaldi.Config{}) {
			vcfg = vivaldi.DefaultConfig()
		}
		emb, err := vivaldi.Embed(realDist, vcfg, rng)
		if err != nil {
			return nil, fmt.Errorf("sim: vivaldi embed: %w", err)
		}
		f.Emb = emb
		pts := make([]kdiam.Point, emb.N())
		for i := range pts {
			c := emb.Coord(i)
			pts[i] = kdiam.Point{X: c.X, Y: c.Y}
		}
		f.EuclIdx = kdiam.NewIndex(pts)
	}
	return f, nil
}

// PredictedBandwidth returns the tree framework's bandwidth estimate for a
// host pair.
func (f *Framework) PredictedBandwidth(u, v int) float64 {
	d := f.PredDist.Dist(u, v)
	if d <= 0 {
		return f.C / 1e-9
	}
	return f.C / d
}

// EuclideanBandwidth returns the Vivaldi baseline's bandwidth estimate.
func (f *Framework) EuclideanBandwidth(u, v int) (float64, error) {
	if f.Emb == nil {
		return 0, fmt.Errorf("sim: framework built without the Euclidean baseline")
	}
	d := f.Emb.Dist(u, v)
	if d <= 0 {
		return f.C / 1e-9, nil
	}
	return f.C / d, nil
}

// linspace returns n evenly spaced values from lo to hi inclusive.
func linspace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
