// Package testutil provides deterministic generators shared by the test
// suites of several packages: exact tree metrics (for correctness
// properties that only hold in tree metric spaces) and noisy variants.
package testutil

import (
	"math/rand"

	"bwcluster/internal/metric"
)

// RandomTreeMetric builds a random edge-weighted tree with n leaves and
// returns the induced n-by-n leaf-to-leaf distance matrix. By Buneman's
// theorem the result satisfies the four-point condition exactly.
func RandomTreeMetric(n int, rng *rand.Rand) *metric.Matrix {
	total := 2*n - 1
	if total < 1 {
		total = 1
	}
	parent := make([]int, total)
	weight := make([]float64, total)
	parent[0] = -1
	for v := 1; v < total; v++ {
		parent[v] = rng.Intn(v)
		weight[v] = 0.5 + rng.Float64()*10
	}
	depth := make([]float64, total)
	order := make([][]int, total) // ancestor paths, computed lazily below
	for v := 1; v < total; v++ {
		depth[v] = depth[parent[v]] + weight[v]
	}
	anc := func(v int) []int {
		if order[v] != nil {
			return order[v]
		}
		var path []int
		for u := v; u != -1; u = parent[u] {
			path = append(path, u)
		}
		order[v] = path
		return path
	}
	dist := func(a, b int) float64 {
		pa, pb := anc(a), anc(b)
		onA := make(map[int]bool, len(pa))
		for _, v := range pa {
			onA[v] = true
		}
		lca := 0
		for _, v := range pb {
			if onA[v] {
				lca = v
				break
			}
		}
		return depth[a] + depth[b] - 2*depth[lca]
	}
	return metric.FromFunc(n, func(i, j int) float64 { return dist(i, j) })
}

// NoisyTreeMetric perturbs each pairwise distance of a random tree metric
// by an independent multiplicative factor uniform in [1-noise, 1+noise].
// noise = 0 yields an exact tree metric; larger noise lowers treeness.
func NoisyTreeMetric(n int, noise float64, rng *rand.Rand) *metric.Matrix {
	base := RandomTreeMetric(n, rng)
	if noise <= 0 {
		return base
	}
	return metric.FromFunc(n, func(i, j int) float64 {
		f := 1 + (rng.Float64()*2-1)*noise
		if f < 0.05 {
			f = 0.05
		}
		return base.Dist(i, j) * f
	})
}

// Perm returns a random permutation of 0..n-1.
func Perm(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}
