package kdiam

import (
	"math/rand"
	"testing"
)

func randPoints(n int, scale float64, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * scale, Y: rng.Float64() * scale}
	}
	return pts
}

// bruteMatching computes maximum bipartite matching size by backtracking.
func bruteMatching(g *bipartite) int {
	usedR := make([]bool, g.nRight)
	var rec func(u int) int
	rec = func(u int) int {
		if u == g.nLeft {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range g.adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if got := 1 + rec(u+1); got > best {
					best = got
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		nl, nr := 1+rng.Intn(7), 1+rng.Intn(7)
		g := &bipartite{nLeft: nl, nRight: nr, adj: make([][]int, nl)}
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Float64() < 0.4 {
					g.adj[u] = append(g.adj[u], v)
				}
			}
		}
		matchL, matchR := g.maxMatching()
		size := 0
		for u, v := range matchL {
			if v != unmatched {
				size++
				if matchR[v] != u {
					t.Fatalf("inconsistent matching: matchL[%d]=%d but matchR[%d]=%d", u, v, v, matchR[v])
				}
			}
		}
		if want := bruteMatching(g); size != want {
			t.Fatalf("trial %d: HK size %d, brute force %d", trial, size, want)
		}
	}
}

func TestMaxIndependentSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		nl, nr := 1+rng.Intn(6), 1+rng.Intn(6)
		g := &bipartite{nLeft: nl, nRight: nr, adj: make([][]int, nl)}
		edges := 0
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Float64() < 0.35 {
					g.adj[u] = append(g.adj[u], v)
					edges++
				}
			}
		}
		left, right := g.maxIndependentSet()
		// Independence: no selected cross edge.
		for u := 0; u < nl; u++ {
			if !left[u] {
				continue
			}
			for _, v := range g.adj[u] {
				if right[v] {
					t.Fatalf("trial %d: edge (%d,%d) inside independent set", trial, u, v)
				}
			}
		}
		// Maximality via König: |MIS| = nl + nr - maxMatching.
		size := 0
		for _, ok := range left {
			if ok {
				size++
			}
		}
		for _, ok := range right {
			if ok {
				size++
			}
		}
		if want := nl + nr - bruteMatching(g); size != want {
			t.Fatalf("trial %d: MIS size %d, want %d (edges=%d)", trial, size, want, edges)
		}
	}
}

func TestFindClusterValidation(t *testing.T) {
	pts := randPoints(5, 10, rand.New(rand.NewSource(3)))
	if _, err := FindCluster(pts, 1, 5); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := FindCluster(pts, 2, -1); err == nil {
		t.Error("l<0 should fail")
	}
}

func TestFindClusterSimple(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {0, 1}, {50, 50}, {51, 50}}
	got, err := FindCluster(pts, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !Valid(pts, got, 2) {
		t.Fatalf("got %v", got)
	}
	got, err = FindCluster(pts, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("impossible query returned %v", got)
	}
}

// Exactness: FindCluster succeeds exactly when brute force does, on random
// point sets, and its output always satisfies the constraint.
func TestFindClusterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		pts := randPoints(n, 10, rng)
		for _, l := range []float64{1, 3, 6, 15} {
			for k := 2; k <= n; k++ {
				fast, err := FindCluster(pts, k, l)
				if err != nil {
					t.Fatal(err)
				}
				slow := BruteForce(pts, k, l)
				if (fast == nil) != (slow == nil) {
					t.Fatalf("n=%d k=%d l=%v: kdiam=%v brute=%v pts=%v", n, k, l, fast, slow, pts)
				}
				if fast != nil {
					if len(fast) != k {
						t.Fatalf("size %d, want %d", len(fast), k)
					}
					if !Valid(pts, fast, l*(1+1e-9)) {
						t.Fatalf("n=%d k=%d l=%v: %v violates constraint", n, k, l, fast)
					}
				}
			}
		}
	}
}

func TestMaxClusterSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		pts := randPoints(n, 10, rng)
		for _, l := range []float64{2, 5, 20} {
			got := MaxClusterSize(pts, l)
			// Brute-force maximum.
			want := 1
			for k := 2; k <= n; k++ {
				if BruteForce(pts, k, l) != nil {
					want = k
				}
			}
			if got != want {
				t.Fatalf("n=%d l=%v: MaxClusterSize=%d brute=%d", n, l, got, want)
			}
		}
	}
	if got := MaxClusterSize(nil, 5); got != 0 {
		t.Errorf("empty points: %d", got)
	}
	if got := MaxClusterSize([]Point{{0, 0}}, 5); got != 1 {
		t.Errorf("single point: %d", got)
	}
}

// Geometric fact the algorithm relies on: two points in the same half-lens
// of a pair (p,q) are within d(p,q) of each other.
func TestHalfLensDiameterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		p := Point{X: 0, Y: 0}
		q := Point{X: 1 + rng.Float64()*10, Y: 0}
		d := p.Dist(q)
		// Sample points in the lens.
		var upper []Point
		for len(upper) < 6 {
			c := Point{X: rng.Float64()*2*d - d/2, Y: rng.Float64() * d}
			if c.Dist(p) <= d && c.Dist(q) <= d && c.Y >= 0 {
				upper = append(upper, c)
			}
		}
		for i := 0; i < len(upper); i++ {
			for j := i + 1; j < len(upper); j++ {
				if upper[i].Dist(upper[j]) > d*(1+1e-9) {
					t.Fatalf("same-side points %v and %v are %v apart (> d=%v)",
						upper[i], upper[j], upper[i].Dist(upper[j]), d)
				}
			}
		}
	}
}

func TestIndexMatchesFindCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(10)
		pts := randPoints(n, 10, rng)
		ix := NewIndex(pts)
		for _, l := range []float64{1, 4, 12} {
			for k := 2; k <= n; k++ {
				direct, err := FindCluster(pts, k, l)
				if err != nil {
					t.Fatal(err)
				}
				indexed, err := ix.Find(k, l)
				if err != nil {
					t.Fatal(err)
				}
				if (direct == nil) != (indexed == nil) {
					t.Fatalf("n=%d k=%d l=%v: direct=%v indexed=%v", n, k, l, direct, indexed)
				}
				for i := range direct {
					if direct[i] != indexed[i] {
						t.Fatalf("n=%d k=%d l=%v: direct=%v indexed=%v", n, k, l, direct, indexed)
					}
				}
			}
		}
	}
	ix := NewIndex(randPoints(4, 10, rng))
	if _, err := ix.Find(1, 5); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := ix.Find(2, -1); err == nil {
		t.Error("l<0 should fail")
	}
}

func TestValid(t *testing.T) {
	pts := []Point{{0, 0}, {3, 0}}
	if Valid(pts, []int{0, 1}, 1) {
		t.Error("distant pair accepted")
	}
	if !Valid(pts, []int{0, 1}, 5) {
		t.Error("close pair rejected")
	}
	if !Valid(pts, nil, 0) {
		t.Error("empty selection rejected")
	}
}

// bruteMinDiam finds the true minimum diameter over all k-subsets.
func bruteMinDiam(pts []Point, k int) float64 {
	best := -1.0
	picked := make([]int, 0, k)
	var rec func(next int)
	rec = func(next int) {
		if len(picked) == k {
			d := 0.0
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if v := pts[picked[i]].Dist(pts[picked[j]]); v > d {
						d = v
					}
				}
			}
			if best < 0 || d < best {
				best = d
			}
			return
		}
		if len(pts)-next < k-len(picked) {
			return
		}
		for x := next; x < len(pts); x++ {
			picked = append(picked, x)
			rec(x + 1)
			picked = picked[:len(picked)-1]
		}
	}
	rec(0)
	return best
}

func TestMinDiameterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		pts := randPoints(n, 10, rng)
		for k := 2; k <= n && k <= 5; k++ {
			members, diam, err := MinDiameter(pts, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(members) != k {
				t.Fatalf("got %d members, want %d", len(members), k)
			}
			want := bruteMinDiam(pts, k)
			// The achieved set diameter must equal the optimum.
			got := 0.0
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if v := pts[members[i]].Dist(pts[members[j]]); v > got {
						got = v
					}
				}
			}
			if got > want*(1+1e-9) {
				t.Fatalf("n=%d k=%d: diameter %v, optimal %v", n, k, got, want)
			}
			if diam < got*(1-1e-9) {
				t.Fatalf("reported diameter %v below achieved %v", diam, got)
			}
		}
	}
}

func TestMinDiameterValidation(t *testing.T) {
	if _, _, err := MinDiameter(nil, 1); err == nil {
		t.Error("k=1 should fail")
	}
	members, _, err := MinDiameter([]Point{{0, 0}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if members != nil {
		t.Error("k > n should return nil members")
	}
}
