package kdiam

import (
	"fmt"
	"math"
	"sort"
)

// Point is a 2-d coordinate. It mirrors vivaldi.Point without importing it
// so the two packages stay independent.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// FindCluster returns the indices of k points with pairwise distance at
// most l, or nil if no such set exists. It is exact in 2-d Euclidean
// space: for each candidate determining pair (p, q) with d(p,q) <= l
// (scanned in lexicographic order, mirroring the tree-metric Algorithm
// 1's pair loop), the points within d(p,q) of both ends form a lens;
// same-side points of the lens are automatically within d(p,q) of each
// other, so a maximum independent set of the cross-side conflict graph
// (pairs further than l apart) yields the largest cluster whose diameter
// pair is (p, q).
func FindCluster(points []Point, k int, l float64) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("kdiam: size constraint k must be >= 2, got %d", k)
	}
	if l < 0 {
		return nil, fmt.Errorf("kdiam: diameter constraint l must be >= 0, got %v", l)
	}
	n := len(points)
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			d := points[p].Dist(points[q])
			if d > l {
				continue
			}
			if members := clusterForPair(points, p, q, d, l, k); members != nil {
				return members, nil
			}
		}
	}
	return nil, nil
}

// MaxClusterSize returns the largest k for which FindCluster succeeds,
// with the same singleton conventions as the tree-metric variant.
func MaxClusterSize(points []Point, l float64) int {
	n := len(points)
	if n == 0 {
		return 0
	}
	best := 1
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			d := points[p].Dist(points[q])
			if d > l {
				continue
			}
			if members := clusterForPair(points, p, q, d, l, 0); len(members) > best {
				best = len(members)
			}
		}
	}
	return best
}

// clusterForPair computes the largest cluster containing p and q whose
// members all lie within d of both, with every cross-side pair within l;
// it returns the first k members (or the full set when k <= 0 is treated
// as "all") if at least k are found, nil otherwise.
func clusterForPair(points []Point, p, q int, d, l float64, k int) []int {
	// Lens membership.
	lens := make([]int, 0, 8)
	for x := range points {
		if points[x].Dist(points[p]) <= d && points[x].Dist(points[q]) <= d {
			lens = append(lens, x)
		}
	}
	if len(lens) < k {
		return nil
	}
	// Split by the signed area relative to the directed line p -> q.
	px, py := points[p].X, points[p].Y
	qx, qy := points[q].X, points[q].Y
	var leftIdx, rightIdx []int
	for _, x := range lens {
		cross := (qx-px)*(points[x].Y-py) - (qy-py)*(points[x].X-px)
		if cross >= 0 {
			leftIdx = append(leftIdx, x)
		} else {
			rightIdx = append(rightIdx, x)
		}
	}
	// Conflict edges: cross-side pairs farther than l apart.
	g := &bipartite{nLeft: len(leftIdx), nRight: len(rightIdx), adj: make([][]int, len(leftIdx))}
	for i, a := range leftIdx {
		for j, b := range rightIdx {
			if points[a].Dist(points[b]) > l {
				g.adj[i] = append(g.adj[i], j)
			}
		}
	}
	inL, inR := g.maxIndependentSet()
	members := make([]int, 0, len(lens))
	for i, ok := range inL {
		if ok {
			members = append(members, leftIdx[i])
		}
	}
	for j, ok := range inR {
		if ok {
			members = append(members, rightIdx[j])
		}
	}
	if len(members) < k {
		return nil
	}
	sort.Ints(members)
	if k > 0 && len(members) > k {
		members = members[:k]
	}
	return members
}

// Index caches pairwise distances of a fixed point set so repeated
// queries with different (k, l) skip the O(n^2) distance recomputation.
// Results are identical to FindCluster.
type Index struct {
	points []Point
	n      int
	dist   []float64 // p*n+q, p < q
}

// NewIndex builds the query index for the given points (copied).
func NewIndex(points []Point) *Index {
	pts := make([]Point, len(points))
	copy(pts, points)
	n := len(pts)
	dist := make([]float64, n*n)
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			dist[p*n+q] = pts[p].Dist(pts[q])
		}
	}
	return &Index{points: pts, n: n, dist: dist}
}

// Find answers a (k, l) query like FindCluster.
func (ix *Index) Find(k int, l float64) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("kdiam: size constraint k must be >= 2, got %d", k)
	}
	if l < 0 {
		return nil, fmt.Errorf("kdiam: diameter constraint l must be >= 0, got %v", l)
	}
	for p := 0; p < ix.n; p++ {
		for q := p + 1; q < ix.n; q++ {
			d := ix.dist[p*ix.n+q]
			if d > l {
				continue
			}
			if members := clusterForPair(ix.points, p, q, d, l, k); members != nil {
				return members, nil
			}
		}
	}
	return nil, nil
}

// MinDiameter finds k points of minimal diameter (the original problem of
// Aggarwal et al.): scanning pairs by ascending distance, the first pair
// (p, q) admitting a k-point cluster with all pairwise distances at most
// d(p,q) is optimal, because any k-set's diameter is realized by one of
// its pairs. Returns nil when there are fewer than k points.
func MinDiameter(points []Point, k int) ([]int, float64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("kdiam: size constraint k must be >= 2, got %d", k)
	}
	if len(points) < k {
		return nil, 0, nil
	}
	type pair struct {
		p, q int
		d    float64
	}
	pairs := make([]pair, 0, len(points)*(len(points)-1)/2)
	for p := 0; p < len(points); p++ {
		for q := p + 1; q < len(points); q++ {
			pairs = append(pairs, pair{p: p, q: q, d: points[p].Dist(points[q])})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
	for _, pr := range pairs {
		if members := clusterForPair(points, pr.p, pr.q, pr.d, pr.d, k); members != nil {
			return members, pr.d, nil
		}
	}
	return nil, 0, nil
}

// Valid reports whether the selected points have pairwise distance at
// most l.
func Valid(points []Point, sel []int, l float64) bool {
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if points[sel[i]].Dist(points[sel[j]]) > l {
				return false
			}
		}
	}
	return true
}

// BruteForce finds k points with pairwise distance at most l by
// backtracking over all subsets. Exact and exponential; test reference.
func BruteForce(points []Point, k int, l float64) []int {
	picked := make([]int, 0, k)
	var rec func(next int) []int
	rec = func(next int) []int {
		if len(picked) == k {
			out := make([]int, k)
			copy(out, picked)
			return out
		}
		if len(points)-next < k-len(picked) {
			return nil
		}
		for x := next; x < len(points); x++ {
			ok := true
			for _, m := range picked {
				if points[m].Dist(points[x]) > l {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			picked = append(picked, x)
			if out := rec(x + 1); out != nil {
				return out
			}
			picked = picked[:len(picked)-1]
		}
		return nil
	}
	return rec(0)
}
