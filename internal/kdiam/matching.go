// Package kdiam implements the comparison clustering algorithm the paper
// evaluates against: the fixed-diameter variant of Aggarwal, Imai, Katoh
// and Suri's k-diameter algorithm ("Finding k points with minimum diameter
// and related problems", SoCG 1989) on 2-d Euclidean coordinates. The
// geometric structure — for a candidate diameter pair (p, q), the lens of
// points close to both splits along the line pq into two halves of width
// at most d(p,q) — reduces the search to a maximum independent set in a
// bipartite conflict graph, solved exactly via Hopcroft–Karp maximum
// matching and König's theorem, both implemented here.
package kdiam

// bipartite is an adjacency-list bipartite graph with nLeft left vertices
// and nRight right vertices; adj[u] lists the right neighbors of left u.
type bipartite struct {
	nLeft, nRight int
	adj           [][]int
}

const unmatched = -1

// maxMatching runs Hopcroft–Karp and returns matchL (left vertex -> right
// partner or unmatched) and matchR (the reverse map).
func (g *bipartite) maxMatching() (matchL, matchR []int) {
	matchL = make([]int, g.nLeft)
	matchR = make([]int, g.nRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	dist := make([]int, g.nLeft)
	const inf = int(^uint(0) >> 1)

	bfs := func() bool {
		queue := make([]int, 0, g.nLeft)
		for u := 0; u < g.nLeft; u++ {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		reachable := false
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				w := matchR[v]
				if w == unmatched {
					reachable = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return reachable
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range g.adj[u] {
			w := matchR[v]
			if w == unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < g.nLeft; u++ {
			if matchL[u] == unmatched {
				dfs(u)
			}
		}
	}
	return matchL, matchR
}

// maxIndependentSet returns a maximum independent set of the bipartite
// graph as (left-vertex selections, right-vertex selections), using
// König's theorem: MIS = V minus a minimum vertex cover, and the cover is
// (L \ Z) ∪ (R ∩ Z) where Z is the set of vertices reachable from
// unmatched left vertices by alternating paths.
func (g *bipartite) maxIndependentSet() (left, right []bool) {
	matchL, matchR := g.maxMatching()
	zL := make([]bool, g.nLeft)
	zR := make([]bool, g.nRight)
	queue := make([]int, 0, g.nLeft)
	for u := 0; u < g.nLeft; u++ {
		if matchL[u] == unmatched {
			zL[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if zR[v] {
				continue
			}
			zR[v] = true // reached via a non-matching edge
			if w := matchR[v]; w != unmatched && !zL[w] {
				zL[w] = true // continue via the matching edge
				queue = append(queue, w)
			}
		}
	}
	// Cover = (L \ Z) ∪ (R ∩ Z); independent set is the complement.
	left = make([]bool, g.nLeft)
	right = make([]bool, g.nRight)
	for u := 0; u < g.nLeft; u++ {
		left[u] = zL[u]
	}
	for v := 0; v < g.nRight; v++ {
		right[v] = !zR[v]
	}
	return left, right
}
