package fleet

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"
	"time"

	"bwcluster"
	"bwcluster/internal/dataset"
	"bwcluster/internal/transport"
)

// testSystem builds a small deterministic system.
func testSystem(t testing.TB, n int) *bwcluster.System {
	t.Helper()
	m, err := dataset.Generate(dataset.HPConfig().WithN(n), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][]float64, m.N())
	for i := range raw {
		raw[i] = make([]float64, m.N())
		for j := range raw[i] {
			if i != j {
				raw[i][j] = m.At(i, j)
			}
		}
	}
	sys, err := bwcluster.New(raw, bwcluster.WithNCut(10), bwcluster.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAssignPartitionsCompletely(t *testing.T) {
	hosts := make([]int, 50)
	for i := range hosts {
		hosts[i] = i
	}
	parts := Assign(hosts, 3, 7)
	seen := make(map[int]int)
	for s, part := range parts {
		for _, h := range part {
			if prev, dup := seen[h]; dup {
				t.Fatalf("host %d assigned to shards %d and %d", h, prev, s)
			}
			seen[h] = s
		}
	}
	if len(seen) != len(hosts) {
		t.Fatalf("assigned %d hosts, want %d", len(seen), len(hosts))
	}
	// Rendezvous keeps the partition roughly balanced: no shard may be
	// empty at 50 hosts over 3 shards.
	for s, part := range parts {
		if len(part) == 0 {
			t.Errorf("shard %d empty", s)
		}
	}
	// Owner agrees with Assign for every host.
	for s, part := range parts {
		for _, h := range part {
			if got := Owner(h, 3, 7); got != s {
				t.Errorf("Owner(%d) = %d, Assign put it on %d", h, got, s)
			}
		}
	}
}

func TestAssignDeterministicAndEpochKeyed(t *testing.T) {
	hosts := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	a := Assign(hosts, 4, 3)
	b := Assign(hosts, 4, 3)
	for s := range a {
		if len(a[s]) != len(b[s]) {
			t.Fatalf("assignment not deterministic at shard %d", s)
		}
		for i := range a[s] {
			if a[s][i] != b[s][i] {
				t.Fatalf("assignment not deterministic at shard %d", s)
			}
		}
	}
	// A different epoch must move at least one host (overwhelmingly
	// likely at 12 hosts; pinned by the fixed hash).
	c := Assign(hosts, 4, 4)
	moved := false
	for s := range a {
		if len(a[s]) != len(c[s]) {
			moved = true
			break
		}
		for i := range a[s] {
			if a[s][i] != c[s][i] {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Error("epoch bump did not change the assignment")
	}
	// Degenerate shapes.
	if parts := Assign(hosts, 0, 1); len(parts) != 1 || len(parts[0]) != len(hosts) {
		t.Error("shards<1 must collapse to one shard holding everything")
	}
}

func TestLimiterBurstQueueShed(t *testing.T) {
	l := NewLimiter(AdmissionConfig{Rate: 10, Burst: 2, Queue: 2})
	now := time.Unix(1000, 0)
	// Burst passes immediately.
	for i := 0; i < 2; i++ {
		if wait, ok := l.Admit("a", now); !ok || wait != 0 {
			t.Fatalf("burst request %d: wait=%v ok=%v", i, wait, ok)
		}
	}
	// Next two queue with growing waits (rate 10/s -> 100ms per token).
	w1, ok := l.Admit("a", now)
	if !ok || w1 != 100*time.Millisecond {
		t.Fatalf("first queued wait = %v ok=%v, want 100ms", w1, ok)
	}
	w2, ok := l.Admit("a", now)
	if !ok || w2 != 200*time.Millisecond {
		t.Fatalf("second queued wait = %v ok=%v, want 200ms", w2, ok)
	}
	// Queue full: shed.
	if _, ok := l.Admit("a", now); ok {
		t.Fatal("third over-burst request must shed")
	}
	// Tenants are independent.
	if _, ok := l.Admit("b", now); !ok {
		t.Fatal("tenant b must have its own bucket")
	}
	// Refill restores service.
	if wait, ok := l.Admit("a", now.Add(time.Second)); !ok || wait != 0 {
		t.Fatalf("after refill: wait=%v ok=%v", wait, ok)
	}
	if l.Tenants() != 2 {
		t.Errorf("tenants = %d, want 2", l.Tenants())
	}
}

func TestCacheHitMissEvictFlush(t *testing.T) {
	c := NewCache(2)
	k1 := CacheKey{Endpoint: "/v1/cluster", Params: FormatParams(4, 15, "central", 0), Epoch: 0}
	k2 := CacheKey{Endpoint: "/v1/cluster", Params: FormatParams(5, 15, "central", 0), Epoch: 0}
	k3 := CacheKey{Endpoint: "/v1/cluster", Params: FormatParams(6, 15, "central", 0), Epoch: 0}
	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k1, CachedResponse{Status: 200, Body: []byte("one")})
	if resp, ok := c.Get(k1); !ok || string(resp.Body) != "one" {
		t.Fatalf("get after put: %v %q", ok, resp.Body)
	}
	// FIFO eviction at capacity 2: inserting k3 evicts k1.
	c.Put(k2, CachedResponse{Status: 200, Body: []byte("two")})
	c.Put(k3, CachedResponse{Status: 200, Body: []byte("three")})
	if _, ok := c.Get(k1); ok {
		t.Fatal("k1 should have been evicted FIFO")
	}
	if _, ok := c.Get(k3); !ok {
		t.Fatal("k3 should be cached")
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	// Epoch bump flushes; same epoch or older does not.
	if c.Bump(0) {
		t.Fatal("bump to current epoch flushed")
	}
	if !c.Bump(3) {
		t.Fatal("bump to newer epoch did not flush")
	}
	if _, ok := c.Get(k3); ok {
		t.Fatal("entry survived the flush")
	}
	// A slow proxy completing with a pre-flush epoch must not resurrect.
	c.Put(k3, CachedResponse{Status: 200, Body: []byte("stale")})
	if _, ok := c.Get(k3); ok {
		t.Fatal("stale-epoch put was accepted after flush")
	}
	if c.Epoch() != 3 {
		t.Errorf("epoch = %d, want 3", c.Epoch())
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Errorf("hit rate = %v, want in (0,1)", c.HitRate())
	}
}

func TestSnapshotAssembler(t *testing.T) {
	var a assembler
	chunk := func(id uint64, seq, total int, data string) *transport.Snapshot {
		return &transport.Snapshot{ID: id, Epoch: 1, Seq: seq, Total: total, Data: []byte(data)}
	}
	// Out-of-order chunks assemble in Seq order.
	if _, _, done := a.offer(chunk(1, 1, 3, "B")); done {
		t.Fatal("incomplete stream reported done")
	}
	if _, _, done := a.offer(chunk(1, 0, 3, "A")); done {
		t.Fatal("incomplete stream reported done")
	}
	// A stale stream's chunk is ignored mid-assembly.
	if _, _, done := a.offer(chunk(0, 0, 1, "stale")); done {
		t.Fatal("stale stream completed")
	}
	blob, epoch, done := a.offer(chunk(1, 2, 3, "C"))
	if !done || string(blob) != "ABC" || epoch != 1 {
		t.Fatalf("assembled %q epoch=%d done=%v", blob, epoch, done)
	}
	// A newer stream discards a partial older one.
	a.offer(chunk(2, 0, 2, "X"))
	a.offer(chunk(3, 0, 1, "fresh"))
	if _, _, done := a.offer(chunk(2, 1, 2, "Y")); done {
		t.Fatal("discarded stream completed")
	}
	// Malformed chunks are rejected.
	if _, _, done := a.offer(&transport.Snapshot{ID: 9, Seq: 5, Total: 2, Data: []byte("z")}); done {
		t.Fatal("out-of-range seq accepted")
	}
}

// TestReplicateOverTransport: a builder shard snapshot-streams a real
// system to a replica endpoint over an in-process transport; the
// replica restores an equivalent system. Version-skewed and corrupt
// streams surface through OnError — skew recognizably via
// bwcluster.ErrWireVersion — without ever reaching OnSystem.
func TestReplicateOverTransport(t *testing.T) {
	sys := testSystem(t, 20)
	tr := transport.NewChan(0)
	defer tr.Close()

	systems := make(chan *bwcluster.System, 1)
	errs := make(chan error, 4)
	rep, err := NewReplicator(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep.OnSystem = func(got *bwcluster.System, epoch uint64) { systems <- got }
	rep.OnError = func(err error) { errs <- err }
	rep.Start()
	defer rep.Stop()

	blob, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := SendSnapshot(tr, 0, 1, 1, sys.Epoch(), blob); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-systems:
		if got.Len() != sys.Len() || got.Epoch() != sys.Epoch() {
			t.Fatalf("restored %d hosts epoch %d, want %d/%d", got.Len(), got.Epoch(), sys.Len(), sys.Epoch())
		}
		a, _ := sys.FindCluster(4, 15)
		b, _ := got.FindCluster(4, 15)
		if len(a) != len(b) {
			t.Fatalf("replica answers differ: %v vs %v", a, b)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot stream did not complete")
	}

	// Corruption: a garbage stream is reported and discarded.
	if err := SendSnapshot(tr, 0, 1, 2, 0, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("corrupt stream error = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("corrupt stream not reported")
	}

	// Version skew: a snapshot whose wire version differs fails with the
	// typed sentinel, telling the replica to refuse service, not retry.
	var skew bytes.Buffer
	if err := gob.NewEncoder(&skew).Encode(struct{ Version int }{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if err := SendSnapshot(tr, 0, 1, 3, 0, skew.Bytes()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if !strings.Contains(err.Error(), "incompatible release") {
			t.Fatalf("version-skew stream error = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("version-skew stream not reported")
	}
	select {
	case <-systems:
		t.Fatal("a bad stream reached OnSystem")
	default:
	}
}
