package fleet

import (
	"errors"
	"fmt"
	"sync"

	"bwcluster"
	"bwcluster/internal/transport"
)

// ReplicaEndpoint is the reserved transport endpoint id a shard's
// snapshot receiver registers under. Overlay peers use the host ids of
// the system (0..n-1); replicator endpoints are negative, so the two
// id spaces can never collide no matter how the host set grows.
func ReplicaEndpoint(shard int) int { return -(shard + 1) }

// maxSnapshotChunks bounds a stream's declared chunk count; with
// SnapshotChunkSize payloads this caps an assembled snapshot at 16 GiB,
// far past any real forest, so a corrupt Total fails fast instead of
// reserving absurd memory.
const maxSnapshotChunks = 1 << 16

// SendSnapshot streams blob — the bytes System.Save wrote — from the
// sending shard's replicator endpoint to the receiving shard's, split
// into transport.SnapshotChunkSize chunks under one stream id. Chunks
// ride the transport's reliable path (never shed, never coalesced), so
// a completed SendSnapshot means every chunk was accepted for ordered
// delivery; an error means the stream is torn and the caller should
// retry with a fresh stream id.
func SendSnapshot(tr transport.Transport, fromShard, toShard int, id, epoch uint64, blob []byte) error {
	total := (len(blob) + transport.SnapshotChunkSize - 1) / transport.SnapshotChunkSize
	if total == 0 {
		total = 1
	}
	if total > maxSnapshotChunks {
		return fmt.Errorf("fleet: snapshot of %d bytes exceeds the %d-chunk stream bound", len(blob), maxSnapshotChunks)
	}
	for seq := 0; seq < total; seq++ {
		lo := seq * transport.SnapshotChunkSize
		hi := lo + transport.SnapshotChunkSize
		if hi > len(blob) {
			hi = len(blob)
		}
		m := transport.Message{
			Kind: transport.KindSnapshot,
			From: ReplicaEndpoint(fromShard),
			To:   ReplicaEndpoint(toShard),
			Snapshot: &transport.Snapshot{
				ID: id, Epoch: epoch, Seq: seq, Total: total,
				Data: blob[lo:hi],
			},
		}
		if err := tr.Send(m); err != nil {
			return fmt.Errorf("fleet: snapshot stream %d chunk %d/%d: %w", id, seq, total, err)
		}
	}
	return nil
}

// assembler reassembles snapshot streams chunk by chunk. Newest stream
// wins: a chunk opening a stream with a higher id discards any partial
// older stream (the builder only ever re-sends with fresh ids, so a
// higher id is always the fresher snapshot).
type assembler struct {
	id     uint64
	epoch  uint64
	total  int
	chunks map[int][]byte
}

// offer folds one chunk in; it returns the completed blob and its
// epoch when the stream finishes.
func (a *assembler) offer(s *transport.Snapshot) ([]byte, uint64, bool) {
	if s.Total < 1 || s.Total > maxSnapshotChunks || s.Seq < 0 || s.Seq >= s.Total {
		return nil, 0, false
	}
	if a.chunks == nil || s.ID > a.id {
		a.id, a.epoch, a.total = s.ID, s.Epoch, s.Total
		a.chunks = make(map[int][]byte, s.Total)
	} else if s.ID < a.id || s.Total != a.total || s.Epoch != a.epoch {
		return nil, 0, false
	}
	a.chunks[s.Seq] = s.Data
	if len(a.chunks) < a.total {
		return nil, 0, false
	}
	var size int
	for _, c := range a.chunks {
		size += len(c)
	}
	blob := make([]byte, 0, size)
	for seq := 0; seq < a.total; seq++ {
		blob = append(blob, a.chunks[seq]...)
	}
	epoch := a.epoch
	a.chunks = nil
	return blob, epoch, true
}

// Replicator is a shard's snapshot receiver: it registers the shard's
// reserved replicator endpoint on the overlay transport, reassembles
// incoming chunk streams, loads each completed stream through
// bwcluster.Load (so the persistence layer's version and corruption
// checks guard the wire), and hands the restored System to the OnSystem
// callback. This is the replica catch-up path: a shard that starts
// empty becomes a warm read replica the moment its first stream lands.
type Replicator struct {
	// OnSystem receives each successfully restored system and the
	// stream's declared epoch. Called from the receive goroutine;
	// installing the system (serveapi.Handler.SetBackend) is the typical
	// body. Must be set before Start.
	OnSystem func(sys *bwcluster.System, epoch uint64)
	// OnError, when set, observes per-stream failures: version skew
	// (errors.Is bwcluster.ErrWireVersion — the builder runs a different
	// release; the replica stays unready rather than serving wrong
	// answers) and corruption (any other Load error; the stream is
	// discarded and the next one tried).
	OnError func(err error)

	tr    transport.Transport
	shard int
	inbox <-chan transport.Message
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewReplicator registers shard's replicator endpoint on tr. Start
// launches the receive loop; Stop tears it down.
func NewReplicator(tr transport.Transport, shard int) (*Replicator, error) {
	inbox, err := tr.Register(ReplicaEndpoint(shard))
	if err != nil {
		return nil, fmt.Errorf("fleet: register replicator endpoint: %w", err)
	}
	return &Replicator{tr: tr, shard: shard, inbox: inbox, done: make(chan struct{})}, nil
}

// Start launches the receive goroutine.
func (r *Replicator) Start() {
	r.wg.Add(1)
	go r.receive()
}

// Stop unregisters the endpoint and waits for the receive goroutine to
// exit.
func (r *Replicator) Stop() {
	close(r.done)
	_ = r.tr.Unregister(ReplicaEndpoint(r.shard))
	r.wg.Wait()
}

func (r *Replicator) receive() {
	defer r.wg.Done()
	var asm assembler
	for {
		select {
		case <-r.done:
			return
		case m := <-r.inbox:
			if m.Kind != transport.KindSnapshot || m.Snapshot == nil {
				continue
			}
			blob, epoch, complete := asm.offer(m.Snapshot)
			if !complete {
				continue
			}
			sys, err := bwcluster.LoadBytes(blob)
			if err != nil {
				if r.OnError != nil {
					if errors.Is(err, bwcluster.ErrWireVersion) {
						err = fmt.Errorf("fleet: replica %d: builder runs an incompatible release, refusing to serve: %w", r.shard, err)
					} else {
						err = fmt.Errorf("fleet: replica %d: discarding corrupt snapshot stream: %w", r.shard, err)
					}
					r.OnError(err)
				}
				continue
			}
			if r.OnSystem != nil {
				r.OnSystem(sys, epoch)
			}
		}
	}
}
