package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bwcluster/internal/transport"
)

// benchFleet lazily stands up one single-shard fleet (a real HTTP shard
// behind an in-process router) shared by every benchmark iteration and
// -cpu level: the benchmarks measure the router's serving path, not
// fleet startup.
var benchFleet struct {
	once   sync.Once
	router *Router
	err    error
}

func benchRouter(b *testing.B) *Router {
	b.Helper()
	benchFleet.once.Do(func() {
		sys := testSystem(b, 24)
		tr := transport.NewChan(0)
		sh := NewShard(ShardConfig{
			Index: 0, Shards: 1, Transport: tr,
			Tick: time.Millisecond, Logger: discardLogger(),
		})
		if err := sh.Install(sys); err != nil {
			benchFleet.err = err
			return
		}
		shardSrv := httptest.NewServer(sh.Handler())
		rt := NewRouter(RouterConfig{
			Shards: []string{shardSrv.URL},
			Logger: discardLogger(),
			// The benchmark measures serving cost, not shedding.
			Admission:     AdmissionConfig{Rate: 1e9, Queue: 1 << 20},
			ProbeInterval: 5 * time.Millisecond,
		})
		rt.Start()
		deadline := time.Now().Add(10 * time.Second)
		for {
			rec := httptest.NewRecorder()
			rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/ready", nil))
			if rec.Code == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				benchFleet.err = fmt.Errorf("bench fleet never became ready")
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		benchFleet.router = rt
	})
	if benchFleet.err != nil {
		b.Fatal(benchFleet.err)
	}
	return benchFleet.router
}

func benchServe(b *testing.B, rt *Router, url string) {
	rec := httptest.NewRecorder()
	rec.Body = nil
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d from %s", rec.Code, url)
	}
}

// BenchmarkFleetQueryCache pairs the router's two /v1/cluster serving
// paths, measured at the router handler (the shard hop is real HTTP,
// the client hop is a recorder, so the pair isolates what the cache
// saves): "uncached" makes every request a distinct cache key (the
// central engine ignores start, but the key includes it), so each one
// pays admission + proxy + shard FindCluster; "cached" replays one hot
// key. bwc-benchjson's gate invariant 4 requires the cached path to be
// at least 5x cheaper — if it is not, the cache is pure overhead and
// the zipf head of real traffic gains nothing.
func BenchmarkFleetQueryCache(b *testing.B) {
	rt := benchRouter(b)
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchServe(b, rt, fmt.Sprintf("/v1/cluster?k=4&b=15&start=%d", i))
		}
	})
	b.Run("cached", func(b *testing.B) {
		const url = "/v1/cluster?k=4&b=15"
		benchServe(b, rt, url) // warm the key
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchServe(b, rt, url)
		}
	})
}
