package fleet

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bwcluster/internal/serveapi"
	"bwcluster/internal/telemetry"
)

// Router-layer telemetry: admission outcomes, cache outcomes and
// upstream failovers, all cheap counters on the hot path.
var (
	mRouterShed = telemetry.NewCounter("bwc_fleet_router_shed_total",
		"Requests shed by per-tenant admission control (429).")
	mRouterQueued = telemetry.NewCounter("bwc_fleet_router_queued_total",
		"Requests delayed in the admission queue before proceeding.")
	mRouterCache = telemetry.NewCounterVec("bwc_fleet_router_cache_total",
		"Query cache outcomes at the router.", "outcome")
	mRouterProxied = telemetry.NewCounterVec("bwc_fleet_router_proxied_total",
		"Requests proxied to shards, by outcome.", "outcome")
	mRouterFailover = telemetry.NewCounter("bwc_fleet_router_failovers_total",
		"Proxy attempts re-routed to another shard after a failure.")
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Shards lists the shard base URLs ("http://127.0.0.1:8081"), fixed
	// for the router's lifetime. Index in this slice is the shard id the
	// rendezvous assignment speaks of.
	Shards []string
	// Logger receives access logs and shard state transitions.
	Logger *slog.Logger
	// Metrics is the registry exposition handler mounted at /metrics
	// (nil: unrouted) — passed in because library code must not touch
	// the process registry.
	Metrics http.Handler
	// Admission bounds every tenant's query rate.
	Admission AdmissionConfig
	// CacheSize bounds the query cache (non-positive: 4096 entries).
	CacheSize int
	// ProbeInterval is the readiness-probe period (non-positive: 250ms).
	ProbeInterval time.Duration
	// Client performs shard requests (nil: a client with a 15s timeout).
	Client *http.Client
}

// shardState is the router's view of one shard: flipped ready by the
// probe loop and flipped unready eagerly by a failed proxy, so traffic
// leaves a dead shard at the first error instead of waiting out a probe
// period.
type shardState struct {
	addr  string
	ready atomic.Bool
	epoch atomic.Uint64
}

// Router is the fleet's stateless HTTP front: per-tenant admission,
// the epoch-keyed query cache, rendezvous routing of decentralized
// queries to the shard hosting their start peer, round-robin fan-out of
// centralized queries across warm replicas, and eager failover. All
// serving state lives in the shards; a router restart loses only cache
// and rate-limit history.
type Router struct {
	cfg     RouterConfig
	limiter *Limiter
	cache   *Cache
	client  *http.Client
	logger  *slog.Logger
	shards  []*shardState
	h       http.Handler
	rr      atomic.Uint64
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewRouter builds the router. Start launches its probe loop; the
// router serves before the first probe completes, answering 503 until
// a shard reports ready.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	rt := &Router{
		cfg:     cfg,
		limiter: NewLimiter(cfg.Admission),
		cache:   NewCache(cfg.CacheSize),
		client:  client,
		logger:  logger,
		done:    make(chan struct{}),
	}
	for _, addr := range cfg.Shards {
		rt.shards = append(rt.shards, &shardState{addr: addr})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", rt.cluster)
	mux.HandleFunc("GET /v1/node", rt.proxyAny)
	mux.HandleFunc("GET /v1/predict", rt.proxyAny)
	mux.HandleFunc("GET /v1/tightest", rt.proxyAny)
	mux.HandleFunc("GET /v1/label", rt.proxyAny)
	mux.HandleFunc("GET /v1/info", rt.proxyAny)
	mux.HandleFunc("GET /v1/ready", rt.readyEndpoint)
	mux.HandleFunc("GET /v1/fleet", rt.fleetEndpoint)
	mux.HandleFunc("GET /v1/fleet/bandwidth", rt.fleetBandwidth)
	if cfg.Metrics != nil {
		mux.Handle("GET /metrics", cfg.Metrics)
	}
	rt.h = serveapi.WithObservability(logger, mux)
	return rt
}

// Start launches the readiness-probe loop.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go rt.probeLoop()
}

// Stop halts the probe loop.
func (rt *Router) Stop() {
	close(rt.done)
	rt.wg.Wait()
}

// Cache exposes the query cache for stats reporting.
func (rt *Router) Cache() *Cache { return rt.cache }

// ServeHTTP dispatches through the observability-wrapped mux.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.h.ServeHTTP(w, r) }

// probeLoop polls every shard's /v1/ready each interval, maintaining
// readiness and the observed fleet epoch (the max across ready shards);
// an epoch move flushes the query cache.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	rt.probeAll()
	for {
		select {
		case <-rt.done:
			return
		case <-ticker.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	for i, s := range rt.shards {
		ready, epoch := rt.probe(s.addr)
		was := s.ready.Swap(ready)
		if was != ready {
			rt.logger.Info("shard readiness changed", "shard", i, "addr", s.addr, "ready", ready)
		}
		if ready {
			s.epoch.Store(epoch)
			if rt.cache.Bump(epoch) {
				rt.logger.Info("epoch bump flushed query cache", "epoch", epoch)
			}
		}
	}
}

func (rt *Router) probe(addr string) (ready bool, epoch uint64) {
	resp, err := rt.client.Get(addr + "/v1/ready")
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	var body struct {
		Ready bool   `json:"ready"`
		Epoch uint64 `json:"epoch"`
	}
	if resp.StatusCode != http.StatusOK || decodeJSON(resp.Body, &body) != nil {
		return false, 0
	}
	return body.Ready, body.Epoch
}

func decodeJSON(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// tenantOf extracts the admission identity: the X-Tenant header, or the
// shared "default" bucket for unlabeled traffic.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// admit runs admission control for the request; a false return means
// the 429 has been written.
func (rt *Router) admit(w http.ResponseWriter, r *http.Request) bool {
	wait, ok := rt.limiter.Admit(tenantOf(r), time.Now())
	if !ok {
		mRouterShed.Inc()
		w.Header().Set("Retry-After", "1")
		serveapi.WriteJSON(w, http.StatusTooManyRequests,
			map[string]any{"error": "tenant over admission rate; retry later"})
		return false
	}
	if wait > 0 {
		mRouterQueued.Inc()
		select {
		case <-time.After(wait):
		case <-r.Context().Done():
			return false
		}
	}
	return true
}

// cluster serves the fleet's query path: admission, the epoch-keyed
// cache, then a proxied shard query. Decentralized queries go to the
// shard whose runtime hosts the start peer; if that shard is down they
// fall back to a centralized answer from any warm replica (same fixed
// point, no routing hop metadata) rather than failing.
func (rt *Router) cluster(w http.ResponseWriter, r *http.Request) {
	if !rt.admit(w, r) {
		return
	}
	k, err := serveapi.IntParam(r, "k")
	if err != nil {
		serveapi.BadRequest(w, err)
		return
	}
	b, err := serveapi.FloatParam(r, "b")
	if err != nil {
		serveapi.BadRequest(w, err)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "central"
	}
	start := 0
	if raw := r.URL.Query().Get("start"); raw != "" {
		if start, err = serveapi.IntParam(r, "start"); err != nil {
			serveapi.BadRequest(w, err)
			return
		}
	}
	epoch := rt.cache.Epoch()
	key := CacheKey{Endpoint: "/v1/cluster", Params: FormatParams(k, b, mode, start), Epoch: epoch}
	if resp, ok := rt.cache.Get(key); ok {
		mRouterCache.Inc("hit")
		w.Header().Set("X-Fleet-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.Status)
		_, _ = w.Write(resp.Body)
		return
	}
	mRouterCache.Inc("miss")

	var preferred []int
	// Epoch 0 means no shard has been probed yet (a built system's
	// membership epoch is always nonzero): the owner computed from it
	// would be wrong, and a misrouted decentral query fails at a shard
	// that does not host the start peer. Fall through to the central
	// rewrite until the first probe lands.
	if mode == "decentral" && len(rt.shards) > 0 && epoch != 0 {
		owner := Owner(start, len(rt.shards), epoch)
		if rt.shards[owner].ready.Load() {
			preferred = []int{owner}
		}
		// Owner down: any warm replica can answer the same query
		// centrally — the decentralized engine settles to the
		// centralized fixed point, so the members agree.
	}
	status, body, hdr, ok := rt.proxy(r, preferred)
	if !ok {
		serveapi.WriteJSON(w, http.StatusBadGateway,
			map[string]any{"error": "no shard could answer; fleet unready"})
		return
	}
	if status == http.StatusOK {
		rt.cache.Put(key, CachedResponse{Status: status, Body: body})
	}
	w.Header().Set("X-Fleet-Cache", "miss")
	if hdr != "" {
		w.Header().Set("X-Fleet-Fallback", hdr)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// proxyAny forwards a read endpoint to any ready shard with admission
// control but no caching (the prediction endpoints are already O(1) at
// the shard).
func (rt *Router) proxyAny(w http.ResponseWriter, r *http.Request) {
	if !rt.admit(w, r) {
		return
	}
	status, body, _, ok := rt.proxy(r, nil)
	if !ok {
		serveapi.WriteJSON(w, http.StatusBadGateway,
			map[string]any{"error": "no shard could answer; fleet unready"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// proxy performs the upstream request against the preferred shards
// first (when given), then every ready shard in round-robin order. A
// transport error or 5xx marks the shard unready on the spot — traffic
// leaves a dead shard at the first failure; the probe loop restores it
// when it answers again. fallback reports "central" when a decentral
// request was answered by a non-owner via mode rewrite.
func (rt *Router) proxy(r *http.Request, preferred []int) (status int, body []byte, fallback string, ok bool) {
	tried := make(map[int]bool, len(rt.shards))
	attempt := func(i int, rewriteCentral bool) (int, []byte, bool) {
		tried[i] = true
		url := rt.shards[i].addr + r.URL.Path
		if q := r.URL.RawQuery; q != "" {
			if rewriteCentral {
				qs := r.URL.Query()
				qs.Set("mode", "central")
				qs.Del("start")
				q = qs.Encode()
			}
			url += "?" + q
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
		if err != nil {
			return 0, nil, false
		}
		// Propagate the request id (assigned by WithObservability) and
		// the tenant, so the shard's access log and traces correlate
		// with the router's.
		if id := r.Header.Get("X-Request-Id"); id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		if tn := r.Header.Get("X-Tenant"); tn != "" {
			req.Header.Set("X-Tenant", tn)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			// A client that went away cancels the upstream call too;
			// that says nothing about the shard's health.
			if r.Context().Err() == nil {
				rt.markDown(i, err)
			}
			return 0, nil, false
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode >= 500 {
			rt.markDown(i, errors.New("upstream "+strconv.Itoa(resp.StatusCode)))
			return 0, nil, false
		}
		return resp.StatusCode, b, true
	}
	failed := 0
	for _, i := range preferred {
		if s, b, ok := attempt(i, false); ok {
			if failed > 0 {
				mRouterFailover.Add(failed)
			}
			mRouterProxied.Inc("ok")
			return s, b, "", true
		}
		failed++
	}
	// A decentral request reaching the fan-out stage is being answered
	// by a non-owner: rewrite it to a central query.
	rewrite := r.URL.Query().Get("mode") == "decentral"
	n := len(rt.shards)
	base := int(rt.rr.Add(1))
	for off := 0; off < n; off++ {
		i := (base + off) % n
		if tried[i] || !rt.shards[i].ready.Load() {
			continue
		}
		if s, b, ok := attempt(i, rewrite); ok {
			if failed > 0 {
				mRouterFailover.Add(failed)
			}
			mRouterProxied.Inc("ok")
			hdr := ""
			if rewrite {
				hdr = "central"
			}
			return s, b, hdr, true
		}
		failed++
	}
	mRouterProxied.Inc("unavailable")
	return 0, nil, "", false
}

func (rt *Router) markDown(i int, err error) {
	if rt.shards[i].ready.Swap(false) {
		rt.logger.Warn("shard marked down after proxy failure",
			"shard", i, "addr", rt.shards[i].addr, "err", err.Error())
	}
}

// readyEndpoint reports router readiness: ready while at least one
// shard answers queries.
func (rt *Router) readyEndpoint(w http.ResponseWriter, r *http.Request) {
	readyCount := 0
	for _, s := range rt.shards {
		if s.ready.Load() {
			readyCount++
		}
	}
	status := http.StatusOK
	if readyCount == 0 {
		status = http.StatusServiceUnavailable
	}
	serveapi.WriteJSON(w, status, map[string]any{
		"ready":       readyCount > 0,
		"shards":      len(rt.shards),
		"shardsReady": readyCount,
		"epoch":       rt.cache.Epoch(),
	})
}

// fleetEndpoint reports the router's full operational state: per-shard
// readiness and epochs, cache counters, and tenant population.
func (rt *Router) fleetEndpoint(w http.ResponseWriter, r *http.Request) {
	shards := make([]map[string]any, len(rt.shards))
	for i, s := range rt.shards {
		shards[i] = map[string]any{
			"addr":  s.addr,
			"ready": s.ready.Load(),
			"epoch": s.epoch.Load(),
		}
	}
	st := rt.cache.Stats()
	serveapi.WriteJSON(w, http.StatusOK, map[string]any{
		"shards": shards,
		"epoch":  rt.cache.Epoch(),
		"cache": map[string]any{
			"entries": st.Entries,
			"hits":    st.Hits,
			"misses":  st.Misses,
			"flushes": st.Flushes,
			"hitRate": rt.cache.HitRate(),
		},
		"tenants": rt.limiter.Tenants(),
	})
}
