package fleet

import (
	"net/http"
	"sort"
	"strconv"
	"sync"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/serveapi"
)

// Federated bandwidth rollup: the router scrapes every ready shard's
// /v1/bandwidth (the shard-local ledger snapshot) and /v1/health and
// serves the merged view on /v1/fleet/bandwidth. The rollup is honest
// about partial coverage — a marked-down or failed shard appears as an
// explicit gap entry instead of silently shrinking the totals — and
// checks epoch consistency across the shards it did reach, because
// summing byte counters from shards serving different forest epochs
// would mix incomparable traffic.

// shardBandwidth is one shard's slice of the rollup.
type shardBandwidth struct {
	// Shard and Addr identify the scraped shard.
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	// Gap reports the shard contributed nothing: marked down at scrape
	// time or failed to answer. Its counters are absent, not zero.
	Gap bool `json:"gap"`
	// Error carries the scrape failure for a gap that was attempted.
	Error string `json:"error,omitempty"`
	// Epoch is the shard's forest epoch per the router's probe loop.
	Epoch uint64 `json:"epoch,omitempty"`
	// Converged mirrors the shard's /v1/health verdict.
	Converged bool `json:"converged,omitempty"`
	// Bandwidth is the shard's ledger snapshot (nil on a gap).
	Bandwidth *bwledger.Snapshot `json:"bandwidth,omitempty"`
}

// fleetBandwidth merges every reachable shard's ledger snapshot. One
// scrape per shard, concurrently, bounded by the router client timeout.
func (rt *Router) fleetBandwidth(w http.ResponseWriter, r *http.Request) {
	shards := make([]shardBandwidth, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		shards[i] = shardBandwidth{Shard: i, Addr: s.addr, Gap: true}
		if !s.ready.Load() {
			continue
		}
		shards[i].Epoch = s.epoch.Load()
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			snap, converged, err := rt.scrapeBandwidth(addr)
			if err != nil {
				shards[i].Error = err.Error()
				return
			}
			shards[i].Gap = false
			shards[i].Converged = converged
			shards[i].Bandwidth = snap
		}(i, s.addr)
	}
	wg.Wait()

	// Cross-shard aggregate over the shards that answered.
	var totalBytes, totalMessages int64
	kindAcc := make(map[string]*bwledger.KindTotal)
	type fleetViolation struct {
		Shard int `json:"shard"`
		bwledger.Violation
	}
	violations := []fleetViolation{}
	covered, gaps := 0, []int{}
	epochConsistent := true
	var epochSeen uint64
	for i := range shards {
		sb := &shards[i]
		if sb.Gap {
			gaps = append(gaps, sb.Shard)
			continue
		}
		covered++
		if epochSeen == 0 {
			epochSeen = sb.Epoch
		} else if sb.Epoch != epochSeen {
			epochConsistent = false
		}
		totalBytes += sb.Bandwidth.TotalBytes
		totalMessages += sb.Bandwidth.TotalMessages
		for _, kt := range sb.Bandwidth.Kinds {
			if e, ok := kindAcc[kt.Kind]; ok {
				e.Bytes += kt.Bytes
				e.Messages += kt.Messages
			} else {
				c := kt
				kindAcc[kt.Kind] = &c
			}
		}
		for _, v := range sb.Bandwidth.Violations {
			violations = append(violations, fleetViolation{Shard: sb.Shard, Violation: v})
		}
	}
	kinds := make([]bwledger.KindTotal, 0, len(kindAcc))
	for _, e := range kindAcc {
		kinds = append(kinds, *e)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if kinds[i].Bytes != kinds[j].Bytes {
			return kinds[i].Bytes > kinds[j].Bytes
		}
		return kinds[i].Kind < kinds[j].Kind
	})
	sort.Slice(violations, func(i, j int) bool {
		if violations[i].Shard != violations[j].Shard {
			return violations[i].Shard < violations[j].Shard
		}
		return violations[i].WindowSeq < violations[j].WindowSeq
	})

	status := http.StatusOK
	if covered == 0 {
		status = http.StatusServiceUnavailable
	}
	serveapi.WriteJSON(w, status, map[string]any{
		"shards":          shards,
		"shardsCovered":   covered,
		"gaps":            gaps,
		"epochConsistent": epochConsistent,
		"aggregate": map[string]any{
			"totalBytes":    totalBytes,
			"totalMessages": totalMessages,
			"kinds":         kinds,
			"violations":    len(violations),
			"violationList": violations,
		},
	})
}

// scrapeBandwidth fetches one shard's ledger snapshot and health
// verdict. A shard without an async runtime answers /v1/bandwidth with
// 404; that is a scrape error (the shard is a gap, not a zero).
func (rt *Router) scrapeBandwidth(addr string) (*bwledger.Snapshot, bool, error) {
	resp, err := rt.client.Get(addr + "/v1/bandwidth")
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, errStatus(resp.StatusCode)
	}
	var snap bwledger.Snapshot
	if err := decodeJSON(resp.Body, &snap); err != nil {
		return nil, false, err
	}
	converged := false
	if hr, err := rt.client.Get(addr + "/v1/health"); err == nil {
		var hb struct {
			Converged bool `json:"converged"`
		}
		// /v1/health answers 503 with the same body shape while the
		// overlay converges; decode regardless of status.
		_ = decodeJSON(hr.Body, &hb)
		hr.Body.Close()
		converged = hb.Converged
	}
	return &snap, converged, nil
}

// errStatus is a tiny error for non-200 scrape answers.
type errStatus int

func (e errStatus) Error() string { return "upstream status " + strconv.Itoa(int(e)) }
