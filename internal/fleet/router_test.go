package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bwcluster"
	"bwcluster/internal/serveapi"
	"bwcluster/internal/transport"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testFleet stands up a 3-shard in-process fleet over one Chan
// transport: shard 0 builds and streams, shards 1 and 2 restore from the
// snapshot, and a Router fronts the three httptest servers.
type testFleet struct {
	sys     *bwcluster.System
	shards  []*Shard
	servers []*httptest.Server
	router  *Router
	front   *httptest.Server
}

func startFleet(t *testing.T, admission AdmissionConfig) *testFleet {
	t.Helper()
	f := &testFleet{sys: testSystem(t, 24)}
	tr := transport.NewChan(0)
	t.Cleanup(func() { tr.Close() })
	addrs := make([]string, 3)
	for i := 0; i < 3; i++ {
		sh := NewShard(ShardConfig{
			Index: i, Shards: 3, Transport: tr,
			Tick: time.Millisecond, Logger: discardLogger(),
		})
		srv := httptest.NewServer(sh.Handler())
		t.Cleanup(srv.Close)
		t.Cleanup(sh.Close)
		f.shards = append(f.shards, sh)
		f.servers = append(f.servers, srv)
		addrs[i] = srv.URL
	}
	// Replica endpoints must exist before the builder streams: the
	// transport refuses sends to unregistered peers.
	for _, i := range []int{1, 2} {
		if err := f.shards[i].StartReplica(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.shards[0].Install(f.sys); err != nil {
		t.Fatal(err)
	}
	if err := f.shards[0].StreamTo(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for _, sh := range f.shards {
		for !sh.Ready() {
			if time.Now().After(deadline) {
				t.Fatal("shards did not become ready")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	f.router = NewRouter(RouterConfig{
		Shards:        addrs,
		Logger:        discardLogger(),
		Admission:     admission,
		ProbeInterval: 20 * time.Millisecond,
	})
	f.router.Start()
	t.Cleanup(f.router.Stop)
	f.front = httptest.NewServer(f.router)
	t.Cleanup(f.front.Close)
	for {
		resp, err := http.Get(f.front.URL + "/v1/ready")
		if err == nil {
			var body struct {
				Ready       bool `json:"ready"`
				ShardsReady int  `json:"shardsReady"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil && body.Ready && body.ShardsReady == 3 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("router did not see all shards ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return f
}

// get fetches url and returns status, decoded body and the response
// header.
func get(t *testing.T, url string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode, body, resp.Header
}

func TestRouterFleetEndToEnd(t *testing.T) {
	f := startFleet(t, AdmissionConfig{})

	// Centralized query through the router agrees with the system.
	want, err := f.sys.FindCluster(4, 15)
	if err != nil {
		t.Fatal(err)
	}
	url := f.front.URL + "/v1/cluster?k=4&b=15"
	status, body, hdr := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("cluster status = %d body=%v", status, body)
	}
	if hdr.Get("X-Fleet-Cache") != "miss" {
		t.Fatalf("first query cache header = %q, want miss", hdr.Get("X-Fleet-Cache"))
	}
	members, _ := body["members"].([]any)
	if len(members) != len(want) {
		t.Fatalf("router answered %d members, system says %d", len(members), len(want))
	}

	// The identical query replays from the cache.
	status, _, hdr = get(t, url)
	if status != http.StatusOK || hdr.Get("X-Fleet-Cache") != "hit" {
		t.Fatalf("second query: status=%d cache=%q, want 200/hit", status, hdr.Get("X-Fleet-Cache"))
	}

	// Decentralized query routes to the start host's owner shard and
	// completes over the split overlay runtimes.
	start := 7
	status, body, hdr = get(t, fmt.Sprintf("%s/v1/cluster?k=4&b=15&mode=decentral&start=%d", f.front.URL, start))
	if status != http.StatusOK {
		t.Fatalf("decentral status = %d body=%v", status, body)
	}
	if hdr.Get("X-Fleet-Fallback") != "" {
		t.Fatalf("healthy fleet used fallback %q", hdr.Get("X-Fleet-Fallback"))
	}

	// Prediction endpoints proxy to any warm replica.
	status, body, _ = get(t, f.front.URL+"/v1/predict?u=1&v=2")
	if status != http.StatusOK {
		t.Fatalf("predict status = %d body=%v", status, body)
	}

	// Fleet introspection reports every shard warm at the same epoch.
	status, body, _ = get(t, f.front.URL+"/v1/fleet")
	if status != http.StatusOK {
		t.Fatalf("fleet status = %d", status)
	}
	if shards, _ := body["shards"].([]any); len(shards) != 3 {
		t.Fatalf("fleet reports %v", body["shards"])
	}
	if epoch := body["epoch"].(float64); uint64(epoch) != f.sys.Epoch() {
		t.Fatalf("router epoch %v, system epoch %d", epoch, f.sys.Epoch())
	}
}

// TestRouterFailover kills one shard under load: the router must mark
// it down on the first failed proxy and keep answering from the
// survivors with no 5xx beyond the in-flight drain — including
// decentralized queries owned by the dead shard, which fall back to a
// centralized answer from a warm replica.
func TestRouterFailover(t *testing.T) {
	f := startFleet(t, AdmissionConfig{})

	// Find a host whose decentral owner we are about to kill.
	victim := Owner(3, 3, f.sys.Epoch())
	f.servers[victim].CloseClientConnections()
	f.servers[victim].Close()

	// Immediately drive queries; vary k so nothing comes from the cache.
	var fiveXX, served int
	for i := 0; i < 40; i++ {
		k := 2 + i%4
		status, _, _ := get(t, fmt.Sprintf("%s/v1/cluster?k=%d&b=15", f.front.URL, k))
		if status >= 500 {
			fiveXX++
		} else if status == http.StatusOK {
			served++
		}
	}
	if fiveXX > 0 {
		t.Fatalf("%d 5xx responses after shard kill (served %d)", fiveXX, served)
	}
	if served == 0 {
		t.Fatal("no queries served after shard kill")
	}

	// The dead owner's decentral traffic is answered centrally elsewhere.
	status, body, hdr := get(t, f.front.URL+"/v1/cluster?k=5&b=15&mode=decentral&start=3")
	if status != http.StatusOK {
		t.Fatalf("decentral after owner kill: status=%d body=%v", status, body)
	}
	if hdr.Get("X-Fleet-Fallback") != "central" {
		t.Fatalf("fallback header = %q, want central", hdr.Get("X-Fleet-Fallback"))
	}

	// The router's view converges to 2 ready shards.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body, _ := get(t, f.front.URL+"/v1/ready")
		if int(body["shardsReady"].(float64)) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router still reports %v ready", body["shardsReady"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fakeShard is a minimal upstream for router-only tests: always ready
// at a controllable epoch, answers every query path with a canned body.
func fakeShard(t *testing.T, epoch *atomic.Uint64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ready", func(w http.ResponseWriter, r *http.Request) {
		serveapi.WriteJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": epoch.Load()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		serveapi.WriteJSON(w, http.StatusOK, map[string]any{"members": []int{1, 2}, "found": true})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func waitRouterReady(t *testing.T, front *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(front.URL + "/v1/ready")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("router never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterAdmissionShed(t *testing.T) {
	var epoch atomic.Uint64
	up := fakeShard(t, &epoch)
	rt := NewRouter(RouterConfig{
		Shards:        []string{up.URL},
		Logger:        discardLogger(),
		Admission:     AdmissionConfig{Rate: 1, Burst: 2, Queue: 0},
		ProbeInterval: 5 * time.Millisecond,
	})
	rt.Start()
	t.Cleanup(rt.Stop)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	waitRouterReady(t, front)

	req := func(tenant string) *http.Response {
		r, err := http.NewRequest(http.MethodGet, front.URL+"/v1/cluster?k=3&b=15", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Burst admits two; the third sheds with Retry-After.
	for i := 0; i < 2; i++ {
		if resp := req("greedy"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := req("greedy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant is unaffected.
	if resp := req("patient"); resp.StatusCode != http.StatusOK {
		t.Fatalf("independent tenant status = %d", resp.StatusCode)
	}
}

// TestRouterPropagatesRequestIdentity: the proxy must forward the
// request id and tenant to the shard it picks, so one request keeps
// one id across the hop and per-tenant accounting survives proxying.
func TestRouterPropagatesRequestIdentity(t *testing.T) {
	var epoch atomic.Uint64
	epoch.Store(3)
	type seen struct{ id, tenant string }
	got := make(chan seen, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ready", func(w http.ResponseWriter, r *http.Request) {
		serveapi.WriteJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": epoch.Load()})
	})
	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		select {
		case got <- seen{id: r.Header.Get("X-Request-Id"), tenant: r.Header.Get("X-Tenant")}:
		default:
		}
		serveapi.WriteJSON(w, http.StatusOK, map[string]any{"members": []int{1, 2}, "found": true})
	})
	up := httptest.NewServer(mux)
	t.Cleanup(up.Close)

	rt := NewRouter(RouterConfig{
		Shards:        []string{up.URL},
		Logger:        discardLogger(),
		ProbeInterval: 5 * time.Millisecond,
	})
	rt.Start()
	t.Cleanup(rt.Stop)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	waitRouterReady(t, front)

	req, err := http.NewRequest(http.MethodGet, front.URL+"/v1/cluster?k=3&b=15", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-supplied-1")
	req.Header.Set("X-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "caller-supplied-1" {
		t.Errorf("router response id = %q, want the caller-supplied id", id)
	}
	select {
	case s := <-got:
		if s.id != "caller-supplied-1" || s.tenant != "alice" {
			t.Errorf("shard saw id=%q tenant=%q, want caller-supplied-1/alice", s.id, s.tenant)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shard never saw the proxied query")
	}
}

func TestRouterEpochBumpFlushesCache(t *testing.T) {
	var epoch atomic.Uint64
	epoch.Store(3)
	up := fakeShard(t, &epoch)
	rt := NewRouter(RouterConfig{
		Shards:        []string{up.URL},
		Logger:        discardLogger(),
		ProbeInterval: 5 * time.Millisecond,
	})
	rt.Start()
	t.Cleanup(rt.Stop)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	waitRouterReady(t, front)

	url := front.URL + "/v1/cluster?k=3&b=15"
	if _, _, hdr := get(t, url); hdr.Get("X-Fleet-Cache") != "miss" {
		t.Fatal("first query should miss")
	}
	if _, _, hdr := get(t, url); hdr.Get("X-Fleet-Cache") != "hit" {
		t.Fatal("second query should hit")
	}
	// Membership moves: the probed epoch bump must flush the cache.
	epoch.Store(4)
	deadline := time.Now().Add(10 * time.Second)
	for rt.Cache().Epoch() != 4 {
		if time.Now().After(deadline) {
			t.Fatal("router never observed the epoch bump")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, _, hdr := get(t, url); hdr.Get("X-Fleet-Cache") != "miss" {
		t.Fatal("query after epoch bump should miss (cache flushed)")
	}
}
