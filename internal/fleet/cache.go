package fleet

import (
	"strconv"
	"sync"
)

// CacheKey identifies one cacheable query result: the endpoint and its
// normalized parameters, plus the membership epoch the answer was
// computed at. The epoch in the key makes a stale hit structurally
// impossible — an answer computed at epoch e can only be returned to a
// request at epoch e — while the wholesale flush on an epoch bump keeps
// dead epochs from pinning memory.
type CacheKey struct {
	// Endpoint is the route ("/v1/cluster", "/v1/node", ...).
	Endpoint string
	// Params is the normalized query parameter string (sorted keys).
	Params string
	// Epoch is the membership epoch the backend answered at.
	Epoch uint64
}

// CachedResponse is one stored answer: what the router replays to a
// hitting request without touching any shard.
type CachedResponse struct {
	// Status is the upstream HTTP status (only 200s are cached).
	Status int
	// Body is the response body.
	Body []byte
}

// Cache is the router's bounded query-result cache. Entries are evicted
// FIFO by insertion order when the bound is reached — the zipf-heavy
// workloads the fleet serves keep hot keys re-inserted shortly after
// any eviction, so FIFO's simplicity (no per-hit bookkeeping, no
// randomness) wins over LRU here. Bump flushes everything when the
// membership epoch moves.
type Cache struct {
	cap int

	mu      sync.Mutex
	entries map[CacheKey]CachedResponse // guarded by mu
	order   []CacheKey                  // guarded by mu; insertion FIFO
	epoch   uint64                      // guarded by mu; last observed epoch
	hits    uint64                      // guarded by mu
	misses  uint64                      // guarded by mu
	flushes uint64                      // guarded by mu
}

// NewCache builds a cache bounded to capacity entries (non-positive:
// 4096).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Cache{cap: capacity, entries: make(map[CacheKey]CachedResponse)}
}

// Get returns the cached answer for key, counting the hit or miss.
func (c *Cache) Get(key CacheKey) (CachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return resp, ok
}

// Put stores an answer, evicting the oldest entry when full. Entries
// whose epoch predates the last observed bump are refused — a slow
// proxy completing after a flush must not resurrect a stale answer.
func (c *Cache) Put(key CacheKey, resp CachedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if key.Epoch < c.epoch {
		return
	}
	if _, exists := c.entries[key]; exists {
		c.entries[key] = resp
		return
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = resp
	c.order = append(c.order, key)
}

// Bump records a membership epoch observation; a move past the last
// observed epoch flushes the cache wholesale. Returns whether a flush
// happened.
func (c *Cache) Bump(epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch <= c.epoch {
		return false
	}
	c.epoch = epoch
	if len(c.entries) > 0 {
		c.entries = make(map[CacheKey]CachedResponse)
		c.order = nil
		c.flushes++
		return true
	}
	return false
}

// Epoch returns the last epoch observed via Bump.
func (c *Cache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	// Entries is the current population.
	Entries int
	// Hits and Misses count Get outcomes; Flushes counts epoch-bump
	// invalidations.
	Hits, Misses, Flushes uint64
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, Flushes: c.flushes}
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// FormatParams renders the (k, b, mode, start) query tuple as the
// canonical Params string shared by every cache user, so equivalent
// requests written with different parameter orderings hit one entry.
func FormatParams(k int, b float64, mode string, start int) string {
	return "k=" + strconv.Itoa(k) +
		"&b=" + strconv.FormatFloat(b, 'g', -1, 64) +
		"&mode=" + mode +
		"&start=" + strconv.Itoa(start)
}
