package fleet

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestRouterBandwidthRollup drives the real 3-shard fleet, then checks
// the federated rollup: every shard contributes a ledger snapshot, the
// cross-shard aggregate accounts the overlay's gossip traffic, epochs
// agree, and killing a shard turns it into an explicit gap rather than
// silently shrinking the totals.
func TestRouterBandwidthRollup(t *testing.T) {
	f := startFleet(t, AdmissionConfig{})

	// Generate some routed traffic on top of the gossip the runtimes
	// already produced while converging.
	for i := 0; i < 5; i++ {
		status, body, _ := get(t, fmt.Sprintf("%s/v1/cluster?k=4&b=15&mode=decentral&start=%d", f.front.URL, i))
		if status != http.StatusOK {
			t.Fatalf("decentral warmup %d: status=%d body=%v", i, status, body)
		}
	}

	status, body, _ := get(t, f.front.URL+"/v1/fleet/bandwidth")
	if status != http.StatusOK {
		t.Fatalf("rollup status = %d body=%v", status, body)
	}
	shards, _ := body["shards"].([]any)
	if len(shards) != 3 {
		t.Fatalf("rollup lists %d shards, want 3", len(shards))
	}
	if got := int(body["shardsCovered"].(float64)); got != 3 {
		t.Fatalf("shardsCovered = %d, want 3 (gaps %v)", got, body["gaps"])
	}
	if body["epochConsistent"] != true {
		t.Fatalf("epochConsistent = %v", body["epochConsistent"])
	}
	agg, _ := body["aggregate"].(map[string]any)
	if agg == nil || agg["totalBytes"].(float64) <= 0 || agg["totalMessages"].(float64) <= 0 {
		t.Fatalf("aggregate accounted no traffic: %v", agg)
	}
	if kinds, _ := agg["kinds"].([]any); len(kinds) == 0 {
		t.Fatal("aggregate has no per-kind split")
	}
	// Per-shard entries carry their epoch and no gap flag.
	for i, raw := range shards {
		sh := raw.(map[string]any)
		if sh["gap"] == true {
			t.Fatalf("healthy shard %d reported as gap: %v", i, sh)
		}
		if uint64(sh["epoch"].(float64)) != f.sys.Epoch() {
			t.Fatalf("shard %d epoch = %v, system epoch %d", i, sh["epoch"], f.sys.Epoch())
		}
	}

	// Kill shard 2 and wait for the router to mark it down; the rollup
	// must report it as a gap while the survivors keep contributing.
	f.servers[2].CloseClientConnections()
	f.servers[2].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, rb, _ := get(t, f.front.URL+"/v1/ready")
		if int(rb["shardsReady"].(float64)) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router still reports %v shards ready", rb["shardsReady"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	status, body, _ = get(t, f.front.URL+"/v1/fleet/bandwidth")
	if status != http.StatusOK {
		t.Fatalf("rollup after kill: status = %d", status)
	}
	if got := int(body["shardsCovered"].(float64)); got != 2 {
		t.Fatalf("shardsCovered after kill = %d, want 2", got)
	}
	gaps, _ := body["gaps"].([]any)
	if len(gaps) != 1 || int(gaps[0].(float64)) != 2 {
		t.Fatalf("gaps = %v, want [2]", gaps)
	}
	dead := shardsAt(t, body, 2)
	if dead["gap"] != true {
		t.Fatalf("dead shard entry = %v, want gap=true", dead)
	}
}

// shardsAt extracts the i-th shard entry from a rollup body.
func shardsAt(t *testing.T, body map[string]any, i int) map[string]any {
	t.Helper()
	shards, _ := body["shards"].([]any)
	if i >= len(shards) {
		t.Fatalf("rollup has %d shards, want index %d", len(shards), i)
	}
	return shards[i].(map[string]any)
}
