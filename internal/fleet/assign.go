// Package fleet is the sharded serving tier: a stateless HTTP router in
// front of N shard processes that together host one overlay network.
// Every shard holds the same built System (replicated as wireVersion-2
// snapshots over the overlay transport), while the live async runtime's
// peers are partitioned across shards by a deterministic rendezvous
// assignment keyed on the membership epoch. The router admits requests
// per tenant (token bucket + bounded wait queue, 429 on overflow),
// caches query results keyed (endpoint, k, b, epoch), and fails over
// between shards on probe or proxy failure.
//
// The package is deliberately transport- and process-agnostic: shard
// wiring (re-exec, port exchange) lives in cmd/bwc-fleet; everything
// here is testable in-process with httptest shards.
package fleet

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Assign partitions hosts across shards by rendezvous (highest random
// weight) hashing keyed on the membership epoch: every participant that
// knows the host set, the shard count and the epoch computes the same
// partition with no coordination, and an epoch bump (host add/remove)
// reshuffles only the hosts whose winning shard actually changed —
// not the whole map, as a modulo assignment would.
//
// hosts may arrive in any order; the result lists each shard's hosts in
// ascending order. Shards ≤ 1 puts every host on shard 0.
func Assign(hosts []int, shards int, epoch uint64) [][]int {
	if shards < 1 {
		shards = 1
	}
	out := make([][]int, shards)
	for _, h := range hosts {
		best := Owner(h, shards, epoch)
		out[best] = append(out[best], h)
	}
	for _, part := range out {
		sort.Ints(part)
	}
	return out
}

// Owner returns the shard that hosts h under the same assignment
// Assign computes — the router's per-request form of the partition.
func Owner(h, shards int, epoch uint64) int {
	if shards < 1 {
		return 0
	}
	best, bestScore := 0, rendezvousScore(h, 0, epoch)
	for s := 1; s < shards; s++ {
		if score := rendezvousScore(h, s, epoch); score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// rendezvousScore hashes the (host, shard, epoch) triple with FNV-1a.
// FNV is not cryptographic, which is fine: the assignment needs balance
// and stability, not adversary resistance, and FNV is allocation-free.
func rendezvousScore(host, shard int, epoch uint64) uint64 {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(host))
	binary.LittleEndian.PutUint64(buf[8:], uint64(shard))
	binary.LittleEndian.PutUint64(buf[16:], epoch)
	h := fnv.New64a()
	h.Write(buf[:])
	return h.Sum64()
}
