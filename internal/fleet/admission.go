package fleet

import (
	"sync"
	"time"
)

// AdmissionConfig bounds one tenant's query rate at the router.
type AdmissionConfig struct {
	// Rate is the sustained tokens-per-second refill rate (non-positive:
	// 1000/s).
	Rate float64
	// Burst is the bucket capacity — how many requests may pass
	// back-to-back after an idle period (non-positive: 2×Rate capped to
	// at least 1).
	Burst float64
	// Queue is how many requests may wait for a future token before the
	// limiter starts shedding with 429 (negative: 0, shed immediately
	// when the bucket is empty; 0 means the same).
	Queue int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	return c
}

// Limiter is the router's per-tenant admission controller: one token
// bucket per tenant, refilled continuously at the configured rate, with
// a bounded reservation queue in front. A request that finds a token
// passes immediately; one that finds the bucket empty but the queue
// short reserves the next future token and is told how long to wait;
// past the queue bound the request is shed (the router answers 429) —
// the bounded queue converts a short burst into latency and a sustained
// overload into explicit backpressure instead of collapse.
//
// Time is passed in, not read: decisions are a pure function of
// (state, now), so tests drive the limiter with a synthetic clock and
// the router passes time.Now().
type Limiter struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
}

// bucket is one tenant's token state. tokens may go negative: each unit
// below zero is one queued reservation awaiting a future token.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a per-tenant limiter where every tenant gets the
// same config. Tenant buckets are created on first use.
func NewLimiter(cfg AdmissionConfig) *Limiter {
	return &Limiter{cfg: cfg.withDefaults(), buckets: make(map[string]*bucket)}
}

// Admit decides one request for tenant at time now. ok=false means
// shed (answer 429). ok=true with wait==0 means proceed immediately;
// wait>0 means the request holds a reservation for a future token and
// should be delayed by wait before proceeding.
func (l *Limiter) Admit(tenant string, now time.Time) (wait time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.cfg.Burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * l.cfg.Rate
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	// Queued reservations are the tokens below zero after this take.
	if -(b.tokens - 1) > float64(l.cfg.Queue) {
		return 0, false
	}
	b.tokens--
	// The reservation matures when the refill brings tokens back to 0.
	return time.Duration(-b.tokens / l.cfg.Rate * float64(time.Second)), true
}

// Tenants reports how many tenant buckets exist (observability).
func (l *Limiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
