package fleet

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"bwcluster"
	"bwcluster/internal/serveapi"
	"bwcluster/internal/transport"
)

// ShardConfig configures one serving shard.
type ShardConfig struct {
	// Index is this shard's id in [0, Shards); Shards is the fleet size.
	Index, Shards int
	// Transport is the overlay transport shared by the fleet's runtimes
	// and the snapshot replication streams (TCP across processes, Chan
	// in tests). The shard registers its peers and its replicator
	// endpoint on it but does not own it — the caller closes it.
	Transport transport.Transport
	// Tick is the async runtime's gossip period (non-positive: the
	// bwcluster default).
	Tick time.Duration
	// Logger receives lifecycle events.
	Logger *slog.Logger
	// Metrics is the registry exposition handler for the shard's
	// /metrics (nil: unrouted).
	Metrics http.Handler
}

// Shard is one serving process's state: the shared serveapi handler
// (unready until a system is installed), the replicator endpoint, and —
// once a system arrives, by build or by snapshot — the async runtime
// hosting this shard's slice of the rendezvous assignment.
//
// A builder shard calls Install with the system it built and StreamTo
// to warm the replicas; a replica shard calls StartReplica and becomes
// ready when its first snapshot stream completes.
type Shard struct {
	cfg ShardConfig
	api *serveapi.Handler
	rep *Replicator

	mu  sync.Mutex
	art *bwcluster.AsyncRuntime // guarded by mu; current runtime
	sys *bwcluster.System       // guarded by mu
}

// NewShard builds the shard's handler in the unready state.
func NewShard(cfg ShardConfig) *Shard {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	return &Shard{
		cfg: cfg,
		api: serveapi.New(serveapi.Config{Logger: cfg.Logger, Metrics: cfg.Metrics}),
	}
}

// Handler returns the shard's HTTP handler (the shared serving API).
func (s *Shard) Handler() http.Handler { return s.api }

// Ready reports whether a system is installed and serving.
func (s *Shard) Ready() bool { return s.api.Ready() }

// System returns the currently installed system, nil before the first
// Install.
func (s *Shard) System() *bwcluster.System {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys
}

// Install makes sys this shard's serving state: it computes the
// epoch-keyed rendezvous assignment, starts an async runtime hosting
// this shard's partition over the fleet transport, installs the backend
// (flipping /v1/ready), and stops any previous runtime. Replica shards
// reach Install through the replicator callback; the builder calls it
// directly.
func (s *Shard) Install(sys *bwcluster.System) error {
	parts := Assign(sys.Hosts(), s.cfg.Shards, sys.Epoch())
	local := parts[s.cfg.Index]
	art, err := sys.AsyncRuntimeWithTransport(s.cfg.Tick, s.cfg.Transport, local)
	if err != nil {
		return fmt.Errorf("fleet: shard %d: start runtime over %d local hosts: %w", s.cfg.Index, len(local), err)
	}
	s.mu.Lock()
	old := s.art
	s.art, s.sys = art, sys
	s.mu.Unlock()
	s.api.SetBackend(sys, art)
	if old != nil {
		old.Close()
	}
	s.cfg.Logger.Info("shard serving",
		"shard", s.cfg.Index, "hosts", len(local), "epoch", sys.Epoch())
	return nil
}

// StartReplica registers the shard's replicator endpoint and begins
// installing every snapshot stream that completes. Version-skewed
// streams leave the shard unready (serving wrong answers is worse than
// serving none); corrupt streams are discarded and the next awaited.
func (s *Shard) StartReplica() error {
	rep, err := NewReplicator(s.cfg.Transport, s.cfg.Index)
	if err != nil {
		return err
	}
	rep.OnSystem = func(sys *bwcluster.System, epoch uint64) {
		if err := s.Install(sys); err != nil {
			s.cfg.Logger.Error("replica install failed", "shard", s.cfg.Index, "err", err.Error())
		}
	}
	rep.OnError = func(err error) {
		s.cfg.Logger.Error("replica stream rejected", "shard", s.cfg.Index, "err", err.Error())
	}
	s.rep = rep
	rep.Start()
	return nil
}

// StreamTo snapshots the installed system and streams it to the given
// shard indices (the builder warming its replicas). The stream id must
// increase across calls so receivers prefer the newest stream.
func (s *Shard) StreamTo(streamID uint64, replicas ...int) error {
	s.mu.Lock()
	sys := s.sys
	s.mu.Unlock()
	if sys == nil {
		return fmt.Errorf("fleet: shard %d: no system to stream", s.cfg.Index)
	}
	blob, err := sys.SaveBytes()
	if err != nil {
		return fmt.Errorf("fleet: shard %d: snapshot: %w", s.cfg.Index, err)
	}
	for _, r := range replicas {
		if r == s.cfg.Index {
			continue
		}
		if err := SendSnapshot(s.cfg.Transport, s.cfg.Index, r, streamID, sys.Epoch(), blob); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the replicator and the serving runtime. The transport is
// the caller's to close.
func (s *Shard) Close() {
	if s.rep != nil {
		s.rep.Stop()
	}
	s.mu.Lock()
	art := s.art
	s.art = nil
	s.mu.Unlock()
	if art != nil {
		art.Close()
	}
}
