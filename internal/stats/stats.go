// Package stats provides the small set of descriptive statistics used by
// the simulation harness: means, percentiles, empirical CDFs and simple
// histograms. All functions are pure and operate on copies, so callers may
// keep mutating their slices after the call.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a value from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or an error for an empty sample.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CDFPoint is a single point of an empirical CDF: the fraction F of samples
// with value <= X.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF of xs as a sorted sequence of points, one
// per distinct sample value. F is always in (0, 1].
func CDF(xs []float64) ([]CDFPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	points := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Emit one point per run of equal values, at the end of the run.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		points = append(points, CDFPoint{X: sorted[i], F: float64(i+1) / n})
	}
	return points, nil
}

// CDFAt returns the empirical CDF of xs evaluated at x: the fraction of
// samples <= x.
func CDFAt(xs []float64, x float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs)), nil
}

// FractionIn returns the fraction of samples falling in the closed
// interval [lo, hi].
func FractionIn(xs []float64, lo, hi float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if lo > hi {
		return 0, fmt.Errorf("stats: interval [%v,%v] is inverted", lo, hi)
	}
	count := 0
	for _, v := range xs {
		if v >= lo && v <= hi {
			count++
		}
	}
	return float64(count) / float64(len(xs)), nil
}

// HistogramBin is one bin of a fixed-width histogram over [Lo, Hi).
type HistogramBin struct {
	Lo    float64
	Hi    float64
	Count int
}

// Histogram buckets xs into n equal-width bins spanning [min, max]. Values
// equal to max land in the last bin.
func Histogram(xs []float64, n int) ([]HistogramBin, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs n > 0, got %d", n)
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	bins := make([]HistogramBin, n)
	width := (hi - lo) / float64(n)
	if width == 0 {
		width = 1 // all samples identical: everything in bin 0
	}
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = lo + float64(i+1)*width
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		bins[idx].Count++
	}
	return bins, nil
}

// MeanInt is a convenience wrapper around Mean for integer samples.
func MeanInt(xs []int) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs)), nil
}
