package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "single", in: []float64{4}, want: 4},
		{name: "pair", in: []float64{2, 4}, want: 3},
		{name: "negatives", in: []float64{-1, 1, -3, 3}, want: 0},
		{name: "fractional", in: []float64{0.5, 1.5, 2.5}, want: 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatalf("Mean(%v) error: %v", tt.in, err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Variance(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := CDF(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("CDF(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := CDFAt(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("CDFAt(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Histogram(nil, 4); !errors.Is(err, ErrEmpty) {
		t.Errorf("Histogram(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := MeanInt(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MeanInt(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := FractionIn(nil, 0, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("FractionIn(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	in := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(in)
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	if math.Abs(v-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", v)
	}
	sd, err := StdDev(in)
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if math.Abs(sd-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestPercentile(t *testing.T) {
	in := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 15},
		{p: 100, want: 50},
		{p: 50, want: 35},
		{p: 25, want: 20},
		{p: 75, want: 40},
	}
	for _, tt := range tests {
		got, err := Percentile(in, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileOutOfRange(t *testing.T) {
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("Percentile(-1) should fail")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Percentile(in, 50); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 1, 2}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

func TestCDF(t *testing.T) {
	points, err := CDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(points) != len(want) {
		t.Fatalf("CDF returned %d points, want %d", len(points), len(want))
	}
	for i := range want {
		if points[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, points[i], want[i])
		}
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		x    float64
		want float64
	}{
		{x: 0, want: 0},
		{x: 1, want: 0.25},
		{x: 2.5, want: 0.5},
		{x: 4, want: 1},
		{x: 100, want: 1},
	}
	for _, tt := range tests {
		got, err := CDFAt(xs, tt.x)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("CDFAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestFractionIn(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	got, err := FractionIn(xs, 15, 45)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.6 {
		t.Errorf("FractionIn = %v, want 0.6", got)
	}
	if _, err := FractionIn(xs, 2, 1); err == nil {
		t.Error("inverted interval should fail")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	bins, err := Histogram(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	// 0..4 in bin 0 (width 5), 5..10 in bin 1 (10 lands in last bin).
	if bins[0].Count != 5 || bins[1].Count != 6 {
		t.Errorf("counts = %d,%d, want 5,6", bins[0].Count, bins[1].Count)
	}
	total := bins[0].Count + bins[1].Count
	if total != len(xs) {
		t.Errorf("histogram lost samples: %d != %d", total, len(xs))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	bins, err := Histogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("identical-sample histogram lost samples: %d", total)
	}
	if _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestMeanInt(t *testing.T) {
	got, err := MeanInt([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("MeanInt = %v, want 2.5", got)
	}
}

// Property: the CDF is monotonically non-decreasing in both X and F and
// ends at F == 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		points, err := CDF(xs)
		if err != nil {
			return false
		}
		for i := 1; i < len(points); i++ {
			if points[i].X <= points[i-1].X || points[i].F <= points[i-1].F {
				return false
			}
		}
		return points[len(points)-1].F == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile 0 == min, percentile 100 == max, and the 50th
// percentile lies between them.
func TestPercentileBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		p0, _ := Percentile(xs, 0)
		p100, _ := Percentile(xs, 100)
		p50, _ := Percentile(xs, 50)
		if p0 != lo || p100 != hi {
			t.Fatalf("p0=%v min=%v p100=%v max=%v", p0, lo, p100, hi)
		}
		if p50 < lo || p50 > hi {
			t.Fatalf("median %v outside [%v,%v]", p50, lo, hi)
		}
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		m, _ := Mean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		if m < lo-1e-9 || m > hi+1e-9 {
			t.Fatalf("mean %v outside [%v,%v]", m, lo, hi)
		}
	}
}

// Property: CDFAt evaluated at each CDF point X equals that point's F.
func TestCDFConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10)) // duplicates likely
		}
		points, err := CDF(xs)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			f, err := CDFAt(xs, p.X)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(f-p.F) > 1e-12 {
				t.Fatalf("CDFAt(%v)=%v, CDF point F=%v", p.X, f, p.F)
			}
		}
	}
}

func TestHistogramPreservesCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		nbins := 1 + rng.Intn(20)
		bins, err := Histogram(xs, nbins)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		if total != n {
			t.Fatalf("histogram total %d != %d", total, n)
		}
	}
}

func TestSortStability(t *testing.T) {
	// Percentile and CDF must agree on ordering semantics; spot check with
	// a shuffled input against its sorted self.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	shuffled := make([]float64, len(xs))
	copy(shuffled, xs)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	sort.Float64s(xs)
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
		a, _ := Percentile(xs, p)
		b, _ := Percentile(shuffled, p)
		if a != b {
			t.Errorf("percentile %v differs: %v vs %v", p, a, b)
		}
	}
}
