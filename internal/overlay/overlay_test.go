package overlay

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"bwcluster/internal/cluster"
	"bwcluster/internal/metric"
	"bwcluster/internal/predtree"
	"bwcluster/internal/testutil"
)

func buildNetwork(t *testing.T, n int, noise float64, cfg Config, seed int64) (*Network, *predtree.Tree, *metric.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	o := testutil.NoisyTreeMetric(n, noise, rng)
	tree, err := predtree.Build(o, 100, predtree.SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	return nw, tree, o
}

func classSpread() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := testutil.RandomTreeMetric(4, rng)
	tree, err := predtree.Build(o, 100, predtree.SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NCut: 0, Classes: []float64{1}},
		{NCut: 5, Classes: nil},
		{NCut: 5, Classes: []float64{0, 1}},
		{NCut: 5, Classes: []float64{2, 1}},
		{NCut: 5, Classes: []float64{1, 1}},
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(tree, cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	if _, err := NewNetwork(nil, Config{NCut: 5, Classes: []float64{1}}); err == nil {
		t.Error("nil tree should fail")
	}
}

func TestClassesFromBandwidths(t *testing.T) {
	classes, err := ClassesFromBandwidths([]float64{50, 25, 100, 50}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4} // 100/100, 100/50, 100/25 — ascending, deduped
	if len(classes) != len(want) {
		t.Fatalf("classes = %v, want %v", classes, want)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes = %v, want %v", classes, want)
		}
	}
	if _, err := ClassesFromBandwidths([]float64{0}, 100); err == nil {
		t.Error("b=0 should fail")
	}
}

func TestClassForSnapping(t *testing.T) {
	nw, _, _ := buildNetwork(t, 10, 0, Config{NCut: 5, Classes: []float64{2, 4, 8}}, 2)
	tests := []struct {
		l       float64
		want    float64
		wantErr bool
	}{
		{l: 2, want: 2},
		{l: 3, want: 2},
		{l: 4, want: 4},
		{l: 100, want: 8},
		{l: 1.5, wantErr: true},
	}
	for _, tt := range tests {
		got, _, err := nw.ClassFor(tt.l)
		if tt.wantErr {
			if !errors.Is(err, ErrNoClass) {
				t.Errorf("ClassFor(%v) err = %v, want ErrNoClass", tt.l, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ClassFor(%v): %v", tt.l, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ClassFor(%v) = %v, want %v", tt.l, got, tt.want)
		}
	}
}

// reachableVia returns the hosts reachable from x through neighbor m on
// the anchor tree (excluding x), computed independently of the protocol.
func reachableVia(tree *predtree.Tree, x, m int) []int {
	seen := map[int]bool{x: true, m: true}
	queue := []int{m}
	out := []int{m}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range tree.AnchorNeighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
				out = append(out, nb)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Theorem 3.2: converged aggrNode[x][m] holds the n_cut closest reachable
// hosts. Distances are compared as sorted multisets so distance ties pass.
func TestTheorem32NodeInfo(t *testing.T) {
	for _, noise := range []float64{0, 0.3} {
		cfg := Config{NCut: 4, Classes: classSpread()}
		nw, tree, _ := buildNetwork(t, 24, noise, cfg, 3)
		for _, x := range nw.Hosts() {
			for _, m := range nw.Neighbors(x) {
				reach := reachableVia(tree, x, m)
				wantDists := make([]float64, 0, len(reach))
				for _, u := range reach {
					wantDists = append(wantDists, nw.predDist(x, u))
				}
				sort.Float64s(wantDists)
				if len(wantDists) > cfg.NCut {
					wantDists = wantDists[:cfg.NCut]
				}
				got := nw.AggrNode(x, m)
				gotDists := make([]float64, 0, len(got))
				for _, u := range got {
					gotDists = append(gotDists, nw.predDist(x, u))
				}
				sort.Float64s(gotDists)
				if len(gotDists) != len(wantDists) {
					t.Fatalf("noise=%v x=%d m=%d: got %d nodes, want %d", noise, x, m, len(gotDists), len(wantDists))
				}
				for i := range wantDists {
					if math.Abs(gotDists[i]-wantDists[i]) > 1e-9 {
						t.Fatalf("noise=%v x=%d m=%d: dist[%d]=%v, want %v (got nodes %v)",
							noise, x, m, i, gotDists[i], wantDists[i], got)
					}
				}
				// Every propagated node must actually be reachable via m.
				reachSet := map[int]bool{}
				for _, u := range reach {
					reachSet[u] = true
				}
				for _, u := range got {
					if !reachSet[u] {
						t.Fatalf("x=%d m=%d: aggrNode contains unreachable %d", x, m, u)
					}
				}
			}
		}
	}
}

// Theorem 3.3: converged aggrCRT[x][m][l] equals the maximum over hosts w
// reachable via m of the max cluster size in w's clustering space.
func TestTheorem33CRT(t *testing.T) {
	cfg := Config{NCut: 4, Classes: classSpread()}
	nw, tree, _ := buildNetwork(t, 20, 0.2, cfg, 4)
	for _, x := range nw.Hosts() {
		for _, m := range nw.Neighbors(x) {
			got := nw.CRT(x, m)
			if len(got) != len(cfg.Classes) {
				t.Fatalf("x=%d m=%d: CRT has %d classes, want %d", x, m, len(got), len(cfg.Classes))
			}
			for ci, l := range cfg.Classes {
				want := 0
				for _, w := range reachableVia(tree, x, m) {
					space, _, err := nw.localSpace(w)
					if err != nil {
						t.Fatal(err)
					}
					size, _ := cluster.MaxClusterSize(space, l)
					if size > want {
						want = size
					}
				}
				if got[ci] != want {
					t.Fatalf("x=%d m=%d class=%v: CRT=%d, want %d", x, m, l, got[ci], want)
				}
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	nw, _, _ := buildNetwork(t, 10, 0, Config{NCut: 5, Classes: classSpread()}, 5)
	if _, err := nw.Query(999, 3, 8); err == nil {
		t.Error("unknown start should fail")
	}
	if _, err := nw.Query(0, 1, 8); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := nw.Query(0, 3, 0.01); !errors.Is(err, ErrNoClass) {
		t.Errorf("too-tight constraint err = %v, want ErrNoClass", err)
	}
}

// Any returned cluster must satisfy the snapped constraint on the
// predicted metric, from any start host.
func TestQueryResultsSatisfyConstraint(t *testing.T) {
	cfg := Config{NCut: 5, Classes: classSpread()}
	nw, tree, _ := buildNetwork(t, 30, 0.2, cfg, 6)
	_ = tree
	for _, start := range nw.Hosts() {
		for _, l := range []float64{4, 16, 64} {
			res, err := nw.Query(start, 4, l)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found() {
				continue
			}
			if len(res.Cluster) != 4 {
				t.Fatalf("cluster size %d, want 4", len(res.Cluster))
			}
			for i := 0; i < len(res.Cluster); i++ {
				for j := i + 1; j < len(res.Cluster); j++ {
					d := nw.predDist(res.Cluster[i], res.Cluster[j])
					if d > res.Class*(1+1e-9) {
						t.Fatalf("start=%d l=%v: pair (%d,%d) at %v > class %v",
							start, l, res.Cluster[i], res.Cluster[j], d, res.Class)
					}
				}
			}
		}
	}
}

// With n_cut >= n every peer's clustering space is the whole system, so
// the decentralized answer matches the centralized one for every query.
func TestUnlimitedNCutMatchesCentralized(t *testing.T) {
	n := 18
	cfg := Config{NCut: n, Classes: classSpread()}
	nw, _, _ := buildNetwork(t, n, 0, cfg, 7)
	pred, hosts := predictedSpace(t, nw)
	for _, l := range cfg.Classes {
		for k := 2; k <= n; k += 3 {
			central, err := cluster.FindCluster(pred, k, l)
			if err != nil {
				t.Fatal(err)
			}
			res, err := nw.Query(hosts[0], k, l)
			if err != nil {
				t.Fatal(err)
			}
			if (central != nil) != res.Found() {
				t.Fatalf("k=%d l=%v: centralized=%v decentralized found=%v",
					k, l, central, res.Found())
			}
		}
	}
}

// predictedSpace rebuilds the full predicted metric for comparison.
func predictedSpace(t *testing.T, nw *Network) (*metric.Matrix, []int) {
	t.Helper()
	hosts := nw.Hosts()
	m := metric.FromFunc(len(hosts), func(i, j int) float64 {
		return nw.predDist(hosts[i], hosts[j])
	})
	return m, hosts
}

// Decentralized responsiveness never exceeds centralized: if the
// decentralized query finds a cluster, the centralized algorithm on the
// same predicted metric must find one too.
func TestDecentralizedNeverBeatsCentralized(t *testing.T) {
	cfg := Config{NCut: 3, Classes: classSpread()}
	nw, _, _ := buildNetwork(t, 25, 0.2, cfg, 8)
	pred, hosts := predictedSpace(t, nw)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(10)
		l := cfg.Classes[rng.Intn(len(cfg.Classes))]
		start := hosts[rng.Intn(len(hosts))]
		res, err := nw.Query(start, k, l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found() {
			central, err := cluster.FindCluster(pred, k, l)
			if err != nil {
				t.Fatal(err)
			}
			if central == nil {
				t.Fatalf("decentralized found (k=%d l=%v) but centralized did not", k, l)
			}
		}
	}
}

func TestQueryHopsBoundedAndPathTraced(t *testing.T) {
	cfg := Config{NCut: 2, Classes: classSpread()}
	nw, _, _ := buildNetwork(t, 40, 0.3, cfg, 10)
	for _, start := range nw.Hosts() {
		res, err := nw.Query(start, 3, 32)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > len(nw.Hosts()) {
			t.Fatalf("hops %d exceeds host count", res.Hops)
		}
		if len(res.Path) != res.Hops+1 {
			t.Fatalf("path %v has %d entries, want hops+1 = %d", res.Path, len(res.Path), res.Hops+1)
		}
		if res.Path[0] != start {
			t.Fatalf("path starts at %d, want %d", res.Path[0], start)
		}
		if res.Path[len(res.Path)-1] != res.Answered {
			t.Fatalf("path ends at %d, answered by %d", res.Path[len(res.Path)-1], res.Answered)
		}
		// Consecutive path entries are overlay neighbors and the walk
		// never revisits a host (the overlay is a tree).
		seen := map[int]bool{}
		for i, h := range res.Path {
			if seen[h] {
				t.Fatalf("path %v revisits %d", res.Path, h)
			}
			seen[h] = true
			if i == 0 {
				continue
			}
			isNb := false
			for _, nb := range nw.Neighbors(res.Path[i-1]) {
				if nb == h {
					isNb = true
					break
				}
			}
			if !isNb {
				t.Fatalf("path step %d -> %d is not an overlay edge", res.Path[i-1], h)
			}
		}
	}
}

func TestRefreshPicksUpNewHosts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := testutil.RandomTreeMetric(12, rng)
	tree, err := predtree.Build(o, 100, predtree.SearchFull, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NCut: 5, Classes: classSpread()}
	nw, err := NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	if len(nw.Hosts()) != 8 {
		t.Fatalf("hosts = %d, want 8", len(nw.Hosts()))
	}
	for _, h := range []int{8, 9, 10, 11} {
		if err := tree.Add(h, o); err != nil {
			t.Fatal(err)
		}
	}
	nw.Refresh()
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	if len(nw.Hosts()) != 12 {
		t.Fatalf("hosts after refresh = %d, want 12", len(nw.Hosts()))
	}
	// The refreshed network still satisfies Theorem 3.2.
	for _, x := range nw.Hosts() {
		for _, m := range nw.Neighbors(x) {
			reach := reachableVia(tree, x, m)
			got := nw.AggrNode(x, m)
			want := len(reach)
			if want > cfg.NCut {
				want = cfg.NCut
			}
			if len(got) != want {
				t.Fatalf("x=%d m=%d: aggrNode size %d, want %d", x, m, len(got), want)
			}
		}
	}
}

func TestAccessorsUnknownHost(t *testing.T) {
	nw, _, _ := buildNetwork(t, 6, 0, Config{NCut: 3, Classes: classSpread()}, 12)
	if nw.AggrNode(99, 0) != nil {
		t.Error("AggrNode for unknown host should be nil")
	}
	if nw.CRT(99, 0) != nil {
		t.Error("CRT for unknown host should be nil")
	}
	if nw.SelfCRT(99) != nil {
		t.Error("SelfCRT for unknown host should be nil")
	}
	if nw.Neighbors(99) != nil {
		t.Error("Neighbors for unknown host should be nil")
	}
	if _, err := nw.ClusteringSpace(99); err == nil {
		t.Error("ClusteringSpace for unknown host should fail")
	}
}

func TestConvergeIsIdempotent(t *testing.T) {
	nw, _, _ := buildNetwork(t, 15, 0.2, Config{NCut: 4, Classes: classSpread()}, 13)
	before := nw.Rounds()
	extra, err := nw.Converge(0)
	if err != nil {
		t.Fatal(err)
	}
	// A converged network changes nothing: one probe round per phase.
	if extra > 2 {
		t.Errorf("converged network ran %d extra rounds", extra)
	}
	if nw.Rounds() <= 0 || nw.Rounds() < before {
		t.Errorf("round counter broken: %d", nw.Rounds())
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := Config{NCut: 4, Classes: classSpread()}
	nw, _, _ := buildNetwork(t, 20, 0.2, cfg, 15)
	st := nw.Stats()
	if st.NodeInfoMessages <= 0 || st.CRTMessages <= 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.Messages() != st.NodeInfoMessages+st.CRTMessages {
		t.Errorf("Messages() inconsistent: %+v", st)
	}
	// Each Algorithm 2 message carries at most n_cut records.
	if st.NodeInfoRecords > st.NodeInfoMessages*cfg.NCut {
		t.Errorf("node records %d exceed messages x n_cut %d",
			st.NodeInfoRecords, st.NodeInfoMessages*cfg.NCut)
	}
	// Each Algorithm 3 message carries exactly |L| entries.
	if st.CRTRecords != st.CRTMessages*len(cfg.Classes) {
		t.Errorf("CRT records %d != messages x classes %d",
			st.CRTRecords, st.CRTMessages*len(cfg.Classes))
	}
	// Per round, messages equal twice the edge count (both directions).
	edges := 0
	for _, h := range nw.Hosts() {
		edges += len(nw.Neighbors(h))
	}
	if st.Messages()%edges != 0 {
		t.Errorf("messages %d not a multiple of directed edges %d", st.Messages(), edges)
	}
}

func TestClassesCopy(t *testing.T) {
	nw, _, _ := buildNetwork(t, 6, 0, Config{NCut: 3, Classes: classSpread()}, 14)
	cl := nw.Classes()
	cl[0] = 999
	if nw.Classes()[0] == 999 {
		t.Error("Classes aliases internal state")
	}
	h := nw.Hosts()
	h[0] = 999
	if nw.Hosts()[0] == 999 {
		t.Error("Hosts aliases internal state")
	}
}
