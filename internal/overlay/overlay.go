// Package overlay implements the paper's decentralized clustering
// protocol on top of the prediction-tree substrate: every host is a peer
// on the anchor-tree overlay and runs the two background aggregation
// mechanisms —
//
//   - Algorithm 2 (DynAggrNodeInfo): each peer learns, per neighbor, the
//     n_cut closest nodes reachable through that neighbor;
//   - Algorithm 3 (DynAggrMaxCluster): each peer learns, per neighbor and
//     per bandwidth class, the maximum cluster size available through that
//     neighbor, forming its cluster routing table (CRT);
//
// and answers queries with Algorithm 4 (ProcessQuery): try the local
// clustering space first, otherwise forward toward a neighbor whose CRT
// promises a big-enough cluster.
//
// The engine here is synchronous and deterministic: rounds exchange all
// messages simultaneously, which converges to the unique fixed point the
// correctness theorems (3.2, 3.3) describe. Package runtime runs the same
// peer logic asynchronously over channels.
package overlay

import (
	"fmt"
	"sort"

	"bwcluster/internal/cluster"
	"bwcluster/internal/metric"
)

// DefaultNCut is the paper's propagation cutoff (Sec. IV-B).
const DefaultNCut = 10

// Config parameterizes the protocol.
type Config struct {
	// NCut caps how many node records a peer propagates to a neighbor per
	// round (the paper's n_cut).
	NCut int
	// Classes is the predetermined set of diameter classes L, ascending.
	// Queries snap their constraint to the largest class that does not
	// exceed it, which is conservative (never relaxes the constraint).
	Classes []float64
}

func (c Config) validate() error {
	if c.NCut < 1 {
		return fmt.Errorf("overlay: NCut must be >= 1, got %d", c.NCut)
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("overlay: at least one diameter class is required")
	}
	for i, l := range c.Classes {
		if l <= 0 {
			return fmt.Errorf("overlay: class %d = %v must be positive", i, l)
		}
		if i > 0 && c.Classes[i] <= c.Classes[i-1] {
			return fmt.Errorf("overlay: classes must be strictly ascending")
		}
	}
	return nil
}

// ClassesFromBandwidths converts a set of bandwidth classes (Mbps) into
// ascending diameter classes using the rational transform with constant c.
func ClassesFromBandwidths(bws []float64, c float64) ([]float64, error) {
	out := make([]float64, 0, len(bws))
	for _, b := range bws {
		l, err := metric.DistanceForBandwidthConstraint(b, c)
		if err != nil {
			return nil, fmt.Errorf("overlay: bandwidth class %v: %w", b, err)
		}
		out = append(out, l)
	}
	sort.Float64s(out)
	// Drop duplicates.
	dedup := out[:0]
	for i, l := range out {
		if i == 0 || l != dedup[len(dedup)-1] {
			dedup = append(dedup, l)
		}
	}
	return dedup, nil
}

// Substrate is what the protocol needs from the prediction framework: the
// member hosts, the anchor-tree adjacency (the overlay links), and the
// predicted pairwise distances. Both predtree.Tree and predtree.Forest
// satisfy it.
type Substrate interface {
	Len() int
	Hosts() []int
	AnchorNeighbors(h int) []int
	DistMatrix() (*metric.Matrix, []int)
}

// peer is the protocol state of one host.
type peer struct {
	id        int
	neighbors []int         // anchor-tree adjacency, sorted
	aggrNode  map[int][]int // neighbor -> propagated close nodes
	aggrCRT   map[int][]int // neighbor -> per-class max cluster size
	selfCRT   []int         // per-class max cluster size of own space
}

// Stats counts the background traffic the protocol has generated,
// quantifying the paper's scalability requirement: every peer talks only
// to its anchor-tree neighbors, and each message carries at most n_cut
// node records or |L| CRT entries.
type Stats struct {
	// NodeInfoMessages and CRTMessages count Algorithm 2 / Algorithm 3
	// messages sent.
	NodeInfoMessages int
	CRTMessages      int
	// NodeInfoRecords counts the node records shipped inside Algorithm 2
	// messages (each <= n_cut per message).
	NodeInfoRecords int
	// CRTRecords counts per-class entries shipped inside Algorithm 3
	// messages.
	CRTRecords int
}

// Messages returns the total message count.
func (s Stats) Messages() int { return s.NodeInfoMessages + s.CRTMessages }

// Network is the collection of peers plus the predicted-distance metric
// they share (each peer's slice of it is locally computable from distance
// labels; the simulation keeps it materialized for speed).
type Network struct {
	cfg    Config
	sub    Substrate
	hosts  []int
	index  map[int]int // host id -> row in dist
	dist   *metric.Matrix
	peers  map[int]*peer
	rounds int // background rounds executed so far
	stats  Stats
}

// NewNetwork builds the overlay for every host currently in the
// substrate (a prediction tree or forest).
func NewNetwork(sub Substrate, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sub == nil || sub.Len() == 0 {
		return nil, fmt.Errorf("overlay: empty prediction substrate")
	}
	nw := &Network{cfg: cfg, sub: sub}
	nw.reload()
	return nw, nil
}

// reload re-reads hosts, adjacency and predicted distances from the tree,
// preserving any aggregation state for hosts that persist.
func (nw *Network) reload() {
	dist, hosts := nw.sub.DistMatrix()
	nw.dist = dist
	nw.hosts = hosts
	nw.index = make(map[int]int, len(hosts))
	for i, h := range hosts {
		nw.index[h] = i
	}
	old := nw.peers
	nw.peers = make(map[int]*peer, len(hosts))
	for _, h := range hosts {
		nb := nw.sub.AnchorNeighbors(h)
		sort.Ints(nb)
		p := &peer{
			id:        h,
			neighbors: nb,
			aggrNode:  make(map[int][]int, len(nb)),
			aggrCRT:   make(map[int][]int, len(nb)),
		}
		if prev, ok := old[h]; ok {
			for _, m := range nb {
				if v, ok := prev.aggrNode[m]; ok {
					p.aggrNode[m] = v
				}
				if v, ok := prev.aggrCRT[m]; ok {
					p.aggrCRT[m] = v
				}
			}
		}
		nw.peers[h] = p
	}
}

// Refresh picks up hosts added to the underlying tree since the network
// was built (used by dynamic-membership scenarios). Existing aggregation
// state is kept and re-converged incrementally.
func (nw *Network) Refresh() {
	nw.reload()
}

// Resync picks up membership changes in the underlying substrate —
// including removals, which Refresh alone does not handle: surviving
// peers' node-info aggregation may still reference departed hosts, and
// those records must be dropped before the next round reads them (the
// reloaded distance matrix no longer has rows for departed hosts).
// Aggregation state mentioning only surviving hosts is kept, so
// re-convergence after a removal is incremental: stale values flush out
// within the anchor-tree diameter because every round overwrites them
// under the split-horizon rule, they are never maxed into place.
func (nw *Network) Resync() {
	nw.reload()
	for _, p := range nw.peers {
		for v, nodes := range p.aggrNode {
			kept := nodes[:0]
			for _, u := range nodes {
				if _, ok := nw.index[u]; ok {
					kept = append(kept, u)
				}
			}
			p.aggrNode[v] = kept
		}
	}
}

// Hosts returns the overlay members in join order.
func (nw *Network) Hosts() []int {
	out := make([]int, len(nw.hosts))
	copy(out, nw.hosts)
	return out
}

// Rounds reports how many background rounds have been executed.
func (nw *Network) Rounds() int { return nw.rounds }

// Stats reports the background traffic generated so far.
func (nw *Network) Stats() Stats { return nw.stats }

// Classes returns the configured diameter classes.
func (nw *Network) Classes() []float64 {
	out := make([]float64, len(nw.cfg.Classes))
	copy(out, nw.cfg.Classes)
	return out
}

// predDist returns the predicted distance between hosts a and b.
func (nw *Network) predDist(a, b int) float64 {
	return nw.dist.Dist(nw.index[a], nw.index[b])
}

// RunNodeInfoRound executes one synchronous round of Algorithm 2 at every
// peer: each neighbor pair exchanges propNode messages computed from the
// previous round's state. It reports whether any aggrNode entry changed.
func (nw *Network) RunNodeInfoRound() bool {
	nw.rounds++
	mConvergeRounds.Inc()
	type msg struct {
		from, to int
		nodes    []int
	}
	var msgs []msg
	for _, h := range nw.hosts {
		m := nw.peers[h]
		for _, x := range m.neighbors {
			nodes := nw.propNode(m, x)
			nw.stats.NodeInfoMessages++
			nw.stats.NodeInfoRecords += len(nodes)
			mGossip.Inc()
			msgs = append(msgs, msg{from: h, to: x, nodes: nodes})
		}
	}
	changed := false
	for _, mg := range msgs {
		p := nw.peers[mg.to]
		if !equalInts(p.aggrNode[mg.from], mg.nodes) {
			p.aggrNode[mg.from] = mg.nodes
			changed = true
		}
	}
	return changed
}

// propNode computes the message m sends to neighbor x per Algorithm 2:
// the n_cut nodes of {m} ∪ ⋃_{v≠x} m.aggrNode[v] closest to x in
// predicted distance. Ties break on host id, which makes the fixed point
// unique.
func (nw *Network) propNode(m *peer, x int) []int {
	cand := map[int]bool{m.id: true}
	for _, v := range m.neighbors {
		if v == x {
			continue
		}
		for _, u := range m.aggrNode[v] {
			cand[u] = true
		}
	}
	delete(cand, x)
	ids := make([]int, 0, len(cand))
	for u := range cand {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := nw.predDist(x, ids[i]), nw.predDist(x, ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > nw.cfg.NCut {
		ids = ids[:nw.cfg.NCut]
	}
	sort.Ints(ids) // canonical storage order
	return ids
}

// ClusteringSpace returns V_x = {x} ∪ ⋃_v x.aggrNode[v], sorted: the node
// set peer x can form clusters from.
func (nw *Network) ClusteringSpace(x int) ([]int, error) {
	p, ok := nw.peers[x]
	if !ok {
		return nil, fmt.Errorf("overlay: unknown host %d", x)
	}
	set := map[int]bool{x: true}
	for _, v := range p.neighbors {
		for _, u := range p.aggrNode[v] {
			set[u] = true
		}
	}
	out := make([]int, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Ints(out)
	return out, nil
}

// spaceFor materializes the predicted-distance submatrix over the given
// hosts; the returned slice maps submatrix index back to host id.
func (nw *Network) spaceFor(hosts []int) (*metric.Matrix, []int) {
	sub := metric.FromFunc(len(hosts), func(i, j int) float64 {
		return nw.predDist(hosts[i], hosts[j])
	})
	return sub, hosts
}

// RecomputeSelfCRT evaluates every peer's local clustering space against
// all classes (the first half of Algorithm 3). Call after the node-info
// aggregation has converged; Converge does this automatically.
func (nw *Network) RecomputeSelfCRT() error {
	for _, h := range nw.hosts {
		p := nw.peers[h]
		space, _, err := nw.localSpace(h)
		if err != nil {
			return err
		}
		ix, err := cluster.NewIndex(space)
		if err != nil {
			return fmt.Errorf("overlay: index for host %d: %w", h, err)
		}
		p.selfCRT = make([]int, len(nw.cfg.Classes))
		for ci, l := range nw.cfg.Classes {
			p.selfCRT[ci] = ix.MaxSize(l)
		}
	}
	return nil
}

func (nw *Network) localSpace(x int) (*metric.Matrix, []int, error) {
	hosts, err := nw.ClusteringSpace(x)
	if err != nil {
		return nil, nil, err
	}
	sub, ids := nw.spaceFor(hosts)
	return sub, ids, nil
}

// RunCRTRound executes one synchronous propagation round of Algorithm 3
// and reports whether any CRT entry changed. RecomputeSelfCRT must have
// run first.
func (nw *Network) RunCRTRound() bool {
	nw.rounds++
	mConvergeRounds.Inc()
	type msg struct {
		from, to int
		crt      []int
	}
	var msgs []msg
	for _, h := range nw.hosts {
		m := nw.peers[h]
		for _, x := range m.neighbors {
			crt := make([]int, len(nw.cfg.Classes))
			copy(crt, m.selfCRT)
			for _, v := range m.neighbors {
				if v == x {
					continue
				}
				for ci, size := range m.aggrCRT[v] {
					if size > crt[ci] {
						crt[ci] = size
					}
				}
			}
			nw.stats.CRTMessages++
			nw.stats.CRTRecords += len(crt)
			mGossip.Inc()
			msgs = append(msgs, msg{from: h, to: x, crt: crt})
		}
	}
	changed := false
	for _, mg := range msgs {
		p := nw.peers[mg.to]
		if !equalInts(p.aggrCRT[mg.from], mg.crt) {
			p.aggrCRT[mg.from] = mg.crt
			changed = true
		}
	}
	return changed
}

// Converge runs node-info rounds to their fixed point, recomputes local
// CRTs, and runs CRT rounds to their fixed point. maxRounds bounds each
// phase (the fixed point is reached within the anchor-tree diameter; pass
// 0 to use the number of hosts). It returns the total rounds executed.
func (nw *Network) Converge(maxRounds int) (int, error) {
	if maxRounds <= 0 {
		maxRounds = len(nw.hosts)
	}
	start := nw.rounds
	for i := 0; i < maxRounds; i++ {
		if !nw.RunNodeInfoRound() {
			break
		}
	}
	if err := nw.RecomputeSelfCRT(); err != nil {
		return nw.rounds - start, err
	}
	for i := 0; i < maxRounds; i++ {
		if !nw.RunCRTRound() {
			break
		}
	}
	return nw.rounds - start, nil
}

// AggrNode exposes x.aggrNode[m] (sorted copy) for tests and diagnostics.
func (nw *Network) AggrNode(x, m int) []int {
	p, ok := nw.peers[x]
	if !ok {
		return nil
	}
	out := make([]int, len(p.aggrNode[m]))
	copy(out, p.aggrNode[m])
	return out
}

// CRT exposes x.aggrCRT[m] (per-class copy).
func (nw *Network) CRT(x, m int) []int {
	p, ok := nw.peers[x]
	if !ok {
		return nil
	}
	out := make([]int, len(p.aggrCRT[m]))
	copy(out, p.aggrCRT[m])
	return out
}

// SelfCRT exposes x's own per-class maximum cluster sizes.
func (nw *Network) SelfCRT(x int) []int {
	p, ok := nw.peers[x]
	if !ok {
		return nil
	}
	out := make([]int, len(p.selfCRT))
	copy(out, p.selfCRT)
	return out
}

// Neighbors returns x's overlay neighbors.
func (nw *Network) Neighbors(x int) []int {
	p, ok := nw.peers[x]
	if !ok {
		return nil
	}
	out := make([]int, len(p.neighbors))
	copy(out, p.neighbors)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
