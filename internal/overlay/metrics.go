package overlay

import "bwcluster/internal/telemetry"

// Telemetry for the decentralized protocol. The paper evaluates the
// protocol by message count and routing hops (§V); these series keep
// both continuously measured on the serving path instead of recomputed
// by the simulation harness.
var (
	mQueries = telemetry.NewCounter("bwc_overlay_queries_total",
		"Decentralized cluster queries processed (Algorithm 4).")
	mQueryHops = telemetry.NewHistogram("bwc_overlay_query_hops",
		"Overlay hops traveled per decentralized query.",
		telemetry.HopBuckets())
	mGossip = telemetry.NewCounter("bwc_overlay_gossip_messages_total",
		"Algorithm 2/3 gossip messages sent by the synchronous engine.")
	mConvergeRounds = telemetry.NewCounter("bwc_overlay_converge_rounds_total",
		"Background protocol rounds executed.")
)
