package overlay

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// reachableViaAdjacency recomputes the reachable set using the network's
// CURRENT (possibly spliced) adjacency instead of the substrate's.
func reachableViaAdjacency(nw *Network, x, m int) []int {
	seen := map[int]bool{x: true, m: true}
	queue := []int{m}
	out := []int{m}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range nw.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
				out = append(out, nb)
			}
		}
	}
	sort.Ints(out)
	return out
}

func assertOverlayIsTree(t *testing.T, nw *Network) {
	t.Helper()
	hosts := nw.Hosts()
	edges := 0
	for _, h := range hosts {
		edges += len(nw.Neighbors(h))
	}
	if edges != 2*(len(hosts)-1) {
		t.Fatalf("overlay has %d directed edges over %d hosts, want %d",
			edges, len(hosts), 2*(len(hosts)-1))
	}
	// Connectivity: everything reachable from the first host by full BFS.
	if len(hosts) > 1 {
		seen := map[int]bool{hosts[0]: true}
		queue := []int{hosts[0]}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range nw.Neighbors(cur) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if len(seen) != len(hosts) {
			t.Fatalf("overlay disconnected: %d of %d hosts reachable", len(seen), len(hosts))
		}
	}
	// Symmetry of adjacency.
	for _, h := range hosts {
		for _, nb := range nw.Neighbors(h) {
			found := false
			for _, back := range nw.Neighbors(nb) {
				if back == h {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric overlay edge %d -> %d", h, nb)
			}
		}
	}
}

func TestRemoveHostSplicesAndReconverges(t *testing.T) {
	cfg := Config{NCut: 4, Classes: classSpread()}
	nw, _, _ := buildNetwork(t, 24, 0.2, cfg, 61)
	rng := rand.New(rand.NewSource(62))

	removed := map[int]bool{}
	hosts := nw.Hosts()
	// Remove a mix: a high-degree host and two random ones.
	deg := func(h int) int { return len(nw.Neighbors(h)) }
	hub := hosts[0]
	for _, h := range hosts {
		if deg(h) > deg(hub) {
			hub = h
		}
	}
	victims := []int{hub}
	for len(victims) < 3 {
		v := hosts[rng.Intn(len(hosts))]
		if v != hub && !removed[v] {
			victims = append(victims, v)
			removed[v] = true
		}
	}
	removed[hub] = true

	for _, v := range victims {
		if err := nw.RemoveHost(v); err != nil {
			t.Fatal(err)
		}
		assertOverlayIsTree(t, nw)
		if _, err := nw.Converge(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(nw.Hosts()); got != 21 {
		t.Fatalf("hosts = %d, want 21", got)
	}

	// Theorem 3.2 holds against the spliced adjacency.
	for _, x := range nw.Hosts() {
		for _, m := range nw.Neighbors(x) {
			reach := reachableViaAdjacency(nw, x, m)
			wantDists := make([]float64, 0, len(reach))
			for _, u := range reach {
				wantDists = append(wantDists, nw.predDist(x, u))
			}
			sort.Float64s(wantDists)
			if len(wantDists) > cfg.NCut {
				wantDists = wantDists[:cfg.NCut]
			}
			got := nw.AggrNode(x, m)
			gotDists := make([]float64, 0, len(got))
			for _, u := range got {
				if removed[u] {
					t.Fatalf("aggrNode of %d via %d contains removed host %d", x, m, u)
				}
				gotDists = append(gotDists, nw.predDist(x, u))
			}
			sort.Float64s(gotDists)
			if len(gotDists) != len(wantDists) {
				t.Fatalf("x=%d m=%d: %d nodes, want %d", x, m, len(gotDists), len(wantDists))
			}
			for i := range wantDists {
				if math.Abs(gotDists[i]-wantDists[i]) > 1e-9 {
					t.Fatalf("x=%d m=%d: dist[%d]=%v, want %v", x, m, i, gotDists[i], wantDists[i])
				}
			}
		}
	}

	// Queries still work and never name a removed host.
	for _, start := range nw.Hosts() {
		res, err := nw.Query(start, 3, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, member := range res.Cluster {
			if removed[member] {
				t.Fatalf("query returned removed host %d", member)
			}
		}
	}
}

func TestRemoveHostValidation(t *testing.T) {
	nw, _, _ := buildNetwork(t, 6, 0, Config{NCut: 3, Classes: classSpread()}, 63)
	if err := nw.RemoveHost(999); err == nil {
		t.Error("unknown host should fail")
	}
	hosts := nw.Hosts()
	for _, h := range hosts[:len(hosts)-1] {
		if err := nw.RemoveHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.RemoveHost(hosts[len(hosts)-1]); err == nil {
		t.Error("removing the last host should fail")
	}
}

func TestRemoveLeafHost(t *testing.T) {
	cfg := Config{NCut: 4, Classes: classSpread()}
	nw, _, _ := buildNetwork(t, 10, 0, cfg, 64)
	// A leaf of the overlay (degree 1).
	leaf := -1
	for _, h := range nw.Hosts() {
		if len(nw.Neighbors(h)) == 1 {
			leaf = h
			break
		}
	}
	if leaf == -1 {
		t.Skip("no overlay leaf in this topology")
	}
	if err := nw.RemoveHost(leaf); err != nil {
		t.Fatal(err)
	}
	assertOverlayIsTree(t, nw)
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
}
