package overlay

import (
	"errors"
	"fmt"
	"sort"

	"bwcluster/internal/cluster"
	"bwcluster/internal/telemetry"
)

// ErrNoClass is returned when a query's diameter constraint is tighter
// than every configured class.
var ErrNoClass = errors.New("overlay: constraint tighter than every diameter class")

// Result describes the outcome of a decentralized query.
type Result struct {
	// Cluster holds the k selected host ids, nil if none was found.
	Cluster []int
	// Hops is how many times the query was forwarded before terminating.
	Hops int
	// Answered is the host that produced the final answer.
	Answered int
	// Class is the diameter class the query was snapped to.
	Class float64
	// Path lists every host the query visited, starting host first
	// (len(Path) == Hops+1).
	Path []int
}

// Found reports whether a cluster was returned.
func (r Result) Found() bool { return len(r.Cluster) > 0 }

// ClassFor snaps a diameter constraint l to the largest configured class
// that does not exceed it (never relaxing the constraint). Returns the
// class value and its index.
func (nw *Network) ClassFor(l float64) (float64, int, error) {
	idx := sort.SearchFloat64s(nw.cfg.Classes, l)
	// Classes[idx-1] <= l < Classes[idx] unless Classes[idx] == l.
	if idx < len(nw.cfg.Classes) && nw.cfg.Classes[idx] == l {
		return l, idx, nil
	}
	if idx == 0 {
		return 0, 0, fmt.Errorf("%w: l=%v < smallest class %v", ErrNoClass, l, nw.cfg.Classes[0])
	}
	return nw.cfg.Classes[idx-1], idx - 1, nil
}

// Query runs Algorithm 4 starting at host start with size constraint k and
// diameter constraint l. The query is snapped to a class, tried against
// the start peer's local clustering space, and forwarded along the overlay
// while some neighbor's CRT promises a big-enough cluster. A nil Cluster
// with no error means the network (correctly or not) concluded no cluster
// exists.
func (nw *Network) Query(start, k int, l float64) (Result, error) {
	return nw.QueryTraced(start, k, l, nil)
}

// QueryTraced is Query with an optional trace: when span is non-nil,
// every hop of the overlay route is recorded as a child span carrying
// the peer id, the local CRT promise, the local clustering-space size
// (when a local attempt runs) and the candidate radius (the snapped
// diameter class) — the route-level detail the paper's message/hop
// accounting aggregates away. A nil span makes tracing free: child
// creation and attribute writes are no-ops on nil receivers.
func (nw *Network) QueryTraced(start, k int, l float64, span *telemetry.Span) (Result, error) {
	if _, ok := nw.peers[start]; !ok {
		return Result{}, fmt.Errorf("overlay: unknown start host %d", start)
	}
	if k < 2 {
		return Result{}, fmt.Errorf("overlay: size constraint k must be >= 2, got %d", k)
	}
	classL, classIdx, err := nw.ClassFor(l)
	if err != nil {
		return Result{}, err
	}
	span.SetAttr("k", k)
	span.SetAttr("classL", classL)
	span.SetAttr("classIndex", classIdx)
	res := Result{Class: classL}
	cur, prev := start, -1
	// The overlay is a tree, so a query that never returns to its sender
	// cannot cycle; the bound is a safety net against inconsistent CRTs.
	for hop := 0; hop <= len(nw.hosts); hop++ {
		res.Path = append(res.Path, cur)
		p := nw.peers[cur]
		hs := span.Child("hop")
		hs.SetAttr("host", cur)
		hs.SetAttr("radius", classL)
		selfMax := 0
		if len(p.selfCRT) > classIdx {
			selfMax = p.selfCRT[classIdx]
		}
		hs.SetAttr("selfMax", selfMax)
		if k <= selfMax {
			if span != nil { // space sizing is trace-only work
				space, err := nw.ClusteringSpace(cur)
				if err != nil {
					return Result{}, err
				}
				hs.SetAttr("localSpace", len(space))
			}
			members, err := nw.findLocal(cur, k, classL)
			if err != nil {
				return Result{}, err
			}
			if members != nil {
				hs.SetAttr("answered", true)
				hs.Finish()
				res.Cluster = members
				res.Answered = cur
				nw.observeQuery(res)
				return res, nil
			}
		}
		next, promise := -1, 0
		for _, v := range p.neighbors {
			if v == prev {
				continue
			}
			if crt := p.aggrCRT[v]; len(crt) > classIdx && k <= crt[classIdx] {
				next, promise = v, crt[classIdx]
				break
			}
		}
		if next == -1 {
			hs.SetAttr("answered", true)
			hs.Finish()
			res.Answered = cur
			nw.observeQuery(res)
			return res, nil
		}
		hs.SetAttr("forwardTo", next)
		hs.SetAttr("promise", promise)
		hs.Finish()
		prev, cur = cur, next
		res.Hops++
	}
	return res, fmt.Errorf("overlay: query (k=%d, l=%v) exceeded hop bound; inconsistent CRTs", k, l)
}

// observeQuery records the terminal metrics of one completed query.
func (nw *Network) observeQuery(res Result) {
	mQueries.Inc()
	mQueryHops.Observe(float64(res.Hops))
}

// findLocal runs Algorithm 1 on cur's clustering space and maps the
// result back to host ids.
func (nw *Network) findLocal(cur, k int, l float64) ([]int, error) {
	space, ids, err := nw.localSpace(cur)
	if err != nil {
		return nil, err
	}
	sel, err := cluster.FindCluster(space, k, l)
	if err != nil {
		return nil, fmt.Errorf("overlay: local clustering at %d: %w", cur, err)
	}
	if sel == nil {
		return nil, nil
	}
	members := make([]int, len(sel))
	for i, s := range sel {
		members[i] = ids[s]
	}
	return members, nil
}
