package overlay

import (
	"fmt"
	"sort"
)

// RemoveHost handles a peer's failure or departure. The overlay heals by
// splicing: the departed host's remaining neighbors are connected to its
// lowest-id neighbor, which keeps the overlay a tree (the paper's
// protocol needs acyclicity for query routing). All aggregation state is
// reset — superseded entries cannot be repaired in place because every
// peer's view may transitively contain the dead host — and the caller
// re-runs Converge to rebuild it; predictions for the remaining pairs are
// unaffected (their embedding does not involve the departed leaf).
//
// Note Refresh re-reads the substrate and therefore resurrects removed
// hosts; removal is an overlay-level operation for failure scenarios.
func (nw *Network) RemoveHost(h int) error {
	p, ok := nw.peers[h]
	if !ok {
		return fmt.Errorf("overlay: unknown host %d", h)
	}
	if len(nw.peers) == 1 {
		return fmt.Errorf("overlay: cannot remove the last host")
	}
	neighbors := append([]int(nil), p.neighbors...)
	delete(nw.peers, h)

	// Splice the survivors around the hole.
	var hub int = -1
	for _, nb := range neighbors {
		if _, alive := nw.peers[nb]; alive {
			hub = nb
			break
		}
	}
	for _, nb := range neighbors {
		q, alive := nw.peers[nb]
		if !alive {
			continue
		}
		q.neighbors = removeSorted(q.neighbors, h)
		if nb != hub {
			q.neighbors = insertSorted(q.neighbors, hub)
			nw.peers[hub].neighbors = insertSorted(nw.peers[hub].neighbors, nb)
		}
	}

	// Drop the host from the roster and reset aggregation state.
	hosts := nw.hosts[:0]
	for _, hh := range nw.hosts {
		if hh != h {
			hosts = append(hosts, hh)
		}
	}
	nw.hosts = hosts
	for _, q := range nw.peers {
		q.aggrNode = make(map[int][]int, len(q.neighbors))
		q.aggrCRT = make(map[int][]int, len(q.neighbors))
		q.selfCRT = nil
	}
	return nil
}

func removeSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return append(xs[:i], xs[i+1:]...)
	}
	return xs
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
