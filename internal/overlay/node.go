package overlay

import (
	"fmt"
	"math"

	"bwcluster/internal/cluster"
)

// NodeResult is the outcome of a decentralized single-node search.
type NodeResult struct {
	// Node is the selected host, -1 if none satisfied the constraint.
	Node int
	// Radius is the selected node's maximum predicted distance to the
	// input set.
	Radius float64
	// Hops and Answered describe the route, as in Result.
	Hops     int
	Answered int
}

// Found reports whether a node was returned.
func (r NodeResult) Found() bool { return r.Node >= 0 }

// QueryNode implements the paper's future-work single-node search
// decentrally: find one host whose maximum predicted distance to every
// member of set is at most l (equivalently, whose worst bandwidth to the
// set is at least the transformed constraint), preferring the smallest
// such radius.
//
// The query hill-climbs over the overlay: each visited peer evaluates
// its own clustering space against the set and forwards toward the
// neighbor direction whose aggregated node info produced the incumbent
// best candidate. Routing never returns to the sender, so on the tree
// overlay it terminates after at most the anchor-tree diameter. The
// result is exact whenever the true best node lies in some visited
// peer's clustering space (guaranteed for n_cut >= n, a heuristic
// otherwise — mirroring the clustering protocol's n_cut tradeoff).
func (nw *Network) QueryNode(start int, set []int, l float64) (NodeResult, error) {
	if _, ok := nw.peers[start]; !ok {
		return NodeResult{}, fmt.Errorf("overlay: unknown start host %d", start)
	}
	if len(set) == 0 {
		return NodeResult{}, fmt.Errorf("overlay: empty input set")
	}
	inSet := make(map[int]bool, len(set))
	for _, m := range set {
		if _, ok := nw.peers[m]; !ok {
			return NodeResult{}, fmt.Errorf("overlay: set member %d is not an overlay host", m)
		}
		inSet[m] = true
	}
	if l < 0 {
		return NodeResult{}, fmt.Errorf("overlay: constraint l must be >= 0, got %v", l)
	}

	res := NodeResult{Node: -1, Radius: math.Inf(1)}
	cur, prev := start, -1
	for hop := 0; hop <= len(nw.hosts); hop++ {
		p := nw.peers[cur]
		// Evaluate the local clustering space, remembering which neighbor
		// direction contributed the incumbent.
		bestDir := -1
		consider := func(u, dir int) {
			if inSet[u] {
				return
			}
			r := nw.setRadius(u, set)
			if r < res.Radius {
				res.Node, res.Radius = u, r
				bestDir = dir
			}
		}
		consider(cur, -1)
		for _, v := range p.neighbors {
			for _, u := range p.aggrNode[v] {
				consider(u, v)
			}
		}
		if bestDir == -1 || bestDir == prev {
			// No improvement from an unexplored direction: the search has
			// converged on this side of the tree.
			break
		}
		prev, cur = cur, bestDir
		res.Hops++
	}
	res.Answered = cur
	if res.Radius > l {
		return NodeResult{Node: -1, Radius: 0, Hops: res.Hops, Answered: cur}, nil
	}
	return res, nil
}

// setRadius is the predicted-distance analogue of cluster.SetRadius.
func (nw *Network) setRadius(x int, set []int) float64 {
	worst := 0.0
	for _, m := range set {
		if d := nw.predDist(x, m); d > worst {
			worst = d
		}
	}
	return worst
}

// FindNodeCentral runs the centralized single-node search over the full
// predicted metric (the reference the decentralized search approximates).
func (nw *Network) FindNodeCentral(set []int, l float64) (int, float64, error) {
	idxSet := make([]int, len(set))
	for i, m := range set {
		pos, ok := nw.index[m]
		if !ok {
			return -1, 0, fmt.Errorf("overlay: set member %d is not an overlay host", m)
		}
		idxSet[i] = pos
	}
	node, radius, err := cluster.FindNodeForSet(nw.dist, idxSet, l)
	if err != nil || node < 0 {
		return -1, 0, err
	}
	return nw.hosts[node], radius, nil
}
