package overlay

import (
	"math"
	"math/rand"
	"testing"
)

func TestQueryNodeValidation(t *testing.T) {
	nw, _, _ := buildNetwork(t, 12, 0, Config{NCut: 5, Classes: classSpread()}, 31)
	if _, err := nw.QueryNode(999, []int{0}, 10); err == nil {
		t.Error("unknown start should fail")
	}
	if _, err := nw.QueryNode(0, nil, 10); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := nw.QueryNode(0, []int{999}, 10); err == nil {
		t.Error("unknown set member should fail")
	}
	if _, err := nw.QueryNode(0, []int{1}, -1); err == nil {
		t.Error("l<0 should fail")
	}
}

// With n_cut >= n every peer sees the whole system, so the decentralized
// search must return the same optimum the centralized scan finds, from
// any start host.
func TestQueryNodeMatchesCentralWithFullKnowledge(t *testing.T) {
	n := 16
	nw, _, _ := buildNetwork(t, n, 0.2, Config{NCut: n, Classes: classSpread()}, 32)
	rng := rand.New(rand.NewSource(33))
	hosts := nw.Hosts()
	for trial := 0; trial < 30; trial++ {
		setSize := 1 + rng.Intn(3)
		set := append([]int(nil), hosts[:setSize]...)
		l := []float64{8, 16, 64}[rng.Intn(3)]
		wantNode, wantRadius, err := nw.FindNodeCentral(set, l)
		if err != nil {
			t.Fatal(err)
		}
		start := hosts[rng.Intn(len(hosts))]
		res, err := nw.QueryNode(start, set, l)
		if err != nil {
			t.Fatal(err)
		}
		if (wantNode >= 0) != res.Found() {
			t.Fatalf("central=%d decentral found=%v (set=%v l=%v)", wantNode, res.Found(), set, l)
		}
		if res.Found() && math.Abs(res.Radius-wantRadius) > 1e-9 {
			t.Fatalf("radius %v, central %v (nodes %d vs %d)", res.Radius, wantRadius, res.Node, wantNode)
		}
	}
}

// With limited n_cut the search is heuristic, but every answer it gives
// must satisfy the constraint, never name a set member, and never exceed
// the hop budget.
func TestQueryNodeAnswersAreValid(t *testing.T) {
	nw, _, _ := buildNetwork(t, 30, 0.2, Config{NCut: 4, Classes: classSpread()}, 34)
	rng := rand.New(rand.NewSource(35))
	hosts := nw.Hosts()
	for trial := 0; trial < 40; trial++ {
		setSize := 1 + rng.Intn(4)
		set := make([]int, setSize)
		perm := rng.Perm(len(hosts))
		for i := range set {
			set[i] = hosts[perm[i]]
		}
		start := hosts[perm[setSize]]
		l := []float64{4, 16, 64}[rng.Intn(3)]
		res, err := nw.QueryNode(start, set, l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > len(hosts) {
			t.Fatalf("hops %d exceeds host count", res.Hops)
		}
		if !res.Found() {
			continue
		}
		for _, m := range set {
			if res.Node == m {
				t.Fatalf("returned node %d is a set member", res.Node)
			}
			if d := nw.predDist(res.Node, m); d > l*(1+1e-9) {
				t.Fatalf("node %d at %v from member %d (> l=%v)", res.Node, d, m, l)
			}
		}
	}
}

func TestFindNodeCentralValidation(t *testing.T) {
	nw, _, _ := buildNetwork(t, 8, 0, Config{NCut: 4, Classes: classSpread()}, 36)
	if _, _, err := nw.FindNodeCentral([]int{999}, 10); err == nil {
		t.Error("unknown member should fail")
	}
	node, _, err := nw.FindNodeCentral([]int{nw.Hosts()[0]}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if node < 0 {
		t.Error("loose constraint should find a node")
	}
}
