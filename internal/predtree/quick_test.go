package predtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bwcluster/internal/testutil"
)

// Property (testing/quick over random seeds): for any constructed tree —
// exact or noisy, either search mode — the embedded distances form a
// metric-like structure: symmetric, zero on the diagonal, non-negative
// and finite; and label distances agree with tree distances for every
// pair.
func TestTreeDistanceInvariantsQuick(t *testing.T) {
	invariant := func(seed int64, anchorMode, noisy bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		noise := 0.0
		if noisy {
			noise = 0.5
		}
		o := testutil.NoisyTreeMetric(n, noise, rng)
		mode := SearchFull
		if anchorMode {
			mode = SearchAnchor
		}
		tr, err := Build(o, 100, mode, testutil.Perm(n, rng))
		if err != nil {
			return false
		}
		labels := make([]Label, n)
		for h := 0; h < n; h++ {
			labels[h], err = tr.Label(h)
			if err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if tr.Dist(i, i) != 0 {
				return false
			}
			for j := i + 1; j < n; j++ {
				d := tr.Dist(i, j)
				if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
					return false
				}
				if tr.Dist(j, i) != d {
					return false
				}
				ld, err := LabelDist(labels[i], labels[j])
				if err != nil || math.Abs(ld-d) > 1e-6*(1+d) {
					return false
				}
				rd, err := LabelDist(labels[j], labels[i])
				if err != nil || math.Abs(rd-ld) > 1e-9*(1+ld) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(invariant, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the tree-distance function satisfies the four-point
// condition exactly (it is induced by an edge-weighted tree), regardless
// of how noisy the input was.
func TestEmbeddedMetricIs4PCQuick(t *testing.T) {
	fourPC := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		o := testutil.NoisyTreeMetric(n, 0.5, rng)
		tr, err := Build(o, 100, SearchAnchor, nil)
		if err != nil {
			return false
		}
		// Check a handful of random quartets: the two largest of the
		// three pair sums must be equal (up to float error).
		for trial := 0; trial < 20; trial++ {
			p := rng.Perm(n)[:4]
			s1 := tr.Dist(p[0], p[1]) + tr.Dist(p[2], p[3])
			s2 := tr.Dist(p[0], p[2]) + tr.Dist(p[1], p[3])
			s3 := tr.Dist(p[0], p[3]) + tr.Dist(p[1], p[2])
			hi, mid := s1, s2
			if mid > hi {
				hi, mid = mid, hi
			}
			if s3 > hi {
				hi, mid = s3, hi
			} else if s3 > mid {
				mid = s3
			}
			if hi-mid > 1e-6*(1+hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fourPC, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: anchor offsets stay within their anchor's pendant length —
// the invariant the distance-label arithmetic relies on.
func TestLabelGeometryInvariantQuick(t *testing.T) {
	invariant := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		o := testutil.NoisyTreeMetric(n, 0.4, rng)
		tr, err := Build(o, 100, SearchAnchor, nil)
		if err != nil {
			return false
		}
		for h := 0; h < n; h++ {
			label, err := tr.Label(h)
			if err != nil {
				return false
			}
			entries := label.Entries()
			for i := 1; i < len(entries); i++ {
				parentPendant := entries[i-1].Pendant
				if entries[i].Offset < -1e-9 || entries[i].Offset > parentPendant+1e-9 {
					return false
				}
				if entries[i].Pendant < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(invariant, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
