package predtree

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bwcluster/internal/metric"
)

// defaultWorkers is the pool size when the caller does not pin one:
// GOMAXPROCS, so `go test -cpu` and container CPU limits are respected.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Forest is a set of prediction trees over the same hosts, built with
// different (random) insertion orders, predicting with the median of the
// per-tree distances. Sequoia introduced this technique: single-tree
// embeddings carry placement noise from unlucky insertion orders, and the
// entrywise median of a few independent trees cancels most of it. The
// first tree is the primary: its anchor tree is the overlay the
// clustering protocol runs on (each host simply keeps one distance label
// per tree).
type Forest struct {
	trees []*Tree
}

// BuildForest builds count trees from the oracle, each with an
// independent random insertion order drawn from rng.
func BuildForest(o Oracle, c float64, mode SearchMode, count int, rng *rand.Rand) (*Forest, error) {
	if count < 1 {
		return nil, fmt.Errorf("predtree: forest needs at least 1 tree, got %d", count)
	}
	if rng == nil {
		return nil, fmt.Errorf("predtree: forest needs a non-nil rng")
	}
	trees := make([]*Tree, 0, count)
	for i := 0; i < count; i++ {
		order := rng.Perm(o.N())
		t, err := Build(o, c, mode, order)
		if err != nil {
			return nil, fmt.Errorf("predtree: forest tree %d: %w", i, err)
		}
		trees = append(trees, t)
	}
	return &Forest{trees: trees}, nil
}

// BuildForestParallel builds exactly the forest BuildForest builds, with
// the per-tree constructions running concurrently on a pool of workers
// (workers < 1 means one per CPU). Determinism is preserved by splitting
// the random stream BEFORE spawning: all insertion orders are drawn from
// rng sequentially — consuming its stream precisely as the sequential
// build does — and each goroutine then runs the fully deterministic
// insertion for its pre-drawn order. The result is bit-identical to
// BuildForest with the same rng state, whatever the worker count, and rng
// ends in the same state either way.
//
// o must be safe for concurrent Dist calls (metric.Matrix, being
// immutable after construction, is).
func BuildForestParallel(o Oracle, c float64, mode SearchMode, count int, rng *rand.Rand, workers int) (*Forest, error) {
	if count < 1 {
		return nil, fmt.Errorf("predtree: forest needs at least 1 tree, got %d", count)
	}
	if rng == nil {
		return nil, fmt.Errorf("predtree: forest needs a non-nil rng")
	}
	if workers < 1 {
		workers = defaultWorkers()
	}
	if workers > count {
		workers = count
	}
	if workers == 1 {
		return BuildForest(o, c, mode, count, rng)
	}
	orders := make([][]int, count)
	for i := range orders {
		orders[i] = rng.Perm(o.N())
	}
	trees := make([]*Tree, count)
	errs := make([]error, count)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= count {
					return
				}
				t, err := Build(o, c, mode, orders[i])
				if err != nil {
					errs[i] = err
					continue
				}
				trees[i] = t
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("predtree: forest tree %d: %w", i, err)
		}
	}
	return &Forest{trees: trees}, nil
}

// NewForest assembles a forest from pre-built trees (they must hold the
// same host set; the first is the primary).
func NewForest(trees ...*Tree) (*Forest, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("predtree: forest needs at least 1 tree")
	}
	n := trees[0].Len()
	for i, t := range trees {
		if t == nil {
			return nil, fmt.Errorf("predtree: forest tree %d is nil", i)
		}
		if t.Len() != n {
			return nil, fmt.Errorf("predtree: forest tree %d has %d hosts, want %d", i, t.Len(), n)
		}
		for _, h := range trees[0].Hosts() {
			if !t.Contains(h) {
				return nil, fmt.Errorf("predtree: forest tree %d missing host %d", i, h)
			}
		}
	}
	return &Forest{trees: trees}, nil
}

// Primary returns the first tree, whose anchor tree serves as the
// overlay.
func (f *Forest) Primary() *Tree { return f.trees[0] }

// Size reports the number of trees.
func (f *Forest) Size() int { return len(f.trees) }

// Len reports the number of hosts.
func (f *Forest) Len() int { return f.trees[0].Len() }

// Hosts returns the hosts in the primary tree's insertion order.
func (f *Forest) Hosts() []int { return f.trees[0].Hosts() }

// Contains reports whether host h is embedded.
func (f *Forest) Contains(h int) bool { return f.trees[0].Contains(h) }

// AnchorNeighbors returns h's neighbors on the primary anchor tree.
func (f *Forest) AnchorNeighbors(h int) []int { return f.trees[0].AnchorNeighbors(h) }

// Measurements sums the construction measurement lookups across trees.
func (f *Forest) Measurements() int {
	total := 0
	for _, t := range f.trees {
		total += t.Measurements()
	}
	return total
}

// DistinctMeasurements reports how many distinct host pairs the whole
// forest measured: hosts cache measurement results, so a pair probed by
// several trees costs one network measurement.
func (f *Forest) DistinctMeasurements() int {
	union := make(map[int64]struct{})
	for _, t := range f.trees {
		t.eachMeasuredPair(func(lo, hi int) {
			union[int64(lo)<<32|int64(hi)] = struct{}{}
		})
	}
	return len(union)
}

// Add inserts host h into every tree.
func (f *Forest) Add(h int, o Oracle) error {
	for i, t := range f.trees {
		if err := t.Add(h, o); err != nil {
			return fmt.Errorf("predtree: forest tree %d: %w", i, err)
		}
	}
	return nil
}

// Remove evicts host h from every tree, repairing each incrementally
// (see Tree.Remove). Like Add it mutates and must not race with reads.
func (f *Forest) Remove(h int) error {
	if !f.Contains(h) {
		return fmt.Errorf("predtree: forest remove: host %d not present", h)
	}
	for i, t := range f.trees {
		if err := t.Remove(h); err != nil {
			return fmt.Errorf("predtree: forest tree %d: %w", i, err)
		}
	}
	return nil
}

// Epoch reports the primary tree's membership epoch; every tree in the
// forest sees the same Add/Remove sequence, so the primary's counter
// stands for the whole forest.
func (f *Forest) Epoch() uint64 { return f.trees[0].Epoch() }

// SetEpoch re-seats every tree's membership epoch counter, restoring
// epoch continuity for a forest decoded from a snapshot (the tree wire
// format does not carry the counter). See Tree.SetEpoch.
func (f *Forest) SetEpoch(epoch uint64) {
	for _, t := range f.trees {
		t.SetEpoch(epoch)
	}
}

// Dist returns the median of the per-tree predicted distances.
func (f *Forest) Dist(u, v int) float64 {
	if len(f.trees) == 1 {
		return f.trees[0].Dist(u, v)
	}
	ds := make([]float64, len(f.trees))
	for i, t := range f.trees {
		ds[i] = t.Dist(u, v)
	}
	return median(ds)
}

// PredictBandwidth returns C / Dist(u, v) using the primary tree's
// constant.
func (f *Forest) PredictBandwidth(u, v int) float64 {
	d := f.Dist(u, v)
	if d == 0 {
		return f.trees[0].C() / 1e-9
	}
	return f.trees[0].C() / d
}

// DistMatrix materializes the median predicted distances for all hosts,
// indexed like the returned host slice (the primary tree's join order).
func (f *Forest) DistMatrix() (*metric.Matrix, []int) {
	hosts := f.Hosts()
	pos := make(map[int]int, len(hosts))
	for i, h := range hosts {
		pos[h] = i
	}
	mats := make([]*metric.Matrix, len(f.trees))
	for ti, t := range f.trees {
		dm, th := t.DistMatrix()
		// Re-index into the primary host order.
		m := metric.NewMatrix(len(hosts))
		for i := range th {
			for j := i + 1; j < len(th); j++ {
				m.Set(pos[th[i]], pos[th[j]], dm.Dist(i, j))
			}
		}
		mats[ti] = m
	}
	if len(mats) == 1 {
		return mats[0], hosts
	}
	out := metric.NewMatrix(len(hosts))
	ds := make([]float64, len(mats))
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			for ti := range mats {
				ds[ti] = mats[ti].Dist(i, j)
			}
			out.Set(i, j, median(ds))
		}
	}
	return out, hosts
}

// Labels returns host h's distance label in every tree of the forest —
// the complete "coordinate" a host gossips so that any peer can compute
// median-of-trees distances locally via ForestLabelDist.
func (f *Forest) Labels(h int) ([]Label, error) {
	out := make([]Label, len(f.trees))
	for i, t := range f.trees {
		label, err := t.Label(h)
		if err != nil {
			return nil, fmt.Errorf("predtree: forest label (tree %d): %w", i, err)
		}
		out[i] = label
	}
	return out, nil
}

// ForestLabelDist computes the median-of-trees predicted distance between
// two hosts from their label sets alone. The label sets must come from
// the same forest (same length, tree by tree).
func ForestLabelDist(a, b []Label) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, fmt.Errorf("predtree: label sets must be non-empty and equal length (%d vs %d)",
			len(a), len(b))
	}
	ds := make([]float64, len(a))
	for i := range a {
		d, err := LabelDist(a[i], b[i])
		if err != nil {
			return 0, fmt.Errorf("predtree: forest label dist (tree %d): %w", i, err)
		}
		ds[i] = d
	}
	return median(ds), nil
}

// median returns the median of xs (averaging the middle pair for even
// lengths); xs is not modified.
func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}
