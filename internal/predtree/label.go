package predtree

import (
	"fmt"
	"strings"
)

// LabelEntry is one step of a distance label: anchor host Host, whose
// inner node t_Host sits at distance Offset from the previous anchor
// (along that anchor's pendant edge) and whose leaf hangs Pendant below
// t_Host.
type LabelEntry struct {
	Host    int
	Offset  float64
	Pendant float64
}

// Label is a host's distance label: the anchor chain from the root down to
// the host, annotated with the geometry needed to recover tree distances.
// It is the decentralized equivalent of network coordinates — two hosts
// can compute their predicted distance from their labels alone, without
// access to the full prediction tree.
type Label struct {
	entries []LabelEntry
}

// Host returns the host this label belongs to, or -1 for an empty label.
func (l Label) Host() int {
	if len(l.entries) == 0 {
		return -1
	}
	return l.entries[len(l.entries)-1].Host
}

// Len returns the anchor-chain length (including the root and the host).
func (l Label) Len() int { return len(l.entries) }

// Entries returns a copy of the label's entries, root first.
func (l Label) Entries() []LabelEntry {
	out := make([]LabelEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// String renders the label in the paper's arrow notation.
func (l Label) String() string {
	var b strings.Builder
	for i, e := range l.entries {
		if i == 0 {
			fmt.Fprintf(&b, "%d", e.Host)
			continue
		}
		fmt.Fprintf(&b, " -%.4g-> t%d -%.4g-> %d", e.Offset, e.Host, e.Pendant, e.Host)
	}
	return b.String()
}

// Label returns host h's distance label. It fails for hosts not in the
// tree.
func (t *Tree) Label(h int) (Label, error) {
	if !t.Contains(h) {
		return Label{}, fmt.Errorf("predtree: host %d not in tree", h)
	}
	var chain []LabelEntry
	for cur := h; cur >= 0; cur = int(t.anchorParent[cur]) {
		chain = append(chain, LabelEntry{Host: cur, Offset: t.offset[cur], Pendant: t.pendant[cur]})
	}
	// Reverse to root-first order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return Label{entries: chain}, nil
}

// LabelDist computes the predicted tree distance between the two labelled
// hosts using only the labels. It matches Tree.Dist exactly for labels
// produced by the same tree.
func LabelDist(a, b Label) (float64, error) {
	if len(a.entries) == 0 || len(b.entries) == 0 {
		return 0, fmt.Errorf("predtree: cannot compute distance with an empty label")
	}
	if a.entries[0].Host != b.entries[0].Host {
		return 0, fmt.Errorf("predtree: labels have different roots (%d vs %d)",
			a.entries[0].Host, b.entries[0].Host)
	}
	if a.Host() == b.Host() {
		return 0, nil
	}
	// Longest common anchor-chain prefix.
	c := 0
	for c < len(a.entries) && c < len(b.entries) && a.entries[c].Host == b.entries[c].Host {
		c++
	}
	switch {
	case c == len(a.entries):
		// a's host is an anchor ancestor of b's: climb from b's divergence
		// point, which sits Offset away from a's host.
		return b.entries[c].Offset + tailDist(b.entries, c), nil
	case c == len(b.entries):
		return a.entries[c].Offset + tailDist(a.entries, c), nil
	default:
		// Both diverge below the common anchor h_{c-1}: their inner nodes
		// lie on h_{c-1}'s pendant segment at the recorded offsets.
		gap := a.entries[c].Offset - b.entries[c].Offset
		if gap < 0 {
			gap = -gap
		}
		return gap + tailDist(a.entries, c) + tailDist(b.entries, c), nil
	}
}

// tailDist returns the distance from inner node t_{entries[j].Host} down
// to the labelled leaf.
func tailDist(entries []LabelEntry, j int) float64 {
	d := 0.0
	for i := j; i < len(entries); i++ {
		d += entries[i].Pendant
		if i+1 < len(entries) {
			d -= entries[i+1].Offset
		}
	}
	return d
}
