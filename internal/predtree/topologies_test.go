package predtree

import (
	"math"
	"testing"

	"bwcluster/internal/metric"
)

// Hand-constructed adversarial metrics: degenerate geometries that stress
// the insertion logic's tie handling and clamps.

func buildBoth(t *testing.T, o *metric.Matrix) []*Tree {
	t.Helper()
	var out []*Tree
	for _, mode := range []SearchMode{SearchFull, SearchAnchor} {
		tr, err := Build(o, 100, mode, nil)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		out = append(out, tr)
	}
	return out
}

func assertExact(t *testing.T, tr *Tree, o *metric.Matrix, name string) {
	t.Helper()
	for i := 0; i < o.N(); i++ {
		for j := i + 1; j < o.N(); j++ {
			want := o.Dist(i, j)
			got := tr.Dist(i, j)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("%s: d_T(%d,%d)=%v, want %v", name, i, j, got, want)
			}
		}
	}
}

// A star: every pairwise distance is the sum of two spoke lengths.
func TestStarMetric(t *testing.T) {
	spokes := []float64{1, 2, 3, 4, 5, 6}
	o := metric.FromFunc(len(spokes), func(i, j int) float64 {
		return spokes[i] + spokes[j]
	})
	for _, tr := range buildBoth(t, o) {
		assertExact(t, tr, o, "star")
	}
}

// A path: hosts on a line (massive tie-plateaus during search).
func TestPathMetric(t *testing.T) {
	pos := []float64{0, 1, 3, 6, 10, 15, 21}
	o := metric.FromFunc(len(pos), func(i, j int) float64 {
		return math.Abs(pos[i] - pos[j])
	})
	for _, tr := range buildBoth(t, o) {
		assertExact(t, tr, o, "path")
	}
}

// A uniform metric: every pair at distance 10 (every quartet is a perfect
// tie; any insertion order must still embed exactly — the realizing tree
// is a star with spokes 5).
func TestUniformMetric(t *testing.T) {
	o := metric.FromFunc(7, func(i, j int) float64 { return 10 })
	for _, tr := range buildBoth(t, o) {
		assertExact(t, tr, o, "uniform")
	}
}

// Coincident hosts: two hosts at distance 0 from each other.
func TestCoincidentHosts(t *testing.T) {
	o := metric.NewMatrix(4)
	o.Set(0, 1, 0)
	o.Set(0, 2, 7)
	o.Set(1, 2, 7)
	o.Set(0, 3, 11)
	o.Set(1, 3, 11)
	o.Set(2, 3, 4)
	for _, tr := range buildBoth(t, o) {
		assertExact(t, tr, o, "coincident")
		// Labels still work for the coincident pair.
		la, err := tr.Label(0)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := tr.Label(1)
		if err != nil {
			t.Fatal(err)
		}
		d, err := LabelDist(la, lb)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Fatalf("coincident label distance = %v", d)
		}
	}
}

// An ultrametric (max of two levels): the bottleneck structure underlying
// the access-link model, full of exact ties.
func TestUltrametric(t *testing.T) {
	level := []float64{2, 2, 5, 5, 9, 9}
	o := metric.FromFunc(len(level), func(i, j int) float64 {
		return math.Max(level[i], level[j])
	})
	for _, tr := range buildBoth(t, o) {
		assertExact(t, tr, o, "ultrametric")
	}
}

// A caterpillar with zero-length internal edges: several inner nodes
// coincide exactly, the case that defeats naive greedy search.
func TestZeroInternalEdges(t *testing.T) {
	// Leaves hanging at the same point with distinct pendant lengths.
	pend := []float64{1, 2, 3, 4, 5}
	o := metric.FromFunc(len(pend), func(i, j int) float64 {
		return pend[i] + pend[j]
	})
	for _, tr := range buildBoth(t, o) {
		assertExact(t, tr, o, "zero-internal")
	}
}

// Triangle-violating input (possible with noisy measurements): the build
// must not crash, produce negative weights, or emit non-finite distances.
func TestTriangleViolatingInput(t *testing.T) {
	o := metric.NewMatrix(4)
	o.Set(0, 1, 1)
	o.Set(1, 2, 1)
	o.Set(0, 2, 10) // gross violation
	o.Set(0, 3, 2)
	o.Set(1, 3, 2)
	o.Set(2, 3, 2)
	for _, tr := range buildBoth(t, o) {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				d := tr.Dist(i, j)
				if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
					t.Fatalf("d_T(%d,%d)=%v on triangle-violating input", i, j, d)
				}
			}
		}
	}
}
