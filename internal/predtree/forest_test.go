package predtree

import (
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/testutil"
)

func TestBuildForestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := testutil.RandomTreeMetric(5, rng)
	if _, err := BuildForest(o, 100, SearchFull, 0, rng); err == nil {
		t.Error("count=0 should fail")
	}
	if _, err := BuildForest(o, 100, SearchFull, 2, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := BuildForest(o, 0, SearchFull, 2, rng); err == nil {
		t.Error("bad constant should fail")
	}
}

func TestNewForestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o := testutil.RandomTreeMetric(5, rng)
	t1, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewForest(); err == nil {
		t.Error("empty forest should fail")
	}
	if _, err := NewForest(t1, nil); err == nil {
		t.Error("nil tree should fail")
	}
	small, err := Build(o, 100, SearchFull, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewForest(t1, small); err == nil {
		t.Error("size mismatch should fail")
	}
	f, err := NewForest(t1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1 || f.Primary() != t1 {
		t.Error("single-tree forest broken")
	}
}

// On exact tree metrics every tree is exact, so the median is too.
func TestForestExactOnTreeMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := testutil.RandomTreeMetric(15, rng)
	f, err := BuildForest(o, 100, SearchAnchor, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			want := o.Dist(i, j)
			if got := f.Dist(i, j); math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("forest dist (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	dm, hosts := f.DistMatrix()
	for a := range hosts {
		for b := a + 1; b < len(hosts); b++ {
			if math.Abs(dm.Dist(a, b)-f.Dist(hosts[a], hosts[b])) > 1e-9 {
				t.Fatalf("DistMatrix disagrees with Dist at (%d,%d)", a, b)
			}
		}
	}
}

// The forest's median prediction must beat the single tree on noisy data
// (the reason it exists). The gain is statistical, so compare totals over
// several independent trials.
func TestForestBeatsSingleTreeOnNoise(t *testing.T) {
	singleTotal, multiTotal := 0.0, 0.0
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		o := testutil.NoisyTreeMetric(50, 0.15, rng)
		single, err := BuildForest(o, 100, SearchAnchor, 1, rand.New(rand.NewSource(200+seed)))
		if err != nil {
			t.Fatal(err)
		}
		multi, err := BuildForest(o, 100, SearchAnchor, 3, rand.New(rand.NewSource(200+seed)))
		if err != nil {
			t.Fatal(err)
		}
		errSum := func(f *Forest) float64 {
			sum := 0.0
			for i := 0; i < o.N(); i++ {
				for j := i + 1; j < o.N(); j++ {
					real := o.Dist(i, j)
					sum += math.Abs(f.Dist(i, j)-real) / real
				}
			}
			return sum
		}
		singleTotal += errSum(single)
		multiTotal += errSum(multi)
	}
	if multiTotal >= singleTotal {
		t.Errorf("3-tree forest total error %v not below single-tree %v", multiTotal, singleTotal)
	}
}

func TestForestAddAndMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := testutil.RandomTreeMetric(10, rng)
	f, err := BuildForest(subOracle{o, 7}, 100, SearchFull, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 7 || !f.Contains(3) || f.Contains(8) {
		t.Fatalf("initial membership broken: len=%d", f.Len())
	}
	for h := 7; h < 10; h++ {
		if err := f.Add(h, o); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 10 || !f.Contains(9) {
		t.Fatalf("post-add membership broken: len=%d", f.Len())
	}
	if err := f.Add(9, o); err == nil {
		t.Error("duplicate add should fail")
	}
	if f.Measurements() <= 0 {
		t.Error("no measurements recorded")
	}
	if len(f.Hosts()) != 10 {
		t.Errorf("Hosts() = %d", len(f.Hosts()))
	}
	if nb := f.AnchorNeighbors(f.Hosts()[0]); len(nb) == 0 {
		t.Error("root has no anchor neighbors")
	}
}

// subOracle exposes only the first n hosts of a matrix.
type subOracle struct {
	inner interface {
		N() int
		Dist(i, j int) float64
	}
	n int
}

func (s subOracle) N() int                { return s.n }
func (s subOracle) Dist(i, j int) float64 { return s.inner.Dist(i, j) }

func TestForestPredictBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := testutil.RandomTreeMetric(8, rng)
	f, err := BuildForest(o, 100, SearchFull, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	bw := f.PredictBandwidth(0, 1)
	want := 100 / f.Dist(0, 1)
	if math.Abs(bw-want) > 1e-9 {
		t.Errorf("PredictBandwidth = %v, want %v", bw, want)
	}
}

// Label sets reproduce the forest's median distances exactly — the
// decentralized coordinate property.
func TestForestLabelDist(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	o := testutil.NoisyTreeMetric(18, 0.3, rng)
	f, err := BuildForest(o, 100, SearchAnchor, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([][]Label, 18)
	for h := 0; h < 18; h++ {
		labels[h], err = f.Labels(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels[h]) != 3 {
			t.Fatalf("host %d has %d labels, want 3", h, len(labels[h]))
		}
	}
	for i := 0; i < 18; i++ {
		for j := i + 1; j < 18; j++ {
			got, err := ForestLabelDist(labels[i], labels[j])
			if err != nil {
				t.Fatal(err)
			}
			want := f.Dist(i, j)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("label dist (%d,%d) = %v, forest says %v", i, j, got, want)
			}
		}
	}
	if _, err := ForestLabelDist(nil, nil); err == nil {
		t.Error("empty label sets should fail")
	}
	if _, err := ForestLabelDist(labels[0], labels[1][:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := f.Labels(99); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestMedianHelper(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{in: []float64{3}, want: 3},
		{in: []float64{3, 1}, want: 2},
		{in: []float64{5, 1, 3}, want: 3},
		{in: []float64{4, 1, 3, 2}, want: 2.5},
	}
	for _, tt := range tests {
		if got := median(tt.in); got != tt.want {
			t.Errorf("median(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
