package predtree

import (
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/metric"
	"bwcluster/internal/testutil"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, SearchFull); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := New(-5, SearchFull); err == nil {
		t.Error("c<0 should fail")
	}
	if _, err := New(100, SearchMode(0)); err == nil {
		t.Error("invalid mode should fail")
	}
	tr, err := New(100, SearchAnchor)
	if err != nil {
		t.Fatal(err)
	}
	if tr.C() != 100 || tr.Root() != -1 || tr.Len() != 0 {
		t.Errorf("fresh tree: C=%v root=%d len=%d", tr.C(), tr.Root(), tr.Len())
	}
}

func TestAddValidation(t *testing.T) {
	o := metric.FromFunc(3, func(i, j int) float64 { return 1 })
	tr, _ := New(100, SearchFull)
	if err := tr.Add(5, o); err == nil {
		t.Error("out-of-range host should fail")
	}
	if err := tr.Add(-1, o); err == nil {
		t.Error("negative host should fail")
	}
	if err := tr.Add(0, o); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(0, o); err == nil {
		t.Error("duplicate host should fail")
	}
}

func TestTwoNodeTree(t *testing.T) {
	o := metric.NewMatrix(2)
	o.Set(0, 1, 25)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Dist(0, 1); math.Abs(got-25) > 1e-12 {
		t.Errorf("d_T(0,1) = %v, want 25", got)
	}
	if got := tr.PredictBandwidth(0, 1); math.Abs(got-4) > 1e-12 {
		t.Errorf("BW_T(0,1) = %v, want 4", got)
	}
	if p := tr.AnchorParent(1); p != 0 {
		t.Errorf("anchor of 1 = %d, want 0", p)
	}
	if p := tr.AnchorParent(0); p != -1 {
		t.Errorf("anchor of root = %d, want -1", p)
	}
}

func TestDistUnknownHosts(t *testing.T) {
	tr, _ := New(100, SearchFull)
	if d := tr.Dist(0, 1); !math.IsInf(d, 1) {
		t.Errorf("unknown hosts: %v, want +Inf", d)
	}
	if d := tr.Dist(3, 3); d != 0 {
		t.Errorf("same host: %v, want 0", d)
	}
}

func TestPredictBandwidthCoincident(t *testing.T) {
	// Two hosts at distance 0 embed at the same point.
	o := metric.NewMatrix(3)
	o.Set(0, 1, 10)
	o.Set(0, 2, 10)
	o.Set(1, 2, 0)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bw := tr.PredictBandwidth(1, 2); !math.IsInf(bw, 1) {
		t.Errorf("coincident hosts BW = %v, want +Inf", bw)
	}
}

// The headline substrate property: on an exact tree metric, the prediction
// tree reproduces every pairwise distance exactly (up to float error), for
// both search modes and arbitrary insertion orders.
func TestExactTreeMetricEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, mode := range []SearchMode{SearchFull, SearchAnchor} {
		for trial := 0; trial < 8; trial++ {
			n := 4 + rng.Intn(20)
			o := testutil.RandomTreeMetric(n, rng)
			order := testutil.Perm(n, rng)
			tr, err := Build(o, 100, mode, order)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					want := o.Dist(i, j)
					got := tr.Dist(i, j)
					if math.Abs(got-want) > 1e-6*(1+want) {
						t.Fatalf("mode %d n=%d: d_T(%d,%d)=%v, want %v", mode, n, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestDistMatrixMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := testutil.NoisyTreeMetric(15, 0.3, rng)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, hosts := tr.DistMatrix()
	if m.N() != 15 || len(hosts) != 15 {
		t.Fatalf("matrix size %d hosts %d", m.N(), len(hosts))
	}
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			if math.Abs(m.Dist(i, j)-tr.Dist(hosts[i], hosts[j])) > 1e-9 {
				t.Fatalf("matrix(%d,%d)=%v, Dist=%v", i, j, m.Dist(i, j), tr.Dist(hosts[i], hosts[j]))
			}
		}
	}
}

func TestNoisyMetricStillBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, mode := range []SearchMode{SearchFull, SearchAnchor} {
		o := testutil.NoisyTreeMetric(30, 0.5, rng)
		tr, err := Build(o, 100, mode, nil)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		// All distances must be finite and non-negative.
		for i := 0; i < 30; i++ {
			for j := i + 1; j < 30; j++ {
				d := tr.Dist(i, j)
				if d < 0 || math.IsInf(d, 0) || math.IsNaN(d) {
					t.Fatalf("mode %d: d_T(%d,%d)=%v", mode, i, j, d)
				}
			}
		}
	}
}

func TestAnchorTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := testutil.RandomTreeMetric(25, rng)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root != 0 {
		t.Fatalf("root = %d, want 0 (insertion order)", root)
	}
	// Every non-root host has a parent that lists it as a child; the
	// anchor tree is connected and acyclic (n-1 edges by construction).
	edges := 0
	for _, h := range tr.Hosts() {
		p := tr.AnchorParent(h)
		if h == root {
			if p != -1 {
				t.Errorf("root parent = %d", p)
			}
			continue
		}
		edges++
		if p < 0 {
			t.Fatalf("host %d has no anchor", h)
		}
		found := false
		for _, c := range tr.AnchorChildren(p) {
			if c == h {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("host %d missing from children of %d", h, p)
		}
		// Parent must have joined before the child.
		if tr.AnchorDepth(p) >= tr.AnchorDepth(h) {
			t.Errorf("depth(%d)=%d !< depth(%d)=%d", p, tr.AnchorDepth(p), h, tr.AnchorDepth(h))
		}
	}
	if edges != tr.Len()-1 {
		t.Errorf("anchor tree has %d edges, want %d", edges, tr.Len()-1)
	}
	// Neighbors = parent + children.
	for _, h := range tr.Hosts() {
		nb := tr.AnchorNeighbors(h)
		want := len(tr.AnchorChildren(h))
		if h != root {
			want++
		}
		if len(nb) != want {
			t.Errorf("host %d has %d neighbors, want %d", h, len(nb), want)
		}
	}
}

func TestHostsReturnsCopy(t *testing.T) {
	o := metric.NewMatrix(2)
	o.Set(0, 1, 1)
	tr, _ := Build(o, 100, SearchFull, nil)
	hosts := tr.Hosts()
	hosts[0] = 99
	if tr.Hosts()[0] == 99 {
		t.Error("Hosts aliases internal state")
	}
	kids := tr.AnchorChildren(0)
	if len(kids) == 1 {
		kids[0] = 99
		if tr.AnchorChildren(0)[0] == 99 {
			t.Error("AnchorChildren aliases internal state")
		}
	}
}

func TestAnchorSearchUsesFewerMeasurements(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	o := testutil.RandomTreeMetric(60, rng)
	full, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := Build(o, 100, SearchAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	if anchor.Measurements() >= full.Measurements() {
		t.Errorf("anchor search measurements %d >= full %d",
			anchor.Measurements(), full.Measurements())
	}
}

func TestLabelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := []struct {
		name  string
		noise float64
		mode  SearchMode
	}{
		{name: "exact/full", noise: 0, mode: SearchFull},
		{name: "exact/anchor", noise: 0, mode: SearchAnchor},
		{name: "noisy/full", noise: 0.4, mode: SearchFull},
		{name: "noisy/anchor", noise: 0.4, mode: SearchAnchor},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := 20
			o := testutil.NoisyTreeMetric(n, tc.noise, rng)
			tr, err := Build(o, 100, tc.mode, nil)
			if err != nil {
				t.Fatal(err)
			}
			labels := make([]Label, n)
			for h := 0; h < n; h++ {
				labels[h], err = tr.Label(h)
				if err != nil {
					t.Fatal(err)
				}
				if labels[h].Host() != h {
					t.Fatalf("label host = %d, want %d", labels[h].Host(), h)
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					got, err := LabelDist(labels[i], labels[j])
					if err != nil {
						t.Fatal(err)
					}
					want := tr.Dist(i, j)
					if math.Abs(got-want) > 1e-6*(1+want) {
						t.Fatalf("LabelDist(%d,%d)=%v, tree says %v\nLi=%v\nLj=%v",
							i, j, got, want, labels[i], labels[j])
					}
				}
			}
		})
	}
}

func TestLabelErrors(t *testing.T) {
	tr, _ := New(100, SearchFull)
	if _, err := tr.Label(3); err == nil {
		t.Error("label of unknown host should fail")
	}
	if _, err := LabelDist(Label{}, Label{}); err == nil {
		t.Error("empty labels should fail")
	}
	a := Label{entries: []LabelEntry{{Host: 0}}}
	b := Label{entries: []LabelEntry{{Host: 1}}}
	if _, err := LabelDist(a, b); err == nil {
		t.Error("different roots should fail")
	}
}

func TestLabelString(t *testing.T) {
	o := metric.NewMatrix(2)
	o.Set(0, 1, 25)
	tr, _ := Build(o, 100, SearchFull, nil)
	l, err := tr.Label(1)
	if err != nil {
		t.Fatal(err)
	}
	s := l.String()
	if s == "" {
		t.Error("empty label string")
	}
	if l.Len() != 2 {
		t.Errorf("label len = %d, want 2", l.Len())
	}
	ent := l.Entries()
	if ent[0].Host != 0 || ent[1].Host != 1 {
		t.Errorf("entries = %+v", ent)
	}
	if math.Abs(ent[1].Pendant-25) > 1e-12 {
		t.Errorf("pendant = %v, want 25", ent[1].Pendant)
	}
	ent[0].Host = 42
	if l.Entries()[0].Host == 42 {
		t.Error("Entries aliases internal state")
	}
}

// Paper Fig. 1 spot-check: the running example predicts BW_T(b,c) = 77
// with C = 100 when d_T(b,c) = 23. We reconstruct an analogous case: three
// hosts in a path metric.
func TestPathMetricExample(t *testing.T) {
	// Hosts on a line: 0 --10-- 1 --13-- 2 (tree metric).
	o := metric.NewMatrix(3)
	o.Set(0, 1, 10)
	o.Set(1, 2, 13)
	o.Set(0, 2, 23)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Dist(0, 2); math.Abs(d-23) > 1e-9 {
		t.Errorf("d_T(0,2) = %v, want 23", d)
	}
	bw := tr.PredictBandwidth(0, 2)
	if math.Abs(bw-100.0/23.0) > 1e-9 {
		t.Errorf("BW_T(0,2) = %v, want %v", bw, 100.0/23.0)
	}
}

func TestBuildInsertionOrderIndependenceOnTreeMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	o := testutil.RandomTreeMetric(12, rng)
	tr1, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := testutil.Perm(12, rng)
	tr2, err := Build(o, 100, SearchFull, order)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			d1, d2 := tr1.Dist(i, j), tr2.Dist(i, j)
			if math.Abs(d1-d2) > 1e-6*(1+d1) {
				t.Fatalf("order dependence at (%d,%d): %v vs %v", i, j, d1, d2)
			}
		}
	}
}

func TestAnchorStats(t *testing.T) {
	empty, _ := New(100, SearchFull)
	if s := empty.AnchorStats(); s.Hosts != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	rng := rand.New(rand.NewSource(91))
	o := testutil.RandomTreeMetric(30, rng)
	tr, err := Build(o, 100, SearchAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.AnchorStats()
	if s.Hosts != 30 {
		t.Errorf("hosts = %d", s.Hosts)
	}
	if s.MaxDepth < 1 || s.AvgDepth <= 0 || s.AvgDepth > float64(s.MaxDepth) {
		t.Errorf("depth stats inconsistent: %+v", s)
	}
	// A tree over n hosts has n-1 edges, so average degree is 2(n-1)/n.
	wantAvg := 2 * float64(29) / 30
	if math.Abs(s.AvgDegree-wantAvg) > 1e-9 {
		t.Errorf("avg degree = %v, want %v", s.AvgDegree, wantAvg)
	}
	if s.MaxDegree < 1 {
		t.Errorf("max degree = %d", s.MaxDegree)
	}
}

func TestDistinctMeasurements(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	o := testutil.RandomTreeMetric(20, rng)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct := tr.DistinctMeasurements()
	if distinct <= 0 || distinct > 20*19/2 {
		t.Errorf("distinct = %d, want in (0, %d]", distinct, 20*19/2)
	}
	if distinct > tr.Measurements() {
		t.Errorf("distinct %d exceeds lookups %d", distinct, tr.Measurements())
	}
	f, err := BuildForest(o, 100, SearchAnchor, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fd := f.DistinctMeasurements(); fd <= 0 || fd > 20*19/2 {
		t.Errorf("forest distinct = %d", fd)
	}
}

func TestMeasurementsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	o := testutil.RandomTreeMetric(10, rng)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Measurements() <= 0 {
		t.Error("no measurements recorded")
	}
	// Full search measures every prior host (d(z,cand) + d(x,cand) per
	// candidate, plus d(z,x)): strictly fewer than 2n^2 lookups.
	if tr.Measurements() > 2*10*10 {
		t.Errorf("full search used %d measurements (> 2n^2)", tr.Measurements())
	}
}
