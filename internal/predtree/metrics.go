package predtree

import "bwcluster/internal/telemetry"

// Telemetry for framework construction. Build timings are per tree (one
// histogram observation per Build call, whether it runs sequentially or
// on a BuildForestParallel worker); measurement counts mirror the
// paper's construction-cost metric (§V) so the cost the system pays to
// join hosts is continuously visible, not recomputed ad hoc by the
// simulation harness.
var (
	mBuildSeconds = telemetry.NewHistogram("bwc_predtree_build_seconds",
		"Wall time to build one prediction tree (per tree, any worker).",
		telemetry.DurationBuckets())
	mTreesBuilt = telemetry.NewCounter("bwc_predtree_trees_built_total",
		"Prediction trees built.")
	mMeasurements = telemetry.NewCounter("bwc_predtree_measurements_total",
		"Construction measurement lookups performed across all built trees.")
	mHostsRemoved = telemetry.NewCounter("bwc_predtree_hosts_removed_total",
		"Hosts evicted from prediction trees by incremental repair (per tree).")
)
