package predtree

import (
	"fmt"
	"io"
	"sort"
)

// WritePredictionDOT renders the prediction tree in Graphviz DOT format:
// box-shaped leaves are hosts, small circles are inner nodes (labelled
// t<host> for the host whose insertion created them), and edge labels
// carry the embedded weights. Useful for inspecting how a framework
// embedded its measurements (compare the paper's Fig. 1).
func (t *Tree) WritePredictionDOT(w io.Writer) error {
	// Invert tVert for inner-node labels.
	innerName := make(map[int32]string, len(t.tVert))
	for host, v := range t.tVert {
		if v >= 0 {
			innerName[v] = fmt.Sprintf("t%d", host)
		}
	}
	var b []byte
	b = append(b, "graph prediction {\n  node [fontsize=10];\n"...)
	for idx, vert := range t.verts {
		if vert.host >= 0 {
			b = append(b, fmt.Sprintf("  v%d [label=\"%d\", shape=box];\n", idx, vert.host)...)
			continue
		}
		name := innerName[int32(idx)]
		if name == "" {
			name = fmt.Sprintf("i%d", idx)
		}
		b = append(b, fmt.Sprintf("  v%d [label=\"%s\", shape=circle, width=0.2];\n", idx, name)...)
	}
	for idx, vert := range t.verts {
		for e := vert.firstEdge; e >= 0; e = t.edges[e].next {
			if int(t.edges[e].to) < idx {
				continue // emit each undirected edge once
			}
			b = append(b, fmt.Sprintf("  v%d -- v%d [label=\"%.3g\"];\n", idx, t.edges[e].to, t.edges[e].w)...)
		}
	}
	b = append(b, "}\n"...)
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("predtree: write prediction dot: %w", err)
	}
	return nil
}

// WriteAnchorDOT renders the anchor tree (the protocol's overlay) in DOT
// format, root at the top.
func (t *Tree) WriteAnchorDOT(w io.Writer) error {
	var b []byte
	b = append(b, "digraph anchor {\n  node [fontsize=10, shape=box];\n"...)
	hosts := t.Hosts()
	sort.Ints(hosts)
	for _, h := range hosts {
		b = append(b, fmt.Sprintf("  h%d [label=\"%d\"];\n", h, h)...)
	}
	for _, h := range hosts {
		if p := t.AnchorParent(h); p >= 0 {
			b = append(b, fmt.Sprintf("  h%d -> h%d;\n", p, h)...)
		}
	}
	b = append(b, "}\n"...)
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("predtree: write anchor dot: %w", err)
	}
	return nil
}
