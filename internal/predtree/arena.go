package predtree

import "sync"

// BFS scratch arena. Every tree walk (insertion search, distance query,
// matrix materialization) needs a queue, a predecessor table and a
// distance table sized by the vertex count. Allocating them per call was
// the dominant allocation source of forest construction (~876k allocs/op
// in the Fig. 3 benchmark before the flat refactor); instead they live in
// a pooled scratch arena that is reused across calls, across builds and
// across benchmark iterations. Visited-marking uses epoch stamps so a
// fresh walk costs O(1) setup instead of an O(V) clear.
//
// A scratch is owned by exactly one goroutine between get and put, so
// concurrent Dist/DistMatrix callers each draw their own arena and the
// tree itself stays read-only — the property that makes a built Tree safe
// for concurrent queries.
type scratch struct {
	queue    []int32 // BFS queue (vertex indices)
	prevVert []int32 // BFS predecessor vertex
	prevEdge []int32 // half-edge index used to reach the vertex
	dist     []float64
	mark     []int32 // epoch stamps: mark[v] == epoch means visited
	epoch    int32

	// path output buffers, filled by Tree.path.
	pathVerts   []int32
	pathWeights []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch returns a scratch arena ready for a tree with nVerts
// vertices.
func getScratch(nVerts int) *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.ensure(nVerts)
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// ensure grows the arena to cover nVerts vertices, preserving epoch
// validity: freshly grown mark entries are zero, which only reads as
// "visited" for epoch 0, so the epoch counter starts at 1.
func (sc *scratch) ensure(nVerts int) {
	if cap(sc.mark) >= nVerts {
		sc.mark = sc.mark[:nVerts]
		sc.prevVert = sc.prevVert[:nVerts]
		sc.prevEdge = sc.prevEdge[:nVerts]
		sc.dist = sc.dist[:nVerts]
		return
	}
	sc.mark = make([]int32, nVerts)
	sc.prevVert = make([]int32, nVerts)
	sc.prevEdge = make([]int32, nVerts)
	sc.dist = make([]float64, nVerts)
	sc.epoch = 0
}

// nextEpoch advances the visited stamp, clearing the mark table on the
// (practically unreachable) wraparound.
func (sc *scratch) nextEpoch() int32 {
	sc.epoch++
	if sc.epoch <= 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 1
	}
	return sc.epoch
}
