package predtree

import "fmt"

// Remove evicts host h from the tree incrementally: h's leaf vertex is
// detached, inner vertices left structurally redundant by the departure
// are spliced out or freed onto the arena free-lists, and h's anchor
// children are re-anchored under an heir — no rebuild, no new
// measurements.
//
// Geometry (DESIGN.md §8h): every child c of h keeps its inner node t_c
// on h's pendant geodesic [t_h → leaf_h], because insertions subdivide an
// edge their anchor created and h's created edges all lie on that
// geodesic. The heir is the child whose t sits deepest on it (minimal
// offset, i.e. closest to leaf_h), so the heir's new pendant geodesic
// [t_h → t_heir → leaf_heir] contains every orphaned t_c. The heir
// therefore inherits t_h, h's slot in the anchor tree, and h's remaining
// children; one BFS from the heir's leaf — the same tree-walk machinery
// insertion uses — re-derives the children's offsets and the heir's
// pendant from the repaired tree, and h's created edges are reassigned to
// the heir so future insertions that land on them anchor to a live host.
// Removing the root promotes the heir to root the same way.
//
// Determinism: offset ties break toward the smaller host id, children
// keep join order, and freed slots are reused LIFO, so the same operation
// sequence always yields a bit-identical tree.
func (t *Tree) Remove(h int) error {
	if !t.Contains(h) {
		return fmt.Errorf("predtree: remove host %d: not present", h)
	}
	if len(t.order) == 1 {
		return fmt.Errorf("predtree: remove host %d: cannot remove the last host", h)
	}

	lx, tx := t.leafVert[h], t.tVert[h]
	// Clear h's host registration first: vertex cleanup keeps any vertex
	// serving as a live host's leaf or inner node, and h no longer counts.
	t.leafVert[h] = nilIdx
	t.tVert[h] = nilIdx

	children := t.childList(h)
	if len(children) == 0 {
		// No child ever subdivided h's pendant chain (or every one that
		// did has since been removed and collapsed), so the chain folds
		// away entirely and the edge h's insertion subdivided is restored.
		// h cannot be the root here: with two or more hosts the root
		// always anchors at least one child.
		t.unlinkChild(t.anchorParent[h], int32(h))
		t.evictLeaf(lx)
	} else {
		t.removeWithHeir(h, lx, tx, children)
	}

	t.anchorParent[h] = nilIdx
	t.firstChild[h] = nilIdx
	t.lastChild[h] = nilIdx
	t.nextSibling[h] = nilIdx
	t.offset[h] = 0
	t.pendant[h] = 0
	for i, v := range t.order {
		if v == h {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	t.clearMeasured(h)
	t.epoch++
	mHostsRemoved.Inc()
	return nil
}

// removeWithHeir detaches host h while it still anchors children.
func (t *Tree) removeWithHeir(h int, lx, tx int32, children []int32) {
	heir := children[0]
	for _, c := range children[1:] {
		if t.offset[c] < t.offset[heir] || (t.offset[c] == t.offset[heir] && c < heir) {
			heir = c
		}
	}

	if h == t.root {
		t.root = int(heir)
		t.anchorParent[heir] = nilIdx
		t.nextSibling[heir] = nilIdx
		t.offset[heir] = 0
	} else {
		t.replaceChild(t.anchorParent[h], int32(h), heir)
		t.offset[heir] = t.offset[h]
	}
	if tx >= 0 {
		// The heir inherits h's inner node: its new pendant geodesic is
		// h's spine from t_h down through its old inner node to its leaf.
		t.tVert[heir] = tx
	}
	// tx < 0 means h was the original root (its insertion created no
	// inner node): the heir keeps its own inner node and pendant, and
	// the orphans' inner nodes all coincide with h's leaf point.

	for _, c := range children {
		if c != heir {
			t.appendChild(heir, c)
		}
	}

	t.evictLeaf(lx)

	// One BFS from the heir's leaf re-derives every re-anchored child's
	// offset and the heir's pendant from the repaired geometry.
	sc := getScratch(len(t.verts))
	t.distancesFrom(t.leafVert[heir], sc)
	if tx >= 0 {
		t.pendant[heir] = sc.dist[tx]
	}
	for _, c := range children {
		if c != heir {
			t.offset[c] = sc.dist[t.tVert[c]]
		}
	}
	putScratch(sc)

	// Edges h created lie on the heir's new pendant geodesic now; future
	// insertions that subdivide them must anchor to the heir.
	t.reassignCreator(int32(h), heir)
}

// evictLeaf detaches the departing host's leaf vertex. A leaf with more
// than one edge (degenerate insertions attach zero-weight edges to their
// base leaf) stays behind as an inner junction; otherwise its pendant
// edge is dropped and the chain above is collapsed.
func (t *Tree) evictLeaf(lx int32) {
	if t.degreeOf(lx) > 1 {
		t.verts[lx].host = -1
		t.cleanupVertex(lx)
		return
	}
	nb := t.soleNeighbor(lx)
	if nb >= 0 {
		t.removeEdge(lx, nb)
	}
	t.freeVertex(lx)
	if nb >= 0 {
		t.cleanupVertex(nb)
	}
}

// cleanupVertex splices out or frees vertices left structurally
// redundant by an eviction, walking up the freed chain. A vertex is kept
// while it is a live host's leaf, some live host's inner node, or a
// junction of degree >= 3. Degree-2 junctions are spliced: their two
// edges merge into one carrying the summed weight (in adjacency order,
// keeping the float association deterministic) and the first edge's
// creator — normally both halves of a former subdivision share it, and
// when they differ the departing host's edges are reassigned to the heir
// right after, restoring the creator invariant either way.
func (t *Tree) cleanupVertex(v int32) {
	for v >= 0 {
		if t.verts[v].host >= 0 || t.isLiveInner(v) {
			return
		}
		switch t.degreeOf(v) {
		case 0:
			t.freeVertex(v)
			return
		case 1:
			nb := t.soleNeighbor(v)
			t.removeEdge(v, nb)
			t.freeVertex(v)
			v = nb
		case 2:
			e1 := t.verts[v].firstEdge
			e2 := t.edges[e1].next
			a, wa, creator := t.edges[e1].to, t.edges[e1].w, t.edges[e1].creator
			b, wb := t.edges[e2].to, t.edges[e2].w
			t.removeEdge(v, a)
			t.removeEdge(v, b)
			t.freeVertex(v)
			t.connect(a, b, wa+wb, creator)
			return
		default:
			return
		}
	}
}

// isLiveInner reports whether v serves as some live host's inner node.
func (t *Tree) isLiveInner(v int32) bool {
	for _, h := range t.order {
		if t.tVert[h] == v {
			return true
		}
	}
	return false
}

// degreeOf counts v's adjacency-list entries.
func (t *Tree) degreeOf(v int32) int {
	deg := 0
	for e := t.verts[v].firstEdge; e >= 0; e = t.edges[e].next {
		deg++
	}
	return deg
}

// soleNeighbor returns the destination of v's first edge, nilIdx when v
// is isolated.
func (t *Tree) soleNeighbor(v int32) int32 {
	if e := t.verts[v].firstEdge; e >= 0 {
		return t.edges[e].to
	}
	return nilIdx
}

// freeVertex releases a vertex-arena slot onto the free-list. The caller
// must have dropped all of its edges.
func (t *Tree) freeVertex(v int32) {
	t.verts[v] = vertex{host: -1, firstEdge: nilIdx}
	t.freeVerts = append(t.freeVerts, v)
}

// childList snapshots h's anchor children in join order.
func (t *Tree) childList(h int) []int32 {
	var out []int32
	for c := t.firstChild[h]; c >= 0; c = t.nextSibling[c] {
		out = append(out, c)
	}
	return out
}

// unlinkChild removes child from p's anchor child list.
func (t *Tree) unlinkChild(p, child int32) {
	prev := nilIdx
	for c := t.firstChild[p]; c >= 0; c = t.nextSibling[c] {
		if c == child {
			if prev < 0 {
				t.firstChild[p] = t.nextSibling[c]
			} else {
				t.nextSibling[prev] = t.nextSibling[c]
			}
			if t.lastChild[p] == child {
				t.lastChild[p] = prev
			}
			return
		}
		prev = c
	}
}

// replaceChild swaps old for repl in p's child list, in place, so repl
// takes over old's join-order position.
func (t *Tree) replaceChild(p, old, repl int32) {
	prev := nilIdx
	for c := t.firstChild[p]; c >= 0; c = t.nextSibling[c] {
		if c == old {
			if prev < 0 {
				t.firstChild[p] = repl
			} else {
				t.nextSibling[prev] = repl
			}
			t.nextSibling[repl] = t.nextSibling[old]
			if t.lastChild[p] == old {
				t.lastChild[p] = repl
			}
			t.anchorParent[repl] = p
			return
		}
		prev = c
	}
}

// appendChild links c at the tail of p's child list.
func (t *Tree) appendChild(p, c int32) {
	t.anchorParent[c] = p
	t.nextSibling[c] = nilIdx
	if t.firstChild[p] < 0 {
		t.firstChild[p] = c
	} else {
		t.nextSibling[t.lastChild[p]] = c
	}
	t.lastChild[p] = c
}

// reassignCreator hands every edge created by host from to host to.
func (t *Tree) reassignCreator(from, to int32) {
	for i := range t.edges {
		if t.edges[i].creator == from {
			t.edges[i].creator = to
		}
	}
}

// clearMeasured forgets h's measured pairs: a departed host's cached
// measurements are gone with it, so re-admitting it costs fresh probes
// (the cost DistinctMeasurements tracks).
func (t *Tree) clearMeasured(h int) {
	if h >= t.mstride || t.measuredCount == 0 {
		return
	}
	drop := func(lo, hi int) {
		bit := lo*t.mstride + hi
		if t.measured[bit>>6]&(1<<(bit&63)) != 0 {
			t.measured[bit>>6] &^= 1 << (bit & 63)
			t.measuredCount--
		}
	}
	for lo := 0; lo < h; lo++ {
		drop(lo, h)
	}
	for hi := h + 1; hi < t.mstride; hi++ {
		drop(h, hi)
	}
}
