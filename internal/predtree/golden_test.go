package predtree

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"bwcluster/internal/testutil"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden wire-format files")

// The golden files under testdata/golden were generated from the
// pre-arena representation (maps and per-vertex adjacency slices) and pin
// the gob wire format bit for bit. The arena-backed build must encode
// byte-identically: the flat representation is an in-memory layout
// change, never a wire or semantics change (DESIGN.md §8g).

type goldenTreeCase struct {
	name  string
	n     int
	seed  int64
	noise float64
	mode  SearchMode
}

var goldenTreeCases = []goldenTreeCase{
	{name: "tree_full_n40_seed1", n: 40, seed: 1, noise: 0.2, mode: SearchFull},
	{name: "tree_anchor_n40_seed2", n: 40, seed: 2, noise: 0.2, mode: SearchAnchor},
	{name: "tree_anchor_exact_n24_seed5", n: 24, seed: 5, noise: 0, mode: SearchAnchor},
}

func buildGoldenTree(t *testing.T, tc goldenTreeCase) *Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(tc.seed))
	o := testutil.NoisyTreeMetric(tc.n, tc.noise, rng)
	tr, err := Build(o, 100, tc.mode, rng.Perm(tc.n))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".gob")
}

// checkGolden compares blob against the committed golden (or rewrites it
// under -update-golden).
func checkGolden(t *testing.T, name string, blob []byte) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update-golden): %v", path, err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("%s: encoding diverged from golden (%d vs %d bytes); the wire format or the deterministic build changed",
			name, len(blob), len(want))
	}
}

// TestGoldenTreeEncoding pins the tree wire bytes for both search modes.
func TestGoldenTreeEncoding(t *testing.T) {
	for _, tc := range goldenTreeCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildGoldenTree(t, tc)
			blob, err := tr.GobEncode()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, blob)
		})
	}
}

// TestGoldenForestEncoding pins the forest wire bytes (three trees built
// from one split random stream, the BuildForestParallel determinism
// contract).
func TestGoldenForestEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := testutil.NoisyTreeMetric(32, 0.15, rng)
	f, err := BuildForest(o, 100, SearchAnchor, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "forest_anchor_n32_seed3", blob)
}

// TestGoldenRoundTrip decodes every committed golden and re-encodes it:
// the bytes must survive unchanged, proving the decode path reconstructs
// every field the encode path reads.
func TestGoldenRoundTrip(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens being rewritten")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("read golden dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no golden files committed")
	}
	for _, e := range entries {
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			blob, err := os.ReadFile(filepath.Join("testdata", "golden", name))
			if err != nil {
				t.Fatal(err)
			}
			var re []byte
			if name == "forest_anchor_n32_seed3.gob" {
				var f Forest
				if err := f.GobDecode(blob); err != nil {
					t.Fatal(err)
				}
				if re, err = f.GobEncode(); err != nil {
					t.Fatal(err)
				}
			} else {
				var tr Tree
				if err := tr.GobDecode(blob); err != nil {
					t.Fatal(err)
				}
				if re, err = tr.GobEncode(); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(re, blob) {
				t.Fatalf("%s: re-encode after decode changed the bytes (%d vs %d)", name, len(re), len(blob))
			}
		})
	}
}

// TestGoldenDecodedSemantics decodes a golden tree and spot-checks that
// predicted distances agree with a fresh deterministic build — the golden
// is not just stable bytes but the same embedded geometry.
func TestGoldenDecodedSemantics(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens being rewritten")
	}
	tc := goldenTreeCases[1]
	blob, err := os.ReadFile(goldenPath(tc.name))
	if err != nil {
		t.Fatal(err)
	}
	var dec Tree
	if err := dec.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	fresh := buildGoldenTree(t, tc)
	if dec.Len() != fresh.Len() {
		t.Fatalf("host count %d vs %d", dec.Len(), fresh.Len())
	}
	for u := 0; u < tc.n; u++ {
		for v := u + 1; v < tc.n; v++ {
			if d1, d2 := dec.Dist(u, v), fresh.Dist(u, v); d1 != d2 {
				t.Fatalf("Dist(%d,%d) %v vs %v", u, v, d1, d2)
			}
		}
	}
}
