package predtree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/metric"
	"bwcluster/internal/testutil"
)

// checkTreeInvariants verifies the structural contract Remove must
// preserve: symmetric adjacency, a connected acyclic anchor tree over
// exactly the live hosts, live edge creators, label/distance agreement,
// and no live reference into a freed arena slot.
func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	hosts := tr.Hosts()
	if len(hosts) == 0 {
		return
	}

	freed := make(map[int32]bool, len(tr.freeVerts))
	for _, v := range tr.freeVerts {
		freed[v] = true
	}
	freedEdge := make(map[int32]bool, len(tr.freeEdges))
	for _, e := range tr.freeEdges {
		freedEdge[e] = true
	}
	live := make(map[int]bool, len(hosts))
	for _, h := range hosts {
		live[h] = true
	}

	// Adjacency: every half-edge has a reverse with the same weight; no
	// edge touches a freed vertex or is threaded through a freed slot;
	// creators are live hosts.
	for vi := range tr.verts {
		v := int32(vi)
		for e := tr.verts[v].firstEdge; e >= 0; e = tr.edges[e].next {
			if freed[v] {
				t.Fatalf("freed vertex %d still has edges", v)
			}
			if freedEdge[e] {
				t.Fatalf("adjacency of vertex %d runs through freed edge slot %d", v, e)
			}
			to := tr.edges[e].to
			if to < 0 || freed[to] {
				t.Fatalf("edge %d->%d targets a freed or invalid vertex", v, to)
			}
			if !live[int(tr.edges[e].creator)] {
				t.Fatalf("edge %d->%d created by non-live host %d", v, to, tr.edges[e].creator)
			}
			back := false
			for r := tr.verts[to].firstEdge; r >= 0; r = tr.edges[r].next {
				if tr.edges[r].to == v && tr.edges[r].w == tr.edges[e].w {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("edge %d->%d has no symmetric reverse", v, to)
			}
		}
	}

	// Host registers point at live, correctly-typed vertices.
	for _, h := range hosts {
		lv := tr.leafVert[h]
		if lv < 0 || freed[lv] || tr.verts[lv].host != int32(h) {
			t.Fatalf("host %d leaf register broken (vertex %d)", h, lv)
		}
		if tv := tr.tVert[h]; tv >= 0 && (freed[tv] || tr.verts[tv].host != -1) {
			t.Fatalf("host %d inner register broken (vertex %d)", h, tv)
		}
	}

	// Anchor tree: n-1 parent links among live hosts, children lists
	// consistent, one root, no cycles (depth bounded by walking n steps).
	root := tr.Root()
	if !live[root] {
		t.Fatalf("root %d is not live", root)
	}
	edges := 0
	for _, h := range hosts {
		p := tr.AnchorParent(h)
		if h == root {
			if p != -1 {
				t.Fatalf("root %d has parent %d", h, p)
			}
			continue
		}
		if p < 0 || !live[p] {
			t.Fatalf("host %d has dead or missing anchor %d", h, p)
		}
		edges++
		found := false
		for _, c := range tr.AnchorChildren(p) {
			if c == h {
				found = true
			}
			if !live[c] {
				t.Fatalf("host %d lists dead child %d", p, c)
			}
		}
		if !found {
			t.Fatalf("host %d missing from children of anchor %d", h, p)
		}
		steps := 0
		for cur := h; cur >= 0; cur = tr.AnchorParent(cur) {
			if steps++; steps > len(hosts) {
				t.Fatalf("anchor chain of %d does not terminate", h)
			}
		}
	}
	if edges != len(hosts)-1 {
		t.Fatalf("anchor tree has %d edges, want %d", edges, len(hosts)-1)
	}

	// Labels still reproduce tree distances (the caterpillar invariant
	// Remove's heir scheme exists to preserve).
	labels := make(map[int]Label, len(hosts))
	for _, h := range hosts {
		l, err := tr.Label(h)
		if err != nil {
			t.Fatalf("label %d: %v", h, err)
		}
		labels[h] = l
	}
	for i, u := range hosts {
		for _, v := range hosts[i+1:] {
			want := tr.Dist(u, v)
			got, err := LabelDist(labels[u], labels[v])
			if err != nil {
				t.Fatalf("LabelDist(%d,%d): %v", u, v, err)
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("LabelDist(%d,%d)=%v, tree says %v\nLu=%v\nLv=%v",
					u, v, got, want, labels[u], labels[v])
			}
		}
	}
}

func TestRemoveErrors(t *testing.T) {
	o := metric.NewMatrix(2)
	o.Set(0, 1, 10)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(7); err == nil {
		t.Error("removing an absent host should fail")
	}
	if err := tr.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(0); err == nil {
		t.Error("removing the last host should fail")
	}
}

// TestRemovePreservesSurvivorDistances is the core repair guarantee:
// eviction splices zero-sum, so every surviving pairwise distance is
// unchanged (up to float reassociation in degree-2 merges).
func TestRemovePreservesSurvivorDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, mode := range []SearchMode{SearchFull, SearchAnchor} {
		for trial := 0; trial < 6; trial++ {
			n := 8 + rng.Intn(24)
			o := testutil.NoisyTreeMetric(n, 0.2, rng)
			tr, err := Build(o, 100, mode, testutil.Perm(n, rng))
			if err != nil {
				t.Fatal(err)
			}
			before := make(map[[2]int]float64)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					before[[2]int{i, j}] = tr.Dist(i, j)
				}
			}
			// Remove a third of the hosts, including the root at least once.
			victims := testutil.Perm(n, rng)[:n/3+1]
			if trial%2 == 0 {
				victims[0] = tr.Root()
			}
			gone := make(map[int]bool)
			for _, h := range victims {
				if gone[h] {
					continue
				}
				if err := tr.Remove(h); err != nil {
					t.Fatalf("mode %d n=%d remove %d: %v", mode, n, h, err)
				}
				gone[h] = true
				checkTreeInvariants(t, tr)
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if gone[i] || gone[j] {
						if d := tr.Dist(i, j); !math.IsInf(d, 1) {
							t.Fatalf("removed pair (%d,%d) has finite distance %v", i, j, d)
						}
						continue
					}
					want := before[[2]int{i, j}]
					got := tr.Dist(i, j)
					if math.Abs(got-want) > 1e-9*(1+want) {
						t.Fatalf("mode %d n=%d: survivor d(%d,%d) drifted %v -> %v",
							mode, n, i, j, want, got)
					}
				}
			}
		}
	}
}

// TestRemoveRootPromotesHeir removes the root repeatedly until two hosts
// remain; each promotion must keep the anchor tree rooted and exact.
func TestRemoveRootPromotesHeir(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	n := 18
	o := testutil.RandomTreeMetric(n, rng)
	tr, err := Build(o, 100, SearchAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tr.Len() > 2 {
		if err := tr.Remove(tr.Root()); err != nil {
			t.Fatal(err)
		}
		checkTreeInvariants(t, tr)
	}
	// Survivor distance still matches the oracle on an exact tree metric.
	hosts := tr.Hosts()
	want := o.Dist(hosts[0], hosts[1])
	if got := tr.Dist(hosts[0], hosts[1]); math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("final pair distance %v, want %v", got, want)
	}
}

// TestRemoveThenAdd covers the churn cycle the membership layer drives:
// remove ~25% of the hosts, re-add some through the normal insertion
// machinery, and verify the tree is exact again on a tree metric.
func TestRemoveThenAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for _, mode := range []SearchMode{SearchFull, SearchAnchor} {
		n := 24
		o := testutil.RandomTreeMetric(n, rng)
		tr, err := Build(o, 100, mode, testutil.Perm(n, rng))
		if err != nil {
			t.Fatal(err)
		}
		victims := testutil.Perm(n, rng)[:n/4]
		for _, h := range victims {
			if err := tr.Remove(h); err != nil {
				t.Fatal(err)
			}
		}
		checkTreeInvariants(t, tr)
		for i, h := range victims {
			if i%2 == 1 {
				continue // leave some out for good
			}
			if err := tr.Add(h, o); err != nil {
				t.Fatalf("mode %d re-add %d: %v", mode, h, err)
			}
			checkTreeInvariants(t, tr)
		}
		for _, u := range tr.Hosts() {
			for _, v := range tr.Hosts() {
				if u >= v {
					continue
				}
				want := o.Dist(u, v)
				if got := tr.Dist(u, v); math.Abs(got-want) > 1e-6*(1+want) {
					t.Fatalf("mode %d: d(%d,%d)=%v, want %v", mode, u, v, got, want)
				}
			}
		}
	}
}

// TestChurnDeterminism: the same operation sequence yields bit-identical
// wire bytes, run to run — the determinism contract Remove extends to
// churned trees.
func TestChurnDeterminism(t *testing.T) {
	churn := func() []byte {
		rng := rand.New(rand.NewSource(109))
		o := testutil.NoisyTreeMetric(30, 0.25, rng)
		f, err := BuildForest(o, 100, SearchAnchor, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		present := make([]bool, 30)
		for i := range present {
			present[i] = true
		}
		liveCount := 30
		for op := 0; op < 60; op++ {
			h := rng.Intn(30)
			if present[h] && liveCount > 2 {
				if err := f.Remove(h); err != nil {
					t.Fatal(err)
				}
				present[h] = false
				liveCount--
			} else if !present[h] {
				if err := f.Add(h, o); err != nil {
					t.Fatal(err)
				}
				present[h] = true
				liveCount++
			}
		}
		blob, err := f.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := churn(), churn()
	if !bytes.Equal(a, b) {
		t.Fatalf("same churn sequence produced different wire bytes (%d vs %d)", len(a), len(b))
	}
}

// TestChurnFuzz hammers random remove/add sequences on a noisy metric,
// checking the full invariant set after every operation.
func TestChurnFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	n := 20
	o := testutil.NoisyTreeMetric(n, 0.4, rng)
	tr, err := Build(o, 100, SearchAnchor, testutil.Perm(n, rng))
	if err != nil {
		t.Fatal(err)
	}
	liveCount := n
	for op := 0; op < 150; op++ {
		h := rng.Intn(n)
		if tr.Contains(h) && liveCount > 2 {
			if err := tr.Remove(h); err != nil {
				t.Fatalf("op %d remove %d: %v", op, h, err)
			}
			liveCount--
		} else if !tr.Contains(h) {
			if err := tr.Add(h, o); err != nil {
				t.Fatalf("op %d add %d: %v", op, h, err)
			}
			liveCount++
		} else {
			continue
		}
		checkTreeInvariants(t, tr)
	}
}

// TestRemoveArenaReuse: remove/re-add cycles must recycle freed slots
// instead of growing the arenas without bound.
func TestRemoveArenaReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	n := 32
	o := testutil.NoisyTreeMetric(n, 0.2, rng)
	tr, err := Build(o, 100, SearchAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	vertsLen, edgesLen := len(tr.verts), len(tr.edges)
	const cycles = 64
	for cycle := 0; cycle < cycles; cycle++ {
		h := rng.Intn(n)
		if err := tr.Remove(h); err != nil {
			t.Fatal(err)
		}
		if err := tr.Add(h, o); err != nil {
			t.Fatal(err)
		}
	}
	// Without slot reuse every cycle appends ~2 vertices and >= 4
	// half-edges (~+128/+256 here). With the free-list only the slow
	// accumulation of degree-3 junction structure remains — a small
	// fraction of a slot per cycle.
	if len(tr.verts) > vertsLen+cycles/2 || len(tr.edges) > edgesLen+cycles {
		t.Fatalf("arena growth under churn: verts %d -> %d, edges %d -> %d over %d cycles",
			vertsLen, len(tr.verts), edgesLen, len(tr.edges), cycles)
	}
}

// TestChurnedGobRoundTrip: a post-churn tree (holes in the arenas)
// persists compacted, decodes to the same geometry, and re-encodes to
// identical bytes.
func TestChurnedGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	n := 24
	o := testutil.NoisyTreeMetric(n, 0.2, rng)
	tr, err := Build(o, 100, SearchAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range testutil.Perm(n, rng)[:n/4] {
		if err := tr.Remove(h); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.freeVerts) == 0 {
		t.Fatal("churn left no freed slots; compaction untested")
	}
	blob, err := tr.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var dec Tree
	if err := dec.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	if len(dec.verts) >= len(tr.verts) {
		t.Fatalf("decode did not compact: %d verts vs %d live+free", len(dec.verts), len(tr.verts))
	}
	checkTreeInvariants(t, &dec)
	for _, u := range tr.Hosts() {
		for _, v := range tr.Hosts() {
			if u >= v {
				continue
			}
			if d1, d2 := tr.Dist(u, v), dec.Dist(u, v); d1 != d2 {
				t.Fatalf("decoded distance d(%d,%d) %v vs %v", u, v, d1, d2)
			}
		}
	}
	re, err := dec.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, blob) {
		t.Fatalf("re-encode after decode changed the bytes (%d vs %d)", len(re), len(blob))
	}
}

func TestEpochCountsMembershipChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	n := 10
	o := testutil.RandomTreeMetric(n, rng)
	f, err := BuildForest(o, 100, SearchAnchor, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Epoch(); got != uint64(n) {
		t.Fatalf("post-build epoch %d, want %d", got, n)
	}
	if err := f.Remove(3); err != nil {
		t.Fatal(err)
	}
	if got := f.Epoch(); got != uint64(n)+1 {
		t.Fatalf("post-remove epoch %d, want %d", got, n+1)
	}
	if err := f.Add(3, o); err != nil {
		t.Fatal(err)
	}
	if got := f.Epoch(); got != uint64(n)+2 {
		t.Fatalf("post-re-add epoch %d, want %d", got, n+2)
	}
	if err := f.Remove(99); err == nil {
		t.Fatal("forest remove of absent host should fail")
	}
}

// BenchmarkIncrementalRemoveAdd is the headline repair economics number:
// evicting one host from a 256-host, 3-tree forest and re-inserting it
// incrementally, against rebuilding the whole forest from scratch (what
// a membership change cost before Remove existed). The bench gate
// (cmd/bwc-benchjson) requires the incremental path to be at least 10x
// faster than the rebuild.
func BenchmarkIncrementalRemoveAdd(b *testing.B) {
	const n, count = 256, 3
	o := testutil.NoisyTreeMetric(n, 0.1, rand.New(rand.NewSource(5)))
	b.Run("incremental", func(b *testing.B) {
		f, err := BuildForest(o, 100, SearchAnchor, count, rand.New(rand.NewSource(6)))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Remove(17); err != nil {
				b.Fatal(err)
			}
			if err := f.Add(17, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildForest(o, 100, SearchAnchor, count, rand.New(rand.NewSource(6))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestForestRemoveKeepsMedian: the forest median distance stays the
// oracle distance for survivors on an exact tree metric.
func TestForestRemoveKeepsMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	n := 16
	o := testutil.RandomTreeMetric(n, rng)
	f, err := BuildForest(o, 100, SearchAnchor, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{2, 9, 14} {
		if err := f.Remove(h); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != n-3 {
		t.Fatalf("forest len %d, want %d", f.Len(), n-3)
	}
	for _, u := range f.Hosts() {
		for _, v := range f.Hosts() {
			if u >= v {
				continue
			}
			want := o.Dist(u, v)
			if got := f.Dist(u, v); math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("forest d(%d,%d)=%v, want %v", u, v, got, want)
			}
		}
	}
}
