package predtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bwcluster/internal/testutil"
)

func TestWritePredictionDOT(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	o := testutil.RandomTreeMetric(8, rng)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePredictionDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph prediction {") || !strings.HasSuffix(out, "}\n") {
		t.Errorf("malformed dot output:\n%s", out)
	}
	// Every host leaf appears.
	for h := 0; h < 8; h++ {
		if !strings.Contains(out, fmt.Sprintf("label=\"%d\", shape=box", h)) {
			t.Errorf("host %d missing from dot output", h)
		}
	}
	// A tree over V vertices has V-1 edges.
	edges := strings.Count(out, " -- ")
	if edges != len(tr.verts)-1 {
		t.Errorf("dot has %d edges, want %d", edges, len(tr.verts)-1)
	}
}

func TestWriteAnchorDOT(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	o := testutil.RandomTreeMetric(10, rng)
	tr, err := Build(o, 100, SearchAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteAnchorDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph anchor {") {
		t.Errorf("malformed dot output:\n%s", out)
	}
	// The anchor tree has exactly n-1 edges.
	if edges := strings.Count(out, " -> "); edges != 9 {
		t.Errorf("anchor dot has %d edges, want 9", edges)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("sink closed") }

func TestDOTWriteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	o := testutil.RandomTreeMetric(4, rng)
	tr, err := Build(o, 100, SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePredictionDOT(failingWriter{}); err == nil {
		t.Error("failing writer should error")
	}
	if err := tr.WriteAnchorDOT(failingWriter{}); err == nil {
		t.Error("failing writer should error")
	}
}
