// Package predtree implements the decentralized bandwidth-prediction
// substrate from Song, Keleher, Bhattacharjee and Sussman (DISC'10 brief /
// INFOCOM'11), which the clustering paper builds on: an edge-weighted
// *prediction tree* embedding pairwise bandwidth (via the rational
// transform), the rooted *anchor tree* overlay, and per-host *distance
// labels* that let any two hosts estimate their distance from purely local
// state.
//
// Hosts are identified by small integers (the indices of the measurement
// oracle). A new host x is attached by choosing a base leaf z, selecting
// the end node y that maximizes the Gromov product
//
//	(x|y)_z = 1/2 (d(z,x) + d(z,y) - d(x,y)),
//
// creating x's inner node t_x on the tree path z~y at distance (x|y)_z
// from z, and hanging x off t_x with edge weight (y|z)_x. The host whose
// insertion created the edge t_x lands on becomes x's *anchor*.
//
// Storage is flat (DESIGN.md §8g): vertices and half-edges live in
// contiguous arenas cross-referenced by int32 indices, per-host state
// lives in dense host-indexed arrays, and tree walks borrow a pooled
// scratch arena instead of allocating. The garbage collector sees a
// handful of slices per tree, never a pointer web.
package predtree

import (
	"fmt"
	"math"
	"time"

	"bwcluster/internal/metric"
)

// SearchMode selects how the end node y is found during insertion.
type SearchMode int

const (
	// SearchFull scans every existing leaf for the global maximizer of the
	// Gromov product. It needs one measurement per existing host and
	// corresponds to the centralized construction.
	SearchFull SearchMode = iota + 1
	// SearchAnchor walks the anchor tree greedily from the root, at each
	// step measuring only the current host and its anchor children and
	// descending while the Gromov product improves. This is the
	// decentralized construction: O(depth x fanout) measurements. On exact
	// tree metrics the greedy walk finds a global maximizer; on noisy data
	// it is a heuristic (the tradeoff the prior work accepts).
	SearchAnchor
)

// Oracle supplies measured distances between hosts. metric.Matrix
// satisfies it.
type Oracle interface {
	N() int
	Dist(i, j int) float64
}

// halfEdge is one direction of an undirected prediction-tree edge. Both
// directions live in the tree's edge arena; next chains the out-edges of
// one vertex in insertion order (the order the old per-vertex adjacency
// slices kept, which the gob wire format exposes).
type halfEdge struct {
	to      int32 // destination vertex index
	next    int32 // next half-edge out of the same vertex, -1 ends the list
	creator int32 // host whose insertion created this edge
	w       float64
}

// vertex is one prediction-tree vertex: a leaf (host >= 0) or an inner
// node (host == -1), with its adjacency list threaded through the edge
// arena.
type vertex struct {
	host      int32 // >= 0 for a leaf vertex, -1 for an inner node
	firstEdge int32 // head of the adjacency list, -1 when isolated
}

// nilIdx is the null value of every int32 index field.
const nilIdx = int32(-1)

// Tree is a prediction tree plus its anchor tree. The zero value is not
// usable; construct with New. A fully built tree is safe for concurrent
// read-only use (Dist, Label, DistMatrix, the anchor accessors); Add and
// Remove mutate and must not race with anything.
type Tree struct {
	c    float64 // rational-transform constant
	mode SearchMode

	verts []vertex   // vertex arena
	edges []halfEdge // half-edge arena, two per undirected edge

	// Host-indexed state, all sized hostCap() and grown together. A host
	// h is present iff leafVert[h] >= 0; tVert is nilIdx for the root
	// (whose insertion creates no inner node) and absent hosts.
	leafVert     []int32
	tVert        []int32
	anchorParent []int32 // anchor host, nilIdx for the root and absent hosts
	firstChild   []int32 // anchored children as a linked list in join order
	lastChild    []int32
	nextSibling  []int32
	offset       []float64
	pendant      []float64

	root         int   // first host, -1 while empty
	order        []int // hosts in insertion order
	measurements int   // oracle lookups performed during construction

	// Distinct measured pairs as a bitset: pair (lo, hi), lo < hi, is bit
	// lo*mstride+hi. The stride is pinned by the first oracle seen and
	// regrown (rarely) if a later oracle covers more hosts.
	measured      []uint64
	mstride       int
	measuredCount int

	// Free-lists of arena slots released by Remove (and the half-edge
	// slots subdivision drops), reused LIFO by the next allocation so a
	// remove/re-add cycle leaves the arena length unchanged. In-memory
	// only: the wire format compacts freed slots away on encode.
	freeVerts []int32
	freeEdges []int32

	// epoch counts membership changes: Add and Remove each bump it once.
	// Derived read structures (cluster.Index) are tagged with the epoch
	// they were built at so queries against stale membership are rejected
	// instead of silently wrong. Not on the tree's own wire: a decoded
	// snapshot starts at zero unless the enclosing snapshot re-seats the
	// counter via SetEpoch (bwcluster persistence does, so replicated
	// shards agree on the epoch their rendezvous assignment is keyed by).
	epoch uint64
}

// New returns an empty prediction tree using rational-transform constant c
// and the given end-node search mode.
func New(c float64, mode SearchMode) (*Tree, error) {
	if c <= 0 {
		return nil, fmt.Errorf("predtree: constant must be positive, got %v", c)
	}
	if mode != SearchFull && mode != SearchAnchor {
		return nil, fmt.Errorf("predtree: unknown search mode %d", mode)
	}
	return &Tree{c: c, mode: mode, root: -1}, nil
}

// Build constructs a tree from the oracle by inserting hosts in the given
// order. Passing a nil order inserts 0..o.N()-1.
func Build(o Oracle, c float64, mode SearchMode, order []int) (*Tree, error) {
	t, err := New(c, mode)
	if err != nil {
		return nil, err
	}
	if order == nil {
		order = make([]int, o.N())
		for i := range order {
			order[i] = i
		}
	}
	start := time.Now()
	for _, h := range order {
		if err := t.Add(h, o); err != nil {
			return nil, fmt.Errorf("predtree: add host %d: %w", h, err)
		}
	}
	mBuildSeconds.Observe(time.Since(start).Seconds())
	mTreesBuilt.Inc()
	mMeasurements.Add(t.measurements)
	return t, nil
}

// C returns the rational-transform constant.
func (t *Tree) C() float64 { return t.c }

// Root returns the first host added, or -1 for an empty tree.
func (t *Tree) Root() int { return t.root }

// Len reports the number of hosts in the tree.
func (t *Tree) Len() int { return len(t.order) }

// Hosts returns the hosts in insertion order.
func (t *Tree) Hosts() []int {
	out := make([]int, len(t.order))
	copy(out, t.order)
	return out
}

// hostCap returns the capacity of the host-indexed arrays.
func (t *Tree) hostCap() int { return len(t.leafVert) }

// Contains reports whether host h has been added.
func (t *Tree) Contains(h int) bool {
	return h >= 0 && h < t.hostCap() && t.leafVert[h] >= 0
}

// Measurements reports how many oracle distance lookups construction has
// performed so far. It is the cost metric distinguishing the centralized
// and decentralized construction modes.
func (t *Tree) Measurements() int { return t.measurements }

// DistinctMeasurements reports how many distinct host pairs construction
// measured — the real network cost when hosts cache measurement results
// (out of n(n-1)/2 possible pairs).
func (t *Tree) DistinctMeasurements() int { return t.measuredCount }

// Epoch reports the tree's membership epoch: the number of Add and
// Remove operations applied so far. Structures derived from a fixed host
// set carry the epoch they observed and must be rebuilt when it moves.
func (t *Tree) Epoch() uint64 { return t.epoch }

// SetEpoch re-seats the membership epoch counter. The tree's own wire
// format does not carry the epoch, so a snapshot that persists it out of
// band (bwcluster's systemWire) calls this on load; later Add/Remove
// operations continue the sequence from the restored value.
func (t *Tree) SetEpoch(epoch uint64) { t.epoch = epoch }

// ensureHostCap grows the host-indexed arrays (and the measured-pair
// bitset stride) to cover hosts [0, n).
func (t *Tree) ensureHostCap(n int) {
	if n <= t.hostCap() {
		return
	}
	old := t.hostCap()
	grow32 := func(s []int32) []int32 {
		out := append(s, make([]int32, n-old)...)
		for i := old; i < n; i++ {
			out[i] = nilIdx
		}
		return out
	}
	t.leafVert = grow32(t.leafVert)
	t.tVert = grow32(t.tVert)
	t.anchorParent = grow32(t.anchorParent)
	t.firstChild = grow32(t.firstChild)
	t.lastChild = grow32(t.lastChild)
	t.nextSibling = grow32(t.nextSibling)
	t.offset = append(t.offset, make([]float64, n-old)...)
	t.pendant = append(t.pendant, make([]float64, n-old)...)
	t.growMeasured(n)
}

// growMeasured re-strides the measured-pair bitset to cover hosts [0, n).
func (t *Tree) growMeasured(n int) {
	if n <= t.mstride {
		return
	}
	fresh := make([]uint64, (n*n+63)/64)
	if t.measuredCount > 0 {
		for lo := 0; lo < t.mstride; lo++ {
			for hi := lo + 1; hi < t.mstride; hi++ {
				if t.pairSet(lo, hi) {
					bit := lo*n + hi
					fresh[bit>>6] |= 1 << (bit & 63)
				}
			}
		}
	}
	t.measured = fresh
	t.mstride = n
}

func (t *Tree) pairSet(lo, hi int) bool {
	bit := lo*t.mstride + hi
	return t.measured[bit>>6]&(1<<(bit&63)) != 0
}

func (t *Tree) measure(o Oracle, a, b int) float64 {
	t.measurements++
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi >= t.mstride {
		t.growMeasured(hi + 1)
	}
	bit := lo*t.mstride + hi
	if t.measured[bit>>6]&(1<<(bit&63)) == 0 {
		t.measured[bit>>6] |= 1 << (bit & 63)
		t.measuredCount++
	}
	return o.Dist(a, b)
}

// eachMeasuredPair calls f for every distinct measured pair in ascending
// (lo, hi) order — which is also ascending lo<<32|hi order, the order the
// wire format requires.
func (t *Tree) eachMeasuredPair(f func(lo, hi int)) {
	if t.measuredCount == 0 {
		return
	}
	for lo := 0; lo < t.mstride; lo++ {
		for hi := lo + 1; hi < t.mstride; hi++ {
			if t.pairSet(lo, hi) {
				f(lo, hi)
			}
		}
	}
}

// Add inserts host h using measured distances from o.
func (t *Tree) Add(h int, o Oracle) error {
	if h < 0 || h >= o.N() {
		return fmt.Errorf("predtree: host %d out of oracle range [0,%d)", h, o.N())
	}
	t.ensureHostCap(o.N())
	if t.Contains(h) {
		return fmt.Errorf("predtree: host %d already present", h)
	}
	if t.root == -1 {
		t.leafVert[h] = t.newVertex(int32(h))
		t.root = h
		t.anchorParent[h] = nilIdx
		t.offset[h] = 0
		t.pendant[h] = 0
		t.order = append(t.order, h)
		t.epoch++
		return nil
	}

	sc := getScratch(len(t.verts) + 2)
	defer putScratch(sc)

	z, dzx := t.findBase(h, o)
	y, gp := t.findEndNode(h, z, dzx, o, sc)

	// The inner node t_x lies on the geodesic from z to x, so geometry
	// bounds the Gromov product by d(z,x) and fixes the pendant to
	// d(z,x) - d(z,t_x). On exact tree metrics these equal the raw
	// formulas ((x|y)_z and (y|z)_x); on noisy inputs the clamps stop
	// measurement noise on large distances from corrupting the placement
	// and keep the measured base distance exactly embedded.
	if gp > dzx {
		gp = dzx
	}
	tx, gActual := t.splitAt(z, y, gp, h, sc)
	pend := dzx - gActual
	if pend < 0 {
		pend = 0
	}
	lx := t.newVertex(int32(h))
	t.connect(lx, tx, pend, int32(h))
	t.leafVert[h] = lx
	t.tVert[h] = tx
	t.pendant[h] = pend
	t.order = append(t.order, h)
	t.epoch++
	return nil
}

// newVertex returns a vertex-arena slot holding a fresh vertex, reusing
// a freed slot (LIFO) when Remove released one.
func (t *Tree) newVertex(host int32) int32 {
	if n := len(t.freeVerts); n > 0 {
		idx := t.freeVerts[n-1]
		t.freeVerts = t.freeVerts[:n-1]
		t.verts[idx] = vertex{host: host, firstEdge: nilIdx}
		return idx
	}
	t.verts = append(t.verts, vertex{host: host, firstEdge: nilIdx})
	return int32(len(t.verts) - 1)
}

// findBase picks the base leaf z for inserting x. The paper allows any
// leaf; choosing one close to x keeps the Gromov products small in
// magnitude, which matters on noisy (non-tree) inputs where subtracting
// two large near-equal distances would turn small relative measurement
// noise into large absolute placement error (the accuracy heuristic the
// prior embedding work alludes to). SearchFull scans every host;
// SearchAnchor descends the anchor tree greedily toward smaller measured
// distance.
func (t *Tree) findBase(x int, o Oracle) (z int, dzx float64) {
	switch t.mode {
	case SearchFull:
		best, bestD := t.root, t.measure(o, t.root, x)
		for _, cand := range t.order {
			if cand == t.root {
				continue
			}
			if d := t.measure(o, cand, x); d < bestD {
				best, bestD = cand, d
			}
		}
		return best, bestD
	default: // SearchAnchor
		cur, curD := t.root, t.measure(o, t.root, x)
		for {
			next, nextD := cur, curD
			for child := t.firstChild[cur]; child >= 0; child = t.nextSibling[child] {
				if d := t.measure(o, int(child), x); d < nextD {
					next, nextD = int(child), d
				}
			}
			if next == cur {
				return cur, curD
			}
			cur, curD = next, nextD
		}
	}
}

// findEndNode picks the end node y maximizing (x|y)_z and returns it along
// with the maximal Gromov product. dzx is the pre-measured d(z,x).
func (t *Tree) findEndNode(x, z int, dzx float64, o Oracle, sc *scratch) (y int, gp float64) {
	grom := func(cand int) float64 {
		if cand == z {
			return 0
		}
		return 0.5 * (dzx + t.measure(o, z, cand) - t.measure(o, x, cand))
	}
	switch t.mode {
	case SearchFull:
		best, bestG := z, 0.0
		for _, cand := range t.order {
			if g := grom(cand); g > bestG {
				best, bestG = cand, g
			}
		}
		return best, bestG
	default: // SearchAnchor
		// Pruned depth-first search over the (undirected) anchor tree,
		// starting at the base leaf z. The Gromov product g(y) = (x|y)_z
		// equals the distance from z to the point where the path z~y
		// diverges from the path z~x. Crossing an anchor edge away from z
		// enters a region of the prediction tree that hangs off a single
		// point (the inner node t_c when descending to child c; the
		// current host's own inner node t_u when climbing to its parent):
		// the region can only contain a better end node if the divergence
		// reaches that hang point, i.e. g(neighbor) >= d_T(z, hang).
		// Regions whose entry fails the bound diverge earlier and are
		// entire plateaus — pruned after a single measurement. The bound
		// holds with equality at branch points (several inner nodes
		// coincide), hence the tolerance and the exploration of all
		// neighbors that meet it. Exact on tree metrics; a heuristic
		// (like the prior work's) on noisy data.
		//
		// d_T(z, ·) is needed for every hang point the walk reaches, so
		// one BFS from z fills the scratch distance table up front —
		// replacing the per-neighbor path walks the pointer version did
		// (identical floats: a tree path is unique and both accumulate
		// weights in root-to-leaf order).
		const relTol = 1e-7
		best, bestG := z, 0.0
		type frame struct {
			host, from int32
		}
		zv := t.leafVert[z]
		t.distancesFrom(zv, sc)
		stack := make([]frame, 0, 32)
		stack = append(stack, frame{host: int32(z), from: nilIdx})
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit := func(nb int32) {
				g := grom(int(nb))
				if g > bestG {
					best, bestG = int(nb), g
				}
				hangHost := nb // descending: region hangs at t_nb
				if nb == t.anchorParent[cur.host] {
					hangHost = cur.host // climbing: region hangs at t_cur
				}
				hv := t.tVert[hangHost]
				if hv < 0 {
					// hangHost is the tree root (no inner node): its
					// "pendant" is the root point itself.
					hv = t.leafVert[hangHost]
				}
				reach := sc.dist[hv]
				if g >= reach-relTol*(1+math.Abs(reach)) {
					stack = append(stack, frame{host: nb, from: cur.host})
				}
			}
			// Parent first, then children in join order — the neighbor
			// order AnchorNeighbors documents.
			if p := t.anchorParent[cur.host]; p >= 0 && p != cur.from {
				visit(p)
			}
			for c := t.firstChild[cur.host]; c >= 0; c = t.nextSibling[c] {
				if c != cur.from {
					visit(c)
				}
			}
		}
		if bestG <= 0 {
			return z, 0
		}
		return best, bestG
	}
}

// splitAt creates the inner vertex t_x located on the tree path from leaf
// z to leaf y at distance g from z (clamped to the path), records
// newHost's anchor, and returns the vertex index of t_x together with the
// actual placement distance from z after clamping.
func (t *Tree) splitAt(z, y int, g float64, newHost int, sc *scratch) (tx int32, gActual float64) {
	zv := t.leafVert[z]
	if y == z {
		// Degenerate path: t_x coincides with z.
		tx = t.newVertex(-1)
		t.connect(tx, zv, 0, int32(newHost))
		t.setAnchor(newHost, z, 0) // t_x coincides with z
		return tx, 0
	}
	path, weights := t.path(zv, t.leafVert[y], sc)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if g < 0 {
		g = 0
	}
	if g > total {
		g = total
	}
	// Find the first edge whose far end reaches cumulative >= g.
	cum := 0.0
	for i := 0; i < len(weights); i++ {
		if cum+weights[i] >= g || i == len(weights)-1 {
			u, v := path[i], path[i+1]
			offsetOnEdge := g - cum
			if offsetOnEdge < 0 {
				offsetOnEdge = 0
			}
			if offsetOnEdge > weights[i] {
				offsetOnEdge = weights[i]
			}
			creator := t.edgeCreator(u, v)
			tx = t.subdivide(u, v, offsetOnEdge)
			t.setAnchor(newHost, int(creator), t.distToHost(tx, int(creator), sc))
			return tx, cum + offsetOnEdge
		}
		cum += weights[i]
	}
	// Unreachable: the loop always returns on the last edge.
	return nilIdx, 0
}

func (t *Tree) setAnchor(child, parent int, off float64) {
	t.anchorParent[child] = int32(parent)
	if t.firstChild[parent] < 0 {
		t.firstChild[parent] = int32(child)
	} else {
		t.nextSibling[t.lastChild[parent]] = int32(child)
	}
	t.lastChild[parent] = int32(child)
	t.offset[child] = off
}

// subdivide splits edge (u,v) at distance off from u with a fresh inner
// vertex and returns its index. Both halves keep the original creator.
func (t *Tree) subdivide(u, v int32, off float64) int32 {
	w, creator, ok := t.removeEdge(u, v)
	if !ok {
		return nilIdx
	}
	tx := t.newVertex(-1)
	t.connect(u, tx, off, creator)
	t.connect(tx, v, w-off, creator)
	return tx
}

// addHalfEdge appends a half-edge from a to b at the tail of a's
// adjacency list, preserving insertion order (the order the wire format
// serializes). The slot comes off the free-list (LIFO) when one is
// available, else the arena grows.
func (t *Tree) addHalfEdge(a, b int32, w float64, creator int32) {
	var idx int32
	if n := len(t.freeEdges); n > 0 {
		idx = t.freeEdges[n-1]
		t.freeEdges = t.freeEdges[:n-1]
		t.edges[idx] = halfEdge{to: b, next: nilIdx, creator: creator, w: w}
	} else {
		idx = int32(len(t.edges))
		t.edges = append(t.edges, halfEdge{to: b, next: nilIdx, creator: creator, w: w})
	}
	if t.verts[a].firstEdge < 0 {
		t.verts[a].firstEdge = idx
		return
	}
	e := t.verts[a].firstEdge
	for t.edges[e].next >= 0 {
		e = t.edges[e].next
	}
	t.edges[e].next = idx
}

func (t *Tree) connect(a, b int32, w float64, creator int32) {
	t.addHalfEdge(a, b, w, creator)
	t.addHalfEdge(b, a, w, creator)
}

// dropHalfEdge unlinks the half-edge a->b and releases its arena slot
// onto the free-list for the next addHalfEdge to reuse.
func (t *Tree) dropHalfEdge(a, b int32) (w float64, creator int32, ok bool) {
	prev := nilIdx
	for e := t.verts[a].firstEdge; e >= 0; e = t.edges[e].next {
		if t.edges[e].to == b {
			if prev < 0 {
				t.verts[a].firstEdge = t.edges[e].next
			} else {
				t.edges[prev].next = t.edges[e].next
			}
			w, creator = t.edges[e].w, t.edges[e].creator
			t.edges[e] = halfEdge{to: nilIdx, next: nilIdx, creator: nilIdx}
			t.freeEdges = append(t.freeEdges, e)
			return w, creator, true
		}
		prev = e
	}
	return 0, 0, false
}

func (t *Tree) removeEdge(u, v int32) (w float64, creator int32, ok bool) {
	w, creator, ok = t.dropHalfEdge(u, v)
	if !ok {
		return 0, 0, false
	}
	t.dropHalfEdge(v, u)
	return w, creator, true
}

func (t *Tree) edgeCreator(u, v int32) int32 {
	for e := t.verts[u].firstEdge; e >= 0; e = t.edges[e].next {
		if t.edges[e].to == v {
			return t.edges[e].creator
		}
	}
	return nilIdx
}

// path fills sc.pathVerts/sc.pathWeights with the vertex sequence and
// per-edge weights from vertex a to vertex b via breadth-first search and
// returns them. The slices belong to the scratch arena and are valid
// until its next path call.
func (t *Tree) path(a, b int32, sc *scratch) (verts []int32, weights []float64) {
	sc.pathVerts = sc.pathVerts[:0]
	sc.pathWeights = sc.pathWeights[:0]
	if a == b {
		sc.pathVerts = append(sc.pathVerts, a)
		return sc.pathVerts, nil
	}
	epoch := sc.nextEpoch()
	sc.mark[a] = epoch
	sc.prevVert[a] = nilIdx
	queue := sc.queue[:0]
	queue = append(queue, a)
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		cur := queue[head]
		for e := t.verts[cur].firstEdge; e >= 0; e = t.edges[e].next {
			to := t.edges[e].to
			if sc.mark[to] == epoch {
				continue
			}
			sc.mark[to] = epoch
			sc.prevVert[to] = cur
			sc.prevEdge[to] = e
			if to == b {
				found = true
				break
			}
			queue = append(queue, to)
		}
	}
	sc.queue = queue[:0]
	if !found {
		return nil, nil
	}
	for v := b; v != nilIdx; v = sc.prevVert[v] {
		sc.pathVerts = append(sc.pathVerts, v)
	}
	// Reverse into a->b order.
	pv := sc.pathVerts
	for i, j := 0, len(pv)-1; i < j; i, j = i+1, j-1 {
		pv[i], pv[j] = pv[j], pv[i]
	}
	for i := 1; i < len(pv); i++ {
		sc.pathWeights = append(sc.pathWeights, t.edges[sc.prevEdge[pv[i]]].w)
	}
	return pv, sc.pathWeights
}

// vertDist returns the tree distance between two vertex indices,
// accumulating edge weights in path order from a (the same float
// association the explicit path walk used).
func (t *Tree) vertDist(a, b int32, sc *scratch) float64 {
	if a == b {
		return 0
	}
	epoch := sc.nextEpoch()
	sc.mark[a] = epoch
	sc.dist[a] = 0
	queue := sc.queue[:0]
	queue = append(queue, a)
	defer func() { sc.queue = queue[:0] }()
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for e := t.verts[cur].firstEdge; e >= 0; e = t.edges[e].next {
			to := t.edges[e].to
			if sc.mark[to] == epoch {
				continue
			}
			sc.mark[to] = epoch
			sc.dist[to] = sc.dist[cur] + t.edges[e].w
			if to == b {
				return sc.dist[to]
			}
			queue = append(queue, to)
		}
	}
	return math.Inf(1)
}

// distToHost returns the tree distance from vertex v to host h's leaf.
func (t *Tree) distToHost(v int32, h int, sc *scratch) float64 {
	return t.vertDist(v, t.leafVert[h], sc)
}

// Dist returns the predicted (embedded) distance d_T between hosts u and v.
// Unknown hosts yield +Inf.
func (t *Tree) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	if u > v {
		// Canonical order keeps float summation order fixed, making the
		// function exactly symmetric.
		u, v = v, u
	}
	if !t.Contains(u) || !t.Contains(v) {
		return math.Inf(1)
	}
	sc := getScratch(len(t.verts))
	defer putScratch(sc)
	return t.vertDist(t.leafVert[u], t.leafVert[v], sc)
}

// PredictBandwidth returns the predicted bandwidth BW_T(u,v) = C / d_T(u,v).
// Coincident embeddings (d_T == 0) predict +Inf.
func (t *Tree) PredictBandwidth(u, v int) float64 {
	d := t.Dist(u, v)
	if d == 0 {
		return math.Inf(1)
	}
	return t.c / d
}

// DistMatrix materializes all pairwise predicted distances for the hosts
// currently in the tree, indexed by position in Hosts(). The second return
// value maps matrix index to host id.
func (t *Tree) DistMatrix() (*metric.Matrix, []int) {
	hosts := t.Hosts()
	m := metric.NewMatrix(len(hosts))
	sc := getScratch(len(t.verts))
	defer putScratch(sc)
	for i := range hosts {
		t.distancesFrom(t.leafVert[hosts[i]], sc)
		for j := i + 1; j < len(hosts); j++ {
			m.Set(i, j, sc.dist[t.leafVert[hosts[j]]])
		}
	}
	return m, hosts
}

// distancesFrom runs a single-source weighted BFS (the graph is a tree)
// filling sc.dist for every vertex reachable from src; sc.mark/sc.epoch
// identify which entries are valid.
func (t *Tree) distancesFrom(src int32, sc *scratch) {
	epoch := sc.nextEpoch()
	sc.mark[src] = epoch
	sc.dist[src] = 0
	queue := sc.queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for e := t.verts[cur].firstEdge; e >= 0; e = t.edges[e].next {
			to := t.edges[e].to
			if sc.mark[to] == epoch {
				continue
			}
			sc.mark[to] = epoch
			sc.dist[to] = sc.dist[cur] + t.edges[e].w
			queue = append(queue, to)
		}
	}
	sc.queue = queue[:0]
}

// AnchorParent returns host h's anchor (its parent in the anchor tree), or
// -1 for the root or an unknown host.
func (t *Tree) AnchorParent(h int) int {
	if h < 0 || h >= t.hostCap() {
		return -1
	}
	return int(t.anchorParent[h])
}

// AnchorChildren returns the hosts anchored at h, in join order.
func (t *Tree) AnchorChildren(h int) []int {
	var out []int
	if h < 0 || h >= t.hostCap() {
		return out
	}
	for c := t.firstChild[h]; c >= 0; c = t.nextSibling[c] {
		out = append(out, int(c))
	}
	return out
}

// AnchorNeighbors returns h's neighbors on the anchor tree (parent first,
// if any, then children). This adjacency is the overlay used by the
// clustering protocol.
func (t *Tree) AnchorNeighbors(h int) []int {
	var out []int
	if p := t.AnchorParent(h); p >= 0 {
		out = append(out, p)
	}
	if h < 0 || h >= t.hostCap() {
		return out
	}
	for c := t.firstChild[h]; c >= 0; c = t.nextSibling[c] {
		out = append(out, int(c))
	}
	return out
}

// AnchorDepth returns the number of anchor-tree hops from the root to h.
func (t *Tree) AnchorDepth(h int) int {
	depth := 0
	for p := t.AnchorParent(h); p >= 0; p = t.AnchorParent(p) {
		depth++
	}
	return depth
}

// AnchorStats summarizes the anchor tree's shape, the determinant of
// query routing length (Fig. 6) and per-peer gossip cost.
type AnchorStats struct {
	Hosts     int
	MaxDepth  int
	AvgDepth  float64
	MaxDegree int
	AvgDegree float64
}

// AnchorStats computes the overlay shape summary.
func (t *Tree) AnchorStats() AnchorStats {
	s := AnchorStats{Hosts: t.Len()}
	if s.Hosts == 0 {
		return s
	}
	depthSum, degreeSum := 0, 0
	for _, h := range t.order {
		d := t.AnchorDepth(h)
		depthSum += d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
		deg := 0
		for c := t.firstChild[h]; c >= 0; c = t.nextSibling[c] {
			deg++
		}
		if t.anchorParent[h] >= 0 {
			deg++
		}
		degreeSum += deg
		if deg > s.MaxDegree {
			s.MaxDegree = deg
		}
	}
	s.AvgDepth = float64(depthSum) / float64(s.Hosts)
	s.AvgDegree = float64(degreeSum) / float64(s.Hosts)
	return s
}
