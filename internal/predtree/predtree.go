// Package predtree implements the decentralized bandwidth-prediction
// substrate from Song, Keleher, Bhattacharjee and Sussman (DISC'10 brief /
// INFOCOM'11), which the clustering paper builds on: an edge-weighted
// *prediction tree* embedding pairwise bandwidth (via the rational
// transform), the rooted *anchor tree* overlay, and per-host *distance
// labels* that let any two hosts estimate their distance from purely local
// state.
//
// Hosts are identified by small integers (the indices of the measurement
// oracle). A new host x is attached by choosing a base leaf z, selecting
// the end node y that maximizes the Gromov product
//
//	(x|y)_z = 1/2 (d(z,x) + d(z,y) - d(x,y)),
//
// creating x's inner node t_x on the tree path z~y at distance (x|y)_z
// from z, and hanging x off t_x with edge weight (y|z)_x. The host whose
// insertion created the edge t_x lands on becomes x's *anchor*.
package predtree

import (
	"fmt"
	"math"
	"time"

	"bwcluster/internal/metric"
)

// SearchMode selects how the end node y is found during insertion.
type SearchMode int

const (
	// SearchFull scans every existing leaf for the global maximizer of the
	// Gromov product. It needs one measurement per existing host and
	// corresponds to the centralized construction.
	SearchFull SearchMode = iota + 1
	// SearchAnchor walks the anchor tree greedily from the root, at each
	// step measuring only the current host and its anchor children and
	// descending while the Gromov product improves. This is the
	// decentralized construction: O(depth x fanout) measurements. On exact
	// tree metrics the greedy walk finds a global maximizer; on noisy data
	// it is a heuristic (the tradeoff the prior work accepts).
	SearchAnchor
)

// Oracle supplies measured distances between hosts. metric.Matrix
// satisfies it.
type Oracle interface {
	N() int
	Dist(i, j int) float64
}

type edge struct {
	to      int
	w       float64
	creator int // host whose insertion created this edge
}

type vertex struct {
	host int // >= 0 for a leaf vertex, -1 for an inner node
	adj  []edge
}

// Tree is a prediction tree plus its anchor tree. The zero value is not
// usable; construct with New.
type Tree struct {
	c        float64 // rational-transform constant
	mode     SearchMode
	verts    []vertex
	leafVert map[int]int // host -> vertex index
	tVert    map[int]int // host -> vertex index of its inner node t_host

	anchorParent   map[int]int   // host -> anchor host (root maps to -1)
	anchorChildren map[int][]int // host -> anchored children, in join order
	offset         map[int]float64
	pendant        map[int]float64
	root           int // first host, -1 while empty

	order        []int              // hosts in insertion order
	measurements int                // oracle lookups performed during construction
	measured     map[int64]struct{} // distinct host pairs measured
}

// New returns an empty prediction tree using rational-transform constant c
// and the given end-node search mode.
func New(c float64, mode SearchMode) (*Tree, error) {
	if c <= 0 {
		return nil, fmt.Errorf("predtree: constant must be positive, got %v", c)
	}
	if mode != SearchFull && mode != SearchAnchor {
		return nil, fmt.Errorf("predtree: unknown search mode %d", mode)
	}
	return &Tree{
		c:              c,
		mode:           mode,
		leafVert:       make(map[int]int),
		tVert:          make(map[int]int),
		anchorParent:   make(map[int]int),
		anchorChildren: make(map[int][]int),
		offset:         make(map[int]float64),
		pendant:        make(map[int]float64),
		root:           -1,
		measured:       make(map[int64]struct{}),
	}, nil
}

// Build constructs a tree from the oracle by inserting hosts in the given
// order. Passing a nil order inserts 0..o.N()-1.
func Build(o Oracle, c float64, mode SearchMode, order []int) (*Tree, error) {
	t, err := New(c, mode)
	if err != nil {
		return nil, err
	}
	if order == nil {
		order = make([]int, o.N())
		for i := range order {
			order[i] = i
		}
	}
	start := time.Now()
	for _, h := range order {
		if err := t.Add(h, o); err != nil {
			return nil, fmt.Errorf("predtree: add host %d: %w", h, err)
		}
	}
	mBuildSeconds.Observe(time.Since(start).Seconds())
	mTreesBuilt.Inc()
	mMeasurements.Add(t.measurements)
	return t, nil
}

// C returns the rational-transform constant.
func (t *Tree) C() float64 { return t.c }

// Root returns the first host added, or -1 for an empty tree.
func (t *Tree) Root() int { return t.root }

// Len reports the number of hosts in the tree.
func (t *Tree) Len() int { return len(t.leafVert) }

// Hosts returns the hosts in insertion order.
func (t *Tree) Hosts() []int {
	out := make([]int, len(t.order))
	copy(out, t.order)
	return out
}

// Contains reports whether host h has been added.
func (t *Tree) Contains(h int) bool {
	_, ok := t.leafVert[h]
	return ok
}

// Measurements reports how many oracle distance lookups construction has
// performed so far. It is the cost metric distinguishing the centralized
// and decentralized construction modes.
func (t *Tree) Measurements() int { return t.measurements }

// DistinctMeasurements reports how many distinct host pairs construction
// measured — the real network cost when hosts cache measurement results
// (out of n(n-1)/2 possible pairs).
func (t *Tree) DistinctMeasurements() int { return len(t.measured) }

func (t *Tree) measure(o Oracle, a, b int) float64 {
	t.measurements++
	lo, hi := int64(a), int64(b)
	if lo > hi {
		lo, hi = hi, lo
	}
	t.measured[lo<<32|hi] = struct{}{}
	return o.Dist(a, b)
}

// Add inserts host h using measured distances from o.
func (t *Tree) Add(h int, o Oracle) error {
	if h < 0 || h >= o.N() {
		return fmt.Errorf("predtree: host %d out of oracle range [0,%d)", h, o.N())
	}
	if t.Contains(h) {
		return fmt.Errorf("predtree: host %d already present", h)
	}
	if t.root == -1 {
		t.verts = append(t.verts, vertex{host: h})
		t.leafVert[h] = 0
		t.root = h
		t.anchorParent[h] = -1
		t.offset[h] = 0
		t.pendant[h] = 0
		t.order = append(t.order, h)
		return nil
	}

	z, dzx := t.findBase(h, o)
	y, gp := t.findEndNode(h, z, dzx, o)

	// The inner node t_x lies on the geodesic from z to x, so geometry
	// bounds the Gromov product by d(z,x) and fixes the pendant to
	// d(z,x) - d(z,t_x). On exact tree metrics these equal the raw
	// formulas ((x|y)_z and (y|z)_x); on noisy inputs the clamps stop
	// measurement noise on large distances from corrupting the placement
	// and keep the measured base distance exactly embedded.
	if gp > dzx {
		gp = dzx
	}
	tx, gActual := t.splitAt(z, y, gp, h)
	pend := dzx - gActual
	if pend < 0 {
		pend = 0
	}
	lx := len(t.verts)
	t.verts = append(t.verts, vertex{host: h})
	t.connect(lx, tx, pend, h)
	t.leafVert[h] = lx
	t.tVert[h] = tx
	t.pendant[h] = pend
	t.order = append(t.order, h)
	return nil
}

// findBase picks the base leaf z for inserting x. The paper allows any
// leaf; choosing one close to x keeps the Gromov products small in
// magnitude, which matters on noisy (non-tree) inputs where subtracting
// two large near-equal distances would turn small relative measurement
// noise into large absolute placement error (the accuracy heuristic the
// prior embedding work alludes to). SearchFull scans every host;
// SearchAnchor descends the anchor tree greedily toward smaller measured
// distance.
func (t *Tree) findBase(x int, o Oracle) (z int, dzx float64) {
	switch t.mode {
	case SearchFull:
		best, bestD := t.root, t.measure(o, t.root, x)
		for _, cand := range t.order {
			if cand == t.root {
				continue
			}
			if d := t.measure(o, cand, x); d < bestD {
				best, bestD = cand, d
			}
		}
		return best, bestD
	default: // SearchAnchor
		cur, curD := t.root, t.measure(o, t.root, x)
		for {
			next, nextD := cur, curD
			for _, child := range t.anchorChildren[cur] {
				if d := t.measure(o, child, x); d < nextD {
					next, nextD = child, d
				}
			}
			if next == cur {
				return cur, curD
			}
			cur, curD = next, nextD
		}
	}
}

// findEndNode picks the end node y maximizing (x|y)_z and returns it along
// with the maximal Gromov product. dzx is the pre-measured d(z,x).
func (t *Tree) findEndNode(x, z int, dzx float64, o Oracle) (y int, gp float64) {
	grom := func(cand int) float64 {
		if cand == z {
			return 0
		}
		return 0.5 * (dzx + t.measure(o, z, cand) - t.measure(o, x, cand))
	}
	switch t.mode {
	case SearchFull:
		best, bestG := z, 0.0
		for _, cand := range t.order {
			if g := grom(cand); g > bestG {
				best, bestG = cand, g
			}
		}
		return best, bestG
	default: // SearchAnchor
		// Pruned depth-first search over the (undirected) anchor tree,
		// starting at the base leaf z. The Gromov product g(y) = (x|y)_z
		// equals the distance from z to the point where the path z~y
		// diverges from the path z~x. Crossing an anchor edge away from z
		// enters a region of the prediction tree that hangs off a single
		// point (the inner node t_c when descending to child c; the
		// current host's own inner node t_u when climbing to its parent):
		// the region can only contain a better end node if the divergence
		// reaches that hang point, i.e. g(neighbor) >= d_T(z, hang).
		// Regions whose entry fails the bound diverge earlier and are
		// entire plateaus — pruned after a single measurement. The bound
		// holds with equality at branch points (several inner nodes
		// coincide), hence the tolerance and the exploration of all
		// neighbors that meet it. Exact on tree metrics; a heuristic
		// (like the prior work's) on noisy data.
		const relTol = 1e-7
		best, bestG := z, 0.0
		type frame struct {
			host, from int
		}
		stack := []frame{{host: z, from: -1}}
		zv := t.leafVert[z]
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range t.anchorNeighborsAll(cur.host) {
				if nb == cur.from {
					continue
				}
				g := grom(nb)
				if g > bestG {
					best, bestG = nb, g
				}
				hangHost := nb // descending: region hangs at t_nb
				if nb == t.anchorParent[cur.host] {
					hangHost = cur.host // climbing: region hangs at t_cur
				}
				hv, ok := t.tVert[hangHost]
				if !ok {
					// hangHost is the tree root (no inner node): its
					// "pendant" is the root point itself.
					hv = t.leafVert[hangHost]
				}
				reach := t.vertDist(zv, hv)
				if g >= reach-relTol*(1+math.Abs(reach)) {
					stack = append(stack, frame{host: nb, from: cur.host})
				}
			}
		}
		if bestG <= 0 {
			return z, 0
		}
		return best, bestG
	}
}

// splitAt creates the inner vertex t_x located on the tree path from leaf
// z to leaf y at distance g from z (clamped to the path), records
// newHost's anchor, and returns the vertex index of t_x together with the
// actual placement distance from z after clamping.
func (t *Tree) splitAt(z, y int, g float64, newHost int) (tx int, gActual float64) {
	zv := t.leafVert[z]
	if y == z {
		// Degenerate path: t_x coincides with z.
		tx = len(t.verts)
		t.verts = append(t.verts, vertex{host: -1})
		t.connect(tx, zv, 0, newHost)
		t.setAnchor(newHost, z, 0) // t_x coincides with z
		return tx, 0
	}
	path, weights := t.path(zv, t.leafVert[y])
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if g < 0 {
		g = 0
	}
	if g > total {
		g = total
	}
	// Find the first edge whose far end reaches cumulative >= g.
	cum := 0.0
	for i := 0; i < len(weights); i++ {
		if cum+weights[i] >= g || i == len(weights)-1 {
			u, v := path[i], path[i+1]
			offsetOnEdge := g - cum
			if offsetOnEdge < 0 {
				offsetOnEdge = 0
			}
			if offsetOnEdge > weights[i] {
				offsetOnEdge = weights[i]
			}
			creator := t.edgeCreator(u, v)
			tx = t.subdivide(u, v, offsetOnEdge)
			t.setAnchor(newHost, creator, t.distToHost(tx, creator))
			return tx, cum + offsetOnEdge
		}
		cum += weights[i]
	}
	// Unreachable: the loop always returns on the last edge.
	return -1, 0
}

func (t *Tree) setAnchor(child, parent int, off float64) {
	t.anchorParent[child] = parent
	t.anchorChildren[parent] = append(t.anchorChildren[parent], child)
	t.offset[child] = off
}

// subdivide splits edge (u,v) at distance off from u with a fresh inner
// vertex and returns its index. Both halves keep the original creator.
func (t *Tree) subdivide(u, v int, off float64) int {
	w, creator, ok := t.removeEdge(u, v)
	if !ok {
		return -1
	}
	tx := len(t.verts)
	t.verts = append(t.verts, vertex{host: -1})
	t.connect(u, tx, off, creator)
	t.connect(tx, v, w-off, creator)
	return tx
}

func (t *Tree) connect(a, b int, w float64, creator int) {
	t.verts[a].adj = append(t.verts[a].adj, edge{to: b, w: w, creator: creator})
	t.verts[b].adj = append(t.verts[b].adj, edge{to: a, w: w, creator: creator})
}

func (t *Tree) removeEdge(u, v int) (w float64, creator int, ok bool) {
	drop := func(a, b int) (float64, int, bool) {
		adj := t.verts[a].adj
		for i, e := range adj {
			if e.to == b {
				t.verts[a].adj = append(adj[:i], adj[i+1:]...)
				return e.w, e.creator, true
			}
		}
		return 0, 0, false
	}
	w, creator, ok = drop(u, v)
	if !ok {
		return 0, 0, false
	}
	drop(v, u)
	return w, creator, true
}

func (t *Tree) edgeCreator(u, v int) int {
	for _, e := range t.verts[u].adj {
		if e.to == v {
			return e.creator
		}
	}
	return -1
}

// path returns the vertex sequence and per-edge weights from vertex a to
// vertex b via breadth-first search.
func (t *Tree) path(a, b int) (verts []int, weights []float64) {
	if a == b {
		return []int{a}, nil
	}
	prev := make([]int, len(t.verts))
	for i := range prev {
		prev[i] = -2
	}
	prev[a] = -1
	queue := []int{a}
	for len(queue) > 0 && prev[b] == -2 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range t.verts[cur].adj {
			if prev[e.to] == -2 {
				prev[e.to] = cur
				queue = append(queue, e.to)
			}
		}
	}
	if prev[b] == -2 {
		return nil, nil
	}
	for v := b; v != -1; v = prev[v] {
		verts = append(verts, v)
	}
	// Reverse into a->b order.
	for i, j := 0, len(verts)-1; i < j; i, j = i+1, j-1 {
		verts[i], verts[j] = verts[j], verts[i]
	}
	weights = make([]float64, len(verts)-1)
	for i := 0; i+1 < len(verts); i++ {
		for _, e := range t.verts[verts[i]].adj {
			if e.to == verts[i+1] {
				weights[i] = e.w
				break
			}
		}
	}
	return verts, weights
}

// vertDist returns the tree distance between two vertex indices.
func (t *Tree) vertDist(a, b int) float64 {
	_, weights := t.path(a, b)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	return sum
}

// distToHost returns the tree distance from vertex v to host h's leaf.
func (t *Tree) distToHost(v, h int) float64 {
	return t.vertDist(v, t.leafVert[h])
}

// Dist returns the predicted (embedded) distance d_T between hosts u and v.
// Unknown hosts yield +Inf.
func (t *Tree) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	if u > v {
		// Canonical order keeps float summation order fixed, making the
		// function exactly symmetric.
		u, v = v, u
	}
	vu, ok1 := t.leafVert[u]
	vv, ok2 := t.leafVert[v]
	if !ok1 || !ok2 {
		return math.Inf(1)
	}
	return t.vertDist(vu, vv)
}

// PredictBandwidth returns the predicted bandwidth BW_T(u,v) = C / d_T(u,v).
// Coincident embeddings (d_T == 0) predict +Inf.
func (t *Tree) PredictBandwidth(u, v int) float64 {
	d := t.Dist(u, v)
	if d == 0 {
		return math.Inf(1)
	}
	return t.c / d
}

// DistMatrix materializes all pairwise predicted distances for the hosts
// currently in the tree, indexed by position in Hosts(). The second return
// value maps matrix index to host id.
func (t *Tree) DistMatrix() (*metric.Matrix, []int) {
	hosts := t.Hosts()
	m := metric.NewMatrix(len(hosts))
	for i := range hosts {
		dists := t.distancesFromVert(t.leafVert[hosts[i]])
		for j := i + 1; j < len(hosts); j++ {
			m.Set(i, j, dists[t.leafVert[hosts[j]]])
		}
	}
	return m, hosts
}

// distancesFromVert runs a single-source weighted BFS (the graph is a
// tree) and returns distances to every vertex.
func (t *Tree) distancesFromVert(src int) []float64 {
	dist := make([]float64, len(t.verts))
	seen := make([]bool, len(t.verts))
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range t.verts[cur].adj {
			if !seen[e.to] {
				seen[e.to] = true
				dist[e.to] = dist[cur] + e.w
				queue = append(queue, e.to)
			}
		}
	}
	return dist
}

// AnchorParent returns host h's anchor (its parent in the anchor tree), or
// -1 for the root or an unknown host.
func (t *Tree) AnchorParent(h int) int {
	p, ok := t.anchorParent[h]
	if !ok {
		return -1
	}
	return p
}

// AnchorChildren returns the hosts anchored at h, in join order.
func (t *Tree) AnchorChildren(h int) []int {
	kids := t.anchorChildren[h]
	out := make([]int, len(kids))
	copy(out, kids)
	return out
}

// AnchorNeighbors returns h's neighbors on the anchor tree (parent first,
// if any, then children). This adjacency is the overlay used by the
// clustering protocol.
func (t *Tree) AnchorNeighbors(h int) []int {
	var out []int
	if p := t.AnchorParent(h); p >= 0 {
		out = append(out, p)
	}
	return append(out, t.AnchorChildren(h)...)
}

// anchorNeighborsAll is the allocation-light internal variant of
// AnchorNeighbors used by the insertion search.
func (t *Tree) anchorNeighborsAll(h int) []int {
	kids := t.anchorChildren[h]
	out := make([]int, 0, len(kids)+1)
	if p, ok := t.anchorParent[h]; ok && p >= 0 {
		out = append(out, p)
	}
	return append(out, kids...)
}

// AnchorDepth returns the number of anchor-tree hops from the root to h.
func (t *Tree) AnchorDepth(h int) int {
	depth := 0
	for p := t.AnchorParent(h); p >= 0; p = t.AnchorParent(p) {
		depth++
	}
	return depth
}

// AnchorStats summarizes the anchor tree's shape, the determinant of
// query routing length (Fig. 6) and per-peer gossip cost.
type AnchorStats struct {
	Hosts     int
	MaxDepth  int
	AvgDepth  float64
	MaxDegree int
	AvgDegree float64
}

// AnchorStats computes the overlay shape summary.
func (t *Tree) AnchorStats() AnchorStats {
	s := AnchorStats{Hosts: t.Len()}
	if s.Hosts == 0 {
		return s
	}
	depthSum, degreeSum := 0, 0
	for _, h := range t.order {
		d := t.AnchorDepth(h)
		depthSum += d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
		deg := len(t.anchorChildren[h])
		if t.anchorParent[h] >= 0 {
			deg++
		}
		degreeSum += deg
		if deg > s.MaxDegree {
			s.MaxDegree = deg
		}
	}
	s.AvgDepth = float64(depthSum) / float64(s.Hosts)
	s.AvgDegree = float64(degreeSum) / float64(s.Hosts)
	return s
}
