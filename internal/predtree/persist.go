package predtree

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire formats. Everything needed to reconstruct a Tree is flattened into
// exported fields; the in-memory structure is rebuilt on decode.
//
// Per-host state is persisted as key-sorted entry slices, never as raw Go
// maps: gob writes maps in iteration order, which Go randomizes, and the
// repo's determinism invariant (DESIGN.md §8d) requires that identical
// trees always serialize to identical bytes — snapshots are diffed and
// content-addressed by the figure pipeline. The flat arena representation
// (DESIGN.md §8g) emits the same entry slices the earlier map-backed
// representation did — an entry per present host, keys ascending — so
// snapshots are byte-stable across the refactor (pinned by the golden
// tests).
type (
	edgeWire struct {
		To      int
		W       float64
		Creator int
	}
	vertexWire struct {
		Host int
		Adj  []edgeWire
	}
	intEntryWire struct {
		K, V int
	}
	floatEntryWire struct {
		K int
		V float64
	}
	intsEntryWire struct {
		K int
		V []int
	}
	treeWire struct {
		C              float64
		Mode           int
		Verts          []vertexWire
		LeafVert       []intEntryWire
		TVert          []intEntryWire
		AnchorParent   []intEntryWire
		AnchorChildren []intsEntryWire
		Offset         []floatEntryWire
		Pendant        []floatEntryWire
		Root           int
		Order          []int
		Measurements   int
		Measured       []int64
	}
	forestWire struct {
		Trees []*Tree
	}
)

// GobEncode implements gob.GobEncoder, making prediction trees
// persistable (e.g. to avoid re-measuring on restart). Identical trees
// encode to identical bytes; see the wire-format comment above.
//
// Arena slots freed by Remove are compacted away: live vertices are
// renumbered in arena order and every vertex reference (adjacency, leaf
// and inner-node registers) is remapped, so a post-churn snapshot is
// indistinguishable on the wire from a tree that never held the departed
// hosts' vertices. On a hole-free tree the remap is the identity, which
// keeps pre-churn snapshots byte-identical (pinned by the golden tests),
// and a decoded tree is always hole-free, so encode∘decode is stable.
func (t *Tree) GobEncode() ([]byte, error) {
	remap := make([]int32, len(t.verts))
	live := int32(0)
	for i, v := range t.verts {
		if v.host < 0 && v.firstEdge < 0 {
			// A freed slot: live inner vertices always carry at least one
			// edge, and an edgeless leaf (a single-host tree) is live.
			remap[i] = nilIdx
			continue
		}
		remap[i] = live
		live++
	}
	w := treeWire{
		C:            t.c,
		Mode:         int(t.mode),
		Verts:        make([]vertexWire, 0, live),
		Root:         t.root,
		Order:        t.order,
		Measurements: t.measurements,
		Measured:     make([]int64, 0, t.measuredCount),
	}
	for i, v := range t.verts {
		if remap[i] < 0 {
			continue
		}
		var adj []edgeWire
		for e := v.firstEdge; e >= 0; e = t.edges[e].next {
			adj = append(adj, edgeWire{
				To:      int(remap[t.edges[e].to]),
				W:       t.edges[e].w,
				Creator: int(t.edges[e].creator),
			})
		}
		w.Verts = append(w.Verts, vertexWire{Host: int(v.host), Adj: adj})
	}
	// Host-indexed arrays emit one entry per present host, keys naturally
	// ascending (the order sorted map entries had). tVert is absent for
	// the root (its insertion creates no inner node); anchorChildren is
	// absent for childless hosts; anchorParent carries -1 for the root.
	for h := 0; h < t.hostCap(); h++ {
		if t.leafVert[h] < 0 {
			continue
		}
		w.LeafVert = append(w.LeafVert, intEntryWire{K: h, V: int(remap[t.leafVert[h]])})
		if t.tVert[h] >= 0 {
			w.TVert = append(w.TVert, intEntryWire{K: h, V: int(remap[t.tVert[h]])})
		}
		w.AnchorParent = append(w.AnchorParent, intEntryWire{K: h, V: int(t.anchorParent[h])})
		if t.firstChild[h] >= 0 {
			kids := make([]int, 0, 4)
			for c := t.firstChild[h]; c >= 0; c = t.nextSibling[c] {
				kids = append(kids, int(c))
			}
			w.AnchorChildren = append(w.AnchorChildren, intsEntryWire{K: h, V: kids})
		}
		w.Offset = append(w.Offset, floatEntryWire{K: h, V: t.offset[h]})
		w.Pendant = append(w.Pendant, floatEntryWire{K: h, V: t.pendant[h]})
	}
	// Bitset iteration yields pairs in ascending (lo, hi) order, which is
	// ascending lo<<32|hi order — the sorted-key order the wire requires.
	t.eachMeasuredPair(func(lo, hi int) {
		w.Measured = append(w.Measured, int64(lo)<<32|int64(hi))
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("predtree: encode tree: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(b []byte) error {
	var w treeWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("predtree: decode tree: %w", err)
	}
	if w.C <= 0 {
		return fmt.Errorf("predtree: decode tree: invalid constant %v", w.C)
	}
	mode := SearchMode(w.Mode)
	if mode != SearchFull && mode != SearchAnchor {
		return fmt.Errorf("predtree: decode tree: invalid search mode %d", w.Mode)
	}
	// Reset to an empty tree, then rebuild the arenas.
	*t = Tree{c: w.C, mode: mode, root: w.Root, order: w.Order, measurements: w.Measurements}
	t.verts = make([]vertex, len(w.Verts))
	for i, vw := range w.Verts {
		t.verts[i] = vertex{host: int32(vw.Host), firstEdge: nilIdx}
	}
	for i, vw := range w.Verts {
		for _, ew := range vw.Adj {
			if ew.To < 0 || ew.To >= len(w.Verts) {
				return fmt.Errorf("predtree: decode tree: edge to %d out of range", ew.To)
			}
			t.addHalfEdge(int32(i), int32(ew.To), ew.W, int32(ew.Creator))
		}
	}
	maxHost := -1
	for _, e := range w.LeafVert {
		if e.K > maxHost {
			maxHost = e.K
		}
	}
	for _, pair := range w.Measured {
		if hi := int(pair & 0xffffffff); hi > maxHost {
			maxHost = hi
		}
	}
	t.ensureHostCap(maxHost + 1)
	for _, e := range w.LeafVert {
		if e.K < 0 || e.V < 0 || e.V >= len(t.verts) {
			return fmt.Errorf("predtree: decode tree: leaf vertex entry (%d,%d) out of range", e.K, e.V)
		}
		t.leafVert[e.K] = int32(e.V)
	}
	for _, e := range w.TVert {
		t.tVert[e.K] = int32(e.V)
	}
	for _, e := range w.AnchorParent {
		t.anchorParent[e.K] = int32(e.V)
	}
	for _, e := range w.AnchorChildren {
		for _, c := range e.V {
			if t.firstChild[e.K] < 0 {
				t.firstChild[e.K] = int32(c)
			} else {
				t.nextSibling[t.lastChild[e.K]] = int32(c)
			}
			t.lastChild[e.K] = int32(c)
		}
	}
	for _, e := range w.Offset {
		t.offset[e.K] = e.V
	}
	for _, e := range w.Pendant {
		t.pendant[e.K] = e.V
	}
	for _, pair := range w.Measured {
		lo, hi := int(pair>>32), int(pair&0xffffffff)
		bit := lo*t.mstride + hi
		if t.measured[bit>>6]&(1<<(bit&63)) == 0 {
			t.measured[bit>>6] |= 1 << (bit & 63)
			t.measuredCount++
		}
	}
	return nil
}

// GobEncode implements gob.GobEncoder for forests.
func (f *Forest) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(forestWire{Trees: f.trees}); err != nil {
		return nil, fmt.Errorf("predtree: encode forest: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for forests.
func (f *Forest) GobDecode(b []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("predtree: decode forest: %w", err)
	}
	if len(w.Trees) == 0 {
		return fmt.Errorf("predtree: decode forest: no trees")
	}
	restored, err := NewForest(w.Trees...)
	if err != nil {
		return fmt.Errorf("predtree: decode forest: %w", err)
	}
	*f = *restored
	return nil
}
