package predtree

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire formats. Everything needed to reconstruct a Tree is flattened into
// exported fields; the in-memory structure is rebuilt on decode.
type (
	edgeWire struct {
		To      int
		W       float64
		Creator int
	}
	vertexWire struct {
		Host int
		Adj  []edgeWire
	}
	treeWire struct {
		C              float64
		Mode           int
		Verts          []vertexWire
		LeafVert       map[int]int
		TVert          map[int]int
		AnchorParent   map[int]int
		AnchorChildren map[int][]int
		Offset         map[int]float64
		Pendant        map[int]float64
		Root           int
		Order          []int
		Measurements   int
		Measured       []int64
	}
	forestWire struct {
		Trees []*Tree
	}
)

// GobEncode implements gob.GobEncoder, making prediction trees
// persistable (e.g. to avoid re-measuring on restart).
func (t *Tree) GobEncode() ([]byte, error) {
	w := treeWire{
		C:              t.c,
		Mode:           int(t.mode),
		Verts:          make([]vertexWire, len(t.verts)),
		LeafVert:       t.leafVert,
		TVert:          t.tVert,
		AnchorParent:   t.anchorParent,
		AnchorChildren: t.anchorChildren,
		Offset:         t.offset,
		Pendant:        t.pendant,
		Root:           t.root,
		Order:          t.order,
		Measurements:   t.measurements,
		Measured:       make([]int64, 0, len(t.measured)),
	}
	for pair := range t.measured {
		w.Measured = append(w.Measured, pair)
	}
	for i, v := range t.verts {
		adj := make([]edgeWire, len(v.adj))
		for j, e := range v.adj {
			adj[j] = edgeWire{To: e.to, W: e.w, Creator: e.creator}
		}
		w.Verts[i] = vertexWire{Host: v.host, Adj: adj}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("predtree: encode tree: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(b []byte) error {
	var w treeWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("predtree: decode tree: %w", err)
	}
	if w.C <= 0 {
		return fmt.Errorf("predtree: decode tree: invalid constant %v", w.C)
	}
	mode := SearchMode(w.Mode)
	if mode != SearchFull && mode != SearchAnchor {
		return fmt.Errorf("predtree: decode tree: invalid search mode %d", w.Mode)
	}
	verts := make([]vertex, len(w.Verts))
	for i, vw := range w.Verts {
		adj := make([]edge, len(vw.Adj))
		for j, ew := range vw.Adj {
			if ew.To < 0 || ew.To >= len(w.Verts) {
				return fmt.Errorf("predtree: decode tree: edge to %d out of range", ew.To)
			}
			adj[j] = edge{to: ew.To, w: ew.W, creator: ew.Creator}
		}
		verts[i] = vertex{host: vw.Host, adj: adj}
	}
	t.c = w.C
	t.mode = mode
	t.verts = verts
	t.leafVert = orEmptyIntMap(w.LeafVert)
	t.tVert = orEmptyIntMap(w.TVert)
	t.anchorParent = orEmptyIntMap(w.AnchorParent)
	t.anchorChildren = w.AnchorChildren
	if t.anchorChildren == nil {
		t.anchorChildren = make(map[int][]int)
	}
	t.offset = w.Offset
	if t.offset == nil {
		t.offset = make(map[int]float64)
	}
	t.pendant = w.Pendant
	if t.pendant == nil {
		t.pendant = make(map[int]float64)
	}
	t.root = w.Root
	t.order = w.Order
	t.measurements = w.Measurements
	t.measured = make(map[int64]struct{}, len(w.Measured))
	for _, pair := range w.Measured {
		t.measured[pair] = struct{}{}
	}
	return nil
}

func orEmptyIntMap(m map[int]int) map[int]int {
	if m == nil {
		return make(map[int]int)
	}
	return m
}

// GobEncode implements gob.GobEncoder for forests.
func (f *Forest) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(forestWire{Trees: f.trees}); err != nil {
		return nil, fmt.Errorf("predtree: encode forest: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for forests.
func (f *Forest) GobDecode(b []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("predtree: decode forest: %w", err)
	}
	if len(w.Trees) == 0 {
		return fmt.Errorf("predtree: decode forest: no trees")
	}
	restored, err := NewForest(w.Trees...)
	if err != nil {
		return fmt.Errorf("predtree: decode forest: %w", err)
	}
	*f = *restored
	return nil
}
