package predtree

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// Wire formats. Everything needed to reconstruct a Tree is flattened into
// exported fields; the in-memory structure is rebuilt on decode.
//
// Maps are persisted as key-sorted entry slices, never as raw Go maps:
// gob writes maps in iteration order, which Go randomizes, and the
// repo's determinism invariant (DESIGN.md §8d) requires that identical
// trees always serialize to identical bytes — snapshots are diffed and
// content-addressed by the figure pipeline.
type (
	edgeWire struct {
		To      int
		W       float64
		Creator int
	}
	vertexWire struct {
		Host int
		Adj  []edgeWire
	}
	intEntryWire struct {
		K, V int
	}
	floatEntryWire struct {
		K int
		V float64
	}
	intsEntryWire struct {
		K int
		V []int
	}
	treeWire struct {
		C              float64
		Mode           int
		Verts          []vertexWire
		LeafVert       []intEntryWire
		TVert          []intEntryWire
		AnchorParent   []intEntryWire
		AnchorChildren []intsEntryWire
		Offset         []floatEntryWire
		Pendant        []floatEntryWire
		Root           int
		Order          []int
		Measurements   int
		Measured       []int64
	}
	forestWire struct {
		Trees []*Tree
	}
)

func sortedIntEntries(m map[int]int) []intEntryWire {
	out := make([]intEntryWire, 0, len(m))
	for k, v := range m {
		out = append(out, intEntryWire{K: k, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

func sortedFloatEntries(m map[int]float64) []floatEntryWire {
	out := make([]floatEntryWire, 0, len(m))
	for k, v := range m {
		out = append(out, floatEntryWire{K: k, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

func sortedIntsEntries(m map[int][]int) []intsEntryWire {
	out := make([]intsEntryWire, 0, len(m))
	for k, v := range m {
		out = append(out, intsEntryWire{K: k, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

func intEntryMap(entries []intEntryWire) map[int]int {
	m := make(map[int]int, len(entries))
	for _, e := range entries {
		m[e.K] = e.V
	}
	return m
}

func floatEntryMap(entries []floatEntryWire) map[int]float64 {
	m := make(map[int]float64, len(entries))
	for _, e := range entries {
		m[e.K] = e.V
	}
	return m
}

func intsEntryMap(entries []intsEntryWire) map[int][]int {
	m := make(map[int][]int, len(entries))
	for _, e := range entries {
		m[e.K] = e.V
	}
	return m
}

// GobEncode implements gob.GobEncoder, making prediction trees
// persistable (e.g. to avoid re-measuring on restart). Identical trees
// encode to identical bytes; see the wire-format comment above.
func (t *Tree) GobEncode() ([]byte, error) {
	w := treeWire{
		C:              t.c,
		Mode:           int(t.mode),
		Verts:          make([]vertexWire, len(t.verts)),
		LeafVert:       sortedIntEntries(t.leafVert),
		TVert:          sortedIntEntries(t.tVert),
		AnchorParent:   sortedIntEntries(t.anchorParent),
		AnchorChildren: sortedIntsEntries(t.anchorChildren),
		Offset:         sortedFloatEntries(t.offset),
		Pendant:        sortedFloatEntries(t.pendant),
		Root:           t.root,
		Order:          t.order,
		Measurements:   t.measurements,
		Measured:       make([]int64, 0, len(t.measured)),
	}
	for pair := range t.measured {
		w.Measured = append(w.Measured, pair)
	}
	// Sort so identical trees gob-encode to identical bytes; without this
	// the map iteration order would make snapshots nondeterministic.
	sort.Slice(w.Measured, func(i, j int) bool { return w.Measured[i] < w.Measured[j] })
	for i, v := range t.verts {
		adj := make([]edgeWire, len(v.adj))
		for j, e := range v.adj {
			adj[j] = edgeWire{To: e.to, W: e.w, Creator: e.creator}
		}
		w.Verts[i] = vertexWire{Host: v.host, Adj: adj}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("predtree: encode tree: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(b []byte) error {
	var w treeWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("predtree: decode tree: %w", err)
	}
	if w.C <= 0 {
		return fmt.Errorf("predtree: decode tree: invalid constant %v", w.C)
	}
	mode := SearchMode(w.Mode)
	if mode != SearchFull && mode != SearchAnchor {
		return fmt.Errorf("predtree: decode tree: invalid search mode %d", w.Mode)
	}
	verts := make([]vertex, len(w.Verts))
	for i, vw := range w.Verts {
		adj := make([]edge, len(vw.Adj))
		for j, ew := range vw.Adj {
			if ew.To < 0 || ew.To >= len(w.Verts) {
				return fmt.Errorf("predtree: decode tree: edge to %d out of range", ew.To)
			}
			adj[j] = edge{to: ew.To, w: ew.W, creator: ew.Creator}
		}
		verts[i] = vertex{host: vw.Host, adj: adj}
	}
	t.c = w.C
	t.mode = mode
	t.verts = verts
	t.leafVert = intEntryMap(w.LeafVert)
	t.tVert = intEntryMap(w.TVert)
	t.anchorParent = intEntryMap(w.AnchorParent)
	t.anchorChildren = intsEntryMap(w.AnchorChildren)
	t.offset = floatEntryMap(w.Offset)
	t.pendant = floatEntryMap(w.Pendant)
	t.root = w.Root
	t.order = w.Order
	t.measurements = w.Measurements
	t.measured = make(map[int64]struct{}, len(w.Measured))
	for _, pair := range w.Measured {
		t.measured[pair] = struct{}{}
	}
	return nil
}

// GobEncode implements gob.GobEncoder for forests.
func (f *Forest) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(forestWire{Trees: f.trees}); err != nil {
		return nil, fmt.Errorf("predtree: encode forest: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for forests.
func (f *Forest) GobDecode(b []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("predtree: decode forest: %w", err)
	}
	if len(w.Trees) == 0 {
		return fmt.Errorf("predtree: decode forest: no trees")
	}
	restored, err := NewForest(w.Trees...)
	if err != nil {
		return fmt.Errorf("predtree: decode forest: %w", err)
	}
	*f = *restored
	return nil
}
