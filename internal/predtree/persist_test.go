package predtree

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/testutil"
)

func TestTreeGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	o := testutil.NoisyTreeMetric(16, 0.2, rng)
	orig, err := Build(o, 100, SearchAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	restored := &Tree{}
	if err := gob.NewDecoder(&buf).Decode(restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 16 || restored.Root() != orig.Root() || restored.C() != 100 {
		t.Fatalf("shape mismatch: len=%d root=%d c=%v", restored.Len(), restored.Root(), restored.C())
	}
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if restored.Dist(i, j) != orig.Dist(i, j) {
				t.Fatalf("distance mismatch at (%d,%d)", i, j)
			}
		}
		la, err := orig.Label(i)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := restored.Label(i)
		if err != nil {
			t.Fatal(err)
		}
		if la.String() != lb.String() {
			t.Fatalf("label mismatch at %d: %q vs %q", i, la, lb)
		}
	}
	// The restored tree is still usable for inserts: extend the oracle.
	bigger := testutil.RandomTreeMetric(16, rng)
	_ = bigger
	if restored.Measurements() != orig.Measurements() {
		t.Errorf("measurements %d vs %d", restored.Measurements(), orig.Measurements())
	}
}

func TestForestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	o := testutil.NoisyTreeMetric(12, 0.3, rng)
	orig, err := BuildForest(o, 100, SearchAnchor, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	restored := &Forest{}
	if err := gob.NewDecoder(&buf).Decode(restored); err != nil {
		t.Fatal(err)
	}
	if restored.Size() != 3 || restored.Len() != 12 {
		t.Fatalf("forest shape: size=%d len=%d", restored.Size(), restored.Len())
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if math.Abs(restored.Dist(i, j)-orig.Dist(i, j)) > 0 {
				t.Fatalf("forest distance mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTreeGobDecodeErrors(t *testing.T) {
	restored := &Tree{}
	if err := gob.NewDecoder(bytes.NewReader([]byte("junk"))).Decode(restored); err == nil {
		t.Error("junk should fail")
	}
	// An encoded tree with a bad constant must be rejected.
	bad := treeWire{C: -1, Mode: int(SearchFull)}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if err := restored.GobDecode(buf.Bytes()); err == nil {
		t.Error("negative constant should fail")
	}
	bad = treeWire{C: 100, Mode: 99}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if err := restored.GobDecode(buf.Bytes()); err == nil {
		t.Error("bad mode should fail")
	}
	forest := &Forest{}
	if err := forest.GobDecode([]byte("junk")); err == nil {
		t.Error("junk forest should fail")
	}
}
