package predtree

import (
	"math/rand"
	"reflect"
	"testing"

	"bwcluster/internal/testutil"
)

// treesEqual reports whether two trees are structurally identical:
// same insertion order, same anchor relationships, and the same
// embedded distance for every host pair.
func treesEqual(a, b *Tree) bool {
	ha, hb := a.Hosts(), b.Hosts()
	if !reflect.DeepEqual(ha, hb) {
		return false
	}
	for _, h := range ha {
		if a.AnchorParent(h) != b.AnchorParent(h) {
			return false
		}
		if !reflect.DeepEqual(a.AnchorChildren(h), b.AnchorChildren(h)) {
			return false
		}
	}
	for i, u := range ha {
		for _, v := range ha[i+1:] {
			if a.Dist(u, v) != b.Dist(u, v) {
				return false
			}
		}
	}
	return a.Measurements() == b.Measurements()
}

// TestBuildForestParallelSeedDeterminism is the seed-determinism
// regression test: with the same seed, the sequential and parallel forest
// builds must produce identical trees (bit-identical distances, same
// anchor structure, same measurement cost) for every worker count, and
// must leave the shared rng in the same state.
func TestBuildForestParallelSeedDeterminism(t *testing.T) {
	const n, count = 40, 5
	o := testutil.NoisyTreeMetric(n, 0.1, rand.New(rand.NewSource(7)))
	for _, mode := range []SearchMode{SearchFull, SearchAnchor} {
		for _, seed := range []int64{1, 42, 9999} {
			seqRng := rand.New(rand.NewSource(seed))
			seq, err := BuildForest(o, 100, mode, count, seqRng)
			if err != nil {
				t.Fatal(err)
			}
			// Where the sequential build leaves the random stream.
			wantNext := seqRng.Int63()
			for _, workers := range []int{2, 3, count, count + 10, 0} {
				parRng := rand.New(rand.NewSource(seed))
				par, err := BuildForestParallel(o, 100, mode, count, parRng, workers)
				if err != nil {
					t.Fatal(err)
				}
				if par.Size() != seq.Size() {
					t.Fatalf("mode=%v seed=%d workers=%d: size %d, want %d",
						mode, seed, workers, par.Size(), seq.Size())
				}
				for i := range seq.trees {
					if !treesEqual(seq.trees[i], par.trees[i]) {
						t.Fatalf("mode=%v seed=%d workers=%d: tree %d differs from sequential build",
							mode, seed, workers, i)
					}
				}
				// The split of the random stream must consume it exactly
				// as the sequential build does.
				if parNext := parRng.Int63(); parNext != wantNext {
					t.Fatalf("mode=%v seed=%d workers=%d: rng stream diverged (%d vs %d)",
						mode, seed, workers, parNext, wantNext)
				}
			}
		}
	}
}

// TestBuildForestParallelValidation mirrors the sequential argument
// checks.
func TestBuildForestParallelValidation(t *testing.T) {
	o := testutil.RandomTreeMetric(5, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	if _, err := BuildForestParallel(o, 100, SearchFull, 0, rng, 4); err == nil {
		t.Error("count=0 should fail")
	}
	if _, err := BuildForestParallel(o, 100, SearchFull, 3, nil, 4); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := BuildForestParallel(o, -1, SearchFull, 3, rng, 4); err == nil {
		t.Error("negative constant should fail")
	}
}

// BenchmarkBuildForestParallel compares sequential and concurrent forest
// construction of 8 trees over a 256-host oracle — the Sequoia-style
// repeated Gromov-product insertion that dominates System.New.
func BenchmarkBuildForestParallel(b *testing.B) {
	const n, count = 256, 8
	o := testutil.NoisyTreeMetric(n, 0.1, rand.New(rand.NewSource(3)))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildForest(o, 100, SearchAnchor, count, rand.New(rand.NewSource(4))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildForestParallel(o, 100, SearchAnchor, count, rand.New(rand.NewSource(4)), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
