package sword

import (
	"math/rand"
	"testing"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
)

func TestValidation(t *testing.T) {
	bw := metric.NewMatrix(3)
	rng := rand.New(rand.NewSource(1))
	if _, err := FindCluster(bw, 1, 10, 100, rng); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := FindCluster(bw, 2, 10, 0, rng); err == nil {
		t.Error("budget=0 should fail")
	}
	if _, err := FindCluster(bw, 2, 10, 100, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestFindsRealClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bw, err := dataset.Generate(dataset.HPConfig().WithN(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindCluster(bw, 5, 20, 1<<20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("large budget found nothing on an easy instance")
	}
	if len(res.Members) != 5 {
		t.Fatalf("members = %v", res.Members)
	}
	// SWORD's defining property: answers are verified against the real
	// measurements, so no wrong pairs, ever.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if bw.At(res.Members[i], res.Members[j]) < 20 {
				t.Fatalf("pair (%d,%d) below constraint", res.Members[i], res.Members[j])
			}
		}
	}
	if res.Steps <= 0 {
		t.Error("no steps recorded")
	}
}

func TestImpossibleInstanceExploresFully(t *testing.T) {
	// A graph with max clique 2 cannot yield k=3.
	bw := metric.NewMatrix(4)
	bw.Set(0, 1, 100)
	bw.Set(2, 3, 100)
	bw.Set(0, 2, 1)
	bw.Set(0, 3, 1)
	bw.Set(1, 2, 1)
	bw.Set(1, 3, 1)
	rng := rand.New(rand.NewSource(3))
	res, err := FindCluster(bw, 3, 50, 1<<20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("impossible instance returned %v", res.Members)
	}
	if res.Exhausted {
		t.Error("tiny search space reported budget exhaustion")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Near-miss instance: a dense graph where only slightly-too-large
	// cliques are requested forces deep backtracking.
	n := 40
	bw := metric.FromFunc(n, func(i, j int) float64 {
		if rng.Float64() < 0.5 {
			return 100
		}
		return 1
	})
	res, err := FindCluster(bw, 12, 50, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		return // got lucky within 50 expansions; acceptable
	}
	if !res.Exhausted {
		t.Error("hard instance with tiny budget should exhaust")
	}
	if res.Steps > 50 {
		t.Errorf("steps %d exceed budget", res.Steps)
	}
}

// Larger budgets only help: if a cluster is found with budget B, it is
// found with budget 2B (same rng seed re-used per call).
func TestBudgetMonotone(t *testing.T) {
	bw, err := dataset.Generate(dataset.HPConfig().WithN(30), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{4, 8, 12} {
		small, err := FindCluster(bw, k, 25, 200, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		big, err := FindCluster(bw, k, 25, 400, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		if small.Found() && !big.Found() {
			t.Fatalf("k=%d: found with budget 200 but not 400", k)
		}
	}
}
