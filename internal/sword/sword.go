// Package sword implements a SWORD-like comparison baseline (Oppenheimer
// et al., HPDC 2005), the resource-discovery system the paper's related
// work contrasts against: it searches for a bandwidth-constrained cluster
// by exhaustive backtracking over the *measured* bandwidth graph and
// gives up when its budget expires.
//
// Two properties make it the paper's foil:
//
//   - it needs the full n-to-n measurement matrix (no prediction
//     framework), and
//   - the search is k-Clique, so the worst case is exponential; SWORD
//     bounds it with a timeout. Here the budget is a deterministic
//     node-expansion count so experiments are reproducible.
//
// In exchange, any cluster it returns is correct by construction (it
// checked the real measurements), so its WPR is zero — the tradeoff the
// comparison experiment quantifies.
package sword

import (
	"fmt"
	"math/rand"

	"bwcluster/internal/metric"
)

// Result reports one search.
type Result struct {
	// Members is the found clique, nil if none was found in budget.
	Members []int
	// Steps is how many backtracking expansions the search performed.
	Steps int
	// Exhausted reports whether the search ran out of budget (false
	// means the search space was fully explored).
	Exhausted bool
}

// Found reports whether a cluster was returned.
func (r Result) Found() bool { return len(r.Members) > 0 }

// FindCluster searches the threshold graph (edges where BW >= b) for a
// k-clique by randomized backtracking, expanding at most budget nodes.
// The candidate order is shuffled with rng so repeated calls explore
// differently, mirroring SWORD's randomized probes.
func FindCluster(bw *metric.Matrix, k int, b float64, budget int, rng *rand.Rand) (Result, error) {
	if k < 2 {
		return Result{}, fmt.Errorf("sword: size constraint k must be >= 2, got %d", k)
	}
	if budget < 1 {
		return Result{}, fmt.Errorf("sword: budget must be >= 1, got %d", budget)
	}
	if rng == nil {
		return Result{}, fmt.Errorf("sword: nil rng")
	}
	n := bw.N()
	// Adjacency of the threshold graph.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ok := bw.At(i, j) >= b
			adj[i][j], adj[j][i] = ok, ok
		}
	}
	order := rng.Perm(n)

	res := Result{}
	picked := make([]int, 0, k)
	var rec func(startIdx int) bool
	rec = func(startIdx int) bool {
		if len(picked) == k {
			res.Members = append([]int(nil), picked...)
			return true
		}
		if res.Steps >= budget {
			res.Exhausted = true
			return false
		}
		for idx := startIdx; idx < n; idx++ {
			if n-idx < k-len(picked) {
				return false
			}
			x := order[idx]
			ok := true
			for _, m := range picked {
				if !adj[m][x] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			res.Steps++
			picked = append(picked, x)
			if rec(idx + 1) {
				return true
			}
			picked = picked[:len(picked)-1]
			if res.Exhausted {
				return false
			}
		}
		return false
	}
	rec(0)
	return res, nil
}
