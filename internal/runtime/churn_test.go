package runtime

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"bwcluster/internal/cluster"
	"bwcluster/internal/membership"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/testutil"
	"bwcluster/internal/transport"
)

// refreshGossip stamps every peer's gossip-age watermark to now, except
// links pointing at host except (pass -1 to refresh everything). Tests
// use it to simulate gossip freshness without running the peer
// goroutines, keeping liveness transitions fully deterministic.
func refreshGossip(rt *Runtime, now uint64, except int) {
	rt.mu.Lock()
	peers := make([]*peer, 0, len(rt.peers))
	for _, p := range rt.peers {
		peers = append(peers, p)
	}
	rt.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		for v := range p.lastGossip {
			if v != except {
				p.lastGossip[v] = now
			}
		}
		p.mu.Unlock()
	}
}

// Deterministic liveness ladder driven by synthetic ticks: a quiet host
// turns suspect, recovers when gossip resumes, and — quiet past the
// death threshold — is declared dead and auto-evicted, repairing the
// prediction tree and moving the membership epoch.
func TestChurnAutoEvictsDeadHost(t *testing.T) {
	tree, _ := buildTree(t, 8, 0.2, 81)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	tk, err := rt.AttachMembership(membership.Config{SuspectAfterTicks: 50, DeadAfterTicks: 200}, true)
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := tk.Epoch()
	if epoch0 != 8 {
		t.Fatalf("epoch after attach = %d, want 8 (one join per host)", epoch0)
	}
	if tree.Epoch() != epoch0 {
		t.Fatalf("tree epoch %d != tracker epoch %d at attach", tree.Epoch(), epoch0)
	}
	victim := rt.Hosts()[3]

	// Index the pre-churn space at the pre-churn epoch; it must reject
	// post-churn queries below.
	dist, _ := tree.DistMatrix()
	ix, err := cluster.NewIndexAt(dist, tree.Epoch())
	if err != nil {
		t.Fatal(err)
	}

	// Fresh gossip everywhere but the victim's links: still alive at age
	// below the suspect threshold.
	refreshGossip(rt, 10, victim)
	rt.membershipScanAt(10)
	if got := tk.Status(victim); got != membership.StatusAlive {
		t.Fatalf("status at age 10 = %v, want alive", got)
	}

	// Quiet past the suspect threshold: suspect, membership unchanged.
	refreshGossip(rt, 70, victim)
	rt.membershipScanAt(70)
	if got := tk.Status(victim); got != membership.StatusSuspect {
		t.Fatalf("status at age 70 = %v, want suspect", got)
	}
	if got := tk.Epoch(); got != epoch0 {
		t.Fatalf("suspicion moved the epoch to %d", got)
	}
	if got := len(rt.Hosts()); got != 8 {
		t.Fatalf("suspicion evicted a host: %d left", got)
	}

	// Gossip resumes: recover.
	refreshGossip(rt, 80, -1)
	rt.membershipScanAt(80)
	if got := tk.Status(victim); got != membership.StatusAlive {
		t.Fatalf("status after recovery = %v, want alive", got)
	}

	// Quiet again, past the death threshold: suspect first, then dead —
	// and the runtime auto-evicts, repairing the tree.
	refreshGossip(rt, 140, victim)
	rt.membershipScanAt(140)
	refreshGossip(rt, 290, victim)
	rt.membershipScanAt(290)
	if got := tk.Status(victim); got != membership.StatusDead {
		t.Fatalf("status past death threshold = %v, want dead", got)
	}
	if got := len(rt.Hosts()); got != 7 {
		t.Fatalf("hosts after auto-evict = %d, want 7", got)
	}
	if tree.Contains(victim) {
		t.Fatal("auto-evict did not repair the prediction tree")
	}
	if got := tk.Epoch(); got != epoch0+1 {
		t.Fatalf("epoch after death = %d, want %d", got, epoch0+1)
	}
	if tree.Epoch() != tk.Epoch() {
		t.Fatalf("tree epoch %d != tracker epoch %d after eviction", tree.Epoch(), tk.Epoch())
	}

	// The pre-churn index is now stale and says so.
	if _, err := ix.FindAt(tree.Epoch(), 3, 64); !errors.Is(err, cluster.ErrStaleIndex) {
		t.Fatalf("stale index error = %v, want ErrStaleIndex", err)
	}

	// The victim's links are gone: later scans no longer observe it.
	refreshGossip(rt, 300, -1)
	rt.membershipScanAt(300)
	if got := tk.Status(victim); got != membership.StatusDead {
		t.Fatalf("evicted host resurfaced as %v", got)
	}
	events := tk.Events(nil)
	var kinds []membership.EventKind
	for _, ev := range events {
		if ev.Host == victim {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []membership.EventKind{
		membership.EventJoin, membership.EventSuspect, membership.EventRecover,
		membership.EventSuspect, membership.EventFail,
	}
	if len(kinds) != len(want) {
		t.Fatalf("victim events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("victim event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

// A partitioned host turns suspect while the cut is active and recovers
// once it heals — with the death threshold out of reach, the membership
// epoch never moves. Runs against the live runtime under FaultTransport.
func TestChurnPartitionSuspectThenHeal(t *testing.T) {
	tree, _ := buildTree(t, 6, 0.2, 82)
	cfg := testConfig()
	// Pick an anchor-tree leaf: its only observers are on the mainland,
	// so only it goes suspect.
	victim := -1
	for _, h := range tree.Hosts() {
		if len(tree.AnchorNeighbors(h)) == 1 {
			victim = h
			break
		}
	}
	if victim < 0 {
		t.Fatal("no anchor-tree leaf in test tree")
	}
	const healAt = 20000
	ft, err := transport.NewFault(transport.NewChan(0), transport.FaultConfig{
		Seed:       19,
		Partitions: []transport.Partition{{After: 100, Until: healAt, Island: []int{victim}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewWithTransport(tree, cfg, testTick, ft, nil)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := rt.AttachMembership(membership.Config{SuspectAfterTicks: 100, DeadAfterTicks: 100000}, true)
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := tk.Epoch()
	rt.Start()
	defer func() {
		rt.Stop()
		ft.Close()
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(settleMax)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("victim suspect under partition", func() bool {
		return tk.Status(victim) == membership.StatusSuspect
	})
	waitFor("partition heal", func() bool { return ft.Sends() >= healAt })
	waitFor("victim recovery after heal", func() bool {
		return tk.Status(victim) == membership.StatusAlive
	})
	if got := tk.Epoch(); got != epoch0 {
		t.Fatalf("partition moved the membership epoch %d -> %d", epoch0, got)
	}
	if got := len(rt.Hosts()); got != 6 {
		t.Fatalf("hosts after heal = %d, want 6", got)
	}
	sawSuspect, sawRecover := false, false
	for _, ev := range tk.Events(nil) {
		if ev.Host != victim {
			continue
		}
		switch ev.Kind {
		case membership.EventSuspect:
			sawSuspect = true
		case membership.EventRecover:
			sawRecover = true
		case membership.EventFail, membership.EventLeave:
			t.Fatalf("victim logged %v during a transient partition", ev.Kind)
		}
	}
	if !sawSuspect || !sawRecover {
		t.Fatalf("event log missing suspect/recover for victim: suspect=%v recover=%v", sawSuspect, sawRecover)
	}
}

// Sustained churn soak under a lossy transport: a seeded sequence of
// joins and leaves/fails applied to the live runtime must converge to
// exactly the fixed point the synchronous engine computes from scratch
// on the surviving membership, with the membership epoch tracking the
// substrate epoch step for step.
func TestChurnSoakFixedPoint(t *testing.T) {
	const base, extra = 18, 5
	rng := rand.New(rand.NewSource(77))
	o := testutil.NoisyTreeMetric(base+extra, 0.2, rng)
	tree, err := predtree.Build(o, 100, predtree.SearchFull, rng.Perm(base))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	ft, err := transport.NewFault(transport.NewChan(0), transport.FaultConfig{
		Seed: 21, Drop: 0.15, GossipOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewWithTransport(tree, cfg, testTick, ft, nil)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := rt.AttachMembership(membership.Config{SuspectAfterTicks: 100000, DeadAfterTicks: 200000}, false)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer func() {
		rt.Stop()
		ft.Close()
	}()
	if err := rt.Settle(faultSettleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}

	// ~40% turnover: 5 leaves/fails and 5 joins (one joiner churns right
	// back out), interleaved, all under sustained gossip loss.
	type op struct {
		kind string // "join" or "evict"
		host int
	}
	ops := []op{
		{"evict", 3}, {"join", base}, {"evict", 11}, {"join", base + 1},
		{"evict", 7}, {"join", base + 2}, {"evict", base}, {"join", base + 3},
		{"evict", 15}, {"join", base + 4},
	}
	for _, operation := range ops {
		switch operation.kind {
		case "join":
			if err := rt.AddHost(operation.host, o); err != nil {
				t.Fatalf("add %d: %v", operation.host, err)
			}
		case "evict":
			if err := rt.EvictHost(operation.host); err != nil {
				t.Fatalf("evict %d: %v", operation.host, err)
			}
		}
		if tree.Epoch() != tk.Epoch() {
			t.Fatalf("after %s %d: tree epoch %d != tracker epoch %d",
				operation.kind, operation.host, tree.Epoch(), tk.Epoch())
		}
	}
	if err := rt.Settle(faultSettleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	if got, want := len(rt.Hosts()), base; got != want {
		t.Fatalf("hosts after soak = %d, want %d", got, want)
	}

	// Reference: the synchronous engine built from scratch on the
	// repaired substrate (the surviving membership).
	nw := convergedNetwork(t, tree, cfg)
	assertMatchesFixedPoint(t, nw, rt, "churn-soak")

	// Queries on the churned network answer and return only live hosts.
	live := make(map[int]bool)
	for _, h := range rt.Hosts() {
		live[h] = true
	}
	for _, start := range rt.Hosts()[:3] {
		res, err := rt.Query(start, 3, 64, queryWait)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Cluster {
			if !live[m] {
				t.Fatalf("query from %d returned departed host %d", start, m)
			}
		}
	}

	// The pre-churn membership epoch no longer matches: an index tagged
	// with it refuses to answer.
	distM, _ := tree.DistMatrix()
	ix, err := cluster.NewIndexAt(distM, tk.Epoch()-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.FindAt(tree.Epoch(), 3, 64); !errors.Is(err, cluster.ErrStaleIndex) {
		t.Fatalf("stale index error = %v, want ErrStaleIndex", err)
	}
	if _, err := cluster.NewIndexAt(distM, tree.Epoch()); err != nil {
		t.Fatal(err)
	}
	_ = overlay.Stats{} // keep the overlay import for the reference engine
}
