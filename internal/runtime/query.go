package runtime

import (
	"fmt"
	"sort"
	"time"

	"bwcluster/internal/cluster"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// Query submits a (k, l) query to the given start peer and waits up to
// timeout for the network to answer. The query travels peer-to-peer as
// messages, exactly like Algorithm 4; the answer comes back as a routed
// result message addressed to the start peer, so the whole round trip
// works even when intermediate peers live in other processes. The start
// peer must be hosted by this runtime.
func (rt *Runtime) Query(start, k int, l float64, timeout time.Duration) (overlay.Result, error) {
	return rt.QueryTraced(start, k, l, timeout, nil)
}

// QueryTraced is Query with distributed tracing: when span is non-nil,
// the query carries a trace context across every hop — including hops
// executed by peers in other processes — and each hop's span event is
// reported back to this runtime, reassembled into span's tree after the
// answer arrives (hop spans carry host, peer, hop index, queue wait;
// dropped reports appear as explicit "gap" spans). A nil span runs the
// exact untraced path: no context on the wire, no events, no waits.
func (rt *Runtime) QueryTraced(start, k int, l float64, timeout time.Duration, span *telemetry.Span) (overlay.Result, error) {
	if p := rt.peerByID(start); p == nil {
		return overlay.Result{}, fmt.Errorf("runtime: unknown start host %d", start)
	}
	if k < 2 {
		return overlay.Result{}, fmt.Errorf("runtime: size constraint k must be >= 2, got %d", k)
	}
	classL, classIdx, err := rt.classFor(l)
	if err != nil {
		return overlay.Result{}, err
	}
	id := rt.qid.Add(1)
	reply := make(chan clusterOutcome, replyCapacity)
	rt.pendMu.Lock()
	rt.pendCluster[id] = pendingCluster{ch: reply, origin: start, born: rt.ticks.Load()}
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()
	var tc *transport.TraceContext
	var rootSpanID uint64
	if span != nil {
		rootSpanID = rt.mintSpanID(start)
		tc = &transport.TraceContext{TraceID: id, ParentSpan: rootSpanID, Origin: start, SentUnixNano: traceNow()}
	}
	q := &transport.Query{ID: id, Origin: start, K: k, ClassIdx: classIdx, ClassL: classL, Prev: -1}
	if err := rt.tr.Send(transport.Message{Kind: transport.KindQuery, From: -1, To: start, Query: q, Trace: tc}); err != nil {
		rt.dropPendingCluster(id)
		return overlay.Result{}, fmt.Errorf("runtime: start peer %d did not accept the query: %w", start, err)
	}
	select {
	case out := <-reply:
		if out.err != nil {
			rt.collector.Take(id)
			return overlay.Result{}, out.err
		}
		res := out.res
		mRuntimeQueryHops.Observe(float64(res.Hops))
		if span != nil {
			rt.gatherTrace(span, rootSpanID, id, res.Hops)
		}
		return res, nil
	case <-time.After(timeout):
		rt.dropPendingCluster(id)
		rt.collector.Take(id)
		rt.fl().Anomaly(anomalyQueryTO, start, -1, fmt.Sprintf("cluster query k=%d l=%v after %v", k, l, timeout))
		return overlay.Result{}, fmt.Errorf("runtime: query (k=%d, l=%v) timed out after %v", k, l, timeout)
	}
}

// dropPendingCluster abandons a pending cluster reply; a late answer
// then finds no entry and is discarded.
func (rt *Runtime) dropPendingCluster(id uint64) {
	rt.pendMu.Lock()
	defer rt.pendMu.Unlock()
	delete(rt.pendCluster, id)
	rt.updatePendingGaugeLocked()
}

// resolveCluster completes the pending query a routed result answers.
// The reply channel is buffered and the entry is removed on first
// resolution, so duplicated result deliveries (fault injection, at-least
// -once callers) are idempotently ignored and never block a peer loop.
func (rt *Runtime) resolveCluster(r *transport.Result) {
	if r == nil {
		return
	}
	rt.pendMu.Lock()
	e, ok := rt.pendCluster[r.ID]
	delete(rt.pendCluster, r.ID)
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()
	if !ok {
		return // duplicate, late, or foreign answer
	}
	e.ch <- clusterOutcome{res: overlay.Result{Cluster: r.Cluster, Hops: r.Hops, Answered: r.Answered, Class: r.Class, Path: r.Path}}
}

// classFor snaps l to the largest configured class <= l.
func (rt *Runtime) classFor(l float64) (float64, int, error) {
	classes := rt.cfg.Classes
	idx := sort.SearchFloat64s(classes, l)
	if idx < len(classes) && classes[idx] == l {
		return l, idx, nil
	}
	if idx == 0 {
		return 0, 0, fmt.Errorf("%w: l=%v < smallest class %v", overlay.ErrNoClass, l, classes[0])
	}
	return classes[idx-1], idx - 1, nil
}

// handleQuery runs one Algorithm 4 step at this peer: answer locally if
// the local CRT admits the size, otherwise forward toward a promising
// neighbor, otherwise report failure. ht is the hop's trace state (nil
// when untraced); the span event is reported when the step concludes.
func (p *peer) handleQuery(q *transport.Query, ht *hopTrace) {
	q.Path = append(q.Path, p.id)
	p.mu.Lock()
	if p.dirty {
		p.recomputeSelfCRTLocked()
		p.dirty = false
	}
	var members []int
	if len(p.selfCRT) > q.ClassIdx && q.K <= p.selfCRT[q.ClassIdx] {
		hosts, space := p.spaceLocked()
		if sel, err := cluster.FindCluster(space, q.K, q.ClassL); err == nil && sel != nil {
			members = make([]int, len(sel))
			for i, s := range sel {
				members[i] = hosts[s]
			}
		}
	}
	next := -1
	if members == nil {
		for _, v := range p.neighbors {
			if v == q.Prev {
				continue
			}
			if crt := p.aggrCRT[v]; len(crt) > q.ClassIdx && q.K <= crt[q.ClassIdx] {
				next = v
				break
			}
		}
	}
	p.mu.Unlock()

	switch {
	case members != nil:
		ht.setNote("answered")
		p.answerQuery(q, members, ht)
	case next != -1 && q.Hops < maxQueryHops:
		ht.setNote("forward")
		fwd := *q
		fwd.Prev = p.id
		fwd.Hops++
		// Copy the path: the forwarded message and this peer's local view
		// must not share a backing array across goroutines.
		fwd.Path = append([]int(nil), q.Path...)
		p.forwardQuery(next, &fwd, ht)
	default:
		ht.setNote("notfound")
		p.answerQuery(q, nil, ht)
	}
	p.finishHop(ht, "query")
}

// answerQuery routes the query's answer back to its origin peer as a
// result message (members nil: not found), carrying the trace context
// so the origin can time the return leg.
func (p *peer) answerQuery(q *transport.Query, members []int, ht *hopTrace) {
	res := &transport.Result{ID: q.ID, Cluster: members, Hops: q.Hops, Answered: p.id, Class: q.ClassL, Path: q.Path}
	p.rt.sendAsync(transport.Message{Kind: transport.KindResult, From: p.id, To: q.Origin, Result: res, Trace: ht.back()})
}

// forwardQuery passes the query to the next peer from a helper goroutine
// so a full inbox cannot stall this peer's main loop. If the transport
// rejects the forward (next is dead and unrouted), the query fails over
// to a not-found answer from this peer, preserving the pre-transport
// crash semantics.
func (p *peer) forwardQuery(next int, fwd *transport.Query, ht *hopTrace) {
	from := p.id
	tc := ht.next()
	p.rt.wg.Add(1)
	go func() {
		defer p.rt.wg.Done()
		if p.rt.tr.Send(transport.Message{Kind: transport.KindQuery, From: from, To: next, Query: fwd, Trace: tc}) == nil {
			return
		}
		res := &transport.Result{ID: fwd.ID, Hops: fwd.Hops, Answered: from, Class: fwd.ClassL, Path: fwd.Path}
		_ = p.rt.tr.Send(transport.Message{Kind: transport.KindResult, From: from, To: fwd.Origin, Result: res, Trace: tc})
	}()
}

// maxQueryHops is a safety bound against routing on inconsistent
// (not-yet-settled) CRTs; the overlay is a tree, so settled routing never
// gets near it.
const maxQueryHops = 10000

// DynamicSubstrate is a substrate that accepts new hosts (both
// predtree.Tree and predtree.Forest qualify).
type DynamicSubstrate interface {
	overlay.Substrate
	Add(h int, o predtree.Oracle) error
}

// AddHost inserts a new host into the runtime's substrate, wires a peer
// for it, and refreshes the adjacency of peers whose neighbor sets
// changed (its anchor gains a child). The new peer starts gossiping
// immediately; call Settle to wait for the state to re-converge. It fails
// if the substrate the runtime was built on does not support growth.
func (rt *Runtime) AddHost(h int, o predtree.Oracle) error {
	dyn, ok := rt.sub.(DynamicSubstrate)
	if !ok {
		return fmt.Errorf("runtime: substrate %T does not support adding hosts", rt.sub)
	}
	if err := dyn.Add(h, o); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	dist, hosts := rt.sub.DistMatrix()
	tbl := &distTable{dist: dist, index: make(map[int]int, len(hosts))}
	for i, hh := range hosts {
		tbl.index[hh] = i
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.table.Store(tbl)
	nb := rt.sub.AnchorNeighbors(h)
	sort.Ints(nb)
	p, err := rt.newPeer(h, nb)
	if err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	rt.peers[h] = p
	// The anchor parent gained a neighbor.
	now := rt.ticks.Load()
	for _, other := range nb {
		if q := rt.peers[other]; q != nil {
			q.mu.Lock()
			q.neighbors = insertSorted(q.neighbors, h)
			q.lastGossip[h] = now // fresh link; age the watermark from now
			q.dirty = true
			q.mu.Unlock()
			rt.version.Add(1)
		}
	}
	rt.wg.Add(1)
	go p.run()
	if tk := rt.Membership(); tk != nil {
		_ = tk.NoteJoin(h, now)
	}
	return nil
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
