package runtime

import (
	"fmt"
	"sort"
	"time"

	"bwcluster/internal/cluster"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
)

// Query submits a (k, l) query to the given start peer and waits up to
// timeout for the network to answer. The query travels peer-to-peer as
// messages, exactly like Algorithm 4.
func (rt *Runtime) Query(start, k int, l float64, timeout time.Duration) (overlay.Result, error) {
	p := rt.peerByID(start)
	if p == nil {
		return overlay.Result{}, fmt.Errorf("runtime: unknown start host %d", start)
	}
	if k < 2 {
		return overlay.Result{}, fmt.Errorf("runtime: size constraint k must be >= 2, got %d", k)
	}
	classL, classIdx, err := rt.classFor(l)
	if err != nil {
		return overlay.Result{}, err
	}
	reply := make(chan overlay.Result, replyCapacity)
	q := &queryMsg{k: k, classIdx: classIdx, classL: classL, prev: -1, reply: reply}
	select {
	case p.inbox <- message{kind: kindQuery, query: q}:
	case <-time.After(timeout):
		return overlay.Result{}, fmt.Errorf("runtime: start peer %d did not accept the query", start)
	}
	select {
	case res := <-reply:
		mRuntimeQueryHops.Observe(float64(res.Hops))
		return res, nil
	case <-time.After(timeout):
		return overlay.Result{}, fmt.Errorf("runtime: query (k=%d, l=%v) timed out after %v", k, l, timeout)
	}
}

// classFor snaps l to the largest configured class <= l.
func (rt *Runtime) classFor(l float64) (float64, int, error) {
	classes := rt.cfg.Classes
	idx := sort.SearchFloat64s(classes, l)
	if idx < len(classes) && classes[idx] == l {
		return l, idx, nil
	}
	if idx == 0 {
		return 0, 0, fmt.Errorf("%w: l=%v < smallest class %v", overlay.ErrNoClass, l, classes[0])
	}
	return classes[idx-1], idx - 1, nil
}

// handleQuery runs one Algorithm 4 step at this peer: answer locally if
// the local CRT admits the size, otherwise forward toward a promising
// neighbor, otherwise report failure.
func (p *peer) handleQuery(q *queryMsg) {
	q.path = append(q.path, p.id)
	p.mu.Lock()
	if p.dirty {
		p.recomputeSelfCRTLocked()
		p.dirty = false
	}
	var members []int
	if len(p.selfCRT) > q.classIdx && q.k <= p.selfCRT[q.classIdx] {
		hosts, space := p.spaceLocked()
		if sel, err := cluster.FindCluster(space, q.k, q.classL); err == nil && sel != nil {
			members = make([]int, len(sel))
			for i, s := range sel {
				members[i] = hosts[s]
			}
		}
	}
	next := -1
	if members == nil {
		for _, v := range p.neighbors {
			if v == q.prev {
				continue
			}
			if crt := p.aggrCRT[v]; len(crt) > q.classIdx && q.k <= crt[q.classIdx] {
				next = v
				break
			}
		}
	}
	p.mu.Unlock()

	switch {
	case members != nil:
		q.reply <- overlay.Result{Cluster: members, Hops: q.hops, Answered: p.id, Class: q.classL, Path: q.path}
	case next != -1 && q.hops < maxQueryHops:
		fwd := *q
		fwd.prev = p.id
		fwd.hops++
		target := p.rt.peerByID(next)
		if target == nil {
			q.reply <- overlay.Result{Hops: q.hops, Answered: p.id, Class: q.classL, Path: q.path}
			return
		}
		// Forward from a helper goroutine so a full inbox cannot stall
		// this peer's main loop; the send is bounded by the target's stop.
		p.rt.wg.Add(1)
		go func() {
			defer p.rt.wg.Done()
			select {
			case target.inbox <- message{kind: kindQuery, query: &fwd}:
			case <-target.stop:
				fwd.reply <- overlay.Result{Hops: fwd.hops, Answered: p.id, Class: q.classL, Path: fwd.path}
			}
		}()
	default:
		q.reply <- overlay.Result{Hops: q.hops, Answered: p.id, Class: q.classL, Path: q.path}
	}
}

// maxQueryHops is a safety bound against routing on inconsistent
// (not-yet-settled) CRTs; the overlay is a tree, so settled routing never
// gets near it.
const maxQueryHops = 10000

// DynamicSubstrate is a substrate that accepts new hosts (both
// predtree.Tree and predtree.Forest qualify).
type DynamicSubstrate interface {
	overlay.Substrate
	Add(h int, o predtree.Oracle) error
}

// AddHost inserts a new host into the runtime's substrate, wires a peer
// for it, and refreshes the adjacency of peers whose neighbor sets
// changed (its anchor gains a child). The new peer starts gossiping
// immediately; call Settle to wait for the state to re-converge. It fails
// if the substrate the runtime was built on does not support growth.
func (rt *Runtime) AddHost(h int, o predtree.Oracle) error {
	dyn, ok := rt.sub.(DynamicSubstrate)
	if !ok {
		return fmt.Errorf("runtime: substrate %T does not support adding hosts", rt.sub)
	}
	if err := dyn.Add(h, o); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	dist, hosts := rt.sub.DistMatrix()
	tbl := &distTable{dist: dist, index: make(map[int]int, len(hosts))}
	for i, hh := range hosts {
		tbl.index[hh] = i
	}

	rt.mu.Lock()
	rt.table.Store(tbl)
	nb := rt.sub.AnchorNeighbors(h)
	sort.Ints(nb)
	p := rt.newPeer(h, nb)
	rt.peers[h] = p
	// The anchor parent gained a neighbor.
	for _, other := range nb {
		if q := rt.peers[other]; q != nil {
			q.mu.Lock()
			q.neighbors = insertSorted(q.neighbors, h)
			q.dirty = true
			q.mu.Unlock()
			rt.version.Add(1)
		}
	}
	rt.wg.Add(1)
	rt.mu.Unlock()
	go p.run()
	return nil
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
