package runtime

import (
	"fmt"
	"math"
	"time"

	"bwcluster/internal/overlay"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// QueryNode runs the decentralized single-node search over the live
// network: find one host whose maximum predicted distance to every
// member of set is at most l, hill-climbing toward the incumbent best
// candidate's region (see overlay.Network.QueryNode for the algorithm).
// The start peer must be hosted by this runtime; set members may live
// anywhere in the network.
func (rt *Runtime) QueryNode(start int, set []int, l float64, timeout time.Duration) (overlay.NodeResult, error) {
	return rt.QueryNodeTraced(start, set, l, timeout, nil)
}

// QueryNodeTraced is QueryNode with distributed tracing; see QueryTraced
// for the trace semantics (a nil span runs the exact untraced path).
func (rt *Runtime) QueryNodeTraced(start int, set []int, l float64, timeout time.Duration, span *telemetry.Span) (overlay.NodeResult, error) {
	if p := rt.peerByID(start); p == nil {
		return overlay.NodeResult{}, fmt.Errorf("runtime: unknown start host %d", start)
	}
	if len(set) == 0 {
		return overlay.NodeResult{}, fmt.Errorf("runtime: empty input set")
	}
	tbl := rt.table.Load()
	for _, m := range set {
		if _, ok := tbl.index[m]; !ok {
			return overlay.NodeResult{}, fmt.Errorf("runtime: set member %d is not a live host", m)
		}
	}
	if l < 0 {
		return overlay.NodeResult{}, fmt.Errorf("runtime: constraint l must be >= 0, got %v", l)
	}
	id := rt.qid.Add(1)
	reply := make(chan nodeOutcome, replyCapacity)
	rt.pendMu.Lock()
	rt.pendNode[id] = pendingNode{ch: reply, origin: start, born: rt.ticks.Load()}
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()
	var tc *transport.TraceContext
	var rootSpanID uint64
	if span != nil {
		rootSpanID = rt.mintSpanID(start)
		tc = &transport.TraceContext{TraceID: id, ParentSpan: rootSpanID, Origin: start, SentUnixNano: traceNow()}
	}
	q := &transport.NodeQuery{
		ID:         id,
		Origin:     start,
		Set:        append([]int(nil), set...),
		L:          l,
		BestNode:   -1,
		BestRadius: math.Inf(1),
		Prev:       -1,
	}
	if err := rt.tr.Send(transport.Message{Kind: transport.KindNodeQuery, From: -1, To: start, NodeQuery: q, Trace: tc}); err != nil {
		rt.dropPendingNode(id)
		return overlay.NodeResult{}, fmt.Errorf("runtime: start peer %d did not accept the query: %w", start, err)
	}
	select {
	case out := <-reply:
		if out.err != nil {
			rt.collector.Take(id)
			return overlay.NodeResult{}, out.err
		}
		if span != nil {
			rt.gatherTrace(span, rootSpanID, id, out.res.Hops)
		}
		return out.res, nil
	case <-time.After(timeout):
		rt.dropPendingNode(id)
		rt.collector.Take(id)
		rt.fl().Anomaly(anomalyQueryTO, start, -1, fmt.Sprintf("node query l=%v after %v", l, timeout))
		return overlay.NodeResult{}, fmt.Errorf("runtime: node query timed out after %v", timeout)
	}
}

// dropPendingNode abandons a pending node-search reply; a late answer
// then finds no entry and is discarded.
func (rt *Runtime) dropPendingNode(id uint64) {
	rt.pendMu.Lock()
	defer rt.pendMu.Unlock()
	delete(rt.pendNode, id)
	rt.updatePendingGaugeLocked()
}

// resolveNode completes the pending node search a routed result answers;
// duplicate or late answers are idempotently ignored.
func (rt *Runtime) resolveNode(r *transport.NodeResult) {
	if r == nil {
		return
	}
	rt.pendMu.Lock()
	e, ok := rt.pendNode[r.ID]
	delete(rt.pendNode, r.ID)
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()
	if !ok {
		return
	}
	e.ch <- nodeOutcome{res: overlay.NodeResult{Node: r.Node, Radius: r.Radius, Hops: r.Hops, Answered: r.Answered}}
}

// handleNodeQuery executes one hill-climbing step at this peer. ht is
// the hop's trace state (nil when untraced).
func (p *peer) handleNodeQuery(q *transport.NodeQuery, ht *hopTrace) {
	inSet := make(map[int]bool, len(q.Set))
	for _, m := range q.Set {
		inSet[m] = true
	}
	setRadius := func(u int) float64 {
		worst := 0.0
		for _, m := range q.Set {
			if d := p.rt.predDist(u, m); d > worst {
				worst = d
			}
		}
		return worst
	}

	p.mu.Lock()
	bestDir := -1
	consider := func(u, dir int) {
		if inSet[u] {
			return
		}
		if r := setRadius(u); r < q.BestRadius {
			q.BestNode, q.BestRadius = u, r
			bestDir = dir
		}
	}
	consider(p.id, -1)
	for _, v := range p.neighbors {
		for _, u := range p.aggrNode[v] {
			consider(u, v)
		}
	}
	p.mu.Unlock()

	if bestDir == -1 || bestDir == q.Prev || q.Hops >= maxQueryHops {
		ht.setNote("answered")
		p.answerNodeQuery(q, ht)
		p.finishHop(ht, "nodequery")
		return
	}
	ht.setNote("forward")
	fwd := *q
	fwd.Prev = p.id
	fwd.Hops++
	// Copy the set so the forwarded message shares no backing array with
	// this delivery.
	fwd.Set = append([]int(nil), q.Set...)
	p.forwardNodeQuery(bestDir, &fwd, ht)
	p.finishHop(ht, "nodequery")
}

// answerNodeQuery routes the search's answer back to its origin peer
// (Node -1 when no candidate satisfies the constraint), carrying the
// trace context so the origin can time the return leg.
func (p *peer) answerNodeQuery(q *transport.NodeQuery, ht *hopTrace) {
	res := &transport.NodeResult{ID: q.ID, Node: q.BestNode, Radius: q.BestRadius, Hops: q.Hops, Answered: p.id}
	if q.BestNode < 0 || q.BestRadius > q.L {
		res = &transport.NodeResult{ID: q.ID, Node: -1, Hops: q.Hops, Answered: p.id}
	}
	p.rt.sendAsync(transport.Message{Kind: transport.KindNodeResult, From: p.id, To: q.Origin, NodeResult: res, Trace: ht.back()})
}

// forwardNodeQuery passes the search to the next peer from a helper
// goroutine; if the transport rejects the forward (next is dead and
// unrouted), the search fails over to a not-found answer.
func (p *peer) forwardNodeQuery(next int, fwd *transport.NodeQuery, ht *hopTrace) {
	from := p.id
	tc := ht.next()
	p.rt.wg.Add(1)
	go func() {
		defer p.rt.wg.Done()
		if p.rt.tr.Send(transport.Message{Kind: transport.KindNodeQuery, From: from, To: next, NodeQuery: fwd, Trace: tc}) == nil {
			return
		}
		res := &transport.NodeResult{ID: fwd.ID, Node: -1, Hops: fwd.Hops, Answered: from}
		_ = p.rt.tr.Send(transport.Message{Kind: transport.KindNodeResult, From: from, To: fwd.Origin, NodeResult: res, Trace: tc})
	}()
}
