package runtime

import (
	"fmt"
	"math"
	"time"

	"bwcluster/internal/overlay"
)

// nodeQueryMsg carries a single-node search (the paper's future-work
// extension) across peers, with the incumbent best candidate riding
// along.
type nodeQueryMsg struct {
	set        []int
	l          float64
	bestNode   int
	bestRadius float64
	prev       int
	hops       int
	reply      chan overlay.NodeResult
}

// QueryNode runs the decentralized single-node search over the live
// network: find one host whose maximum predicted distance to every
// member of set is at most l, hill-climbing toward the incumbent best
// candidate's region (see overlay.Network.QueryNode for the algorithm).
func (rt *Runtime) QueryNode(start int, set []int, l float64, timeout time.Duration) (overlay.NodeResult, error) {
	p := rt.peerByID(start)
	if p == nil {
		return overlay.NodeResult{}, fmt.Errorf("runtime: unknown start host %d", start)
	}
	if len(set) == 0 {
		return overlay.NodeResult{}, fmt.Errorf("runtime: empty input set")
	}
	for _, m := range set {
		if rt.peerByID(m) == nil {
			return overlay.NodeResult{}, fmt.Errorf("runtime: set member %d is not a live host", m)
		}
	}
	if l < 0 {
		return overlay.NodeResult{}, fmt.Errorf("runtime: constraint l must be >= 0, got %v", l)
	}
	reply := make(chan overlay.NodeResult, replyCapacity)
	q := &nodeQueryMsg{
		set:        append([]int(nil), set...),
		l:          l,
		bestNode:   -1,
		bestRadius: math.Inf(1),
		prev:       -1,
		reply:      reply,
	}
	select {
	case p.inbox <- message{kind: kindNodeQuery, nodeQuery: q}:
	case <-time.After(timeout):
		return overlay.NodeResult{}, fmt.Errorf("runtime: start peer %d did not accept the query", start)
	}
	select {
	case res := <-reply:
		return res, nil
	case <-time.After(timeout):
		return overlay.NodeResult{}, fmt.Errorf("runtime: node query timed out after %v", timeout)
	}
}

// handleNodeQuery executes one hill-climbing step at this peer.
func (p *peer) handleNodeQuery(q *nodeQueryMsg) {
	inSet := make(map[int]bool, len(q.set))
	for _, m := range q.set {
		inSet[m] = true
	}
	setRadius := func(u int) float64 {
		worst := 0.0
		for _, m := range q.set {
			if d := p.rt.predDist(u, m); d > worst {
				worst = d
			}
		}
		return worst
	}

	p.mu.Lock()
	bestDir := -1
	consider := func(u, dir int) {
		if inSet[u] {
			return
		}
		if r := setRadius(u); r < q.bestRadius {
			q.bestNode, q.bestRadius = u, r
			bestDir = dir
		}
	}
	consider(p.id, -1)
	for _, v := range p.neighbors {
		for _, u := range p.aggrNode[v] {
			consider(u, v)
		}
	}
	p.mu.Unlock()

	finish := func() {
		res := overlay.NodeResult{Node: q.bestNode, Radius: q.bestRadius, Hops: q.hops, Answered: p.id}
		if q.bestNode < 0 || q.bestRadius > q.l {
			res = overlay.NodeResult{Node: -1, Hops: q.hops, Answered: p.id}
		}
		q.reply <- res
	}
	if bestDir == -1 || bestDir == q.prev || q.hops >= maxQueryHops {
		finish()
		return
	}
	target := p.rt.peerByID(bestDir)
	if target == nil {
		finish()
		return
	}
	fwd := *q
	fwd.prev = p.id
	fwd.hops++
	p.rt.wg.Add(1)
	go func() {
		defer p.rt.wg.Done()
		select {
		case target.inbox <- message{kind: kindNodeQuery, nodeQuery: &fwd}:
		case <-target.stop:
			fwd.reply <- overlay.NodeResult{Node: -1, Hops: fwd.hops, Answered: p.id}
		}
	}()
}
