package runtime

import "bwcluster/internal/telemetry"

// Telemetry for the asynchronous engine: message deliveries by kind
// (mirroring the atomic Traffic counters into the exposition registry)
// and per-query hop distributions. Increments happen on the peer
// goroutines' delivery path, so they must stay allocation-free — the
// kind strings are package constants, and a single-value label join
// does not copy.
var (
	mMessages = telemetry.NewCounterVec("bwc_runtime_messages_total",
		"Messages delivered by the asynchronous peer runtime, by kind.",
		"kind")
	mRuntimeQueryHops = telemetry.NewHistogram("bwc_runtime_query_hops",
		"Overlay hops traveled per asynchronous (message-forwarded) query.",
		telemetry.HopBuckets())
)

const (
	kindLabelNodeInfo  = "nodeinfo"
	kindLabelCRT       = "crt"
	kindLabelQuery     = "query"
	kindLabelNodeQuery = "nodequery"
)
