package runtime

import "bwcluster/internal/telemetry"

// Telemetry for the asynchronous engine: message deliveries by kind
// (mirroring the atomic Traffic counters into the exposition registry,
// labeled by transport.Kind.String, which returns package constants),
// per-query hop distributions, and the InjectLoss skip counter. Drops on
// full inboxes are counted by the transport layer
// (bwc_transport_dropped_total{reason="inbox_full"}); this package only
// counts the losses it injects itself before the message ever reaches
// the transport. Increments happen on the peer goroutines' delivery
// path, so they must stay allocation-free.
var (
	mMessages = telemetry.NewCounterVec("bwc_runtime_messages_total",
		"Messages delivered by the asynchronous peer runtime, by kind.",
		"kind")
	mRuntimeQueryHops = telemetry.NewHistogram("bwc_runtime_query_hops",
		"Overlay hops traveled per asynchronous (message-forwarded) query.",
		telemetry.HopBuckets())
	mGossipLoss = telemetry.NewCounter("bwc_runtime_gossip_loss_injected_total",
		"Gossip messages skipped by InjectLoss before reaching the transport; the protocol retries them next tick.")
	mPendingReplies = telemetry.NewGauge("bwc_runtime_pending_replies",
		"In-flight query reply-table entries (cluster + node). Bounded: callers drop their entry on timeout and the health monitor sweeps leaked entries after a TTL.")
	mPendSwept = telemetry.NewCounter("bwc_runtime_pending_swept_total",
		"Pending-reply entries removed by the health monitor's TTL sweep; any increment indicates a caller leaked its entry.")
	mConverged = telemetry.NewGauge("bwc_runtime_converged",
		"1 when the gossip version counter has been quiet for the convergence window, else 0 (the readiness signal).")
	mGossipAge = telemetry.NewGauge("bwc_runtime_gossip_age_ticks",
		"Worst per-neighbor gossip-age watermark across local peers, in monitor ticks; a growing value means some link has gone quiet.")
	mTraceEvents = telemetry.NewCounter("bwc_runtime_trace_events_total",
		"Span events minted by traced hops (reported to the trace origin best-effort).")
	mHostsRemoved = telemetry.NewCounter("bwc_runtime_hosts_removed_total",
		"Peers removed by RemoveHost (crash model: overlay spliced, substrate untouched).")
	mHostsEvicted = telemetry.NewCounter("bwc_runtime_hosts_evicted_total",
		"Peers evicted by EvictHost (membership model: substrate repaired incrementally).")
	mPendCanceled = telemetry.NewCounter("bwc_runtime_pending_canceled_total",
		"Pending queries resolved with ErrOriginRemoved because their origin host was removed mid-flight.")
	mMembershipReaped = telemetry.NewCounter("bwc_runtime_membership_reaped_total",
		"Hosts the liveness tracker declared dead and the runtime auto-evicted.")
)
