package runtime

import "bwcluster/internal/telemetry"

// Telemetry for the asynchronous engine: message deliveries by kind
// (mirroring the atomic Traffic counters into the exposition registry,
// labeled by transport.Kind.String, which returns package constants),
// per-query hop distributions, and the InjectLoss skip counter. Drops on
// full inboxes are counted by the transport layer
// (bwc_transport_dropped_total{reason="inbox_full"}); this package only
// counts the losses it injects itself before the message ever reaches
// the transport. Increments happen on the peer goroutines' delivery
// path, so they must stay allocation-free.
var (
	mMessages = telemetry.NewCounterVec("bwc_runtime_messages_total",
		"Messages delivered by the asynchronous peer runtime, by kind.",
		"kind")
	mRuntimeQueryHops = telemetry.NewHistogram("bwc_runtime_query_hops",
		"Overlay hops traveled per asynchronous (message-forwarded) query.",
		telemetry.HopBuckets())
	mGossipLoss = telemetry.NewCounter("bwc_runtime_gossip_loss_injected_total",
		"Gossip messages skipped by InjectLoss before reaching the transport; the protocol retries them next tick.")
)
