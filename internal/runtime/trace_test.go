package runtime

import (
	"testing"
	"time"

	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// walkSpans visits every span in the tree below s (excluding s itself)
// in depth-first order.
func walkSpans(s *telemetry.Span, visit func(*telemetry.Span)) {
	for _, c := range s.Children() {
		visit(c)
		walkSpans(c, visit)
	}
}

// hopHosts returns the "host" attr of every non-gap span under s.
func hopHosts(s *telemetry.Span) []int {
	var hosts []int
	walkSpans(s, func(c *telemetry.Span) {
		if c.Name() == "gap" {
			return
		}
		if h, ok := c.Attr("host").(int); ok {
			hosts = append(hosts, h)
		}
	})
	return hosts
}

// TestTracedQueryAssemblesFullTree: over the lossless in-process
// transport, a traced query reassembles one complete causal tree — one
// span per hop carrying the executing host, plus the origin's return
// -leg span, and no gap spans.
func TestTracedQueryAssemblesFullTree(t *testing.T) {
	tree, _ := buildTree(t, 16, 0.2, 7)
	cfg := testConfig()
	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	nw := convergedNetwork(t, tree, cfg)
	for _, start := range rt.Hosts()[:4] {
		want, err := nw.Query(start, 4, 64)
		if err != nil {
			t.Fatal(err)
		}
		span := telemetry.StartSpan("query")
		res, err := rt.QueryTraced(start, 4, 64, queryWait, span)
		span.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if want.Found() != res.Found() {
			t.Fatalf("start=%d: traced query found=%v, sync found=%v", start, res.Found(), want.Found())
		}
		var gaps, spans int
		walkSpans(span, func(c *telemetry.Span) {
			if c.Name() == "gap" {
				gaps++
			} else {
				spans++
			}
		})
		if gaps != 0 {
			t.Fatalf("start=%d: lossless transport produced %d gap spans", start, gaps)
		}
		// res.Hops forwards = hops 0..res.Hops executed, plus the origin's
		// return-leg span.
		if wantSpans := res.Hops + 2; spans != wantSpans {
			t.Fatalf("start=%d: tree has %d spans, want %d (hops=%d)", start, spans, wantSpans, res.Hops)
		}
		// The hop spans' host attrs must be exactly the forwarding path
		// (plus the origin's return leg).
		hosts := hopHosts(span)
		pathSet := map[int]bool{start: true}
		for _, h := range res.Path {
			pathSet[h] = true
		}
		for _, h := range hosts {
			if !pathSet[h] {
				t.Fatalf("start=%d: span host %d not on query path %v", start, h, res.Path)
			}
		}
		if got := span.Attr("hopEvents"); got != res.Hops+2 {
			t.Fatalf("start=%d: hopEvents attr = %v, want %d", start, got, res.Hops+2)
		}
	}
}

// TestTracedNodeQueryAssemblesTree: the node search propagates and
// reassembles trace context the same way the cluster query does.
func TestTracedNodeQueryAssemblesTree(t *testing.T) {
	tree, _ := buildTree(t, 12, 0.2, 9)
	cfg := testConfig()
	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	hosts := rt.Hosts()
	span := telemetry.StartSpan("nodequery")
	res, err := rt.QueryNodeTraced(hosts[0], []int{hosts[1], hosts[2]}, 64, queryWait, span)
	span.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var spans int
	walkSpans(span, func(c *telemetry.Span) {
		if c.Name() != "gap" {
			spans++
		}
	})
	if wantSpans := res.Hops + 2; spans != wantSpans {
		t.Fatalf("tree has %d spans, want %d (hops=%d)", spans, wantSpans, res.Hops)
	}
}

// TestTracedQueryGapsNotCorruption: when a lossy transport drops trace
// reports (they share the gossip fault schedule under GossipOnly), the
// reassembled tree degrades to explicit gap spans — the query answer
// stays correct and the surviving spans stay causally grouped.
func TestTracedQueryGapsNotCorruption(t *testing.T) {
	tree, _ := buildTree(t, 16, 0.2, 5)
	cfg := testConfig()
	inner := transport.NewChan(inboxCapacity)
	ft, err := transport.NewFault(inner, transport.FaultConfig{Seed: 17, Drop: 0.6, GossipOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewWithTransport(tree, cfg, testTick, ft, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(faultSettleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	nw := convergedNetwork(t, tree, cfg)
	sawGap := false
	for i, start := range rt.Hosts() {
		want, err := nw.Query(start, 4, 64)
		if err != nil {
			t.Fatal(err)
		}
		span := telemetry.StartSpan("query")
		res, err := rt.QueryTraced(start, 4, 64, queryWait, span)
		span.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if want.Found() != res.Found() {
			t.Fatalf("query %d: dropped trace reports changed the answer: sync found=%v async found=%v",
				i, want.Found(), res.Found())
		}
		spans := 0
		walkSpans(span, func(c *telemetry.Span) {
			if c.Name() == "gap" {
				sawGap = true
				if c.Attr("missingSpan") == nil {
					t.Fatalf("query %d: gap span lacks missingSpan attr", i)
				}
				if len(c.Children()) == 0 {
					t.Fatalf("query %d: gap span has no orphaned children", i)
				}
				return
			}
			spans++
		})
		// Never more spans than a complete trace; drops only remove.
		if spans > res.Hops+2 {
			t.Fatalf("query %d: %d spans exceed complete trace size %d", i, spans, res.Hops+2)
		}
	}
	if !sawGap {
		t.Log("no trace report was dropped by this schedule; gap path not exercised")
	}
}

// TestTCPSplitTracedQuery: a traced query over a runtime split across
// two TCP-connected transports yields one reassembled span tree at the
// origin whose hop spans carry the executing hosts from both halves —
// remote hops report their span events across the process boundary.
func TestTCPSplitTracedQuery(t *testing.T) {
	tree, _ := buildTree(t, 12, 0.2, 11)
	cfg := testConfig()
	nw := convergedNetwork(t, tree, cfg)
	all := nw.Hosts()
	var hostsA, hostsB []int
	for i, h := range all {
		if i%2 == 0 {
			hostsA = append(hostsA, h)
		} else {
			hostsB = append(hostsB, h)
		}
	}
	trA, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	for _, h := range hostsB {
		trA.AddRoute(h, trB.Addr())
	}
	for _, h := range hostsA {
		trB.AddRoute(h, trA.Addr())
	}
	rtA, err := NewWithTransport(tree, cfg, testTick, trA, hostsA)
	if err != nil {
		t.Fatal(err)
	}
	rtB, err := NewWithTransport(tree, cfg, testTick, trB, hostsB)
	if err != nil {
		t.Fatal(err)
	}
	rtA.Start()
	rtB.Start()
	defer func() {
		rtA.Stop()
		rtB.Stop()
	}()
	settlePair(t, rtA, rtB)

	isA := make(map[int]bool, len(hostsA))
	for _, h := range hostsA {
		isA[h] = true
	}
	crossed := false
	for _, k := range []int{3, 4, 6} {
		span := telemetry.StartSpan("query")
		res, err := rtA.QueryTraced(hostsA[0], k, 64, queryWait, span)
		span.Finish()
		if err != nil {
			t.Fatal(err)
		}
		hosts := hopHosts(span)
		if len(hosts) == 0 {
			t.Fatalf("k=%d: traced split query produced no hop spans", k)
		}
		onPath := map[int]bool{hostsA[0]: true}
		for _, h := range res.Path {
			onPath[h] = true
		}
		for _, h := range hosts {
			if !onPath[h] {
				t.Fatalf("k=%d: span host %d not on path %v", k, h, res.Path)
			}
			if !isA[h] {
				crossed = true // a remote hop's span event crossed TCP
			}
		}
	}
	if !crossed {
		t.Fatal("no traced query forwarded into the remote half; cross-process span reporting not exercised")
	}
}

// TestPendingSweepDeterministic drives the TTL sweep with synthetic
// logical tick values — the injected clock — and proves the pending
// tables bounded: entries at the TTL boundary stay, entries past it are
// swept, each sweep fires a pend_leak anomaly, and the gauge follows.
func TestPendingSweepDeterministic(t *testing.T) {
	tree, _ := buildTree(t, 6, 0.2, 3)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	fl := telemetry.NewFlightRecorder(16)
	var anomalies []telemetry.FlightEvent
	fl.SetAnomalyHook(func(ev telemetry.FlightEvent, _ []telemetry.FlightEvent) {
		anomalies = append(anomalies, ev)
	})
	rt.SetFlight(fl)

	rt.pendMu.Lock()
	rt.pendCluster[1] = pendingCluster{ch: make(chan clusterOutcome, 1), born: 0}
	rt.pendCluster[2] = pendingCluster{ch: make(chan clusterOutcome, 1), born: 10}
	rt.pendNode[3] = pendingNode{ch: make(chan nodeOutcome, 1), born: 0}
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()

	// At now = TTL the oldest entries are exactly TTL old: not yet leaks.
	rt.sweepPendingAt(pendTTLTicks)
	if n := rt.pendingReplies(); n != 3 {
		t.Fatalf("entries at the TTL boundary were swept: %d left, want 3", n)
	}
	if len(anomalies) != 0 {
		t.Fatalf("anomalies fired at the boundary: %+v", anomalies)
	}

	// One tick later the born=0 entries are leaks; born=10 survives.
	rt.sweepPendingAt(pendTTLTicks + 1)
	if n := rt.pendingReplies(); n != 1 {
		t.Fatalf("sweep left %d entries, want 1", n)
	}
	if len(anomalies) != 2 {
		t.Fatalf("sweep fired %d anomalies, want 2: %+v", len(anomalies), anomalies)
	}
	for _, a := range anomalies {
		if a.Kind != anomalyPendLeak {
			t.Fatalf("anomaly kind = %q, want %q", a.Kind, anomalyPendLeak)
		}
	}

	// Far future: the table drains completely — boundedness.
	rt.sweepPendingAt(3 * pendTTLTicks)
	if n := rt.pendingReplies(); n != 0 {
		t.Fatalf("tables not bounded: %d entries survive arbitrary age", n)
	}
}

// TestHealthConvergenceMonitor drives refreshHealthAt with synthetic
// ticks: convergence flips on after the quiet window and off the moment
// the version counter moves again.
func TestHealthConvergenceMonitor(t *testing.T) {
	tree, _ := buildTree(t, 6, 0.2, 3)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	rt.refreshHealthAt(1)
	if rt.Converged() {
		t.Fatal("converged before the quiet window elapsed")
	}
	rt.refreshHealthAt(convergedQuietTicks)
	if !rt.Converged() {
		t.Fatal("not converged after a full quiet window with no version change")
	}
	rt.version.Add(1)
	rt.refreshHealthAt(convergedQuietTicks + 1)
	if rt.Converged() {
		t.Fatal("still converged right after a version change")
	}
	rt.refreshHealthAt(2*convergedQuietTicks + 1)
	if !rt.Converged() {
		t.Fatal("did not re-converge after a fresh quiet window")
	}
	h := rt.Health()
	if !h.Converged || h.Hosts != 6 {
		t.Fatalf("health summary inconsistent: %+v", h)
	}
}

// TestMonitorRunsWithRuntime: the started monitor advances the logical
// clock and reaches the converged state on a settled network without any
// injected ticks — the production path of the same logic the synthetic
// -tick tests pin down.
func TestMonitorRunsWithRuntime(t *testing.T) {
	tree, _ := buildTree(t, 8, 0.2, 3)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(settleMax)
	for !rt.Converged() {
		if time.Now().After(deadline) {
			t.Fatal("monitor never reported convergence on a settled network")
		}
		time.Sleep(testTick)
	}
	if rt.Ticks() == 0 {
		t.Fatal("monitor clock did not advance")
	}
	if age := rt.Health().MaxGossipAgeTicks; age >= staleTicks {
		t.Fatalf("settled network reports stale gossip age %d", age)
	}
}
