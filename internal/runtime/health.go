package runtime

import (
	"sync/atomic"
	"time"
)

// Overlay health monitoring. The runtime keeps a logical tick counter —
// advanced by a monitor goroutine at the gossip tick rate — and derives
// every health signal from it: per-peer gossip-age watermarks (ticks
// since a neighbor's gossip last arrived), a convergence monitor (the
// version counter quiet for a full watermark window), and the pending
// -reply sweep. Expressing ages and TTLs in ticks instead of wall time
// keeps the logic deterministic under bwc-vet's rules: tests drive
// sweepPendingAt/refreshHealthAt directly with synthetic tick values
// (the injected clock) and never sleep.
const (
	// pendTTLTicks is the sweep TTL for pending-reply entries. Callers
	// always drop their own entry on timeout, so the sweep is defense in
	// depth against leaked entries (e.g. an abandoned caller goroutine);
	// the TTL is far above any sane query timeout in ticks.
	pendTTLTicks = 5000
	// convergedQuietTicks is how long the version counter must stay
	// unchanged before the network counts as converged.
	convergedQuietTicks = 25
	// staleTicks is the gossip-age watermark above which a peer's
	// neighbor link counts as stale (flight-recorded once per episode).
	staleTicks = 500
)

// Health is a point-in-time summary of the runtime's operational state,
// served by bwc-serve's /v1/health.
type Health struct {
	// Hosts is the number of locally hosted peers.
	Hosts int `json:"hosts"`
	// Converged reports whether gossip has been quiet for the
	// convergence window — readiness, answered truthfully.
	Converged bool `json:"converged"`
	// MaxGossipAgeTicks is the worst per-neighbor gossip-age watermark
	// across local peers, in ticks (0 with no peers or no neighbors).
	MaxGossipAgeTicks uint64 `json:"maxGossipAgeTicks"`
	// PendingReplies is the current pending-reply-table population.
	PendingReplies int `json:"pendingReplies"`
	// TraceBacklog is the number of traces awaiting assembly.
	TraceBacklog int `json:"traceBacklog"`
	// Ticks is the monitor's logical clock reading.
	Ticks uint64 `json:"ticks"`
}

// Health returns the current health summary.
func (rt *Runtime) Health() Health {
	now := rt.ticks.Load()
	return Health{
		Hosts:             len(rt.Hosts()),
		Converged:         rt.converged.Load(),
		MaxGossipAgeTicks: rt.maxGossipAge(now),
		PendingReplies:    rt.pendingReplies(),
		TraceBacklog:      rt.collector.Len(),
		Ticks:             now,
	}
}

// Converged reports whether gossip has settled per the convergence
// monitor (version counter quiet for convergedQuietTicks).
func (rt *Runtime) Converged() bool { return rt.converged.Load() }

// pendingReplies returns the pending-reply-table population.
func (rt *Runtime) pendingReplies() int {
	rt.pendMu.Lock()
	defer rt.pendMu.Unlock()
	return len(rt.pendCluster) + len(rt.pendNode)
}

// updatePendingGaugeLocked mirrors the table population into the
// exposition gauge. Caller holds pendMu.
func (rt *Runtime) updatePendingGaugeLocked() {
	mPendingReplies.Set(float64(len(rt.pendCluster) + len(rt.pendNode)))
}

// maxGossipAge returns the worst ticks-since-last-gossip over every
// (local peer, neighbor) link at logical time now.
func (rt *Runtime) maxGossipAge(now uint64) uint64 {
	rt.mu.Lock()
	peers := make([]*peer, 0, len(rt.peers))
	for _, p := range rt.peers {
		peers = append(peers, p)
	}
	rt.mu.Unlock()
	var worst uint64
	for _, p := range peers {
		p.mu.Lock()
		for _, last := range p.lastGossip {
			if age := now - last; age > worst {
				worst = age
			}
		}
		p.mu.Unlock()
	}
	return worst
}

// monitor is the health goroutine: it advances the logical tick clock
// at the gossip tick rate and runs the sweep and gauge refresh on each
// tick, until Stop.
func (rt *Runtime) monitor() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.tick)
	defer ticker.Stop()
	for {
		select {
		case <-rt.monStop:
			return
		case <-ticker.C:
			now := rt.ticks.Add(1)
			rt.sweepPendingAt(now)
			rt.refreshHealthAt(now)
			rt.membershipScanAt(now)
			rt.rollLedgerAt(now)
		}
	}
}

// sweepPendingAt deletes pending-reply entries older than the TTL at
// logical time now. A swept entry is a leak — the submitting caller
// should have dropped it on its own timeout — so each one fires an
// anomaly with the query id. Deterministic: pure function of the
// tables, now, and the TTL.
func (rt *Runtime) sweepPendingAt(now uint64) {
	type leak struct {
		id   uint64
		kind string
	}
	var leaks []leak
	rt.pendMu.Lock()
	for id, e := range rt.pendCluster {
		if now-e.born > pendTTLTicks {
			delete(rt.pendCluster, id)
			leaks = append(leaks, leak{id, "cluster"})
		}
	}
	for id, e := range rt.pendNode {
		if now-e.born > pendTTLTicks {
			delete(rt.pendNode, id)
			leaks = append(leaks, leak{id, "node"})
		}
	}
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()
	for _, l := range leaks {
		mPendSwept.Inc()
		rt.fl().Anomaly(anomalyPendLeak, -1, -1, l.kind+" query id="+itoa(int(l.id))+" swept")
	}
}

// refreshHealthAt recomputes the convergence monitor and the gossip-age
// watermark gauges at logical time now, flight-recording the first tick
// of each staleness episode.
func (rt *Runtime) refreshHealthAt(now uint64) {
	v := rt.Version()
	if v != rt.monLastVersion.Load() {
		rt.monLastVersion.Store(v)
		rt.monLastChange.Store(now)
	}
	quiet := now - rt.monLastChange.Load()
	conv := quiet >= convergedQuietTicks && now >= convergedQuietTicks
	rt.converged.Store(conv)
	if conv {
		mConverged.Set(1)
	} else {
		mConverged.Set(0)
	}
	age := rt.maxGossipAge(now)
	mGossipAge.Set(float64(age))
	stale := age >= staleTicks
	if stale && !rt.monStale.Swap(true) {
		rt.fl().Record(flightStale, -1, -1, "max gossip age "+itoa(int(age))+" ticks")
	} else if !stale {
		rt.monStale.Store(false)
	}
}

// Ticks returns the monitor's logical clock (ticks since Start).
func (rt *Runtime) Ticks() uint64 { return rt.ticks.Load() }

// monitorState is embedded in Runtime: the logical tick clock plus the
// convergence/staleness flags. Updated by the monitor goroutine (and by
// tests injecting synthetic ticks), read by Health callers, hence the
// atomics.
type monitorState struct {
	ticks          atomic.Uint64
	converged      atomic.Bool
	monLastVersion atomic.Int64
	monLastChange  atomic.Uint64
	monStale       atomic.Bool
}
