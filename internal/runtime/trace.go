package runtime

import (
	"time"

	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// Distributed tracing for the asynchronous engine. A traced query
// carries a compact transport.TraceContext on its envelope; every hop
// that handles it mints a span event (host, peer, kind, queue wait,
// processing time) and reports it to the trace's origin as a
// fire-and-forget KindTrace message. The origin's collector reassembles
// whatever arrived into the caller's span tree — a dropped report
// becomes an explicit gap, never a corrupted tree. Untraced operations
// carry a nil context and skip all of this at the cost of one pointer
// comparison per hop.
//
// Trace timestamps are wall-clock reads in an algorithm package; every
// site goes through traceNow below, whose value flows only into trace
// reporting (span events, queue waits), never into protocol state, so
// the determinism suppression is sound.

// traceNow is the single wall-clock read used for trace timestamps.
func traceNow() int64 {
	return time.Now().UnixNano() //bwcvet:allow determinism trace timestamps only; span events never feed algorithm state
}

// mintSpanID returns a span id unique across every host of the network:
// the high 32 bits are the executing host (+1 so host 0 stays nonzero),
// the low 32 bits a per-runtime sequence. Two runtimes never host the
// same peer, so the ranges are disjoint across processes.
func (rt *Runtime) mintSpanID(host int) uint64 {
	return uint64(host+1)<<32 | (rt.spanSeq.Add(1) & 0xffffffff)
}

// SetFlight attaches a flight recorder to the runtime: query hops,
// CRT recomputations, staleness ticks and anomalies (query timeouts,
// settle stalls, swept pending entries) are recorded. A nil recorder
// detaches.
func (rt *Runtime) SetFlight(r *telemetry.FlightRecorder) { rt.flight.Store(r) }

// fl returns the attached flight recorder (nil-safe to use directly).
func (rt *Runtime) fl() *telemetry.FlightRecorder { return rt.flight.Load() }

// Flight event kinds and anomaly kinds recorded by the runtime.
const (
	flightHop       = "hop"
	flightCRT       = "crt_recompute"
	flightStale     = "gossip_stale"
	flightSweep     = "pend_sweep"
	anomalyQueryTO  = "query_timeout"
	anomalySettle   = "fixedpoint_stall"
	anomalyPendLeak = "pend_leak"
)

// hopTrace is the in-flight state of one traced hop on a peer: the
// incoming context plus this hop's identity and timings.
type hopTrace struct {
	ctx     transport.TraceContext
	spanID  uint64
	start   int64
	queueNs int64
	note    string
}

// beginHop starts the span for a traced message delivery (nil for
// untraced messages — the hot-path cost of tracing-off is this check).
func (p *peer) beginHop(m transport.Message) *hopTrace {
	if m.Trace == nil {
		return nil
	}
	now := traceNow()
	return &hopTrace{
		ctx:     *m.Trace,
		spanID:  p.rt.mintSpanID(p.id),
		start:   now,
		queueNs: now - m.Trace.SentUnixNano,
	}
}

// setNote records the hop's outcome (nil-safe).
func (ht *hopTrace) setNote(note string) {
	if ht != nil {
		ht.note = note
	}
}

// next returns the trace context to attach to a message this hop sends
// onward (the forwarded query): the child hop's parent is this span.
func (ht *hopTrace) next() *transport.TraceContext {
	if ht == nil {
		return nil
	}
	return &transport.TraceContext{
		TraceID:      ht.ctx.TraceID,
		ParentSpan:   ht.spanID,
		Hop:          ht.ctx.Hop + 1,
		Origin:       ht.ctx.Origin,
		SentUnixNano: traceNow(),
	}
}

// back returns the trace context to attach to the answer routed to the
// origin, letting the origin time the return leg.
func (ht *hopTrace) back() *transport.TraceContext {
	if ht == nil {
		return nil
	}
	return &transport.TraceContext{
		TraceID:      ht.ctx.TraceID,
		ParentSpan:   ht.spanID,
		Hop:          ht.ctx.Hop + 1,
		Origin:       ht.ctx.Origin,
		SentUnixNano: traceNow(),
	}
}

// finishHop closes a traced hop: it reports the span event to the
// trace's origin (best-effort — a drop becomes a visible gap) and logs
// the hop in the flight ring. kind is the handled message's label.
func (p *peer) finishHop(ht *hopTrace, kind string) {
	if ht == nil {
		return
	}
	ev := &transport.TraceEvent{
		TraceID:       ht.ctx.TraceID,
		SpanID:        ht.spanID,
		ParentSpan:    ht.ctx.ParentSpan,
		Host:          p.id,
		Peer:          -1,
		Hop:           ht.ctx.Hop,
		Kind:          kind,
		StartUnixNano: ht.start,
		DurationNs:    traceNow() - ht.start,
		QueueNs:       ht.queueNs,
		Note:          ht.note,
	}
	p.rt.fl().Record(flightHop, p.id, ht.ctx.Origin, kind+" hop="+itoa(ht.ctx.Hop)+" "+ht.note)
	mTraceEvents.Inc()
	if p.id == ht.ctx.Origin {
		// The origin's own hop needs no wire trip.
		p.rt.addTraceEvent(ev)
		return
	}
	_ = p.rt.tr.TrySend(transport.Message{
		Kind: transport.KindTrace, From: p.id, To: ht.ctx.Origin, Event: ev,
	})
}

// addTraceEvent converts a wire trace event into the collector's form.
// transport owns the wire schema and telemetry cannot import it, so the
// runtime is where the two meet.
func (rt *Runtime) addTraceEvent(ev *transport.TraceEvent) {
	if ev == nil {
		return
	}
	se := telemetry.NewSpanEvent(ev.TraceID, ev.SpanID, ev.ParentSpan)
	se.Host, se.Peer, se.Hop = ev.Host, ev.Peer, ev.Hop
	se.Kind, se.Note = ev.Kind, ev.Note
	se.StartUnixNano, se.DurationNs, se.QueueNs = ev.StartUnixNano, ev.DurationNs, ev.QueueNs
	rt.collector.Add(*se)
}

// noteReturnLeg records the answer's arrival at the origin as a span
// event, closing the causal chain with the return leg's queue time.
func (rt *Runtime) noteReturnLeg(host int, tc *transport.TraceContext, kind string) {
	if tc == nil {
		return
	}
	now := traceNow()
	se := telemetry.NewSpanEvent(tc.TraceID, rt.mintSpanID(host), tc.ParentSpan)
	se.Host, se.Peer, se.Hop = host, -1, tc.Hop
	se.Kind, se.Note = kind, "return"
	se.StartUnixNano, se.QueueNs = now, now-tc.SentUnixNano
	rt.collector.Add(*se)
}

// gatherTrace waits (bounded) for the trace's hop reports to reach the
// collector, then attaches them to span. res.Hops forwards mean
// res.Hops+1 hop events plus the origin's return-leg event when nothing
// was dropped; the wait ends early once that many arrived, and whatever
// is present when the grace budget runs out is assembled — missing
// reports appear as explicit gaps.
//
// The wait loop reads the wall clock purely to bound the grace period;
// like Settle, none of these reads feed algorithm state.
func (rt *Runtime) gatherTrace(span *telemetry.Span, rootSpanID, traceID uint64, hops int) {
	want := hops + 2
	deadline := time.Now().Add(traceGatherGrace(rt.tick)) //bwcvet:allow determinism wall-clock grace bound for trace gathering; never feeds algorithm state
	for rt.collector.Count(traceID) < want {
		if time.Now().After(deadline) { //bwcvet:allow determinism wall-clock grace check; never feeds algorithm state
			break
		}
		time.Sleep(rt.tick / 4)
	}
	events := rt.collector.Take(traceID)
	span.SetAttr("traceID", int64(traceID))
	span.SetAttr("hopEvents", len(events))
	span.SetAttr("hopsExpected", want)
	span.AttachEvents(rootSpanID, events)
}

// traceGatherGrace bounds how long a traced query waits for straggler
// hop reports after its answer arrived: long enough for a report routed
// over TCP to cross, short enough that lossy transports (whose dropped
// reports never come) don't stall the caller.
func traceGatherGrace(tick time.Duration) time.Duration {
	g := 50 * tick
	if g < 20*time.Millisecond {
		g = 20 * time.Millisecond
	}
	if g > time.Second {
		g = time.Second
	}
	return g
}

// itoa is a minimal non-negative int formatter for flight detail
// strings (avoiding fmt on the peer hot path).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	if v < 0 {
		return "-"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
