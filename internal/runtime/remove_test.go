package runtime

import (
	"errors"
	"testing"

	"bwcluster/internal/overlay"
)

// A crashed peer's network heals and re-converges to exactly the state
// the synchronous engine computes after the same removals.
func TestRemoveHostHealsToSyncFixedPoint(t *testing.T) {
	tree, _ := buildTree(t, 16, 0.2, 71)
	cfg := testConfig()

	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}

	victims := []int{3, 7}
	for _, v := range victims {
		if err := rt.RemoveHost(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Hosts()); got != 14 {
		t.Fatalf("hosts = %d, want 14", got)
	}

	// Reference: the synchronous engine after the same removals.
	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range victims {
		if err := nw.RemoveHost(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	for _, x := range nw.Hosts() {
		if want, got := nw.Neighbors(x), rt.Neighbors(x); !equalInts(want, got) {
			t.Fatalf("adjacency mismatch at %d: sync=%v async=%v", x, want, got)
		}
		for _, m := range nw.Neighbors(x) {
			if want, got := nw.AggrNode(x, m), rt.AggrNode(x, m); !equalInts(want, got) {
				t.Fatalf("post-crash aggrNode mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
			if want, got := nw.CRT(x, m), rt.CRT(x, m); !equalInts(want, got) {
				t.Fatalf("post-crash CRT mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
		}
	}

	// Queries on the healed network work and avoid the dead hosts.
	res, err := rt.Query(rt.Hosts()[0], 3, 64, queryWait)
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range res.Cluster {
		for _, v := range victims {
			if member == v {
				t.Fatalf("query returned crashed host %d", v)
			}
		}
	}
}

// Eviction repairs the substrate (predtree.Tree.Remove) and re-derives
// the overlay adjacency from the repaired anchor tree; the survivors
// re-converge to exactly the fixed point the synchronous engine reaches
// on the same repaired substrate.
func TestEvictHostRepairsToSyncFixedPoint(t *testing.T) {
	tree, _ := buildTree(t, 16, 0.2, 73)
	cfg := testConfig()

	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}

	victims := []int{5, 11}
	for _, v := range victims {
		if err := rt.EvictHost(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Hosts()); got != 14 {
		t.Fatalf("hosts = %d, want 14", got)
	}

	// Reference: the synchronous engine on the already-repaired tree.
	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	for _, x := range nw.Hosts() {
		if want, got := nw.Neighbors(x), rt.Neighbors(x); !equalInts(want, got) {
			t.Fatalf("adjacency mismatch at %d: sync=%v async=%v", x, want, got)
		}
		for _, m := range nw.Neighbors(x) {
			if want, got := nw.AggrNode(x, m), rt.AggrNode(x, m); !equalInts(want, got) {
				t.Fatalf("post-evict aggrNode mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
			if want, got := nw.CRT(x, m), rt.CRT(x, m); !equalInts(want, got) {
				t.Fatalf("post-evict CRT mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
		}
	}
	res, err := rt.Query(rt.Hosts()[0], 3, 64, queryWait)
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range res.Cluster {
		for _, v := range victims {
			if member == v {
				t.Fatalf("query returned evicted host %d", v)
			}
		}
	}
}

// Removing a host cancels the pending queries it originated with
// ErrOriginRemoved — the callers fail fast instead of blocking out
// their timeout — while other origins' entries stay pending.
func TestRemoveHostCancelsPendingQueries(t *testing.T) {
	tree, _ := buildTree(t, 8, 0.2, 74)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	hosts := rt.Hosts()
	victim, other := hosts[2], hosts[3]

	ch := make(chan clusterOutcome, 1)
	nch := make(chan nodeOutcome, 1)
	keep := make(chan clusterOutcome, 1)
	rt.pendMu.Lock()
	rt.pendCluster[91] = pendingCluster{ch: ch, origin: victim, born: 0}
	rt.pendNode[92] = pendingNode{ch: nch, origin: victim, born: 0}
	rt.pendCluster[93] = pendingCluster{ch: keep, origin: other, born: 0}
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()

	if err := rt.RemoveHost(victim); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-ch:
		if !errors.Is(out.err, ErrOriginRemoved) {
			t.Fatalf("cluster outcome err = %v, want ErrOriginRemoved", out.err)
		}
	default:
		t.Fatal("victim's pending cluster query was not canceled")
	}
	select {
	case out := <-nch:
		if !errors.Is(out.err, ErrOriginRemoved) {
			t.Fatalf("node outcome err = %v, want ErrOriginRemoved", out.err)
		}
	default:
		t.Fatal("victim's pending node query was not canceled")
	}
	select {
	case out := <-keep:
		t.Fatalf("other origin's query was canceled: %+v", out)
	default:
	}
	if n := rt.pendingReplies(); n != 1 {
		t.Fatalf("pending replies = %d, want 1 (the surviving origin's)", n)
	}
}

func TestRemoveHostValidation(t *testing.T) {
	tree, _ := buildTree(t, 4, 0, 72)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.RemoveHost(99); err == nil {
		t.Error("unknown host should fail")
	}
	hosts := rt.Hosts()
	for _, h := range hosts[:3] {
		if err := rt.RemoveHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.RemoveHost(hosts[3]); err == nil {
		t.Error("removing the last host should fail")
	}
}
