package runtime

import (
	"testing"

	"bwcluster/internal/overlay"
)

// A crashed peer's network heals and re-converges to exactly the state
// the synchronous engine computes after the same removals.
func TestRemoveHostHealsToSyncFixedPoint(t *testing.T) {
	tree, _ := buildTree(t, 16, 0.2, 71)
	cfg := testConfig()

	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}

	victims := []int{3, 7}
	for _, v := range victims {
		if err := rt.RemoveHost(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Hosts()); got != 14 {
		t.Fatalf("hosts = %d, want 14", got)
	}

	// Reference: the synchronous engine after the same removals.
	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range victims {
		if err := nw.RemoveHost(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	for _, x := range nw.Hosts() {
		if want, got := nw.Neighbors(x), rt.Neighbors(x); !equalInts(want, got) {
			t.Fatalf("adjacency mismatch at %d: sync=%v async=%v", x, want, got)
		}
		for _, m := range nw.Neighbors(x) {
			if want, got := nw.AggrNode(x, m), rt.AggrNode(x, m); !equalInts(want, got) {
				t.Fatalf("post-crash aggrNode mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
			if want, got := nw.CRT(x, m), rt.CRT(x, m); !equalInts(want, got) {
				t.Fatalf("post-crash CRT mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
		}
	}

	// Queries on the healed network work and avoid the dead hosts.
	res, err := rt.Query(rt.Hosts()[0], 3, 64, queryWait)
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range res.Cluster {
		for _, v := range victims {
			if member == v {
				t.Fatalf("query returned crashed host %d", v)
			}
		}
	}
}

func TestRemoveHostValidation(t *testing.T) {
	tree, _ := buildTree(t, 4, 0, 72)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.RemoveHost(99); err == nil {
		t.Error("unknown host should fail")
	}
	hosts := rt.Hosts()
	for _, h := range hosts[:3] {
		if err := rt.RemoveHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.RemoveHost(hosts[3]); err == nil {
		t.Error("removing the last host should fail")
	}
}
