package runtime

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"bwcluster/internal/overlay"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// The two-OS-process trace test: the test binary re-executes itself as
// a child process hosting half the peers over a real TCP transport, and
// a traced query submitted in the parent must come back with one
// reassembled span tree whose hop spans carry host ids owned by the
// child process — distributed tracing demonstrated across an actual
// process boundary, not just two transports in one address space.

// Both processes rebuild the same topology independently from these
// pinned parameters (buildTree is deterministic in them), so no
// topology needs to cross the wire.
const (
	splitTreeN     = 12
	splitTreeNoise = 0.2
	splitTreeSeed  = 11
	splitChildEnv  = "BWC_SPLIT_TRACE_CHILD"
	splitParentEnv = "BWC_SPLIT_TRACE_PARENT_ADDR"
)

// splitHosts deals the host list between the processes: even positions
// to the parent, odd to the child.
func splitHosts(all []int) (parent, child []int) {
	for i, h := range all {
		if i%2 == 0 {
			parent = append(parent, h)
		} else {
			child = append(child, h)
		}
	}
	return parent, child
}

// TestSplitProcessChild is not a test of its own: it is the child half
// of TestTwoProcessTracedQuery, run in a re-exec'd copy of the test
// binary. It hosts the odd peers on a TCP transport, announces its
// listen address on stdout, and serves until the parent closes stdin.
func TestSplitProcessChild(t *testing.T) {
	if os.Getenv(splitChildEnv) == "" {
		t.Skip("helper process for TestTwoProcessTracedQuery")
	}
	parentAddr := os.Getenv(splitParentEnv)
	if parentAddr == "" {
		t.Fatalf("%s is set but %s is empty", splitChildEnv, splitParentEnv)
	}
	tree, _ := buildTree(t, splitTreeN, splitTreeNoise, splitTreeSeed)
	cfg := testConfig()
	nw := convergedNetwork(t, tree, cfg)
	parentHosts, childHosts := splitHosts(nw.Hosts())

	tr, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, h := range parentHosts {
		tr.AddRoute(h, parentAddr)
	}
	rt, err := NewWithTransport(tree, cfg, testTick, tr, childHosts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	fmt.Printf("READY %s\n", tr.Addr())
	// Serve until the parent hangs up (or dies — the pipe closes either
	// way, so an orphaned child cannot outlive the test run).
	_, _ = io.Copy(io.Discard, os.Stdin)
}

// matchesFixedPoint is the non-fatal form of assertMatchesFixedPoint,
// restricted to the peers rt hosts, for convergence polling while a
// peer process is still gossiping.
func matchesFixedPoint(nw *overlay.Network, rt *Runtime) bool {
	for _, x := range rt.Hosts() {
		if !equalInts(nw.SelfCRT(x), rt.SelfCRT(x)) {
			return false
		}
		for _, m := range nw.Neighbors(x) {
			if !equalInts(nw.AggrNode(x, m), rt.AggrNode(x, m)) {
				return false
			}
			if !equalInts(nw.CRT(x, m), rt.CRT(x, m)) {
				return false
			}
		}
	}
	return true
}

// TestTwoProcessTracedQuery re-executes the test binary as a child OS
// process hosting half the overlay, settles gossip across the real TCP
// link, and runs traced queries from a parent-hosted peer: every query
// must agree with the synchronous engine and assemble one complete span
// tree, and at least one hop span must carry a host id the CHILD
// process owns — proof that span events were minted in another process
// and reported back over the wire.
func TestTwoProcessTracedQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child OS process")
	}
	tree, _ := buildTree(t, splitTreeN, splitTreeNoise, splitTreeSeed)
	cfg := testConfig()
	nw := convergedNetwork(t, tree, cfg)
	parentHosts, childHosts := splitHosts(nw.Hosts())

	trA, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestSplitProcessChild$")
	cmd.Env = append(os.Environ(), splitChildEnv+"=1", splitParentEnv+"="+trA.Addr())
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		stdin.Close() // EOF tells the child to shut down
		if err := cmd.Wait(); err != nil {
			t.Errorf("child process: %v", err)
		}
	}()

	// The child announces its transport address once its peers gossip.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "READY "); ok {
				addrCh <- addr
				break
			}
		}
		// Drain so the child never blocks writing test output.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	var childAddr string
	select {
	case childAddr = <-addrCh:
	case <-time.After(settleMax):
		t.Fatal("child process never announced READY")
	}

	for _, h := range childHosts {
		trA.AddRoute(h, childAddr)
	}
	rt, err := NewWithTransport(tree, cfg, testTick, trA, parentHosts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	// Settle against the cross-process gossip: poll until this half is
	// at the synchronous fixed point (the child converges symmetrically
	// — gossip is bidirectional and idempotent).
	deadline := time.Now().Add(settleMax)
	for !matchesFixedPoint(nw, rt) {
		if time.Now().After(deadline) {
			t.Fatal("parent half never reached the synchronous fixed point")
		}
		if err := rt.Settle(faultSettleQuiet, settleMax); err != nil {
			t.Fatal(err)
		}
	}

	childSet := make(map[int]bool, len(childHosts))
	for _, h := range childHosts {
		childSet[h] = true
	}
	crossed := false
	for _, k := range []int{3, 4, 6} {
		want, err := nw.Query(parentHosts[0], k, 64)
		if err != nil {
			t.Fatal(err)
		}
		span := telemetry.StartSpan("query")
		res, err := rt.QueryTraced(parentHosts[0], k, 64, queryWait, span)
		span.Finish()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if want.Found() != res.Found() {
			t.Fatalf("k=%d: sync found=%v async found=%v", k, want.Found(), res.Found())
		}
		hosts := hopHosts(span)
		if len(hosts) == 0 {
			t.Fatalf("k=%d: trace assembled no hop spans", k)
		}
		gaps := 0
		walkSpans(span, func(s *telemetry.Span) {
			if s.Name() == "gap" {
				gaps++
			}
		})
		if gaps != 0 {
			t.Fatalf("k=%d: lossless TCP trace has %d gap spans", k, gaps)
		}
		for _, h := range hosts {
			if childSet[h] {
				crossed = true
			}
		}
		t.Logf("k=%d: hops=%d hop-span hosts=%v", k, res.Hops, hosts)
	}
	if !crossed {
		t.Fatal("no hop span carried a child-process host id; the trace never crossed the process boundary")
	}
}
