package runtime

import (
	"testing"
	"time"

	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// settlePair waits until both runtimes report settled with no state
// change slipping in between the two observations: cross-process gossip
// means one side settling can still wake the other. The quiet window is
// the widened fault-test one — frames in flight in socket buffers can
// land state-changing gossip well after the sending side went quiet.
func settlePair(t *testing.T, a, b *Runtime) {
	t.Helper()
	deadline := time.Now().Add(settleMax)
	for {
		if time.Now().After(deadline) {
			t.Fatal("split runtimes did not settle")
		}
		va, vb := a.Version(), b.Version()
		if err := a.Settle(faultSettleQuiet, settleMax); err != nil {
			t.Fatal(err)
		}
		if err := b.Settle(faultSettleQuiet, settleMax); err != nil {
			t.Fatal(err)
		}
		if a.Version() == va && b.Version() == vb {
			return
		}
	}
}

// One protocol network split across two runtimes connected by real TCP
// sockets over loopback: both halves must settle to the synchronous
// fixed point, and queries must forward across the process boundary and
// route their answers back. This is the in-process equivalent of the
// two-process livenet smoke test.
func TestTCPSplitRuntimeMatchesFixedPoint(t *testing.T) {
	tree, _ := buildTree(t, 12, 0.2, 11)
	cfg := testConfig()
	nw := convergedNetwork(t, tree, cfg)
	all := nw.Hosts()
	var hostsA, hostsB []int
	for i, h := range all {
		if i%2 == 0 {
			hostsA = append(hostsA, h)
		} else {
			hostsB = append(hostsB, h)
		}
	}

	trA, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	// Feed the process recorder so a failure leaves a black box for
	// TestMain's BWC_FLIGHT_DUMP artifact.
	trA.SetFlight(telemetry.FlightDefault())
	trB.SetFlight(telemetry.FlightDefault())
	for _, h := range hostsB {
		trA.AddRoute(h, trB.Addr())
	}
	for _, h := range hostsA {
		trB.AddRoute(h, trA.Addr())
	}

	rtA, err := NewWithTransport(tree, cfg, testTick, trA, hostsA)
	if err != nil {
		t.Fatal(err)
	}
	rtB, err := NewWithTransport(tree, cfg, testTick, trB, hostsB)
	if err != nil {
		t.Fatal(err)
	}
	rtA.SetFlight(telemetry.FlightDefault())
	rtB.SetFlight(telemetry.FlightDefault())
	rtA.Start()
	rtB.Start()
	defer func() {
		rtA.Stop()
		rtB.Stop()
	}()
	settlePair(t, rtA, rtB)

	assertMatchesFixedPoint(t, nw, rtA, "tcp-split/A")
	assertMatchesFixedPoint(t, nw, rtB, "tcp-split/B")

	// Queries submitted on either side must agree with the synchronous
	// engine even when they forward through peers hosted by the other
	// process.
	for i, tc := range []struct {
		rt    *Runtime
		start int
		k     int
	}{
		{rtA, hostsA[0], 3},
		{rtB, hostsB[0], 4},
		{rtA, hostsA[len(hostsA)-1], 6},
	} {
		want, err := nw.Query(tc.start, tc.k, 64)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.rt.Query(tc.start, tc.k, 64, queryWait)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if want.Found() != got.Found() {
			t.Fatalf("query %d (start=%d k=%d): sync found=%v async found=%v",
				i, tc.start, tc.k, want.Found(), got.Found())
		}
		if got.Found() && len(got.Path) != got.Hops+1 {
			t.Fatalf("query %d: path %v inconsistent with hops %d", i, got.Path, got.Hops)
		}
	}

	// Node search across the split: set members on both sides.
	set := []int{hostsA[1], hostsB[1]}
	want, err := nw.QueryNode(hostsA[0], set, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rtA.QueryNode(hostsA[0], set, 64, queryWait)
	if err != nil {
		t.Fatal(err)
	}
	if want.Node != got.Node {
		t.Fatalf("split node search: sync=%d async=%d", want.Node, got.Node)
	}
}
