package runtime

import (
	"sync/atomic"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/transport"
)

// Bandwidth-ledger wiring. The runtime owns neither the ledger nor the
// transport's accounting sites; it connects the two (SetLedger forwards
// the ledger to whatever transport the runtime was built over) and
// drives the window clock: the health monitor closes a ledger window
// every ledgerWindowTicks logical ticks, so window boundaries live on
// the same injected clock as every other health signal — tests drive
// rollLedgerAt with synthetic tick values and never sleep, and a
// window's length in seconds is a pure function of the tick duration.

// ledgerWindowTicks is the window length in logical ticks. At the
// default serving tick (1ms) a window is ~50ms of traffic — short
// enough that a bandwidth violation surfaces while the burst that
// caused it is still in the flight ring, long enough that per-window
// rates are not dominated by single messages.
const ledgerWindowTicks = 50

// ledgerState is embedded in Runtime: the attached ledger, swapped
// atomically so the monitor and setters never race.
type ledgerState struct {
	ledger atomic.Pointer[bwledger.Ledger]
}

// SetLedger attaches a bandwidth ledger: the transport accounts every
// delivery into it, and the health monitor closes its windows on the
// logical tick clock. When the runtime's transport (or, for a fault
// injector, its inner transport) does not support a ledger the call
// only installs the window driver. A nil ledger detaches.
func (rt *Runtime) SetLedger(l *bwledger.Ledger) {
	rt.ledgerState.ledger.Store(l)
	if ls, ok := rt.tr.(interface{ SetLedger(*bwledger.Ledger) }); ok {
		ls.SetLedger(l)
	}
}

// Ledger returns the attached bandwidth ledger, nil before SetLedger.
func (rt *Runtime) Ledger() *bwledger.Ledger { return rt.ledgerState.ledger.Load() }

// Transport returns the transport the runtime moves messages over (the
// runtime-owned ChanTransport under New, the caller's transport under
// NewWithTransport).
func (rt *Runtime) Transport() transport.Transport { return rt.tr }

// rollLedgerAt closes the ledger's open window when logical time now
// lands on a window boundary. Deterministic: a pure function of now,
// the window length, and the tick duration.
func (rt *Runtime) rollLedgerAt(now uint64) {
	if now == 0 || now%ledgerWindowTicks != 0 {
		return
	}
	l := rt.ledgerState.ledger.Load()
	if l == nil {
		return
	}
	l.Roll(ledgerWindowTicks * rt.tick.Seconds())
}
