package runtime

import (
	"fmt"
	"sort"

	"bwcluster/internal/overlay"
)

// RemoveHost simulates a peer crash: the peer's goroutine is stopped, the
// overlay splices its neighbors to its lowest-id neighbor (the same
// healing rule as overlay.Network.RemoveHost, so the two engines stay
// comparable), and every survivor's aggregation state is purged — gossip
// rebuilds it within a few ticks. Queries in flight toward the dead peer
// fail over to a not-found reply; queries the dead peer itself originated
// are canceled immediately with ErrOriginRemoved, so their callers fail
// fast rather than blocking out their timeout on an answer that can no
// longer be delivered.
func (rt *Runtime) RemoveHost(h int) error {
	if err := rt.spliceOutHost(h); err != nil {
		return err
	}
	// Unregister from the transport so in-flight forwards blocked toward
	// the dead peer release with an error and fail over.
	_ = rt.tr.Unregister(h)
	rt.cancelPendingFor(h)
	if tk := rt.Membership(); tk != nil {
		_ = tk.NoteFail(h, rt.ticks.Load()) // a removal models a crash
	}
	mHostsRemoved.Inc()
	return nil
}

// spliceOutHost is RemoveHost's locked half: it drops the peer, splices
// its neighbors to the hub, purges survivor aggregation state, and stops
// the dead peer's goroutine — all under rt.mu.
func (rt *Runtime) spliceOutHost(h int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.peers[h]
	if !ok {
		return fmt.Errorf("runtime: unknown host %d", h)
	}
	if len(rt.peers) == 1 {
		return fmt.Errorf("runtime: cannot remove the last host")
	}
	delete(rt.peers, h)

	p.mu.Lock()
	neighbors := append([]int(nil), p.neighbors...)
	p.mu.Unlock()

	now := rt.ticks.Load()
	hub := -1
	for _, nb := range neighbors {
		if _, alive := rt.peers[nb]; alive {
			hub = nb
			break
		}
	}
	for _, nb := range neighbors {
		q, alive := rt.peers[nb]
		if !alive {
			continue
		}
		q.mu.Lock()
		q.neighbors = removeSortedInt(q.neighbors, h)
		// Drop the dead link's gossip-age watermark — it would otherwise
		// age without bound and keep the health gauge pinned stale.
		delete(q.lastGossip, h)
		if nb != hub {
			q.neighbors = insertSorted(q.neighbors, hub)
			q.lastGossip[hub] = now // fresh link; age from now
		}
		q.mu.Unlock()
	}
	if hub >= 0 {
		hp := rt.peers[hub]
		hp.mu.Lock()
		for _, nb := range neighbors {
			if nb == hub {
				continue
			}
			if _, alive := rt.peers[nb]; alive {
				hp.neighbors = insertSorted(hp.neighbors, nb)
				hp.lastGossip[nb] = now
			}
		}
		hp.mu.Unlock()
	}
	// Purge every survivor's aggregation state: entries anywhere may
	// transitively contain the dead host.
	for _, q := range rt.peers {
		q.mu.Lock()
		q.aggrNode = make(map[int][]int, len(q.neighbors))
		q.aggrCRT = make(map[int][]int, len(q.neighbors))
		q.selfCRT = nil
		q.dirty = true
		q.mu.Unlock()
	}
	rt.version.Add(1)

	// Stop the dead peer's goroutine (idempotent with Stop). Closing the
	// channel never blocks, so doing it under rt.mu is safe.
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	return nil
}

// RemovableSubstrate is a substrate that supports host eviction with
// incremental repair (predtree.Tree and predtree.Forest qualify).
type RemovableSubstrate interface {
	overlay.Substrate
	Remove(h int) error
}

// EvictHost removes host h from the membership: unlike RemoveHost — which
// models a crash and leaves the substrate untouched — eviction repairs
// the prediction substrate incrementally (predtree.Tree.Remove), swaps in
// a fresh distance snapshot, and re-derives every surviving peer's
// overlay adjacency from the repaired anchor tree instead of splicing.
// Survivors' aggregation state is purged (it may transitively contain the
// departed host) and gossip rebuilds it; watermarks for surviving links
// keep their ages, new links age from now. Pending queries the evicted
// host originated are canceled with ErrOriginRemoved. It fails if the
// substrate the runtime was built on does not support removal.
func (rt *Runtime) EvictHost(h int) error {
	dyn, ok := rt.sub.(RemovableSubstrate)
	if !ok {
		return fmt.Errorf("runtime: substrate %T does not support eviction", rt.sub)
	}
	if err := rt.repairOutHost(dyn, h); err != nil {
		return err
	}
	_ = rt.tr.Unregister(h)
	rt.cancelPendingFor(h)
	if tk := rt.Membership(); tk != nil {
		// A graceful leave — unless the tracker already declared the host
		// dead (auto-eviction path), in which case this is a no-op error.
		_ = tk.NoteLeave(h, rt.ticks.Load())
	}
	mHostsEvicted.Inc()
	return nil
}

// repairOutHost is EvictHost's locked half: it removes h from the
// substrate, refreshes the distance snapshot, re-derives every survivor's
// adjacency from the repaired anchor tree, and stops the departed peer's
// goroutine — all under rt.mu.
func (rt *Runtime) repairOutHost(dyn RemovableSubstrate, h int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.peers[h]
	if !ok {
		return fmt.Errorf("runtime: unknown host %d", h)
	}
	if len(rt.peers) == 1 {
		return fmt.Errorf("runtime: cannot evict the last host")
	}
	if err := dyn.Remove(h); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	delete(rt.peers, h)

	dist, hosts := rt.sub.DistMatrix()
	tbl := &distTable{dist: dist, index: make(map[int]int, len(hosts))}
	for i, hh := range hosts {
		tbl.index[hh] = i
	}
	rt.table.Store(tbl)

	now := rt.ticks.Load()
	for id, q := range rt.peers {
		nb := rt.sub.AnchorNeighbors(id)
		sort.Ints(nb)
		q.mu.Lock()
		last := make(map[int]uint64, len(nb))
		for _, v := range nb {
			if ts, ok := q.lastGossip[v]; ok {
				last[v] = ts
			} else {
				last[v] = now
			}
		}
		q.neighbors = nb
		q.lastGossip = last
		q.aggrNode = make(map[int][]int, len(nb))
		q.aggrCRT = make(map[int][]int, len(nb))
		q.selfCRT = nil
		q.dirty = true
		q.mu.Unlock()
	}
	rt.version.Add(1)

	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	return nil
}

// cancelPendingFor resolves every pending query originated by host h with
// ErrOriginRemoved. Each entry is deleted under the lock before its
// (buffered) channel is written, so the write can never race a routed
// resolution or block.
func (rt *Runtime) cancelPendingFor(h int) {
	var cls []chan clusterOutcome
	var nds []chan nodeOutcome
	rt.pendMu.Lock()
	for id, e := range rt.pendCluster {
		if e.origin == h {
			delete(rt.pendCluster, id)
			cls = append(cls, e.ch)
		}
	}
	for id, e := range rt.pendNode {
		if e.origin == h {
			delete(rt.pendNode, id)
			nds = append(nds, e.ch)
		}
	}
	rt.updatePendingGaugeLocked()
	rt.pendMu.Unlock()
	if len(cls) == 0 && len(nds) == 0 {
		return
	}
	err := fmt.Errorf("runtime: host %d: %w", h, ErrOriginRemoved)
	for _, ch := range cls {
		ch <- clusterOutcome{err: err}
		mPendCanceled.Inc()
	}
	for _, ch := range nds {
		ch <- nodeOutcome{err: err}
		mPendCanceled.Inc()
	}
}

func removeSortedInt(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return append(xs[:i], xs[i+1:]...)
	}
	return xs
}
