package runtime

import (
	"fmt"
	"sort"
)

// RemoveHost simulates a peer crash: the peer's goroutine is stopped, the
// overlay splices its neighbors to its lowest-id neighbor (the same
// healing rule as overlay.Network.RemoveHost, so the two engines stay
// comparable), and every survivor's aggregation state is purged — gossip
// rebuilds it within a few ticks. Queries in flight toward the dead peer
// fail over to a not-found reply.
func (rt *Runtime) RemoveHost(h int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.peers[h]
	if !ok {
		return fmt.Errorf("runtime: unknown host %d", h)
	}
	if len(rt.peers) == 1 {
		return fmt.Errorf("runtime: cannot remove the last host")
	}
	delete(rt.peers, h)

	p.mu.Lock()
	neighbors := append([]int(nil), p.neighbors...)
	p.mu.Unlock()

	hub := -1
	for _, nb := range neighbors {
		if _, alive := rt.peers[nb]; alive {
			hub = nb
			break
		}
	}
	for _, nb := range neighbors {
		q, alive := rt.peers[nb]
		if !alive {
			continue
		}
		q.mu.Lock()
		q.neighbors = removeSortedInt(q.neighbors, h)
		if nb != hub {
			q.neighbors = insertSorted(q.neighbors, hub)
		}
		q.mu.Unlock()
	}
	if hub >= 0 {
		hp := rt.peers[hub]
		hp.mu.Lock()
		for _, nb := range neighbors {
			if nb == hub {
				continue
			}
			if _, alive := rt.peers[nb]; alive {
				hp.neighbors = insertSorted(hp.neighbors, nb)
			}
		}
		hp.mu.Unlock()
	}
	// Purge every survivor's aggregation state: entries anywhere may
	// transitively contain the dead host.
	for _, q := range rt.peers {
		q.mu.Lock()
		q.aggrNode = make(map[int][]int, len(q.neighbors))
		q.aggrCRT = make(map[int][]int, len(q.neighbors))
		q.selfCRT = nil
		q.dirty = true
		q.mu.Unlock()
	}
	rt.version.Add(1)

	// Stop the dead peer's goroutine (idempotent with Stop). Closing the
	// channel never blocks, so doing it under rt.mu is safe.
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	// Unregister from the transport so in-flight forwards blocked toward
	// the dead peer release with an error and fail over.
	_ = rt.tr.Unregister(h)
	return nil
}

func removeSortedInt(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return append(xs[:i], xs[i+1:]...)
	}
	return xs
}
