package runtime

import (
	"fmt"
	"testing"
	"time"

	"bwcluster/internal/overlay"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

// faultSettleQuiet is longer than the plain settle quiet period: injected
// delays (up to 2ms) and reorder holdbacks can land stale gossip a little
// after its send, and the quiet window must comfortably cover that.
const faultSettleQuiet = 3 * settleQuiet

// convergedNetwork builds the synchronous reference fixed point.
func convergedNetwork(t *testing.T, sub overlay.Substrate, cfg overlay.Config) *overlay.Network {
	t.Helper()
	nw, err := overlay.NewNetwork(sub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	return nw
}

// assertMatchesFixedPoint compares a settled runtime's full gossip state
// (selfCRT, aggrNode, CRT per peer) against the synchronous fixed point,
// restricted to the peers rt hosts.
func assertMatchesFixedPoint(t *testing.T, nw *overlay.Network, rt *Runtime, label string) {
	t.Helper()
	for _, x := range rt.Hosts() {
		if want, got := nw.SelfCRT(x), rt.SelfCRT(x); !equalInts(want, got) {
			t.Fatalf("%s: selfCRT mismatch at %d: sync=%v async=%v", label, x, want, got)
		}
		for _, m := range nw.Neighbors(x) {
			if want, got := nw.AggrNode(x, m), rt.AggrNode(x, m); !equalInts(want, got) {
				t.Fatalf("%s: aggrNode mismatch at x=%d m=%d: sync=%v async=%v", label, x, m, want, got)
			}
			if want, got := nw.CRT(x, m), rt.CRT(x, m); !equalInts(want, got) {
				t.Fatalf("%s: CRT mismatch at x=%d m=%d: sync=%v async=%v", label, x, m, want, got)
			}
		}
	}
}

// The fault matrix: under seeded drop/duplicate/delay/reorder injection
// at increasing loss rates, the runtime must still settle to exactly the
// synchronous fixed point, and settled queries must agree with the
// synchronous engine — gossip is periodic and idempotent, so deterministic
// faults only delay convergence.
func TestFaultMatrixMatchesFixedPoint(t *testing.T) {
	for _, drop := range []float64{0, 0.1, 0.3} {
		t.Run(fmt.Sprintf("drop=%v", drop), func(t *testing.T) {
			tree, _ := buildTree(t, 18, 0.2, 2)
			cfg := testConfig()
			nw := convergedNetwork(t, tree, cfg)

			ft, err := transport.NewFault(transport.NewChan(0), transport.FaultConfig{
				Seed:       42,
				Drop:       drop,
				Duplicate:  0.1,
				Delay:      0.1,
				MaxDelay:   2 * time.Millisecond,
				Reorder:    0.1,
				GossipOnly: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Feed the process recorder so a failure leaves a black box
			// for TestMain's BWC_FLIGHT_DUMP artifact.
			ft.SetFlight(telemetry.FlightDefault())
			rt, err := NewWithTransport(tree, cfg, testTick, ft, nil)
			if err != nil {
				t.Fatal(err)
			}
			rt.SetFlight(telemetry.FlightDefault())
			rt.Start()
			defer func() {
				rt.Stop()
				ft.Close()
			}()
			if err := rt.Settle(faultSettleQuiet, settleMax); err != nil {
				t.Fatal(err)
			}
			assertMatchesFixedPoint(t, nw, rt, fmt.Sprintf("drop=%v", drop))

			hosts := rt.Hosts()
			for i, k := range []int{2, 4, 6} {
				start := hosts[(i*5)%len(hosts)]
				want, err := nw.Query(start, k, 64)
				if err != nil {
					t.Fatal(err)
				}
				got, err := rt.Query(start, k, 64, queryWait)
				if err != nil {
					t.Fatal(err)
				}
				if want.Found() != got.Found() {
					t.Fatalf("start=%d k=%d: sync found=%v async found=%v", start, k, want.Found(), got.Found())
				}
			}

			// Pending-reply boundedness: every answered query removed its
			// table entry, and a TTL sweep far in the logical future finds
			// nothing left to reap — the tables cannot leak under faults.
			if n := rt.pendingReplies(); n != 0 {
				t.Fatalf("drop=%v: %d pending-reply entries leaked after %d queries", drop, n, 3)
			}
			rt.sweepPendingAt(rt.Ticks() + 10*pendTTLTicks)
			if n := rt.pendingReplies(); n != 0 {
				t.Fatalf("drop=%v: sweep found %d entries the callers should have dropped", drop, n)
			}
		})
	}
}

// Partition-and-heal: an island is cut off for a window of the global
// send sequence; after the window closes, gossip must re-converge to the
// full-network fixed point and queries must route across the healed cut.
func TestPartitionHealsToFixedPoint(t *testing.T) {
	tree, _ := buildTree(t, 15, 0.2, 9)
	cfg := testConfig()
	nw := convergedNetwork(t, tree, cfg)
	hosts := nw.Hosts()

	// Cut off roughly a third of the peers. The window is expressed in
	// transport sends: at one tick per millisecond every peer offers two
	// messages per neighbor, so the window opens immediately and heals
	// after a few dozen ticks — well before Settle's quiet period can
	// elapse, which guarantees Settle only returns on post-heal state.
	island := hosts[:len(hosts)/3]
	ft, err := transport.NewFault(transport.NewChan(0), transport.FaultConfig{
		Seed:       7,
		Drop:       0.1,
		GossipOnly: true,
		Partitions: []transport.Partition{{After: 100, Until: 1500, Island: island}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ft.SetFlight(telemetry.FlightDefault())
	rt, err := NewWithTransport(tree, cfg, testTick, ft, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetFlight(telemetry.FlightDefault())
	rt.Start()
	defer func() {
		rt.Stop()
		ft.Close()
	}()
	if err := rt.Settle(faultSettleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	if ft.Sends() <= 1500 {
		t.Fatalf("settled after only %d sends; partition window never closed", ft.Sends())
	}
	assertMatchesFixedPoint(t, nw, rt, "partition-healed")

	// A query starting inside the former island must route across the
	// healed cut exactly like the synchronous engine.
	start := island[0]
	want, err := nw.Query(start, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Query(start, 4, 64, queryWait)
	if err != nil {
		t.Fatal(err)
	}
	if want.Found() != got.Found() {
		t.Fatalf("post-heal query: sync found=%v async found=%v", want.Found(), got.Found())
	}
}

// The explicit-transport constructor validates its host subset.
func TestNewWithTransportValidation(t *testing.T) {
	tree, _ := buildTree(t, 6, 0, 12)
	tr := transport.NewChan(0)
	defer tr.Close()
	if _, err := NewWithTransport(tree, testConfig(), testTick, tr, []int{999}); err == nil {
		t.Error("foreign local host should fail")
	}
	rt, err := NewWithTransport(tree, testConfig(), testTick, tr, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Hosts()); got != 2 {
		t.Fatalf("hosts = %d, want 2", got)
	}
	// The ids are now registered on the shared transport.
	if _, err := tr.Register(0); err == nil {
		t.Error("transport should already hold peer 0")
	}
	rt.Stop()
	// Stop unregistered them but did not close the caller's transport.
	if _, err := tr.Register(0); err != nil {
		t.Errorf("register after Stop: %v", err)
	}
}
