package runtime

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/predtree"
	"bwcluster/internal/testutil"
)

const (
	testTick    = time.Millisecond
	settleQuiet = 40 * time.Millisecond
	settleMax   = 15 * time.Second
	queryWait   = 5 * time.Second
)

func testConfig() overlay.Config {
	return overlay.Config{NCut: 4, Classes: []float64{1, 2, 4, 8, 16, 32, 64}}
}

func buildTree(t testing.TB, n int, noise float64, seed int64) (*predtree.Tree, *metric.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	o := testutil.NoisyTreeMetric(n, noise, rng)
	tree, err := predtree.Build(o, 100, predtree.SearchFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tree, o
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, testConfig(), testTick); err == nil {
		t.Error("nil tree should fail")
	}
	tree, _ := buildTree(t, 5, 0, 1)
	if _, err := New(tree, overlay.Config{NCut: 0, Classes: []float64{1}}, testTick); err == nil {
		t.Error("invalid config should fail")
	}
}

// The async runtime must settle to exactly the fixed point the synchronous
// engine computes: same aggrNode sets, same CRTs, peer by peer.
func TestAsyncMatchesSynchronousFixedPoint(t *testing.T) {
	tree, _ := buildTree(t, 18, 0.2, 2)
	cfg := testConfig()

	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}

	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}

	for _, x := range nw.Hosts() {
		wantSelf := nw.SelfCRT(x)
		gotSelf := rt.SelfCRT(x)
		if !equalInts(wantSelf, gotSelf) {
			t.Fatalf("selfCRT mismatch at %d: sync=%v async=%v", x, wantSelf, gotSelf)
		}
		for _, m := range nw.Neighbors(x) {
			if want, got := nw.AggrNode(x, m), rt.AggrNode(x, m); !equalInts(want, got) {
				t.Fatalf("aggrNode mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
			if want, got := nw.CRT(x, m), rt.CRT(x, m); !equalInts(want, got) {
				t.Fatalf("CRT mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
		}
	}
}

// Settled async queries agree with the synchronous engine on
// found/not-found, and their clusters satisfy the snapped constraint.
func TestAsyncQueryAgreesWithSync(t *testing.T) {
	tree, _ := buildTree(t, 20, 0.2, 3)
	cfg := testConfig()
	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	hosts := rt.Hosts()
	for trial := 0; trial < 25; trial++ {
		start := hosts[rng.Intn(len(hosts))]
		k := 2 + rng.Intn(6)
		l := cfg.Classes[rng.Intn(len(cfg.Classes))]
		syncRes, err := nw.Query(start, k, l)
		if err != nil {
			t.Fatal(err)
		}
		asyncRes, err := rt.Query(start, k, l, queryWait)
		if err != nil {
			t.Fatal(err)
		}
		if syncRes.Found() != asyncRes.Found() {
			t.Fatalf("start=%d k=%d l=%v: sync found=%v async found=%v",
				start, k, l, syncRes.Found(), asyncRes.Found())
		}
		if len(asyncRes.Path) != asyncRes.Hops+1 || asyncRes.Path[0] != start {
			t.Fatalf("async path %v inconsistent with hops %d, start %d",
				asyncRes.Path, asyncRes.Hops, start)
		}
		if asyncRes.Found() {
			for i := 0; i < len(asyncRes.Cluster); i++ {
				for j := i + 1; j < len(asyncRes.Cluster); j++ {
					d := rt.predDist(asyncRes.Cluster[i], asyncRes.Cluster[j])
					if d > asyncRes.Class*(1+1e-9) {
						t.Fatalf("cluster pair at %v > class %v", d, asyncRes.Class)
					}
				}
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	tree, _ := buildTree(t, 8, 0, 5)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if _, err := rt.Query(999, 3, 8, queryWait); err == nil {
		t.Error("unknown start should fail")
	}
	if _, err := rt.Query(0, 1, 8, queryWait); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := rt.Query(0, 3, 0.01, queryWait); !errors.Is(err, overlay.ErrNoClass) {
		t.Errorf("too-tight constraint err = %v, want ErrNoClass", err)
	}
}

// Churn: peers joining a live network re-converge to the correct state.
func TestAddHostMidFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := testutil.RandomTreeMetric(14, rng)
	initial := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tree, err := predtree.Build(o, 100, predtree.SearchFull, initial)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{8, 9, 10, 11, 12, 13} {
		if err := rt.AddHost(h, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Hosts()); got != 14 {
		t.Fatalf("hosts = %d, want 14", got)
	}

	// The grown network must equal a synchronous network built from the
	// same tree.
	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	for _, x := range nw.Hosts() {
		for _, m := range nw.Neighbors(x) {
			if want, got := nw.AggrNode(x, m), rt.AggrNode(x, m); !equalInts(want, got) {
				t.Fatalf("post-churn aggrNode mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
		}
	}
	if err := rt.AddHost(8, o); err == nil {
		t.Error("re-adding host should fail")
	}
}

func TestStopTerminatesQuickly(t *testing.T) {
	tree, _ := buildTree(t, 10, 0.1, 7)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	done := make(chan struct{})
	go func() {
		rt.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
	// Second Stop is a no-op.
	rt.Stop()
}

func TestAccessorsUnknownPeer(t *testing.T) {
	tree, _ := buildTree(t, 5, 0, 8)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	if rt.AggrNode(99, 0) != nil || rt.CRT(99, 0) != nil ||
		rt.SelfCRT(99) != nil || rt.Neighbors(99) != nil {
		t.Error("unknown peer accessors should be nil")
	}
}

// The settled async node search returns exactly what the synchronous
// engine computes (both hill-climb deterministically over the same
// state), and validates its inputs.
func TestAsyncNodeQueryAgreesWithSync(t *testing.T) {
	tree, _ := buildTree(t, 18, 0.2, 73)
	cfg := testConfig()
	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(74))
	hosts := rt.Hosts()
	for trial := 0; trial < 20; trial++ {
		setSize := 1 + rng.Intn(3)
		perm := rng.Perm(len(hosts))
		set := make([]int, setSize)
		for i := range set {
			set[i] = hosts[perm[i]]
		}
		start := hosts[perm[setSize]]
		l := cfg.Classes[rng.Intn(len(cfg.Classes))]
		want, err := nw.QueryNode(start, set, l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.QueryNode(start, set, l, queryWait)
		if err != nil {
			t.Fatal(err)
		}
		if want.Node != got.Node || want.Hops != got.Hops {
			t.Fatalf("trial %d: sync=(%d,%d hops) async=(%d,%d hops)",
				trial, want.Node, want.Hops, got.Node, got.Hops)
		}
	}
	if _, err := rt.QueryNode(999, []int{hosts[0]}, 8, queryWait); err == nil {
		t.Error("unknown start should fail")
	}
	if _, err := rt.QueryNode(hosts[0], nil, 8, queryWait); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := rt.QueryNode(hosts[0], []int{999}, 8, queryWait); err == nil {
		t.Error("unknown member should fail")
	}
	if _, err := rt.QueryNode(hosts[0], []int{hosts[1]}, -1, queryWait); err == nil {
		t.Error("negative constraint should fail")
	}
}

// Failure injection: with 30% of gossip messages dropped, the protocol
// still settles to the exact synchronous fixed point — gossip is periodic
// and idempotent, so loss only delays convergence.
func TestSettlesUnderMessageLoss(t *testing.T) {
	tree, _ := buildTree(t, 15, 0.2, 9)
	cfg := testConfig()
	nw, err := overlay.NewNetwork(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Converge(0); err != nil {
		t.Fatal(err)
	}
	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InjectLoss(0.3); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(3*settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	for _, x := range nw.Hosts() {
		for _, m := range nw.Neighbors(x) {
			if want, got := nw.AggrNode(x, m), rt.AggrNode(x, m); !equalInts(want, got) {
				t.Fatalf("lossy aggrNode mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
			if want, got := nw.CRT(x, m), rt.CRT(x, m); !equalInts(want, got) {
				t.Fatalf("lossy CRT mismatch at x=%d m=%d: sync=%v async=%v", x, m, want, got)
			}
		}
	}
}

func TestInjectLossValidation(t *testing.T) {
	tree, _ := buildTree(t, 5, 0, 10)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InjectLoss(-0.1); err == nil {
		t.Error("negative rate should fail")
	}
	if err := rt.InjectLoss(1); err == nil {
		t.Error("rate 1 should fail")
	}
	if err := rt.InjectLoss(0); err != nil {
		t.Error(err)
	}
}

// Stress: many concurrent queries (cluster and node searches mixed) on a
// live network, under the race detector via `go test -race`.
func TestConcurrentQueries(t *testing.T) {
	tree, _ := buildTree(t, 20, 0.2, 77)
	cfg := testConfig()
	rt, err := New(tree, cfg, testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	hosts := rt.Hosts()
	const workers = 16
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 12; i++ {
				start := hosts[rng.Intn(len(hosts))]
				l := cfg.Classes[rng.Intn(len(cfg.Classes))]
				if i%2 == 0 {
					if _, err := rt.Query(start, 2+rng.Intn(5), l, queryWait); err != nil {
						errs <- err
						return
					}
				} else {
					set := []int{hosts[rng.Intn(len(hosts))]}
					if _, err := rt.QueryNode(start, set, l, queryWait); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrafficCounters(t *testing.T) {
	tree, _ := buildTree(t, 8, 0, 75)
	rt, err := New(tree, testConfig(), testTick)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		t.Fatal(err)
	}
	ni, crt, q := rt.Traffic()
	if ni <= 0 || crt <= 0 {
		t.Errorf("no gossip traffic recorded: nodeInfo=%d crt=%d", ni, crt)
	}
	if q != 0 {
		t.Errorf("query traffic before any query: %d", q)
	}
	if _, err := rt.Query(rt.Hosts()[0], 3, 64, queryWait); err != nil {
		t.Fatal(err)
	}
	if _, _, q := rt.Traffic(); q <= 0 {
		t.Error("query traffic not recorded")
	}
}

func TestInsertSorted(t *testing.T) {
	got := insertSorted([]int{1, 3, 5}, 4)
	want := []int{1, 3, 4, 5}
	if !equalInts(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if got := insertSorted([]int{1, 3}, 3); !equalInts(got, []int{1, 3}) {
		t.Errorf("duplicate insert: %v", got)
	}
	if got := insertSorted(nil, 2); !equalInts(got, []int{2}) {
		t.Errorf("empty insert: %v", got)
	}
}
