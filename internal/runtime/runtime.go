// Package runtime runs the clustering protocol asynchronously: one
// goroutine per peer, periodic (tick-driven) execution of Algorithms 2
// and 3, and message-forwarded queries (Algorithm 4). It exists to
// validate that the protocol — whose correctness the synchronous engine
// in package overlay establishes against Theorems 3.2/3.3 — also
// converges under real message passing with arbitrary interleavings,
// and to power the livenet example.
//
// All message movement goes through a transport.Transport. By default
// (New) the runtime owns an in-process channel transport that preserves
// the original inbox behavior exactly; NewWithTransport accepts any
// other backend — the deterministic fault injector, real TCP sockets —
// and an optional subset of peers to host locally, which is what allows
// one protocol network to span several processes.
//
// Both engines share the same deterministic propagation rules, so a
// settled Runtime reaches exactly the fixed point overlay.Network
// computes; the cross-engine test asserts that equality over every
// transport backend.
package runtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bwcluster/internal/cluster"
	"bwcluster/internal/lockcheck"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
	"bwcluster/internal/telemetry"
	"bwcluster/internal/transport"
)

const (
	defaultTick   = 2 * time.Millisecond
	inboxCapacity = transport.DefaultInboxCapacity
	replyCapacity = 1
)

// distTable is an immutable snapshot of the predicted distances; Runtime
// swaps in a new snapshot atomically when membership changes.
type distTable struct {
	dist  *metric.Matrix
	index map[int]int
}

// Runtime hosts asynchronous peers on top of a message transport. In the
// default single-process configuration it hosts every substrate host; a
// runtime built with NewWithTransport may host only a subset, with the
// rest reached through the transport's routing (e.g. TCP peers in
// another process).
type Runtime struct {
	cfg     overlay.Config
	sub     overlay.Substrate
	tick    time.Duration
	tr      transport.Transport
	ownsTr  bool // Close the transport on Stop
	table   atomic.Pointer[distTable]
	version atomic.Int64 // bumped on every peer state change

	lossRate atomic.Uint64 // gossip loss probability, stored as math.Float64bits

	// Traffic counters (delivered messages by kind).
	nodeInfoMsgs atomic.Int64
	crtMsgs      atomic.Int64
	queryMsgs    atomic.Int64

	// Pending query replies, keyed by the query id minted at submission.
	// Answers arrive as routed messages (transport.KindResult and
	// KindNodeResult) at the origin peer, which resolves them here;
	// duplicate or late answers find no entry and are dropped. Entries
	// record their birth tick so the health monitor's sweep can prove
	// the tables bounded even if a caller leaks its entry.
	qid         atomic.Uint64
	pendMu      lockcheck.Mutex
	pendCluster map[uint64]pendingCluster // guarded by pendMu
	pendNode    map[uint64]pendingNode    // guarded by pendMu

	// Distributed tracing: per-runtime span-id sequence and the origin
	// -side collector reassembling reported hop events.
	spanSeq   atomic.Uint64
	collector *telemetry.TraceCollector

	// Optional liveness tracking: set by AttachMembership, scanned by
	// the monitor each tick.
	memb atomic.Pointer[memberScan]

	// Observability plumbing: the optional flight recorder, the
	// optional bandwidth ledger, and the health monitor's logical
	// clock + flags.
	flight atomic.Pointer[telemetry.FlightRecorder]
	ledgerState
	monitorState
	monStop chan struct{}
	monOnce sync.Once

	mu    lockcheck.Mutex
	peers map[int]*peer // guarded by mu
	wg    sync.WaitGroup
}

// ErrOriginRemoved is the failure pending queries resolve with when
// their origin host is removed (crash or eviction) while the answer is
// still in flight: the reply would be routed to a dead peer, so the
// caller fails fast instead of blocking until its timeout.
var ErrOriginRemoved = errors.New("runtime: origin host removed")

// clusterOutcome is what a pending cluster query resolves with: an
// answer, or an error when the query was canceled (origin removed).
type clusterOutcome struct {
	res overlay.Result
	err error
}

// nodeOutcome is the node-search counterpart of clusterOutcome.
type nodeOutcome struct {
	res overlay.NodeResult
	err error
}

// pendingCluster is one in-flight cluster query's reply slot.
type pendingCluster struct {
	ch     chan clusterOutcome
	origin int    // start host the answer is routed to
	born   uint64 // monitor tick at submission
}

// pendingNode is one in-flight node search's reply slot.
type pendingNode struct {
	ch     chan nodeOutcome
	origin int    // start host the answer is routed to
	born   uint64 // monitor tick at submission
}

// Traffic reports how many messages of each kind have been delivered
// (gossip counts exclude injected losses).
func (rt *Runtime) Traffic() (nodeInfo, crt, queries int64) {
	return rt.nodeInfoMsgs.Load(), rt.crtMsgs.Load(), rt.queryMsgs.Load()
}

// InjectLoss makes every gossip message (not queries) get dropped with
// the given probability — failure injection for testing convergence
// under unreliable delivery. The protocol is periodic and idempotent, so
// any rate below 1 only delays settling. Safe to call at any time. For
// reproducible loss schedules use NewWithTransport with a
// transport.FaultTransport instead.
func (rt *Runtime) InjectLoss(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("runtime: loss rate must be in [0,1), got %v", rate)
	}
	rt.lossRate.Store(math.Float64bits(rate))
	return nil
}

type peer struct {
	id        int
	rt        *Runtime
	neighbors []int
	recv      <-chan transport.Message
	stop      chan struct{}
	done      chan struct{}
	lossRng   *rand.Rand // per-peer source for loss injection

	mu         lockcheck.Mutex
	aggrNode   map[int][]int
	aggrCRT    map[int][]int
	selfCRT    []int
	dirty      bool           // V_x changed since selfCRT was computed
	lastGossip map[int]uint64 // guarded by mu; monitor tick of each neighbor's last gossip
}

// New builds a runtime hosting every host in the substrate (a prediction
// tree or forest) over an internally owned in-process channel transport.
// Start must be called to launch the peers; Stop shuts them down.
func New(sub overlay.Substrate, cfg overlay.Config, tick time.Duration) (*Runtime, error) {
	return NewWithTransport(sub, cfg, tick, nil, nil)
}

// NewWithTransport builds a runtime over an explicit transport, hosting
// only the given local hosts (nil: every substrate host). A nil tr means
// an internally owned channel transport. The substrate must describe the
// whole network — including hosts served by other processes — so every
// runtime derives the same overlay topology; remote peers are reached
// through the transport's routing. The runtime closes tr on Stop only
// when it created it.
func NewWithTransport(sub overlay.Substrate, cfg overlay.Config, tick time.Duration, tr transport.Transport, local []int) (*Runtime, error) {
	if sub == nil || sub.Len() == 0 {
		return nil, fmt.Errorf("runtime: empty prediction substrate")
	}
	if tick <= 0 {
		tick = defaultTick
	}
	// Reuse overlay's validation by constructing a throwaway network.
	if _, err := overlay.NewNetwork(sub, cfg); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	dist, hosts := sub.DistMatrix()
	owns := false
	if tr == nil {
		tr = transport.NewChan(inboxCapacity)
		owns = true
	}
	rt := &Runtime{
		cfg:         cfg,
		sub:         sub,
		tick:        tick,
		tr:          tr,
		ownsTr:      owns,
		peers:       make(map[int]*peer, len(hosts)),
		pendCluster: make(map[uint64]pendingCluster),
		pendNode:    make(map[uint64]pendingNode),
		collector:   telemetry.NewTraceCollector(0),
		monStop:     make(chan struct{}),
	}
	// Class names feed the lockcheck build's shadow order graph; they
	// mirror the lock classes bwc-vet's static lockorder check derives.
	rt.mu.SetClass("runtime.Runtime.mu")
	rt.pendMu.SetClass("runtime.Runtime.pendMu")
	tbl := &distTable{dist: dist, index: make(map[int]int, len(hosts))}
	for i, h := range hosts {
		tbl.index[h] = i
	}
	rt.table.Store(tbl)
	if local == nil {
		local = hosts
	}
	for _, h := range local {
		if _, ok := tbl.index[h]; !ok {
			rt.closeOwnedTransport()
			return nil, fmt.Errorf("runtime: local host %d is not in the substrate", h)
		}
		nb := sub.AnchorNeighbors(h)
		sort.Ints(nb)
		p, err := rt.newPeer(h, nb)
		if err != nil {
			rt.closeOwnedTransport()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		rt.peers[h] = p
	}
	return rt, nil
}

// closeOwnedTransport closes the transport if this runtime created it
// (constructor error paths and Stop).
func (rt *Runtime) closeOwnedTransport() {
	if rt.ownsTr {
		_ = rt.tr.Close()
	}
}

// newPeer registers id with the transport and builds its peer.
func (rt *Runtime) newPeer(id int, neighbors []int) (*peer, error) {
	recv, err := rt.tr.Register(id)
	if err != nil {
		return nil, err
	}
	last := make(map[int]uint64, len(neighbors))
	now := rt.ticks.Load()
	for _, v := range neighbors {
		last[v] = now // watermark ages start at peer creation, not tick zero
	}
	p := &peer{
		id:         id,
		rt:         rt,
		neighbors:  neighbors,
		recv:       recv,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		lossRng:    rand.New(rand.NewSource(int64(id)*7919 + 1)),
		aggrNode:   make(map[int][]int, len(neighbors)),
		aggrCRT:    make(map[int][]int, len(neighbors)),
		dirty:      true,
		lastGossip: last,
	}
	p.mu.SetClass("runtime.peer.mu")
	return p, nil
}

// Start launches every peer goroutine and the health monitor.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, p := range rt.peers {
		rt.wg.Add(1)
		go p.run()
	}
	rt.wg.Add(1)
	go rt.monitor()
}

// Stop signals all peers to exit, unregisters them from the transport
// (releasing any in-flight forward blocked toward a full inbox), waits
// for every runtime goroutine, and closes the transport if this runtime
// owns it.
func (rt *Runtime) Stop() {
	rt.monOnce.Do(func() { close(rt.monStop) })
	rt.mu.Lock()
	ids := make([]int, 0, len(rt.peers))
	for id, p := range rt.peers {
		ids = append(ids, id)
		select {
		case <-p.stop:
		default:
			close(p.stop)
		}
	}
	rt.mu.Unlock()
	for _, id := range ids {
		_ = rt.tr.Unregister(id)
	}
	rt.wg.Wait()
	rt.closeOwnedTransport()
}

// Hosts returns the current locally hosted peer ids, sorted.
func (rt *Runtime) Hosts() []int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]int, 0, len(rt.peers))
	for id := range rt.peers {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Version returns the global state-change counter; it stops moving once
// gossip has settled.
func (rt *Runtime) Version() int64 { return rt.version.Load() }

// Settle blocks until no peer state has changed for the quiet duration,
// or fails after timeout.
//
// Settle is a wall-clock wait by design: it observes real time to decide
// when gossip has converged, and its only outputs are nil or a timeout
// error — no algorithm state derives from these clock reads, so the
// determinism suppressions below are sound.
func (rt *Runtime) Settle(quiet, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //bwcvet:allow determinism wall-clock wait deadline; never feeds algorithm state
	last := rt.Version()
	lastChange := time.Now() //bwcvet:allow determinism wall-clock quiet-period tracking; never feeds algorithm state
	for {
		time.Sleep(rt.tick)
		if v := rt.Version(); v != last {
			last = v
			lastChange = time.Now() //bwcvet:allow determinism wall-clock quiet-period tracking; never feeds algorithm state
		} else if time.Since(lastChange) >= quiet { //bwcvet:allow determinism wall-clock quiet-period check; never feeds algorithm state
			return nil
		}
		if time.Now().After(deadline) { //bwcvet:allow determinism wall-clock timeout check; never feeds algorithm state
			rt.fl().Anomaly(anomalySettle, -1, -1, fmt.Sprintf("no fixed point within %v", timeout))
			return fmt.Errorf("runtime: gossip did not settle within %v", timeout)
		}
	}
}

func (rt *Runtime) predDist(a, b int) float64 {
	tbl := rt.table.Load()
	return tbl.dist.Dist(tbl.index[a], tbl.index[b])
}

func (rt *Runtime) peerByID(id int) *peer {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.peers[id]
}

// sendAsync delivers m from a runtime-tracked helper goroutine so a full
// destination inbox can never stall a peer main loop. The blocking send
// releases when the destination unregisters or the transport closes;
// Stop unregisters every local peer before waiting, so these helpers
// always terminate.
func (rt *Runtime) sendAsync(m transport.Message) {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		_ = rt.tr.Send(m)
	}()
}

// run is the peer main loop: handle delivered messages, gossip on ticks.
func (p *peer) run() {
	defer p.rt.wg.Done()
	defer close(p.done)
	ticker := time.NewTicker(p.rt.tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case m := <-p.recv:
			p.handle(m)
		case <-ticker.C:
			p.gossip()
		}
	}
}

func (p *peer) handle(m transport.Message) {
	mMessages.Inc(m.Kind.String())
	switch m.Kind {
	case transport.KindNodeInfo:
		p.rt.nodeInfoMsgs.Add(1)
		now := p.rt.ticks.Load()
		p.mu.Lock()
		p.lastGossip[m.From] = now
		if !equalInts(p.aggrNode[m.From], m.Nodes) {
			p.aggrNode[m.From] = m.Nodes
			p.dirty = true
			p.rt.version.Add(1)
		}
		p.mu.Unlock()
	case transport.KindCRT:
		p.rt.crtMsgs.Add(1)
		now := p.rt.ticks.Load()
		p.mu.Lock()
		p.lastGossip[m.From] = now
		if !equalInts(p.aggrCRT[m.From], m.CRT) {
			p.aggrCRT[m.From] = m.CRT
			p.rt.version.Add(1)
		}
		p.mu.Unlock()
	case transport.KindQuery:
		if m.Query != nil {
			p.rt.queryMsgs.Add(1)
			p.handleQuery(m.Query, p.beginHop(m))
		}
	case transport.KindNodeQuery:
		if m.NodeQuery != nil {
			p.rt.queryMsgs.Add(1)
			p.handleNodeQuery(m.NodeQuery, p.beginHop(m))
		}
	case transport.KindResult:
		p.rt.noteReturnLeg(p.id, m.Trace, "result")
		p.rt.resolveCluster(m.Result)
	case transport.KindNodeResult:
		p.rt.noteReturnLeg(p.id, m.Trace, "noderesult")
		p.rt.resolveNode(m.NodeResult)
	case transport.KindTrace:
		p.rt.addTraceEvent(m.Event)
	case transport.KindSnapshot:
		// Snapshot streams are addressed to fleet replicator endpoints
		// (internal/fleet), never to protocol peers; a chunk that reaches
		// a peer anyway is a routing bug, not protocol state to act on.
		p.rt.fl().Record(flightStale, p.id, m.From, "snapshot chunk addressed to a protocol peer; dropped")
	}
}

// gossip sends this round's Algorithm 2 and 3 messages to every neighbor,
// recomputing the local CRT first if the clustering space changed.
// Deliveries are best-effort (TrySend): gossip is periodic, so a message
// dropped on a full inbox — counted by the transport — is simply retried
// next tick.
func (p *peer) gossip() {
	p.mu.Lock()
	if p.dirty {
		p.recomputeSelfCRTLocked()
		p.dirty = false
	}
	outs := make([]transport.Message, 0, 2*len(p.neighbors))
	for _, x := range p.neighbors {
		outs = append(outs,
			transport.Message{Kind: transport.KindNodeInfo, From: p.id, To: x, Nodes: p.propNodeLocked(x)},
			transport.Message{Kind: transport.KindCRT, From: p.id, To: x, CRT: p.propCRTLocked(x)},
		)
	}
	p.mu.Unlock()
	loss := math.Float64frombits(p.rt.lossRate.Load())
	for _, m := range outs {
		if loss > 0 && p.lossRng.Float64() < loss {
			mGossipLoss.Inc()
			continue // injected loss; retried next tick
		}
		_ = p.rt.tr.TrySend(m)
	}
}

// propNodeLocked mirrors overlay's Algorithm 2 message computation.
func (p *peer) propNodeLocked(x int) []int {
	cand := map[int]bool{p.id: true}
	for _, v := range p.neighbors {
		if v == x {
			continue
		}
		for _, u := range p.aggrNode[v] {
			cand[u] = true
		}
	}
	delete(cand, x)
	ids := make([]int, 0, len(cand))
	for u := range cand {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := p.rt.predDist(x, ids[i]), p.rt.predDist(x, ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > p.rt.cfg.NCut {
		ids = ids[:p.rt.cfg.NCut]
	}
	sort.Ints(ids)
	return ids
}

// propCRTLocked mirrors overlay's Algorithm 3 message computation.
func (p *peer) propCRTLocked(x int) []int {
	crt := make([]int, len(p.rt.cfg.Classes))
	copy(crt, p.selfCRT)
	for _, v := range p.neighbors {
		if v == x {
			continue
		}
		for ci, size := range p.aggrCRT[v] {
			if size > crt[ci] {
				crt[ci] = size
			}
		}
	}
	return crt
}

func (p *peer) spaceLocked() ([]int, *metric.Matrix) {
	set := map[int]bool{p.id: true}
	for _, v := range p.neighbors {
		for _, u := range p.aggrNode[v] {
			set[u] = true
		}
	}
	hosts := make([]int, 0, len(set))
	for u := range set {
		hosts = append(hosts, u)
	}
	sort.Ints(hosts)
	sub := metric.FromFunc(len(hosts), func(i, j int) float64 {
		return p.rt.predDist(hosts[i], hosts[j])
	})
	return hosts, sub
}

func (p *peer) recomputeSelfCRTLocked() {
	_, space := p.spaceLocked()
	ix, err := cluster.NewIndex(space)
	if err != nil {
		return // cannot happen: space is never nil
	}
	selfCRT := make([]int, len(p.rt.cfg.Classes))
	for ci, l := range p.rt.cfg.Classes {
		selfCRT[ci] = ix.MaxSize(l)
	}
	if !equalInts(p.selfCRT, selfCRT) {
		p.selfCRT = selfCRT
		p.rt.version.Add(1)
		// Gossip-triggered work, visible in the black box: the peer's
		// clustering space changed enough to move its CRT.
		p.rt.fl().Record(flightCRT, p.id, -1, "")
	}
}

// AggrNode returns a copy of peer x's aggregated node info from neighbor
// m, nil for unknown peers.
func (rt *Runtime) AggrNode(x, m int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.aggrNode[m]))
	copy(out, p.aggrNode[m])
	return out
}

// CRT returns a copy of peer x's per-class CRT entry for neighbor m.
func (rt *Runtime) CRT(x, m int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.aggrCRT[m]))
	copy(out, p.aggrCRT[m])
	return out
}

// SelfCRT returns a copy of peer x's own per-class max cluster sizes.
func (rt *Runtime) SelfCRT(x int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.selfCRT))
	copy(out, p.selfCRT)
	return out
}

// Neighbors returns peer x's overlay neighbors.
func (rt *Runtime) Neighbors(x int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.neighbors))
	copy(out, p.neighbors)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
