// Package runtime runs the clustering protocol asynchronously: one
// goroutine per peer, gossip over buffered channels, periodic
// (tick-driven) execution of Algorithms 2 and 3, and message-forwarded
// queries (Algorithm 4). It exists to validate that the protocol — whose
// correctness the synchronous engine in package overlay establishes
// against Theorems 3.2/3.3 — also converges under real message passing
// with arbitrary interleavings, and to power the livenet example.
//
// Both engines share the same deterministic propagation rules, so a
// settled Runtime reaches exactly the fixed point overlay.Network
// computes; the cross-engine test asserts that equality.
package runtime

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bwcluster/internal/cluster"
	"bwcluster/internal/metric"
	"bwcluster/internal/overlay"
)

const (
	defaultTick   = 2 * time.Millisecond
	inboxCapacity = 256
	replyCapacity = 1
)

type msgKind int

const (
	kindNodeInfo msgKind = iota + 1
	kindCRT
	kindQuery
	kindNodeQuery
)

type message struct {
	kind      msgKind
	from      int
	nodes     []int
	crt       []int
	query     *queryMsg
	nodeQuery *nodeQueryMsg
}

type queryMsg struct {
	k        int
	classIdx int
	classL   float64
	prev     int
	hops     int
	path     []int
	reply    chan overlay.Result
}

// distTable is an immutable snapshot of the predicted distances; Runtime
// swaps in a new snapshot atomically when membership changes.
type distTable struct {
	dist  *metric.Matrix
	index map[int]int
}

// Runtime hosts the asynchronous peers.
type Runtime struct {
	cfg     overlay.Config
	sub     overlay.Substrate
	tick    time.Duration
	table   atomic.Pointer[distTable]
	version atomic.Int64 // bumped on every peer state change

	lossRate atomic.Uint64 // gossip loss probability, stored as math.Float64bits

	// Traffic counters (delivered messages by kind).
	nodeInfoMsgs atomic.Int64
	crtMsgs      atomic.Int64
	queryMsgs    atomic.Int64

	mu    sync.Mutex
	peers map[int]*peer // guarded by mu
	wg    sync.WaitGroup
}

// Traffic reports how many messages of each kind have been delivered
// (gossip counts exclude injected losses).
func (rt *Runtime) Traffic() (nodeInfo, crt, queries int64) {
	return rt.nodeInfoMsgs.Load(), rt.crtMsgs.Load(), rt.queryMsgs.Load()
}

// InjectLoss makes every gossip message (not queries) get dropped with
// the given probability — failure injection for testing convergence
// under unreliable delivery. The protocol is periodic and idempotent, so
// any rate below 1 only delays settling. Safe to call at any time.
func (rt *Runtime) InjectLoss(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("runtime: loss rate must be in [0,1), got %v", rate)
	}
	rt.lossRate.Store(math.Float64bits(rate))
	return nil
}

type peer struct {
	id        int
	rt        *Runtime
	neighbors []int
	inbox     chan message
	stop      chan struct{}
	done      chan struct{}
	lossRng   *rand.Rand // per-peer source for loss injection

	mu       sync.Mutex
	aggrNode map[int][]int
	aggrCRT  map[int][]int
	selfCRT  []int
	dirty    bool // V_x changed since selfCRT was computed
}

// New builds a runtime for every host in the substrate (a prediction tree
// or forest). Start must be called to launch the peers; Stop shuts them
// down.
func New(sub overlay.Substrate, cfg overlay.Config, tick time.Duration) (*Runtime, error) {
	if sub == nil || sub.Len() == 0 {
		return nil, fmt.Errorf("runtime: empty prediction substrate")
	}
	if tick <= 0 {
		tick = defaultTick
	}
	// Reuse overlay's validation by constructing a throwaway network.
	if _, err := overlay.NewNetwork(sub, cfg); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	dist, hosts := sub.DistMatrix()
	rt := &Runtime{
		cfg:   cfg,
		sub:   sub,
		tick:  tick,
		peers: make(map[int]*peer, len(hosts)),
	}
	tbl := &distTable{dist: dist, index: make(map[int]int, len(hosts))}
	for i, h := range hosts {
		tbl.index[h] = i
	}
	rt.table.Store(tbl)
	for _, h := range hosts {
		nb := sub.AnchorNeighbors(h)
		sort.Ints(nb)
		rt.peers[h] = rt.newPeer(h, nb)
	}
	return rt, nil
}

func (rt *Runtime) newPeer(id int, neighbors []int) *peer {
	return &peer{
		id:        id,
		rt:        rt,
		neighbors: neighbors,
		inbox:     make(chan message, inboxCapacity),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		lossRng:   rand.New(rand.NewSource(int64(id)*7919 + 1)),
		aggrNode:  make(map[int][]int, len(neighbors)),
		aggrCRT:   make(map[int][]int, len(neighbors)),
		dirty:     true,
	}
}

// Start launches every peer goroutine.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, p := range rt.peers {
		rt.wg.Add(1)
		go p.run()
	}
}

// Stop signals all peers to exit and waits for them.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	for _, p := range rt.peers {
		select {
		case <-p.stop:
		default:
			close(p.stop)
		}
	}
	rt.mu.Unlock()
	rt.wg.Wait()
}

// Hosts returns the current peer ids, sorted.
func (rt *Runtime) Hosts() []int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]int, 0, len(rt.peers))
	for id := range rt.peers {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Version returns the global state-change counter; it stops moving once
// gossip has settled.
func (rt *Runtime) Version() int64 { return rt.version.Load() }

// Settle blocks until no peer state has changed for the quiet duration,
// or fails after timeout.
//
// Settle is a wall-clock wait by design: it observes real time to decide
// when gossip has converged, and its only outputs are nil or a timeout
// error — no algorithm state derives from these clock reads, so the
// determinism suppressions below are sound.
func (rt *Runtime) Settle(quiet, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //bwcvet:allow determinism wall-clock wait deadline; never feeds algorithm state
	last := rt.Version()
	lastChange := time.Now() //bwcvet:allow determinism wall-clock quiet-period tracking; never feeds algorithm state
	for {
		time.Sleep(rt.tick)
		if v := rt.Version(); v != last {
			last = v
			lastChange = time.Now() //bwcvet:allow determinism wall-clock quiet-period tracking; never feeds algorithm state
		} else if time.Since(lastChange) >= quiet { //bwcvet:allow determinism wall-clock quiet-period check; never feeds algorithm state
			return nil
		}
		if time.Now().After(deadline) { //bwcvet:allow determinism wall-clock timeout check; never feeds algorithm state
			return fmt.Errorf("runtime: gossip did not settle within %v", timeout)
		}
	}
}

func (rt *Runtime) predDist(a, b int) float64 {
	tbl := rt.table.Load()
	return tbl.dist.Dist(tbl.index[a], tbl.index[b])
}

func (rt *Runtime) peerByID(id int) *peer {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.peers[id]
}

// run is the peer main loop: handle inbox messages, gossip on ticks.
func (p *peer) run() {
	defer p.rt.wg.Done()
	defer close(p.done)
	ticker := time.NewTicker(p.rt.tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case m := <-p.inbox:
			p.handle(m)
		case <-ticker.C:
			p.gossip()
		}
	}
}

func (p *peer) handle(m message) {
	switch m.kind {
	case kindNodeInfo:
		p.rt.nodeInfoMsgs.Add(1)
		mMessages.Inc(kindLabelNodeInfo)
		p.mu.Lock()
		if !equalInts(p.aggrNode[m.from], m.nodes) {
			p.aggrNode[m.from] = m.nodes
			p.dirty = true
			p.rt.version.Add(1)
		}
		p.mu.Unlock()
	case kindCRT:
		p.rt.crtMsgs.Add(1)
		mMessages.Inc(kindLabelCRT)
		p.mu.Lock()
		if !equalInts(p.aggrCRT[m.from], m.crt) {
			p.aggrCRT[m.from] = m.crt
			p.rt.version.Add(1)
		}
		p.mu.Unlock()
	case kindQuery:
		p.rt.queryMsgs.Add(1)
		mMessages.Inc(kindLabelQuery)
		p.handleQuery(m.query)
	case kindNodeQuery:
		p.rt.queryMsgs.Add(1)
		mMessages.Inc(kindLabelNodeQuery)
		p.handleNodeQuery(m.nodeQuery)
	}
}

// gossip sends this round's Algorithm 2 and 3 messages to every neighbor,
// recomputing the local CRT first if the clustering space changed.
// Deliveries use non-blocking sends: gossip is periodic, so a dropped
// message is simply retried next tick.
func (p *peer) gossip() {
	p.mu.Lock()
	if p.dirty {
		p.recomputeSelfCRTLocked()
		p.dirty = false
	}
	type outMsg struct {
		to  int
		msg message
	}
	outs := make([]outMsg, 0, 2*len(p.neighbors))
	for _, x := range p.neighbors {
		outs = append(outs,
			outMsg{to: x, msg: message{kind: kindNodeInfo, from: p.id, nodes: p.propNodeLocked(x)}},
			outMsg{to: x, msg: message{kind: kindCRT, from: p.id, crt: p.propCRTLocked(x)}},
		)
	}
	p.mu.Unlock()
	loss := math.Float64frombits(p.rt.lossRate.Load())
	for _, o := range outs {
		if loss > 0 && p.lossRng.Float64() < loss {
			continue // injected loss; retried next tick
		}
		if q := p.rt.peerByID(o.to); q != nil {
			select {
			case q.inbox <- o.msg:
			default: // inbox full; retry next tick
			}
		}
	}
}

// propNodeLocked mirrors overlay's Algorithm 2 message computation.
func (p *peer) propNodeLocked(x int) []int {
	cand := map[int]bool{p.id: true}
	for _, v := range p.neighbors {
		if v == x {
			continue
		}
		for _, u := range p.aggrNode[v] {
			cand[u] = true
		}
	}
	delete(cand, x)
	ids := make([]int, 0, len(cand))
	for u := range cand {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := p.rt.predDist(x, ids[i]), p.rt.predDist(x, ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > p.rt.cfg.NCut {
		ids = ids[:p.rt.cfg.NCut]
	}
	sort.Ints(ids)
	return ids
}

// propCRTLocked mirrors overlay's Algorithm 3 message computation.
func (p *peer) propCRTLocked(x int) []int {
	crt := make([]int, len(p.rt.cfg.Classes))
	copy(crt, p.selfCRT)
	for _, v := range p.neighbors {
		if v == x {
			continue
		}
		for ci, size := range p.aggrCRT[v] {
			if size > crt[ci] {
				crt[ci] = size
			}
		}
	}
	return crt
}

func (p *peer) spaceLocked() ([]int, *metric.Matrix) {
	set := map[int]bool{p.id: true}
	for _, v := range p.neighbors {
		for _, u := range p.aggrNode[v] {
			set[u] = true
		}
	}
	hosts := make([]int, 0, len(set))
	for u := range set {
		hosts = append(hosts, u)
	}
	sort.Ints(hosts)
	sub := metric.FromFunc(len(hosts), func(i, j int) float64 {
		return p.rt.predDist(hosts[i], hosts[j])
	})
	return hosts, sub
}

func (p *peer) recomputeSelfCRTLocked() {
	_, space := p.spaceLocked()
	ix, err := cluster.NewIndex(space)
	if err != nil {
		return // cannot happen: space is never nil
	}
	selfCRT := make([]int, len(p.rt.cfg.Classes))
	for ci, l := range p.rt.cfg.Classes {
		selfCRT[ci] = ix.MaxSize(l)
	}
	if !equalInts(p.selfCRT, selfCRT) {
		p.selfCRT = selfCRT
		p.rt.version.Add(1)
	}
}

// AggrNode returns a copy of peer x's aggregated node info from neighbor
// m, nil for unknown peers.
func (rt *Runtime) AggrNode(x, m int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.aggrNode[m]))
	copy(out, p.aggrNode[m])
	return out
}

// CRT returns a copy of peer x's per-class CRT entry for neighbor m.
func (rt *Runtime) CRT(x, m int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.aggrCRT[m]))
	copy(out, p.aggrCRT[m])
	return out
}

// SelfCRT returns a copy of peer x's own per-class max cluster sizes.
func (rt *Runtime) SelfCRT(x int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.selfCRT))
	copy(out, p.selfCRT)
	return out
}

// Neighbors returns peer x's overlay neighbors.
func (rt *Runtime) Neighbors(x int) []int {
	p := rt.peerByID(x)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.neighbors))
	copy(out, p.neighbors)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
