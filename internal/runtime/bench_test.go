package runtime

import (
	"testing"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/telemetry"
)

// benchRuntime builds and settles a 32-host runtime for the query
// benchmarks; the settle cost is paid once, outside the timed region.
// The gossip tick is 10x the test default so background gossip wakeups
// perturb the per-query measurement as little as possible.
func benchRuntime(b *testing.B) *Runtime {
	b.Helper()
	tree, _ := buildTree(b, 32, 0.2, 9)
	rt, err := New(tree, testConfig(), 10*testTick)
	if err != nil {
		b.Fatal(err)
	}
	rt.Start()
	b.Cleanup(rt.Stop)
	if err := rt.Settle(settleQuiet, settleMax); err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkQueryTracingOff measures one routed query on a settled
// runtime with no trace context attached — the per-query cost the
// tracing layer adds when disabled is a nil span check at each hop and
// two header bytes on each lean frame, and this benchmark against its
// TracingOn sibling in BENCH_results.json is the evidence it stays
// under the 5% budget.
func BenchmarkQueryTracingOff(b *testing.B) {
	rt := benchRuntime(b)
	hosts := rt.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Query(hosts[i%len(hosts)], 4, 64, queryWait); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTracingOn is the same routed query with a live trace
// context: every hop mints a span, reports a KindTrace event to the
// origin, and the origin reassembles the causal tree before returning.
// The delta against BenchmarkQueryTracingOff is the full cost of
// tracing a query.
func BenchmarkQueryTracingOn(b *testing.B) {
	rt := benchRuntime(b)
	hosts := rt.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span := telemetry.StartSpan("query")
		if _, err := rt.QueryTraced(hosts[i%len(hosts)], 4, 64, queryWait, span); err != nil {
			b.Fatal(err)
		}
		span.Finish()
	}
}

// BenchmarkQueryLedgerOff measures one routed query with no bandwidth
// ledger attached — the disabled-path cost is a nil atomic load per
// delivered frame. Against its LedgerOn sibling in BENCH_results.json
// this is the evidence that per-link accounting stays within the 3%
// budget (bwc-benchjson invariant 5).
func BenchmarkQueryLedgerOff(b *testing.B) {
	rt := benchRuntime(b)
	hosts := rt.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Query(hosts[i%len(hosts)], 4, 64, queryWait); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryLedgerOn is the same routed query with a live bandwidth
// ledger: every delivered frame takes the ledger's RLock, resolves its
// (link, kind) cell and adds its byte count. The delta against
// BenchmarkQueryLedgerOff is the full per-query cost of bandwidth
// accounting.
func BenchmarkQueryLedgerOn(b *testing.B) {
	rt := benchRuntime(b)
	rt.SetLedger(bwledger.New(bwledger.Config{}))
	hosts := rt.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Query(hosts[i%len(hosts)], 4, 64, queryWait); err != nil {
			b.Fatal(err)
		}
	}
}
