package runtime

import (
	"sort"

	"bwcluster/internal/membership"
)

// memberScan bundles the attached liveness tracker with the monitor
// goroutine's scratch buffers. The scratch is owned by whoever calls
// membershipScanAt — the monitor goroutine in production, the test
// driving synthetic ticks otherwise — and is reused across scans so the
// steady-state path stays allocation-light.
type memberScan struct {
	tracker   *membership.Tracker
	autoEvict bool

	minAge map[int]uint64 // scratch: host -> freshest observed gossip age
	hosts  []int          // scratch: scan order (sorted for determinism)
	ages   []uint64       // scratch: parallel to hosts
	dead   []int          // scratch: hosts declared dead this scan
}

// AttachMembership wires a liveness tracker to the runtime: every
// current local peer joins immediately, and from then on the health
// monitor feeds the tracker one gossip-age scan per tick. A host whose
// freshest observation crosses the suspect threshold is declared
// suspect; past the death threshold it is declared dead and — when
// autoEvict is set — evicted from the runtime on the spot (EvictHost
// when the substrate supports incremental repair, RemoveHost otherwise).
// AddHost, EvictHost and RemoveHost keep the tracker posted about
// explicit joins, leaves and crashes.
func (rt *Runtime) AttachMembership(cfg membership.Config, autoEvict bool) (*membership.Tracker, error) {
	tk, err := membership.New(cfg)
	if err != nil {
		return nil, err
	}
	now := rt.ticks.Load()
	for _, h := range rt.Hosts() {
		if err := tk.NoteJoin(h, now); err != nil {
			return nil, err
		}
	}
	rt.memb.Store(&memberScan{
		tracker:   tk,
		autoEvict: autoEvict,
		minAge:    make(map[int]uint64),
	})
	return tk, nil
}

// Membership returns the attached tracker, nil before AttachMembership.
func (rt *Runtime) Membership() *membership.Tracker {
	if ms := rt.memb.Load(); ms != nil {
		return ms.tracker
	}
	return nil
}

// membershipScanAt runs one liveness scan at logical time now: for every
// host any local peer gossips with, take the freshest (minimum) gossip
// age across observers — a host is only in trouble when NO ONE has heard
// from it — feed the scan to the tracker, and drive repair for hosts it
// declares dead. Runs on the monitor goroutine; tests call it directly
// with synthetic ticks.
func (rt *Runtime) membershipScanAt(now uint64) {
	ms := rt.memb.Load()
	if ms == nil {
		return
	}
	for k := range ms.minAge {
		delete(ms.minAge, k)
	}
	rt.mu.Lock()
	peers := make([]*peer, 0, len(rt.peers))
	for _, p := range rt.peers {
		peers = append(peers, p)
	}
	rt.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		for v, last := range p.lastGossip {
			var age uint64
			if now > last {
				age = now - last
			}
			if cur, ok := ms.minAge[v]; !ok || age < cur {
				ms.minAge[v] = age
			}
		}
		p.mu.Unlock()
	}
	ms.hosts = ms.hosts[:0]
	for v := range ms.minAge {
		ms.hosts = append(ms.hosts, v)
	}
	sort.Ints(ms.hosts)
	ms.ages = ms.ages[:0]
	for _, v := range ms.hosts {
		ms.ages = append(ms.ages, ms.minAge[v])
	}
	ms.dead = ms.tracker.Observe(now, ms.hosts, ms.ages, ms.dead[:0])
	if !ms.autoEvict {
		return
	}
	for _, h := range ms.dead {
		mMembershipReaped.Inc()
		if _, ok := rt.sub.(RemovableSubstrate); ok {
			_ = rt.EvictHost(h)
		} else {
			_ = rt.RemoveHost(h)
		}
	}
}
