package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"bwcluster/internal/metric"
)

// LatencyConfig parameterizes the synthetic latency generator. The model
// is additive on a region tree: regions form a random tree whose edges
// carry propagation delays, every host adds its own access delay, and
// lat(u,v) = access(u) + treeDist(region(u), region(v)) + access(v) — an
// exact (additive) tree metric, matching the paper's observation that
// latency, like bandwidth, embeds well into tree metric spaces.
// Per-pair multiplicative noise controls the deviation from treeness.
type LatencyConfig struct {
	// N is the number of hosts.
	N int
	// Regions is the number of metro regions (tree vertices).
	Regions int
	// AccessMsLo/Hi bound each host's access (last-mile) delay.
	AccessMsLo, AccessMsHi float64
	// EdgeMsLo/Hi bound each region-tree edge's propagation delay.
	EdgeMsLo, EdgeMsHi float64
	// NoiseSigma is the lognormal sigma of per-pair noise; 0 keeps the
	// metric an exact tree metric.
	NoiseSigma float64
}

// DefaultLatencyConfig returns a 150-host, 6-region wide-area scenario
// with mild measurement noise.
func DefaultLatencyConfig() LatencyConfig {
	return LatencyConfig{
		N:          150,
		Regions:    6,
		AccessMsLo: 1,
		AccessMsHi: 12,
		EdgeMsLo:   8,
		EdgeMsHi:   60,
		NoiseSigma: 0.08,
	}
}

func (c LatencyConfig) validate() error {
	if c.N < 1 {
		return fmt.Errorf("dataset: latency N must be >= 1, got %d", c.N)
	}
	if c.Regions < 1 {
		return fmt.Errorf("dataset: latency Regions must be >= 1, got %d", c.Regions)
	}
	if c.AccessMsLo <= 0 || c.AccessMsHi < c.AccessMsLo {
		return fmt.Errorf("dataset: need 0 < AccessMsLo <= AccessMsHi")
	}
	if c.EdgeMsLo < 0 || c.EdgeMsHi < c.EdgeMsLo {
		return fmt.Errorf("dataset: need 0 <= EdgeMsLo <= EdgeMsHi")
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("dataset: NoiseSigma must be >= 0")
	}
	return nil
}

// GenerateLatency builds a symmetric latency matrix (milliseconds).
// Deterministic for a given rng.
func GenerateLatency(cfg LatencyConfig, rng *rand.Rand) (*metric.Matrix, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("dataset: nil rng")
	}
	// Random region tree with edge delays; distances via root paths.
	parent := make([]int, cfg.Regions)
	edge := make([]float64, cfg.Regions)
	depthMs := make([]float64, cfg.Regions)
	depth := make([]int, cfg.Regions)
	parent[0] = -1
	for r := 1; r < cfg.Regions; r++ {
		parent[r] = rng.Intn(r)
		edge[r] = cfg.EdgeMsLo + (cfg.EdgeMsHi-cfg.EdgeMsLo)*rng.Float64()
		depthMs[r] = depthMs[parent[r]] + edge[r]
		depth[r] = depth[parent[r]] + 1
	}
	regionDist := func(a, b int) float64 {
		d := 0.0
		for depth[a] > depth[b] {
			d += edge[a]
			a = parent[a]
		}
		for depth[b] > depth[a] {
			d += edge[b]
			b = parent[b]
		}
		for a != b {
			d += edge[a] + edge[b]
			a = parent[a]
			b = parent[b]
		}
		return d
	}
	region := make([]int, cfg.N)
	access := make([]float64, cfg.N)
	for h := 0; h < cfg.N; h++ {
		region[h] = rng.Intn(cfg.Regions)
		access[h] = cfg.AccessMsLo + (cfg.AccessMsHi-cfg.AccessMsLo)*rng.Float64()
	}
	lat := metric.NewMatrix(cfg.N)
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			ms := access[u] + access[v] + regionDist(region[u], region[v])
			ms *= math.Exp(cfg.NoiseSigma * rng.NormFloat64())
			if ms < 0.05 {
				ms = 0.05
			}
			lat.Set(u, v, ms)
		}
	}
	return lat, nil
}
