package dataset

import (
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"bwcluster/internal/metric"
)

// WriteCSV writes the full symmetric matrix as CSV rows of floats (one row
// per host, n columns), the interchange format of the bwc-gen tool.
func WriteCSV(w io.Writer, m *metric.Matrix) error {
	cw := csv.NewWriter(w)
	n := m.N()
	row := make([]string, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row[j] = strconv.FormatFloat(m.Dist(i, j), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a square CSV matrix, symmetrizing it by averaging
// (i,j)/(j,i) — the same preprocessing the paper applies to asymmetric
// measurements.
func ReadCSV(r io.Reader) (*metric.Matrix, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	n := len(records)
	if n == 0 {
		return nil, fmt.Errorf("dataset: empty csv matrix")
	}
	raw := make([][]float64, n)
	for i, rec := range records {
		if len(rec) != n {
			return nil, fmt.Errorf("dataset: csv row %d has %d columns, want %d", i, len(rec), n)
		}
		raw[i] = make([]float64, n)
		for j, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv cell (%d,%d) %q: %w", i, j, cell, err)
			}
			raw[i][j] = v
		}
	}
	m, err := metric.Symmetrize(raw)
	if err != nil {
		return nil, fmt.Errorf("dataset: symmetrize csv: %w", err)
	}
	return m, nil
}

// gobMatrix is the serialized form of a matrix.
type gobMatrix struct {
	N      int
	Values []float64 // upper triangle, row-major
}

// WriteGob writes the matrix in a compact binary format.
func WriteGob(w io.Writer, m *metric.Matrix) error {
	g := gobMatrix{N: m.N(), Values: m.Values()}
	if err := gob.NewEncoder(w).Encode(g); err != nil {
		return fmt.Errorf("dataset: encode gob: %w", err)
	}
	return nil
}

// ReadGob reads a matrix written by WriteGob.
func ReadGob(r io.Reader) (*metric.Matrix, error) {
	var g gobMatrix
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: decode gob: %w", err)
	}
	if want := g.N * (g.N - 1) / 2; len(g.Values) != want {
		return nil, fmt.Errorf("dataset: gob matrix has %d values, want %d", len(g.Values), want)
	}
	m := metric.NewMatrix(g.N)
	idx := 0
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			m.Set(i, j, g.Values[idx])
			idx++
		}
	}
	return m, nil
}

// SaveFile writes the matrix to path, choosing the format by extension
// (".csv" or ".gob").
func SaveFile(path string, m *metric.Matrix) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: close %s: %w", path, cerr)
		}
	}()
	switch filepath.Ext(path) {
	case ".csv":
		return WriteCSV(f, m)
	case ".gob":
		return WriteGob(f, m)
	default:
		return fmt.Errorf("dataset: unknown extension %q (want .csv or .gob)", filepath.Ext(path))
	}
}

// LoadFile reads a matrix from path, choosing the format by extension.
func LoadFile(path string) (*metric.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".csv":
		return ReadCSV(f)
	case ".gob":
		return ReadGob(f)
	default:
		return nil, fmt.Errorf("dataset: unknown extension %q (want .csv or .gob)", filepath.Ext(path))
	}
}
