package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"bwcluster/internal/metric"
	"bwcluster/internal/stats"
)

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Config{
		{N: 0, MinBW: 1, MaxBW: 10},
		{N: 5, MinBW: 0, MaxBW: 10},
		{N: 5, MinBW: 10, MaxBW: 1},
		{N: 5, MinBW: 1, MaxBW: 10, AccessSigma: -1},
		{N: 5, MinBW: 1, MaxBW: 10, NoiseSigma: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	if _, err := Generate(HPConfig(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := HPConfig().WithN(50)
	bw, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bw.N() != 50 {
		t.Fatalf("N = %d", bw.N())
	}
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			v := bw.At(i, j)
			if v < cfg.MinBW || v > cfg.MaxBW {
				t.Fatalf("bw(%d,%d)=%v outside [%v,%v]", i, j, v, cfg.MinBW, cfg.MaxBW)
			}
			if bw.At(j, i) != v {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// Noise-free generation must be an exact tree metric after the rational
// transform (the bottleneck model's ultrametric property).
func TestNoiselessIsTreeMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := HPConfig().WithN(24).WithNoise(0)
	bw, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
	if err != nil {
		t.Fatal(err)
	}
	if err := metric.CheckMetric(d, 1e-9); err != nil {
		t.Fatalf("not a metric: %v", err)
	}
	if eps := metric.AvgEpsilonExact(d); eps > 1e-9 {
		t.Errorf("noise-free epsilon = %v, want 0", eps)
	}
}

// More noise means less treeness: epsilon must increase monotonically (in
// expectation; we check a coarse ordering with generous sampling).
func TestNoiseControlsTreeness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	family, err := TreenessFamily(HPConfig(), 60, []float64{0, 0.2, 0.6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var eps []float64
	for _, bw := range family {
		d, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
		if err != nil {
			t.Fatal(err)
		}
		e, err := metric.AvgEpsilon(d, 4000, rng)
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, e)
	}
	if !(eps[0] < eps[1] && eps[1] < eps[2]) {
		t.Errorf("epsilon not increasing with noise: %v", eps)
	}
}

// The presets must place the paper's query bands inside the 20th-80th
// percentile span of pairwise bandwidth.
func TestPresetPercentiles(t *testing.T) {
	tests := []struct {
		name   string
		cfg    Config
		wantN  int
		bandLo float64
		bandHi float64
	}{
		{name: "HP", cfg: HPConfig(), wantN: 190, bandLo: 15, bandHi: 75},
		{name: "UMD", cfg: UMDConfig(), wantN: 317, bandLo: 30, bandHi: 110},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			bw, err := Generate(tt.cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if bw.N() != tt.wantN {
				t.Fatalf("N = %d, want %d", bw.N(), tt.wantN)
			}
			vals := bw.Values()
			p10, _ := stats.Percentile(vals, 10)
			p90, _ := stats.Percentile(vals, 90)
			if p10 > tt.bandLo {
				t.Errorf("P10 = %v > band low %v (band not inside distribution)", p10, tt.bandLo)
			}
			if p90 < tt.bandHi {
				t.Errorf("P90 = %v < band high %v", p90, tt.bandHi)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(HPConfig().WithN(30), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(HPConfig().WithN(30), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("non-deterministic at (%d,%d)", i, j)
			}
		}
	}
}

func TestHelpersAndSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bw, err := HPPlanetLabLike(rng)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := RandomSubset(bw, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 40 {
		t.Fatalf("subset N = %d", sub.N())
	}
	if _, err := RandomSubset(sub, 41, rng); err == nil {
		t.Error("oversized subset should fail")
	}
	umd, err := UMDPlanetLabLike(rng)
	if err != nil {
		t.Fatal(err)
	}
	if umd.N() != 317 {
		t.Fatalf("UMD N = %d", umd.N())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bw, err := Generate(HPConfig().WithN(12), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, bw); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 12 {
		t.Fatalf("N = %d", back.N())
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if math.Abs(back.At(i, j)-bw.At(i, j)) > 1e-9 {
				t.Fatalf("csv round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("0,x\ny,0\n")); err == nil {
		t.Error("non-numeric csv should fail")
	}
}

// ReadCSV must symmetrize asymmetric input by averaging, matching the
// paper's preprocessing.
func TestCSVSymmetrizes(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("0,10\n30,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 20 {
		t.Errorf("symmetrized value = %v, want 20", m.At(0, 1))
	}
}

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bw, err := Generate(HPConfig().WithN(15), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGob(&buf, bw); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			if back.At(i, j) != bw.At(i, j) {
				t.Fatalf("gob round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
	if _, err := ReadGob(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage gob should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bw, err := Generate(HPConfig().WithN(8), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".csv", ".gob"} {
		path := t.TempDir() + "/m" + ext
		if err := SaveFile(path, bw); err != nil {
			t.Fatal(err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != 8 {
			t.Fatalf("%s: N = %d", ext, back.N())
		}
	}
	if err := SaveFile(t.TempDir()+"/m.xyz", bw); err == nil {
		t.Error("unknown extension should fail on save")
	}
	if _, err := LoadFile(t.TempDir() + "/m.xyz"); err == nil {
		t.Error("unknown extension should fail on load")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.csv"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	bw, err := Generate(HPConfig().WithN(15), rng)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Drift(bw, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			if drifted.At(i, j) <= 0 {
				t.Fatalf("non-positive drifted bandwidth at (%d,%d)", i, j)
			}
			if drifted.At(i, j) != bw.At(i, j) {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Error("drift changed nothing")
	}
	// Sigma 0 is the identity.
	same, err := Drift(bw, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			if same.At(i, j) != bw.At(i, j) {
				t.Fatalf("sigma=0 drift changed (%d,%d)", i, j)
			}
		}
	}
	if _, err := Drift(bw, -1, rng); err == nil {
		t.Error("negative sigma should fail")
	}
	if _, err := Drift(bw, 0.1, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// Evolving a topology preserves treeness: the induced metric stays an
// exact tree metric when measurement noise is zero.
func TestTopologyEvolvePreservesTreeness(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	topo, err := NewTopology(HPConfig().WithN(20).WithNoise(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if err := topo.Evolve(0.3, rng); err != nil {
			t.Fatal(err)
		}
		bw, err := topo.Matrix(rng)
		if err != nil {
			t.Fatal(err)
		}
		d, err := metric.DistanceFromBandwidth(bw, metric.DefaultC)
		if err != nil {
			t.Fatal(err)
		}
		if eps := metric.AvgEpsilonExact(d); eps > 1e-9 {
			t.Fatalf("step %d: evolved topology lost treeness, eps=%v", step, eps)
		}
	}
	if err := topo.Evolve(-1, rng); err == nil {
		t.Error("negative sigma should fail")
	}
	if err := topo.Evolve(0.1, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := topo.Matrix(nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewTopology(HPConfig(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestSingleHost(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bw, err := Generate(HPConfig().WithN(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	if bw.N() != 1 {
		t.Fatalf("N = %d", bw.N())
	}
}
