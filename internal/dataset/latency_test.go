package dataset

import (
	"math/rand"
	"testing"

	"bwcluster/internal/metric"
)

func TestLatencyConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []LatencyConfig{
		{N: 0, Regions: 1, AccessMsLo: 1, AccessMsHi: 2},
		{N: 5, Regions: 0, AccessMsLo: 1, AccessMsHi: 2},
		{N: 5, Regions: 1, AccessMsLo: 0, AccessMsHi: 2},
		{N: 5, Regions: 1, AccessMsLo: 2, AccessMsHi: 1},
		{N: 5, Regions: 1, AccessMsLo: 1, AccessMsHi: 2, EdgeMsLo: 3, EdgeMsHi: 1},
		{N: 5, Regions: 1, AccessMsLo: 1, AccessMsHi: 2, NoiseSigma: -1},
	}
	for i, cfg := range bad {
		if _, err := GenerateLatency(cfg, rng); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	if _, err := GenerateLatency(DefaultLatencyConfig(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestGenerateLatencyBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultLatencyConfig()
	lat, err := GenerateLatency(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lat.N() != cfg.N {
		t.Fatalf("N = %d, want %d", lat.N(), cfg.N)
	}
	for i := 0; i < lat.N(); i++ {
		for j := i + 1; j < lat.N(); j++ {
			if v := lat.At(i, j); v <= 0 {
				t.Fatalf("latency(%d,%d) = %v", i, j, v)
			}
		}
	}
}

// The noise-free latency model is an exact (additive) tree metric.
func TestNoiselessLatencyIsTreeMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultLatencyConfig()
	cfg.N = 22
	cfg.NoiseSigma = 0
	lat, err := GenerateLatency(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := metric.CheckMetric(lat, 1e-9); err != nil {
		t.Fatalf("not a metric: %v", err)
	}
	if eps := metric.AvgEpsilonExact(lat); eps > 1e-9 {
		t.Errorf("noise-free latency epsilon = %v, want 0", eps)
	}
}

func TestGenerateLatencyDeterministic(t *testing.T) {
	cfg := DefaultLatencyConfig()
	cfg.N = 20
	a, err := GenerateLatency(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateLatency(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("non-deterministic at (%d,%d)", i, j)
			}
		}
	}
}
