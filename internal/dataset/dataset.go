// Package dataset generates and stores the bandwidth matrices the
// experiments run on.
//
// The paper evaluates on two measured PlanetLab datasets (HP-PlanetLab,
// 190 nodes, and UMD-PlanetLab, 317 nodes) that are not publicly
// distributable. This package substitutes the access-link bottleneck
// model that the paper itself cites (Sec. II-C, [20]) as the explanation
// for why Internet bandwidth is nearly a tree metric: hosts hang off a
// random core topology tree, every edge has a capacity, and the bandwidth
// between two hosts is the minimum capacity along their tree path. That
// model yields an exact tree metric (the minimax path distance is an
// ultrametric); an independent multiplicative lognormal noise factor per
// pair then recreates the imperfect treeness (small positive epsilon) of
// real measurements. Two presets calibrate the access-link capacity
// distribution so the paper's query bands (15-75 Mbps for HP-like, 30-110
// for UMD-like) fall between the 20th and 80th percentile of pairwise
// bandwidth, as in the paper's setup.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"bwcluster/internal/metric"
)

// Config parameterizes the synthetic bandwidth generator.
type Config struct {
	// N is the number of hosts.
	N int
	// AccessMu and AccessSigma are the lognormal parameters (of ln Mbps)
	// of host access-link capacities.
	AccessMu, AccessSigma float64
	// CoreBoost is added to AccessMu for internal (core) edges, and
	// CoreSigma is their (smaller) lognormal sigma: cores are
	// overprovisioned relative to access links, which keeps the bottleneck
	// at the edge as in the paper's model [20].
	CoreBoost, CoreSigma float64
	// MinBW and MaxBW clamp all capacities (Mbps).
	MinBW, MaxBW float64
	// NoiseSigma is the lognormal sigma of the per-pair multiplicative
	// noise; 0 produces an exact tree metric.
	NoiseSigma float64
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("dataset: N must be >= 1, got %d", c.N)
	}
	if c.AccessSigma < 0 || c.NoiseSigma < 0 || c.CoreSigma < 0 {
		return fmt.Errorf("dataset: sigmas must be non-negative")
	}
	if c.MinBW <= 0 || c.MaxBW < c.MinBW {
		return fmt.Errorf("dataset: need 0 < MinBW <= MaxBW, got [%v,%v]", c.MinBW, c.MaxBW)
	}
	return nil
}

// HPConfig is the 190-node preset standing in for HP-PlanetLab. The
// lognormal parameters put the 20th/80th percentiles of pairwise
// bandwidth near 15 and 75 Mbps.
func HPConfig() Config {
	return Config{
		N:           190,
		AccessMu:    4.17,
		AccessSigma: 1.17,
		CoreBoost:   2.0,
		CoreSigma:   0.35,
		MinBW:       2,
		MaxBW:       600,
		NoiseSigma:  0.15,
	}
}

// UMDConfig is the 317-node preset standing in for UMD-PlanetLab
// (20th/80th percentiles near 30 and 110 Mbps).
func UMDConfig() Config {
	return Config{
		N:           317,
		AccessMu:    4.582,
		AccessSigma: 0.945,
		CoreBoost:   2.0,
		CoreSigma:   0.35,
		MinBW:       3,
		MaxBW:       800,
		NoiseSigma:  0.12,
	}
}

// WithN returns a copy of c with N hosts.
func (c Config) WithN(n int) Config {
	c.N = n
	return c
}

// WithNoise returns a copy of c with the given treeness noise.
func (c Config) WithNoise(sigma float64) Config {
	c.NoiseSigma = sigma
	return c
}

// Topology is a generated access-link bottleneck topology whose link
// capacities can evolve over time while preserving the tree structure —
// the realistic model of changing network conditions (hosts' access
// links speed up or slow down; the paths stay put).
type Topology struct {
	cfg        Config
	coreParent []int
	coreCap    []float64 // capacity of edge to parent
	hostCore   []int     // core vertex each host attaches to
	hostCap    []float64 // access-link capacity
	depth      []int
}

// NewTopology samples a random topology: vertices 0..N-1 are hosts, each
// attached by an access edge to one of N-1 internal core vertices, which
// form a random tree among themselves.
func NewTopology(cfg Config, rng *rand.Rand) (*Topology, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("dataset: nil rng")
	}
	nCore := cfg.N - 1
	if nCore < 1 {
		nCore = 1
	}
	t := &Topology{
		cfg:        cfg,
		coreParent: make([]int, nCore),
		coreCap:    make([]float64, nCore),
		hostCore:   make([]int, cfg.N),
		hostCap:    make([]float64, cfg.N),
		depth:      make([]int, nCore),
	}
	t.coreParent[0] = -1
	for i := 1; i < nCore; i++ {
		t.coreParent[i] = rng.Intn(i)
		t.coreCap[i] = t.clamp(math.Exp(cfg.AccessMu + cfg.CoreBoost + cfg.CoreSigma*rng.NormFloat64()))
		t.depth[i] = t.depth[t.coreParent[i]] + 1
	}
	for h := 0; h < cfg.N; h++ {
		t.hostCore[h] = rng.Intn(nCore)
		t.hostCap[h] = t.clamp(math.Exp(cfg.AccessMu + cfg.AccessSigma*rng.NormFloat64()))
	}
	return t, nil
}

func (t *Topology) clamp(v float64) float64 {
	if v < t.cfg.MinBW {
		return t.cfg.MinBW
	}
	if v > t.cfg.MaxBW {
		return t.cfg.MaxBW
	}
	return v
}

// minOnPath returns the bottleneck capacity between two core vertices.
func (t *Topology) minOnPath(a, b int) float64 {
	minCap := math.Inf(1)
	for t.depth[a] > t.depth[b] {
		if t.coreCap[a] < minCap {
			minCap = t.coreCap[a]
		}
		a = t.coreParent[a]
	}
	for t.depth[b] > t.depth[a] {
		if t.coreCap[b] < minCap {
			minCap = t.coreCap[b]
		}
		b = t.coreParent[b]
	}
	for a != b {
		if t.coreCap[a] < minCap {
			minCap = t.coreCap[a]
		}
		if t.coreCap[b] < minCap {
			minCap = t.coreCap[b]
		}
		a = t.coreParent[a]
		b = t.coreParent[b]
	}
	return minCap
}

// Matrix materializes the current bandwidth matrix, applying the
// configured per-pair measurement noise with rng.
func (t *Topology) Matrix(rng *rand.Rand) (*metric.Matrix, error) {
	if rng == nil {
		return nil, fmt.Errorf("dataset: nil rng")
	}
	n := t.cfg.N
	bw := metric.NewMatrix(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			cap := math.Min(t.hostCap[u], t.hostCap[v])
			if t.hostCore[u] != t.hostCore[v] {
				cap = math.Min(cap, t.minOnPath(t.hostCore[u], t.hostCore[v]))
			}
			// The noise draw is consumed even when NoiseSigma is 0 so
			// that configs differing only in noise amplitude produce
			// paired datasets: identical topology and noise directions.
			// The treeness experiment (Fig. 5) depends on this pairing to
			// isolate the epsilon effect from topology variance.
			cap *= math.Exp(t.cfg.NoiseSigma * rng.NormFloat64())
			bw.Set(u, v, t.clamp(cap))
		}
	}
	return bw, nil
}

// Evolve drifts every link capacity (access and core) by an independent
// lognormal factor exp(sigma * N(0,1)), clamped to the configured range.
// The topology — and therefore the near-tree structure of the induced
// bandwidth — is preserved; only the conditions change.
func (t *Topology) Evolve(sigma float64, rng *rand.Rand) error {
	if sigma < 0 {
		return fmt.Errorf("dataset: evolve sigma must be >= 0, got %v", sigma)
	}
	if rng == nil {
		return fmt.Errorf("dataset: nil rng")
	}
	for h := range t.hostCap {
		t.hostCap[h] = t.clamp(t.hostCap[h] * math.Exp(sigma*rng.NormFloat64()))
	}
	for i := 1; i < len(t.coreCap); i++ {
		t.coreCap[i] = t.clamp(t.coreCap[i] * math.Exp(sigma*0.3*rng.NormFloat64()))
	}
	return nil
}

// Generate builds a symmetric bandwidth matrix (Mbps) from the
// access-link bottleneck model. Deterministic for a given rng.
func Generate(cfg Config, rng *rand.Rand) (*metric.Matrix, error) {
	t, err := NewTopology(cfg, rng)
	if err != nil {
		return nil, err
	}
	return t.Matrix(rng)
}

// HPPlanetLabLike generates a 190-node HP-PlanetLab-like bandwidth matrix.
func HPPlanetLabLike(rng *rand.Rand) (*metric.Matrix, error) {
	return Generate(HPConfig(), rng)
}

// UMDPlanetLabLike generates a 317-node UMD-PlanetLab-like bandwidth
// matrix.
func UMDPlanetLabLike(rng *rand.Rand) (*metric.Matrix, error) {
	return Generate(UMDConfig(), rng)
}

// RandomSubset returns the restriction of bw to n randomly chosen hosts.
func RandomSubset(bw *metric.Matrix, n int, rng *rand.Rand) (*metric.Matrix, error) {
	if n > bw.N() {
		return nil, fmt.Errorf("dataset: subset of %d from %d hosts", n, bw.N())
	}
	idx := rng.Perm(bw.N())[:n]
	sub, err := bw.Submatrix(idx)
	if err != nil {
		return nil, fmt.Errorf("dataset: subset: %w", err)
	}
	return sub, nil
}

// Drift returns a copy of bw with every pairwise bandwidth multiplied by
// an independent lognormal factor exp(sigma * N(0,1)), clamped to stay
// positive — one epoch of network-condition change for dynamics
// experiments.
func Drift(bw *metric.Matrix, sigma float64, rng *rand.Rand) (*metric.Matrix, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("dataset: drift sigma must be >= 0, got %v", sigma)
	}
	if rng == nil {
		return nil, fmt.Errorf("dataset: nil rng")
	}
	out := metric.NewMatrix(bw.N())
	for u := 0; u < bw.N(); u++ {
		for v := u + 1; v < bw.N(); v++ {
			val := bw.At(u, v) * math.Exp(sigma*rng.NormFloat64())
			if val < 0.01 {
				val = 0.01
			}
			out.Set(u, v, val)
		}
	}
	return out, nil
}

// TreenessFamily generates len(noises) datasets of n hosts sharing the
// base configuration but with different treeness noise, for the paper's
// Section IV-C experiment. Returned matrices are ordered like noises.
func TreenessFamily(base Config, n int, noises []float64, rng *rand.Rand) ([]*metric.Matrix, error) {
	out := make([]*metric.Matrix, 0, len(noises))
	for _, sigma := range noises {
		m, err := Generate(base.WithN(n).WithNoise(sigma), rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: treeness family (sigma=%v): %w", sigma, err)
		}
		out = append(out, m)
	}
	return out, nil
}
