package dataset

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV matrix parser: it must
// either return a well-formed matrix or an error — never panic.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("0,10\n10,0\n"))
	f.Add([]byte("0,1,2\n1,0,3\n2,3,0\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,b\nc,d\n"))
	f.Add([]byte("0,1\n1\n"))
	f.Add([]byte("1e309,0\n0,1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.N() < 1 {
			t.Fatalf("parser accepted an empty matrix")
		}
		// Returned matrices are symmetric with a zero diagonal.
		for i := 0; i < m.N() && i < 8; i++ {
			if m.At(i, i) != 0 {
				t.Fatalf("diagonal (%d,%d) = %v", i, i, m.At(i, i))
			}
			for j := i + 1; j < m.N() && j < 8; j++ {
				if m.At(i, j) != m.At(j, i) {
					t.Fatalf("asymmetric at (%d,%d)", i, j)
				}
			}
		}
	})
}

// FuzzReadGob feeds arbitrary bytes to the gob matrix decoder.
func FuzzReadGob(f *testing.F) {
	var buf bytes.Buffer
	m, err := Generate(HPConfig().WithN(5), newTestRand())
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteGob(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := ReadGob(bytes.NewReader(data)); err == nil && m.N() < 0 {
			t.Fatal("negative size accepted")
		}
	})
}

// newTestRand gives fuzz seeds a deterministic source.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
