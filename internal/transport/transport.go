// Package transport moves the asynchronous runtime's protocol messages
// between peers. It decouples protocol logic (package runtime: Algorithms
// 2-4 over peer state) from message movement, so the same protocol code
// runs over in-process channels (ChanTransport), a deterministic fault
// injector (FaultTransport), or real TCP sockets (TCPTransport) without
// change.
//
// The package owns the wire schema: Message and its payload structs are
// the frame format TCPTransport gob-encodes, and the in-memory unit the
// channel transports pass by reference. Payload fields are therefore
// exported and contain only plain data — no channels, no function values
// — so every message that crosses a goroutine boundary can also cross a
// process boundary. Query answers travel as messages too (KindResult,
// KindNodeResult) routed back to the querying peer, which is what makes
// multi-process routing possible at all.
//
// Delivery contract, shared by every implementation:
//
//   - TrySend is best-effort and non-blocking: a full inbox (or full
//     outbound queue) drops the message, counts the drop, and returns
//     ErrInboxFull. Gossip uses this mode — the protocol is periodic and
//     idempotent, so a dropped gossip message is simply re-sent next
//     tick.
//   - Send blocks until the message is accepted for delivery, the
//     destination unregisters, or the transport closes. Query routing
//     uses this mode (from helper goroutines, never the peer main loop).
//   - Neither mode guarantees end-to-end delivery: FaultTransport drops
//     on purpose, and TCP delivers at-most-once per send. Callers that
//     need an answer must time out and retry (the runtime's query API
//     does).
//
// transport is an I/O package under the repository's determinism policy
// (DESIGN.md §8e): it may read wall clocks for timers, deadlines and
// reconnect backoff, but all injected-fault randomness must come from an
// explicit seed, and the global math/rand stream stays banned.
package transport

import "errors"

// Kind discriminates the protocol messages carried by a transport.
type Kind uint8

// The wire message kinds, mirroring the runtime's protocol: two periodic
// gossip kinds (Algorithms 2 and 3), two query kinds in flight
// (Algorithm 4 and the single-node search), and their answers routed
// back to the origin peer.
const (
	// KindNodeInfo is Algorithm 2 gossip: aggregated node information.
	KindNodeInfo Kind = iota + 1
	// KindCRT is Algorithm 3 gossip: a cluster readiness table.
	KindCRT
	// KindQuery is an Algorithm 4 cluster query being forwarded.
	KindQuery
	// KindNodeQuery is a single-node search being forwarded.
	KindNodeQuery
	// KindResult is a cluster query answer routed back to its origin.
	KindResult
	// KindNodeResult is a node search answer routed back to its origin.
	KindNodeResult
	// KindTrace is a span-event report: a traced hop telling the trace's
	// origin what happened on a remote peer. Fire-and-forget; a dropped
	// report shows up as an explicit gap in the reassembled trace tree.
	KindTrace
	// KindSnapshot is one chunk of a streamed system snapshot (the
	// wireVersion-2 gob persistence format) flowing from a fleet builder
	// shard to a warm read replica. Chunks are reliable (never shed under
	// backpressure) but the stream as a whole is at-most-once per send:
	// the replica detects a hole by Seq and re-requests the whole stream.
	KindSnapshot
)

// Gossip reports whether k is one of the periodic, idempotent gossip
// kinds. Transports may treat gossip as droppable: the runtime re-sends
// it every tick, so loss only delays convergence.
func (k Kind) Gossip() bool { return k == KindNodeInfo || k == KindCRT }

// BestEffort reports whether dropping k is harmless to protocol
// correctness: the gossip kinds (re-sent every tick) and trace reports
// (a loss becomes a visible gap, never a wrong answer). Transports use
// this to decide what may be shed under backpressure, and FaultTransport
// uses it as the GossipOnly fault scope — queries and results are the
// only kinds whose loss changes an answer.
func (k Kind) BestEffort() bool { return k.Gossip() || k == KindTrace }

// String returns the telemetry label for the kind.
func (k Kind) String() string {
	switch k {
	case KindNodeInfo:
		return "nodeinfo"
	case KindCRT:
		return "crt"
	case KindQuery:
		return "query"
	case KindNodeQuery:
		return "nodequery"
	case KindResult:
		return "result"
	case KindNodeResult:
		return "noderesult"
	case KindTrace:
		return "trace"
	case KindSnapshot:
		return "snapshot"
	}
	return "unknown"
}

// Message is the unit a transport moves: one protocol message addressed
// peer-to-peer. Exactly one payload field matching Kind is set. The
// struct is the TCP frame schema (gob), so all fields are exported plain
// data.
type Message struct {
	// Kind selects which payload field is meaningful.
	Kind Kind
	// From is the sending peer (-1 for client-submitted queries).
	From int
	// To is the destination peer.
	To int
	// Nodes is the KindNodeInfo payload: a propagated node-id set.
	Nodes []int
	// CRT is the KindCRT payload: per-class max cluster sizes.
	CRT []int
	// Query is the KindQuery payload.
	Query *Query
	// NodeQuery is the KindNodeQuery payload.
	NodeQuery *NodeQuery
	// Result is the KindResult payload.
	Result *Result
	// NodeResult is the KindNodeResult payload.
	NodeResult *NodeResult
	// Snapshot is the KindSnapshot payload.
	Snapshot *Snapshot
	// Trace is the distributed trace context riding on a query or
	// node-query message (nil when the operation is untraced). Results
	// carry it back so the origin can time the return leg.
	Trace *TraceContext
	// Event is the KindTrace payload: one hop's span report.
	Event *TraceEvent
}

// Snapshot is one chunk of a streamed system snapshot. A stream is a
// sequence of chunks sharing an ID, Seq running 0..Total-1; the payload
// bytes concatenated in Seq order are exactly what System.Save wrote
// (the wireVersion-2 gob format), so the receiver hands them straight
// to Load and the persistence layer's version/corruption checks apply
// unchanged. Chunks must stay well under the transport frame limit;
// senders split at SnapshotChunkSize.
type Snapshot struct {
	// ID identifies the stream; the sender mints it, and a receiver
	// discards chunks of any stream other than the newest it has seen.
	ID uint64
	// Epoch is the membership epoch of the snapshotted system, carried on
	// every chunk so a receiver can drop a stale stream without
	// assembling it.
	Epoch uint64
	// Seq is this chunk's position in the stream, 0-based.
	Seq int
	// Total is the number of chunks in the stream.
	Total int
	// Data is the chunk's payload bytes.
	Data []byte
}

// SnapshotChunkSize is the payload size snapshot senders split streams
// at: comfortably under maxFrame after gob framing overhead, large
// enough that a forest snapshot ships in a handful of frames.
const SnapshotChunkSize = 256 * 1024

// TraceContext is the compact trace context propagated on the message
// envelope: enough for the receiving hop to mint its own span event and
// report it to the trace's origin. Nil context means tracing is off and
// costs one pointer comparison per hop.
type TraceContext struct {
	// TraceID identifies the distributed operation (the origin's query
	// id, unique per origin runtime).
	TraceID uint64
	// ParentSpan is the span id of the hop (or origin root span) that
	// sent this message.
	ParentSpan uint64
	// Hop counts trace hops so far, 0 at the origin.
	Hop int
	// Origin is the peer whose runtime collects this trace's events.
	Origin int
	// SentUnixNano is the send time on the sender's clock; the receiver
	// derives queue/wire wait from it (clock skew applies across
	// machines, so treat cross-host waits as approximate).
	SentUnixNano int64
}

// TraceEvent is one hop's span report on the wire: the executing host
// tells the trace origin what it did. It mirrors telemetry.SpanEvent —
// transport owns the wire schema and telemetry cannot depend on it, so
// the runtime converts between the two at the collector boundary.
type TraceEvent struct {
	// TraceID identifies the distributed operation.
	TraceID uint64
	// SpanID uniquely identifies this hop across all hosts.
	SpanID uint64
	// ParentSpan is the span that caused this hop.
	ParentSpan uint64
	// Host executed the hop.
	Host int
	// Peer is the hop's counterparty (-1 at the first hop).
	Peer int
	// Hop is the hop index along the path, 0-based.
	Hop int
	// Kind labels the work ("query", "nodequery", ...).
	Kind string
	// StartUnixNano is the hop start on the executing host's clock.
	StartUnixNano int64
	// DurationNs is the hop's processing time.
	DurationNs int64
	// QueueNs is the triggering message's send-to-handle wait.
	QueueNs int64
	// Note records the hop's outcome ("answered", "forward", ...).
	Note string
}

// Query is an Algorithm 4 cluster query in flight.
type Query struct {
	// ID pairs the eventual Result with the origin's pending reply; it
	// is unique per origin runtime.
	ID uint64
	// Origin is the peer whose runtime holds the pending reply.
	Origin int
	// K is the size constraint.
	K int
	// ClassIdx and ClassL are the snapped diameter class.
	ClassIdx int
	// ClassL is the snapped diameter value.
	ClassL float64
	// Prev is the peer the query was forwarded from (-1 at the start).
	Prev int
	// Hops counts forwards so far.
	Hops int
	// Path lists every peer visited, start first.
	Path []int
}

// NodeQuery is a single-node search in flight, with the incumbent best
// candidate riding along.
type NodeQuery struct {
	// ID pairs the eventual NodeResult with the origin's pending reply.
	ID uint64
	// Origin is the peer whose runtime holds the pending reply.
	Origin int
	// Set is the input host set.
	Set []int
	// L is the radius constraint.
	L float64
	// BestNode is the incumbent candidate (-1 initially).
	BestNode int
	// BestRadius is the incumbent's set radius (+Inf initially).
	BestRadius float64
	// Prev is the peer the search was forwarded from (-1 at the start).
	Prev int
	// Hops counts forwards so far.
	Hops int
}

// Result is the answer of a cluster query, routed back to its origin.
type Result struct {
	// ID is the Query.ID this answers.
	ID uint64
	// Cluster holds the selected host ids, nil when none was found.
	Cluster []int
	// Hops is how many times the query was forwarded.
	Hops int
	// Answered is the peer that produced the final answer.
	Answered int
	// Class is the diameter class the query was snapped to.
	Class float64
	// Path lists every peer the query visited.
	Path []int
}

// NodeResult is the answer of a node search, routed back to its origin.
type NodeResult struct {
	// ID is the NodeQuery.ID this answers.
	ID uint64
	// Node is the found host, -1 when none satisfies the constraint.
	Node int
	// Radius is the found host's set radius.
	Radius float64
	// Hops is how many times the search was forwarded.
	Hops int
	// Answered is the peer that produced the final answer.
	Answered int
}

// Sentinel errors shared by the transport implementations.
var (
	// ErrUnknownPeer reports a destination with no registered endpoint
	// (and, for TCP, no route).
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrClosed reports an operation on a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrInboxFull reports a best-effort send dropped on a full inbox or
	// outbound queue.
	ErrInboxFull = errors.New("transport: inbox full")
	// ErrTimeout reports a blocking send that exceeded the send timeout.
	ErrTimeout = errors.New("transport: send timed out")
)

// Transport moves messages between peers. Implementations must be safe
// for concurrent use by many goroutines.
type Transport interface {
	// Register attaches a local peer endpoint and returns its inbound
	// message channel. Registering an already-registered id fails.
	Register(id int) (<-chan Message, error)
	// Unregister detaches a local peer endpoint (peer crash or
	// shutdown): senders blocked toward it are released with
	// ErrUnknownPeer. Unknown ids are a no-op.
	Unregister(id int) error
	// Send delivers m to peer m.To, blocking until the message is
	// accepted, the destination unregisters, or the transport closes.
	Send(m Message) error
	// TrySend attempts best-effort, non-blocking delivery of m to peer
	// m.To; a full inbox drops the message and returns ErrInboxFull.
	TrySend(m Message) error
	// Close shuts the transport down and releases its resources.
	// Close is idempotent.
	Close() error
}

// clone deep-copies a message, including payload slices, so a duplicated
// delivery never aliases mutable state with the original (in-process
// transports pass payload pointers by reference).
func (m Message) clone() Message {
	c := m
	c.Nodes = append([]int(nil), m.Nodes...)
	c.CRT = append([]int(nil), m.CRT...)
	if m.Query != nil {
		q := *m.Query
		q.Path = append([]int(nil), m.Query.Path...)
		c.Query = &q
	}
	if m.NodeQuery != nil {
		q := *m.NodeQuery
		q.Set = append([]int(nil), m.NodeQuery.Set...)
		c.NodeQuery = &q
	}
	if m.Result != nil {
		r := *m.Result
		r.Cluster = append([]int(nil), m.Result.Cluster...)
		r.Path = append([]int(nil), m.Result.Path...)
		c.Result = &r
	}
	if m.NodeResult != nil {
		r := *m.NodeResult
		c.NodeResult = &r
	}
	if m.Snapshot != nil {
		s := *m.Snapshot
		s.Data = append([]byte(nil), m.Snapshot.Data...)
		c.Snapshot = &s
	}
	if m.Trace != nil {
		tc := *m.Trace
		c.Trace = &tc
	}
	if m.Event != nil {
		ev := *m.Event
		c.Event = &ev
	}
	return c
}
