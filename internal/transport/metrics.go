package transport

import "bwcluster/internal/telemetry"

// Telemetry for the transport layer. Delivery and drop counters make
// silent loss observable: before this package existed, a gossip message
// hitting a full inbox vanished without trace (the runtime's
// retry-next-tick path), which made convergence stalls under pressure
// impossible to diagnose. Increments happen on send/receive hot paths,
// so labels are package-constant strings (Kind.String returns constants)
// and no increment allocates.
var (
	mDelivered = telemetry.NewCounterVec("bwc_transport_delivered_total",
		"Messages accepted into a destination inbox, by kind.",
		"kind")
	mDropped = telemetry.NewCounterVec("bwc_transport_dropped_total",
		"Messages dropped by a transport, by reason (inbox_full: best-effort send against a full inbox; queue_full: TCP outbound queue full; no_route: no address for the destination peer; unknown_peer: destination not registered at the receiving process; superseded: gossip coalesced away by a newer value for the same edge and kind).",
		"reason")
	mFaults = telemetry.NewCounterVec("bwc_transport_faults_total",
		"Deterministic faults injected by FaultTransport, by type (drop, duplicate, delay, reorder, partition).",
		"fault")
	mTCPFrames = telemetry.NewCounterVec("bwc_transport_tcp_frames_total",
		"TCP frames moved, by direction (sent, recv).",
		"dir")
	mTCPReconnects = telemetry.NewCounter("bwc_transport_tcp_reconnects_total",
		"TCP dial attempts made after a connection was lost or refused (exponential backoff with jitter between attempts).")
)

// DeliveredCount returns the process-wide delivered-message counter for
// one kind label (the bwc_transport_delivered_total family), and
// DeliveredTotal the sum over every wire kind. The bandwidth ledger
// records at exactly the delivery sites that increment this family, so
// for a single-transport process the ledger's cumulative message total
// reconciles with the counter delta around a run — the simulation
// harness asserts that equality.
func DeliveredCount(kind string) uint64 { return mDelivered.Value(kind) }

// DeliveredTotal sums DeliveredCount over every message kind.
func DeliveredTotal() uint64 {
	var sum uint64
	for k := KindNodeInfo; k <= KindSnapshot; k++ {
		sum += mDelivered.Value(k.String())
	}
	return sum
}

// Drop reasons and frame directions used as telemetry labels.
const (
	reasonInboxFull   = "inbox_full"
	reasonQueueFull   = "queue_full"
	reasonNoRoute     = "no_route"
	reasonUnknownPeer = "unknown_peer"
	reasonSuperseded  = "superseded"

	dirSent = "sent"
	dirRecv = "recv"
)

// Fault type labels.
const (
	faultDrop      = "drop"
	faultDuplicate = "duplicate"
	faultDelay     = "delay"
	faultReorder   = "reorder"
	faultPartition = "partition"
)
