package transport

import (
	"fmt"
	"sync"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/telemetry"
)

// DefaultInboxCapacity is the per-peer inbound buffer used when a
// constructor is given a non-positive capacity. It matches the buffer the
// runtime used before the transport layer was extracted, so ChanTransport
// preserves the historical backpressure behavior exactly.
const DefaultInboxCapacity = 256

// endpoint is one registered local peer: its inbound buffer and a
// tombstone channel closed on unregistration so blocked senders release.
type endpoint struct {
	inbox chan Message
	gone  chan struct{}
}

// ChanTransport delivers messages over in-process buffered channels. It
// is the extraction of the runtime's original peer-inbox behavior: one
// buffered channel per peer, non-blocking gossip sends that drop on a
// full inbox (now counted instead of silent), and blocking query sends
// released when the destination disappears.
type ChanTransport struct {
	capacity  int
	closed    chan struct{}
	closeOnce sync.Once
	flight    flightRef
	ledger    ledgerRef

	mu  sync.Mutex
	eps map[int]*endpoint // guarded by mu
}

// SetFlight attaches a flight recorder; non-gossip deliveries and all
// drops are recorded. A nil recorder detaches.
func (t *ChanTransport) SetFlight(r *telemetry.FlightRecorder) { t.flight.set(r) }

// SetLedger attaches a bandwidth ledger; every delivery accounts its
// WireSize estimate on the (from, to) link. A nil ledger detaches.
func (t *ChanTransport) SetLedger(l *bwledger.Ledger) { t.ledger.set(l) }

// NewChan builds an in-process channel transport with the given per-peer
// inbox capacity (non-positive: DefaultInboxCapacity).
func NewChan(capacity int) *ChanTransport {
	if capacity <= 0 {
		capacity = DefaultInboxCapacity
	}
	return &ChanTransport{
		capacity: capacity,
		closed:   make(chan struct{}),
		eps:      make(map[int]*endpoint),
	}
}

// Register attaches a local peer and returns its inbound channel.
func (t *ChanTransport) Register(id int) (<-chan Message, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	if _, ok := t.eps[id]; ok {
		return nil, fmt.Errorf("transport: peer %d already registered", id)
	}
	ep := &endpoint{inbox: make(chan Message, t.capacity), gone: make(chan struct{})}
	t.eps[id] = ep
	return ep.inbox, nil
}

// Unregister detaches a local peer, releasing any sender blocked toward
// it. Unknown ids are a no-op.
func (t *ChanTransport) Unregister(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ep, ok := t.eps[id]; ok {
		close(ep.gone)
		delete(t.eps, id)
	}
	return nil
}

// endpoint returns the registered endpoint for id, nil if unknown.
func (t *ChanTransport) endpoint(id int) *endpoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eps[id]
}

// Send delivers m to peer m.To, blocking until the inbox accepts it, the
// peer unregisters, or the transport closes.
func (t *ChanTransport) Send(m Message) error {
	ep := t.endpoint(m.To)
	if ep == nil {
		return ErrUnknownPeer
	}
	// Size the frame before the handoff: once the inbox accepts m the
	// receiver owns its pointer fields (a query's Path grows at the next
	// hop), so reading them afterwards would race.
	size := m.WireSize()
	select {
	case ep.inbox <- m:
		mDelivered.Inc(m.Kind.String())
		t.ledger.get().Record(m.From, m.To, m.Kind.String(), size)
		if !m.Kind.Gossip() {
			t.flight.get().Record(flightSend, m.From, m.To, m.Kind.String())
		}
		return nil
	case <-ep.gone:
		return ErrUnknownPeer
	case <-t.closed:
		return ErrClosed
	}
}

// TrySend attempts non-blocking delivery of m to peer m.To; a full inbox
// drops the message (counted) and returns ErrInboxFull.
func (t *ChanTransport) TrySend(m Message) error {
	ep := t.endpoint(m.To)
	if ep == nil {
		return ErrUnknownPeer
	}
	size := m.WireSize() // before the handoff; see Send
	select {
	case ep.inbox <- m:
		mDelivered.Inc(m.Kind.String())
		t.ledger.get().Record(m.From, m.To, m.Kind.String(), size)
		if !m.Kind.Gossip() {
			t.flight.get().Record(flightSend, m.From, m.To, m.Kind.String())
		}
		return nil
	default:
		mDropped.Inc(reasonInboxFull)
		t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonInboxFull)
		return ErrInboxFull
	}
}

// Close shuts the transport down, releasing every blocked sender.
func (t *ChanTransport) Close() error {
	t.closeOnce.Do(func() { close(t.closed) })
	return nil
}
