package transport

import (
	"testing"
	"time"

	"bwcluster/internal/bwledger"
)

// The channel transport must account every delivered message into an
// attached ledger — same sites as the delivered counter, WireSize bytes
// — and the cumulative ledger totals must reconcile with the delta of
// the process-wide delivered counter around the run.
func TestChanLedgerRecordsAndReconciles(t *testing.T) {
	tr := NewChan(8)
	defer tr.Close()
	l := bwledger.New(bwledger.Config{})
	tr.SetLedger(l)
	recv, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	before := DeliveredTotal()

	msgs := []Message{
		{Kind: KindNodeInfo, From: 2, To: 1, Nodes: []int{3, 4}},
		{Kind: KindQuery, From: 3, To: 1, Query: &Query{ID: 1, Origin: 3, Prev: -1, Path: []int{3}}},
	}
	var wantBytes int64
	for _, m := range msgs {
		wantBytes += int64(m.WireSize())
		if err := tr.Send(m); err != nil {
			t.Fatal(err)
		}
		recvOne(t, recv, time.Second)
	}
	// TrySend against a full-enough inbox still delivers here (cap 8).
	extra := Message{Kind: KindCRT, From: 2, To: 1, CRT: []int{9}}
	wantBytes += int64(extra.WireSize())
	if err := tr.TrySend(extra); err != nil {
		t.Fatal(err)
	}
	recvOne(t, recv, time.Second)

	if got := l.TotalMessages(); got != 3 {
		t.Fatalf("ledger messages = %d, want 3", got)
	}
	if got := l.TotalBytes(); got != wantBytes {
		t.Fatalf("ledger bytes = %d, want %d", got, wantBytes)
	}
	if delta := DeliveredTotal() - before; int64(delta) != l.TotalMessages() {
		t.Fatalf("delivered counter delta %d != ledger messages %d", delta, l.TotalMessages())
	}
	w := l.Roll(1)
	if len(w.Links) != 2 {
		t.Fatalf("links = %+v, want 2 (1-2 and 1-3)", w.Links)
	}
}

// FaultTransport forwards SetLedger to the wrapped transport, which
// records at actual delivery: dropped messages never hit the ledger and
// duplicated messages count twice.
func TestFaultLedgerCountsDeliveriesOnly(t *testing.T) {
	ft, err := NewFault(NewChan(0), FaultConfig{Seed: 7, Drop: 0.4, Duplicate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	l := bwledger.New(bwledger.Config{})
	ft.SetLedger(l)
	recv, err := ft.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	want := int64(0)
	for i := 0; i < n; i++ {
		d := ft.DecisionAt(i)
		if !d.Drop {
			want++
			if d.Duplicate {
				want++
			}
		}
	}
	for i := 0; i < n; i++ {
		if err := ft.Send(Message{Kind: KindNodeInfo, From: 2, To: 1, Nodes: []int{i}}); err != nil {
			t.Fatal(err)
		}
	}
	delivered := 0
drain:
	for {
		select {
		case <-recv:
			delivered++
		default:
			break drain
		}
	}
	if int64(delivered) != want {
		t.Fatalf("delivered %d, want %d", delivered, want)
	}
	if got := l.TotalMessages(); got != want {
		t.Fatalf("ledger messages = %d, want %d (deliveries, not sends)", got, want)
	}
}

// TCP accounts exact frame bytes on both ends: the sender's ledger on
// write, the receiver's ledger on delivery, and both agree because the
// frame length is the same bytes on the wire. A local short-circuit
// records once with the WireSize estimate.
func TestTCPLedgerBothSides(t *testing.T) {
	a, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	la, lb := bwledger.New(bwledger.Config{}), bwledger.New(bwledger.Config{})
	a.SetLedger(la)
	b.SetLedger(lb)
	recv1, err := a.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	recv2, err := b.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	a.AddRoute(2, b.Addr())

	m := Message{Kind: KindQuery, From: 1, To: 2, Query: &Query{ID: 7, Origin: 1, K: 3, ClassIdx: 2, ClassL: 4, Prev: -1, Hops: 1, Path: []int{1}}}
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	recvOne(t, recv2, 5*time.Second)
	deadline := time.After(5 * time.Second)
	for la.TotalMessages() < 1 { // writeLoop records asynchronously
		select {
		case <-deadline:
			t.Fatalf("sender ledger never recorded the frame")
		case <-time.After(time.Millisecond):
		}
	}
	if la.TotalBytes() != lb.TotalBytes() {
		t.Fatalf("sender recorded %d bytes, receiver %d — frame lengths must agree",
			la.TotalBytes(), lb.TotalBytes())
	}
	if la.TotalBytes() == 0 {
		t.Fatal("no bytes recorded")
	}

	// Local short-circuit on a: exactly one more record, WireSize bytes.
	local := Message{Kind: KindCRT, From: 2, To: 1, CRT: []int{5}}
	beforeBytes := la.TotalBytes()
	if err := a.Send(local); err != nil {
		t.Fatal(err)
	}
	recvOne(t, recv1, time.Second)
	if got := la.TotalBytes() - beforeBytes; got != int64(local.WireSize()) {
		t.Fatalf("short-circuit recorded %d bytes, want WireSize %d", got, local.WireSize())
	}
	if lb.TotalMessages() != 1 {
		t.Fatalf("receiver ledger moved on a's local delivery: %d messages", lb.TotalMessages())
	}
}
