package transport

import (
	"sync/atomic"

	"bwcluster/internal/telemetry"
)

// Flight-recorder integration. Transports do not reach for the process
// default recorder (bwc-vet bans that from internal packages); the
// hosting binary or test threads one in with SetFlight, and every
// recording site goes through a nil-safe pointer load, so an unwired
// transport pays one atomic read per event site.
//
// Gossip volume would flood the ring (every peer, every tick), so only
// the consequential traffic is recorded: queries, results and trace
// reports moving, anything dropped, every injected fault, and every
// reconnect attempt.

// Flight event kinds recorded by the transport layer.
const (
	flightSend      = "send"
	flightRecv      = "recv"
	flightDrop      = "drop"
	flightFault     = "fault"
	flightReconnect = "reconnect"

	// anomalyReconnectStorm is fired when one connection's consecutive
	// failed dial/write attempts reach reconnectStormAttempts: with
	// exponential backoff that many failures means the remote has been
	// unreachable for several backoff-max periods, not a blip.
	anomalyReconnectStorm = "reconnect_storm"
)

// reconnectStormAttempts is the consecutive-failure threshold that
// classifies a reconnect sequence as a storm anomaly.
const reconnectStormAttempts = 8

// flightRef is the shared one-field holder embedded by every transport:
// an atomically swappable, nil-safe recorder reference.
type flightRef struct {
	p atomic.Pointer[telemetry.FlightRecorder]
}

// set installs the recorder (nil detaches it).
func (f *flightRef) set(r *telemetry.FlightRecorder) { f.p.Store(r) }

// get returns the current recorder; nil (a no-op recorder) when unset.
func (f *flightRef) get() *telemetry.FlightRecorder { return f.p.Load() }

// flightSetter is implemented by every transport in this package;
// FaultTransport uses it to forward its recorder to the wrapped inner
// transport.
type flightSetter interface {
	SetFlight(*telemetry.FlightRecorder)
}
