package transport

import (
	"fmt"
	"os"
	"testing"

	"bwcluster/internal/telemetry"
)

// TestMain gives CI a black box: when BWC_FLIGHT_DUMP names a file
// ("-": stderr) and this package's tests fail, the process-wide flight
// recorder — fed by the TCP round-trip and reconnect suites — is dumped
// there so the workflow can upload it as a post-mortem artifact.
func TestMain(m *testing.M) {
	code := m.Run()
	if code != 0 {
		dumpFlightOnFailure()
	}
	os.Exit(code)
}

func dumpFlightOnFailure() {
	path := os.Getenv("BWC_FLIGHT_DUMP")
	if path == "" {
		return
	}
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight dump: %v\n", err)
			return
		}
		defer f.Close()
		w = f
	}
	rec := telemetry.FlightDefault()
	fmt.Fprintf(w, "# flight dump: %d events recorded, last %d retained\n", rec.Seq(), len(rec.Snapshot()))
	if _, err := rec.WriteTo(w); err != nil {
		fmt.Fprintf(os.Stderr, "flight dump: %v\n", err)
	}
}
