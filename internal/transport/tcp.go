package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/telemetry"
)

// maxFrame bounds a single wire frame; protocol messages are small
// (id slices and scalars), so anything larger indicates a corrupt or
// hostile stream and tears the connection down.
const maxFrame = 1 << 20

// wireVersion is the TCP frame format version, carried in every frame
// header so mixed-version processes fail loudly at the first frame
// instead of mis-decoding each other. Version 2 added the header's
// version and payload-tag bytes and the trace payloads (v1 frames had
// neither byte, so a v1 peer is rejected by the header check, not by
// gob).
const wireVersion = 2

// Frame payload tags. Untraced messages — all gossip, and every query
// when tracing is off — are encoded as a wireMessage, whose gob type
// descriptors exclude the trace structs; each frame uses a fresh
// encoder, so those descriptors would otherwise ride on every single
// frame (+50% on a typical gossip body) whether or not tracing is on.
// Only frames that actually carry trace state pay for its schema.
// Snapshot chunks get the same treatment for the same reason: they are
// rare and huge where gossip is constant and tiny, so their schema (and
// payload) must never ride the lean frame.
const (
	frameLean     = 0 // payload is a gob wireMessage (no trace or snapshot state)
	frameTraced   = 1 // payload is a gob Message (trace context or event)
	frameSnapshot = 2 // payload is a gob Message carrying a snapshot chunk
)

// wireMessage is the lean frame payload: Message minus the trace
// fields. It must list exactly the non-trace fields of Message.
type wireMessage struct {
	Kind       Kind
	From, To   int
	Nodes      []int
	CRT        []int
	Query      *Query
	NodeQuery  *NodeQuery
	Result     *Result
	NodeResult *NodeResult
}

// TCPConfig configures a TCPTransport. Only Listen is required.
type TCPConfig struct {
	// Listen is the local listen address ("127.0.0.1:0" for an ephemeral
	// port; read the bound address back with Addr).
	Listen string
	// Routes maps remote peer ids to the address of the process hosting
	// them. Locally registered peers need no route.
	Routes map[int]string
	// DialTimeout bounds one connection attempt (non-positive: 2s).
	DialTimeout time.Duration
	// SendTimeout bounds a blocking Send waiting for outbound queue
	// space, and each frame write (non-positive: 5s).
	SendTimeout time.Duration
	// BackoffBase is the first reconnect delay (non-positive: 25ms);
	// subsequent attempts double it up to BackoffMax, plus jitter.
	BackoffBase time.Duration
	// BackoffMax caps the reconnect delay (non-positive: 1s).
	BackoffMax time.Duration
	// QueueLen is the per-remote outbound queue length (non-positive:
	// DefaultInboxCapacity).
	QueueLen int
	// InboxCapacity is the local per-peer inbox length (non-positive:
	// DefaultInboxCapacity).
	InboxCapacity int
	// SocketBuffer sizes the kernel send and receive buffers of every
	// connection, in bytes (non-positive: 8192). Deliberately small: the
	// kernel buffer is a FIFO the coalescing layer cannot reach into, so
	// a large one lets a fast writer queue seconds of stale gossip ahead
	// of a slow reader. A small buffer pushes that backlog back into the
	// sender's per-slot coalescing buffer, where newer values supersede
	// older ones and delivered gossip stays fresh.
	SocketBuffer int
	// JitterSeed seeds the backoff jitter stream (0: derived from the
	// listen address). Jitter only spreads reconnect storms; it never
	// affects protocol state.
	JitterSeed int64
}

// withDefaults fills the zero fields.
func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 5 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.QueueLen <= 0 {
		c.QueueLen = DefaultInboxCapacity
	}
	if c.InboxCapacity <= 0 {
		c.InboxCapacity = DefaultInboxCapacity
	}
	if c.SocketBuffer <= 0 {
		c.SocketBuffer = 8192
	}
	return c
}

// tune applies the transport's socket options to a new connection. Best
// effort: a connection that rejects the options still works, it just
// buffers more.
func (t *TCPTransport) tune(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetWriteBuffer(t.cfg.SocketBuffer)
		tc.SetReadBuffer(t.cfg.SocketBuffer)
	}
}

// TCPTransport moves messages over real TCP connections:
// length-prefixed gob frames, one outbound connection per remote
// process with a writer goroutine, per-connection reconnect with
// exponential backoff and jitter, and an accept loop feeding locally
// registered peer inboxes. Sends to locally registered peers
// short-circuit in process; everything else is routed by TCPConfig.Routes
// (extended at runtime with AddRoute).
type TCPTransport struct {
	cfg        TCPConfig
	ln         net.Listener
	closed     chan struct{}
	closeOnce  sync.Once
	closeErr   error
	wg         sync.WaitGroup
	reconnects atomic.Int64
	flight     flightRef
	ledger     ledgerRef

	mu     sync.Mutex
	eps    map[int]*endpoint   // guarded by mu
	routes map[int]string      // guarded by mu
	conns  map[string]*tcpConn // guarded by mu
}

// SetFlight attaches a flight recorder; non-gossip frames, drops and
// reconnect attempts are recorded, and a sustained reconnect failure
// sequence fires a reconnect_storm anomaly dump. A nil recorder
// detaches.
func (t *TCPTransport) SetFlight(r *telemetry.FlightRecorder) { t.flight.set(r) }

// SetLedger attaches a bandwidth ledger: outbound frames account their
// exact wire length on a successful write, inbound frames on delivery
// to a local inbox, and in-process short-circuit deliveries account the
// WireSize estimate once like the channel transport. A nil ledger
// detaches.
func (t *TCPTransport) SetLedger(l *bwledger.Ledger) { t.ledger.set(l) }

// noteReconnect accounts one failed dial/write attempt on a connection:
// counters, the flight ring, and — when the consecutive-failure count
// crosses the storm threshold — the anomaly dump.
func (t *TCPTransport) noteReconnect(addr string, attempt int) {
	t.reconnects.Add(1)
	mTCPReconnects.Inc()
	fl := t.flight.get()
	fl.Record(flightReconnect, -1, -1, fmt.Sprintf("%s attempt=%d", addr, attempt))
	if attempt == reconnectStormAttempts {
		fl.Anomaly(anomalyReconnectStorm, -1, -1,
			fmt.Sprintf("%s unreachable after %d attempts", addr, attempt))
	}
}

// tcpConn is one outbound connection: an address, queues, and a writer
// goroutine that owns dialing, reconnecting and framing.
//
// Queries and results use a bounded FIFO (out). Gossip uses a coalescing
// buffer instead: the protocol's gossip is idempotent latest-state
// transfer, so when the writer falls behind the tick rate (slow link,
// reconnect backoff), a newer message for the same (from, to, kind)
// supersedes the queued one rather than piling up behind it. This bounds
// the gossip backlog at the overlay's edge count, keeps delivered gossip
// fresh, and — unlike dropping at a full FIFO — can never starve one
// peer's updates behind another's: every (from, to, kind) slot
// eventually ships its latest value.
type tcpConn struct {
	addr string
	out  chan Message
	kick chan struct{} // signals the writer that gossip is pending

	mu     sync.Mutex
	gossip map[gossipKey]Message // guarded by mu; latest message per slot
	order  []gossipKey           // guarded by mu; FIFO of pending slots
}

// gossipKey identifies one coalescing slot: a directed overlay edge and
// a gossip kind.
type gossipKey struct {
	from, to int
	kind     Kind
}

// enqueueGossip records m as the latest value of its slot and wakes the
// writer. It never blocks and never drops the newest value.
func (c *tcpConn) enqueueGossip(m Message) {
	key := gossipKey{from: m.From, to: m.To, kind: m.Kind}
	c.mu.Lock()
	if _, pending := c.gossip[key]; !pending {
		c.order = append(c.order, key)
	} else {
		mDropped.Inc(reasonSuperseded)
	}
	c.gossip[key] = m
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// popGossip takes the oldest pending slot's latest message.
func (c *tcpConn) popGossip() (Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return Message{}, false
	}
	key := c.order[0]
	c.order = c.order[1:]
	m := c.gossip[key]
	delete(c.gossip, key)
	return m, true
}

// NewTCP builds a TCP transport listening on cfg.Listen and starts its
// accept loop.
func NewTCP(cfg TCPConfig) (*TCPTransport, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCPTransport{
		cfg:    cfg,
		ln:     ln,
		closed: make(chan struct{}),
		eps:    make(map[int]*endpoint),
		routes: make(map[int]string, len(cfg.Routes)),
		conns:  make(map[string]*tcpConn),
	}
	for id, addr := range cfg.Routes {
		t.routes[id] = addr
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Reconnects returns how many reconnect dial attempts this transport has
// made (also exported as bwc_transport_tcp_reconnects_total).
func (t *TCPTransport) Reconnects() int64 { return t.reconnects.Load() }

// AddRoute maps a remote peer id to the address of its hosting process,
// replacing any previous route.
func (t *TCPTransport) AddRoute(id int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[id] = addr
}

// Register attaches a local peer and returns its inbound channel.
func (t *TCPTransport) Register(id int) (<-chan Message, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	if _, ok := t.eps[id]; ok {
		return nil, fmt.Errorf("transport: peer %d already registered", id)
	}
	ep := &endpoint{inbox: make(chan Message, t.cfg.InboxCapacity), gone: make(chan struct{})}
	t.eps[id] = ep
	return ep.inbox, nil
}

// Unregister detaches a local peer. Unknown ids are a no-op.
func (t *TCPTransport) Unregister(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ep, ok := t.eps[id]; ok {
		close(ep.gone)
		delete(t.eps, id)
	}
	return nil
}

// endpoint returns the local endpoint for id, nil if not registered.
func (t *TCPTransport) endpoint(id int) *endpoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eps[id]
}

// route returns the configured address for a remote peer id.
func (t *TCPTransport) route(id int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.routes[id]
}

// conn returns the outbound connection for addr, creating it (and its
// writer goroutine) on first use.
func (t *TCPTransport) conn(addr string) *tcpConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[addr]; ok {
		return c
	}
	c := &tcpConn{
		addr:   addr,
		out:    make(chan Message, t.cfg.QueueLen),
		kick:   make(chan struct{}, 1),
		gossip: make(map[gossipKey]Message),
	}
	t.conns[addr] = c
	t.wg.Add(1)
	go t.writeLoop(c)
	return c
}

// Send delivers m to peer m.To: in-process when the peer is registered
// locally, otherwise enqueued on the connection to its routed process.
// Blocks up to SendTimeout for queue space (gossip coalesces instead of
// blocking).
func (t *TCPTransport) Send(m Message) error {
	if ep := t.endpoint(m.To); ep != nil {
		// Size the frame before the handoff: once the inbox accepts m
		// the receiver owns its pointer fields, so reading them
		// afterwards would race (see ChanTransport.Send).
		size := m.WireSize()
		select {
		case ep.inbox <- m:
			mDelivered.Inc(m.Kind.String())
			t.ledger.get().Record(m.From, m.To, m.Kind.String(), size)
			if !m.Kind.Gossip() {
				t.flight.get().Record(flightSend, m.From, m.To, m.Kind.String())
			}
			return nil
		case <-ep.gone:
			return ErrUnknownPeer
		case <-t.closed:
			return ErrClosed
		}
	}
	addr := t.route(m.To)
	if addr == "" {
		mDropped.Inc(reasonNoRoute)
		t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonNoRoute)
		return ErrUnknownPeer
	}
	c := t.conn(addr)
	if m.Kind.Gossip() {
		c.enqueueGossip(m)
		return nil
	}
	timer := time.NewTimer(t.cfg.SendTimeout)
	defer timer.Stop()
	select {
	case c.out <- m:
		return nil
	case <-t.closed:
		return ErrClosed
	case <-timer.C:
		mDropped.Inc(reasonQueueFull)
		t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonQueueFull)
		return ErrTimeout
	}
}

// TrySend attempts best-effort delivery of m to peer m.To; a full inbox
// or outbound queue drops the message (counted) and returns ErrInboxFull.
// Remote gossip never fails this way: it coalesces into its slot, where
// only superseded values are discarded.
func (t *TCPTransport) TrySend(m Message) error {
	if ep := t.endpoint(m.To); ep != nil {
		size := m.WireSize() // before the handoff; see Send
		select {
		case ep.inbox <- m:
			mDelivered.Inc(m.Kind.String())
			t.ledger.get().Record(m.From, m.To, m.Kind.String(), size)
			if !m.Kind.Gossip() {
				t.flight.get().Record(flightSend, m.From, m.To, m.Kind.String())
			}
			return nil
		default:
			mDropped.Inc(reasonInboxFull)
			t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonInboxFull)
			return ErrInboxFull
		}
	}
	addr := t.route(m.To)
	if addr == "" {
		mDropped.Inc(reasonNoRoute)
		t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonNoRoute)
		return ErrUnknownPeer
	}
	c := t.conn(addr)
	if m.Kind.Gossip() {
		c.enqueueGossip(m)
		return nil
	}
	select {
	case c.out <- m:
		return nil
	default:
		mDropped.Inc(reasonQueueFull)
		t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonQueueFull)
		return ErrInboxFull
	}
}

// writeLoop owns one outbound connection: it dials lazily, writes
// length-prefixed gob frames with a deadline, and on any error tears the
// connection down and reconnects with exponential backoff plus jitter,
// retrying the in-flight message until the transport closes.
func (t *TCPTransport) writeLoop(c *tcpConn) {
	defer t.wg.Done()
	// Jitter spreads simultaneous reconnect attempts; seeded per
	// connection so backoff remains reproducible for a fixed config.
	h := fnv.New64a()
	io.WriteString(h, c.addr)
	rng := rand.New(rand.NewSource(t.cfg.JitterSeed ^ int64(h.Sum64())))
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	attempt := 0
	for {
		var m Message
		ok := false
		// Queries and results first — they are latency-sensitive and
		// bounded; gossip slots hold only the latest value, so serving
		// them second never lets gossip go stale.
		select {
		case m = <-c.out:
			ok = true
		default:
		}
		if !ok {
			m, ok = c.popGossip()
		}
		if !ok {
			select {
			case <-t.closed:
				return
			case m = <-c.out:
			case <-c.kick:
				if m, ok = c.popGossip(); !ok {
					continue
				}
			}
		}
		select {
		case <-t.closed:
			return
		default:
		}
		frame, err := encodeFrame(m)
		if err != nil {
			// Unencodable message: drop it rather than wedge the queue.
			mDropped.Inc(reasonQueueFull)
			continue
		}
		for {
			if conn == nil {
				conn, err = net.DialTimeout("tcp", c.addr, t.cfg.DialTimeout)
				if err == nil {
					t.tune(conn)
				} else {
					attempt++
					t.noteReconnect(c.addr, attempt)
					if !t.backoffWait(attempt, rng) {
						return
					}
					continue
				}
				if attempt > 0 {
					attempt = 0
				}
			}
			conn.SetWriteDeadline(time.Now().Add(t.cfg.SendTimeout))
			if _, err = conn.Write(frame); err == nil {
				mTCPFrames.Inc(dirSent)
				t.ledger.get().Record(m.From, m.To, m.Kind.String(), len(frame))
				if !m.Kind.Gossip() {
					t.flight.get().Record(flightSend, m.From, m.To, m.Kind.String())
				}
				break
			}
			conn.Close()
			conn = nil
			attempt++
			t.noteReconnect(c.addr, attempt)
			if !t.backoffWait(attempt, rng) {
				return
			}
		}
	}
}

// backoffWait sleeps the exponential-backoff delay for the given attempt
// (base doubling up to max, plus up to 50% jitter). It returns false if
// the transport closed while waiting.
func (t *TCPTransport) backoffWait(attempt int, rng *rand.Rand) bool {
	d := t.cfg.BackoffBase
	for i := 1; i < attempt && d < t.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > t.cfg.BackoffMax {
		d = t.cfg.BackoffMax
	}
	d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.closed:
		return false
	}
}

// acceptLoop accepts inbound connections until the listener closes.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.tune(conn)
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection and delivers them
// to local inboxes. It exits on any read error (the remote writer
// reconnects) or when the transport closes.
func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	// A blocked Read only unblocks when the connection closes; this
	// watcher ties the connection's life to the transport's.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		select {
		case <-t.closed:
			conn.Close()
		case <-stop:
		}
	}()
	br := bufio.NewReader(conn)
	for {
		m, size, err := readFrame(br)
		if err != nil {
			return
		}
		mTCPFrames.Inc(dirRecv)
		ep := t.endpoint(m.To)
		if ep == nil {
			mDropped.Inc(reasonUnknownPeer)
			t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonUnknownPeer)
			continue
		}
		// Best-effort kinds are shed on a full inbox: gossip is re-sent
		// every tick and a lost trace report becomes an explicit gap, so
		// blocking the whole stream on one full inbox would only delay
		// fresher values (and any queries framed behind them).
		if m.Kind.BestEffort() {
			select {
			case ep.inbox <- m:
				mDelivered.Inc(m.Kind.String())
				t.ledger.get().Record(m.From, m.To, m.Kind.String(), size)
				if !m.Kind.Gossip() {
					t.flight.get().Record(flightRecv, m.To, m.From, m.Kind.String())
				}
			default:
				mDropped.Inc(reasonInboxFull)
				t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonInboxFull)
			}
			continue
		}
		select {
		case ep.inbox <- m:
			mDelivered.Inc(m.Kind.String())
			t.ledger.get().Record(m.From, m.To, m.Kind.String(), size)
			t.flight.get().Record(flightRecv, m.To, m.From, m.Kind.String())
		case <-ep.gone:
			mDropped.Inc(reasonUnknownPeer)
			t.flight.get().Record(flightDrop, m.From, m.To, m.Kind.String()+" "+reasonUnknownPeer)
		case <-t.closed:
			return
		}
	}
}

// encodeFrame renders m as one self-contained wire frame: a 4-byte
// big-endian body length, a 1-byte wire version, a 1-byte payload tag,
// then the gob-encoded payload. Each frame carries its own type
// information, so a stream survives reconnects and frames can be
// decoded in isolation; the tag keeps the trace structs' type
// descriptors off untraced frames entirely (see frameLean).
func encodeFrame(m Message) ([]byte, error) {
	var body bytes.Buffer
	tag := byte(frameLean)
	var err error
	if m.Snapshot != nil {
		tag = frameSnapshot
		err = gob.NewEncoder(&body).Encode(m)
	} else if m.Trace != nil || m.Event != nil {
		tag = frameTraced
		err = gob.NewEncoder(&body).Encode(m)
	} else {
		err = gob.NewEncoder(&body).Encode(wireMessage{
			Kind: m.Kind, From: m.From, To: m.To,
			Nodes: m.Nodes, CRT: m.CRT,
			Query: m.Query, NodeQuery: m.NodeQuery,
			Result: m.Result, NodeResult: m.NodeResult,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("transport: encode frame: %w", err)
	}
	if body.Len() > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", body.Len(), maxFrame)
	}
	frame := make([]byte, 6+body.Len())
	binary.BigEndian.PutUint32(frame, uint32(body.Len()))
	frame[4] = wireVersion
	frame[5] = tag
	copy(frame[6:], body.Bytes())
	return frame, nil
}

// readFrame reads and decodes one frame from r, rejecting frames whose
// header declares a version or payload tag this build does not speak.
// The second return is the frame's full wire length (header included),
// which the read loop accounts to the bandwidth ledger on delivery.
func readFrame(r io.Reader) (Message, int, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return Message{}, 0, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	if hdr[4] != wireVersion {
		return Message{}, 0, fmt.Errorf("transport: unsupported wire version %d (this build speaks %d)", hdr[4], wireVersion)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, 0, err
	}
	size := len(hdr) + len(body)
	switch hdr[5] {
	case frameLean:
		var w wireMessage
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&w); err != nil {
			return Message{}, 0, fmt.Errorf("transport: decode frame: %w", err)
		}
		return Message{
			Kind: w.Kind, From: w.From, To: w.To,
			Nodes: w.Nodes, CRT: w.CRT,
			Query: w.Query, NodeQuery: w.NodeQuery,
			Result: w.Result, NodeResult: w.NodeResult,
		}, size, nil
	case frameTraced, frameSnapshot:
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
			return Message{}, 0, fmt.Errorf("transport: decode frame: %w", err)
		}
		return m, size, nil
	}
	return Message{}, 0, fmt.Errorf("transport: unsupported frame payload tag %d", hdr[5])
}

// Close shuts the transport down: the listener stops accepting, every
// open connection is torn down, blocked senders release, and Close
// returns once every transport goroutine has exited.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.closeErr = t.ln.Close()
		t.wg.Wait()
	})
	return t.closeErr
}
