package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bwcluster/internal/bwledger"
	"bwcluster/internal/telemetry"
)

// FaultConfig parameterizes deterministic fault injection. All
// probabilities are in [0, 1); the zero value injects nothing.
type FaultConfig struct {
	// Seed drives the entire fault schedule: two FaultTransports built
	// with equal configs produce identical Decision sequences.
	Seed int64
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Delay is the probability a delivery is deferred by a schedule-drawn
	// duration in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected delays (non-positive: 2ms).
	MaxDelay time.Duration
	// Reorder is the probability a gossip message is held back and
	// delivered after the next message to the same destination (queries
	// are never held: gossip resends make holdback safe, a held query
	// would just stall).
	Reorder float64
	// GossipOnly restricts drop/duplicate/delay/reorder to the
	// best-effort kinds — periodic gossip and trace reports (whose loss
	// surfaces as explicit trace gaps); queries and results pass through
	// unfaulted. Partitions always apply to every kind — a partitioned
	// network cannot route queries either.
	GossipOnly bool
	// Partitions is the scheduled partition plan.
	Partitions []Partition
}

// Partition cuts an island of peers off from the rest of the network for
// a window of the transport's global send sequence. Expressing the
// window in send counts rather than wall time keeps the schedule
// deterministic: the runtime gossips every tick, so sends accumulate at
// a steady rate and the partition both starts and heals regardless of
// timing.
type Partition struct {
	// After is the global send index at which the partition activates.
	After int
	// Until is the send index at which it heals (exclusive).
	Until int
	// Island is the peer set cut off from everyone else.
	Island []int
}

// Decision is one slot of the fault schedule: what happens to the i-th
// faultable message. It is a pure function of (Seed, i).
type Decision struct {
	// Drop discards the message.
	Drop bool
	// Duplicate delivers the message twice.
	Duplicate bool
	// Delay defers delivery by this duration (0: deliver immediately).
	Delay time.Duration
	// Reorder holds a gossip message until the next message to the same
	// destination has passed.
	Reorder bool
}

// FaultTransport wraps an inner transport and injects faults from a
// seeded, reproducible schedule: drops, duplicates, delays, reorders and
// scheduled partitions. The *schedule* (which message suffers which
// fault) derives only from the seed and the message sequence; actual
// delayed deliveries use real timers, which is why this package is an
// I/O package under the determinism policy while the schedule itself
// stays seed-driven.
type FaultTransport struct {
	inner  Transport
	cfg    FaultConfig
	island map[int]bool
	flight flightRef

	mu       sync.Mutex
	rng      *rand.Rand       // guarded by mu
	schedule []Decision       // guarded by mu
	sends    int              // guarded by mu
	faulted  int              // guarded by mu
	held     map[int]*Message // guarded by mu
}

// NewFault wraps inner with deterministic fault injection.
func NewFault(inner Transport, cfg FaultConfig) (*FaultTransport, error) {
	if inner == nil {
		return nil, fmt.Errorf("transport: nil inner transport")
	}
	for name, p := range map[string]float64{
		"Drop": cfg.Drop, "Duplicate": cfg.Duplicate, "Delay": cfg.Delay, "Reorder": cfg.Reorder,
	} {
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("transport: fault rate %s must be in [0,1), got %v", name, p)
		}
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	island := make(map[int]bool)
	for _, part := range cfg.Partitions {
		if part.After < 0 || part.Until <= part.After {
			return nil, fmt.Errorf("transport: partition window [%d,%d) is empty", part.After, part.Until)
		}
		if len(part.Island) == 0 {
			return nil, fmt.Errorf("transport: partition with empty island")
		}
		for _, id := range part.Island {
			island[id] = true
		}
	}
	return &FaultTransport{
		inner:  inner,
		cfg:    cfg,
		island: island,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		held:   make(map[int]*Message),
	}, nil
}

// DecisionAt returns the i-th slot of the fault schedule. The schedule
// is generated lazily but never changes: it is a pure function of the
// seed, which the determinism regression test asserts.
func (t *FaultTransport) DecisionAt(i int) Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.decisionAtLocked(i)
}

// decisionAtLocked extends the cached schedule to cover slot i. Every
// slot consumes exactly five draws from the seeded stream, so slot i is
// independent of which messages happened to arrive before it was needed.
func (t *FaultTransport) decisionAtLocked(i int) Decision {
	for len(t.schedule) <= i {
		var d Decision
		d.Drop = t.rng.Float64() < t.cfg.Drop
		d.Duplicate = t.rng.Float64() < t.cfg.Duplicate
		delayed := t.rng.Float64() < t.cfg.Delay
		frac := t.rng.Float64()
		if delayed {
			d.Delay = time.Duration(frac*float64(t.cfg.MaxDelay)) + time.Microsecond
		}
		d.Reorder = t.rng.Float64() < t.cfg.Reorder
		t.schedule = append(t.schedule, d)
	}
	return t.schedule[i]
}

// Sends returns the number of messages offered to the transport so far
// (including dropped ones); partition windows are expressed against this
// counter.
func (t *FaultTransport) Sends() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sends
}

// partitionCut reports whether the seq-th send crosses an active
// partition boundary.
func (t *FaultTransport) partitionCut(seq, from, to int) bool {
	for _, part := range t.cfg.Partitions {
		if seq >= part.After && seq < part.Until && t.island[from] != t.island[to] {
			return true
		}
	}
	return false
}

// SetFlight attaches a flight recorder to the injector and, when the
// inner transport supports one, forwards it there too — one call wires
// the whole stack.
func (t *FaultTransport) SetFlight(r *telemetry.FlightRecorder) {
	t.flight.set(r)
	if fs, ok := t.inner.(flightSetter); ok {
		fs.SetFlight(r)
	}
}

// SetLedger forwards the bandwidth ledger to the inner transport, which
// accounts bytes at actual delivery — so injected drops and partitions
// never count, and duplicates count twice, exactly as they hit inboxes.
func (t *FaultTransport) SetLedger(l *bwledger.Ledger) {
	if ls, ok := t.inner.(ledgerSetter); ok {
		ls.SetLedger(l)
	}
}

// Register delegates to the inner transport.
func (t *FaultTransport) Register(id int) (<-chan Message, error) { return t.inner.Register(id) }

// Unregister delegates to the inner transport.
func (t *FaultTransport) Unregister(id int) error { return t.inner.Unregister(id) }

// Send delivers m through the fault schedule with the inner transport's
// blocking semantics.
func (t *FaultTransport) Send(m Message) error { return t.inject(m, t.inner.Send) }

// TrySend delivers m through the fault schedule with the inner
// transport's best-effort semantics.
func (t *FaultTransport) TrySend(m Message) error { return t.inject(m, t.inner.TrySend) }

// inject applies the next fault decision to m and delivers accordingly.
// A dropped or held message returns nil: from the sender's view it was
// accepted, exactly like real packet loss.
func (t *FaultTransport) inject(m Message, deliver func(Message) error) error {
	t.mu.Lock()
	seq := t.sends
	t.sends++
	cut := t.partitionCut(seq, m.From, m.To)
	var dec Decision
	if !cut && (!t.cfg.GossipOnly || m.Kind.BestEffort()) {
		dec = t.decisionAtLocked(t.faulted)
		t.faulted++
	}
	hold := false
	var flush *Message
	if !cut && !dec.Drop {
		if dec.Reorder && m.Kind.Gossip() && t.held[m.To] == nil {
			mc := m.clone()
			t.held[m.To] = &mc
			hold = true
		} else if h := t.held[m.To]; h != nil {
			flush = h
			delete(t.held, m.To)
		}
	}
	t.mu.Unlock()

	switch {
	case cut:
		mFaults.Inc(faultPartition)
		t.flight.get().Record(flightFault, m.From, m.To, faultPartition+" "+m.Kind.String())
		return nil
	case dec.Drop:
		mFaults.Inc(faultDrop)
		t.flight.get().Record(flightFault, m.From, m.To, faultDrop+" "+m.Kind.String())
		return nil
	case hold:
		mFaults.Inc(faultReorder)
		t.flight.get().Record(flightFault, m.From, m.To, faultReorder+" "+m.Kind.String())
		return nil
	}
	var err error
	if dec.Delay > 0 {
		mFaults.Inc(faultDelay)
		t.flight.get().Record(flightFault, m.From, m.To, faultDelay+" "+m.Kind.String())
		dm := m.clone()
		time.AfterFunc(dec.Delay, func() { _ = deliver(dm) })
	} else {
		err = deliver(m)
	}
	if dec.Duplicate {
		mFaults.Inc(faultDuplicate)
		t.flight.get().Record(flightFault, m.From, m.To, faultDuplicate+" "+m.Kind.String())
		_ = deliver(m.clone())
	}
	if flush != nil {
		// The held message was gossip; deliver it best-effort after the
		// message that overtook it.
		_ = t.inner.TrySend(*flush)
	}
	return err
}

// Close flushes any held messages and closes the inner transport.
func (t *FaultTransport) Close() error {
	t.mu.Lock()
	var rest []*Message
	for _, h := range t.held {
		rest = append(rest, h)
	}
	t.held = make(map[int]*Message)
	t.mu.Unlock()
	for _, h := range rest {
		_ = t.inner.TrySend(*h)
	}
	return t.inner.Close()
}
