package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"
	"time"

	"bwcluster/internal/telemetry"
)

// TestWireVersionRoundTrip: a current-version frame round-trips with the
// trace context and trace-event payloads intact.
func TestWireVersionRoundTrip(t *testing.T) {
	m := Message{
		Kind: KindQuery, From: 1, To: 2,
		Query: &Query{ID: 9, Origin: 1, K: 3, Path: []int{1}},
		Trace: &TraceContext{TraceID: 9, ParentSpan: 77, Hop: 2, Origin: 1, SentUnixNano: 123},
	}
	frame, err := encodeFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[4] != wireVersion {
		t.Fatalf("frame version byte = %d, want %d", frame[4], wireVersion)
	}
	if frame[5] != frameTraced {
		t.Fatalf("traced frame tag = %d, want %d", frame[5], frameTraced)
	}
	got, _, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, m)
	}

	ev := Message{
		Kind: KindTrace, From: 2, To: 1,
		Event: &TraceEvent{TraceID: 9, SpanID: 100, ParentSpan: 77, Host: 2, Peer: 1,
			Hop: 2, Kind: "query", StartUnixNano: 5, DurationNs: 7, QueueNs: 3, Note: "forward"},
	}
	frame, err = encodeFrame(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ev) {
		t.Fatalf("trace event round trip differs:\n got %+v\nwant %+v", got, ev)
	}
}

// TestWireLeanFrames: untraced messages ship as lean frames that carry
// no trace schema at all — gob type descriptors name the types they
// describe, so the trace structs' names appearing in an untraced frame
// would mean every gossip message pays for tracing even when it is off.
func TestWireLeanFrames(t *testing.T) {
	gossip := Message{Kind: KindNodeInfo, From: 3, To: 7, Nodes: []int{1, 2, 3, 4, 5}}
	frame, err := encodeFrame(gossip)
	if err != nil {
		t.Fatal(err)
	}
	if frame[5] != frameLean {
		t.Fatalf("untraced frame tag = %d, want %d", frame[5], frameLean)
	}
	if bytes.Contains(frame, []byte("TraceContext")) || bytes.Contains(frame, []byte("TraceEvent")) {
		t.Fatal("untraced frame carries trace type descriptors")
	}
	got, _, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, gossip) {
		t.Fatalf("lean round trip differs:\n got %+v\nwant %+v", got, gossip)
	}

	traced := gossip
	traced.Trace = &TraceContext{TraceID: 1, Origin: 3}
	big, err := encodeFrame(traced)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) >= len(big) {
		t.Fatalf("lean frame (%d bytes) not smaller than traced frame (%d bytes)", len(frame), len(big))
	}
}

// TestWireSnapshotFrames: snapshot chunks ride their own frame tag and
// round-trip intact, while lean frames stay free of the snapshot
// schema — the per-tick gossip path must not pay a descriptor tax for
// the rare replication stream (the same bargain frameTraced strikes
// for trace state).
func TestWireSnapshotFrames(t *testing.T) {
	snap := Message{
		Kind: KindSnapshot, From: 1, To: 1000,
		Snapshot: &Snapshot{ID: 42, Epoch: 7, Seq: 2, Total: 5, Data: []byte("chunk-bytes")},
	}
	frame, err := encodeFrame(snap)
	if err != nil {
		t.Fatal(err)
	}
	if frame[5] != frameSnapshot {
		t.Fatalf("snapshot frame tag = %d, want %d", frame[5], frameSnapshot)
	}
	got, _, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("snapshot round trip differs:\n got %+v\nwant %+v", got, snap)
	}

	lean, err := encodeFrame(Message{Kind: KindCRT, From: 3, To: 7, CRT: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(lean, []byte("Snapshot")) {
		t.Fatal("lean frame carries the snapshot type descriptor")
	}
	if KindSnapshot.BestEffort() || KindSnapshot.Gossip() {
		t.Fatal("snapshot chunks must be reliable: never shed, never coalesced")
	}
	if got := KindSnapshot.String(); got != "snapshot" {
		t.Errorf("KindSnapshot label = %q", got)
	}
}

// TestWireRejectsUnknownTag: a frame with an unknown payload tag fails
// decisively instead of being fed to the wrong gob type.
func TestWireRejectsUnknownTag(t *testing.T) {
	frame, err := encodeFrame(Message{Kind: KindQuery, Query: &Query{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	frame[5] = 0x7f
	if _, _, err := readFrame(bytes.NewReader(frame)); err == nil ||
		!strings.Contains(err.Error(), "payload tag") {
		t.Fatalf("unknown payload tag accepted or wrong error: %v", err)
	}
}

// TestWireVersionRejectsFuture: a frame declaring a version this build
// does not speak is rejected at the header, before gob sees any bytes.
func TestWireVersionRejectsFuture(t *testing.T) {
	frame, err := encodeFrame(Message{Kind: KindQuery, Query: &Query{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = wireVersion + 1
	if _, _, err := readFrame(bytes.NewReader(frame)); err == nil ||
		!strings.Contains(err.Error(), "wire version") {
		t.Fatalf("future version accepted or wrong error: %v", err)
	}
}

// TestWireVersionRejectsLegacy: a v1 frame (4-byte length, no version
// byte, gob body) must fail decisively — the byte where v2 expects the
// version is the first gob byte, which never matches.
func TestWireVersionRejectsLegacy(t *testing.T) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(Message{Kind: KindQuery, Query: &Query{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	legacy := make([]byte, 4+body.Len())
	binary.BigEndian.PutUint32(legacy, uint32(body.Len()))
	copy(legacy[4:], body.Bytes())
	if _, _, err := readFrame(bytes.NewReader(legacy)); err == nil {
		t.Fatal("legacy unversioned frame was accepted")
	}
}

// TestKindBestEffort pins the shed-under-pressure scope: gossip and
// trace reports are best-effort, queries and results never are.
func TestKindBestEffort(t *testing.T) {
	for _, k := range []Kind{KindNodeInfo, KindCRT, KindTrace} {
		if !k.BestEffort() {
			t.Errorf("%v must be best-effort", k)
		}
	}
	for _, k := range []Kind{KindQuery, KindNodeQuery, KindResult, KindNodeResult} {
		if k.BestEffort() {
			t.Errorf("%v must not be best-effort", k)
		}
	}
	if got := KindTrace.String(); got != "trace" {
		t.Errorf("KindTrace label = %q", got)
	}
}

// TestChanFlightRecords: a wired ChanTransport records non-gossip
// deliveries and drops in the flight ring, and skips gossip volume.
func TestChanFlightRecords(t *testing.T) {
	tr := NewChan(2)
	defer tr.Close()
	fl := telemetry.NewFlightRecorder(32)
	tr.SetFlight(fl)
	if _, err := tr.Register(2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{Kind: KindQuery, From: 1, To: 2, Query: &Query{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.TrySend(Message{Kind: KindNodeInfo, From: 1, To: 2}); err != nil {
		t.Fatal(err) // fills the inbox; gossip must not be recorded
	}
	if err := tr.TrySend(Message{Kind: KindResult, From: 1, To: 2, Result: &Result{ID: 1}}); err == nil {
		t.Fatal("expected inbox-full drop")
	}
	snap := fl.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("flight holds %d events, want send+drop: %+v", len(snap), snap)
	}
	if snap[0].Kind != "send" || snap[0].Host != 1 || snap[0].Peer != 2 || snap[0].Detail != "query" {
		t.Errorf("send event = %+v", snap[0])
	}
	if snap[1].Kind != "drop" || !strings.Contains(snap[1].Detail, "inbox_full") {
		t.Errorf("drop event = %+v", snap[1])
	}
}

// TestFaultGossipOnlyFaultsTraceReports: under GossipOnly, trace
// reports share the gossip fault schedule (their loss is survivable as
// a trace gap) while queries still pass through unfaulted and do not
// consume schedule slots.
func TestFaultGossipOnlyFaultsTraceReports(t *testing.T) {
	inner := NewChan(8)
	ft, err := NewFault(inner, FaultConfig{Seed: 1, Drop: 0.5, GossipOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	fl := telemetry.NewFlightRecorder(32)
	ft.SetFlight(fl)
	inbox, err := ft.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	// Queries never consume fault slots under GossipOnly, so the first
	// trace report must see schedule slot 0 regardless of query traffic.
	if err := ft.Send(Message{Kind: KindQuery, From: 1, To: 2, Query: &Query{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, inbox, time.Second)
	dec := ft.DecisionAt(0)
	err = ft.TrySend(Message{Kind: KindTrace, From: 1, To: 2, Event: &TraceEvent{TraceID: 1, SpanID: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Drop {
		select {
		case m := <-inbox:
			t.Fatalf("dropped trace report was delivered: %+v", m)
		case <-time.After(50 * time.Millisecond):
		}
		found := false
		for _, ev := range fl.Snapshot() {
			if ev.Kind == "fault" && strings.Contains(ev.Detail, "drop trace") {
				found = true
			}
		}
		if !found {
			t.Fatalf("trace drop not in flight ring: %+v", fl.Snapshot())
		}
	} else {
		m := recvOne(t, inbox, time.Second)
		if m.Kind != KindTrace {
			t.Fatalf("got %v, want trace", m.Kind)
		}
	}
}

// TestFaultSetFlightForwards: wiring the fault injector wires the inner
// transport too, so one SetFlight covers the whole stack.
func TestFaultSetFlightForwards(t *testing.T) {
	inner := NewChan(1)
	ft, err := NewFault(inner, FaultConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	fl := telemetry.NewFlightRecorder(8)
	ft.SetFlight(fl)
	if _, err := ft.Register(2); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(Message{Kind: KindQuery, From: 1, To: 2, Query: &Query{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	snap := fl.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "send" {
		t.Fatalf("inner transport did not record through forwarded recorder: %+v", snap)
	}
}

// TestTCPReconnectStormAnomaly: a persistently unreachable route drives
// the writer's consecutive-failure count past the storm threshold,
// which must fire the flight recorder's anomaly dump exactly once per
// crossing.
func TestTCPReconnectStormAnomaly(t *testing.T) {
	tr, err := NewTCP(TCPConfig{
		Listen:      "127.0.0.1:0",
		DialTimeout: 50 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	fl := telemetry.NewFlightRecorder(64)
	anomaly := make(chan telemetry.FlightEvent, 4)
	fl.SetAnomalyHook(func(ev telemetry.FlightEvent, _ []telemetry.FlightEvent) {
		anomaly <- ev
	})
	tr.SetFlight(fl)
	// Port 1 on loopback refuses connections immediately.
	tr.AddRoute(99, "127.0.0.1:1")
	if err := tr.TrySend(Message{Kind: KindQuery, From: 0, To: 99, Query: &Query{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-anomaly:
		if ev.Kind != "reconnect_storm" {
			t.Fatalf("anomaly kind = %q", ev.Kind)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no reconnect_storm anomaly fired")
	}
	if tr.Reconnects() < reconnectStormAttempts {
		t.Fatalf("Reconnects() = %d, want >= %d", tr.Reconnects(), reconnectStormAttempts)
	}
}
