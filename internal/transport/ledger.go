package transport

import (
	"sync/atomic"

	"bwcluster/internal/bwledger"
)

// Bandwidth-ledger integration, mirroring the flight-recorder plumbing:
// transports never reach for a process-global ledger; the hosting
// runtime threads one in with SetLedger, and every accounting site goes
// through a nil-safe pointer load, so an unwired transport pays one
// atomic read per delivery.
//
// Attribution policy: the in-process transports account each message
// once, at delivery, using the deterministic WireSize estimate. TCP
// accounts framed traffic on both sides of the wire — the writer records
// the exact frame length on a successful write, the reader records the
// exact frame length on delivery — because the two ends live in
// different processes with different ledgers; in-process short-circuit
// deliveries are recorded once like the channel transport.

// ledgerRef is the shared one-field holder embedded by every transport:
// an atomically swappable, nil-safe ledger reference.
type ledgerRef struct {
	p atomic.Pointer[bwledger.Ledger]
}

// set installs the ledger (nil detaches it).
func (l *ledgerRef) set(lg *bwledger.Ledger) { l.p.Store(lg) }

// get returns the current ledger; nil (a no-op ledger) when unset.
func (l *ledgerRef) get() *bwledger.Ledger { return l.p.Load() }

// ledgerSetter is implemented by every transport in this package;
// FaultTransport uses it to forward its ledger to the wrapped inner
// transport, and the runtime uses it to wire a ledger through whatever
// transport it was built over.
type ledgerSetter interface {
	SetLedger(*bwledger.Ledger)
}

// WireSize returns a deterministic estimate of the message's framed
// size in bytes: the TCP frame header plus 8 bytes per scalar or slice
// element and the raw payload bytes. The in-process transports account
// ledger bytes with this estimate so byte totals are reproducible for a
// fixed workload regardless of transport backend; TCP uses the exact
// encoded frame length instead, which tracks this estimate closely.
func (m Message) WireSize() int {
	n := 6 + 1 + 2*8 // frame header, kind, from/to
	n += 8 * (len(m.Nodes) + len(m.CRT))
	if m.Query != nil {
		n += 8*7 + 8*len(m.Query.Path)
	}
	if m.NodeQuery != nil {
		n += 8*8 + 8*len(m.NodeQuery.Set)
	}
	if m.Result != nil {
		n += 8*6 + 8*(len(m.Result.Cluster)+len(m.Result.Path))
	}
	if m.NodeResult != nil {
		n += 8 * 5
	}
	if m.Snapshot != nil {
		n += 8*4 + len(m.Snapshot.Data)
	}
	if m.Trace != nil {
		n += 8 * 5
	}
	if m.Event != nil {
		n += 8*9 + len(m.Event.Kind) + len(m.Event.Note)
	}
	return n
}
