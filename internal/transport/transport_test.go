package transport

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"bwcluster/internal/telemetry"
)

// recvOne receives one message from ch or fails the test after d.
func recvOne(t *testing.T, ch <-chan Message, d time.Duration) Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(d):
		t.Fatalf("no message within %v", d)
		return Message{}
	}
}

func TestKindLabels(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNodeInfo: "nodeinfo", KindCRT: "crt", KindQuery: "query",
		KindNodeQuery: "nodequery", KindResult: "result", KindNodeResult: "noderesult",
		Kind(0): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if !KindNodeInfo.Gossip() || !KindCRT.Gossip() {
		t.Error("gossip kinds not marked gossip")
	}
	if KindQuery.Gossip() || KindResult.Gossip() {
		t.Error("query kinds marked gossip")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Message{
		Kind: KindQuery, From: 1, To: 2,
		Nodes: []int{1, 2}, CRT: []int{3},
		Query:      &Query{ID: 9, Path: []int{1}},
		NodeQuery:  &NodeQuery{ID: 10, Set: []int{4}},
		Result:     &Result{ID: 11, Cluster: []int{5}, Path: []int{6}},
		NodeResult: &NodeResult{ID: 12},
	}
	c := m.clone()
	if !reflect.DeepEqual(c, m) {
		t.Fatalf("clone differs: %+v vs %+v", c, m)
	}
	m.Nodes[0] = 99
	m.Query.Path[0] = 99
	m.NodeQuery.Set[0] = 99
	m.Result.Cluster[0] = 99
	if c.Nodes[0] == 99 || c.Query.Path[0] == 99 || c.NodeQuery.Set[0] == 99 || c.Result.Cluster[0] == 99 {
		t.Error("clone aliases the original's payload storage")
	}
}

func TestChanTransportBasics(t *testing.T) {
	tr := NewChan(4)
	recv1, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register(1); err == nil {
		t.Error("duplicate register should fail")
	}
	if err := tr.Send(Message{Kind: KindCRT, From: 2, To: 1, CRT: []int{1}}); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, recv1, time.Second)
	if got.Kind != KindCRT || got.From != 2 {
		t.Fatalf("got %+v", got)
	}
	if err := tr.Send(Message{To: 99}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send to unknown peer: %v", err)
	}
	if err := tr.TrySend(Message{To: 99}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("trysend to unknown peer: %v", err)
	}
	if err := tr.Unregister(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{To: 1}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send to unregistered peer: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register(2); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: %v", err)
	}
	// Close is idempotent.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// A blocked Send must release when the destination unregisters.
func TestChanSendReleasesOnUnregister(t *testing.T) {
	tr := NewChan(1)
	defer tr.Close()
	if _, err := tr.Register(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{Kind: KindQuery, To: 1}); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- tr.Send(Message{Kind: KindQuery, To: 1}) }()
	select {
	case err := <-errc:
		t.Fatalf("send returned before unregister: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := tr.Unregister(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrUnknownPeer) {
			t.Fatalf("released send err = %v, want ErrUnknownPeer", err)
		}
	case <-time.After(time.Second):
		t.Fatal("send did not release on unregister")
	}
}

// A full inbox drops best-effort sends and counts them.
func TestTrySendFullInboxCountsDrop(t *testing.T) {
	tr := NewChan(1)
	defer tr.Close()
	if _, err := tr.Register(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.TrySend(Message{Kind: KindNodeInfo, To: 1}); err != nil {
		t.Fatal(err)
	}
	before := mDropped.Value(reasonInboxFull)
	if err := tr.TrySend(Message{Kind: KindNodeInfo, To: 1}); !errors.Is(err, ErrInboxFull) {
		t.Fatalf("second trysend err = %v, want ErrInboxFull", err)
	}
	if got := mDropped.Value(reasonInboxFull); got != before+1 {
		t.Errorf("inbox_full drop counter moved %d, want 1", got-before)
	}
}

// Two fault transports with equal seeds must produce identical
// schedules, regardless of the order slots are first demanded in; a
// different seed must diverge.
func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 42, Drop: 0.3, Duplicate: 0.1, Delay: 0.2, Reorder: 0.1}
	newFT := func(seed int64) *FaultTransport {
		c := cfg
		c.Seed = seed
		ft, err := NewFault(NewChan(0), c)
		if err != nil {
			t.Fatal(err)
		}
		return ft
	}
	a, b, rev := newFT(42), newFT(42), newFT(42)
	const n = 500
	// rev demands its schedule back to front: laziness must not change it.
	for i := n - 1; i >= 0; i-- {
		rev.DecisionAt(i)
	}
	for i := 0; i < n; i++ {
		da, db, dr := a.DecisionAt(i), b.DecisionAt(i), rev.DecisionAt(i)
		if da != db || da != dr {
			t.Fatalf("slot %d: %+v vs %+v vs %+v", i, da, db, dr)
		}
	}
	other := newFT(43)
	same := true
	for i := 0; i < n; i++ {
		if a.DecisionAt(i) != other.DecisionAt(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 500-slot schedules")
	}
}

func TestFaultValidation(t *testing.T) {
	if _, err := NewFault(nil, FaultConfig{}); err == nil {
		t.Error("nil inner should fail")
	}
	if _, err := NewFault(NewChan(0), FaultConfig{Drop: 1}); err == nil {
		t.Error("rate 1 should fail")
	}
	if _, err := NewFault(NewChan(0), FaultConfig{Reorder: -0.1}); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := NewFault(NewChan(0), FaultConfig{Partitions: []Partition{{After: 5, Until: 5, Island: []int{1}}}}); err == nil {
		t.Error("empty window should fail")
	}
	if _, err := NewFault(NewChan(0), FaultConfig{Partitions: []Partition{{After: 0, Until: 5}}}); err == nil {
		t.Error("empty island should fail")
	}
}

// The number of delivered messages must follow the schedule exactly:
// drops remove, duplicates add, and both are predictable from the seed.
func TestFaultDropAndDuplicateFollowSchedule(t *testing.T) {
	for _, tc := range []struct{ drop, dup float64 }{{0.5, 0}, {0, 0.5}, {0.3, 0.3}} {
		ft, err := NewFault(NewChan(0), FaultConfig{Seed: 7, Drop: tc.drop, Duplicate: tc.dup})
		if err != nil {
			t.Fatal(err)
		}
		recv, err := ft.Register(1)
		if err != nil {
			t.Fatal(err)
		}
		const n = 100
		want := 0
		for i := 0; i < n; i++ {
			d := ft.DecisionAt(i)
			if !d.Drop {
				want++
				if d.Duplicate {
					want++
				}
			}
		}
		for i := 0; i < n; i++ {
			if err := ft.Send(Message{Kind: KindNodeInfo, From: 2, To: 1, Nodes: []int{i}}); err != nil {
				t.Fatal(err)
			}
		}
		got := 0
	drain:
		for {
			select {
			case <-recv:
				got++
			default:
				break drain
			}
		}
		if got != want {
			t.Errorf("drop=%v dup=%v: delivered %d, want %d", tc.drop, tc.dup, got, want)
		}
		if ft.Sends() != n {
			t.Errorf("Sends() = %d, want %d", ft.Sends(), n)
		}
		ft.Close()
	}
}

// Partitions cut cross-island messages during their send-count window
// and heal after it.
func TestFaultPartitionWindow(t *testing.T) {
	ft, err := NewFault(NewChan(0), FaultConfig{
		Seed:       1,
		Partitions: []Partition{{After: 0, Until: 3, Island: []int{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	recv, err := ft.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ft.Send(Message{Kind: KindCRT, From: 2, To: 1, CRT: []int{i}}); err != nil {
			t.Fatal(err)
		}
	}
	// Sends 0,1,2 fall inside the window and are cut; 3 and 4 deliver.
	for _, want := range []int{3, 4} {
		got := recvOne(t, recv, time.Second)
		if got.CRT[0] != want {
			t.Fatalf("delivered %v, want %d", got.CRT, want)
		}
	}
	select {
	case m := <-recv:
		t.Fatalf("unexpected extra delivery %+v", m)
	default:
	}
}

// A reordered (held-back) gossip message is flushed by Close at the
// latest, so holdback never loses messages.
func TestFaultReorderFlushOnClose(t *testing.T) {
	ft, err := NewFault(NewChan(0), FaultConfig{Seed: 3, Reorder: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ft.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if !ft.DecisionAt(0).Reorder {
		t.Skip("slot 0 not a reorder at this seed; schedule changed")
	}
	if err := ft.Send(Message{Kind: KindNodeInfo, From: 2, To: 1, Nodes: []int{7}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-recv:
		t.Fatalf("held message delivered early: %+v", m)
	default:
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, recv, time.Second)
	if len(got.Nodes) != 1 || got.Nodes[0] != 7 {
		t.Fatalf("flushed message = %+v", got)
	}
}

// Full payload round trip over real sockets: every payload struct must
// survive the gob frame encoding bit-identically.
func TestTCPRoundTrip(t *testing.T) {
	a, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Feed the process recorder so a failure leaves a black box for
	// TestMain's BWC_FLIGHT_DUMP artifact.
	a.SetFlight(telemetry.FlightDefault())
	b.SetFlight(telemetry.FlightDefault())
	recv1, err := a.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	recv2, err := b.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	a.AddRoute(2, b.Addr())
	b.AddRoute(1, a.Addr())

	msgs := []Message{
		{Kind: KindNodeInfo, From: 1, To: 2, Nodes: []int{3, 4, 5}},
		{Kind: KindCRT, From: 1, To: 2, CRT: []int{1, 2, 3}},
		{Kind: KindQuery, From: 1, To: 2, Query: &Query{ID: 7, Origin: 1, K: 3, ClassIdx: 2, ClassL: 4, Prev: -1, Hops: 1, Path: []int{1}}},
		{Kind: KindNodeQuery, From: 1, To: 2, NodeQuery: &NodeQuery{ID: 8, Origin: 1, Set: []int{2, 3}, L: 4, BestNode: -1, BestRadius: 9.5, Prev: -1}},
		{Kind: KindResult, From: 1, To: 2, Result: &Result{ID: 7, Cluster: []int{2, 3}, Hops: 2, Answered: 2, Class: 4, Path: []int{1, 2}}},
		{Kind: KindNodeResult, From: 1, To: 2, NodeResult: &NodeResult{ID: 8, Node: 3, Radius: 2.5, Hops: 1, Answered: 2}},
	}
	for _, m := range msgs {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
		got := recvOne(t, recv2, 5*time.Second)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mutated message:\n got %+v\nwant %+v", got, m)
		}
	}
	// And the reverse direction.
	reply := Message{Kind: KindResult, From: 2, To: 1, Result: &Result{ID: 7, Cluster: []int{9}, Hops: 3, Answered: 2, Class: 4, Path: []int{1, 2, 9}}}
	if err := b.Send(reply); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, recv1, 5*time.Second); !reflect.DeepEqual(got, reply) {
		t.Fatalf("reverse round trip mutated message: %+v", got)
	}
	// Local short-circuit: no route needed for a locally registered peer.
	local := Message{Kind: KindCRT, From: 2, To: 1, CRT: []int{5}}
	if err := a.Send(Message{Kind: KindCRT, From: 2, To: 1, CRT: []int{5}}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, recv1, time.Second); !reflect.DeepEqual(got, local) {
		t.Fatalf("local short-circuit mutated message: %+v", got)
	}
	// No route and not local: rejected, not silently dropped.
	if err := a.TrySend(Message{Kind: KindCRT, To: 99}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("unrouted trysend err = %v, want ErrUnknownPeer", err)
	}
}

// Killing the receiving process's transport and starting a new one on
// the same address must heal through the sender's reconnect loop.
func TestTCPReconnect(t *testing.T) {
	a, err := NewTCP(TCPConfig{
		Listen: "127.0.0.1:0", JitterSeed: 1,
		BackoffBase: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		DialTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetFlight(telemetry.FlightDefault())
	b1, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", JitterSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	recv2, err := b1.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	a.AddRoute(2, addr)
	if err := a.Send(Message{Kind: KindCRT, From: 1, To: 2, CRT: []int{0}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, recv2, 5*time.Second)
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the receiving side on the same address.
	b2, err := NewTCP(TCPConfig{Listen: addr, JitterSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	recv2b, err := b2.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	delivered := false
	for !delivered && time.Now().Before(deadline) {
		_ = a.TrySend(Message{Kind: KindCRT, From: 1, To: 2, CRT: []int{1}})
		select {
		case <-recv2b:
			delivered = true
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no delivery after receiver restart")
	}
	if a.Reconnects() == 0 {
		t.Error("sender healed without recording any reconnect attempt")
	}
}
