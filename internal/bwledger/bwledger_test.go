package bwledger

import (
	"fmt"
	"sync"
	"testing"

	"bwcluster/internal/telemetry"
)

// TestTotalsExactUnderEviction drives more links than TopK and checks the
// space-saving invariant: per-link numbers are approximate, but window
// totals (tracked + other) and the cumulative counters stay exact.
func TestTotalsExactUnderEviction(t *testing.T) {
	l := New(Config{TopK: 4})
	const links, perLink, size = 20, 3, 100
	for i := 0; i < links; i++ {
		for j := 0; j < perLink; j++ {
			l.Record(i, i+100, "query", size)
		}
	}
	wantBytes := int64(links * perLink * size)
	wantMsgs := int64(links * perLink)
	if got := l.TotalBytes(); got != wantBytes {
		t.Fatalf("TotalBytes = %d, want %d", got, wantBytes)
	}
	if got := l.TotalMessages(); got != wantMsgs {
		t.Fatalf("TotalMessages = %d, want %d", got, wantMsgs)
	}
	w := l.Roll(1)
	if w.TotalBytes != wantBytes || w.TotalMessages != wantMsgs {
		t.Fatalf("window totals = (%d, %d), want (%d, %d)",
			w.TotalBytes, w.TotalMessages, wantBytes, wantMsgs)
	}
	if len(w.Links) > 4 {
		t.Fatalf("tracked %d links, TopK is 4", len(w.Links))
	}
	if w.Evictions == 0 || w.OtherBytes == 0 {
		t.Fatalf("expected evictions into other bucket, got evictions=%d otherBytes=%d",
			w.Evictions, w.OtherBytes)
	}
	var tracked int64
	for _, lw := range w.Links {
		tracked += lw.Bytes
	}
	if tracked+w.OtherBytes != wantBytes {
		t.Fatalf("tracked (%d) + other (%d) != total (%d)", tracked, w.OtherBytes, wantBytes)
	}
}

// TestHeavyHittersSurvive checks that the heaviest links stay tracked and
// come out heaviest-first when light links churn through the table.
func TestHeavyHittersSurvive(t *testing.T) {
	l := New(Config{TopK: 4})
	// Two heavy links, established first, then a stream of singletons.
	for i := 0; i < 50; i++ {
		l.Record(1, 2, "nodeinfo", 1000)
		l.Record(3, 4, "crt", 500)
	}
	for i := 0; i < 30; i++ {
		l.Record(10+i, 200+i, "query", 10)
	}
	w := l.Roll(2)
	if len(w.Links) == 0 {
		t.Fatal("no tracked links")
	}
	if w.Links[0].A != 1 || w.Links[0].B != 2 || w.Links[0].Bytes != 50000 {
		t.Fatalf("heaviest link = %d-%d (%d bytes), want 1-2 (50000)",
			w.Links[0].A, w.Links[0].B, w.Links[0].Bytes)
	}
	if w.Links[1].A != 3 || w.Links[1].B != 4 {
		t.Fatalf("second link = %d-%d, want 3-4", w.Links[1].A, w.Links[1].B)
	}
	if got := w.Links[0].BytesPerSec; got != 25000 {
		t.Fatalf("BytesPerSec = %v, want 25000 (50000 bytes / 2s)", got)
	}
	for i := 1; i < len(w.Links); i++ {
		if w.Links[i].Bytes > w.Links[i-1].Bytes {
			t.Fatalf("links not sorted heaviest-first at %d", i)
		}
	}
}

// TestKindSplitAndOrdering checks per-link and per-window kind splits.
func TestKindSplitAndOrdering(t *testing.T) {
	l := New(Config{})
	l.Record(0, 1, "nodeinfo", 100)
	l.Record(0, 1, "nodeinfo", 100)
	l.Record(0, 1, "query", 600)
	l.Record(1, 0, "result", 50) // direction folds into the same link
	w := l.Roll(1)
	if len(w.Links) != 1 {
		t.Fatalf("links = %d, want 1", len(w.Links))
	}
	lw := w.Links[0]
	if lw.A != 0 || lw.B != 1 || lw.Bytes != 850 || lw.Messages != 4 {
		t.Fatalf("link = %d-%d bytes=%d msgs=%d, want 0-1 850 4", lw.A, lw.B, lw.Bytes, lw.Messages)
	}
	want := []KindTotal{
		{Kind: "query", Bytes: 600, Messages: 1},
		{Kind: "nodeinfo", Bytes: 200, Messages: 2},
		{Kind: "result", Bytes: 50, Messages: 1},
	}
	if len(lw.Kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", lw.Kinds, want)
	}
	for i := range want {
		if lw.Kinds[i] != want[i] {
			t.Fatalf("kinds[%d] = %+v, want %+v", i, lw.Kinds[i], want[i])
		}
	}
}

// TestWindowRingTrim checks the ring keeps only the configured number of
// completed windows, oldest dropped first, and that sequence numbers and
// the snapshot agree.
func TestWindowRingTrim(t *testing.T) {
	l := New(Config{Windows: 3})
	for i := 0; i < 5; i++ {
		l.Record(0, 1, "query", (i+1)*10)
		l.Roll(1)
	}
	s := l.Snapshot()
	if s.WindowSeq != 5 {
		t.Fatalf("WindowSeq = %d, want 5", s.WindowSeq)
	}
	if len(s.Windows) != 3 {
		t.Fatalf("ring holds %d windows, want 3", len(s.Windows))
	}
	for i, w := range s.Windows {
		if want := uint64(2 + i); w.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, w.Seq, want)
		}
	}
	if s.Windows[2].TotalBytes != 50 {
		t.Fatalf("latest window bytes = %d, want 50", s.Windows[2].TotalBytes)
	}
	if s.TotalBytes != 10+20+30+40+50 {
		t.Fatalf("cumulative bytes = %d, want 150", s.TotalBytes)
	}
	if len(s.Kinds) != 1 || s.Kinds[0].Kind != "query" || s.Kinds[0].Bytes != 150 {
		t.Fatalf("cumulative kinds = %+v", s.Kinds)
	}
}

// TestOverCapacityViolationFiresAnomaly is the acceptance check: a link
// pushed past its predicted bandwidth must be flagged in the closed
// window AND fire the flight recorder's anomaly hook with a ring
// snapshot attached.
func TestOverCapacityViolationFiresAnomaly(t *testing.T) {
	l := New(Config{Threshold: 1.0})
	l.SetPredictor(func(a, b int) (float64, bool) {
		if a == 1 && b == 2 {
			return 0.001, true // 1 kbit/s predicted: trivially saturated
		}
		return 1e6, true // effectively infinite for other links
	})
	fr := telemetry.NewFlightRecorder(16)
	var (
		mu       sync.Mutex
		fired    []telemetry.FlightEvent
		snapshot []telemetry.FlightEvent
	)
	fr.SetAnomalyHook(func(a telemetry.FlightEvent, snap []telemetry.FlightEvent) {
		mu.Lock()
		fired = append(fired, a)
		snapshot = snap
		mu.Unlock()
	})
	l.SetFlight(fr)

	l.Record(1, 2, "snapshot", 1<<20) // 1 MiB in one window
	l.Record(3, 4, "query", 100)      // under capacity, must not fire
	w := l.Roll(1)

	var lw12 *LinkWindow
	for i := range w.Links {
		if w.Links[i].A == 1 && w.Links[i].B == 2 {
			lw12 = &w.Links[i]
		}
	}
	if lw12 == nil || !lw12.Violation {
		t.Fatalf("link 1-2 not flagged as violation: %+v", w.Links)
	}
	if lw12.Utilization < 1 {
		t.Fatalf("utilization = %v, want >= 1", lw12.Utilization)
	}
	if len(w.Violations) != 1 || w.Violations[0].A != 1 || w.Violations[0].B != 2 {
		t.Fatalf("violations = %+v, want exactly link 1-2", w.Violations)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 {
		t.Fatalf("anomaly hook fired %d times, want 1", len(fired))
	}
	if fired[0].Kind != AnomalyBandwidth || fired[0].Host != 1 || fired[0].Peer != 2 {
		t.Fatalf("anomaly = %+v, want kind=%s host=1 peer=2", fired[0], AnomalyBandwidth)
	}
	if len(snapshot) == 0 {
		t.Fatal("anomaly hook received no ring snapshot")
	}
	s := l.Snapshot()
	if len(s.Violations) != 1 {
		t.Fatalf("snapshot violations = %+v, want 1", s.Violations)
	}
}

// TestNoPredictorNoViolation checks a ledger without a predictor never
// flags violations regardless of volume.
func TestNoPredictorNoViolation(t *testing.T) {
	l := New(Config{})
	l.Record(0, 1, "snapshot", 1<<30)
	w := l.Roll(1)
	if len(w.Violations) != 0 {
		t.Fatalf("violations without predictor: %+v", w.Violations)
	}
	if w.Links[0].PredictedMbps != 0 || w.Links[0].Utilization != 0 {
		t.Fatalf("unexpected prediction join: %+v", w.Links[0])
	}
}

// TestNilLedgerSafe checks the nil receiver contract transports rely on.
func TestNilLedgerSafe(t *testing.T) {
	var l *Ledger
	l.Record(0, 1, "query", 10)
	l.SetPredictor(nil)
	l.SetFlight(nil)
	if w := l.Roll(1); w.TotalBytes != 0 {
		t.Fatalf("nil Roll = %+v", w)
	}
	if l.TotalBytes() != 0 || l.TotalMessages() != 0 {
		t.Fatal("nil totals nonzero")
	}
	if s := l.Snapshot(); s.WindowSeq != 0 {
		t.Fatalf("nil Snapshot = %+v", s)
	}
}

// TestConcurrentRecordRoll is a smoke test: hammer Record from many
// goroutines while Roll closes windows, then check nothing was lost.
func TestConcurrentRecordRoll(t *testing.T) {
	l := New(Config{TopK: 8})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(w, (w+1+i)%64+64, fmt.Sprintf("kind%d", w%3), 7)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	var rolled []Window
	for {
		select {
		case <-done:
			rolled = append(rolled, l.Roll(1))
			var sum int64
			for _, w := range rolled {
				sum += w.TotalBytes
			}
			want := int64(workers * per * 7)
			if sum != want || l.TotalBytes() != want {
				t.Fatalf("windows sum %d, cumulative %d, want %d", sum, l.TotalBytes(), want)
			}
			return
		default:
			rolled = append(rolled, l.Roll(1))
		}
	}
}
